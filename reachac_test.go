package reachac

import (
	"bytes"
	"testing"
)

// buildPaperNetwork recreates the Figure-1 graph through the public API.
func buildPaperNetwork(t *testing.T) (*Network, map[string]UserID) {
	t.Helper()
	n := New()
	ids := map[string]UserID{}
	for _, name := range []string{"Alice", "Bill", "Colin", "David", "Elena", "Fred", "George"} {
		ids[name] = n.MustAddUser(name)
	}
	rel := func(a, b, l string) {
		t.Helper()
		if err := n.Relate(ids[a], ids[b], l); err != nil {
			t.Fatal(err)
		}
	}
	rel("Alice", "Colin", "friend")
	rel("Alice", "David", "colleague")
	rel("Alice", "Bill", "friend")
	rel("Colin", "David", "friend")
	rel("Elena", "Bill", "friend")
	rel("Bill", "Elena", "friend")
	rel("Colin", "Fred", "parent")
	rel("David", "Fred", "colleague")
	rel("David", "George", "parent")
	rel("Elena", "David", "friend")
	rel("Elena", "George", "friend")
	rel("Fred", "George", "friend")
	return n, ids
}

func TestQuickstartFlow(t *testing.T) {
	n := New()
	alice := n.MustAddUser("alice", IntAttr("age", 24))
	bob := n.MustAddUser("bob")
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("alice/photos", alice, "friend+[1,2]"); err != nil {
		t.Fatal(err)
	}
	d, err := n.CanAccess("alice/photos", bob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow {
		t.Fatalf("bob denied: %+v", d)
	}
	carol := n.MustAddUser("carol")
	d, err = n.CanAccess("alice/photos", carol)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Deny {
		t.Fatalf("carol allowed: %+v", d)
	}
}

func TestAllEnginesAgreeOnPolicies(t *testing.T) {
	queries := []string{
		"friend+[1,2]/colleague+[1]",
		"friend+[1]/parent+[1]/friend+[1]",
		"friend-[1]",
		"friend*[1,3]",
		"friend+[1,*]",
	}
	kinds := []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin}
	names := []string{"Alice", "Bill", "Colin", "David", "Elena", "Fred", "George"}

	// Reference decision matrix from the Online engine.
	ref := map[string]bool{}
	n, ids := buildPaperNetwork(t)
	for _, q := range queries {
		for _, o := range names {
			for _, r := range names {
				ok, err := n.CheckPath(ids[o], ids[r], q)
				if err != nil {
					t.Fatal(err)
				}
				ref[q+o+r] = ok
			}
		}
	}
	for _, kind := range kinds[1:] {
		if err := n.UseEngine(kind); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, q := range queries {
			for _, o := range names {
				for _, r := range names {
					ok, err := n.CheckPath(ids[o], ids[r], q)
					if err != nil {
						t.Fatalf("%v (%s,%s,%s): %v", kind, o, r, q, err)
					}
					if ok != ref[q+o+r] {
						t.Fatalf("%v disagrees on (%s,%s,%s): %v vs %v", kind, o, r, q, ok, ref[q+o+r])
					}
				}
			}
		}
	}
}

func TestIndexRebuildsAfterMutation(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if err := n.UseEngine(Index); err != nil {
		t.Fatal(err)
	}
	// Initially: Alice -friend-> Bill only, not Bill -friend-> Colin.
	ok, err := n.CheckPath(ids["Alice"], ids["George"], "colleague+[1]/colleague+[1]")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("phantom colleague chain")
	}
	// Add David -colleague-> George... via a new member chain.
	if err := n.Relate(ids["David"], ids["George"], "colleague"); err != nil {
		t.Fatal(err)
	}
	ok, err = n.CheckPath(ids["Alice"], ids["George"], "colleague+[1]/colleague+[1]")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("index not rebuilt after mutation")
	}
	// Remove it again.
	if err := n.Unrelate(ids["David"], ids["George"], "colleague"); err != nil {
		t.Fatal(err)
	}
	ok, _ = n.CheckPath(ids["Alice"], ids["George"], "colleague+[1]/colleague+[1]")
	if ok {
		t.Fatal("index not rebuilt after removal")
	}
}

func TestShareSemantics(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	alice := ids["Alice"]
	// Conjunctive conditions within one Share call.
	if _, err := n.Share("alice/diary", alice, "friend+[1,3]", "friend+[1]/parent+[1]/friend+[1]"); err != nil {
		t.Fatal(err)
	}
	d, _ := n.CanAccess("alice/diary", ids["George"])
	if d.Effect != Allow {
		t.Fatalf("George (satisfies both) denied: %+v", d)
	}
	d, _ = n.CanAccess("alice/diary", ids["Colin"])
	if d.Effect != Deny {
		t.Fatalf("Colin (friend only) allowed: %+v", d)
	}
	// A second Share on the same resource is an alternative audience.
	rid, err := n.Share("alice/diary", alice, "friend+[1]")
	if err != nil {
		t.Fatal(err)
	}
	d, _ = n.CanAccess("alice/diary", ids["Colin"])
	if d.Effect != Allow {
		t.Fatalf("Colin denied after widening: %+v", d)
	}
	// Revoking the widening rule restores the deny.
	if !n.Revoke("alice/diary", rid) {
		t.Fatal("Revoke failed")
	}
	d, _ = n.CanAccess("alice/diary", ids["Colin"])
	if d.Effect != Deny {
		t.Fatalf("Colin still allowed after revoke: %+v", d)
	}
}

func TestShareErrors(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if _, err := n.Share("r", ids["Alice"]); err == nil {
		t.Fatal("Share with no paths accepted")
	}
	if _, err := n.Share("r", ids["Alice"], "not a path ///"); err == nil {
		t.Fatal("Share with bad path accepted")
	}
	if _, err := n.Share("r", ids["Alice"], "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	// Someone else cannot attach rules to Alice's resource.
	if _, err := n.Share("r", ids["Bill"], "friend+[1]"); err == nil {
		t.Fatal("non-owner Share accepted")
	}
}

func TestAttrPredicatesThroughFacade(t *testing.T) {
	n := New()
	alice := n.MustAddUser("alice")
	minor := n.MustAddUser("kid", IntAttr("age", 12))
	adult := n.MustAddUser("adult", IntAttr("age", 30), StringAttr("city", "paris"))
	n.Relate(alice, minor, "friend")
	n.Relate(alice, adult, "friend")
	if _, err := n.Share("post", alice, `friend+[1]{age>=18, city="paris"}`); err != nil {
		t.Fatal(err)
	}
	d, _ := n.CanAccess("post", adult)
	if d.Effect != Allow {
		t.Fatalf("adult denied: %+v", d)
	}
	d, _ = n.CanAccess("post", minor)
	if d.Effect != Deny {
		t.Fatalf("minor allowed: %+v", d)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumUsers() != n.NumUsers() || n2.NumRelationships() != n.NumRelationships() {
		t.Fatal("round trip lost data")
	}
	// Reachability is preserved.
	a2, _ := n2.UserID("Alice")
	g2, _ := n2.UserID("George")
	ok, err := n2.CheckPath(a2, g2, "friend+[3]")
	if err != nil || !ok {
		t.Fatalf("loaded network reachability: %v %v", ok, err)
	}
	_ = ids
}

func TestUserLookupAndCounts(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if n.NumUsers() != 7 || n.NumRelationships() != 12 {
		t.Fatalf("counts = %d users %d rels", n.NumUsers(), n.NumRelationships())
	}
	id, ok := n.UserID("Alice")
	if !ok || id != ids["Alice"] {
		t.Fatal("UserID lookup")
	}
	if n.UserName(id) != "Alice" {
		t.Fatal("UserName lookup")
	}
	if _, ok := n.UserID("nobody"); ok {
		t.Fatal("ghost user")
	}
}

func TestRelateMutual(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.RelateMutual(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	ok, _ := n.CheckPath(a, b, "friend+[1]")
	ok2, _ := n.CheckPath(b, a, "friend+[1]")
	if !ok || !ok2 {
		t.Fatal("mutual relation incomplete")
	}
}

func TestUnrelateErrors(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Unrelate(a, b, "friend"); err == nil {
		t.Fatal("Unrelate unknown label accepted")
	}
	n.Relate(a, b, "friend")
	if err := n.Unrelate(b, a, "friend"); err == nil {
		t.Fatal("Unrelate missing edge accepted")
	}
	if err := n.Unrelate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
}

func TestAuditThroughFacade(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if _, err := n.Share("r", ids["Alice"], "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CanAccess("r", ids["Bill"]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CanAccess("r", ids["Fred"]); err != nil {
		t.Fatal(err)
	}
	audit := n.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit = %d entries", len(audit))
	}
	if audit[0].Effect != Allow || audit[1].Effect != Deny {
		t.Fatalf("audit = %+v", audit)
	}
}

func TestParsePathCanonicalizes(t *testing.T) {
	s, err := ParsePath("friend + [ 1 , 2 ] / colleague+[1]")
	if err != nil {
		t.Fatal(err)
	}
	if s != "friend+[1,2]/colleague+[1]" {
		t.Fatalf("canonical = %q", s)
	}
	if _, err := ParsePath("///"); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestEngineKindString(t *testing.T) {
	kinds := map[EngineKind]string{
		Online: "online-bfs", OnlineDFS: "online-dfs", OnlineAdaptive: "online-adaptive",
		Closure: "closure", Index: "join-index", IndexPaperJoin: "join-index-paper",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d String = %q", int(k), k.String())
		}
	}
	if err := New().UseEngine(EngineKind(99)); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestDuplicateUserRejected(t *testing.T) {
	n := New()
	n.MustAddUser("a")
	if _, err := n.AddUser("a"); err == nil {
		t.Fatal("duplicate user accepted")
	}
}

func TestPolicyPersistenceThroughFacade(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if _, err := n.Share("alice/album", ids["Alice"], "friend+[1]/parent+[1]/friend+[1]"); err != nil {
		t.Fatal(err)
	}
	var gbuf, pbuf bytes.Buffer
	if err := n.Save(&gbuf); err != nil {
		t.Fatal(err)
	}
	if err := n.SavePolicies(&pbuf); err != nil {
		t.Fatal(err)
	}
	n2, err := Load(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.LoadPolicies(&pbuf); err != nil {
		t.Fatal(err)
	}
	george, _ := n2.UserID("George")
	d, err := n2.CanAccess("alice/album", george)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow {
		t.Fatalf("George denied after reload: %+v", d)
	}
	bill, _ := n2.UserID("Bill")
	d, _ = n2.CanAccess("alice/album", bill)
	if d.Effect != Deny {
		t.Fatalf("Bill allowed after reload: %+v", d)
	}
}

func TestAudienceThroughFacade(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if _, err := n.Share("alice/q1", ids["Alice"], "friend+[1,2]/colleague+[1]"); err != nil {
		t.Fatal(err)
	}
	audience, err := n.Audience("alice/q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(audience) != 1 || n.UserName(audience[0]) != "Fred" {
		t.Fatalf("audience = %v", audience)
	}
	if _, err := n.Audience("ghost"); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestAttrConstructorsAndAccessors(t *testing.T) {
	n := New()
	u := n.MustAddUser("u",
		NumberAttr("score", 0.75),
		BoolAttr("vip", true),
		StringAttr("city", "oslo"),
		IntAttr("age", 40),
	)
	g := n.Graph()
	if v, ok := g.Attr(u, "score"); !ok || v.Num() != 0.75 {
		t.Fatalf("score = %v,%v", v, ok)
	}
	if v, ok := g.Attr(u, "vip"); !ok || !v.B() {
		t.Fatalf("vip = %v,%v", v, ok)
	}
	if n.Store() == nil {
		t.Fatal("Store accessor nil")
	}
	if n.EngineKind() != Online {
		t.Fatalf("default engine = %v", n.EngineKind())
	}
	if err := n.UseEngine(Closure); err != nil {
		t.Fatal(err)
	}
	if n.EngineKind() != Closure {
		t.Fatalf("engine after UseEngine = %v", n.EngineKind())
	}
}

func TestFromGraph(t *testing.T) {
	n1, _ := buildPaperNetwork(t)
	n2 := FromGraph(n1.Graph())
	if n2.NumUsers() != 7 {
		t.Fatalf("FromGraph users = %d", n2.NumUsers())
	}
	a, _ := n2.UserID("Alice")
	g, _ := n2.UserID("George")
	ok, err := n2.CheckPath(a, g, "friend+[3]")
	if err != nil || !ok {
		t.Fatalf("FromGraph reachability: %v %v", ok, err)
	}
}

func TestRelateMutualErrorPath(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	// First direction duplicates: error surfaces from RelateMutual.
	if err := n.RelateMutual(a, b, "friend"); err == nil {
		t.Fatal("duplicate forward relation accepted")
	}
	// Reverse-only duplicate: the second Relate inside RelateMutual fails.
	c := n.MustAddUser("c")
	if err := n.Relate(c, a, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := n.RelateMutual(a, c, "friend"); err == nil {
		t.Fatal("duplicate reverse relation accepted")
	}
}

func TestUnknownEngineString(t *testing.T) {
	if EngineKind(42).String() != "EngineKind(42)" {
		t.Fatal("unknown EngineKind String")
	}
}

func TestDirectGraphMutationTriggersRebuild(t *testing.T) {
	n, ids := buildPaperNetwork(t)
	if err := n.UseEngine(Index); err != nil {
		t.Fatal(err)
	}
	ok, err := n.CheckPath(ids["Alice"], ids["George"], "colleague+[2]")
	if err != nil || ok {
		t.Fatalf("before: %v %v", ok, err)
	}
	// Mutate through the exposed graph handle, bypassing Relate.
	david, _ := n.UserID("David")
	george, _ := n.UserID("George")
	n.Graph().MustAddEdge(david, george, "colleague")
	ok, err = n.CheckPath(ids["Alice"], george, "colleague+[2]")
	if err != nil {
		t.Fatalf("stale error leaked to caller: %v", err)
	}
	if !ok {
		t.Fatal("rebuild after direct graph mutation missed the new edge")
	}
	_ = david
}
