package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reachac/internal/generate"
	"reachac/internal/graph"
)

// TestEmitRoundTrip: the two-pass streamed file must read back as
// exactly the graph a materialized Build produces, for every model.
func TestEmitRoundTrip(t *testing.T) {
	tops := map[string]generate.Topology{
		"osn":  generate.MustNew("osn", generate.WithNodes(200), generate.WithSeed(4), generate.WithAttrs()),
		"ldbc": generate.MustNew("ldbc", generate.WithNodes(200), generate.WithSeed(4)),
		"er":   generate.MustNew("er", generate.WithNodes(80), generate.WithEdges(240), generate.WithSeed(4)),
	}
	for model, top := range tops {
		var buf bytes.Buffer
		nodes, edges, err := emit(top, &buf)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		back, err := graph.Read(&buf)
		if err != nil {
			t.Fatalf("%s: reading back: %v", model, err)
		}
		want := generate.MustBuild(top)
		if back.NumNodes() != nodes || back.NumEdges() != edges {
			t.Fatalf("%s: read (%d, %d), emitted (%d, %d)",
				model, back.NumNodes(), back.NumEdges(), nodes, edges)
		}
		if back.NumNodes() != want.NumNodes() || back.NumEdges() != want.NumEdges() {
			t.Fatalf("%s: streamed file != built graph", model)
		}
		mismatch := false
		want.Edges(func(e graph.Edge) bool {
			if !back.HasEdge(e.From, e.To, want.LabelName(e.Label)) {
				mismatch = true
				return false
			}
			return true
		})
		if mismatch {
			t.Fatalf("%s: edge sets differ", model)
		}
	}
}

// failAfter fails every write past a byte budget — a disk-full stand-in.
type failAfter struct {
	budget int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestEmitPropagatesWriteFailure: a mid-stream write error must surface
// (the nonzero-exit contract), not vanish into a deferred close.
func TestEmitPropagatesWriteFailure(t *testing.T) {
	top := generate.MustNew("ldbc", generate.WithNodes(500), generate.WithSeed(1))
	_, _, err := emit(top, &failAfter{budget: 2048})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("partial write not surfaced: %v", err)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.json")
	err := run([]string{"-n", "150", "-model", "ldbc", "-seed", "9", "-out", out}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 150 || g.NumEdges() == 0 {
		t.Fatalf("read (%d, %d)", g.NumNodes(), g.NumEdges())
	}
}

func TestRunRejectsBadModel(t *testing.T) {
	if err := run([]string{"-n", "10", "-model", "warp"}, io.Discard); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run([]string{"-n", "10", "-model", "ldbc", "-acyclic"}, io.Discard); err == nil {
		t.Fatal("ldbc -acyclic accepted")
	}
}
