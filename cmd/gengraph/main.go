// Command gengraph generates a synthetic social graph and writes it in the
// library's line-delimited JSON format.
//
// Usage:
//
//	gengraph -n 10000 [-model osn|er|ba|ws] [-seed 42] [-acyclic]
//	         [-degree 8] [-out graph.json]
//
// The default model is the community-structured OSN generator used by the
// experiments; er/ba/ws select Erdős–Rényi, Barabási–Albert and
// Watts–Strogatz respectively.
package main

import (
	"flag"
	"log"
	"os"

	"reachac/internal/generate"
	"reachac/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")
	var (
		n       = flag.Int("n", 1000, "number of members")
		model   = flag.String("model", "osn", "graph model: osn, er, ba, ws")
		seed    = flag.Int64("seed", 42, "random seed")
		degree  = flag.Int("degree", 8, "average out-degree (er: total edges = n*degree)")
		acyclic = flag.Bool("acyclic", false, "osn only: orient edges acyclically (follow/hierarchy shape)")
		attrs   = flag.Bool("attrs", true, "osn only: attach age/city/gender attributes")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	labels := []string{"friend", "colleague", "parent", "follows"}
	var g *graph.Graph
	switch *model {
	case "osn":
		g = generate.OSN(generate.OSNConfig{
			Nodes:        *n,
			AvgOutDegree: *degree,
			Seed:         *seed,
			Acyclic:      *acyclic,
			WithAttrs:    *attrs,
		})
	case "er":
		g = generate.ErdosRenyi(*n, *n**degree, labels, *seed)
	case "ba":
		g = generate.BarabasiAlbert(*n, *degree, labels, *seed)
	case "ws":
		g = generate.WattsStrogatz(*n, *degree, 0.1, labels, *seed)
	default:
		log.Fatalf("unknown model %q (have osn, er, ba, ws)", *model)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.Write(w); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d members, %d relationships, %d types",
		g.NumNodes(), g.NumEdges(), g.NumLabels())
}
