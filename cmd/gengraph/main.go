// Command gengraph generates a synthetic social graph and writes it in the
// library's line-delimited JSON format.
//
// Usage:
//
//	gengraph -n 10000 [-model osn|ldbc|er|ba|ws] [-seed 42] [-degree 8]
//	         [-communities K] [-intra 0.8] [-edges M] [-beta 0.1]
//	         [-acyclic] [-attrs] [-out graph.json]
//
// The default model is the community-structured OSN generator used by the
// experiments; ldbc selects the power-law LDBC-style family that scales
// to millions of members, and er/ba/ws the classical random-graph
// families.
//
// Generation is streamed: the topology is walked twice, once to count
// records for the file header and once to write them, so memory stays
// bounded regardless of graph size (use -model ldbc for large graphs —
// the other families keep O(edges) generator state). Any write failure,
// including a short final flush, exits nonzero with the partial file left
// behind for inspection.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"reachac/internal/generate"
	"reachac/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body: parses flags, builds the topology and
// streams it to -out (or stdout). A non-nil return means a partial or
// empty output and becomes a nonzero exit.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		n           = fs.Int("n", 1000, "number of members")
		model       = fs.String("model", "osn", "graph model: "+strings.Join(generate.Kinds(), ", "))
		seed        = fs.Int64("seed", 42, "random seed")
		degree      = fs.Int("degree", 8, "average out-degree (er: total edges = n*degree unless -edges)")
		communities = fs.Int("communities", 0, "osn/ldbc: planted community count (0 = per-model default)")
		intra       = fs.Float64("intra", 0, "osn/ldbc: intra-community edge probability (0 = default 0.8)")
		edges       = fs.Int("edges", 0, "er: exact edge count (0 = n*degree)")
		beta        = fs.Float64("beta", 0.1, "ws: rewiring probability")
		acyclic     = fs.Bool("acyclic", false, "osn only: orient edges acyclically (follow/hierarchy shape)")
		attrs       = fs.Bool("attrs", true, "osn/ldbc: attach age/city/gender attributes")
		out         = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []generate.Option{
		generate.WithNodes(*n), generate.WithSeed(*seed),
		generate.WithDegree(*degree), generate.WithCommunities(*communities),
		generate.WithIntraProb(*intra), generate.WithRewire(*beta),
	}
	switch *model {
	case "er":
		m := *edges
		if m <= 0 {
			m = *n * *degree
		}
		opts = append(opts, generate.WithEdges(m))
	case "osn", "ldbc":
		if *attrs {
			opts = append(opts, generate.WithAttrs())
		}
		if *acyclic {
			opts = append(opts, generate.WithAcyclic())
		}
	}
	top, err := generate.New(*model, opts...)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		w = f
		defer func() {
			// The explicit Close below is the checked one; this catches
			// early-error paths only.
			f.Close()
		}()
	}

	nodes, edgeCount, err := emit(top, w)
	if err != nil {
		return err
	}
	if f, ok := w.(*os.File); ok && *out != "" {
		// A buffered kernel write can still fail at close; a partial file
		// must not exit 0.
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", *out, err)
		}
	}
	log.Printf("wrote %d members, %d relationships (model %s, seed %d)",
		nodes, edgeCount, *model, *seed)
	return nil
}

// emit streams the topology to w in the graph file format: one counting
// pass for the header (streams are deterministic, so the second pass
// sees identical records), then one writing pass. Nothing graph-sized is
// ever held in memory.
func emit(top generate.Topology, w io.Writer) (nodes, edges int, err error) {
	nodes, edges, err = generate.Count(top)
	if err != nil {
		return 0, 0, err
	}
	sw := graph.NewStreamWriter(w, nodes, edges)
	err = top.Stream(func(op generate.Op) error {
		if op.Kind == generate.OpNode {
			return sw.Node(op.Name, op.Attrs)
		}
		return sw.Edge(op.From, op.To, op.Label, 0)
	})
	if err != nil {
		return nodes, edges, err
	}
	if err := sw.Close(); err != nil {
		return nodes, edges, err
	}
	return nodes, edges, nil
}
