// Command acshardd is the shard router daemon: it consistent-hashes users
// and resources across N shard backends and serves the same HTTP/JSON API
// as acserverd, so the typed client package works against a sharded
// deployment unchanged (internal/shard documents the placement and
// scatter-gather semantics).
//
// Two backend modes:
//
//	acshardd -backends host1:8708,host2:8708        # real acserverd shards
//	acshardd -shards 4 -dir /var/lib/acshard        # embedded shards
//
// With -backends each comma-separated address is one shard, reached over
// HTTP; the shard COUNT and ORDER define the hash ring, so every router
// (and every acbench run) against the same shard set must list them
// identically. With -shards N the daemon embeds N in-process networks, each
// durable in its own subdirectory <dir>/shard-<i> — single-machine sharding
// for benchmarks and smoke tests.
//
// The bound address is announced on stdout as "ACSHARDD_LISTEN=<addr>"
// before serving starts, so -addr 127.0.0.1:0 is scriptable exactly like
// acserverd.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/ring"
	"reachac/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acshardd: ")
	var (
		addr         = flag.String("addr", ":8709", "listen address")
		backendsFlag = flag.String("backends", "", "comma-separated acserverd shard addresses (remote mode)")
		shards       = flag.Int("shards", 0, "embedded shard count (embedded mode; requires -dir)")
		dir          = flag.String("dir", "", "base directory for embedded shards (shard-<i> subdirectories)")
		engine       = flag.String("engine", "online", "embedded shards' evaluator: online, online-dfs, online-adaptive, closure, index, index-paper")
		syncMode     = flag.String("sync", "always", "embedded shards' WAL fsync policy: always, interval, never")
		vnodes       = flag.Int("vnodes", ring.DefaultVNodes, "virtual nodes per shard on the hash ring")
		timeout      = flag.Duration("shard-timeout", 2*time.Second, "per-shard deadline on scatter calls")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	)
	flag.Parse()

	var backends []shard.Backend
	switch {
	case *backendsFlag != "" && *shards > 0:
		log.Fatal("-backends and -shards are mutually exclusive")
	case *backendsFlag != "":
		for _, a := range strings.Split(*backendsFlag, ",") {
			c, err := client.New(strings.TrimSpace(a))
			if err != nil {
				log.Fatal(err)
			}
			backends = append(backends, shard.NewRemote(c))
		}
	case *shards > 0:
		if *dir == "" {
			log.Fatal("-shards requires -dir")
		}
		kind, err := engineKind(*engine)
		if err != nil {
			log.Fatal(err)
		}
		opts := []reachac.Option{reachac.WithEngine(kind)}
		switch *syncMode {
		case "always":
			opts = append(opts, reachac.WithSync(reachac.SyncAlways))
		case "interval":
			opts = append(opts, reachac.WithSyncInterval(50*time.Millisecond))
		case "never":
			opts = append(opts, reachac.WithSync(reachac.SyncNever))
		default:
			log.Fatalf("unknown -sync %q (have always, interval, never)", *syncMode)
		}
		for i := 0; i < *shards; i++ {
			n, err := reachac.Open(filepath.Join(*dir, fmt.Sprintf("shard-%d", i)), opts...)
			if err != nil {
				log.Fatal(err)
			}
			backends = append(backends, shard.NewEmbedded(n))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	router, err := shard.New(context.Background(), backends, shard.Config{
		VNodes:       *vnodes,
		ShardTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	handler := shard.NewHandler(router)
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ACSHARDD_LISTEN=%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("routing %d shards on %s (%d vnodes/shard)", router.Shards(), ln.Addr(), *vnodes)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("HTTP shutdown: %v", err)
	}
	if err := router.Close(); err != nil {
		log.Fatalf("closing shards: %v", err)
	}
	log.Print("clean shutdown")
}

// engineKind parses the -engine flag (same vocabulary as acserverd).
func engineKind(s string) (reachac.EngineKind, error) {
	for _, k := range []reachac.EngineKind{
		reachac.Online, reachac.OnlineDFS, reachac.OnlineAdaptive,
		reachac.Closure, reachac.Index, reachac.IndexPaperJoin,
	} {
		if s == k.String() {
			return k, nil
		}
	}
	switch s {
	case "online":
		return reachac.Online, nil
	case "index":
		return reachac.Index, nil
	case "index-paper":
		return reachac.IndexPaperJoin, nil
	}
	return 0, fmt.Errorf("unknown -engine %q (have online, online-dfs, online-adaptive, closure, index, index-paper)", s)
}
