// Command acserverd serves reachability-based access control over HTTP: it
// opens (or creates) a durable network directory and exposes the JSON API of
// internal/httpapi — users, relationships, share/revoke, check, check-batch,
// audience, raw reachability, policies, audit tail, health and stats.
//
// Usage:
//
//	acserverd -dir /var/lib/reachac [-addr :8708] [-engine online|closure|index|...]
//	          [-sync always|interval|never] [-sync-interval 50ms]
//	          [-checkpoint-every 4194304] [-max-checks 64] [-max-queue 1024]
//	          [-coalesce 128] [-coalesce-wait 0] [-follow leader:8708]
//
// With -follow the daemon runs as a read replica: it mirrors the leader's
// write-ahead log into -dir (bootstrapping from the leader's checkpoint if
// needed), serves the read API off the replicated state — every response
// carrying an X-Replica-Staleness-Ms freshness bound — and rejects mutations
// with 503/read-only. Losing the leader degrades to stale serving, never an
// outage. To promote, stop the daemon and restart it on the same -dir
// without -follow: the leader restart bumps the leadership epoch, so the old
// leader (should it return) is superseded.
//
// The bound address is announced on stdout as "ACSERVERD_LISTEN=<addr>"
// before serving starts, so -addr 127.0.0.1:0 (a kernel-assigned free
// port) is scriptable: start the daemon, scrape the line, point clients
// at it.
//
// Concurrent mutations are coalesced into shared write-ahead-log commit
// groups (one fsync covers many writers); reads are served lock-free off the
// published engine snapshot behind an admission limiter that sheds overload
// with 503 + Retry-After. SIGINT/SIGTERM shut the daemon down gracefully:
// the listener stops, queued mutations drain and commit, a final checkpoint
// compacts the log (skipped when nothing changed), and the directory is
// released. A SIGKILL instead loses nothing acknowledged: the next start
// replays the log tail.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reachac"
	"reachac/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acserverd: ")
	var (
		addr         = flag.String("addr", ":8708", "listen address")
		dir          = flag.String("dir", "", "durable network directory (required; created if absent)")
		engine       = flag.String("engine", "online", "evaluator: online, online-dfs, online-adaptive, closure, index, index-paper")
		syncMode     = flag.String("sync", "always", "WAL fsync policy: always, interval, never")
		syncInterval = flag.Duration("sync-interval", 50*time.Millisecond, "fsync cadence under -sync interval")
		ckptEvery    = flag.Int64("checkpoint-every", reachac.DefaultCheckpointEvery, "WAL segment bytes triggering a background checkpoint (<=0 disables)")
		maxChecks    = flag.Int("max-checks", 0, "max concurrent read requests (0 = 4×GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "mutation admission queue bound (0 = 1024)")
		coalesce     = flag.Int("coalesce", 0, "max mutations folded into one commit group (0 = 128)")
		coalesceWait = flag.Duration("coalesce-wait", 0, "how long the committer lingers for more mutations (0 = drain-only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		follow       = flag.String("follow", "", "run as a read replica of the leader at this address")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := engineKind(*engine)
	if err != nil {
		log.Fatal(err)
	}

	opts := []reachac.Option{reachac.WithEngine(kind), reachac.WithCheckpointEvery(*ckptEvery)}
	switch *syncMode {
	case "always":
		opts = append(opts, reachac.WithSync(reachac.SyncAlways))
	case "interval":
		opts = append(opts, reachac.WithSyncInterval(*syncInterval))
	case "never":
		opts = append(opts, reachac.WithSync(reachac.SyncNever))
	default:
		log.Fatalf("unknown -sync %q (have always, interval, never)", *syncMode)
	}

	if *follow != "" {
		opts = append(opts, reachac.WithFollow(*follow))
	}
	n, err := reachac.Open(*dir, opts...)
	if err != nil {
		log.Fatal(err)
	}
	rec := n.Recovery()
	log.Printf("recovered %d users, %d relationships from %s (%d WAL groups past checkpoint %d, torn tail: %v)",
		n.NumUsers(), n.NumRelationships(), *dir, rec.Groups, rec.CheckpointSeq, rec.TornTail)
	if n.Follower() {
		rs := n.ReplicaStatus()
		log.Printf("following %s (epoch %d) as a read replica; mutations are rejected", rs.Leader, rs.Epoch)
	}

	srv := server.New(n, server.Config{
		MaxConcurrentChecks: *maxChecks,
		MaxQueuedMutations:  *maxQueue,
		CoalesceBatch:       *coalesce,
		CoalesceWait:        *coalesceWait,
	})
	httpSrv := &http.Server{
		Handler: srv,
		// Slow-client bounds: a trickled request must not hold a connection
		// (or, via the handlers, an admission slot) indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works:
	// the kernel-assigned port is announced on stdout in a stable,
	// parseable form before any request is served. CI and scripts start
	// the daemon on port 0 and scrape the line instead of racing for a
	// fixed port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ACSERVERD_LISTEN=%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("serving %s engine on %s", kind, ln.Addr())

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: draining requests and queued mutations")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("HTTP shutdown: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Print("clean shutdown")
}

// engineKind parses the -engine flag.
func engineKind(s string) (reachac.EngineKind, error) {
	for _, k := range []reachac.EngineKind{
		reachac.Online, reachac.OnlineDFS, reachac.OnlineAdaptive,
		reachac.Closure, reachac.Index, reachac.IndexPaperJoin,
	} {
		if s == k.String() {
			return k, nil
		}
	}
	// Convenience shorthands matching acquery's vocabulary.
	switch s {
	case "online":
		return reachac.Online, nil
	case "index":
		return reachac.Index, nil
	case "index-paper":
		return reachac.IndexPaperJoin, nil
	}
	return 0, fmt.Errorf("unknown -engine %q (have online, online-dfs, online-adaptive, closure, index, index-paper)", s)
}
