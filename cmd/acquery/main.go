// Command acquery answers access-control reachability queries over a social
// graph: given an owner, a requester and a path expression, it reports
// whether the requester is in the path's audience, optionally printing the
// witness path.
//
// Usage:
//
//	acquery -graph g.json -owner u000001 -requester u000420 \
//	        -path 'friend+[1,2]/colleague+[1]' [-engine online|closure|index] [-explain]
//
//	acquery -graph g.json -owner u000001 -path '...' -audience
//
//	acquery -dir /var/lib/reachac -verify-chain
//
// -audience enumerates every member the path grants access to (the
// resource's effective audience). -verify-chain skips querying entirely and
// audits the directory's tamper-evidence hash chain offline, naming the
// first divergent record on failure (exit 1).
//
// Instead of -graph, -dir opens a durable network directory (as written by
// reachac.Open): the graph is recovered from the latest checkpoint plus the
// write-ahead log tail before the query runs. And instead of either, -addr
// routes the query to a running acserverd over HTTP through the typed
// client — same flags, same output, evaluated by the server's engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
	"reachac/internal/tclosure"
	"reachac/internal/wal"
)

// querier is the shared query surface: the local evaluators and the remote
// acserverd client both implement it, so every flag combination runs the
// same code path after setup.
type querier interface {
	// reach reports whether a path matching expr leads owner -> requester.
	reach(owner, requester, expr string) (bool, error)
	// audience enumerates the member names expr reaches from owner.
	audience(owner, expr string) ([]string, error)
	// numMembers sizes the population, for the audience summary line.
	numMembers() (int, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("acquery: ")
	var (
		graphPath = flag.String("graph", "", "graph file (from gengraph or Network.Save)")
		dirPath   = flag.String("dir", "", "durable network directory (from reachac.Open); alternative to -graph")
		addr      = flag.String("addr", "", "acserverd address (host:port or URL); alternative to -graph/-dir")
		owner     = flag.String("owner", "", "resource owner (member name)")
		requester = flag.String("requester", "", "access requester (member name)")
		pathStr   = flag.String("path", "", "path expression, e.g. 'friend+[1,2]/colleague+[1]'")
		engine    = flag.String("engine", "online", "evaluator: online, closure, index (local modes only)")
		audience  = flag.Bool("audience", false, "enumerate the full audience instead of one requester")
		explain   = flag.Bool("explain", false, "print a witness path on grant (local online engine)")
		verify    = flag.Bool("verify-chain", false, "verify -dir's tamper-evidence audit chain and exit")
	)
	flag.Parse()
	if *verify {
		if *dirPath == "" {
			log.Fatal("-verify-chain needs -dir")
		}
		verifyChain(*dirPath)
		return
	}
	sources := 0
	for _, s := range []string{*graphPath, *dirPath, *addr} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 || *owner == "" || *pathStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	canonical, err := reachac.ParsePath(*pathStr)
	if err != nil {
		log.Fatal(err)
	}

	var q querier
	if *addr != "" {
		c, err := client.New(*addr)
		if err != nil {
			log.Fatal(err)
		}
		q = &remoteQuerier{c: c}
	} else {
		lq, closeFn := newLocalQuerier(*graphPath, *dirPath, *engine)
		defer closeFn()
		q = lq
	}

	if *audience {
		names, err := q.audience(*owner, *pathStr)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range names {
			fmt.Println(name)
		}
		total, err := q.numMembers()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%d of %d members in the audience of %s/%s",
			len(names), total-1, *owner, canonical)
		return
	}

	if *requester == "" {
		log.Fatal("need -requester or -audience")
	}
	start := time.Now()
	granted, err := q.reach(*owner, *requester, *pathStr)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	if granted {
		fmt.Printf("ALLOW  %s -> %s via %s  (%v)\n", *owner, *requester, canonical, el)
		if *explain {
			if lq, ok := q.(*localQuerier); ok {
				lq.printWitness(*owner, *requester, *pathStr)
			} else {
				log.Print("-explain needs a local graph (-graph or -dir)")
			}
		}
	} else {
		fmt.Printf("DENY   %s -> %s via %s  (%v)\n", *owner, *requester, canonical, el)
	}
}

// localQuerier evaluates against an in-process graph and engine.
type localQuerier struct {
	g    *graph.Graph
	eval core.Evaluator
}

// newLocalQuerier loads the graph from a file or durable directory and
// builds the selected evaluator; the returned func releases the directory.
func newLocalQuerier(graphPath, dirPath, engine string) (*localQuerier, func()) {
	var (
		g       *graph.Graph
		closeFn = func() {}
	)
	if dirPath != "" {
		n, err := reachac.Open(dirPath)
		if err != nil {
			log.Fatal(err)
		}
		closeFn = func() { n.Close() }
		rec := n.Recovery()
		log.Printf("recovered %d users, %d relationships (%d WAL groups past checkpoint %d, torn tail: %v)",
			n.NumUsers(), n.NumRelationships(), rec.Groups, rec.CheckpointSeq, rec.TornTail)
		g = n.Graph()
	} else {
		f, err := os.Open(graphPath)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		g, rerr = graph.Read(f)
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	}

	var eval core.Evaluator
	switch engine {
	case "online":
		eval = search.New(g)
	case "closure":
		eval = tclosure.New(g)
	case "index":
		start := time.Now()
		idx, err := joinindex.Build(g, joinindex.Options{})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index built in %v (%d line nodes, %d SCCs)",
			time.Since(start).Round(time.Millisecond), idx.Stats().LineNodes, idx.Stats().SCCs)
		eval = idx
	default:
		log.Fatalf("unknown engine %q (have online, closure, index)", engine)
	}
	return &localQuerier{g: g, eval: eval}, closeFn
}

func (q *localQuerier) member(name string) graph.NodeID {
	id, ok := q.g.NodeByName(name)
	if !ok {
		log.Fatalf("unknown member %q", name)
	}
	return id
}

func (q *localQuerier) reach(owner, requester, expr string) (bool, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return false, err
	}
	return q.eval.Reachable(q.member(owner), q.member(requester), p)
}

func (q *localQuerier) audience(owner, expr string) ([]string, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return nil, err
	}
	ownerID := q.member(owner)
	var names []string
	var ferr error
	q.g.Nodes(func(n graph.Node) bool {
		if n.ID == ownerID {
			return true
		}
		ok, err := q.eval.Reachable(ownerID, n.ID, p)
		if err != nil {
			ferr = err
			return false
		}
		if ok {
			names = append(names, n.Name)
		}
		return true
	})
	return names, ferr
}

func (q *localQuerier) numMembers() (int, error) { return q.g.NumNodes(), nil }

// printWitness prints a witness path for a granted online-engine query.
func (q *localQuerier) printWitness(owner, requester, expr string) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return
	}
	ownerID, reqID := q.member(owner), q.member(requester)
	hops, ok, err := search.New(q.g).Witness(ownerID, reqID, p)
	if err != nil || !ok {
		return
	}
	cur := ownerID
	fmt.Printf("  %s", q.g.Node(cur).Name)
	for _, h := range hops {
		next := h.Edge.To
		if !h.Forward {
			next = h.Edge.From
		}
		dir := ">"
		if !h.Forward {
			dir = "<"
		}
		fmt.Printf(" -%s%s- %s", q.g.LabelName(h.Edge.Label), dir, q.g.Node(next).Name)
		cur = next
	}
	fmt.Println()
}

// remoteQuerier routes queries to a running acserverd.
type remoteQuerier struct {
	c *client.Client
}

func (q *remoteQuerier) reach(owner, requester, expr string) (bool, error) {
	return q.c.Reach(context.Background(), owner, requester, expr)
}

func (q *remoteQuerier) audience(owner, expr string) ([]string, error) {
	return q.c.ReachAudience(context.Background(), owner, expr)
}

func (q *remoteQuerier) numMembers() (int, error) {
	h, err := q.c.Health(context.Background())
	return h.Users, err
}

// verifyChain runs the offline tamper-evidence audit: every record group's
// hash link back to the newest checkpoint anchor. It prints the verified
// extent and exits 0, or names the first divergent record and exits 1.
func verifyChain(dir string) {
	report, err := reachac.VerifyChain(dir)
	if err != nil {
		var ce *wal.ChainError
		if errors.As(err, &ce) {
			log.Printf("audit chain BROKEN: %v", ce)
			log.Fatalf("first divergent record: segment %d, byte offset %d, group %d since anchor", ce.Seq, ce.Offset, ce.Index)
		}
		log.Fatal(err)
	}
	fmt.Printf("audit chain OK: %d record groups across %d segments verified (anchor checkpoint %d)\n",
		report.Groups, report.Segments, report.CheckpointSeq)
	fmt.Printf("chain head: %s\n", report.Chain)
}
