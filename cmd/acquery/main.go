// Command acquery answers access-control reachability queries over a social
// graph: given an owner, a requester and a path expression, it reports
// whether the requester is in the path's audience, optionally printing the
// witness path.
//
// Usage:
//
//	acquery -graph g.json -owner u000001 -requester u000420 \
//	        -path 'friend+[1,2]/colleague+[1]' [-engine online|closure|index] [-explain]
//
//	acquery -graph g.json -owner u000001 -path '...' -audience
//
// -audience enumerates every member the path grants access to (the
// resource's effective audience).
//
// Instead of -graph, -dir opens a durable network directory (as written by
// reachac.Open): the graph is recovered from the latest checkpoint plus the
// write-ahead log tail before the query runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"reachac"
	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
	"reachac/internal/tclosure"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acquery: ")
	var (
		graphPath = flag.String("graph", "", "graph file (from gengraph or Network.Save)")
		dirPath   = flag.String("dir", "", "durable network directory (from reachac.Open); alternative to -graph")
		owner     = flag.String("owner", "", "resource owner (member name)")
		requester = flag.String("requester", "", "access requester (member name)")
		pathStr   = flag.String("path", "", "path expression, e.g. 'friend+[1,2]/colleague+[1]'")
		engine    = flag.String("engine", "online", "evaluator: online, closure, index")
		audience  = flag.Bool("audience", false, "enumerate the full audience instead of one requester")
		explain   = flag.Bool("explain", false, "print a witness path on grant (online engine)")
	)
	flag.Parse()
	if (*graphPath == "") == (*dirPath == "") || *owner == "" || *pathStr == "" {
		flag.Usage()
		os.Exit(2)
	}

	var g *graph.Graph
	if *dirPath != "" {
		n, err := reachac.Open(*dirPath)
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		rec := n.Recovery()
		log.Printf("recovered %d users, %d relationships (%d WAL groups past checkpoint %d, torn tail: %v)",
			n.NumUsers(), n.NumRelationships(), rec.Groups, rec.CheckpointSeq, rec.TornTail)
		g = n.Graph()
	} else {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		g, rerr = graph.Read(f)
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	}
	p, err := pathexpr.Parse(*pathStr)
	if err != nil {
		log.Fatal(err)
	}
	ownerID, ok := g.NodeByName(*owner)
	if !ok {
		log.Fatalf("unknown member %q", *owner)
	}

	var eval core.Evaluator
	switch *engine {
	case "online":
		eval = search.New(g)
	case "closure":
		eval = tclosure.New(g)
	case "index":
		start := time.Now()
		idx, err := joinindex.Build(g, joinindex.Options{})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index built in %v (%d line nodes, %d SCCs)",
			time.Since(start).Round(time.Millisecond), idx.Stats().LineNodes, idx.Stats().SCCs)
		eval = idx
	default:
		log.Fatalf("unknown engine %q (have online, closure, index)", *engine)
	}

	if *audience {
		count := 0
		g.Nodes(func(n graph.Node) bool {
			if n.ID == ownerID {
				return true
			}
			ok, err := eval.Reachable(ownerID, n.ID, p)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Println(n.Name)
				count++
			}
			return true
		})
		log.Printf("%d of %d members in the audience of %s/%s",
			count, g.NumNodes()-1, *owner, p)
		return
	}

	if *requester == "" {
		log.Fatal("need -requester or -audience")
	}
	reqID, ok := g.NodeByName(*requester)
	if !ok {
		log.Fatalf("unknown member %q", *requester)
	}
	start := time.Now()
	granted, err := eval.Reachable(ownerID, reqID, p)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	if granted {
		fmt.Printf("ALLOW  %s -> %s via %s  (%v)\n", *owner, *requester, p, el)
		if *explain {
			hops, ok, err := search.New(g).Witness(ownerID, reqID, p)
			if err == nil && ok {
				cur := ownerID
				fmt.Printf("  %s", g.Node(cur).Name)
				for _, h := range hops {
					next := h.Edge.To
					if !h.Forward {
						next = h.Edge.From
					}
					dir := ">"
					if !h.Forward {
						dir = "<"
					}
					fmt.Printf(" -%s%s- %s", g.LabelName(h.Edge.Label), dir, g.Node(next).Name)
					cur = next
				}
				fmt.Println()
			}
		}
	} else {
		fmt.Printf("DENY   %s -> %s via %s  (%v)\n", *owner, *requester, p, el)
	}
}
