package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"reachac/internal/loadgen"
)

// SchemaV1 identifies the artifact format; bump on incompatible changes.
const SchemaV1 = "acbench/v1"

// Artifact is the machine-readable benchmark result BENCH_acbench.json
// carries: one entry per (mode, engine, scenario), plus enough host
// context to judge comparability across runs.
type Artifact struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Seed      int64  `json:"seed"`
	// CalibrationScore is the host's throughput on a fixed CPU-bound
	// reference loop (mega-iterations/second). Regression comparison
	// normalizes by it, so a slower CI runner does not read as a
	// regression and a faster one does not mask one.
	CalibrationScore float64          `json:"calibration_score"`
	Scenarios        []ScenarioResult `json:"scenarios"`
}

// LatencySummary reports the recorded latency distribution in
// microseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func summarize(h *loadgen.Histogram) LatencySummary {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return LatencySummary{
		P50:  us(h.Quantile(0.50)),
		P90:  us(h.Quantile(0.90)),
		P95:  us(h.Quantile(0.95)),
		P99:  us(h.Quantile(0.99)),
		P999: us(h.Quantile(0.999)),
		Mean: us(h.Mean()),
		Max:  us(h.Max()),
	}
}

// Counters is the engine/serving activity attributed to one scenario
// window (Stats deltas; the server_* fields stay zero in embedded mode).
type Counters struct {
	Checks         uint64 `json:"checks"`
	BatchChecks    uint64 `json:"batch_checks"`
	Audiences      uint64 `json:"audiences"`
	Mutations      uint64 `json:"mutations"`
	Batches        uint64 `json:"batches"`
	Republications uint64 `json:"republications"`
	// Decision-cache and planner activity attributed to the window; the
	// planner_* fields stay zero unless the cell routes through the
	// cost-based planner (engine "planner").
	DecisionCacheHits  uint64 `json:"decision_cache_hits"`
	DecisionCacheMiss  uint64 `json:"decision_cache_misses"`
	DecisionCacheEvict uint64 `json:"decision_cache_evictions"`
	PlannerAudience    uint64 `json:"planner_route_audience,omitempty"`
	PlannerFlatForward uint64 `json:"planner_route_flat_forward,omitempty"`
	PlannerFlatReverse uint64 `json:"planner_route_flat_reverse,omitempty"`
	PlannerPrimary     uint64 `json:"planner_route_primary,omitempty"`
	PlannerMigrations  uint64 `json:"planner_migrations,omitempty"`
	WALAppends         uint64 `json:"wal_appends"`
	WALFsyncs          uint64 `json:"wal_fsyncs"`
	CommitGroups       uint64 `json:"server_commit_groups,omitempty"`
	QueueRejected      uint64 `json:"server_queue_rejected,omitempty"`
	CheckRejected      uint64 `json:"server_check_rejected,omitempty"`
	// The router_* fields are the shard router's own counters; all zero
	// outside sharded cells.
	RouterFastPath    uint64 `json:"router_fast_path,omitempty"`
	RouterScatter     uint64 `json:"router_scatter,omitempty"`
	RouterExpand      uint64 `json:"router_expand_calls,omitempty"`
	RouterAudHits     uint64 `json:"router_audience_cache_hits,omitempty"`
	RouterAudMisses   uint64 `json:"router_audience_cache_misses,omitempty"`
	RouterAudExtends  uint64 `json:"router_audience_cache_extends,omitempty"`
	RouterAudInvalids uint64 `json:"router_audience_cache_invalidations,omitempty"`
}

// delta subtracts prev's cumulative counters, attributing activity to one
// scenario window.
func (c Counters) delta(prev Counters) Counters {
	return Counters{
		Checks:             c.Checks - prev.Checks,
		BatchChecks:        c.BatchChecks - prev.BatchChecks,
		Audiences:          c.Audiences - prev.Audiences,
		Mutations:          c.Mutations - prev.Mutations,
		Batches:            c.Batches - prev.Batches,
		Republications:     c.Republications - prev.Republications,
		DecisionCacheHits:  c.DecisionCacheHits - prev.DecisionCacheHits,
		DecisionCacheMiss:  c.DecisionCacheMiss - prev.DecisionCacheMiss,
		DecisionCacheEvict: c.DecisionCacheEvict - prev.DecisionCacheEvict,
		PlannerAudience:    c.PlannerAudience - prev.PlannerAudience,
		PlannerFlatForward: c.PlannerFlatForward - prev.PlannerFlatForward,
		PlannerFlatReverse: c.PlannerFlatReverse - prev.PlannerFlatReverse,
		PlannerPrimary:     c.PlannerPrimary - prev.PlannerPrimary,
		PlannerMigrations:  c.PlannerMigrations - prev.PlannerMigrations,
		WALAppends:         c.WALAppends - prev.WALAppends,
		WALFsyncs:          c.WALFsyncs - prev.WALFsyncs,
		CommitGroups:       c.CommitGroups - prev.CommitGroups,
		QueueRejected:      c.QueueRejected - prev.QueueRejected,
		CheckRejected:      c.CheckRejected - prev.CheckRejected,
		RouterFastPath:     c.RouterFastPath - prev.RouterFastPath,
		RouterScatter:      c.RouterScatter - prev.RouterScatter,
		RouterExpand:       c.RouterExpand - prev.RouterExpand,
		RouterAudHits:      c.RouterAudHits - prev.RouterAudHits,
		RouterAudMisses:    c.RouterAudMisses - prev.RouterAudMisses,
		RouterAudExtends:   c.RouterAudExtends - prev.RouterAudExtends,
		RouterAudInvalids:  c.RouterAudInvalids - prev.RouterAudInvalids,
	}
}

// ScenarioResult is one benchmarked
// (mode, engine, scenario, topology, nodes[, shards][, rate]) cell.
type ScenarioResult struct {
	Mode     string `json:"mode"`
	Engine   string `json:"engine"`
	Scenario string `json:"scenario"`
	// Topology is the generator family the cell's graph came from
	// (osn, ldbc, ...); Streamed marks cells whose graph was streamed
	// into batch commits instead of materialized (large node counts).
	Topology string `json:"topology,omitempty"`
	Streamed bool   `json:"streamed,omitempty"`
	// Shards is the shard-router fan-out of a sharded cell (0 for the
	// unsharded direct targets).
	Shards      int            `json:"shards,omitempty"`
	Nodes       int            `json:"nodes"`
	Edges       int            `json:"edges"`
	Resources   int            `json:"resources"`
	Workers     int            `json:"workers"`
	RateLimit   float64        `json:"rate_limit,omitempty"`
	DurationSec float64        `json:"duration_sec"`
	Ops         uint64         `json:"ops"`
	Errors      uint64         `json:"errors"`
	Shed        uint64         `json:"shed"`
	Throughput  float64        `json:"throughput_ops_per_sec"`
	ShedRate    float64        `json:"shed_rate"`
	Latency     LatencySummary `json:"latency_us"`
	Counters    Counters       `json:"counters"`
}

// key identifies a scenario cell across artifacts. Topology, node count
// and open-loop rate are part of the identity, so one artifact can hold
// a scaling sweep (same scenario at several sizes) and a
// latency-under-load sweep (same cell at several arrival rates) side by
// side and the regression gate compares like with like.
func (s ScenarioResult) key() string {
	k := s.Mode + "/" + s.Engine + "/" + s.Scenario
	if s.Topology != "" {
		k += "/t=" + s.Topology
	}
	if s.Nodes > 0 {
		k += fmt.Sprintf("/n=%d", s.Nodes)
	}
	if s.Shards > 0 {
		k += fmt.Sprintf("/shards=%d", s.Shards)
	}
	if s.RateLimit > 0 {
		k += fmt.Sprintf("/r=%g", s.RateLimit)
	}
	return k
}

func newArtifact(seed int64, calibration float64) *Artifact {
	return &Artifact{
		Schema:           SchemaV1,
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		CPUs:             runtime.NumCPU(),
		Seed:             seed,
		CalibrationScore: calibration,
	}
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema != SchemaV1 {
		return nil, fmt.Errorf("%s: unsupported schema %q (want %s)", path, a.Schema, SchemaV1)
	}
	return &a, nil
}

func (a *Artifact) write(path string) error {
	sort.Slice(a.Scenarios, func(i, j int) bool { return a.Scenarios[i].key() < a.Scenarios[j].key() })
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// merge folds other's scenario cells into a, replacing same-key cells —
// how -append accumulates embedded and HTTP runs into one artifact.
func (a *Artifact) merge(other *Artifact) {
	byKey := make(map[string]int, len(a.Scenarios))
	for i, s := range a.Scenarios {
		byKey[s.key()] = i
	}
	for _, s := range other.Scenarios {
		if i, ok := byKey[s.key()]; ok {
			a.Scenarios[i] = s
		} else {
			a.Scenarios = append(a.Scenarios, s)
		}
	}
}

// calibrationScore times a fixed CPU-bound loop (xorshift over a 512KiB
// working set) and returns mega-iterations/second. It is the unit
// regression comparison normalizes throughput by, so baselines recorded
// on one machine transfer to another.
func calibrationScore() float64 {
	const iters = 1 << 23
	buf := make([]uint64, 1<<16)
	x := uint64(0x9E3779B97F4A7C15)
	var sink uint64
	start := time.Now()
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[x&(1<<16-1)] += x
		sink ^= buf[(x>>16)&(1<<16-1)]
	}
	elapsed := time.Since(start)
	runtime.KeepAlive(sink)
	if elapsed <= 0 {
		return 0
	}
	return float64(iters) / elapsed.Seconds() / 1e6
}

// minGateOps is the sample floor for gating: a baseline cell that
// completed fewer operations than this in its window is too noisy for a
// percentage threshold (one scheduler hiccup swings it), so compare only
// notes it instead of failing.
const minGateOps = 1000

// compareArtifacts checks current against baseline cell by cell. A cell
// regresses when its calibration-normalized throughput falls more than
// maxRegress below the baseline's. It returns the regression complaints
// (gate failures) and informational notes (missing cells, improvements,
// cells skipped for thin samples).
func compareArtifacts(baseline, current *Artifact, maxRegress float64) (regressions, notes []string) {
	scale := 1.0
	if baseline.CalibrationScore > 0 && current.CalibrationScore > 0 {
		scale = current.CalibrationScore / baseline.CalibrationScore
		notes = append(notes, fmt.Sprintf("calibration: baseline %.1f, current %.1f (scale %.2fx)",
			baseline.CalibrationScore, current.CalibrationScore, scale))
	}
	cur := make(map[string]ScenarioResult, len(current.Scenarios))
	for _, s := range current.Scenarios {
		cur[s.key()] = s
	}
	for _, b := range baseline.Scenarios {
		c, ok := cur[b.key()]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in current run", b.key()))
			continue
		}
		if b.Ops < minGateOps {
			notes = append(notes, fmt.Sprintf("%s: only %d baseline ops — too few to gate, skipping", b.key(), b.Ops))
			continue
		}
		expected := b.Throughput * scale
		if expected <= 0 {
			continue
		}
		change := c.Throughput/expected - 1
		switch {
		case change < -maxRegress:
			regressions = append(regressions, fmt.Sprintf(
				"%s: throughput %.0f ops/s is %.0f%% below baseline %.0f ops/s (normalized; limit %.0f%%)",
				b.key(), c.Throughput, -change*100, expected, maxRegress*100))
		default:
			notes = append(notes, fmt.Sprintf("%s: %+.0f%% vs baseline (%.0f ops/s)",
				b.key(), change*100, c.Throughput))
		}
	}
	return regressions, notes
}
