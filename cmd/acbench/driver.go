package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/generate"
	"reachac/internal/graph"
	"reachac/internal/httpapi"
	"reachac/internal/loadgen"
	"reachac/internal/server"
	"reachac/internal/shard"
	"reachac/internal/workload"
)

// target abstracts where operations land: the embedded facade or an
// acserverd over HTTP. A target carries per-worker rule stacks so churn
// revokes use the rule IDs its own shares returned.
type target interface {
	// do executes one generated operation for a worker.
	do(ctx context.Context, worker int, op workload.Op) error
	// stats returns the cumulative engine counters plus, when serving,
	// the server's; runScenario subtracts before from after.
	stats() (Counters, error)
	// classify maps an operation error to a loadgen outcome.
	classify(err error) loadgen.Outcome
	// engineName reports the engine actually serving, or "" when the
	// caller's requested kind is authoritative (an external daemon's
	// engine is whatever it was started with, not what acbench asked).
	engineName() string
	// close releases the target (self-hosted servers shut down here; an
	// external daemon gets this run's leftover mutations undone).
	close() error
}

// ruleStacks tracks, per worker and resource, the rule IDs returned by
// this run's shares, FIFO, matching the generator's churn accounting.
type ruleStacks [][][]string

func newRuleStacks(workers, resources int) ruleStacks {
	s := make(ruleStacks, workers)
	for w := range s {
		s[w] = make([][]string, resources)
	}
	return s
}

func (s ruleStacks) push(worker, resource int, rule string) {
	s[worker][resource] = append(s[worker][resource], rule)
}

func (s ruleStacks) pop(worker, resource int) (string, bool) {
	q := s[worker][resource]
	if len(q) == 0 {
		return "", false
	}
	rule := q[0]
	s[worker][resource] = q[1:]
	return rule, true
}

// --- embedded ---

// embeddedTarget drives the reachac facade in-process: pure engine +
// snapshot-publication cost, no wire.
type embeddedTarget struct {
	net   *reachac.Network
	specs []workload.ResourceSpec
	rules ruleStacks
}

// newEmbeddedTarget builds a network over a private clone of g (each
// scenario starts from the pristine graph), selects the engine — or, for
// the planner pseudo-engine, enables cost-based routing over the Online
// primary — and pre-shares the scenario's resources in one batch.
func newEmbeddedTarget(g *graph.Graph, kind reachac.EngineKind, specs []workload.ResourceSpec, workers int) (*embeddedTarget, error) {
	var n *reachac.Network
	if kind == plannerEngine {
		n = reachac.FromGraph(g.Clone(), reachac.WithPlanner(reachac.PlannerOptions{}))
	} else {
		n = reachac.FromGraph(g.Clone())
	}
	if err := shareSpecs(n, specs); err != nil {
		return nil, err
	}
	if kind != plannerEngine {
		if err := n.UseEngine(kind); err != nil {
			return nil, fmt.Errorf("engine %s: %w", kind, err)
		}
	}
	return &embeddedTarget{net: n, specs: specs, rules: newRuleStacks(workers, len(specs))}, nil
}

func shareSpecs(n *reachac.Network, specs []workload.ResourceSpec) error {
	return n.Batch(func(tx *reachac.Tx) error {
		for _, spec := range specs {
			if _, err := tx.Share(spec.Name, spec.Owner, spec.Paths...); err != nil {
				return fmt.Errorf("pre-sharing %s: %w", spec.Name, err)
			}
		}
		return nil
	})
}

func (t *embeddedTarget) do(ctx context.Context, worker int, op workload.Op) error {
	spec := t.specs[op.Resource]
	switch op.Kind {
	case workload.OpCheck:
		_, err := t.net.CanAccess(spec.Name, op.Requester)
		return err
	case workload.OpCheckBatch:
		_, err := t.net.CanAccessAll(spec.Name, op.Requesters)
		return err
	case workload.OpAudience:
		_, err := t.net.Audience(spec.Name)
		return err
	case workload.OpRelate:
		return t.net.Relate(op.From, op.To, op.RelType)
	case workload.OpUnrelate:
		return t.net.Unrelate(op.From, op.To, op.RelType)
	case workload.OpShare:
		rule, err := t.net.Share(spec.Name, op.Owner, op.Paths...)
		if err == nil {
			t.rules.push(worker, op.Resource, rule)
		}
		return err
	case workload.OpRevoke:
		rule, ok := t.rules.pop(worker, op.Resource)
		if !ok {
			// The matching share failed earlier; share instead to keep
			// policy pressure up, and track the rule so a later revoke
			// balances it.
			rule, err := t.net.Share(spec.Name, spec.Owner, spec.Paths...)
			if err == nil {
				t.rules.push(worker, op.Resource, rule)
			}
			return err
		}
		t.net.Revoke(spec.Name, rule)
		return nil
	default:
		return fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

func (t *embeddedTarget) stats() (Counters, error) {
	return countersFromStats(t.net.Stats(), nil), nil
}

func (t *embeddedTarget) classify(err error) loadgen.Outcome {
	if err != nil {
		return loadgen.Error
	}
	return loadgen.OK
}

func (t *embeddedTarget) engineName() string { return "" }

func (t *embeddedTarget) close() error { return nil }

// --- streamed embedded ---

// viewSource adapts a pinned engine snapshot to workload.Source, so
// streamed cells can build resource specs and generators without ever
// materializing a *graph.Graph.
type viewSource struct{ v *reachac.View }

func (s viewSource) NumNodes() int                { return s.v.NumUsers() }
func (s viewSource) OutDegree(n graph.NodeID) int { return s.v.OutDegree(n) }
func (s viewSource) Neighbors(n graph.NodeID, fn func(graph.NodeID) bool) {
	s.v.Relationships(n, func(to reachac.UserID, _ string) bool { return fn(to) })
}
func (s viewSource) HasEdge(from, to graph.NodeID, relType string) bool {
	return s.v.HasRelationship(from, to, relType)
}

// streamedCellTarget is an embeddedTarget whose graph arrived via
// Network.LoadTopology instead of FromGraph, plus the snapshot pin the
// workload was built against. The pin must be released (releaseView)
// before the measured window so publication advances cheaply under
// mutation.
type streamedCellTarget struct {
	embeddedTarget
	view *reachac.View
}

func (t *streamedCellTarget) releaseView() {
	if t.view != nil {
		t.view.Close()
		t.view = nil
	}
}

func (t *streamedCellTarget) close() error {
	t.releaseView()
	return t.embeddedTarget.close()
}

// streamedCell bundles what runScenario needs from a streamed build: the
// target, the Source the generators sample (valid until release), the
// pre-shared specs, and the loaded counts (the graph itself never
// existed to ask).
type streamedCell struct {
	target       *streamedCellTarget
	src          workload.Source
	specs        []workload.ResourceSpec
	nodes, edges int
}

func (c *streamedCell) release() { c.target.releaseView() }

// newStreamedCell builds an embedded cell for node counts at/above
// -stream-min: a fresh network, the topology streamed in as chunked
// batch commits (bounded peak memory — the point of the streaming
// generator layer), then specs and a pinned view for workload
// construction. Mirrors newEmbeddedTarget's ordering: share specs first,
// select the engine last.
func newStreamedCell(top generate.Topology, kind reachac.EngineKind, sc workload.Scenario, cfg benchConfig) (*streamedCell, error) {
	var n *reachac.Network
	if kind == plannerEngine {
		n = reachac.New(reachac.WithPlanner(reachac.PlannerOptions{}))
	} else {
		n = reachac.New()
	}
	if err := n.LoadTopology(top, reachac.DefaultLoadChunk); err != nil {
		return nil, err
	}
	v, err := n.View()
	if err != nil {
		return nil, err
	}
	src := viewSource{v}
	specs := sc.Resources(src, cfg.resources, cfg.seed+1)
	if err := shareSpecs(n, specs); err != nil {
		v.Close()
		return nil, err
	}
	if kind != plannerEngine {
		if err := n.UseEngine(kind); err != nil {
			v.Close()
			return nil, fmt.Errorf("engine %s: %w", kind, err)
		}
	}
	t := &streamedCellTarget{
		embeddedTarget: embeddedTarget{net: n, specs: specs, rules: newRuleStacks(cfg.workers, len(specs))},
		view:           v,
	}
	return &streamedCell{
		target: t, src: src, specs: specs,
		nodes: n.NumUsers(), edges: n.NumRelationships(),
	}, nil
}

// --- sharded embedded ---

// shardedTarget drives an in-process shard router over N embedded
// networks: hash-ring placement, boundary-edge replication and
// scatter-gather cost included, but no wire. The graph and resources are
// seeded THROUGH the router, so the benchmark exercises the same placement
// the router will query.
type shardedTarget struct {
	r     *shard.Router
	specs []workload.ResourceSpec
	rules ruleStacks
}

func (t *shardedTarget) name(id graph.NodeID) string { return generate.UserName(int(id)) }

func newShardedTarget(g *graph.Graph, kind reachac.EngineKind, specs []workload.ResourceSpec, workers, shards int) (*shardedTarget, error) {
	backends := make([]shard.Backend, shards)
	for i := range backends {
		var n *reachac.Network
		if kind == plannerEngine {
			n = reachac.New(reachac.WithPlanner(reachac.PlannerOptions{}))
		} else {
			n = reachac.New(reachac.WithEngine(kind))
		}
		backends[i] = shard.NewEmbedded(n)
	}
	ctx := context.Background()
	r, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		return nil, err
	}
	t := &shardedTarget{r: r, specs: specs, rules: newRuleStacks(workers, len(specs))}
	for i, nodes := 0, g.NumNodes(); i < nodes; i++ {
		if _, err := r.AddUser(ctx, generate.UserName(i), nil); err != nil {
			return nil, fmt.Errorf("seeding user %d: %w", i, err)
		}
	}
	var seedErr error
	g.Edges(func(e graph.Edge) bool {
		err := r.Relate(ctx, t.name(e.From), t.name(e.To), g.LabelName(e.Label), false)
		if err != nil {
			seedErr = fmt.Errorf("seeding relationship: %w", err)
			return false
		}
		return true
	})
	if seedErr != nil {
		return nil, seedErr
	}
	for _, spec := range specs {
		if _, err := r.Share(ctx, spec.Name, t.name(spec.Owner), spec.Paths); err != nil {
			return nil, fmt.Errorf("pre-sharing %s: %w", spec.Name, err)
		}
	}
	return t, nil
}

func (t *shardedTarget) do(ctx context.Context, worker int, op workload.Op) error {
	spec := t.specs[op.Resource]
	switch op.Kind {
	case workload.OpCheck:
		_, err := t.r.Check(ctx, spec.Name, t.name(op.Requester))
		return err
	case workload.OpCheckBatch:
		names := make([]string, len(op.Requesters))
		for i, id := range op.Requesters {
			names[i] = t.name(id)
		}
		_, err := t.r.CheckBatch(ctx, spec.Name, names)
		return err
	case workload.OpAudience:
		_, _, err := t.r.Audience(ctx, spec.Name)
		return err
	case workload.OpRelate:
		return t.r.Relate(ctx, t.name(op.From), t.name(op.To), op.RelType, false)
	case workload.OpUnrelate:
		return t.r.Unrelate(ctx, t.name(op.From), t.name(op.To), op.RelType)
	case workload.OpShare:
		rule, err := t.r.Share(ctx, spec.Name, t.name(op.Owner), op.Paths)
		if err == nil {
			t.rules.push(worker, op.Resource, rule)
		}
		return err
	case workload.OpRevoke:
		rule, ok := t.rules.pop(worker, op.Resource)
		if !ok {
			rule, err := t.r.Share(ctx, spec.Name, t.name(spec.Owner), spec.Paths)
			if err == nil {
				t.rules.push(worker, op.Resource, rule)
			}
			return err
		}
		_, err := t.r.Revoke(ctx, spec.Name, rule)
		return err
	default:
		return fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

func (t *shardedTarget) stats() (Counters, error) {
	st := t.r.Stats(context.Background())
	c := countersFromStats(st.Stats, nil)
	if rs := st.Router; rs != nil {
		c.RouterFastPath = rs.FastPath
		c.RouterScatter = rs.Scatter
		c.RouterExpand = rs.ExpandCalls
		c.RouterAudHits = rs.AudienceCacheHits
		c.RouterAudMisses = rs.AudienceCacheMisses
		c.RouterAudExtends = rs.AudienceCacheExtends
		c.RouterAudInvalids = rs.AudienceCacheInvalidate
	}
	return c, nil
}

func (t *shardedTarget) classify(err error) loadgen.Outcome {
	if err != nil {
		return loadgen.Error
	}
	return loadgen.OK
}

func (t *shardedTarget) engineName() string { return "" }

func (t *shardedTarget) close() error { return t.r.Close() }

// --- HTTP ---

// httpTarget drives an acserverd over real HTTP through the typed client:
// serving-layer cost included (admission control, coalesced WAL commits,
// JSON encode/decode, loopback TCP).
type httpTarget struct {
	c     *client.Client
	specs []workload.ResourceSpec
	rules ruleStacks
	// engine is the daemon-reported engine kind (external mode, where
	// the daemon — not acbench — chose it); "" means the caller's kind
	// stands.
	engine string
	// cleanup, set for external daemons (which persist across scenario
	// cells and acbench runs), makes close undo this run's leftover
	// mutations: still-live toggled edges and still-outstanding churn
	// rules. liveEdges is per-worker (workers run serially within
	// themselves; close runs after all of them stop).
	cleanup   bool
	liveEdges [][]edgeRef
	shutdown  func() error
}

// edgeRef names one relationship this run added over the wire.
type edgeRef struct {
	from, to, relType string
}

func (t *httpTarget) name(id graph.NodeID) string { return generate.UserName(int(id)) }

func (t *httpTarget) engineName() string { return t.engine }

func (t *httpTarget) do(ctx context.Context, worker int, op workload.Op) error {
	spec := t.specs[op.Resource]
	switch op.Kind {
	case workload.OpCheck:
		_, err := t.c.Check(ctx, spec.Name, t.name(op.Requester))
		return err
	case workload.OpCheckBatch:
		names := make([]string, len(op.Requesters))
		for i, id := range op.Requesters {
			names[i] = t.name(id)
		}
		_, err := t.c.CheckBatch(ctx, spec.Name, names)
		return err
	case workload.OpAudience:
		_, err := t.c.Audience(ctx, spec.Name)
		return err
	case workload.OpRelate:
		err := t.c.Relate(ctx, t.name(op.From), t.name(op.To), op.RelType)
		if err == nil && t.cleanup {
			t.liveEdges[worker] = append(t.liveEdges[worker],
				edgeRef{t.name(op.From), t.name(op.To), op.RelType})
		}
		return err
	case workload.OpUnrelate:
		err := t.c.Unrelate(ctx, t.name(op.From), t.name(op.To), op.RelType)
		if err == nil && t.cleanup {
			t.dropLiveEdge(worker, edgeRef{t.name(op.From), t.name(op.To), op.RelType})
		}
		return err
	case workload.OpShare:
		rule, err := t.c.Share(ctx, spec.Name, t.name(op.Owner), op.Paths...)
		if err == nil {
			t.rules.push(worker, op.Resource, rule)
		}
		return err
	case workload.OpRevoke:
		rule, ok := t.rules.pop(worker, op.Resource)
		if !ok {
			rule, err := t.c.Share(ctx, spec.Name, t.name(spec.Owner), spec.Paths...)
			if err == nil {
				t.rules.push(worker, op.Resource, rule)
			}
			return err
		}
		_, err := t.c.Revoke(ctx, spec.Name, rule)
		return err
	default:
		return fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

func (t *httpTarget) stats() (Counters, error) {
	st, err := t.c.Stats(context.Background())
	if err != nil {
		return Counters{}, err
	}
	return countersFromStats(st.Stats, &st.Server), nil
}

func (t *httpTarget) classify(err error) loadgen.Outcome {
	switch {
	case err == nil:
		return loadgen.OK
	case errors.Is(err, client.ErrOverloaded):
		return loadgen.Shed
	default:
		return loadgen.Error
	}
}

func (t *httpTarget) dropLiveEdge(worker int, ref edgeRef) {
	edges := t.liveEdges[worker]
	for i, e := range edges {
		if e == ref {
			t.liveEdges[worker] = append(edges[:i], edges[i+1:]...)
			return
		}
	}
}

func (t *httpTarget) close() error {
	if t.cleanup {
		// Undo what the run left behind so the persistent daemon returns
		// to its pre-run state and the next scenario cell (with identical
		// generator seeds and pools) starts clean instead of colliding
		// with still-live duplicates.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		for _, edges := range t.liveEdges {
			for _, e := range edges {
				_ = t.c.Unrelate(ctx, e.from, e.to, e.relType)
			}
		}
		for _, perRes := range t.rules {
			for r, queue := range perRes {
				for _, rule := range queue {
					_, _ = t.c.Revoke(ctx, t.specs[r].Name, rule)
				}
			}
		}
	}
	if t.shutdown != nil {
		return t.shutdown()
	}
	return nil
}

// newSelfHostedTarget starts a real acserverd serving stack (durable
// network in a temp directory, coalescing server, loopback listener) for
// one engine kind, imports g into it, pre-shares the resources, and
// returns an httpTarget driving it.
func newSelfHostedTarget(g *graph.Graph, kind reachac.EngineKind, specs []workload.ResourceSpec, workers int, sync reachac.Option) (*httpTarget, error) {
	dir, err := os.MkdirTemp("", "acbench-*")
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*httpTarget, error) {
		os.RemoveAll(dir)
		return nil, e
	}
	opts := []reachac.Option{reachac.WithEngine(kind), sync}
	if kind == plannerEngine {
		opts = []reachac.Option{reachac.WithEngine(reachac.Online), reachac.WithPlanner(reachac.PlannerOptions{}), sync}
	}
	n, err := reachac.Open(dir, opts...)
	if err != nil {
		return fail(err)
	}
	if err := importGraph(n, g); err != nil {
		n.Close()
		return fail(fmt.Errorf("importing graph: %w", err))
	}
	if err := shareSpecs(n, specs); err != nil {
		n.Close()
		return fail(err)
	}
	srv := server.New(n, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Shutdown(context.Background())
		return fail(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	c, err := client.New(ln.Addr().String())
	if err != nil {
		hs.Close()
		srv.Shutdown(context.Background())
		return fail(err)
	}
	shutdown := func() error {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		os.RemoveAll(dir)
		return err
	}
	return &httpTarget{c: c, specs: specs, rules: newRuleStacks(workers, len(specs)), shutdown: shutdown}, nil
}

// newExternalTarget drives an already-running acserverd at addr. Unless
// alreadySeeded (a previous scenario cell of this run loaded it), the
// graph and resources are loaded over the wire; duplicate users,
// relationships and re-registered resources are tolerated so repeated
// runs against a persistent daemon work. The cell's engine label comes
// from the daemon's own stats — the daemon, not acbench, chose it.
func newExternalTarget(addr string, g *graph.Graph, specs []workload.ResourceSpec, workers int, alreadySeeded bool) (*httpTarget, error) {
	c, err := client.New(addr)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	st, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("probing %s: %w", addr, err)
	}
	if !alreadySeeded {
		for i, node := 0, g.NumNodes(); i < node; i++ {
			if _, err := c.AddUser(ctx, generate.UserName(i), nil); err != nil && !errors.Is(err, reachac.ErrDuplicateUser) {
				return nil, fmt.Errorf("seeding user %d: %w", i, err)
			}
		}
		var seedErr error
		g.Edges(func(e graph.Edge) bool {
			err := c.Relate(ctx, generate.UserName(int(e.From)), generate.UserName(int(e.To)), g.LabelName(e.Label))
			if err != nil && !errors.Is(err, reachac.ErrDuplicateRelationship) {
				seedErr = fmt.Errorf("seeding relationship: %w", err)
				return false
			}
			return true
		})
		if seedErr != nil {
			return nil, seedErr
		}
		for _, spec := range specs {
			if _, err := c.Share(ctx, spec.Name, generate.UserName(int(spec.Owner)), spec.Paths...); err != nil {
				return nil, fmt.Errorf("pre-sharing %s: %w", spec.Name, err)
			}
		}
	}
	return &httpTarget{
		c:         c,
		specs:     specs,
		rules:     newRuleStacks(workers, len(specs)),
		engine:    st.Engine,
		cleanup:   true,
		liveEdges: make([][]edgeRef, workers),
	}, nil
}

// importGraph replays g into a durable network as one atomic batch (node
// IDs are reassigned densely in node order, matching g's own IDs).
func importGraph(n *reachac.Network, g *graph.Graph) error {
	return n.Batch(func(tx *reachac.Tx) error {
		var err error
		g.Nodes(func(node graph.Node) bool {
			if _, err = tx.AddUser(node.Name); err != nil {
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		g.Edges(func(e graph.Edge) bool {
			if err = tx.Relate(e.From, e.To, g.LabelName(e.Label)); err != nil {
				return false
			}
			return true
		})
		return err
	})
}

func countersFromStats(st reachac.Stats, srv *httpapi.ServerStats) Counters {
	c := Counters{
		Checks:             st.Checks,
		BatchChecks:        st.BatchChecks,
		Audiences:          st.Audiences,
		Mutations:          st.Mutations,
		Batches:            st.Batches,
		Republications:     st.Republications,
		DecisionCacheHits:  st.DecisionCacheHits,
		DecisionCacheMiss:  st.DecisionCacheMisses,
		DecisionCacheEvict: st.DecisionCacheEvictions,
		PlannerAudience:    st.PlannerRouteAudience,
		PlannerFlatForward: st.PlannerRouteFlatForward,
		PlannerFlatReverse: st.PlannerRouteFlatReverse,
		PlannerPrimary:     st.PlannerRoutePrimary,
		PlannerMigrations:  st.PlannerMigrations,
		WALAppends:         st.WALAppends,
		WALFsyncs:          st.WALFsyncs,
	}
	if srv != nil {
		c.CommitGroups = srv.CommitGroups
		c.QueueRejected = srv.QueueRejected
		c.CheckRejected = srv.CheckRejected
	}
	return c
}
