// Command acbench is the repo's workload/load-generation benchmark: it
// drives mixed-operation scenarios (internal/workload's registry) through
// a closed-loop or paced worker pool (internal/loadgen) against either
// the embedded reachac facade or a real acserverd over HTTP, and writes a
// machine-readable artifact (BENCH_acbench.json) with per-scenario
// throughput, latency percentiles, error/shed counts and engine/WAL
// counter deltas — the perf trajectory successive PRs are compared on.
//
// Run benchmarks:
//
//	acbench -mode embedded -engines online,index -scenarios all \
//	        -nodes 2000 -duration 3s -out BENCH_acbench.json
//	acbench -mode http                   # self-hosts a real serving stack
//	acbench -mode http -addr host:8708   # drives an external daemon
//	acbench -mode both -append           # accumulate both into one artifact
//
// Scaling sweeps: -nodes takes a comma list and -topology selects the
// generator family, so one run records a node-count scaling curve
// (-topology ldbc -nodes 10000,100000,1000000). Embedded cells at or
// above -stream-min nodes stream the topology straight into batch
// commits instead of materializing a graph, keeping peak memory bounded.
//
// Open-loop latency-under-load: -rates sweeps fixed arrival rates
// (-rates 2000,10000,40000), recording, per rate, the latency
// distribution at that load and the shed/error pressure — the
// latency-under-load curve closed-loop throughput numbers cannot show.
//
// Compare against a committed baseline (the CI regression gate):
//
//	acbench -compare bench/baseline.json -in BENCH_acbench.json -max-regress 0.25
//
// Comparison normalizes throughput by each artifact's calibration score
// (a fixed CPU reference loop timed at startup), so a baseline recorded
// on one machine transfers to a differently-sized CI runner.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"reachac"
	"reachac/internal/benchutil"
	"reachac/internal/generate"
	"reachac/internal/graph"
	"reachac/internal/loadgen"
	"reachac/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acbench: ")
	var (
		mode        = flag.String("mode", "embedded", "benchmark mode: embedded, http, or both")
		addr        = flag.String("addr", "", "drive an external acserverd at this address (http mode; default self-hosts one per engine)")
		engines     = flag.String("engines", "online,index", "comma-separated engine kinds, 'planner' (cost-based routing), or 'all'")
		scenarios   = flag.String("scenarios", "all", "comma-separated scenario names from the workload registry, or 'all' (have: "+strings.Join(workload.Names(), ", ")+")")
		nodesCSV    = flag.String("nodes", "2000", "social graph size, or a comma list for a scaling sweep")
		topology    = flag.String("topology", "osn", "topology family: "+strings.Join(generate.Kinds(), ", "))
		communities = flag.Int("communities", 0, "planted community count (0 = per-family default)")
		degree      = flag.Int("degree", 8, "average out-degree of the generated graph")
		streamMin   = flag.Int("stream-min", 200_000, "node count at which embedded cells stream the topology into batch commits instead of materializing the graph")
		resources   = flag.Int("resources", 48, "pre-shared resources per scenario")
		workers     = flag.Int("workers", 8, "load-generating workers")
		duration    = flag.Duration("duration", 3*time.Second, "measured window per scenario")
		warmup      = flag.Duration("warmup", 500*time.Millisecond, "warmup before the measured window")
		rate        = flag.Float64("rate", 0, "open-loop target ops/sec across all workers (0 = closed loop)")
		ratesCSV    = flag.String("rates", "", "comma list of open-loop arrival rates to sweep (overrides -rate)")
		batch       = flag.Int("batch", 16, "check-batch requesters per request")
		zipf        = flag.Float64("zipf", 0, "requester/resource popularity skew exponent, must be > 1 (0 = workload default 1.2)")
		shardsCSV   = flag.String("shards", "", "comma-separated shard counts; embedded mode routes each cell through an in-process shard router (http mode: labels the cells of an external acshardd)")
		seed        = flag.Int64("seed", 1, "workload seed")
		syncMode    = flag.String("sync", "interval", "self-hosted server WAL fsync policy: always, interval, never")
		out         = flag.String("out", "BENCH_acbench.json", "artifact output path")
		appendArt   = flag.Bool("append", false, "merge results into an existing artifact at -out instead of replacing it")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		compare     = flag.String("compare", "", "compare -in against this baseline artifact and exit (nonzero on regression)")
		in          = flag.String("in", "", "artifact to compare (default: -out)")
		maxReg      = flag.Float64("max-regress", 0.25, "allowed normalized throughput regression before -compare fails")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, orDefault(*in, *out), *maxReg))
	}

	modes, err := parseModes(*mode)
	if err != nil {
		log.Fatal(err)
	}
	kinds, err := parseEngines(*engines)
	if err != nil {
		log.Fatal(err)
	}
	scens, err := parseScenarios(*scenarios, *batch)
	if err != nil {
		log.Fatal(err)
	}
	syncOpt, err := parseSync(*syncMode)
	if err != nil {
		log.Fatal(err)
	}
	shardCounts, err := parseShards(*shardsCSV)
	if err != nil {
		log.Fatal(err)
	}
	nodeCounts, err := parseNodeCounts(*nodesCSV)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := parseRates(*ratesCSV, *rate)
	if err != nil {
		log.Fatal(err)
	}
	if *zipf != 0 && *zipf <= 1 {
		log.Fatalf("-zipf %v: the skew exponent must be > 1", *zipf)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	log.Printf("calibrating host")
	art := newArtifact(*seed, calibrationScore())
	log.Printf("calibration score %.1f Mops/s, %d CPUs", art.CalibrationScore, art.CPUs)

	cfg := benchConfig{
		degree: *degree, resources: *resources,
		workers: *workers, duration: *duration, warmup: *warmup,
		zipfS: *zipf, seed: *seed, addr: *addr, syncOpt: syncOpt,
		streamMin: *streamMin,
		seeded:    make(map[string]bool),
	}

	for _, nodeCount := range nodeCounts {
		top, err := generate.New(*topology,
			generate.WithNodes(nodeCount), generate.WithDegree(*degree),
			generate.WithCommunities(*communities), generate.WithSeed(*seed))
		if err != nil {
			log.Fatal(err)
		}
		env := cellEnv{top: top}
		if nodeCount < *streamMin {
			if env.g, err = generate.Build(top); err != nil {
				log.Fatal(err)
			}
			log.Printf("graph: %s, %d users, %d relationships",
				top.Kind(), env.g.NumNodes(), env.g.NumEdges())
		} else {
			log.Printf("graph: %s, %d users (streamed — no materialization)", top.Kind(), nodeCount)
		}
		for _, m := range modes {
			for _, kind := range kinds {
				for _, sc := range scens {
					for _, shardCount := range shardCounts {
						for _, r := range rates {
							cellCfg := cfg
							cellCfg.nodes = nodeCount
							cellCfg.shards = shardCount
							cellCfg.rate = r
							res, err := runScenario(m, env, kind, sc, cellCfg)
							if err != nil {
								log.Fatalf("%s/%s/%s: %v", m, engineLabel(kind), sc.Name, err)
							}
							art.Scenarios = append(art.Scenarios, res)
							label := res.Scenario
							if res.Shards > 0 {
								label = fmt.Sprintf("%s/s=%d", res.Scenario, res.Shards)
							}
							if res.RateLimit > 0 {
								label = fmt.Sprintf("%s@%g", label, res.RateLimit)
							}
							log.Printf("%-8s %-16s %-18s n=%-8d %9.0f ops/s  p50 %7.0fµs  p99 %7.0fµs  err %d  shed %d",
								res.Mode, res.Engine, label, res.Nodes, res.Throughput,
								res.Latency.P50, res.Latency.P99, res.Errors, res.Shed)
						}
					}
				}
				if m == "http" && cfg.addr != "" {
					break // an external daemon serves one engine; don't redrive it per kind
				}
			}
		}
	}

	if *appendArt {
		if prev, err := readArtifact(*out); err == nil {
			prev.merge(art)
			prev.CalibrationScore = art.CalibrationScore
			art = prev
		} else if !os.IsNotExist(err) {
			log.Fatalf("-append: %v", err)
		}
	}
	if err := art.write(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d scenarios)", *out, len(art.Scenarios))
	printTable(art)
}

type benchConfig struct {
	nodes, degree, resources, workers int
	duration, warmup                  time.Duration
	rate                              float64
	// zipfS overrides the workload's popularity skew exponent (0 keeps
	// the workload default).
	zipfS float64
	// shards, when positive, routes an embedded cell through an
	// in-process shard router over that many embedded shard networks;
	// in http mode it only labels the cell (the external daemon's
	// topology is whatever it was started with).
	shards int
	// streamMin is the node count at which embedded cells switch to the
	// streaming loader.
	streamMin int
	seed      int64
	addr      string
	syncOpt   reachac.Option
	// seeded tracks external daemons this process already loaded the
	// graph into, so later scenario cells skip the redundant wire-seeding.
	seeded map[string]bool
}

// cellEnv is the per-node-count environment scenario cells share: the
// topology, and — below the streaming threshold — its materialization.
// A nil g means cells stream the topology themselves (embedded mode
// only).
type cellEnv struct {
	top generate.Topology
	g   *graph.Graph
}

// runScenario benchmarks one (mode, engine, scenario[, shards, rate])
// cell: build the target, spin up per-worker deterministic generators,
// run the loadgen window, and fold the counter deltas into a
// ScenarioResult.
func runScenario(mode string, env cellEnv, kind reachac.EngineKind, sc workload.Scenario, cfg benchConfig) (ScenarioResult, error) {
	var (
		t              target
		src            workload.Source
		specs          []workload.ResourceSpec
		nNodes, nEdges int
		streamed       bool
		err            error
	)
	if env.g == nil {
		// Streamed cell: the graph is never materialized; workload
		// construction samples a pinned engine snapshot instead.
		if mode != "embedded" || cfg.shards > 0 {
			return ScenarioResult{}, fmt.Errorf(
				"%d nodes is at/above -stream-min: streamed cells support unsharded embedded mode only", env.top.Nodes())
		}
		streamed = true
		st, err := newStreamedCell(env.top, kind, sc, cfg)
		if err != nil {
			return ScenarioResult{}, err
		}
		t, src, specs = st.target, st.src, st.specs
		nNodes, nEdges = st.nodes, st.edges
		defer st.release()
	} else {
		src = env.g
		specs = sc.Resources(env.g, cfg.resources, cfg.seed+1)
		switch mode {
		case "embedded":
			if cfg.shards > 0 {
				t, err = newShardedTarget(env.g, kind, specs, cfg.workers, cfg.shards)
			} else {
				t, err = newEmbeddedTarget(env.g, kind, specs, cfg.workers)
			}
		case "http":
			if cfg.addr != "" {
				t, err = newExternalTarget(cfg.addr, env.g, specs, cfg.workers, cfg.seeded[cfg.addr])
				if err == nil {
					cfg.seeded[cfg.addr] = true
				}
			} else {
				t, err = newSelfHostedTarget(env.g, kind, specs, cfg.workers, cfg.syncOpt)
			}
		default:
			err = fmt.Errorf("unknown mode %q", mode)
		}
		if err != nil {
			return ScenarioResult{}, err
		}
		nNodes, nEdges = env.g.NumNodes(), env.g.NumEdges()
	}
	defer t.close()

	gens := make([]*workload.Generator, cfg.workers)
	for w := range gens {
		gens[w] = workload.NewGenerator(src, sc.Mix, sc.GenConfig(workload.GenConfig{
			Resources: specs,
			ZipfS:     cfg.zipfS,
			Worker:    w,
			Workers:   cfg.workers,
		}), cfg.seed+int64(w)*7919)
	}
	if streamed {
		// Generators are built; drop the snapshot pin before the run so
		// publication advances cheaply under mutation.
		t.(*streamedCellTarget).releaseView()
	}
	before, err := t.stats()
	if err != nil {
		return ScenarioResult{}, err
	}
	res := loadgen.Run(context.Background(), loadgen.Config{
		Workers:  cfg.workers,
		Duration: cfg.duration,
		Warmup:   cfg.warmup,
		Rate:     cfg.rate,
		Classify: t.classify,
	}, func(ctx context.Context, worker int) error {
		return t.do(ctx, worker, gens[worker].Next())
	})
	after, err := t.stats()
	if err != nil {
		return ScenarioResult{}, err
	}

	engine := t.engineName()
	if engine == "" {
		engine = engineLabel(kind)
	}
	total := res.Ops + res.Errors + res.Shed
	sr := ScenarioResult{
		Mode:        mode,
		Engine:      engine,
		Scenario:    sc.Name,
		Topology:    env.top.Kind(),
		Streamed:    streamed,
		Shards:      cfg.shards,
		Nodes:       nNodes,
		Edges:       nEdges,
		Resources:   len(specs),
		Workers:     cfg.workers,
		RateLimit:   cfg.rate,
		DurationSec: res.Elapsed.Seconds(),
		Ops:         res.Ops,
		Errors:      res.Errors,
		Shed:        res.Shed,
		Throughput:  res.Throughput(),
		Latency:     summarize(res.Hist),
		Counters:    after.delta(before),
	}
	if total > 0 {
		sr.ShedRate = float64(res.Shed) / float64(total)
	}
	return sr, nil
}

// runCompare loads the two artifacts and applies the regression gate.
func runCompare(baselinePath, currentPath string, maxRegress float64) int {
	baseline, err := readArtifact(baselinePath)
	if err != nil {
		log.Printf("baseline: %v", err)
		return 2
	}
	current, err := readArtifact(currentPath)
	if err != nil {
		log.Printf("current: %v", err)
		return 2
	}
	regressions, notes := compareArtifacts(baseline, current, maxRegress)
	for _, n := range notes {
		log.Printf("note: %s", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			log.Printf("REGRESSION: %s", r)
		}
		log.Printf("%d scenario(s) regressed more than %.0f%%; rerun, or re-baseline intentionally (see README) ", len(regressions), maxRegress*100)
		return 1
	}
	log.Printf("no regression beyond %.0f%% across %d baseline scenario(s)", maxRegress*100, len(baseline.Scenarios))
	return 0
}

func printTable(a *Artifact) {
	tbl := benchutil.NewTable("mode", "engine", "scenario", "nodes", "rate", "ops/s", "p50", "p99", "p99.9", "err", "shed", "fsyncs")
	us := func(v float64) string { return benchutil.Dur(time.Duration(v * 1e3)) }
	for _, s := range a.Scenarios {
		rateCol := "-"
		if s.RateLimit > 0 {
			rateCol = fmt.Sprintf("%g", s.RateLimit)
		}
		tbl.AddRow(s.Mode, s.Engine, s.Scenario,
			fmt.Sprintf("%d", s.Nodes), rateCol,
			fmt.Sprintf("%.0f", s.Throughput),
			us(s.Latency.P50), us(s.Latency.P99), us(s.Latency.P999),
			fmt.Sprintf("%d", s.Errors), fmt.Sprintf("%d", s.Shed),
			fmt.Sprintf("%d", s.Counters.WALFsyncs))
	}
	tbl.Fprint(os.Stdout)
}

// --- flag parsing ---

func orDefault(v, def string) string {
	if v != "" {
		return v
	}
	return def
}

func parseModes(s string) ([]string, error) {
	switch s {
	case "embedded", "http":
		return []string{s}, nil
	case "both":
		return []string{"embedded", "http"}, nil
	}
	return nil, fmt.Errorf("unknown -mode %q (have embedded, http, both)", s)
}

var allEngines = []reachac.EngineKind{
	reachac.Online, reachac.OnlineDFS, reachac.OnlineAdaptive,
	reachac.Closure, reachac.Index, reachac.IndexPaperJoin,
	plannerEngine,
}

// plannerEngine is a pseudo engine kind: the target is built with
// WithPlanner routing enabled over the Online primary instead of a static
// evaluator selection. It never reaches reachac.UseEngine.
const plannerEngine reachac.EngineKind = -1

// engineLabel names a cell's engine column, mapping the planner sentinel
// to its artifact label.
func engineLabel(kind reachac.EngineKind) string {
	if kind == plannerEngine {
		return "planner"
	}
	return kind.String()
}

func parseEngines(s string) ([]reachac.EngineKind, error) {
	if s == "all" {
		return allEngines, nil
	}
	var kinds []reachac.EngineKind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		kind, err := engineByName(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-engines is empty")
	}
	return kinds, nil
}

// engineByName accepts both the canonical EngineKind names and acquery's
// shorthands.
func engineByName(s string) (reachac.EngineKind, error) {
	for _, k := range allEngines {
		if s == k.String() {
			return k, nil
		}
	}
	switch s {
	case "online":
		return reachac.Online, nil
	case "index":
		return reachac.Index, nil
	case "index-paper":
		return reachac.IndexPaperJoin, nil
	case "planner":
		return plannerEngine, nil
	}
	return 0, fmt.Errorf("unknown engine %q (have online, online-dfs, online-adaptive, closure, index, index-paper, planner)", s)
}

// parseScenarios resolves -scenarios against the workload registry,
// applying the -batch override to scenarios that batch.
func parseScenarios(s string, batch int) ([]workload.Scenario, error) {
	var scens []workload.Scenario
	if s == "all" {
		scens = workload.Scenarios()
	} else {
		for _, name := range strings.Split(s, ",") {
			sc, ok := workload.Lookup(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(workload.Names(), ", "))
			}
			scens = append(scens, sc)
		}
	}
	for i := range scens {
		if scens[i].Mix.BatchSize > 0 && batch > 0 {
			scens[i].Mix.BatchSize = batch
		}
	}
	if len(scens) == 0 {
		return nil, fmt.Errorf("-scenarios is empty")
	}
	return scens, nil
}

// parseShards parses the -shards comma list; empty means one unsharded
// cell per (mode, engine, scenario), the pre-sharding behavior.
func parseShards(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{0}, nil
	}
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards %q: counts must be positive integers", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// parseNodeCounts parses the -nodes comma list for scaling sweeps.
func parseNodeCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("-nodes %q: counts must be integers >= 2", s)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-nodes is empty")
	}
	return counts, nil
}

// parseRates parses the -rates sweep; empty falls back to the single
// -rate value (0 = closed loop).
func parseRates(s string, fallback float64) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return []float64{fallback}, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("-rates %q: arrival rates must be positive numbers", s)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

func parseSync(s string) (reachac.Option, error) {
	switch s {
	case "always":
		return reachac.WithSync(reachac.SyncAlways), nil
	case "interval":
		return reachac.WithSyncInterval(2 * time.Millisecond), nil
	case "never":
		return reachac.WithSync(reachac.SyncNever), nil
	}
	return nil, fmt.Errorf("unknown -sync %q (have always, interval, never)", s)
}
