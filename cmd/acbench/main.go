// Command acbench is the repo's workload/load-generation benchmark: it
// drives mixed-operation scenarios (internal/workload) through a
// closed-loop or paced worker pool (internal/loadgen) against either the
// embedded reachac facade or a real acserverd over HTTP, and writes a
// machine-readable artifact (BENCH_acbench.json) with per-scenario
// throughput, latency percentiles, error/shed counts and engine/WAL
// counter deltas — the perf trajectory successive PRs are compared on.
//
// Run benchmarks:
//
//	acbench -mode embedded -engines online,index -scenarios all \
//	        -nodes 2000 -duration 3s -out BENCH_acbench.json
//	acbench -mode http                   # self-hosts a real serving stack
//	acbench -mode http -addr host:8708   # drives an external daemon
//	acbench -mode both -append           # accumulate both into one artifact
//
// Compare against a committed baseline (the CI regression gate):
//
//	acbench -compare bench/baseline.json -in BENCH_acbench.json -max-regress 0.25
//
// Comparison normalizes throughput by each artifact's calibration score
// (a fixed CPU reference loop timed at startup), so a baseline recorded
// on one machine transfers to a differently-sized CI runner.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"reachac"
	"reachac/internal/benchutil"
	"reachac/internal/generate"
	"reachac/internal/graph"
	"reachac/internal/loadgen"
	"reachac/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acbench: ")
	var (
		mode      = flag.String("mode", "embedded", "benchmark mode: embedded, http, or both")
		addr      = flag.String("addr", "", "drive an external acserverd at this address (http mode; default self-hosts one per engine)")
		engines   = flag.String("engines", "online,index", "comma-separated engine kinds, 'planner' (cost-based routing), or 'all'")
		scenarios = flag.String("scenarios", "all", "comma-separated scenario mixes, or 'all' (have: read-heavy, write-heavy, check-batch, audience-scan, churn, mixed-shape)")
		nodes     = flag.Int("nodes", 2000, "social graph size")
		degree    = flag.Int("degree", 8, "average out-degree of the generated graph")
		resources = flag.Int("resources", 48, "pre-shared resources per scenario")
		workers   = flag.Int("workers", 8, "load-generating workers")
		duration  = flag.Duration("duration", 3*time.Second, "measured window per scenario")
		warmup    = flag.Duration("warmup", 500*time.Millisecond, "warmup before the measured window")
		rate      = flag.Float64("rate", 0, "open-loop target ops/sec across all workers (0 = closed loop)")
		batch     = flag.Int("batch", 16, "check-batch requesters per request")
		zipf      = flag.Float64("zipf", 0, "requester/resource popularity skew exponent, must be > 1 (0 = workload default 1.2)")
		shardsCSV = flag.String("shards", "", "comma-separated shard counts; embedded mode routes each cell through an in-process shard router (http mode: labels the cells of an external acshardd)")
		seed      = flag.Int64("seed", 1, "workload seed")
		syncMode  = flag.String("sync", "interval", "self-hosted server WAL fsync policy: always, interval, never")
		out       = flag.String("out", "BENCH_acbench.json", "artifact output path")
		appendArt = flag.Bool("append", false, "merge results into an existing artifact at -out instead of replacing it")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		compare   = flag.String("compare", "", "compare -in against this baseline artifact and exit (nonzero on regression)")
		in        = flag.String("in", "", "artifact to compare (default: -out)")
		maxReg    = flag.Float64("max-regress", 0.25, "allowed normalized throughput regression before -compare fails")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, orDefault(*in, *out), *maxReg))
	}

	modes, err := parseModes(*mode)
	if err != nil {
		log.Fatal(err)
	}
	kinds, err := parseEngines(*engines)
	if err != nil {
		log.Fatal(err)
	}
	mixes, err := parseScenarios(*scenarios, *batch)
	if err != nil {
		log.Fatal(err)
	}
	syncOpt, err := parseSync(*syncMode)
	if err != nil {
		log.Fatal(err)
	}
	shardCounts, err := parseShards(*shardsCSV)
	if err != nil {
		log.Fatal(err)
	}
	if *zipf != 0 && *zipf <= 1 {
		log.Fatalf("-zipf %v: the skew exponent must be > 1", *zipf)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	log.Printf("calibrating host")
	art := newArtifact(*seed, calibrationScore())
	log.Printf("calibration score %.1f Mops/s, %d CPUs", art.CalibrationScore, art.CPUs)

	cfg := benchConfig{
		nodes: *nodes, degree: *degree, resources: *resources,
		workers: *workers, duration: *duration, warmup: *warmup,
		rate: *rate, zipfS: *zipf, seed: *seed, addr: *addr, syncOpt: syncOpt,
		seeded: make(map[string]bool),
	}
	g := generate.OSN(generate.OSNConfig{Nodes: *nodes, AvgOutDegree: *degree, Seed: *seed})
	specs := workload.Resources(g, *resources, *seed+1)
	log.Printf("graph: %d users, %d relationships; %d resources", g.NumNodes(), g.NumEdges(), len(specs))

	for _, m := range modes {
		for _, kind := range kinds {
			for _, mix := range mixes {
				for _, sc := range shardCounts {
					cellCfg := cfg
					cellCfg.shards = sc
					res, err := runScenario(m, g, kind, mix, specs, cellCfg)
					if err != nil {
						log.Fatalf("%s/%s/%s: %v", m, kind, mix.Name, err)
					}
					art.Scenarios = append(art.Scenarios, res)
					label := res.Scenario
					if res.Shards > 0 {
						label = fmt.Sprintf("%s/s=%d", res.Scenario, res.Shards)
					}
					log.Printf("%-8s %-16s %-13s %9.0f ops/s  p50 %7.0fµs  p99 %7.0fµs  err %d  shed %d",
						res.Mode, res.Engine, label, res.Throughput,
						res.Latency.P50, res.Latency.P99, res.Errors, res.Shed)
				}
			}
			if m == "http" && cfg.addr != "" {
				break // an external daemon serves one engine; don't redrive it per kind
			}
		}
	}

	if *appendArt {
		if prev, err := readArtifact(*out); err == nil {
			prev.merge(art)
			prev.CalibrationScore = art.CalibrationScore
			art = prev
		} else if !os.IsNotExist(err) {
			log.Fatalf("-append: %v", err)
		}
	}
	if err := art.write(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d scenarios)", *out, len(art.Scenarios))
	printTable(art)
}

type benchConfig struct {
	nodes, degree, resources, workers int
	duration, warmup                  time.Duration
	rate                              float64
	// zipfS overrides the workload's popularity skew exponent (0 keeps
	// the workload default).
	zipfS float64
	// shards, when positive, routes an embedded cell through an
	// in-process shard router over that many embedded shard networks;
	// in http mode it only labels the cell (the external daemon's
	// topology is whatever it was started with).
	shards  int
	seed    int64
	addr    string
	syncOpt reachac.Option
	// seeded tracks external daemons this process already loaded the
	// graph into, so later scenario cells skip the redundant wire-seeding.
	seeded map[string]bool
}

// runScenario benchmarks one (mode, engine, mix) cell: build the target,
// spin up per-worker deterministic generators, run the loadgen window,
// and fold the counter deltas into a ScenarioResult.
func runScenario(mode string, g *graph.Graph, kind reachac.EngineKind, mix workload.Mix, specs []workload.ResourceSpec, cfg benchConfig) (ScenarioResult, error) {
	var (
		t   target
		err error
	)
	switch mode {
	case "embedded":
		if cfg.shards > 0 {
			t, err = newShardedTarget(g, kind, specs, cfg.workers, cfg.shards)
		} else {
			t, err = newEmbeddedTarget(g, kind, specs, cfg.workers)
		}
	case "http":
		if cfg.addr != "" {
			t, err = newExternalTarget(cfg.addr, g, specs, cfg.workers, cfg.seeded[cfg.addr])
			if err == nil {
				cfg.seeded[cfg.addr] = true
			}
		} else {
			t, err = newSelfHostedTarget(g, kind, specs, cfg.workers, cfg.syncOpt)
		}
	default:
		err = fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return ScenarioResult{}, err
	}
	defer t.close()

	gens := make([]*workload.Generator, cfg.workers)
	for w := range gens {
		gens[w] = workload.NewGenerator(g, mix, workload.GenConfig{
			Resources: specs,
			ZipfS:     cfg.zipfS,
			Worker:    w,
			Workers:   cfg.workers,
		}, cfg.seed+int64(w)*7919)
	}
	before, err := t.stats()
	if err != nil {
		return ScenarioResult{}, err
	}
	res := loadgen.Run(context.Background(), loadgen.Config{
		Workers:  cfg.workers,
		Duration: cfg.duration,
		Warmup:   cfg.warmup,
		Rate:     cfg.rate,
		Classify: t.classify,
	}, func(ctx context.Context, worker int) error {
		return t.do(ctx, worker, gens[worker].Next())
	})
	after, err := t.stats()
	if err != nil {
		return ScenarioResult{}, err
	}

	engine := t.engineName()
	if engine == "" {
		engine = engineLabel(kind)
	}
	total := res.Ops + res.Errors + res.Shed
	sr := ScenarioResult{
		Mode:        mode,
		Engine:      engine,
		Scenario:    mix.Name,
		Shards:      cfg.shards,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Resources:   len(specs),
		Workers:     cfg.workers,
		RateLimit:   cfg.rate,
		DurationSec: res.Elapsed.Seconds(),
		Ops:         res.Ops,
		Errors:      res.Errors,
		Shed:        res.Shed,
		Throughput:  res.Throughput(),
		Latency:     summarize(res.Hist),
		Counters:    after.delta(before),
	}
	if total > 0 {
		sr.ShedRate = float64(res.Shed) / float64(total)
	}
	return sr, nil
}

// runCompare loads the two artifacts and applies the regression gate.
func runCompare(baselinePath, currentPath string, maxRegress float64) int {
	baseline, err := readArtifact(baselinePath)
	if err != nil {
		log.Printf("baseline: %v", err)
		return 2
	}
	current, err := readArtifact(currentPath)
	if err != nil {
		log.Printf("current: %v", err)
		return 2
	}
	regressions, notes := compareArtifacts(baseline, current, maxRegress)
	for _, n := range notes {
		log.Printf("note: %s", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			log.Printf("REGRESSION: %s", r)
		}
		log.Printf("%d scenario(s) regressed more than %.0f%%; rerun, or re-baseline intentionally (see README) ", len(regressions), maxRegress*100)
		return 1
	}
	log.Printf("no regression beyond %.0f%% across %d baseline scenario(s)", maxRegress*100, len(baseline.Scenarios))
	return 0
}

func printTable(a *Artifact) {
	tbl := benchutil.NewTable("mode", "engine", "scenario", "ops/s", "p50", "p90", "p99", "p99.9", "err", "shed", "fsyncs")
	us := func(v float64) string { return benchutil.Dur(time.Duration(v * 1e3)) }
	for _, s := range a.Scenarios {
		tbl.AddRow(s.Mode, s.Engine, s.Scenario,
			fmt.Sprintf("%.0f", s.Throughput),
			us(s.Latency.P50), us(s.Latency.P90), us(s.Latency.P99), us(s.Latency.P999),
			fmt.Sprintf("%d", s.Errors), fmt.Sprintf("%d", s.Shed),
			fmt.Sprintf("%d", s.Counters.WALFsyncs))
	}
	tbl.Fprint(os.Stdout)
}

// --- flag parsing ---

func orDefault(v, def string) string {
	if v != "" {
		return v
	}
	return def
}

func parseModes(s string) ([]string, error) {
	switch s {
	case "embedded", "http":
		return []string{s}, nil
	case "both":
		return []string{"embedded", "http"}, nil
	}
	return nil, fmt.Errorf("unknown -mode %q (have embedded, http, both)", s)
}

var allEngines = []reachac.EngineKind{
	reachac.Online, reachac.OnlineDFS, reachac.OnlineAdaptive,
	reachac.Closure, reachac.Index, reachac.IndexPaperJoin,
	plannerEngine,
}

// plannerEngine is a pseudo engine kind: the target is built with
// WithPlanner routing enabled over the Online primary instead of a static
// evaluator selection. It never reaches reachac.UseEngine.
const plannerEngine reachac.EngineKind = -1

// engineLabel names a cell's engine column, mapping the planner sentinel
// to its artifact label.
func engineLabel(kind reachac.EngineKind) string {
	if kind == plannerEngine {
		return "planner"
	}
	return kind.String()
}

func parseEngines(s string) ([]reachac.EngineKind, error) {
	if s == "all" {
		return allEngines, nil
	}
	var kinds []reachac.EngineKind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		kind, err := engineByName(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-engines is empty")
	}
	return kinds, nil
}

// engineByName accepts both the canonical EngineKind names and acquery's
// shorthands.
func engineByName(s string) (reachac.EngineKind, error) {
	for _, k := range allEngines {
		if s == k.String() {
			return k, nil
		}
	}
	switch s {
	case "online":
		return reachac.Online, nil
	case "index":
		return reachac.Index, nil
	case "index-paper":
		return reachac.IndexPaperJoin, nil
	case "planner":
		return plannerEngine, nil
	}
	return 0, fmt.Errorf("unknown engine %q (have online, online-dfs, online-adaptive, closure, index, index-paper, planner)", s)
}

func parseScenarios(s string, batch int) ([]workload.Mix, error) {
	var mixes []workload.Mix
	if s == "all" {
		mixes = workload.Mixes()
	} else {
		for _, name := range strings.Split(s, ",") {
			m, ok := workload.MixByName(strings.TrimSpace(name))
			if !ok {
				var names []string
				for _, k := range workload.Mixes() {
					names = append(names, k.Name)
				}
				return nil, fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(names, ", "))
			}
			mixes = append(mixes, m)
		}
	}
	for i := range mixes {
		if mixes[i].BatchSize > 0 && batch > 0 {
			mixes[i].BatchSize = batch
		}
	}
	if len(mixes) == 0 {
		return nil, fmt.Errorf("-scenarios is empty")
	}
	return mixes, nil
}

// parseShards parses the -shards comma list; empty means one unsharded
// cell per (mode, engine, scenario), the pre-sharding behavior.
func parseShards(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{0}, nil
	}
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards %q: counts must be positive integers", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func parseSync(s string) (reachac.Option, error) {
	switch s {
	case "always":
		return reachac.WithSync(reachac.SyncAlways), nil
	case "interval":
		return reachac.WithSyncInterval(2 * time.Millisecond), nil
	case "never":
		return reachac.WithSync(reachac.SyncNever), nil
	}
	return nil, fmt.Errorf("unknown -sync %q (have always, interval, never)", s)
}
