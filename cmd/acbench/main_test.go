package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reachac"
	"reachac/internal/generate"
	"reachac/internal/workload"
)

func art(calibration float64, cells ...ScenarioResult) *Artifact {
	a := newArtifact(1, calibration)
	a.Scenarios = cells
	return a
}

func cell(mode, engine, scenario string, tput float64) ScenarioResult {
	return ScenarioResult{Mode: mode, Engine: engine, Scenario: scenario, Throughput: tput, Ops: 100_000}
}

// TestCompareFailsOnRegression is the gate's core contract: a >25%
// throughput drop on any scenario must be flagged; a smaller one must
// not.
func TestCompareFailsOnRegression(t *testing.T) {
	baseline := art(100,
		cell("embedded", "online-bfs", "read-heavy", 10000),
		cell("embedded", "online-bfs", "churn", 8000),
	)
	ok := art(100,
		cell("embedded", "online-bfs", "read-heavy", 8000), // -20%: allowed
		cell("embedded", "online-bfs", "churn", 8100),
	)
	if regs, _ := compareArtifacts(baseline, ok, 0.25); len(regs) != 0 {
		t.Fatalf("-20%% flagged as regression: %v", regs)
	}
	bad := art(100,
		cell("embedded", "online-bfs", "read-heavy", 7000), // -30%: flagged
		cell("embedded", "online-bfs", "churn", 8100),
	)
	regs, _ := compareArtifacts(baseline, bad, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "read-heavy") {
		t.Fatalf("want exactly the read-heavy regression, got %v", regs)
	}
}

// TestCompareCalibrationNormalizes: the same relative performance on a
// half-speed machine is not a regression, and a drop that calibration
// cannot explain still is.
func TestCompareCalibrationNormalizes(t *testing.T) {
	baseline := art(200, cell("embedded", "online-bfs", "read-heavy", 10000))
	slowMachine := art(100, cell("embedded", "online-bfs", "read-heavy", 5200))
	if regs, _ := compareArtifacts(baseline, slowMachine, 0.25); len(regs) != 0 {
		t.Fatalf("half-speed machine at half throughput flagged: %v", regs)
	}
	slowCode := art(200, cell("embedded", "online-bfs", "read-heavy", 5200))
	if regs, _ := compareArtifacts(baseline, slowCode, 0.25); len(regs) != 1 {
		t.Fatalf("true regression missed under equal calibration: %v", regs)
	}
}

func TestCompareMissingCellIsNoteNotFailure(t *testing.T) {
	baseline := art(100, cell("http", "join-index", "churn", 5000))
	current := art(100, cell("embedded", "online-bfs", "read-heavy", 9000))
	regs, notes := compareArtifacts(baseline, current, 0.25)
	if len(regs) != 0 {
		t.Fatalf("missing cell must not fail the gate: %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "not in current run") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing cell not noted: %v", notes)
	}
}

// TestCompareSkipsThinCells: a baseline cell with too few completed ops
// is statistical noise; it must be noted, never gated.
func TestCompareSkipsThinCells(t *testing.T) {
	thin := cell("embedded", "join-index", "audience-scan", 250)
	thin.Ops = 400
	baseline := art(100, thin)
	current := art(100, cell("embedded", "join-index", "audience-scan", 50)) // -80%
	regs, notes := compareArtifacts(baseline, current, 0.25)
	if len(regs) != 0 {
		t.Fatalf("thin cell gated: %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "too few to gate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("thin cell skip not noted: %v", notes)
	}
}

func TestArtifactRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	a := art(50, cell("embedded", "online-bfs", "read-heavy", 1000))
	if err := a.write(path); err != nil {
		t.Fatal(err)
	}
	back, err := readArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0].Throughput != 1000 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	back.merge(art(60,
		cell("embedded", "online-bfs", "read-heavy", 2000), // replaces
		cell("http", "online-bfs", "read-heavy", 500),      // appends
	))
	if len(back.Scenarios) != 2 {
		t.Fatalf("merge produced %d cells, want 2", len(back.Scenarios))
	}
	for _, s := range back.Scenarios {
		if s.Mode == "embedded" && s.Throughput != 2000 {
			t.Fatalf("same-key cell not replaced: %+v", s)
		}
	}
}

func TestReadArtifactRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	a := art(1)
	a.Schema = "acbench/v0"
	if err := a.write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := readArtifact(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// testEnv materializes a tiny cell environment the way main does below
// the streaming threshold.
func testEnv(t *testing.T, nodes int) cellEnv {
	t.Helper()
	top := generate.MustNew("osn", generate.WithNodes(nodes), generate.WithSeed(3))
	return cellEnv{top: top, g: generate.MustBuild(top)}
}

// TestRunScenarioEmbeddedSmoke runs one real (tiny) embedded cell per
// registered scenario and sanity-checks the resulting cell, covering the
// end-to-end path CI's bench job exercises.
func TestRunScenarioEmbeddedSmoke(t *testing.T) {
	env := testEnv(t, 150)
	cfg := benchConfig{
		nodes: 150, degree: 8, resources: 8, workers: 2,
		duration: 150 * time.Millisecond, warmup: 30 * time.Millisecond, seed: 5,
	}
	for _, sc := range workload.Scenarios() {
		res, err := runScenario("embedded", env, reachac.Index, sc, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no operations completed", sc.Name)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d operation errors against embedded target", sc.Name, res.Errors)
		}
		if res.Throughput <= 0 || res.Latency.P99 < res.Latency.P50 {
			t.Fatalf("%s: implausible result %+v", sc.Name, res)
		}
		if res.Topology != "osn" || res.Nodes != 150 || res.Streamed {
			t.Fatalf("%s: cell identity wrong: %+v", sc.Name, res)
		}
		switch sc.Name {
		case "check-batch":
			if res.Counters.BatchChecks == 0 {
				t.Fatalf("check-batch recorded no batch checks: %+v", res.Counters)
			}
		case "audience-scan":
			if res.Counters.Audiences == 0 {
				t.Fatalf("audience-scan recorded no audiences: %+v", res.Counters)
			}
		case "write-heavy", "churn", "time-bounded":
			if res.Counters.Mutations == 0 {
				t.Fatalf("%s recorded no mutations: %+v", sc.Name, res.Counters)
			}
		}
	}
}

// TestRunScenarioStreamedSmoke forces the streaming path at tiny n (as if
// -stream-min were crossed): the graph is never materialized, the
// workload is built off a pinned snapshot, and the cell must match a
// materialized run's shape. Also pins the streamed-mode restrictions.
func TestRunScenarioStreamedSmoke(t *testing.T) {
	top := generate.MustNew("ldbc", generate.WithNodes(400), generate.WithSeed(3))
	env := cellEnv{top: top} // g == nil → streamed
	cfg := benchConfig{
		nodes: 400, degree: 8, resources: 8, workers: 2,
		duration: 150 * time.Millisecond, warmup: 30 * time.Millisecond, seed: 5,
		streamMin: 1,
	}
	sc, ok := workload.Lookup("read-heavy")
	if !ok {
		t.Fatal("missing read-heavy scenario")
	}
	res, err := runScenario("embedded", env, reachac.Online, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if !res.Streamed || res.Topology != "ldbc" || res.Nodes != 400 || res.Edges == 0 {
		t.Fatalf("streamed cell identity wrong: %+v", res)
	}
	if _, err := runScenario("http", env, reachac.Online, sc, cfg); err == nil {
		t.Fatal("streamed cell accepted http mode")
	}
	shardCfg := cfg
	shardCfg.shards = 2
	if _, err := runScenario("embedded", env, reachac.Online, sc, shardCfg); err == nil {
		t.Fatal("streamed cell accepted sharding")
	}
}

// TestRunScenarioOpenLoop: a rate-limited cell must record its arrival
// rate in the result (the open-loop sweep key) and complete roughly
// rate×duration operations, not a closed-loop flood.
func TestRunScenarioOpenLoop(t *testing.T) {
	env := testEnv(t, 150)
	cfg := benchConfig{
		nodes: 150, degree: 8, resources: 6, workers: 2,
		duration: 300 * time.Millisecond, warmup: 30 * time.Millisecond, seed: 5,
		rate: 200,
	}
	sc, _ := workload.Lookup("read-heavy")
	res, err := runScenario("embedded", env, reachac.Online, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RateLimit != 200 {
		t.Fatalf("rate not recorded: %+v", res)
	}
	total := res.Ops + res.Errors + res.Shed
	if total == 0 || total > 400 {
		t.Fatalf("open loop at 200 ops/s for 300ms completed %d ops", total)
	}
	if !strings.Contains(res.key(), "/r=200") {
		t.Fatalf("rate missing from cell key %q", res.key())
	}
}

// TestRunScenarioHTTPSmoke runs one tiny scenario against a self-hosted
// serving stack — real HTTP, durable WAL — and checks the serving-layer
// counters landed.
func TestRunScenarioHTTPSmoke(t *testing.T) {
	env := testEnv(t, 120)
	cfg := benchConfig{
		nodes: 120, degree: 8, resources: 6, workers: 2,
		duration: 200 * time.Millisecond, warmup: 30 * time.Millisecond, seed: 5,
		syncOpt: reachac.WithSync(reachac.SyncNever),
	}
	sc, ok := workload.Lookup("write-heavy")
	if !ok {
		t.Fatal("missing write-heavy scenario")
	}
	res, err := runScenario("http", env, reachac.Online, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Counters.Mutations == 0 || res.Counters.WALAppends == 0 {
		t.Fatalf("durable serving run recorded no WAL activity: %+v", res.Counters)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseModes("bogus"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if ms, _ := parseModes("both"); len(ms) != 2 {
		t.Fatalf("both = %v", ms)
	}
	if ks, err := parseEngines("all"); err != nil || len(ks) != 7 {
		t.Fatalf("all engines = %v, %v", ks, err)
	}
	if k, err := parseEngines("planner"); err != nil || len(k) != 1 || k[0] != plannerEngine {
		t.Fatalf("planner engine = %v, %v", k, err)
	}
	if got := engineLabel(plannerEngine); got != "planner" {
		t.Fatalf("planner label = %q", got)
	}
	if _, err := parseEngines("warp-drive"); err == nil {
		t.Fatal("bad engine accepted")
	}
	if scens, err := parseScenarios("all", 8); err != nil || len(scens) != len(workload.Names()) {
		t.Fatalf("all scenarios = %v, %v", scens, err)
	}
	if scens, err := parseScenarios("check-batch", 8); err != nil || scens[0].Mix.BatchSize != 8 {
		t.Fatalf("batch override failed: %v, %v", scens, err)
	}
	if scens, err := parseScenarios("multi-tenant,delegation", 8); err != nil ||
		len(scens) != 2 || scens[0].Name != "multi-tenant" || scens[1].Name != "delegation" {
		t.Fatalf("named scenarios = %v, %v", scens, err)
	}
	if _, err := parseScenarios("nope", 8); err == nil {
		t.Fatal("bad scenario accepted")
	}
	if _, err := parseSync("sometimes"); err == nil {
		t.Fatal("bad sync accepted")
	}
}

func TestParseNodeCountsAndRates(t *testing.T) {
	got, err := parseNodeCounts("800, 10000,100000")
	if err != nil || len(got) != 3 || got[0] != 800 || got[2] != 100000 {
		t.Fatalf("parseNodeCounts sweep = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1", "0", "-5", "many", "800,,200"} {
		if _, err := parseNodeCounts(bad); err == nil {
			t.Errorf("parseNodeCounts(%q) accepted", bad)
		}
	}
	rates, err := parseRates("", 0)
	if err != nil || len(rates) != 1 || rates[0] != 0 {
		t.Fatalf("empty -rates = %v, %v; want the -rate fallback", rates, err)
	}
	rates, err = parseRates("", 1500)
	if err != nil || len(rates) != 1 || rates[0] != 1500 {
		t.Fatalf("fallback rate = %v, %v", rates, err)
	}
	rates, err = parseRates("2000, 10000,40000", 0)
	if err != nil || len(rates) != 3 || rates[1] != 10000 {
		t.Fatalf("parseRates sweep = %v, %v", rates, err)
	}
	for _, bad := range []string{"0", "-3", "fast", "100,,200"} {
		if _, err := parseRates(bad, 0); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

// TestCellKeyDimensions: topology, node count, shards and rate must all
// be part of a cell's identity so sweeps don't collapse onto one key.
func TestCellKeyDimensions(t *testing.T) {
	base := cell("embedded", "online-bfs", "read-heavy", 1000)
	keys := map[string]bool{base.key(): true}
	for _, mut := range []func(*ScenarioResult){
		func(s *ScenarioResult) { s.Topology = "ldbc" },
		func(s *ScenarioResult) { s.Topology = "ldbc"; s.Nodes = 100000 },
		func(s *ScenarioResult) { s.Nodes = 800 },
		func(s *ScenarioResult) { s.Shards = 4 },
		func(s *ScenarioResult) { s.RateLimit = 2000 },
	} {
		s := base
		mut(&s)
		if keys[s.key()] {
			t.Fatalf("key %q collides after mutation: %+v", s.key(), s)
		}
		keys[s.key()] = true
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("")
	if err != nil || len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty -shards = %v, %v; want [0] (unsharded)", got, err)
	}
	got, err = parseShards(" 1, 2,4 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseShards sweep = %v, %v; want [1 2 4]", got, err)
	}
	for _, bad := range []string{"0", "-2", "two", "1,,4"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestParseSyncAndOrDefault(t *testing.T) {
	for _, mode := range []string{"always", "interval", "never"} {
		if opt, err := parseSync(mode); err != nil || opt == nil {
			t.Fatalf("parseSync(%q): %v", mode, err)
		}
	}
	if _, err := parseSync("sometimes"); err == nil {
		t.Fatal("parseSync accepted an unknown mode")
	}
	if orDefault("", "fallback") != "fallback" || orDefault("set", "fallback") != "set" {
		t.Fatal("orDefault picked the wrong side")
	}
}
