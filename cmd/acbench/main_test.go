package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reachac"
	"reachac/internal/generate"
	"reachac/internal/workload"
)

func art(calibration float64, cells ...ScenarioResult) *Artifact {
	a := newArtifact(1, calibration)
	a.Scenarios = cells
	return a
}

func cell(mode, engine, scenario string, tput float64) ScenarioResult {
	return ScenarioResult{Mode: mode, Engine: engine, Scenario: scenario, Throughput: tput, Ops: 100_000}
}

// TestCompareFailsOnRegression is the gate's core contract: a >25%
// throughput drop on any scenario must be flagged; a smaller one must
// not.
func TestCompareFailsOnRegression(t *testing.T) {
	baseline := art(100,
		cell("embedded", "online-bfs", "read-heavy", 10000),
		cell("embedded", "online-bfs", "churn", 8000),
	)
	ok := art(100,
		cell("embedded", "online-bfs", "read-heavy", 8000), // -20%: allowed
		cell("embedded", "online-bfs", "churn", 8100),
	)
	if regs, _ := compareArtifacts(baseline, ok, 0.25); len(regs) != 0 {
		t.Fatalf("-20%% flagged as regression: %v", regs)
	}
	bad := art(100,
		cell("embedded", "online-bfs", "read-heavy", 7000), // -30%: flagged
		cell("embedded", "online-bfs", "churn", 8100),
	)
	regs, _ := compareArtifacts(baseline, bad, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "read-heavy") {
		t.Fatalf("want exactly the read-heavy regression, got %v", regs)
	}
}

// TestCompareCalibrationNormalizes: the same relative performance on a
// half-speed machine is not a regression, and a drop that calibration
// cannot explain still is.
func TestCompareCalibrationNormalizes(t *testing.T) {
	baseline := art(200, cell("embedded", "online-bfs", "read-heavy", 10000))
	slowMachine := art(100, cell("embedded", "online-bfs", "read-heavy", 5200))
	if regs, _ := compareArtifacts(baseline, slowMachine, 0.25); len(regs) != 0 {
		t.Fatalf("half-speed machine at half throughput flagged: %v", regs)
	}
	slowCode := art(200, cell("embedded", "online-bfs", "read-heavy", 5200))
	if regs, _ := compareArtifacts(baseline, slowCode, 0.25); len(regs) != 1 {
		t.Fatalf("true regression missed under equal calibration: %v", regs)
	}
}

func TestCompareMissingCellIsNoteNotFailure(t *testing.T) {
	baseline := art(100, cell("http", "join-index", "churn", 5000))
	current := art(100, cell("embedded", "online-bfs", "read-heavy", 9000))
	regs, notes := compareArtifacts(baseline, current, 0.25)
	if len(regs) != 0 {
		t.Fatalf("missing cell must not fail the gate: %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "not in current run") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing cell not noted: %v", notes)
	}
}

// TestCompareSkipsThinCells: a baseline cell with too few completed ops
// is statistical noise; it must be noted, never gated.
func TestCompareSkipsThinCells(t *testing.T) {
	thin := cell("embedded", "join-index", "audience-scan", 250)
	thin.Ops = 400
	baseline := art(100, thin)
	current := art(100, cell("embedded", "join-index", "audience-scan", 50)) // -80%
	regs, notes := compareArtifacts(baseline, current, 0.25)
	if len(regs) != 0 {
		t.Fatalf("thin cell gated: %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "too few to gate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("thin cell skip not noted: %v", notes)
	}
}

func TestArtifactRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	a := art(50, cell("embedded", "online-bfs", "read-heavy", 1000))
	if err := a.write(path); err != nil {
		t.Fatal(err)
	}
	back, err := readArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0].Throughput != 1000 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	back.merge(art(60,
		cell("embedded", "online-bfs", "read-heavy", 2000), // replaces
		cell("http", "online-bfs", "read-heavy", 500),      // appends
	))
	if len(back.Scenarios) != 2 {
		t.Fatalf("merge produced %d cells, want 2", len(back.Scenarios))
	}
	for _, s := range back.Scenarios {
		if s.Mode == "embedded" && s.Throughput != 2000 {
			t.Fatalf("same-key cell not replaced: %+v", s)
		}
	}
}

func TestReadArtifactRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	a := art(1)
	a.Schema = "acbench/v0"
	if err := a.write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := readArtifact(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestRunScenarioEmbeddedSmoke runs one real (tiny) embedded scenario per
// mix and sanity-checks the resulting cell, covering the end-to-end path
// CI's bench job exercises.
func TestRunScenarioEmbeddedSmoke(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 150, Seed: 3})
	specs := workload.Resources(g, 8, 4)
	cfg := benchConfig{
		nodes: 150, degree: 8, resources: 8, workers: 2,
		duration: 150 * time.Millisecond, warmup: 30 * time.Millisecond, seed: 5,
	}
	for _, mix := range workload.Mixes() {
		res, err := runScenario("embedded", g, reachac.Index, mix, specs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no operations completed", mix.Name)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d operation errors against embedded target", mix.Name, res.Errors)
		}
		if res.Throughput <= 0 || res.Latency.P99 < res.Latency.P50 {
			t.Fatalf("%s: implausible result %+v", mix.Name, res)
		}
		switch mix.Name {
		case "check-batch":
			if res.Counters.BatchChecks == 0 {
				t.Fatalf("check-batch recorded no batch checks: %+v", res.Counters)
			}
		case "audience-scan":
			if res.Counters.Audiences == 0 {
				t.Fatalf("audience-scan recorded no audiences: %+v", res.Counters)
			}
		case "write-heavy", "churn":
			if res.Counters.Mutations == 0 {
				t.Fatalf("%s recorded no mutations: %+v", mix.Name, res.Counters)
			}
		}
	}
}

// TestRunScenarioHTTPSmoke runs one tiny scenario against a self-hosted
// serving stack — real HTTP, durable WAL — and checks the serving-layer
// counters landed.
func TestRunScenarioHTTPSmoke(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 120, Seed: 3})
	specs := workload.Resources(g, 6, 4)
	cfg := benchConfig{
		nodes: 120, degree: 8, resources: 6, workers: 2,
		duration: 200 * time.Millisecond, warmup: 30 * time.Millisecond, seed: 5,
		syncOpt: reachac.WithSync(reachac.SyncNever),
	}
	res, err := runScenario("http", g, reachac.Online, mustMixT(t, "write-heavy"), specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors > 0 {
		t.Fatalf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Counters.Mutations == 0 || res.Counters.WALAppends == 0 {
		t.Fatalf("durable serving run recorded no WAL activity: %+v", res.Counters)
	}
}

func mustMixT(t *testing.T, name string) workload.Mix {
	t.Helper()
	m, ok := workload.MixByName(name)
	if !ok {
		t.Fatalf("missing mix %q", name)
	}
	return m
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseModes("bogus"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if ms, _ := parseModes("both"); len(ms) != 2 {
		t.Fatalf("both = %v", ms)
	}
	if ks, err := parseEngines("all"); err != nil || len(ks) != 7 {
		t.Fatalf("all engines = %v, %v", ks, err)
	}
	if k, err := parseEngines("planner"); err != nil || len(k) != 1 || k[0] != plannerEngine {
		t.Fatalf("planner engine = %v, %v", k, err)
	}
	if got := engineLabel(plannerEngine); got != "planner" {
		t.Fatalf("planner label = %q", got)
	}
	if _, err := parseEngines("warp-drive"); err == nil {
		t.Fatal("bad engine accepted")
	}
	if mixes, err := parseScenarios("all", 8); err != nil || len(mixes) != 6 {
		t.Fatalf("all scenarios = %v, %v", mixes, err)
	}
	if mixes, err := parseScenarios("check-batch", 8); err != nil || mixes[0].BatchSize != 8 {
		t.Fatalf("batch override failed: %v, %v", mixes, err)
	}
	if _, err := parseScenarios("nope", 8); err == nil {
		t.Fatal("bad scenario accepted")
	}
	if _, err := parseSync("sometimes"); err == nil {
		t.Fatal("bad sync accepted")
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("")
	if err != nil || len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty -shards = %v, %v; want [0] (unsharded)", got, err)
	}
	got, err = parseShards(" 1, 2,4 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseShards sweep = %v, %v; want [1 2 4]", got, err)
	}
	for _, bad := range []string{"0", "-2", "two", "1,,4"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestParseSyncAndOrDefault(t *testing.T) {
	for _, mode := range []string{"always", "interval", "never"} {
		if opt, err := parseSync(mode); err != nil || opt == nil {
			t.Fatalf("parseSync(%q): %v", mode, err)
		}
	}
	if _, err := parseSync("sometimes"); err == nil {
		t.Fatal("parseSync accepted an unknown mode")
	}
	if orDefault("", "fallback") != "fallback" || orDefault("set", "fallback") != "set" {
		t.Fatal("orDefault picked the wrong side")
	}
}
