// Command experiments runs the performance evaluation the paper defers to
// future work (§5), producing the tables recorded in EXPERIMENTS.md:
//
//	E1  index construction cost vs graph size
//	E2  query latency on reachability-biased ("hit") pairs
//	E3  query latency on uniform ("miss"-heavy) pairs
//	E4  policy enforcement throughput (OSN simulation)
//	E5  ablations: W-table pruning, reachability look-ahead
//	E6  space: join index vs per-label closure matrices vs raw graph
//	E7  comparison with the Carminati et al. rule-based baseline
//	E8  snapshot-isolated concurrent access-check throughput
//
// Usage:
//
//	experiments [-run all|E1|...|E8] [-full] [-seed N]
//
// -full extends the size sweep to 25k and 50k members (slower).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"reachac"
	"reachac/internal/benchutil"
	"reachac/internal/carminati"
	"reachac/internal/core"
	"reachac/internal/generate"
	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/osn"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
	"reachac/internal/tclosure"
	"reachac/internal/workload"
)

var (
	seed = flag.Int64("seed", 42, "workload and generator seed")
	full = flag.Bool("full", false, "extend the size sweep to 25k and 50k members")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	run := flag.String("run", "all", "experiment to run: all, E1..E6")
	flag.Parse()

	exps := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6, "E7": e7, "E8": e8,
	}
	if *run == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} {
			exps[id]()
			fmt.Println()
		}
		return
	}
	f, ok := exps[*run]
	if !ok {
		log.Fatalf("unknown experiment %q (have all, E1..E8)", *run)
	}
	f()
}

func sizes() []int {
	s := []int{1000, 5000, 10000}
	if *full {
		s = append(s, 25000, 50000)
	}
	return s
}

// makeGraph builds one of the two graph families: "social" (reciprocal
// friendship, cyclic — the line graph condenses into a few giant SCCs) and
// "follow" (hierarchy-oriented, acyclic — the paper's pruning structures
// keep full resolution).
func makeGraph(n int, family string) *graph.Graph {
	return generate.OSN(generate.OSNConfig{
		Nodes:     n,
		Seed:      *seed,
		WithAttrs: true,
		Acyclic:   family == "follow",
	})
}

var families = []string{"social", "follow"}

// famSizes caps the follow family at 10k members: its wide line DAG makes
// the 2-hop construction markedly more expensive (an E1 finding in itself),
// so the -full extension applies to the social family only.
func famSizes(fam string) []int {
	s := sizes()
	if fam == "follow" {
		out := s[:0:0]
		for _, n := range s {
			if n <= 10000 {
				out = append(out, n)
			}
		}
		return out
	}
	return s
}

// deepCatalog extends the default policy shapes with the deep and unbounded
// queries where online search must explore a large cone.
func deepCatalog() []workload.QuerySpec {
	cat := workload.DefaultCatalog()
	cat = append(cat,
		workload.QuerySpec{Name: "deep-friends", Path: pathexpr.MustParse("friend+[1,4]")},
		workload.QuerySpec{Name: "transitive-friends", Path: pathexpr.MustParse("friend+[1,*]")},
	)
	return cat
}

// e1 reports index construction cost per graph size and family.
func e1() {
	fmt.Println("E1: cluster-based join index construction vs graph size")
	tbl := benchutil.NewTable("family", "|V|", "|E|", "line nodes", "line edges", "SCCs",
		"2-hop size", "centers", "intervals", "build", "est. size")
	for _, fam := range families {
		for _, n := range famSizes(fam) {
			g := makeGraph(n, fam)
			idx, err := joinindex.Build(g, joinindex.Options{})
			if err != nil {
				log.Fatal(err)
			}
			s := idx.Stats()
			tbl.AddRow(
				fam,
				benchutil.Count(g.NumNodes()), benchutil.Count(g.NumEdges()),
				benchutil.Count(s.LineNodes), benchutil.Count(s.LineEdges),
				benchutil.Count(s.SCCs), benchutil.Count(s.CoverSize),
				benchutil.Count(s.Centers), benchutil.Count(s.IntervalCount),
				benchutil.Dur(s.TotalTime), benchutil.Bytes(s.IndexBytes()),
			)
		}
	}
	tbl.Fprint(os.Stdout)
}

// engineSet builds the engines compared in E2/E3. The closure engine is
// skipped above 10k members (its matrices are the point of E6).
func engineSet(g *graph.Graph) []struct {
	name string
	eval core.Evaluator
} {
	var out []struct {
		name string
		eval core.Evaluator
	}
	out = append(out, struct {
		name string
		eval core.Evaluator
	}{"online-bfs", search.New(g)})
	if g.NumNodes() <= 10000 {
		out = append(out, struct {
			name string
			eval core.Evaluator
		}{"closure", tclosure.New(g)})
	}
	idx, err := joinindex.Build(g, joinindex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, struct {
		name string
		eval core.Evaluator
	}{"join-index", idx})
	return out
}

func latencyTable(title string, pairsFor func(*graph.Graph) []workload.Pair) {
	fmt.Println(title)
	catalog := deepCatalog()
	tbl := benchutil.NewTable("family", "|V|", "query", "online-bfs", "closure", "join-index")
	for _, fam := range families {
		for _, n := range famSizes(fam) {
			g := makeGraph(n, fam)
			engines := engineSet(g)
			pairs := pairsFor(g)
			for _, q := range catalog {
				row := []string{fam, benchutil.Count(n), q.Name}
				cells := map[string]string{"online-bfs": "—", "closure": "—", "join-index": "—"}
				for _, e := range engines {
					// Warm up lazily-built structures (per-label closures)
					// so steady-state latency is measured.
					for _, p := range pairs[:5] {
						if _, err := e.eval.Reachable(p.Owner, p.Requester, q.Path); err != nil {
							log.Fatal(err)
						}
					}
					start := time.Now()
					hits := 0
					for _, p := range pairs {
						ok, err := e.eval.Reachable(p.Owner, p.Requester, q.Path)
						if err != nil {
							log.Fatal(err)
						}
						if ok {
							hits++
						}
					}
					per := time.Since(start) / time.Duration(len(pairs))
					cells[e.name] = fmt.Sprintf("%s (%d%%)", benchutil.Dur(per), hits*100/len(pairs))
				}
				row = append(row, cells["online-bfs"], cells["closure"], cells["join-index"])
				tbl.AddRow(row...)
			}
		}
	}
	tbl.Fprint(os.Stdout)
	fmt.Println("  (mean latency per decision; parenthesized: fraction of pairs granted)")
}

func e2() {
	latencyTable("E2: query latency, reachability-biased (hit) pairs",
		func(g *graph.Graph) []workload.Pair { return workload.HitPairs(g, 200, 3, *seed+1) })
}

func e3() {
	latencyTable("E3: query latency, uniform (miss-heavy) pairs",
		func(g *graph.Graph) []workload.Pair { return workload.RandomPairs(g, 200, *seed+2) })
}

func e4() {
	fmt.Println("E4: enforcement throughput (OSN simulation, 10k members, social family)")
	g := makeGraph(10000, "social")
	reqs := workload.Requests(g, 2000, len(workload.DefaultCatalog()), *seed+3)
	tbl := benchutil.NewTable("engine", "decisions", "allowed", "denied", "throughput")
	for _, e := range engineSet(g) {
		net := osn.New(g, e.eval)
		if _, err := net.Populate(workload.DefaultCatalog(), 1, *seed+4); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := net.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		tbl.AddRow(e.name, benchutil.Count(res.Decided), benchutil.Count(res.Allowed),
			benchutil.Count(res.Denied),
			fmt.Sprintf("%s dec/s", benchutil.Count(int(float64(res.Decided)/el.Seconds()))))
	}
	tbl.Fprint(os.Stdout)
}

func e5() {
	fmt.Println("E5: ablations")
	// Look-ahead ablation: anchored evaluation with and without
	// reachability pruning, miss-heavy workload (where pruning matters).
	fmt.Println("\nE5a: join-index look-ahead pruning (miss-heavy pairs)")
	tbl := benchutil.NewTable("family", "|V|", "query", "with look-ahead", "without")
	for _, fam := range families {
		for _, n := range famSizes(fam) {
			g := makeGraph(n, fam)
			with, err := joinindex.Build(g, joinindex.Options{})
			if err != nil {
				log.Fatal(err)
			}
			without, err := joinindex.Build(g, joinindex.Options{DisableLookahead: true})
			if err != nil {
				log.Fatal(err)
			}
			pairs := workload.RandomPairs(g, 200, *seed+5)
			for _, q := range deepCatalog()[5:] { // the deep/unbounded shapes
				mean := func(idx *joinindex.Index) time.Duration {
					start := time.Now()
					for _, p := range pairs {
						if _, err := idx.Reachable(p.Owner, p.Requester, q.Path); err != nil {
							log.Fatal(err)
						}
					}
					return time.Since(start) / time.Duration(len(pairs))
				}
				tbl.AddRow(fam, benchutil.Count(n), q.Name, benchutil.Dur(mean(with)), benchutil.Dur(mean(without)))
			}
		}
	}
	tbl.Fprint(os.Stdout)

	// W-table ablation: the paper-join strategy with and without W-table
	// pruning, on small graphs (the strategy's intermediate results grow
	// quickly — itself a finding).
	fmt.Println("\nE5b: paper-join W-table pruning (small graphs, friends-of-friends query)")
	tbl2 := benchutil.NewTable("|V|", "with W-table", "without", "note")
	for _, n := range []int{100, 200, 400} {
		g := generate.OSN(generate.OSNConfig{Nodes: n, Seed: *seed, AvgOutDegree: 4})
		q := workload.DefaultCatalog()[1] // friend+[1,2]
		pairs := workload.HitPairs(g, 30, 2, *seed+6)
		mean := func(opts joinindex.Options) (string, string) {
			opts.Strategy = joinindex.EvalPaperJoin
			idx, err := joinindex.Build(g, opts)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			for _, p := range pairs {
				if _, err := idx.Reachable(p.Owner, p.Requester, q.Path); err != nil {
					return "—", "intermediate blowup (" + err.Error() + ")"
				}
			}
			return benchutil.Dur(time.Since(start) / time.Duration(len(pairs))), ""
		}
		withT, note1 := mean(joinindex.Options{})
		withoutT, note2 := mean(joinindex.Options{DisableWTable: true})
		note := note1
		if note == "" {
			note = note2
		}
		tbl2.AddRow(benchutil.Count(n), withT, withoutT, note)
	}
	tbl2.Fprint(os.Stdout)
}

func e6() {
	fmt.Println("E6: space — join index vs per-label closure vs raw graph")
	tbl := benchutil.NewTable("|V|", "|E|", "graph", "join index", "closure matrices", "closure build")
	for _, n := range sizes() {
		g := makeGraph(n, "social")
		idx, err := joinindex.Build(g, joinindex.Options{})
		if err != nil {
			log.Fatal(err)
		}
		graphBytes := g.NumEdges()*16 + g.NumNodes()*24
		closureCell, closureBuild := "(skipped > 10k)", "—"
		if n <= 10000 {
			tc := tclosure.New(g)
			start := time.Now()
			tc.MaterializeClosures()
			closureBuild = benchutil.Dur(time.Since(start))
			closureCell = benchutil.Bytes(tc.Bytes())
		}
		tbl.AddRow(benchutil.Count(n), benchutil.Count(g.NumEdges()),
			benchutil.Bytes(graphBytes), benchutil.Bytes(idx.Stats().IndexBytes()),
			closureCell, closureBuild)
	}
	tbl.Fprint(os.Stdout)
}

// e7 compares against the Carminati et al. baseline the paper discusses in
// §4: (a) which catalog policies each model can express, and (b) measured
// agreement + latency on the shared (trust-free, single-type, fixed-radius)
// fragment.
func e7() {
	fmt.Println("E7: comparison with the Carminati et al. rule-based baseline (§4)")
	fmt.Println("\nE7a: expressiveness of the policy catalog")
	tbl := benchutil.NewTable("policy", "path model", "carminati model", "why")
	rows := [][4]string{
		{"friends", "yes", "yes", "single type, radius 1"},
		{"friends-of-friends", "yes", "yes", "single type, radius 2"},
		{"colleagues-of-friends", "yes", "no", "ordered multi-type sequence"},
		{"considers-me-friend", "yes", "no", "incoming direction"},
		{"children-network", "yes", "no", "multi-type sequence"},
		{"adult friends (age>=18)", "yes", "no", "attribute predicate"},
		{"friends with trust>=0.5", "no", "yes", "trust propagation (weights uninterpreted in the path language)"},
	}
	for _, r := range rows {
		tbl.AddRow(r[0], r[1], r[2], r[3])
	}
	tbl.Fprint(os.Stdout)

	fmt.Println("\nE7b: shared fragment — agreement and latency, 5k social graph")
	g := makeGraph(5000, "social")
	ce := carminati.New(g)
	se := search.New(g)
	pairs := workload.HitPairs(g, 300, 3, *seed+7)
	tbl2 := benchutil.NewTable("radius", "agree", "grant rate", "carminati", "path-model (online)")
	for _, d := range []int{1, 2, 3} {
		rule := carminati.Rule{Type: "friend", MaxDepth: d}
		p := pathexpr.MustParse(rule.AsPathExpr())
		agree, grants := 0, 0
		start := time.Now()
		for _, pr := range pairs {
			ok, _, err := ce.Decide(pr.Owner, pr.Requester, rule)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				grants++
			}
			want, err := se.Reachable(pr.Owner, pr.Requester, p)
			if err != nil {
				log.Fatal(err)
			}
			if ok == want {
				agree++
			}
		}
		carmTime := time.Since(start) / time.Duration(len(pairs)) / 2 // half of the loop was the oracle
		start = time.Now()
		for _, pr := range pairs {
			if _, err := se.Reachable(pr.Owner, pr.Requester, p); err != nil {
				log.Fatal(err)
			}
		}
		pathTime := time.Since(start) / time.Duration(len(pairs))
		tbl2.AddRow(fmt.Sprintf("%d", d),
			fmt.Sprintf("%d/%d", agree, len(pairs)),
			fmt.Sprintf("%d%%", grants*100/len(pairs)),
			benchutil.Dur(carmTime), benchutil.Dur(pathTime))
	}
	tbl2.Fprint(os.Stdout)
}

// e8 measures concurrent access-check throughput through the facade: W
// worker goroutines share one snapshot-isolated network and hammer reads.
// "cached" is CanAccess over a small requester pool (served by the
// per-snapshot decision cache after the first lap); "uncached" is CheckPath,
// which re-evaluates the path expression on every call. With the old global
// mutex both columns plateaued at the 1-worker rate; snapshot isolation
// scales them with GOMAXPROCS.
func e8() {
	fmt.Println("E8: snapshot-isolated concurrent access-check throughput, 5k social graph, join-index engine")
	g := makeGraph(5000, "social")
	net := reachac.FromGraph(g)
	owner, _ := net.UserID("u000010")
	if _, err := net.Share("r", owner, "friend+[1,2]"); err != nil {
		log.Fatal(err)
	}
	if err := net.UseEngine(reachac.Index); err != nil {
		log.Fatal(err)
	}
	pairs := workload.HitPairs(g, 512, 2, *seed+9)
	// Publish the snapshot and warm the decision cache outside the timers.
	for _, pr := range pairs {
		if _, err := net.CanAccess("r", pr.Requester); err != nil {
			log.Fatal(err)
		}
	}

	throughput := func(workers, totalOps int, op func(i int) error) float64 {
		per := totalOps / workers
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := op(w*per + i); err != nil {
						log.Fatal(err)
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(per*workers) / time.Since(start).Seconds()
	}

	tbl := benchutil.NewTable("workers", "cached CanAccess/s", "uncached CheckPath/s", "CanAccessAll dec/s")
	allReqs := make([]reachac.UserID, g.NumNodes())
	for i := range allReqs {
		allReqs[i] = reachac.UserID(i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		if workers > 2*runtime.GOMAXPROCS(0) {
			break
		}
		cached := throughput(workers, 400000, func(i int) error {
			_, err := net.CanAccess("r", pairs[i%len(pairs)].Requester)
			return err
		})
		uncached := throughput(workers, 40000, func(i int) error {
			p := pairs[i%len(pairs)]
			_, err := net.CheckPath(p.Owner, p.Requester, "friend+[1,2]")
			return err
		})
		// CanAccessAll sizes its own worker pool from GOMAXPROCS; report it
		// once on the first row.
		batch := ""
		if workers == 1 {
			start := time.Now()
			const laps = 20
			for l := 0; l < laps; l++ {
				if _, err := net.CanAccessAll("r", allReqs); err != nil {
					log.Fatal(err)
				}
			}
			batch = benchutil.Count(int(float64(laps*len(allReqs)) / time.Since(start).Seconds()))
		}
		tbl.AddRow(fmt.Sprintf("%d", workers),
			benchutil.Count(int(cached)), benchutil.Count(int(uncached)), batch)
	}
	tbl.Fprint(os.Stdout)
	fmt.Printf("\nGOMAXPROCS=%d; worker counts beyond 2x available cores are skipped.\n", runtime.GOMAXPROCS(0))
}
