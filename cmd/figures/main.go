// Command figures regenerates every figure of the paper from the Figure-1
// fixture: the social subgraph (F1), query Q1 (F2), the line graph L(G)
// (F3), the line-query transformation (F4), the reachability table (F5),
// the W-table (F6) and the cluster-based join index with the worked joins
// (F7).
//
// Usage:
//
//	figures [-fig N]    N in 1..7; 0 (default) prints all
//
// Exact postorder numbers in F5 and the center set in F6/F7 depend on
// tie-breaking choices the paper leaves unspecified (SCC representative
// selection, tree-cover traversal order, greedy cover ties); this tool uses
// the deterministic choices documented in DESIGN.md, and the test suite
// verifies the semantic invariants the figures illustrate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"reachac/internal/benchutil"
	"reachac/internal/graph"
	"reachac/internal/interval"
	"reachac/internal/joinindex"
	"reachac/internal/linegraph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
	"reachac/internal/scc"
	"reachac/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.Int("fig", 0, "figure to print (1..7); 0 = all")
	flag.Parse()

	g := paperfix.Graph()
	printers := []func(*graph.Graph){
		figure1, figure2, figure3, figure4, figure5, figure6, figure7,
	}
	if *fig != 0 {
		if *fig < 1 || *fig > len(printers) {
			log.Fatalf("no figure %d (have 1..%d)", *fig, len(printers))
		}
		printers[*fig-1](g)
		return
	}
	for i, p := range printers {
		if i > 0 {
			fmt.Println()
		}
		p(g)
	}
}

func figure1(g *graph.Graph) {
	fmt.Println("Figure 1: A Social Network Subgraph")
	fmt.Println()
	g.Nodes(func(n graph.Node) bool {
		attrs := ""
		if len(n.Attrs) > 0 {
			attrs = "  λ = " + n.Attrs.String()
		}
		fmt.Printf("  %s%s\n", n.Name, attrs)
		return true
	})
	fmt.Println()
	g.Edges(func(e graph.Edge) bool {
		w := ""
		if e.Weight != 0 {
			w = fmt.Sprintf("  (trust %.1f)", e.Weight)
		}
		fmt.Printf("  %-9s %s -> %s%s\n",
			g.LabelName(e.Label), g.Node(e.From).Name, g.Node(e.To).Name, w)
		return true
	})
}

func figure2(g *graph.Graph) {
	fmt.Println("Figure 2: A Reachability Query (Q1)")
	fmt.Println()
	q := paperfix.Q1()
	fmt.Printf("  Q1 = Alice/%s\n", q)
	fmt.Println("  (the colleagues of Alice's friends within 2 hops)")
	fmt.Println()
	eng := search.New(g)
	alice, _ := g.NodeByName(paperfix.Alice)
	var granted []string
	for _, name := range paperfix.Names {
		if name == paperfix.Alice {
			continue
		}
		id, _ := g.NodeByName(name)
		ok, err := eng.Reachable(alice, id, q)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			granted = append(granted, name)
		}
	}
	fmt.Printf("  audience on the Figure-1 graph: {%s}\n", strings.Join(granted, ", "))
}

func figure3(g *graph.Graph) {
	fmt.Println("Figure 3: Line Graph L(G)")
	fmt.Println()
	l := linegraph.Build(g, linegraph.Opts{})
	fmt.Printf("  %d line nodes, %d line edges\n\n", l.NumNodes(), l.NumEdges())
	for i := range l.Nodes {
		var succ []string
		for _, j := range l.D.Succ(i) {
			succ = append(succ, l.NodeString(int(j)))
		}
		sort.Strings(succ)
		fmt.Printf("  %-22s -> {%s}\n", l.NodeString(i), strings.Join(succ, ", "))
	}
}

func figure4(g *graph.Graph) {
	fmt.Println("Figure 4: An access control RQ and its corresponding line RQs")
	fmt.Println()
	q := paperfix.Q1()
	fmt.Printf("  OLCR query:  Alice/%s\n", q)
	lqs, err := linegraph.ExpandQuery(q, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  expands into %d line queries:\n", len(lqs))
	for i := range lqs {
		fmt.Printf("    L%d: %s\n", i+1, lqs[i].String())
	}
}

func figure5(g *graph.Graph) {
	fmt.Println("Figure 5: Reachability Table")
	fmt.Println()
	alice, _ := g.NodeByName(paperfix.Alice)
	l := linegraph.Build(g, linegraph.Opts{VirtualRoots: []graph.NodeID{alice}})
	parts := scc.Tarjan(l.D)
	dag := scc.Condense(l.D, parts)
	g1, err := interval.Label(dag)
	if err != nil {
		log.Fatal(err)
	}
	g2, err := interval.Label(dag.Reverse())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  line graph (with Null-A): %d nodes; condensed DAG: %d vertices\n\n",
		l.NumNodes(), dag.N())
	tbl := benchutil.NewTable("w", "line node", "po↓", "I↓", "po↑", "I↑")
	for i := 0; i < l.NumNodes(); i++ {
		c := parts.Comp[i]
		tbl.AddRow(
			fmt.Sprintf("%d", i),
			l.NodeString(i),
			fmt.Sprintf("%d", g1.Post[c]),
			intervalsString(g1.Sets[c]),
			fmt.Sprintf("%d", g2.Post[c]),
			intervalsString(g2.Sets[c]),
		)
	}
	tbl.Fprint(os.Stdout)
	fmt.Println("\n  (po↓/I↓ label the line DAG G1; po↑/I↑ its reverse G2;")
	fmt.Println("   x reaches y iff po(y) ∈ I↓(x); exact numbers depend on")
	fmt.Println("   tie-breaking the paper leaves unspecified, see DESIGN.md)")
}

func intervalsString(set []interval.Interval) string {
	parts := make([]string, len(set))
	for i, iv := range set {
		parts[i] = iv.String()
	}
	return strings.Join(parts, ";")
}

func figure6(g *graph.Graph) {
	fmt.Println("Figure 6: W-Table")
	fmt.Println()
	idx, err := joinindex.Build(g, joinindex.Options{GreedyCover: true})
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{paperfix.Colleague, paperfix.Friend, paperfix.Parent}
	tbl := benchutil.NewTable("(label a, label b)", "relevant centers")
	for _, a := range labels {
		for _, b := range labels {
			centers := idx.WEntry(a, b)
			if len(centers) == 0 {
				continue
			}
			var names []string
			for _, w := range centers {
				names = append(names, idx.Line().NodeString(int(idx.Clusters()[w].Center)))
			}
			tbl.AddRow(fmt.Sprintf("(%s, %s)", a, b), "{"+strings.Join(names, ", ")+"}")
		}
	}
	tbl.Fprint(os.Stdout)
}

func figure7(g *graph.Graph) {
	fmt.Println("Figure 7: Cluster-Based Join Index")
	fmt.Println()
	idx, err := joinindex.Build(g, joinindex.Options{GreedyCover: true, Strategy: joinindex.EvalPaperJoin})
	if err != nil {
		log.Fatal(err)
	}
	l := idx.Line()
	fmt.Printf("  B+tree over %d centers (height %d):\n\n", idx.Tree().Len(), idx.Tree().Height())
	for _, cl := range idx.Clusters() {
		fmt.Printf("  center %-22s U = {%s}\n", l.NodeString(int(cl.Center)), lineNames(l, cl.U))
		fmt.Printf("         %-22s V = {%s}\n", "", lineNames(l, cl.V))
	}

	// Worked join 1: T_friend ⋈ T_colleague (§3.3).
	fmt.Println("\n  Worked join: T_friend ⋈ T_colleague")
	lqs, err := linegraph.ExpandQuery(pathexpr.MustParse("friend+[1]/colleague+[1]"), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := idx.PaperJoinTuples(&lqs[0])
	if err != nil {
		log.Fatal(err)
	}
	ts.SortTuples()
	for _, tup := range ts.Tuples {
		fmt.Printf("    ⟨%s, %s⟩\n", l.NodeString(int(tup[0])), l.NodeString(int(tup[1])))
	}

	// Worked join 2: (T_friend ⋈ T_parent) ⋈ T_friend with §3.4
	// post-processing for owner Alice, requester George.
	fmt.Println("\n  Worked query: /friend/parent/friend, owner Alice, requester George")
	lqs, err = linegraph.ExpandQuery(paperfix.QFriendParentFriend(), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	ts, err = idx.PaperJoinTuples(&lqs[0])
	if err != nil {
		log.Fatal(err)
	}
	ts.SortTuples()
	fmt.Printf("    joined tuples (%d):\n", ts.Len())
	for _, tup := range ts.Tuples {
		fmt.Printf("      ⟨%s⟩\n", tupleNames(l, tup))
	}
	alice, _ := g.NodeByName(paperfix.Alice)
	george, _ := g.NodeByName(paperfix.George)
	kept := idx.PostProcess(alice, george, &lqs[0], ts)
	fmt.Printf("    after §3.4 post-processing (%d):\n", len(kept))
	for _, tup := range kept {
		fmt.Printf("      ⟨%s⟩   => grant (Alice -> Colin -> Fred -> George)\n", tupleNames(l, tup))
	}
}

func lineNames(l *linegraph.L, ids []int32) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = l.NodeString(int(id))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func tupleNames(l *linegraph.L, tup []int32) string {
	names := make([]string, len(tup))
	for i, id := range tup {
		names[i] = l.NodeString(int(id))
	}
	return strings.Join(names, ", ")
}
