package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func(*graph.Graph)) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	fn(paperfix.Graph())
	w.Close()
	os.Stdout = old
	return <-done
}

func TestFigure1Output(t *testing.T) {
	out := capture(t, figure1)
	for _, want := range []string{
		"Figure 1",
		"Alice  λ = (age=24, gender=female)",
		"friend    Alice -> Colin",
		"colleague David -> Fred",
		"parent    David -> George",
		"friend    Fred -> George  (trust 0.8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	out := capture(t, figure2)
	if !strings.Contains(out, "Q1 = Alice/friend+[1,2]/colleague+[1]") {
		t.Errorf("figure 2 missing Q1:\n%s", out)
	}
	if !strings.Contains(out, "audience on the Figure-1 graph: {Fred}") {
		t.Errorf("figure 2 audience wrong:\n%s", out)
	}
}

func TestFigure3Output(t *testing.T) {
	out := capture(t, figure3)
	if !strings.Contains(out, "12 line nodes") {
		t.Errorf("figure 3 line-node count:\n%s", out)
	}
	if !strings.Contains(out, "friend Alice-Colin") || !strings.Contains(out, "colleague David-Fred") {
		t.Errorf("figure 3 missing line nodes:\n%s", out)
	}
}

func TestFigure4Output(t *testing.T) {
	out := capture(t, figure4)
	if !strings.Contains(out, "L1: friend+.colleague+") ||
		!strings.Contains(out, "L2: friend+.friend+.colleague+") {
		t.Errorf("figure 4 expansions wrong:\n%s", out)
	}
}

func TestFigure5Output(t *testing.T) {
	out := capture(t, figure5)
	if !strings.Contains(out, "Null Alice") {
		t.Errorf("figure 5 missing Null-A row:\n%s", out)
	}
	// 13 line nodes (12 edges + Null A).
	if !strings.Contains(out, "13 nodes") {
		t.Errorf("figure 5 node count:\n%s", out)
	}
	// Every member edge appears as a table row.
	for _, want := range []string{"friend Alice-Colin", "parent Colin-Fred", "friend Fred-George"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 missing row %q", want)
		}
	}
}

func TestFigure6Output(t *testing.T) {
	out := capture(t, figure6)
	// The joins the paper's worked examples rely on must have entries.
	for _, want := range []string{"(friend, colleague)", "(friend, parent)", "(parent, friend)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 6 missing entry %q:\n%s", want, out)
		}
	}
}

func TestFigure7Output(t *testing.T) {
	out := capture(t, figure7)
	if !strings.Contains(out, "⟨friend Alice-Colin, colleague David-Fred⟩") {
		t.Errorf("figure 7 missing the paper's friend⋈colleague pair:\n%s", out)
	}
	if !strings.Contains(out, "⟨friend Alice-Colin, parent Colin-Fred, friend Fred-George⟩") {
		t.Errorf("figure 7 missing the paper's /friend/parent/friend tuple:\n%s", out)
	}
	if !strings.Contains(out, "grant (Alice -> Colin -> Fred -> George)") {
		t.Errorf("figure 7 missing the final grant:\n%s", out)
	}
}
