package reachac

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"reachac/internal/core"
)

// TestDifferentialPlannerVsStatic replays one randomized mutation/query
// trace through two identical networks — one with cost-based planner
// routing enabled over the primary engine, one answering every query
// statically — for each of the six engine kinds, and asserts the decisions
// are identical at every step. Routing picks among the primary evaluator,
// the flat engine forward or reversed, and the audience cache; whichever
// strategy the cost model chooses, the answer must not change.
func TestDifferentialPlannerVsStatic(t *testing.T) {
	kinds := []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7000 + kind)))
			routed := New(WithPlanner(PlannerOptions{}))
			static := New()
			nets := []*Network{routed, static}

			const members = 24
			ids := make([]UserID, members)
			for i := range ids {
				name := fmt.Sprintf("m%02d", i)
				for _, n := range nets {
					ids[i] = n.MustAddUser(name, IntAttr("age", 10+i*3))
				}
			}
			type rel struct {
				from, to UserID
				label    string
			}
			labels := []string{"friend", "colleague", "parent"}
			var live []rel
			addRel := func(r rel) {
				e1 := routed.Relate(r.from, r.to, r.label)
				e2 := static.Relate(r.from, r.to, r.label)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("Relate divergence: %v vs %v", e1, e2)
				}
				if e1 == nil {
					live = append(live, r)
				}
			}
			for i := 0; i < members; i++ {
				addRel(rel{ids[i], ids[(i+1)%members], "friend"})
			}
			for _, n := range nets {
				if _, err := n.Share("album", ids[0], "friend+[1,3]"); err != nil {
					t.Fatal(err)
				}
				if _, err := n.Share("album", ids[0], "colleague+[1]/friend+[1]"); err != nil {
					t.Fatal(err)
				}
				if err := n.UseEngine(kind); err != nil {
					t.Fatal(err)
				}
			}

			rounds := 50
			if kind == Index || kind == IndexPaperJoin {
				rounds = 20 // index rebuilds are the expensive arm
			}
			check := func(step string) {
				t.Helper()
				for s := 0; s < 6; s++ {
					req := ids[rng.Intn(members)]
					d1, err := routed.CanAccess("album", req)
					if err != nil {
						t.Fatalf("%s: routed CanAccess: %v", step, err)
					}
					d2, err := static.CanAccess("album", req)
					if err != nil {
						t.Fatalf("%s: static CanAccess: %v", step, err)
					}
					if d1.Effect != d2.Effect {
						t.Fatalf("%s: requester %d: routed=%v static=%v", step, req, d1.Effect, d2.Effect)
					}
					o, r := ids[rng.Intn(members)], ids[rng.Intn(members)]
					p1, err := routed.CheckPath(o, r, "friend+[1,2]")
					if err != nil {
						t.Fatal(err)
					}
					p2, err := static.CheckPath(o, r, "friend+[1,2]")
					if err != nil {
						t.Fatal(err)
					}
					if p1 != p2 {
						t.Fatalf("%s: CheckPath(%d,%d): routed=%v static=%v", step, o, r, p1, p2)
					}
				}
				b1, err := routed.CanAccessAll("album", ids)
				if err != nil {
					t.Fatalf("%s: routed CanAccessAll: %v", step, err)
				}
				b2, err := static.CanAccessAll("album", ids)
				if err != nil {
					t.Fatalf("%s: static CanAccessAll: %v", step, err)
				}
				for i := range b1 {
					if b1[i].Effect != b2[i].Effect {
						t.Fatalf("%s: batch requester %d: routed=%v static=%v", step, ids[i], b1[i].Effect, b2[i].Effect)
					}
				}
				a1, err := routed.Audience("album")
				if err != nil {
					t.Fatalf("%s: routed Audience: %v", step, err)
				}
				a2, err := static.Audience("album")
				if err != nil {
					t.Fatalf("%s: static Audience: %v", step, err)
				}
				if !reflect.DeepEqual(a1, a2) {
					t.Fatalf("%s: Audience: routed=%v static=%v", step, a1, a2)
				}
			}
			check("initial")
			for round := 0; round < rounds; round++ {
				switch op := rng.Intn(10); {
				case op < 4: // add a relationship
					from, to := ids[rng.Intn(members)], ids[rng.Intn(members)]
					if from != to {
						addRel(rel{from, to, labels[rng.Intn(len(labels))]})
					}
				case op < 7: // remove a live relationship
					if len(live) > 0 {
						i := rng.Intn(len(live))
						r := live[i]
						e1 := routed.Unrelate(r.from, r.to, r.label)
						e2 := static.Unrelate(r.from, r.to, r.label)
						if (e1 == nil) != (e2 == nil) {
							t.Fatalf("Unrelate divergence: %v vs %v", e1, e2)
						}
						live = append(live[:i], live[i+1:]...)
					}
				case op < 8: // add a member (node-only delta)
					name := fmt.Sprintf("x%03d", round)
					for _, n := range nets {
						n.MustAddUser(name)
					}
				default: // policy churn
					rid1, e1 := routed.Share("album", ids[0], "parent-[1]/friend+[1,2]")
					rid2, e2 := static.Share("album", ids[0], "parent-[1]/friend+[1,2]")
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("Share divergence: %v vs %v", e1, e2)
					}
					if e1 == nil {
						check("policy-add")
						if routed.Revoke("album", rid1) != static.Revoke("album", rid2) {
							t.Fatal("Revoke divergence")
						}
					}
				}
				check(fmt.Sprintf("round %d", round))
			}
			st := routed.Stats()
			routes := st.PlannerRouteAudience + st.PlannerRouteFlatForward +
				st.PlannerRouteFlatReverse + st.PlannerRoutePrimary
			if routes == 0 {
				t.Fatal("planner network routed no queries — routing was not exercised")
			}
		})
	}
}

// TestDecisionCachePerDeltaInvalidation pins the per-delta decision-cache
// eviction rules end to end: entries tagged with labels a mutation does not
// touch survive (and keep serving hits), while any entry whose labels
// intersect the delta is evicted before the next read — a stale decision is
// never served.
func TestDecisionCachePerDeltaInvalidation(t *testing.T) {
	n := New()
	alice := n.MustAddUser("alice")
	bob := n.MustAddUser("bob")
	carol := n.MustAddUser("carol")
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("doc", alice, "friend+[1]"); err != nil {
		t.Fatal(err)
	}

	mustEffect := func(step string, req UserID, want core.Effect) {
		t.Helper()
		d, err := n.CanAccess("doc", req)
		if err != nil {
			t.Fatalf("%s: CanAccess: %v", step, err)
		}
		if d.Effect != want {
			t.Fatalf("%s: requester %d: got %v, want %v", step, req, d.Effect, want)
		}
	}

	// Prime the cache: one Allow (bob via friend) and one Deny (carol).
	mustEffect("prime", bob, Allow)
	mustEffect("prime", carol, Deny)

	// Repeat reads are cache hits.
	before := n.Stats()
	mustEffect("warm", bob, Allow)
	mustEffect("warm", carol, Deny)
	after := n.Stats()
	if hits := after.DecisionCacheHits - before.DecisionCacheHits; hits < 2 {
		t.Fatalf("warm reads: got %d cache hits, want >= 2", hits)
	}

	// Warm both ping-pong snapshots: the decision cache is carried forward
	// through the retired spare snapshot's delta advance, so a warm cache
	// becomes reachable one publication after the reads that filled it. The
	// first unrelated mutation re-primes the freshly-published cache; the
	// second must then serve from the carried cache with zero evictions.
	if err := n.Relate(bob, carol, "colleague"); err != nil {
		t.Fatal(err)
	}
	mustEffect("warm-spare", bob, Allow)
	mustEffect("warm-spare", carol, Deny)
	if err := n.Unrelate(bob, carol, "colleague"); err != nil {
		t.Fatal(err)
	}
	before = n.Stats()
	mustEffect("unrelated-remove", bob, Allow)
	mustEffect("unrelated-remove", carol, Deny)
	after = n.Stats()
	if ev := after.DecisionCacheEvictions - before.DecisionCacheEvictions; ev != 0 {
		t.Fatalf("unrelated mutation evicted %d entries, want 0", ev)
	}
	if hits := after.DecisionCacheHits - before.DecisionCacheHits; hits < 2 {
		t.Fatalf("after unrelated mutation: got %d cache hits, want >= 2 (cache was not carried)", hits)
	}

	// Adding a friend edge intersects carol's cached Deny: it must be
	// evicted and the fresh decision must be Allow, immediately.
	if err := n.Relate(alice, carol, "friend"); err != nil {
		t.Fatal(err)
	}
	mustEffect("related-add", carol, Allow)
	// Monotonicity: an edge add cannot revoke access, so bob's Allow
	// legitimately survives — and must still be correct.
	mustEffect("related-add", bob, Allow)

	// Removing the friend edge intersects bob's cached Allow: evicted, and
	// the fresh decision is Deny.
	if err := n.Unrelate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	mustEffect("related-remove", bob, Deny)
	mustEffect("related-remove", carol, Allow)

	st := n.Stats()
	if st.DecisionCacheEvictions == 0 {
		t.Fatal("intersecting mutations evicted nothing — per-delta invalidation is not running")
	}

	// Randomized soundness sweep: interleave mutations with full-audience
	// probes; every cached answer must match a cache-bypassing CheckPath
	// oracle on the live rule's path.
	rng := rand.New(rand.NewSource(42))
	users := []UserID{alice, bob, carol}
	for i := 0; i < 40; i++ {
		from, to := users[rng.Intn(3)], users[rng.Intn(3)]
		if from == to {
			continue
		}
		label := []string{"friend", "colleague"}[rng.Intn(2)]
		if rng.Intn(2) == 0 {
			_ = n.Relate(from, to, label)
		} else {
			_ = n.Unrelate(from, to, label)
		}
		for _, req := range users {
			if req == alice {
				continue
			}
			d, err := n.CanAccess("doc", req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := n.CheckPath(alice, req, "friend+[1]")
			if err != nil {
				t.Fatal(err)
			}
			if got := d.Effect == Allow; got != want {
				t.Fatalf("step %d: requester %d: cached decision %v, oracle %v", i, req, d.Effect, want)
			}
		}
	}
}
