package reachac

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reachac/internal/wal"
)

// buildDurable populates a durable network with a small scenario and returns
// the IDs the assertions need.
func buildDurable(t *testing.T, n *Network) (alice, bob, carol UserID) {
	t.Helper()
	alice = n.MustAddUser("alice")
	bob = n.MustAddUser("bob")
	carol = n.MustAddUser("carol")
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if err := n.Relate(bob, carol, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("photo", alice, "friend+[1,1]"); err != nil {
		t.Fatal(err)
	}
	return
}

func TestOpenCloseReopen(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !n.Durable() {
		t.Fatal("Open returned a non-durable network")
	}
	alice, bob, carol := buildDurable(t, n)
	if d, _ := n.CanAccess("photo", bob); d.Effect != Allow {
		t.Fatal("bob denied before close")
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Mutations after Close fail; reads keep working.
	if _, err := n.AddUser("dave"); err == nil {
		t.Fatal("AddUser after Close succeeded")
	}
	if d, _ := n.CanAccess("photo", bob); d.Effect != Allow {
		t.Fatal("read after Close broke")
	}

	for _, kind := range []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin} {
		n2, err := Open(dir, WithEngine(kind))
		if err != nil {
			t.Fatalf("reopen with %v: %v", kind, err)
		}
		if n2.EngineKind() != kind {
			t.Fatalf("engine %v not selected", kind)
		}
		rec := n2.Recovery()
		if rec.Groups == 0 || rec.TornTail {
			t.Fatalf("unexpected recovery info %+v", rec)
		}
		if n2.NumUsers() != 3 || n2.NumRelationships() != 2 {
			t.Fatalf("recovered %d users %d rels", n2.NumUsers(), n2.NumRelationships())
		}
		for u, want := range map[UserID]uint8{alice: 1, bob: 1, carol: 0} {
			d, err := n2.CanAccess("photo", u)
			if err != nil {
				t.Fatal(err)
			}
			if (d.Effect == Allow) != (want == 1) {
				t.Fatalf("%v: user %d effect %v", kind, u, d.Effect)
			}
		}
		n2.Close()
	}
}

func TestDurableMutationsAfterReopen(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	alice, bob, _ := buildDurable(t, n)
	n.Close()

	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Post-recovery Share must not collide with replayed rule IDs.
	ruleID, err := n2.Share("note", alice, "friend+[1,2]")
	if err != nil {
		t.Fatalf("Share after reopen: %v", err)
	}
	if err := n2.Unrelate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	n2.Close()

	n3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	if n3.NumRelationships() != 1 {
		t.Fatalf("unrelate not recovered: %d rels", n3.NumRelationships())
	}
	if !n3.Revoke("note", ruleID) {
		t.Fatalf("rule %s not recovered", ruleID)
	}
}

func TestBatchIsOneAtomicGroup(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	base := groupsOnDisk(t, dir)

	// A failed batch must append nothing.
	wantErr := fmt.Errorf("boom")
	if err := n.Batch(func(tx *Tx) error {
		if err := tx.Relate(a, b, "friend"); err != nil {
			return err
		}
		return wantErr
	}); err != wantErr {
		t.Fatalf("Batch error = %v", err)
	}
	if got := groupsOnDisk(t, dir); got != base {
		t.Fatalf("failed batch appended %d groups", got-base)
	}

	// A successful multi-op batch is exactly one group.
	if err := n.Batch(func(tx *Tx) error {
		if err := tx.Relate(a, b, "friend"); err != nil {
			return err
		}
		if _, err := tx.Share("doc", a, "friend+[1,1]"); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := groupsOnDisk(t, dir); got != base+1 {
		t.Fatalf("batch appended %d groups, want 1", got-base)
	}
	n.Close()

	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if d, _ := n2.CanAccess("doc", b); d.Effect != Allow {
		t.Fatal("batched share not recovered")
	}
}

// groupsOnDisk counts the record groups across all live WAL segments.
func groupsOnDisk(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range matches {
		offs, err := wal.RecordOffsets(m)
		if err != nil {
			t.Fatal(err)
		}
		total += len(offs)
	}
	return total
}

func TestAutoCheckpointRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir, WithSync(SyncNever), WithCheckpointEvery(2048))
	if err != nil {
		t.Fatal(err)
	}
	var users []UserID
	for i := 0; i < 120; i++ {
		u := n.MustAddUser(fmt.Sprintf("user%03d", i))
		users = append(users, u)
		if i > 0 {
			if err := n.Relate(users[i-1], u, "friend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := n.Share("photo", users[0], "friend+[1,3]"); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close (includes checkpoint errors): %v", err)
	}

	// The log must have been compacted: at least one checkpoint file, and
	// the total segment bytes must be far below the raw append volume.
	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(ckpts) == 0 {
		t.Fatal("no checkpoint written")
	}
	n2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after checkpoints: %v", err)
	}
	defer n2.Close()
	if n2.Recovery().CheckpointSeq == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
	if n2.NumUsers() != 120 || n2.NumRelationships() != 119 {
		t.Fatalf("recovered %d users %d rels", n2.NumUsers(), n2.NumRelationships())
	}
	if d, _ := n2.CanAccess("photo", users[2]); d.Effect != Allow {
		t.Fatal("decision wrong after checkpointed recovery")
	}
}

func TestManualCheckpoint(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	buildDurable(t, n)
	if err := n.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Everything is in the checkpoint; the live segment holds nothing.
	if got := groupsOnDisk(t, dir); got != 0 {
		t.Fatalf("%d groups on disk after checkpoint, want 0", got)
	}
	n.Close()
	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if n2.Recovery().Groups != 0 || n2.Recovery().CheckpointSeq == 0 {
		t.Fatalf("recovery info %+v", n2.Recovery())
	}
	if n2.NumUsers() != 3 {
		t.Fatalf("recovered %d users", n2.NumUsers())
	}
}

func TestDurableLoadPolicies(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	alice, bob, _ := buildDurable(t, n)

	// Build a replacement policy set: same resource, different audience.
	alt := New()
	alt.MustAddUser("alice")
	alt.MustAddUser("bob")
	alt.MustAddUser("carol")
	if _, err := alt.Share("photo", alice, "friend+[1,2]"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := alt.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}
	if err := n.LoadPolicies(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("LoadPolicies: %v", err)
	}
	n.Close()

	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	// Under the replacement policy carol (friend-of-friend) is allowed.
	carol, _ := n2.UserID("carol")
	if d, _ := n2.CanAccess("photo", carol); d.Effect != Allow {
		t.Fatal("policy reset not recovered")
	}
	_ = bob
}

func TestOpenRejectsCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir, WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	buildDurable(t, n)
	n.Close()
	seg := filepath.Join(dir, "wal-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record's payload, keeping later records intact, by
	// flipping a byte past the first header.
	data[10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The flip lands in the first frame, so everything after it is dropped
	// as a torn tail... unless records remain, in which case this dir holds
	// ONLY one segment — recovery treats it as the newest and tolerates it.
	n2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over torn single segment: %v", err)
	}
	if !n2.Recovery().TornTail {
		t.Fatal("torn tail not reported")
	}
	if n2.Recovery().Groups != 0 {
		t.Fatalf("recovered %d groups from corrupt-first-record log", n2.Recovery().Groups)
	}
	n2.Close()
}

func TestSecondOpenSameDirIndependent(t *testing.T) {
	// Two sequential Opens of the same dir (not concurrent — the log takes
	// no lock file yet) must each see the other's durable writes.
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n.MustAddUser("alice")
	n.Close()
	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n2.UserID("alice"); !ok {
		t.Fatal("second open missed first open's write")
	}
	n2.MustAddUser("bob")
	n2.Close()
	n3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n3.Close()
	if n3.NumUsers() != 2 {
		t.Fatalf("third open sees %d users", n3.NumUsers())
	}
}

// TestFailedBatchKeepsReplayAligned pins the ghost-node rule: AddUser is
// not invertible, so a failed batch's node additions stay in memory — and
// must therefore still be logged, or every later node would take a
// different ID under replay than it did live.
func TestFailedBatchKeepsReplayAligned(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	if err := n.Batch(func(tx *Tx) error {
		if _, err := tx.AddUser("ghost"); err != nil {
			return err
		}
		if _, err := tx.Share("orphan", 0, "friend+[1,1]"); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatalf("Batch error = %v", err)
	}
	// The rolled-back Share's registration is undone with it.
	if _, ok := n.Store().Owner("orphan"); ok {
		t.Fatal("failed batch left its resource registration behind")
	}
	// Acknowledged mutations referencing post-ghost IDs must recover.
	alice := n.MustAddUser("alice")
	bob := n.MustAddUser("bob")
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("photo", alice, "friend+[1,1]"); err != nil {
		t.Fatal(err)
	}
	n.Close()

	n2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery after failed batch: %v", err)
	}
	defer n2.Close()
	if got, _ := n2.UserID("alice"); got != alice {
		t.Fatalf("alice recovered as %d, was %d live", got, alice)
	}
	if d, _ := n2.CanAccess("photo", bob); d.Effect != Allow {
		t.Fatal("post-ghost decision wrong after recovery")
	}
	if _, ok := n2.UserID("ghost"); !ok {
		t.Fatal("ghost member missing from recovery (ID allocation diverged)")
	}
}

// TestLoadPoliciesSurvivesTriggeredCheckpoint pins the ordering fix: the
// checkpoint a LoadPolicies commit triggers must snapshot the NEW store,
// not the one the logged reset replaced.
func TestLoadPoliciesSurvivesTriggeredCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Threshold of 1 byte: every commit (including the policy reset
	// itself) triggers a checkpoint+rotation.
	n, err := Open(dir, WithSync(SyncNever), WithCheckpointEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	alice, bob, _ := buildDurable(t, n)
	alt := New()
	alt.MustAddUser("alice")
	alt.MustAddUser("bob")
	alt.MustAddUser("carol")
	if _, err := alt.Share("photo", alice, "friend+[1,2]"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := alt.SavePolicies(&buf); err != nil {
		t.Fatal(err)
	}
	if err := n.LoadPolicies(&buf); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	carol, _ := n2.UserID("carol")
	if d, _ := n2.CanAccess("photo", carol); d.Effect != Allow {
		t.Fatal("checkpoint snapshotted the pre-reset store; policy reset lost")
	}
	_ = bob
}

// TestOpenLocksDirectory pins the flock: a second Open of a live directory
// must fail cleanly instead of truncating the first opener's log.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open of a live directory succeeded")
	}
	n.MustAddUser("alice")
	n.Close()
	// Released on Close: reopening now works.
	n2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	n2.Close()
}

// TestNonDurableUnaffected pins the zero-cost path: New() networks have no
// WAL, Close is a no-op, and mutations never touch disk.
func TestNonDurableUnaffected(t *testing.T) {
	n := New()
	if n.Durable() {
		t.Fatal("New() network claims durability")
	}
	buildDurable(t, n)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddUser("dave"); err != nil {
		t.Fatalf("mutation after no-op Close: %v", err)
	}
	if rec := n.Recovery(); rec.Groups != 0 || rec.TornTail {
		t.Fatalf("non-durable recovery info %+v", rec)
	}
}

func TestSaveStateLoadStateRoundTrip(t *testing.T) {
	n := New()
	alice, bob, carol := buildDurable(t, n)
	var buf bytes.Buffer
	if err := n.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	if !strings.Contains(buf.String(), "reachac-checkpoint-v1") {
		t.Fatal("SaveState stream missing checkpoint magic")
	}
	n2, err := LoadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	for u, want := range map[UserID]bool{alice: true, bob: true, carol: false} {
		d, err := n2.CanAccess("photo", u)
		if err != nil {
			t.Fatal(err)
		}
		if (d.Effect == Allow) != want {
			t.Fatalf("user %d effect %v after LoadState", u, d.Effect)
		}
	}
}

// TestCheckpointSkippedWhenClean pins the idle no-op: Checkpoint rewrites
// nothing when no WAL record was appended since the last checkpoint, so an
// idle Close or SIGTERM never rewrites identical checkpoint files.
func TestCheckpointSkippedWhenClean(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// A brand-new empty directory has nothing to checkpoint.
	if err := n.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on empty network: %v", err)
	}
	if st := n.Stats(); st.Checkpoints != 0 || st.CheckpointsSkipped != 1 {
		t.Fatalf("empty checkpoint not skipped: %+v", st)
	}

	buildDurable(t, n)
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st1 := n.Stats()
	if st1.Checkpoints != 1 {
		t.Fatalf("dirty checkpoint not taken: %+v", st1)
	}

	// Nothing appended since: the second call must neither rotate nor write.
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2 := n.Stats()
	if st2.WALSegmentSeq != st1.WALSegmentSeq {
		t.Fatal("idle Checkpoint rotated the log")
	}
	if st2.Checkpoints != 1 || st2.CheckpointsSkipped != 2 {
		t.Fatalf("idle checkpoint not skipped: %+v", st2)
	}

	// A mutation dirties the log again and the next checkpoint is real.
	n.MustAddUser("dora")
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.Checkpoints != 2 {
		t.Fatalf("post-mutation checkpoint skipped: %+v", st)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if _, ok := n2.UserID("dora"); !ok || n2.NumUsers() != 4 {
		t.Fatalf("recovery after skip/take sequence lost state (%d users)", n2.NumUsers())
	}
}
