package wal

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"os"
	"testing"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// flipCase flips the 0x20 case bit of the last ASCII letter in a chained
// payload — a tamper that keeps the JSON decodable and the prev link intact,
// so only the recomputed chain can expose it. The last letter is always past
// the hex prev field.
func flipCase(t *testing.T, payload []byte) {
	t.Helper()
	for i := len(payload) - 1; i >= 0; i-- {
		c := payload[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			payload[i] ^= 0x20
			return
		}
	}
	t.Fatal("payload holds no letter to tamper")
}

// buildChainedLog writes the standard op sequence into a fresh log dir and
// returns the segment path plus the per-record end offsets.
func buildChainedLog(t *testing.T) (dir string, seg string, offs []int64) {
	t.Helper()
	dir = t.TempDir()
	l, _ := openLog(t, dir, Options{})
	for _, g := range buildOps(t) {
		if err := l.Append(g); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg = segmentPath(dir, 1)
	offs, err := RecordOffsets(seg)
	if err != nil {
		t.Fatalf("RecordOffsets: %v", err)
	}
	return dir, seg, offs
}

func TestVerifyChainCleanLog(t *testing.T) {
	dir, _, offs := buildChainedLog(t)
	rep, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain on a clean log: %v", err)
	}
	if rep.Groups != len(offs) || rep.Segments != 1 || rep.CheckpointSeq != 0 {
		t.Fatalf("report %+v, want %d groups in 1 segment from genesis", rep, len(offs))
	}
	if rep.Anchor != hex.EncodeToString(make([]byte, 32)) {
		t.Fatalf("genesis anchor = %s", rep.Anchor)
	}
	// The reported head chain must match what recovery recomputes.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chain != hex.EncodeToString(rec.Chain[:]) {
		t.Fatalf("verifier chain %s != recovery chain %x", rep.Chain, rec.Chain)
	}
}

// TestVerifyChainDetectsEveryFlippedByte flips each byte of the segment in
// turn and asserts VerifyChain fails every time, reporting a position no
// later than the record containing the flip (a flipped frame header can
// shorten the valid prefix, which reports at the same record's offset).
func TestVerifyChainDetectsEveryFlippedByte(t *testing.T) {
	_, seg, offs := buildChainedLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recordStart := func(pos int64) int64 {
		start := int64(0)
		for _, end := range offs {
			if pos < end {
				return start
			}
			start = end
		}
		return start
	}
	for pos := range data {
		d := t.TempDir()
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x20
		if err := os.WriteFile(segmentPath(d, 1), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := VerifyChain(d)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", pos)
		}
		var ce *ChainError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at byte %d: error %v is not a ChainError", pos, err)
		}
		if want := recordStart(int64(pos)); ce.Offset > want {
			t.Fatalf("flip at byte %d (record starting %d) reported at offset %d, past the record", pos, want, ce.Offset)
		}
	}
}

// TestVerifyChainDetectsCRCFixedTamper re-CRCs a tampered payload so the
// framing is self-consistent: only the hash chain can catch it. Every record
// except the final one must be pinpointed exactly (the head of the log has
// no successor to contradict it — that is what anchor checkpoints bound).
func TestVerifyChainDetectsCRCFixedTamper(t *testing.T) {
	_, seg, offs := buildChainedLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	start := int64(0)
	for i, end := range offs[:len(offs)-1] {
		d := t.TempDir()
		mut := append([]byte(nil), data...)
		// Change the case of a letter in the ops section (past the prev
		// link): the payload stays decodable JSON with an intact link, so
		// only the recomputed chain can expose the edit. Restore the frame
		// CRC over the tampered payload.
		payload := mut[start+frameHeaderSize : end]
		flipCase(t, payload)
		binary.LittleEndian.PutUint32(mut[start+4:start+8], crc32.Checksum(payload, crcTable))
		if err := os.WriteFile(segmentPath(d, 1), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var ce *ChainError
		_, err := VerifyChain(d)
		if !errors.As(err, &ce) {
			t.Fatalf("CRC-fixed tamper of record %d undetected (err %v)", i, err)
		}
		// The chain breaks at the successor: its prev link contradicts the
		// recomputed chain over the tampered record.
		if ce.Index != i+1 || ce.Offset != end {
			t.Fatalf("tamper of record %d reported at group %d offset %d, want group %d offset %d",
				i, ce.Index, ce.Offset, i+1, end)
		}
		start = end
	}
}

// TestVerifyChainDetectsSpliceAndReorder removes one record, and separately
// swaps two adjacent records; both must be pinpointed at the first record
// whose link no longer matches.
func TestVerifyChainDetectsSpliceAndReorder(t *testing.T) {
	_, seg, offs := buildChainedLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := func(i int) (int64, int64) {
		start := int64(0)
		if i > 0 {
			start = offs[i-1]
		}
		return start, offs[i]
	}

	// Splice record 2 out: record 3 (now at record 2's old offset) carries a
	// prev over the missing record.
	s2, e2 := bounds(2)
	spliced := append(append([]byte(nil), data[:s2]...), data[e2:]...)
	d := t.TempDir()
	if err := os.WriteFile(segmentPath(d, 1), spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *ChainError
	if _, err := VerifyChain(d); !errors.As(err, &ce) {
		t.Fatalf("splice undetected (err %v)", err)
	} else if ce.Index != 2 || ce.Offset != s2 {
		t.Fatalf("splice reported at group %d offset %d, want group 2 offset %d", ce.Index, ce.Offset, s2)
	}

	// Swap records 1 and 2: record 1's slot now holds a record whose prev
	// points two back.
	s1, e1 := bounds(1)
	swapped := append([]byte(nil), data[:s1]...)
	swapped = append(swapped, data[e1:e2]...)
	swapped = append(swapped, data[s1:e1]...)
	swapped = append(swapped, data[e2:]...)
	d = t.TempDir()
	if err := os.WriteFile(segmentPath(d, 1), swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(d); !errors.As(err, &ce) {
		t.Fatalf("reorder undetected (err %v)", err)
	} else if ce.Index != 1 || ce.Offset != s1 {
		t.Fatalf("reorder reported at group %d offset %d, want group 1 offset %d", ce.Index, ce.Offset, s1)
	}
}

// TestVerifyChainAcrossCheckpointAnchor verifies that after rotation +
// checkpoint the walk resumes from the recorded anchor, and that tampering
// with the anchor itself is caught at the first post-checkpoint record.
func TestVerifyChainAcrossCheckpointAnchor(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	groups := buildOps(t)
	for _, g := range groups[:3] {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups[3:] {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	g, s := graph.New(), core.NewStore()
	for _, grp := range groups[:3] {
		for _, op := range grp {
			if s, err = op.Apply(g, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.WriteCheckpoint(covered, g, s); err != nil {
		t.Fatal(err)
	}
	l.Close()

	rep, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("VerifyChain across checkpoint: %v", err)
	}
	if rep.CheckpointSeq != 1 || rep.Groups != len(groups)-3 {
		t.Fatalf("report %+v, want anchor at checkpoint 1 and %d tail groups", rep, len(groups)-3)
	}
	if rep.Anchor == hex.EncodeToString(make([]byte, 32)) {
		t.Fatal("anchor after three groups is still genesis")
	}

	// Forge the anchor: rewrite the checkpoint with a zero chain. The first
	// tail record's prev link contradicts it.
	if err := os.Remove(checkpointPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(checkpointPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(f, g, s, Chain{}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var ce *ChainError
	if _, err := VerifyChain(dir); !errors.As(err, &ce) {
		t.Fatalf("forged anchor undetected (err %v)", err)
	} else if ce.Seq != 2 || ce.Index != 0 {
		t.Fatalf("forged anchor reported at segment %d group %d, want segment 2 group 0", ce.Seq, ce.Index)
	}
}

// TestRecoveryRejectsChainMismatch proves the live recovery path (not just
// the offline verifier) refuses a CRC-valid record whose link is wrong: no
// crash produces one, so it must never be silently replayed — even on the
// newest segment, where torn frames ARE tolerated.
func TestRecoveryRejectsChainMismatch(t *testing.T) {
	_, seg, offs := buildChainedLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper the second-to-last record (CRC fixed up, JSON kept valid): the
	// final record's prev link must trip recovery.
	start, end := offs[len(offs)-3], offs[len(offs)-2]
	payload := data[start+frameHeaderSize : end]
	flipCase(t, payload)
	binary.LittleEndian.PutUint32(data[start+4:start+8], crc32.Checksum(payload, crcTable))
	d := t.TempDir()
	if err := os.WriteFile(segmentPath(d, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(d, Options{}); err == nil {
		t.Fatal("Open replayed a log with a broken chain link")
	}
}

// TestScanChainedVerifiesShippedBytes exercises the follower-side verifier:
// whole verified frames advance the chain, a torn suffix ends the prefix
// without error, and a CRC-valid frame with a wrong link is an error.
func TestScanChainedVerifiesShippedBytes(t *testing.T) {
	_, seg, offs := buildChainedLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	groups, valid, next, err := ScanChained(data, Chain{})
	if err != nil {
		t.Fatalf("ScanChained over clean bytes: %v", err)
	}
	if len(groups) != len(offs) || valid != int64(len(data)) {
		t.Fatalf("verified %d groups / %d bytes, want %d / %d", len(groups), valid, len(offs), len(data))
	}

	// Torn delivery: prefix verifies, remainder waits for the next chunk.
	groups2, valid2, mid, err := ScanChained(data[:offs[2]+5], Chain{})
	if err != nil {
		t.Fatalf("ScanChained over torn chunk: %v", err)
	}
	if len(groups2) != 3 || valid2 != offs[2] {
		t.Fatalf("torn chunk verified %d groups to %d, want 3 to %d", len(groups2), valid2, offs[2])
	}
	// Resuming from the reported position and chain consumes the rest.
	groups3, valid3, end, err := ScanChained(data[valid2:], mid)
	if err != nil || int64(len(data))-valid2 != valid3 || len(groups2)+len(groups3) != len(offs) {
		t.Fatalf("resume failed: %d groups / %d bytes, err %v", len(groups3), valid3, err)
	}
	if end != next {
		t.Fatal("resumed chain diverged from one-shot chain")
	}

	// Wrong starting chain: the first record's link must reject the chunk.
	if _, _, _, err := ScanChained(data, next); err == nil {
		t.Fatal("ScanChained accepted bytes against the wrong chain")
	}
}

// FuzzChainVerify feeds arbitrary bytes to the offline verifier as a segment
// file: it must never panic, and any reported ChainError must point inside
// the file.
func FuzzChainVerify(f *testing.F) {
	var valid []byte
	var chain Chain
	for _, g := range [][]Op{
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "alice"})},
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "bob"}),
			GraphOp(graph.Delta{Op: graph.OpAddEdge, From: 0, To: 1, Label: "friend"})},
		{ShareOp("photo", 0, "rule-1", []string{"friend+[1,2]"})},
	} {
		var err error
		valid, chain, err = encodeFrame(valid, chain, g)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid, 0)
	f.Add(valid, 17)
	f.Add(valid[:len(valid)-4], -1)
	f.Add([]byte("{}"), 3)
	f.Add([]byte{}, 0)

	f.Fuzz(func(t *testing.T, data []byte, flip int) {
		mut := append([]byte(nil), data...)
		if len(mut) > 0 && flip >= 0 {
			mut[flip%len(mut)] ^= 1 << (flip % 8)
		}
		// In-memory chunk verification must not panic and must keep the
		// verified prefix within bounds.
		if _, valid, _, _ := ScanChained(mut, Chain{}); valid < 0 || valid > int64(len(mut)) {
			t.Fatalf("verified prefix %d out of bounds (%d bytes)", valid, len(mut))
		}
		// Whole-directory verification likewise.
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := VerifyChain(dir)
		var ce *ChainError
		if errors.As(err, &ce) {
			if ce.Offset < 0 || ce.Offset > int64(len(mut)) {
				t.Fatalf("ChainError offset %d out of bounds (%d bytes)", ce.Offset, len(mut))
			}
			if ce.Seq != 1 {
				t.Fatalf("ChainError names segment %d, only segment 1 exists", ce.Seq)
			}
		}
	})
}
