package wal

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// A checkpoint is one header line followed by the two section payloads:
//
//	{"magic":"reachac-checkpoint-v1","graph":G,"policy":P,"crc":C}\n
//	<G bytes of graph.Graph.Write output><P bytes of core.Store.Write output>
//
// The section lengths make the stream self-delimiting (both sections are
// themselves line-delimited JSON, so they could not otherwise be split
// apart safely), and the CRC over both sections rejects a checkpoint that
// was corrupted after the fact — recovery then falls back to the previous
// checkpoint plus the still-present log segments.

const checkpointMagic = "reachac-checkpoint-v1"

type checkpointHeader struct {
	Magic    string `json:"magic"`
	GraphLen int64  `json:"graph"`
	StoreLen int64  `json:"policy"`
	CRC      uint32 `json:"crc"`
	// Chain anchors the tamper-evident hash chain: the chain value at the
	// rotation boundary this checkpoint covers, hex-encoded. Empty on
	// pre-chain checkpoints and plain state streams (WriteState), which
	// anchor at the genesis (all-zero) chain.
	Chain string `json:"chain,omitempty"`
}

// writeCheckpoint serializes a consistent (graph, store) pair to w, with
// chain as the recorded anchor.
func writeCheckpoint(w io.Writer, g *graph.Graph, s *core.Store, chain Chain) error {
	var gb, sb bytes.Buffer
	if err := g.Write(&gb); err != nil {
		return err
	}
	if err := s.Write(&sb); err != nil {
		return err
	}
	crc := crc32.Checksum(gb.Bytes(), crcTable)
	crc = crc32.Update(crc, crcTable, sb.Bytes())
	hdr, err := json.Marshal(checkpointHeader{
		Magic:    checkpointMagic,
		GraphLen: int64(gb.Len()),
		StoreLen: int64(sb.Len()),
		CRC:      crc,
		Chain:    hex.EncodeToString(chain[:]),
	})
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(hdr)
	bw.WriteByte('\n')
	bw.Write(gb.Bytes())
	bw.Write(sb.Bytes())
	return bw.Flush()
}

// maxCheckpointSection bounds one checkpoint section, so a corrupt header
// cannot drive a giant allocation.
const maxCheckpointSection = 1 << 31

// readCheckpoint deserializes a checkpoint written by writeCheckpoint,
// returning the recorded chain anchor alongside the state.
func readCheckpoint(r io.Reader) (*graph.Graph, *core.Store, Chain, error) {
	var chain Chain
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, nil, chain, fmt.Errorf("wal: reading checkpoint header: %w", err)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, nil, chain, fmt.Errorf("wal: decoding checkpoint header: %w", err)
	}
	if hdr.Magic != checkpointMagic {
		return nil, nil, chain, fmt.Errorf("wal: bad checkpoint magic %q", hdr.Magic)
	}
	if hdr.GraphLen < 0 || hdr.StoreLen < 0 || hdr.GraphLen > maxCheckpointSection || hdr.StoreLen > maxCheckpointSection {
		return nil, nil, chain, fmt.Errorf("wal: absurd checkpoint section lengths (%d, %d)", hdr.GraphLen, hdr.StoreLen)
	}
	if hdr.Chain != "" {
		raw, err := hex.DecodeString(hdr.Chain)
		if err != nil || len(raw) != len(chain) {
			return nil, nil, chain, fmt.Errorf("wal: malformed checkpoint chain anchor %q", hdr.Chain)
		}
		copy(chain[:], raw)
	}
	gb := make([]byte, hdr.GraphLen)
	if _, err := io.ReadFull(br, gb); err != nil {
		return nil, nil, chain, fmt.Errorf("wal: reading checkpoint graph section: %w", err)
	}
	sb := make([]byte, hdr.StoreLen)
	if _, err := io.ReadFull(br, sb); err != nil {
		return nil, nil, chain, fmt.Errorf("wal: reading checkpoint policy section: %w", err)
	}
	crc := crc32.Checksum(gb, crcTable)
	crc = crc32.Update(crc, crcTable, sb)
	if crc != hdr.CRC {
		return nil, nil, chain, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	g, err := graph.Read(bytes.NewReader(gb))
	if err != nil {
		return nil, nil, chain, err
	}
	s, err := core.ReadStore(bytes.NewReader(sb), g)
	if err != nil {
		return nil, nil, chain, err
	}
	return g, s, chain, nil
}

func readCheckpointFile(path string) (*graph.Graph, *core.Store, Chain, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, Chain{}, err
	}
	defer f.Close()
	return readCheckpoint(f)
}

// WriteState serializes a consistent (graph, store) pair in checkpoint
// format; the facade's Network.SaveState exposes it as the one-stream
// whole-network persistence format. State streams record the genesis anchor.
func WriteState(w io.Writer, g *graph.Graph, s *core.Store) error {
	return writeCheckpoint(w, g, s, Chain{})
}

// ReadState deserializes a stream written by WriteState.
func ReadState(r io.Reader) (*graph.Graph, *core.Store, error) {
	g, s, _, err := readCheckpoint(r)
	return g, s, err
}
