package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// A checkpoint is one header line followed by the two section payloads:
//
//	{"magic":"reachac-checkpoint-v1","graph":G,"policy":P,"crc":C}\n
//	<G bytes of graph.Graph.Write output><P bytes of core.Store.Write output>
//
// The section lengths make the stream self-delimiting (both sections are
// themselves line-delimited JSON, so they could not otherwise be split
// apart safely), and the CRC over both sections rejects a checkpoint that
// was corrupted after the fact — recovery then falls back to the previous
// checkpoint plus the still-present log segments.

const checkpointMagic = "reachac-checkpoint-v1"

type checkpointHeader struct {
	Magic    string `json:"magic"`
	GraphLen int64  `json:"graph"`
	StoreLen int64  `json:"policy"`
	CRC      uint32 `json:"crc"`
}

// writeCheckpoint serializes a consistent (graph, store) pair to w.
func writeCheckpoint(w io.Writer, g *graph.Graph, s *core.Store) error {
	var gb, sb bytes.Buffer
	if err := g.Write(&gb); err != nil {
		return err
	}
	if err := s.Write(&sb); err != nil {
		return err
	}
	crc := crc32.Checksum(gb.Bytes(), crcTable)
	crc = crc32.Update(crc, crcTable, sb.Bytes())
	hdr, err := json.Marshal(checkpointHeader{
		Magic:    checkpointMagic,
		GraphLen: int64(gb.Len()),
		StoreLen: int64(sb.Len()),
		CRC:      crc,
	})
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	bw.Write(hdr)
	bw.WriteByte('\n')
	bw.Write(gb.Bytes())
	bw.Write(sb.Bytes())
	return bw.Flush()
}

// maxCheckpointSection bounds one checkpoint section, so a corrupt header
// cannot drive a giant allocation.
const maxCheckpointSection = 1 << 31

// readCheckpoint deserializes a checkpoint written by writeCheckpoint.
func readCheckpoint(r io.Reader) (*graph.Graph, *core.Store, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading checkpoint header: %w", err)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, nil, fmt.Errorf("wal: decoding checkpoint header: %w", err)
	}
	if hdr.Magic != checkpointMagic {
		return nil, nil, fmt.Errorf("wal: bad checkpoint magic %q", hdr.Magic)
	}
	if hdr.GraphLen < 0 || hdr.StoreLen < 0 || hdr.GraphLen > maxCheckpointSection || hdr.StoreLen > maxCheckpointSection {
		return nil, nil, fmt.Errorf("wal: absurd checkpoint section lengths (%d, %d)", hdr.GraphLen, hdr.StoreLen)
	}
	gb := make([]byte, hdr.GraphLen)
	if _, err := io.ReadFull(br, gb); err != nil {
		return nil, nil, fmt.Errorf("wal: reading checkpoint graph section: %w", err)
	}
	sb := make([]byte, hdr.StoreLen)
	if _, err := io.ReadFull(br, sb); err != nil {
		return nil, nil, fmt.Errorf("wal: reading checkpoint policy section: %w", err)
	}
	crc := crc32.Checksum(gb, crcTable)
	crc = crc32.Update(crc, crcTable, sb)
	if crc != hdr.CRC {
		return nil, nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	g, err := graph.Read(bytes.NewReader(gb))
	if err != nil {
		return nil, nil, err
	}
	s, err := core.ReadStore(bytes.NewReader(sb), g)
	if err != nil {
		return nil, nil, err
	}
	return g, s, nil
}

func readCheckpointFile(path string) (*graph.Graph, *core.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return readCheckpoint(f)
}

// WriteState serializes a consistent (graph, store) pair in checkpoint
// format; the facade's Network.SaveState exposes it as the one-stream
// whole-network persistence format.
func WriteState(w io.Writer, g *graph.Graph, s *core.Store) error {
	return writeCheckpoint(w, g, s)
}

// ReadState deserializes a stream written by WriteState.
func ReadState(r io.Reader) (*graph.Graph, *core.Store, error) {
	return readCheckpoint(r)
}
