package wal

import (
	"bytes"
	"os"
	"testing"
	"time"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// buildOps returns a small op sequence touching every kind except
// OpPolicyReset: two nodes, an edge, a share, a revoke of a second rule.
func buildOps(t *testing.T) [][]Op {
	t.Helper()
	return [][]Op{
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "alice", Attrs: graph.Attrs{"age": graph.Int(30)}})},
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "bob"})},
		{GraphOp(graph.Delta{Op: graph.OpAddEdge, From: 0, To: 1, Label: "friend"})},
		{ShareOp("photo", 0, "rule-1", []string{"friend+[1,1]"})},
		{ShareOp("photo", 0, "rule-2", []string{"friend+[1,2]"})},
		{RevokeOp("photo", "rule-2")},
	}
}

func openLog(t *testing.T, dir string, opts Options) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openLog(t, dir, Options{})
	if rec.Groups != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	groups := buildOps(t)
	for _, g := range groups {
		if err := l.Append(g); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openLog(t, dir, Options{})
	defer l2.Close()
	if rec2.Groups != len(groups) {
		t.Fatalf("recovered %d groups, want %d", rec2.Groups, len(groups))
	}
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	if got := rec2.Graph.NumNodes(); got != 2 {
		t.Fatalf("recovered %d nodes, want 2", got)
	}
	if !rec2.Graph.HasEdge(0, 1, "friend") {
		t.Fatal("recovered graph missing friend edge")
	}
	rules := rec2.Store.RulesFor("photo")
	if len(rules) != 1 || rules[0].ID != "rule-1" {
		t.Fatalf("recovered rules %v, want exactly rule-1", rules)
	}
	// The revoked rule-2 must have advanced nextID: a fresh auto ID must
	// not collide with either restored ID.
	if err := rec2.Store.AddRule(&core.Rule{Resource: "photo", Owner: 0,
		Conditions: rules[0].Conditions}); err != nil {
		t.Fatalf("post-recovery AddRule: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	groups := buildOps(t)
	for _, g := range groups {
		if err := l.Append(g); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	seg := segmentPath(dir, 1)
	offs, err := RecordOffsets(seg)
	if err != nil {
		t.Fatalf("RecordOffsets: %v", err)
	}
	if len(offs) != len(groups) {
		t.Fatalf("scanned %d records, want %d", len(offs), len(groups))
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the final record at several byte positions: recovery must drop
	// it, report the torn tail, and truncate the file to the valid prefix.
	prev := offs[len(offs)-2]
	for _, cut := range []int64{prev + 1, prev + frameHeaderSize, offs[len(offs)-1] - 1} {
		d := t.TempDir()
		if err := os.WriteFile(segmentPath(d, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openLog(t, d, Options{})
		if !rec.TornTail {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if rec.Groups != len(groups)-1 {
			t.Fatalf("cut at %d: recovered %d groups, want %d", cut, rec.Groups, len(groups)-1)
		}
		fi, err := os.Stat(segmentPath(d, 1))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != prev {
			t.Fatalf("cut at %d: file truncated to %d, want %d", cut, fi.Size(), prev)
		}
		// Appending after truncation extends a clean prefix.
		if err := l2.Append([]Op{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "carol"})}); err != nil {
			t.Fatalf("append after truncation: %v", err)
		}
		l2.Close()
		l3, rec3 := openLog(t, d, Options{})
		if rec3.Groups != len(groups) || rec3.TornTail {
			t.Fatalf("cut at %d: reopen recovered %+v", cut, rec3)
		}
		if _, ok := rec3.Graph.NodeByName("carol"); !ok {
			t.Fatalf("cut at %d: post-truncation append lost", cut)
		}
		l3.Close()
	}
}

func TestCorruptMiddleSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	for _, g := range buildOps(t)[:3] {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Append([]Op{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "dave"})}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a payload byte in the FIRST segment: that is corruption of
	// acknowledged history with newer records behind it — a hard error,
	// never a silent skip.
	seg := segmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded over corrupt middle segment")
	}
}

func TestRotateCheckpointPurge(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	groups := buildOps(t)
	for _, g := range groups {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if covered != 1 || l.Seq() != 2 {
		t.Fatalf("covered %d seq %d, want 1 and 2", covered, l.Seq())
	}
	// Post-rotation appends land in the new segment.
	if err := l.Append([]Op{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "erin"})}); err != nil {
		t.Fatal(err)
	}

	// Checkpoint state = replay of the rotated prefix.
	g, s := graph.New(), core.NewStore()
	for _, grp := range groups {
		for _, op := range grp {
			if s, err = op.Apply(g, s); err != nil {
				t.Fatalf("Apply: %v", err)
			}
		}
	}
	if err := l.WriteCheckpoint(covered, g, s); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("covered segment not purged: %v", err)
	}
	l.Close()

	l2, rec := openLog(t, dir, Options{})
	defer l2.Close()
	if rec.CheckpointSeq != 1 {
		t.Fatalf("recovered from checkpoint %d, want 1", rec.CheckpointSeq)
	}
	if rec.Groups != 1 {
		t.Fatalf("replayed %d tail groups, want 1", rec.Groups)
	}
	if _, ok := rec.Graph.NodeByName("erin"); !ok {
		t.Fatal("tail group lost across checkpoint")
	}
	if _, ok := rec.Graph.NodeByName("alice"); !ok {
		t.Fatal("checkpointed state lost")
	}
	if rules := rec.Store.RulesFor("photo"); len(rules) != 1 {
		t.Fatalf("checkpointed rules %v, want 1", rules)
	}
}

func TestMissingSegmentAfterCheckpointIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	for _, g := range buildOps(t) {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "tail"})}); err != nil {
		t.Fatal(err)
	}
	g, s := graph.New(), core.NewStore()
	for _, grp := range buildOps(t) {
		for _, op := range grp {
			if s, err = op.Apply(g, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.WriteCheckpoint(covered, g, s); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Deleting the first tail segment (checkpoint+1) loses acknowledged
	// history; recovery must refuse, not silently skip it.
	if err := os.Remove(segmentPath(dir, covered+1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded with the post-checkpoint segment missing")
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	groups := buildOps(t)
	for _, g := range groups {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	g, s := graph.New(), core.NewStore()
	for _, grp := range groups {
		for _, op := range grp {
			if s, err = op.Apply(g, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Write the checkpoint WITHOUT purging the covered segment, then corrupt
	// it: recovery must fall back to full log replay.
	var buf bytes.Buffer
	if err := writeCheckpoint(&buf, g, s, Chain{}); err != nil {
		t.Fatal(err)
	}
	ckpt := buf.Bytes()
	ckpt[len(ckpt)-3] ^= 0xff
	if err := os.WriteFile(checkpointPath(dir, covered), ckpt, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec := openLog(t, dir, Options{})
	defer l2.Close()
	if rec.CheckpointSeq != 0 {
		t.Fatalf("corrupt checkpoint used (seq %d)", rec.CheckpointSeq)
	}
	if rec.Groups != len(groups) {
		t.Fatalf("fallback replayed %d groups, want %d", rec.Groups, len(groups))
	}
	if _, ok := rec.Graph.NodeByName("alice"); !ok {
		t.Fatal("fallback replay lost state")
	}
}

func TestStateRoundTrip(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("alice", graph.Attrs{"city": graph.String("ghent")})
	b := g.MustAddNode("bob", nil)
	g.MustAddEdge(a, b, "friend")
	s := core.NewStore()
	if err := s.Register("photo", a); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteState(&buf, g, s); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	g2, s2, err := ReadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if g2.NumNodes() != 2 || !g2.HasEdge(a, b, "friend") {
		t.Fatal("graph did not round-trip")
	}
	if v, ok := g2.Attr(a, "city"); !ok || v.Str() != "ghent" {
		t.Fatal("attrs did not round-trip")
	}
	if owner, ok := s2.Owner("photo"); !ok || owner != a {
		t.Fatal("store did not round-trip")
	}

	// Truncated stream: hard error, not empty state.
	if _, _, err := ReadState(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Fatal("truncated state stream read successfully")
	}
}

func TestSyncIntervalAndNever(t *testing.T) {
	for _, opts := range []Options{
		{Sync: SyncInterval, Interval: 5 * time.Millisecond},
		{Sync: SyncNever},
	} {
		dir := t.TempDir()
		l, _ := openLog(t, dir, opts)
		for _, g := range buildOps(t) {
			if err := l.Append(g); err != nil {
				t.Fatalf("Append under %v: %v", opts.Sync, err)
			}
		}
		if opts.Sync == SyncInterval {
			time.Sleep(25 * time.Millisecond)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close under %v: %v", opts.Sync, err)
		}
		_, rec := openLog(t, dir, Options{})
		if rec.Groups != len(buildOps(t)) {
			t.Fatalf("sync %v: recovered %d groups", opts.Sync, rec.Groups)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := openLog(t, t.TempDir(), Options{})
	l.Close()
	if err := l.Append([]Op{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "x"})}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestPolicyResetOp(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("alice", nil)
	s := core.NewStore()
	if err := s.Register("old", a); err != nil {
		t.Fatal(err)
	}

	ns := core.NewStore()
	if err := ns.Register("new", a); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ns.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := PolicyResetOp(buf.Bytes()).Apply(g, s)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, ok := s2.Owner("new"); !ok {
		t.Fatal("reset store missing new resource")
	}
	if _, ok := s2.Owner("old"); ok {
		t.Fatal("reset store kept old resource")
	}
}

func TestApplyRejectsBadOps(t *testing.T) {
	g := graph.New()
	s := core.NewStore()
	bad := []Op{
		{Kind: OpGraph}, // nil delta
		ShareOp("r", 42, "rule-1", []string{"friend+[1,1]"}),                  // unknown owner
		RevokeOp("r", "rule-9"),                                               // unknown rule
		PolicyResetOp([]byte("not json")),                                     // garbage payload
		{Kind: OpKind(99)},                                                    // unknown kind
		GraphOp(graph.Delta{Op: graph.OpAddEdge, From: 5, To: 6, Label: "x"}), // dangling edge
	}
	for i, op := range bad {
		if _, err := op.Apply(g, s); err == nil {
			t.Errorf("bad op %d applied cleanly", i)
		}
	}
}
