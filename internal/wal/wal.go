package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

// Sync policies.
const (
	// SyncAlways fsyncs before Append returns (group-committed: concurrent
	// appends waiting on the same fsync are covered by one call). This is
	// the default and the only policy under which an acknowledged mutation
	// is guaranteed to survive a machine crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background goroutine on a fixed cadence;
	// a crash may lose up to one interval of acknowledged mutations.
	SyncInterval
	// SyncNever leaves syncing to the OS (and to Rotate/Close, which always
	// sync). A crash may lose anything since the last rotation.
	SyncNever
)

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncInterval cadence (default 50ms).
	Interval time.Duration
}

// Recovered reports what Open reconstructed from the directory.
type Recovered struct {
	// Graph and Store hold the recovered state: the latest durable
	// checkpoint advanced by every decodable record group in the log tail.
	Graph *graph.Graph
	Store *core.Store
	// Groups counts the replayed record groups (acknowledged mutation
	// batches since the checkpoint).
	Groups int
	// TornTail reports that the newest segment ended in a torn or corrupt
	// frame, which was dropped and physically truncated away.
	TornTail bool
	// CheckpointSeq is the segment sequence the loaded checkpoint covered
	// (0 when recovery started from an empty state).
	CheckpointSeq uint64
	// Chain is the tamper-evidence chain value after the last replayed
	// group (the anchor when the tail was empty); TailSeq and TailSize
	// locate the append position: the newest segment and its byte length
	// after torn-tail truncation. A replica resumes shipping from exactly
	// (TailSeq, TailSize, Chain).
	Chain    Chain
	TailSeq  uint64
	TailSize int64
}

// Log is an append-only write-ahead log over numbered segment files in one
// directory, with checkpoint-based compaction. Append is safe for concurrent
// use; Rotate and WriteCheckpoint must be externally serialized against each
// other (the facade runs them under its mutator lock / a single checkpointer).
type Log struct {
	dir    string
	policy SyncPolicy

	// mu guards the segment file handle and write-side counters.
	mu       sync.Mutex
	f        *os.File
	seq      uint64
	size     int64
	appended uint64
	closed   bool
	scratch  []byte
	// chain is the running tamper-evidence chain value (after the last
	// appended group); ckptChain snapshots it at the last Rotate, which is
	// the anchor the matching WriteCheckpoint records.
	chain     Chain
	ckptChain Chain
	// ckptSeq is the segment sequence the newest durable checkpoint covers
	// (recovered at Open, advanced by WriteCheckpoint); with it, Clean can
	// tell an idle log from one holding uncheckpointed records.
	ckptSeq uint64

	// fsyncs counts data-file fsyncs (append group commits, rotations and
	// close), the durability cost the facade's Stats surface so callers can
	// observe group-commit amortization.
	fsyncs atomic.Uint64

	// syncMu serializes fsyncs; synced (guarded by it) is the highest
	// appended index known durable, giving group commit: a waiter that
	// finds synced past its own index rides a finished fsync for free.
	// syncedSeq/syncedOff track the same durability frontier as a byte
	// position — the shipping boundary replication serves up to — and
	// watch is closed (and renewed) whenever that frontier advances, so a
	// long-polling tail handler can wait without spinning. Appends extend
	// size by whole frames only, so the frontier is always frame-aligned.
	syncMu    sync.Mutex
	synced    uint64
	syncedSeq uint64
	syncedOff int64
	watch     chan struct{}
	// syncFailed latches the first fsync failure (error in syncErr, written
	// once under syncMu). Once set, every Append fails: a log whose
	// durability is unknown must not keep acknowledging — the background
	// SyncInterval loop in particular would otherwise swallow disk errors
	// forever.
	syncFailed atomic.Bool
	syncErr    error

	// lock is the flock(2)-held lock file preventing a second process from
	// opening (and truncating/appending) a live directory.
	lock *os.File

	stop chan struct{}
	done chan struct{}
}

const (
	segmentPattern    = "wal-%08d.log"
	checkpointPattern = "checkpoint-%08d.ckpt"
	defaultInterval   = 50 * time.Millisecond
)

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf(segmentPattern, seq))
}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf(checkpointPattern, seq))
}

// SegmentFile returns the path of segment seq inside dir; CheckpointFile the
// path of the checkpoint covering seq. The replication layer serves and
// mirrors these files by path.
func SegmentFile(dir string, seq uint64) string { return segmentPath(dir, seq) }

// CheckpointFile returns the path of the checkpoint covering segment seq.
func CheckpointFile(dir string, seq uint64) string { return checkpointPath(dir, seq) }

// ListDir returns the segment and checkpoint sequence numbers present in
// dir, each ascending.
func ListDir(dir string) (segments, checkpoints []uint64, err error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	return st.segments, st.checkpoints, nil
}

// dirState lists the sequence numbers present in a log directory.
type dirState struct {
	segments    []uint64 // ascending
	checkpoints []uint64 // ascending
}

func scanDir(dir string) (dirState, error) {
	var st dirState
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), segmentPattern, &seq); err == nil && n == 1 {
			st.segments = append(st.segments, seq)
			continue
		}
		if n, err := fmt.Sscanf(e.Name(), checkpointPattern, &seq); err == nil && n == 1 {
			st.checkpoints = append(st.checkpoints, seq)
		}
	}
	sort.Slice(st.segments, func(i, j int) bool { return st.segments[i] < st.segments[j] })
	sort.Slice(st.checkpoints, func(i, j int) bool { return st.checkpoints[i] < st.checkpoints[j] })
	return st, nil
}

// Open recovers the state persisted in dir — creating it empty if needed —
// and returns a Log positioned to append after the recovered tail.
//
// Recovery loads the newest readable checkpoint (corrupt ones are skipped,
// falling back to older checkpoints and ultimately to an empty state), then
// replays the record groups of every segment past it, in sequence order.
// A torn or corrupt tail is tolerated only on the newest segment: the bad
// suffix is dropped and truncated away so new appends extend a clean prefix.
// Corruption anywhere else — a bad frame mid-log, a gap in the segment
// numbering — is a hard error: silently skipping acknowledged mutations
// would break the exactly-the-acknowledged-prefix recovery guarantee.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	var rec Recovered
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, err
	}
	// Recovery truncates torn tails and takes append handles, so a second
	// opener against a LIVE directory would corrupt the first's log. An
	// advisory flock (released automatically if the process dies, so a
	// SIGKILLed owner never wedges recovery) makes that a clean error.
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, rec, err
	}
	fail := func(err error) (*Log, Recovered, error) {
		lock.Close()
		return nil, rec, err
	}
	rec, err = recoverDir(dir)
	if err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(segmentPath(dir, rec.TailSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(err)
	}
	l := &Log{
		dir:       dir,
		policy:    opts.Sync,
		f:         f,
		seq:       rec.TailSeq,
		size:      rec.TailSize,
		chain:     rec.Chain,
		ckptChain: rec.Chain,
		ckptSeq:   rec.CheckpointSeq,
		syncedSeq: rec.TailSeq,
		syncedOff: rec.TailSize,
		watch:     make(chan struct{}),
		lock:      lock,
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return fail(err)
	}
	if opts.Sync == SyncInterval {
		iv := opts.Interval
		if iv <= 0 {
			iv = defaultInterval
		}
		l.stop, l.done = make(chan struct{}), make(chan struct{})
		go l.syncLoop(iv)
	}
	return l, rec, nil
}

// Recover reconstructs the state persisted in dir without opening it for
// append, creating the directory empty if needed. It performs the exact
// recovery Open does — checkpoint fallback, ordered chained replay,
// torn-tail truncation on the newest segment — so a replica uses it to
// rebuild its serving state from locally shipped bytes. The caller must hold
// the directory's lock (LockDir) if any other process could be writing it.
func Recover(dir string) (Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Recovered{}, err
	}
	return recoverDir(dir)
}

// LockDir takes the directory's advisory flock — the same lock Open holds —
// without opening the log, for processes (a follower) that own the directory
// through a different write path. Close the returned file to release it.
func LockDir(dir string) (*os.File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return acquireDirLock(dir)
}

// recoverDir loads the newest readable checkpoint and replays every segment
// past it, verifying frame CRCs, segment contiguity and the tamper-evidence
// chain. A torn or corrupt tail is tolerated only on the newest segment: the
// bad suffix is dropped and truncated away so new appends (or shipped bytes)
// extend a clean prefix. Corruption anywhere else — a bad frame mid-log, a
// chain-link mismatch, a gap in the segment numbering — is a hard error:
// silently skipping acknowledged mutations would break the
// exactly-the-acknowledged-prefix recovery guarantee, and no crash produces
// a CRC-valid record with a wrong chain link.
func recoverDir(dir string) (Recovered, error) {
	var rec Recovered
	st, err := scanDir(dir)
	if err != nil {
		return rec, err
	}

	// Newest readable checkpoint wins; unreadable ones (a crash can leave a
	// half-written temp file but never a half-renamed checkpoint, so this is
	// defense in depth against external corruption) fall back.
	rec.Graph, rec.Store = graph.New(), core.NewStore()
	for i := len(st.checkpoints) - 1; i >= 0; i-- {
		seq := st.checkpoints[i]
		g, s, chain, err := readCheckpointFile(checkpointPath(dir, seq))
		if err != nil {
			continue
		}
		rec.Graph, rec.Store, rec.CheckpointSeq, rec.Chain = g, s, seq, chain
		break
	}

	// Replay segments past the checkpoint, in order, verifying contiguity.
	// Rotation creates segment N+1 (durably) before the checkpoint covering
	// N is written, so a directory holding a checkpoint always holds the
	// segment right after it: a missing first tail segment is lost history,
	// as hard an error as a gap further along.
	replay := st.segments[:0]
	for _, seq := range st.segments {
		if seq > rec.CheckpointSeq {
			replay = append(replay, seq)
		}
	}
	if rec.CheckpointSeq > 0 && (len(replay) == 0 || replay[0] != rec.CheckpointSeq+1) {
		return rec, fmt.Errorf("wal: segment %d after checkpoint %d is missing", rec.CheckpointSeq+1, rec.CheckpointSeq)
	}
	rec.TailSeq = rec.CheckpointSeq + 1
	for i, seq := range replay {
		if i > 0 && seq != replay[i-1]+1 {
			return rec, fmt.Errorf("wal: segment gap: %d follows %d", seq, replay[i-1])
		}
		last := i == len(replay)-1
		path := segmentPath(dir, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return rec, err
		}
		var applyErr error
		valid := scanFrames(data, func(payload []byte) bool {
			ops, prev, hasPrev, err := decodeChained(payload)
			if err != nil {
				applyErr = err
				return false
			}
			if hasPrev && prev != rec.Chain {
				applyErr = fmt.Errorf("chain link mismatch on group %d: record carries prev %x, chain is %x",
					rec.Groups, prev[:8], rec.Chain[:8])
				return false
			}
			for _, op := range ops {
				if rec.Store, err = op.Apply(rec.Graph, rec.Store); err != nil {
					applyErr = err
					return false
				}
			}
			rec.Chain = chainNext(rec.Chain, payload)
			rec.Groups++
			return true
		})
		if applyErr != nil {
			return rec, fmt.Errorf("wal: segment %d: %w", seq, applyErr)
		}
		if valid < int64(len(data)) {
			if !last {
				return rec, fmt.Errorf("wal: segment %d: corrupt frame at offset %d before newer segment", seq, valid)
			}
			rec.TornTail = true
			if err := os.Truncate(path, valid); err != nil {
				return rec, fmt.Errorf("wal: truncating torn tail of segment %d: %w", seq, err)
			}
		}
		rec.TailSeq, rec.TailSize = seq, valid
	}
	return rec, nil
}

// Append durably logs one record group — the operations of one committed
// mutation batch. Under SyncAlways it returns only once the group is fsynced
// (concurrent appends share fsyncs); under the other policies it returns
// after the OS write. An error means the group's durability is unknown and
// the log must not be trusted for further appends.
func (l *Log) Append(ops []Op) error {
	if l.syncFailed.Load() {
		// A previous fsync failed — possibly one the background interval
		// syncer ran — so durability of anything already acknowledged is
		// unknown; refuse to acknowledge more.
		l.syncMu.Lock()
		err := l.syncErr
		l.syncMu.Unlock()
		return fmt.Errorf("wal: log failed a previous sync: %w", err)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log is closed")
	}
	buf, next, err := encodeFrame(l.scratch[:0], l.chain, ops)
	l.scratch = buf[:0]
	if err != nil {
		l.mu.Unlock()
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		l.mu.Unlock()
		return err
	}
	l.chain = next
	l.size += int64(len(buf))
	l.appended++
	idx, seq, size := l.appended, l.seq, l.size
	l.mu.Unlock()
	switch l.policy {
	case SyncAlways:
		return l.syncTo(idx)
	case SyncNever:
		// Nothing is fsynced, so the shipping frontier mirrors the
		// durability contract: whatever the OS has is what a follower (or a
		// crash) can observe.
		l.syncMu.Lock()
		l.advanceShipLocked(seq, size)
		l.syncMu.Unlock()
	}
	return nil
}

// advanceShipLocked moves the frame-aligned shipping frontier forward and
// wakes long-poll waiters. Callers hold syncMu.
func (l *Log) advanceShipLocked(seq uint64, off int64) {
	if seq < l.syncedSeq || (seq == l.syncedSeq && off <= l.syncedOff) {
		return
	}
	l.syncedSeq, l.syncedOff = seq, off
	close(l.watch)
	l.watch = make(chan struct{})
}

// DurablePos reports the shipping frontier: the segment and byte offset up
// to which every record is durable (fsynced under SyncAlways/SyncInterval,
// OS-buffered under SyncNever) and may be served to replicas. The frontier
// is always frame-aligned.
func (l *Log) DurablePos() (seq uint64, off int64) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncedSeq, l.syncedOff
}

// DurableWatch returns a channel closed the next time the shipping frontier
// advances; callers re-read DurablePos and re-arm.
func (l *Log) DurableWatch() <-chan struct{} {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.watch
}

// Chain returns the running tamper-evidence chain value (after the last
// appended group).
func (l *Log) Chain() Chain {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain
}

// CheckpointSeq returns the segment sequence the newest durable checkpoint
// covers (0 before the first checkpoint).
func (l *Log) CheckpointSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptSeq
}

// syncTo blocks until every group appended up to idx is durable, fsyncing at
// most once per batch of waiters.
func (l *Log) syncTo(idx uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= idx {
		return nil
	}
	l.mu.Lock()
	target, seq, size := l.appended, l.seq, l.size
	f := l.f
	l.mu.Unlock()
	l.fsyncs.Add(1)
	if err := f.Sync(); err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
		l.syncFailed.Store(true)
		return err
	}
	l.synced = target
	l.advanceShipLocked(seq, size)
	return nil
}

func (l *Log) syncLoop(iv time.Duration) {
	defer close(l.done)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			idx := l.appended
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return
			}
			_ = l.syncTo(idx)
		}
	}
}

// Size returns the byte size of the current segment (the rotation trigger).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Seq returns the current segment sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Appends returns the number of record groups appended since Open.
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Fsyncs returns the number of data-file fsyncs issued since Open.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Clean reports that every record in the log is already covered by a durable
// checkpoint (or that the log never held one): the live segment is empty and
// immediately follows the newest checkpoint, so a new checkpoint would
// capture exactly the state the recovery chain already reconstructs.
// Callers use it to elide identical checkpoint rewrites on idle shutdown.
func (l *Log) Clean() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size == 0 && l.seq == l.ckptSeq+1
}

// Rotate fsyncs and closes the current segment and starts the next one,
// returning the sequence number the finished segment covers — the argument a
// subsequent WriteCheckpoint must pass once it has captured state at least
// as new as every record in that segment. Callers must serialize Rotate
// against Append (the facade holds its mutator lock).
func (l *Log) Rotate() (covered uint64, err error) {
	// Take syncMu first (the same order syncTo uses) so no fsync of the old
	// handle races the switch.
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	l.fsyncs.Add(1)
	if err := l.f.Sync(); err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
		l.syncFailed.Store(true)
		return 0, err
	}
	next, err := os.OpenFile(segmentPath(l.dir, l.seq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if err := syncDir(l.dir); err != nil {
		next.Close()
		return 0, err
	}
	covered = l.seq
	l.f.Close()
	l.f, l.seq, l.size = next, l.seq+1, 0
	l.synced = l.appended
	// The sealed segment is fully durable: publish the frontier at the head
	// of the new segment, and snapshot the chain as the anchor the matching
	// WriteCheckpoint records.
	l.advanceShipLocked(l.seq, 0)
	l.ckptChain = l.chain
	return covered, nil
}

// WriteCheckpoint durably persists a state snapshot covering every segment
// up to and including covered (as returned by Rotate), then deletes the
// segments and checkpoints it supersedes. It records the chain value
// captured at that Rotate as the anchor re-rooting the tamper-evidence
// chain past the deleted segments. The checkpoint is written to a
// temp file, fsynced and renamed into place, so a crash at any point leaves
// either the old recovery chain or the new one — never neither.
func (l *Log) WriteCheckpoint(covered uint64, g *graph.Graph, s *core.Store) error {
	l.mu.Lock()
	anchor := l.ckptChain
	l.mu.Unlock()
	tmp := filepath.Join(l.dir, "checkpoint.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeCheckpoint(f, g, s, anchor); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, checkpointPath(l.dir, covered)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.mu.Lock()
	if covered > l.ckptSeq {
		l.ckptSeq = covered
	}
	l.mu.Unlock()
	// The new checkpoint is durable; everything it supersedes can go. Best
	// effort: a leftover file only wastes space, recovery ignores it.
	st, err := scanDir(l.dir)
	if err != nil {
		return nil
	}
	for _, seq := range st.segments {
		if seq <= covered {
			os.Remove(segmentPath(l.dir, seq))
		}
	}
	for _, seq := range st.checkpoints {
		if seq < covered {
			os.Remove(checkpointPath(l.dir, seq))
		}
	}
	return nil
}

// Close fsyncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	f := l.f
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	l.fsyncs.Add(1)
	err := f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if l.lock != nil {
		// Closing the fd drops the flock.
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// acquireDirLock takes an exclusive, non-blocking advisory lock on
// dir/wal.lock. The kernel releases it when the holding process exits —
// even by SIGKILL — so crash recovery is never blocked by a stale lock.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// syncDir fsyncs a directory so entry creations/renames are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// RecordOffsets returns the end offset of every valid frame in a segment
// file, in order. The crash-consistency tests use it to truncate a log at
// exact record boundaries.
func RecordOffsets(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var offs []int64
	off := int64(0)
	scanFrames(data, func(payload []byte) bool {
		off += frameHeaderSize + int64(len(payload))
		offs = append(offs, off)
		return true
	})
	return offs, nil
}
