package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// FuzzWALReplay feeds arbitrary bytes to the WAL decoder as a segment file.
// Whatever the input: the frame scanner and full recovery must never panic,
// the scanner must never yield a payload whose stored CRC does not match its
// contents, and the valid prefix it reports must be a byte length the data
// actually contains.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed log, truncations of it, bit flips, and framing
	// edge cases.
	var valid []byte
	groups := [][]Op{
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "alice", Attrs: graph.Attrs{"age": graph.Int(30)}})},
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "bob"}),
			GraphOp(graph.Delta{Op: graph.OpAddEdge, From: 0, To: 1, Label: "friend"})},
		{ShareOp("photo", 0, "rule-1", []string{"friend+[1,2]"})},
		{RevokeOp("photo", "rule-1")},
	}
	var chain Chain
	for _, g := range groups {
		var err error
		valid, chain, err = encodeFrame(valid, chain, g)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:frameHeaderSize-2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// A frame claiming a giant length.
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge, uint32(MaxRecordSize+1))
	f.Add(huge)
	// A CRC-valid frame holding non-JSON payload.
	junk := []byte("definitely not json")
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(junk)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(junk, crcTable))
	f.Add(append(hdr, junk...))
	// A CRC-valid frame holding a decodable op that must fail application.
	dangling, _, err := encodeFrame(nil, Chain{}, []Op{GraphOp(graph.Delta{Op: graph.OpAddEdge, From: 9, To: 10, Label: "x"})})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(dangling)
	f.Add([]byte{})

	// The file-level recovery path (Open over a segment holding these same
	// adversarial inputs) is exercised once per seed by
	// TestRecoverySurvivesFuzzSeeds below; the fuzz body itself stays
	// in-memory so the fuzzer is not throttled by per-exec fsyncs.
	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame-level invariants.
		total := 0
		valid := scanFrames(data, func(payload []byte) bool {
			// scanFrames only hands out CRC-verified payloads; recompute
			// against the stored header to prove it.
			hdrOff := total
			stored := binary.LittleEndian.Uint32(data[hdrOff+4 : hdrOff+8])
			if crc32.Checksum(payload, crcTable) != stored {
				t.Fatalf("scanner yielded payload failing its CRC at offset %d", hdrOff)
			}
			total += frameHeaderSize + len(payload)
			return true
		})
		if valid != int64(total) {
			t.Fatalf("valid prefix %d does not match delivered frames (%d bytes)", valid, total)
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid prefix %d beyond input length %d", valid, len(data))
		}

		// Group decode + application must never panic, whatever the bytes.
		g, s := graph.New(), core.NewStore()
		scanFrames(data, func(payload []byte) bool {
			ops, err := decodeGroup(payload)
			if err != nil {
				return false
			}
			for _, op := range ops {
				if s, err = op.Apply(g, s); err != nil {
					return false
				}
			}
			return true
		})
	})
}

// TestRecoverySurvivesFuzzSeeds runs full file-level recovery over the same
// adversarial byte strings FuzzWALReplay seeds with: errors are acceptable
// (a decodable-but-inapplicable group IS corruption), panics are not, and a
// successful open must leave an appendable log.
func TestRecoverySurvivesFuzzSeeds(t *testing.T) {
	var valid []byte
	var chain Chain
	var err error
	for _, g := range [][]Op{
		{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "alice"})},
		{ShareOp("photo", 0, "rule-1", []string{"friend+[1,2]"})},
	} {
		if valid, chain, err = encodeFrame(valid, chain, g); err != nil {
			t.Fatal(err)
		}
	}
	junk := []byte("definitely not json")
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(junk)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(junk, crcTable))
	crcValidJunk := append(hdr, junk...)
	dangling, _, err := encodeFrame(nil, Chain{}, []Op{GraphOp(graph.Delta{Op: graph.OpAddEdge, From: 9, To: 10, Label: "x"})})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		valid,
		valid[:len(valid)-3],
		valid[:frameHeaderSize-2],
		crcValidJunk,
		dangling,
		{},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	}
	for i, data := range inputs {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, _, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			continue
		}
		if aerr := l.Append([]Op{GraphOp(graph.Delta{Op: graph.OpAddNode, Name: "post"})}); aerr != nil {
			t.Errorf("input %d: append after recovery: %v", i, aerr)
		}
		l.Close()
	}
}
