package wal

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestShippingFrontier pins the replica-facing surface of the log: the
// durable position is frame-aligned and advances exactly at fsync, the
// watch channel fires on every advance, and the counters track appends.
func TestShippingFrontier(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	defer l.Close()

	if seq, off := l.DurablePos(); seq != 1 || off != 0 {
		t.Fatalf("fresh log durable at (%d,%d), want (1,0)", seq, off)
	}
	if l.Appends() != 0 || l.Size() != 0 || l.Fsyncs() != 0 {
		t.Fatalf("fresh log counters: appends %d size %d fsyncs %d",
			l.Appends(), l.Size(), l.Fsyncs())
	}
	if !l.Clean() {
		t.Fatal("fresh log is not Clean")
	}

	watch := l.DurableWatch()
	groups := buildOps(t)
	for _, g := range groups {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-watch:
	case <-time.After(5 * time.Second):
		t.Fatal("durable watch never fired across six synced appends")
	}
	// Under SyncAlways every acknowledged append is durable: the frontier
	// sits at the segment's exact size, on a frame boundary.
	seq, off := l.DurablePos()
	if seq != 1 || off != l.Size() || off == 0 {
		t.Fatalf("durable (%d,%d) does not match live segment 1 size %d", seq, off, l.Size())
	}
	offsets, err := RecordOffsets(SegmentFile(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if offsets[len(offsets)-1] != off {
		t.Fatalf("durable offset %d is not the final frame boundary %d", off, offsets[len(offsets)-1])
	}
	if l.Appends() != uint64(len(groups)) {
		t.Fatalf("Appends %d, want %d", l.Appends(), len(groups))
	}
	if l.Fsyncs() == 0 {
		t.Fatal("SyncAlways appends recorded no fsyncs")
	}
	if l.Clean() {
		t.Fatal("log with unconsolidated records reports Clean")
	}

	// The chain head is live and matches an offline re-scan.
	if l.Chain() == (Chain{}) {
		t.Fatal("chain head still at genesis after six groups")
	}
	if l.CheckpointSeq() != 0 {
		t.Fatalf("CheckpointSeq %d before any checkpoint", l.CheckpointSeq())
	}
}

// TestDirListingAndPaths covers the path helpers replication mirrors files
// by, and ListDir's view of a directory with segments and a checkpoint.
func TestDirListingAndPaths(t *testing.T) {
	dir := t.TempDir()
	if got := SegmentFile(dir, 7); got != filepath.Join(dir, "wal-00000007.log") {
		t.Fatalf("SegmentFile: %s", got)
	}
	if got := CheckpointFile(dir, 7); got != filepath.Join(dir, "checkpoint-00000007.ckpt") {
		t.Fatalf("CheckpointFile: %s", got)
	}

	l, _ := openLog(t, dir, Options{})
	defer l.Close()
	for _, g := range buildOps(t) {
		if err := l.Append(g); err != nil {
			t.Fatal(err)
		}
	}
	covered, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Groups != 6 || rec.TailSeq != 2 {
		t.Fatalf("exported Recover saw %d groups, tail %d", rec.Groups, rec.TailSeq)
	}
	if err := l.WriteCheckpoint(covered, rec.Graph, rec.Store); err != nil {
		t.Fatal(err)
	}
	if l.CheckpointSeq() != covered {
		t.Fatalf("CheckpointSeq %d after checkpointing %d", l.CheckpointSeq(), covered)
	}

	segs, ckpts, err := ListDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("segments after checkpoint: %v, want [2]", segs)
	}
	if len(ckpts) != 1 || ckpts[0] != 1 {
		t.Fatalf("checkpoints: %v, want [1]", ckpts)
	}
	if !l.Clean() {
		t.Fatal("fully checkpointed log is not Clean")
	}
}

// TestLockDirExcludes: the exported lock is the same exclusion Open takes —
// a live directory cannot be locked again, and releasing re-admits.
func TestLockDirExcludes(t *testing.T) {
	dir := t.TempDir()
	lock, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockDir(dir); err == nil {
		t.Fatal("second LockDir on a held directory succeeded")
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open on a locked directory succeeded")
	}
	if err := lock.Close(); err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after lock release: %v", err)
	}
	l.Close()
}

// TestChainErrorMessage pins the operator-facing location report: segment,
// byte offset and group ordinal all appear in the error string.
func TestChainErrorMessage(t *testing.T) {
	err := &ChainError{Seq: 3, Offset: 4096, Index: 17, Reason: "link mismatch"}
	msg := err.Error()
	for _, want := range []string{"3", "4096", "17"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("ChainError %q omits %q", msg, want)
		}
	}
}

// TestOpKindString covers the record-kind names the audit tooling prints.
func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		OpGraph: "graph", OpShare: "share", OpRevoke: "revoke", OpPolicyReset: "policy-reset",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("OpKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown OpKind prints empty")
	}
}
