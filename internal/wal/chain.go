package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
)

// The tamper-evident audit chain links every record group to its
// predecessor: group i's payload embeds hex(chain_{i-1}) and
//
//	chain_i = SHA-256(chain_{i-1} || payload_i)
//
// where payload_i is the exact framed payload bytes (so verification never
// depends on re-serializing JSON canonically). chain_0 is 32 zero bytes.
// Checkpoints anchor the chain across compaction: the checkpoint header
// records the chain value at its rotation boundary, so a verifier resumes
// from the anchor even after the covered segments are deleted.
//
// The guarantee is append-only integrity of everything BEFORE the newest
// group: flipping a byte, splicing a record out or reordering two groups
// anywhere in the retained log breaks either a CRC, a prev link or the
// checkpoint anchor, and VerifyChain reports the first divergent record. A
// forger who controls the whole directory can still rewrite the final group
// (and only it) consistently — tamper evidence for the head of the log
// requires publishing the latest chain value out of band, which is what the
// anchor checkpoints provide for everything they cover.

// Chain is one running chain value.
type Chain = [sha256.Size]byte

// chainNext absorbs one CRC-verified payload into the running chain.
func chainNext(prev Chain, payload []byte) Chain {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(payload)
	var out Chain
	h.Sum(out[:0])
	return out
}

// ChainError pinpoints the first divergent record found by a chain walk.
type ChainError struct {
	// Seq is the segment the record lives in; Offset is the byte offset of
	// its frame within that segment file.
	Seq    uint64
	Offset int64
	// Index is the record group's ordinal since the chain anchor (the
	// loaded checkpoint, or the start of the log), 0-based.
	Index  int
	Reason string
}

func (e *ChainError) Error() string {
	return fmt.Sprintf("wal: chain broken at segment %d offset %d (group %d since anchor): %s",
		e.Seq, e.Offset, e.Index, e.Reason)
}

// ScanChained walks the complete, CRC-valid frames at the head of data,
// verifying each record group's chain link against the running chain before
// yielding it. It returns the decoded groups, the byte length of the
// verified prefix and the advanced chain value.
//
// A short trailing frame (torn mid-write or mid-ship) is not an error — it
// simply ends the verified prefix, and the caller re-reads or re-fetches the
// remainder. A CRC-valid record whose link does not match IS an error: no
// crash produces one, so it is divergence or tampering, and nothing at or
// past it may be applied.
func ScanChained(data []byte, chain Chain) (groups [][]Op, valid int64, next Chain, err error) {
	next = chain
	var (
		off     int64
		scanErr error
		index   int
	)
	valid = scanFrames(data, func(payload []byte) bool {
		ops, prev, hasPrev, derr := decodeChained(payload)
		if derr != nil {
			scanErr = &ChainError{Offset: off, Index: index, Reason: derr.Error()}
			return false
		}
		if hasPrev && prev != next {
			scanErr = &ChainError{Offset: off, Index: index, Reason: fmt.Sprintf(
				"link mismatch: record carries prev %x, chain is %x", prev[:8], next[:8])}
			return false
		}
		next = chainNext(next, payload)
		groups = append(groups, ops)
		off += frameHeaderSize + int64(len(payload))
		index++
		return true
	})
	if scanErr != nil {
		// The offending frame was CRC-valid, so scanFrames counted it into
		// the prefix; back it out so valid covers verified groups only.
		return groups, off, next, scanErr
	}
	return groups, valid, next, nil
}

// ChainReport summarizes a successful VerifyChain walk.
type ChainReport struct {
	// CheckpointSeq is the anchor checkpoint's covered segment (0 = the walk
	// started at the genesis chain), Anchor its recorded chain value.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	Anchor        string `json:"anchor"`
	// Segments and Groups count what the walk verified past the anchor.
	Segments int `json:"segments"`
	Groups   int `json:"groups"`
	// Chain is the final chain value — the log's current tamper-evidence
	// head, suitable for publishing out of band.
	Chain string `json:"chain"`
}

// VerifyChain offline-verifies the tamper-evident chain of a closed (or
// quiesced) log directory: it loads the newest readable checkpoint's anchor,
// then walks every retained segment in order, checking each record group's
// CRC and chain link. The first divergent record is reported as a
// *ChainError carrying its segment, byte offset and group ordinal; framing
// damage (a torn or corrupt frame with no valid continuation) is reported
// the same way. A live leader's in-flight tail can look torn — run the
// verifier on a closed directory or a replica's copy.
func VerifyChain(dir string) (ChainReport, error) {
	var rep ChainReport
	st, err := scanDir(dir)
	if err != nil {
		return rep, err
	}
	var chain Chain
	for i := len(st.checkpoints) - 1; i >= 0; i-- {
		seq := st.checkpoints[i]
		_, _, anchor, err := readCheckpointFile(checkpointPath(dir, seq))
		if err != nil {
			continue
		}
		chain, rep.CheckpointSeq = anchor, seq
		break
	}
	rep.Anchor = hex.EncodeToString(chain[:])

	replay := st.segments[:0:0]
	for _, seq := range st.segments {
		if seq > rep.CheckpointSeq {
			replay = append(replay, seq)
		}
	}
	if rep.CheckpointSeq > 0 && (len(replay) == 0 || replay[0] != rep.CheckpointSeq+1) {
		return rep, fmt.Errorf("wal: segment %d after checkpoint %d is missing", rep.CheckpointSeq+1, rep.CheckpointSeq)
	}
	for i, seq := range replay {
		if i > 0 && seq != replay[i-1]+1 {
			return rep, fmt.Errorf("wal: segment gap: %d follows %d", seq, replay[i-1])
		}
		data, err := os.ReadFile(segmentPath(dir, seq))
		if err != nil {
			return rep, err
		}
		groups, valid, next, err := ScanChained(data, chain)
		if err != nil {
			ce := err.(*ChainError)
			ce.Seq = seq
			ce.Index += rep.Groups
			return rep, ce
		}
		if valid < int64(len(data)) {
			return rep, &ChainError{Seq: seq, Offset: valid, Index: rep.Groups + len(groups),
				Reason: "torn or corrupt frame"}
		}
		chain = next
		rep.Groups += len(groups)
		rep.Segments++
	}
	rep.Chain = hex.EncodeToString(chain[:])
	return rep, nil
}
