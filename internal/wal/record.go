// Package wal implements the durability subsystem: a write-ahead log of
// framed, CRC-protected record groups plus periodic checkpoints, together
// supporting crash recovery with torn-tail tolerance.
//
// One record group is the unit of atomicity: it holds the ordered operations
// of one committed mutation batch (structural graph deltas and policy
// operations), serialized as a JSON envelope and framed as
//
//	[length uint32 LE][crc32c(payload) uint32 LE][payload]
//	payload = {"prev":"<hex SHA-256 chain of the previous group>","ops":[...]}
//
// A group either replays in full or — when the tail of the newest segment is
// torn by a crash mid-write — is dropped in full, so recovery always lands
// on a batch boundary. The prev link makes the log a tamper-evident hash
// chain (see chain.go); pre-chain logs whose payloads are bare JSON arrays
// still replay, absorbed into the chain without a link check. Checkpoints
// reuse the graph and policy-store JSON writers verbatim, so the compact
// state format stays diffable and independently readable.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// OpKind tags one logged operation.
type OpKind uint8

// Logged operation kinds.
const (
	// OpGraph is a structural mutation, carried as a graph.Delta.
	OpGraph OpKind = iota + 1
	// OpShare registers a resource (idempotently) and attaches one access
	// rule with an explicit rule ID, mirroring Network.Share.
	OpShare
	// OpRevoke detaches one access rule, mirroring Network.Revoke.
	OpRevoke
	// OpPolicyReset replaces the whole policy store with one serialized by
	// core.Store.Write, mirroring Network.LoadPolicies.
	OpPolicyReset
)

func (k OpKind) String() string {
	switch k {
	case OpGraph:
		return "graph"
	case OpShare:
		return "share"
	case OpRevoke:
		return "revoke"
	case OpPolicyReset:
		return "policy-reset"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one logged operation. Exactly the fields implied by Kind are set;
// zero values of the unused fields round-trip losslessly through omitempty.
type Op struct {
	Kind OpKind `json:"kind"`
	// Delta carries an OpGraph structural mutation.
	Delta *graph.Delta `json:"delta,omitempty"`
	// Resource, Owner, RuleID and Conditions describe OpShare (all four) and
	// OpRevoke (Resource and RuleID). Conditions are canonical path strings.
	Resource   string       `json:"resource,omitempty"`
	Owner      graph.NodeID `json:"owner,omitempty"`
	RuleID     string       `json:"rule,omitempty"`
	Conditions []string     `json:"conds,omitempty"`
	// Policy is an OpPolicyReset payload: the core.Store.Write serialization
	// of the replacement store.
	Policy []byte `json:"policy,omitempty"`
}

// GraphOp wraps one structural delta as a logged operation.
func GraphOp(d graph.Delta) Op { return Op{Kind: OpGraph, Delta: &d} }

// ShareOp builds the logged form of one Share call.
func ShareOp(resource string, owner graph.NodeID, ruleID string, conds []string) Op {
	return Op{Kind: OpShare, Resource: resource, Owner: owner, RuleID: ruleID, Conditions: conds}
}

// RevokeOp builds the logged form of one Revoke call.
func RevokeOp(resource, ruleID string) Op {
	return Op{Kind: OpRevoke, Resource: resource, RuleID: ruleID}
}

// PolicyResetOp builds the logged form of one LoadPolicies call.
func PolicyResetOp(policy []byte) Op { return Op{Kind: OpPolicyReset, Policy: policy} }

// Apply replays one decoded operation onto the recovering state. It returns
// the (possibly replaced) policy store: OpPolicyReset swaps in a new store,
// every other kind mutates in place and returns s. Apply must never panic on
// a decoded record, however adversarial — the graph and store validate every
// reference — so a log that passes CRC but fails application yields a clean
// recovery error, not a crash.
func (op Op) Apply(g *graph.Graph, s *core.Store) (*core.Store, error) {
	switch op.Kind {
	case OpGraph:
		if op.Delta == nil {
			return s, fmt.Errorf("wal: graph op without delta")
		}
		return s, g.Apply(*op.Delta)
	case OpShare:
		if !g.ValidNode(op.Owner) {
			return s, fmt.Errorf("wal: share of %q by unknown node %d", op.Resource, op.Owner)
		}
		if err := s.Register(core.ResourceID(op.Resource), op.Owner); err != nil {
			return s, err
		}
		rule := &core.Rule{ID: op.RuleID, Resource: core.ResourceID(op.Resource), Owner: op.Owner}
		for _, cs := range op.Conditions {
			p, err := pathexpr.Parse(cs)
			if err != nil {
				return s, fmt.Errorf("wal: share condition %q: %w", cs, err)
			}
			rule.Conditions = append(rule.Conditions, core.Condition{Path: p})
		}
		return s, s.AddRule(rule)
	case OpRevoke:
		if !s.RemoveRule(core.ResourceID(op.Resource), op.RuleID) {
			return s, fmt.Errorf("wal: revoke of unknown rule %q on %q", op.RuleID, op.Resource)
		}
		return s, nil
	case OpPolicyReset:
		ns, err := core.ReadStore(bytes.NewReader(op.Policy), g)
		if err != nil {
			return s, fmt.Errorf("wal: policy reset: %w", err)
		}
		return ns, nil
	default:
		return s, fmt.Errorf("wal: unknown op kind %d", uint8(op.Kind))
	}
}

// Record framing constants.
const (
	frameHeaderSize = 8
	// MaxRecordSize bounds one framed payload; a length beyond it marks the
	// frame (and everything after) as corrupt.
	MaxRecordSize = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// groupEnvelope is the on-disk payload of one record group: the operations
// plus the chain link to the previous group.
type groupEnvelope struct {
	Prev string `json:"prev"`
	Ops  []Op   `json:"ops"`
}

// encodeFrame appends the framed serialization of one record group to buf,
// linking it to chain and returning the advanced chain value.
func encodeFrame(buf []byte, chain Chain, ops []Op) ([]byte, Chain, error) {
	payload, err := json.Marshal(groupEnvelope{Prev: hex.EncodeToString(chain[:]), Ops: ops})
	if err != nil {
		return buf, chain, err
	}
	if len(payload) > MaxRecordSize {
		return buf, chain, fmt.Errorf("wal: record group of %d bytes exceeds limit %d", len(payload), MaxRecordSize)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), chainNext(chain, payload), nil
}

// scanFrames walks the framed records in data, calling fn with each
// CRC-verified payload. It returns the length of the valid prefix: the
// offset just past the last frame whose length was sane and whose checksum
// matched. Anything beyond — a short header, a short payload, an absurd
// length or a CRC mismatch — is a torn or corrupt tail. fn returning false
// stops the scan (the returned offset still covers the frame just
// delivered). scanFrames never fails: corruption shortens the prefix.
func scanFrames(data []byte, fn func(payload []byte) bool) (valid int64) {
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			return int64(off)
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecordSize || length > len(data)-off-frameHeaderSize {
			return int64(off)
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+length]
		if crc32.Checksum(payload, crcTable) != crc {
			return int64(off)
		}
		off += frameHeaderSize + length
		if fn != nil && !fn(payload) {
			return int64(off)
		}
	}
}

// decodeChained parses one CRC-verified payload into its operations and,
// for chained envelopes, the recorded previous-chain link. Legacy bare-array
// payloads (pre-chain logs) decode with hasPrev == false: they carry no link
// to check but are still absorbed into the running chain.
func decodeChained(payload []byte) (ops []Op, prev Chain, hasPrev bool, err error) {
	for _, c := range payload {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			if err := json.Unmarshal(payload, &ops); err != nil {
				return nil, prev, false, fmt.Errorf("wal: undecodable record group: %w", err)
			}
			return ops, prev, false, nil
		}
		break
	}
	var env groupEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, prev, false, fmt.Errorf("wal: undecodable record group: %w", err)
	}
	raw, err := hex.DecodeString(env.Prev)
	if err != nil || len(raw) != len(prev) {
		return nil, prev, false, fmt.Errorf("wal: record group carries malformed chain link %q", env.Prev)
	}
	copy(prev[:], raw)
	return env.Ops, prev, true, nil
}

// decodeGroup parses one CRC-verified payload into its operations, ignoring
// the chain link.
func decodeGroup(payload []byte) ([]Op, error) {
	ops, _, _, err := decodeChained(payload)
	return ops, err
}
