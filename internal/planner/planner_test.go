package planner

import (
	"testing"
	"time"

	"reachac/internal/core"
	"reachac/internal/graph"
)

func TestKindHeavy(t *testing.T) {
	light := []Kind{Online, OnlineDFS, OnlineAdaptive}
	heavy := []Kind{Closure, Index, IndexPaperJoin}
	for _, k := range light {
		if k.Heavy() {
			t.Errorf("kind %d should not be heavy", k)
		}
	}
	for _, k := range heavy {
		if !k.Heavy() {
			t.Errorf("kind %d should be heavy", k)
		}
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		StratAudience:    "audience-cache",
		StratFlatForward: "flat-forward",
		StratFlatReverse: "flat-reverse",
		StratPrimary:     "primary",
		Strategy(99):     "unknown",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Strategy(%d).String() = %q, want %q", s, got, name)
		}
	}
}

func TestChooseOnlinePicksCheaperEndpoint(t *testing.T) {
	p := New()
	if got := p.Choose(Online, 10, 3); got != StratFlatReverse {
		t.Errorf("rev cheaper: got %v, want flat-reverse", got)
	}
	if got := p.Choose(Online, 3, 10); got != StratFlatForward {
		t.Errorf("fwd cheaper: got %v, want flat-forward", got)
	}
	// Tie breaks forward (matches the old adaptive engine's bwd < fwd test).
	if got := p.Choose(OnlineAdaptive, 5, 5); got != StratFlatForward {
		t.Errorf("tie: got %v, want flat-forward", got)
	}
}

func TestChooseHeavyExploresThenExploits(t *testing.T) {
	p := New()
	// Never-timed primary arm is explored first.
	if got := p.Choose(Index, 10, 20); got != StratPrimary {
		t.Errorf("untimed primary: got %v, want primary", got)
	}
	p.Observe(StratPrimary, 100*time.Microsecond)
	// Then the never-timed flat arm.
	if got := p.Choose(Index, 10, 20); got != StratFlatForward {
		t.Errorf("untimed flat: got %v, want flat-forward", got)
	}
	p.Observe(StratFlatForward, 5*time.Microsecond)
	// Both timed: exploit the argmin (flat is 20x cheaper here).
	if got := p.Choose(Index, 10, 20); got != StratFlatForward {
		t.Errorf("exploit: got %v, want flat-forward", got)
	}
	// Flip the estimates and the winner flips.
	p.ewma[StratPrimary].Store(1000)
	p.ewma[StratFlatForward].Store(50_000)
	if got := p.Choose(Index, 10, 20); got != StratPrimary {
		t.Errorf("exploit after flip: got %v, want primary", got)
	}
}

func TestChooseHeavyExploreCadence(t *testing.T) {
	p := New()
	p.Observe(StratPrimary, time.Microsecond)
	p.Observe(StratFlatForward, time.Millisecond)
	explored := 0
	for i := 0; i < 3*exploreEvery; i++ {
		p.Next()
		if p.Choose(Index, 1, 2) == StratFlatForward {
			explored++
		}
	}
	if explored != 3 {
		t.Errorf("losing arm explored %d times over %d queries, want 3", explored, 3*exploreEvery)
	}
}

func TestObserveEWMA(t *testing.T) {
	p := New()
	p.Observe(StratPrimary, 1000*time.Nanosecond)
	if got := p.EWMA(StratPrimary); got != 1000 {
		t.Fatalf("first observation: got %d, want 1000", got)
	}
	// old - old>>3 + ns>>3 = 1000 - 125 + 250 = 1125
	p.Observe(StratPrimary, 2000*time.Nanosecond)
	if got := p.EWMA(StratPrimary); got != 1125 {
		t.Fatalf("second observation: got %d, want 1125", got)
	}
	// Sub-nanosecond durations clamp to 1 rather than resetting to "never".
	q := New()
	q.Observe(StratAudience, 0)
	if got := q.EWMA(StratAudience); got != 1 {
		t.Fatalf("zero-duration observation: got %d, want 1", got)
	}
}

func TestNextTimingCadence(t *testing.T) {
	p := New()
	timedCount := 0
	for i := 0; i < 2*sampleEvery; i++ {
		if _, timed := p.Next(); timed {
			timedCount++
		}
	}
	if timedCount != 2 {
		t.Errorf("timed %d of %d queries, want 2", timedCount, 2*sampleEvery)
	}
}

func TestRecommendMigrateHeavyToOnlineUnderChurn(t *testing.T) {
	p := New()
	// Below a full window: no recommendation yet.
	if rec, change := p.Recommend(Index, 10, 1); change || rec != Index {
		t.Fatalf("short window: got (%v, %v), want (Index, false)", rec, change)
	}
	// 10%% mutations over a full window: heavy engine should go online.
	rec, change := p.Recommend(Index, 900, 100)
	if !change || rec != Online {
		t.Fatalf("churny window: got (%v, %v), want (Online, true)", rec, change)
	}
	if got, ok := p.Recommended(); !ok || got != Online {
		t.Fatalf("Recommended() = (%v, %v), want (Online, true)", got, ok)
	}
}

func TestRecommendMigrateOnlineToIndexWhenQuiescent(t *testing.T) {
	p := New()
	p.Observe(StratFlatForward, time.Duration(2*migrateToIndexLatency))
	rec, change := p.Recommend(Online, 10*recommendWindow, 0)
	if !change || rec != Index {
		t.Fatalf("quiescent slow-flat window: got (%v, %v), want (Index, true)", rec, change)
	}
	// A fast flat search is not worth an index build even when quiescent.
	q := New()
	q.Observe(StratFlatForward, 100*time.Nanosecond)
	rec, change = q.Recommend(Online, 10*recommendWindow, 0)
	if change || rec != Online {
		t.Fatalf("quiescent fast-flat window: got (%v, %v), want (Online, false)", rec, change)
	}
}

func TestRecommendCooldownAfterMigration(t *testing.T) {
	p := New()
	p.Migrated(Online)
	p.Observe(StratFlatForward, time.Duration(2*migrateToIndexLatency))
	reads := uint64(0)
	// The first cooldownWindows-1 full windows may not trigger a change.
	for w := 1; w < cooldownWindows; w++ {
		reads += 10 * recommendWindow
		if rec, change := p.Recommend(Online, reads, 0); change {
			t.Fatalf("window %d inside cooldown: got (%v, true)", w, rec)
		}
	}
	reads += 10 * recommendWindow
	if rec, change := p.Recommend(Online, reads, 0); !change || rec != Index {
		t.Fatalf("window after cooldown: got (%v, %v), want (Index, true)", rec, change)
	}
}

func TestMigratedResetsPrimaryEWMA(t *testing.T) {
	p := New()
	p.Observe(StratPrimary, time.Millisecond)
	p.Migrated(Index)
	if got := p.EWMA(StratPrimary); got != 0 {
		t.Errorf("primary EWMA after migration: got %d, want 0", got)
	}
	if got := p.Counters().Migrations; got != 1 {
		t.Errorf("migrations: got %d, want 1", got)
	}
}

func TestCounters(t *testing.T) {
	p := New()
	p.Route(StratAudience)
	p.Route(StratAudience)
	p.Route(StratFlatForward)
	p.Route(StratFlatReverse)
	p.Route(StratPrimary)
	c := p.Counters()
	if c.RouteAudience != 2 || c.RouteFlatForward != 1 || c.RouteFlatReverse != 1 || c.RoutePrimary != 1 {
		t.Errorf("route counters = %+v", c)
	}
}

// --- DecisionCache ---

func labelsByResource(m map[core.ResourceID][]string) func(core.ResourceID) []string {
	return func(r core.ResourceID) []string { return m[r] }
}

func allow(rule string) core.Decision {
	return core.Decision{Effect: core.Allow, RuleID: rule}
}

func deny() core.Decision {
	return core.Decision{Effect: core.Deny, Reason: "no access rule satisfied"}
}

func TestDecisionCacheGetPut(t *testing.T) {
	c := NewDecisionCache(labelsByResource(map[core.ResourceID][]string{
		"album": {"friend"},
	}), nil)
	if _, ok := c.Get("album", 1); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("album", 1, allow("r1"))
	d, ok := c.Get("album", 1)
	if !ok || d.Effect != core.Allow || d.RuleID != "r1" {
		t.Fatalf("Get after Put: got (%+v, %v)", d, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Re-Put of the same key does not double-count.
	c.Put("album", 1, allow("r1"))
	if c.Len() != 1 {
		t.Fatalf("Len after duplicate Put = %d, want 1", c.Len())
	}
}

func TestDecisionCacheAdvanceEvictions(t *testing.T) {
	labels := map[core.ResourceID][]string{
		"album": {"friend", "colleague"},
		"doc":   {"parent"},
	}
	addFriend := []graph.Delta{{Op: graph.OpAddEdge, From: 1, To: 2, Label: "friend"}}
	rmFriend := []graph.Delta{{Op: graph.OpRemoveEdge, From: 1, To: 2, Label: "friend"}}

	t.Run("add evicts intersecting denies only", func(t *testing.T) {
		c := NewDecisionCache(labelsByResource(labels), nil)
		c.Put("album", 1, deny())      // friend ∈ tag → evicted
		c.Put("doc", 2, deny())        // parent ∉ {friend} → survives
		c.Put("album", 3, allow("r1")) // adds never evict allows
		c.Advance(addFriend)
		if _, ok := c.Get("album", 1); ok {
			t.Error("intersecting Deny survived an edge add")
		}
		if _, ok := c.Get("doc", 2); !ok {
			t.Error("non-intersecting Deny was evicted")
		}
		if _, ok := c.Get("album", 3); !ok {
			t.Error("Allow was evicted by an edge add")
		}
		if c.Len() != 2 {
			t.Errorf("Len = %d, want 2", c.Len())
		}
	})

	t.Run("remove evicts intersecting allows only", func(t *testing.T) {
		c := NewDecisionCache(labelsByResource(labels), nil)
		c.Put("album", 1, allow("r1"))    // friend ∈ tag → evicted
		c.Put("doc", 2, allow("r2"))      // parent ∉ {friend} → survives
		c.Put("album", 3, deny())         // removes never evict denies
		c.Put("album", 4, allow("owner")) // owner grants are edge-proof
		c.Advance(rmFriend)
		if _, ok := c.Get("album", 1); ok {
			t.Error("intersecting Allow survived an edge remove")
		}
		if _, ok := c.Get("doc", 2); !ok {
			t.Error("non-intersecting Allow was evicted")
		}
		if _, ok := c.Get("album", 3); !ok {
			t.Error("Deny was evicted by an edge remove")
		}
		if _, ok := c.Get("album", 4); !ok {
			t.Error("owner Allow was evicted by an edge remove")
		}
	})

	t.Run("node add and compact evict nothing", func(t *testing.T) {
		c := NewDecisionCache(labelsByResource(labels), nil)
		c.Put("album", 1, deny())
		c.Put("album", 2, allow("r1"))
		c.Advance([]graph.Delta{{Op: graph.OpAddNode, Name: "x"}, {Op: graph.OpCompact}})
		if c.Len() != 2 {
			t.Errorf("Len = %d, want 2", c.Len())
		}
	})

	t.Run("unknown resource deny is never graph-evicted", func(t *testing.T) {
		c := NewDecisionCache(labelsByResource(labels), nil)
		c.Put("ghost", 1, deny()) // empty tag
		c.Advance(addFriend)
		c.Advance(rmFriend)
		if _, ok := c.Get("ghost", 1); !ok {
			t.Error("empty-tag Deny was evicted")
		}
	})
}

func TestDecisionCacheCounters(t *testing.T) {
	p := New()
	c := NewDecisionCache(labelsByResource(map[core.ResourceID][]string{
		"album": {"friend"},
	}), p.CacheCounters())
	c.Get("album", 1) // miss
	c.Put("album", 1, deny())
	c.Get("album", 1)                                                // hit
	c.Advance([]graph.Delta{{Op: graph.OpAddEdge, Label: "friend"}}) // evict
	got := p.Counters()
	if got.CacheHits != 1 || got.CacheMisses != 1 || got.CacheEvictions != 1 {
		t.Errorf("cache counters = %+v, want 1/1/1", got)
	}
	// A successor cache sharing the counter block keeps accumulating.
	c2 := NewDecisionCache(labelsByResource(nil), p.CacheCounters())
	c2.Get("album", 1)
	if got := p.Counters(); got.CacheMisses != 2 {
		t.Errorf("misses after successor cache = %d, want 2", got.CacheMisses)
	}
}

func TestAppendLabelDedups(t *testing.T) {
	set := appendLabel(nil, "a")
	set = appendLabel(set, "b")
	set = appendLabel(set, "a")
	if len(set) != 2 {
		t.Errorf("set = %v, want [a b]", set)
	}
}
