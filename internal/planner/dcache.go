package planner

import (
	"sync"
	"sync/atomic"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// DecisionCache memoizes access decisions per (resource, requester) with
// per-delta invalidation: each entry is tagged with the label set its
// resource's rules can traverse, and a graph delta evicts only the entries
// whose tags intersect the delta. The eviction rule exploits monotonicity:
//
//   - an edge ADDITION can only create reachability, so cached Allow
//     entries stay correct unconditionally; a cached Deny is evicted iff
//     the added edge's label is one the resource's rules constrain on
//     (otherwise no rule path can cross the new edge);
//   - an edge REMOVAL can only destroy reachability, so cached Deny
//     entries stay correct unconditionally; a cached Allow is evicted iff
//     the removed edge's label intersects its tag — except owner grants
//     (RuleID "owner"), which no edge can revoke;
//   - node additions and tombstone compactions change no existing
//     reachability and evict nothing.
//
// A surviving entry preserves the decision's Effect, which is what access
// control answers; its RuleID/Reason may name a different rule than a fresh
// evaluation would (an addition can make an earlier rule match first). Any
// POLICY change invalidates the tags themselves, so the facade starts a
// fresh cache at every policy generation — Advance only ever sees pure
// graph deltas.
//
// The label tag is the union over ALL of the resource's rules, computed
// once per resource through the labelsFor callback and shared by its
// entries; an unregistered resource has an empty tag, so its Deny is never
// evicted by graph deltas (registration is a policy change). Tags are label
// NAMES, not table ordinals, so label-table growth cannot alias them.
//
// Get/Put are safe for concurrent use and the hit path performs no heap
// allocations (the same sync.Map pattern as the facade's previous
// wholesale-dropped cache). Advance requires quiescence — the publisher's
// retired-spare proof, exactly like search.AudienceCache.Advance.
type DecisionCache struct {
	m   sync.Map // dcacheKey -> dcacheEntry
	len atomic.Int64
	ctr *CacheCounters
	// labelsFor resolves a resource to the label-name union of its rules'
	// path steps against the snapshot's frozen policy view; results are
	// memoized in tags.
	labelsFor func(core.ResourceID) []string
	tags      sync.Map // core.ResourceID -> []string
}

// CacheCounters tallies decision-cache traffic. The block is owned by the
// Planner and shared across the network's successive caches, so the
// counters are monotonic over the process lifetime, not per snapshot.
type CacheCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// dcacheKey identifies one cached access decision.
type dcacheKey struct {
	res core.ResourceID
	req graph.NodeID
}

// dcacheEntry is one cached decision plus its resource's label tag (shared
// across the resource's entries).
type dcacheEntry struct {
	d      core.Decision
	labels []string
}

// maxCachedDecisions caps one cache's entries. Entries beyond the cap are
// decided but not memoized; the cap is generous because an entry is small
// and policy churn restarts the cache.
const maxCachedDecisions = 1 << 20

// NewDecisionCache returns an empty cache. labelsFor must resolve a
// resource to the union of label names its rules' paths constrain on, read
// from an immutable policy view; ctr may be shared across caches (see
// Planner.CacheCounters) or nil for a private block.
func NewDecisionCache(labelsFor func(core.ResourceID) []string, ctr *CacheCounters) *DecisionCache {
	if ctr == nil {
		ctr = new(CacheCounters)
	}
	return &DecisionCache{ctr: ctr, labelsFor: labelsFor}
}

// Get returns the cached decision for (res, req). The hit path is
// allocation-free.
func (c *DecisionCache) Get(res core.ResourceID, req graph.NodeID) (core.Decision, bool) {
	if v, ok := c.m.Load(dcacheKey{res, req}); ok {
		c.ctr.hits.Add(1)
		return v.(dcacheEntry).d, true
	}
	c.ctr.misses.Add(1)
	return core.Decision{}, false
}

// Put memoizes one decision, tagging it with its resource's label set.
func (c *DecisionCache) Put(res core.ResourceID, req graph.NodeID, d core.Decision) {
	if c.len.Load() >= maxCachedDecisions {
		return
	}
	ent := dcacheEntry{d: d, labels: c.tag(res)}
	if _, loaded := c.m.LoadOrStore(dcacheKey{res, req}, ent); !loaded {
		c.len.Add(1)
	}
}

// tag returns the memoized label tag of res.
func (c *DecisionCache) tag(res core.ResourceID) []string {
	if v, ok := c.tags.Load(res); ok {
		return v.([]string)
	}
	labels := c.labelsFor(res)
	if v, loaded := c.tags.LoadOrStore(res, labels); loaded {
		return v.([]string)
	}
	return labels
}

// Len returns the number of cached decisions.
func (c *DecisionCache) Len() int { return int(c.len.Load()) }

// Advance applies one published delta batch: it evicts exactly the entries
// the batch could have flipped (see the type comment for the monotonicity
// argument) and keeps the rest warm. The caller must guarantee no
// concurrent Get/Put, which the snapshot-advance protocol does.
func (c *DecisionCache) Advance(deltas []graph.Delta) {
	var added, removed []string
	for _, d := range deltas {
		switch d.Op {
		case graph.OpAddEdge:
			added = appendLabel(added, d.Label)
		case graph.OpRemoveEdge:
			removed = appendLabel(removed, d.Label)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	c.m.Range(func(k, v any) bool {
		ent := v.(dcacheEntry)
		evict := false
		if ent.d.Effect == core.Deny {
			evict = intersects(ent.labels, added)
		} else if ent.d.RuleID != "owner" {
			evict = intersects(ent.labels, removed)
		}
		if evict {
			c.m.Delete(k)
			c.len.Add(-1)
			c.ctr.evictions.Add(1)
		}
		return true
	})
}

// appendLabel adds l to set if absent (delta batches repeat few labels, so
// a linear scan beats a map).
func appendLabel(set []string, l string) []string {
	for _, s := range set {
		if s == l {
			return set
		}
	}
	return append(set, l)
}

// intersects reports whether the two label-name sets share an element.
func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
