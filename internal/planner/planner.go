// Package planner implements the cost-based engine planner: it keeps
// lightweight per-strategy statistics — observed latencies (EWMA), route
// counts, and the read/mutation balance of the recent workload — and picks,
// per reachability query, the cheapest way to answer it on the current
// snapshot:
//
//   - the snapshot's audience cache, when it already holds the owner's
//     materialized audience for the path (an O(1) bitset test);
//   - the flat product-BFS seeded from whichever endpoint admits fewer
//     first-step traversals (the generalization of the old adaptive
//     engine's endpoint selection);
//   - the snapshot's primary evaluator (closure or join index), raced
//     ε-greedily against the flat search so the planner keeps learning
//     which side wins as the graph grows.
//
// On top of per-query routing the planner watches the mutation rate and
// recommends whole-network engine migration when the workload shifts:
// churn-heavy phases favor the online engines (free snapshot advances),
// long read-only phases favor the precomputed ones. Migration is applied by
// the facade only when the WithPlanner option enables it; otherwise the
// recommendation is surfaced through Stats as pure observability.
//
// The package also provides DecisionCache (dcache.go), the label-tagged
// decision cache with per-delta invalidation that replaces the facade's
// old drop-wholesale snapshot cache.
package planner

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind mirrors the facade's EngineKind ordinals (reachac asserts the
// correspondence in its tests); the planner needs only the build-cost class
// of the primary evaluator, not its implementation.
type Kind int

// Engine kinds, ordinal-compatible with reachac.EngineKind.
const (
	Online Kind = iota
	OnlineDFS
	OnlineAdaptive
	Closure
	Index
	IndexPaperJoin
	numKinds
)

// Heavy reports whether the kind precomputes per-snapshot state (closure
// bitsets, join index): fast queries bought with expensive builds, the
// opposite trade of the online family.
func (k Kind) Heavy() bool { return k >= Closure }

// Strategy is one way to execute a reachability query on a snapshot.
type Strategy int

// Strategies, cheapest-when-applicable first.
const (
	// StratAudience answers from the snapshot's incrementally-maintained
	// audience cache: an O(1) membership bit test, available whenever the
	// owner's audience for the path is already materialized.
	StratAudience Strategy = iota
	// StratFlatForward runs the flat product-BFS from the owner.
	StratFlatForward
	// StratFlatReverse runs the flat product-BFS over the reversed pattern
	// from the requester — cheaper when the requester's cone is smaller.
	StratFlatReverse
	// StratPrimary delegates to the snapshot's primary evaluator (the
	// selected engine kind).
	StratPrimary
	numStrategies
)

// String names the strategy for logs and tests.
func (s Strategy) String() string {
	switch s {
	case StratAudience:
		return "audience-cache"
	case StratFlatForward:
		return "flat-forward"
	case StratFlatReverse:
		return "flat-reverse"
	case StratPrimary:
		return "primary"
	default:
		return "unknown"
	}
}

// Tuning constants. They are heuristics, not contracts: the differential
// tests guarantee every routing choice returns identical decisions, so the
// constants only move cost around.
const (
	// sampleEvery: one in this many routed queries is wall-clock timed to
	// feed the per-strategy EWMAs (timing every query would put two
	// time.Now calls on the hot path).
	sampleEvery = 16
	// exploreEvery: on heavy engines, one in this many queries runs the
	// currently-losing arm so a stale EWMA cannot pin the planner to a
	// choice the graph has outgrown.
	exploreEvery = 64
	// ewmaShift: EWMA decay α = 1/2^ewmaShift.
	ewmaShift = 3
	// recommendWindow: operations (reads+mutations) between migration
	// reassessments; windows smaller than this return "no recommendation".
	recommendWindow = 512
	// cooldownWindows: full windows that must pass after a migration before
	// the next one, damping oscillation when the workload sits near a
	// threshold.
	cooldownWindows = 4
	// migrateToOnlineChurn: mutation fraction above which a heavy engine
	// should migrate to the online family (every mutation batch risks a
	// full precomputation rebuild).
	migrateToOnlineChurn = 0.02
	// migrateToIndexChurn: mutation fraction below which a quiescent
	// network may afford index builds.
	migrateToIndexChurn = 0.001
	// migrateToIndexLatency: flat-search EWMA (nanoseconds) above which a
	// quiescent network is worth migrating to the join index — below it the
	// online search is already near the index's query floor and the build
	// would buy nothing.
	migrateToIndexLatency = 20_000
)

// Planner accumulates routing statistics for one Network. It is shared by
// every snapshot the network publishes, so the learned latencies and route
// counters survive republication (unlike the snapshots themselves). All
// counter methods are safe for concurrent use; Recommend and Migrated are
// serialized by the facade's mutation lock.
type Planner struct {
	seq    atomic.Uint64
	routes [numStrategies]atomic.Uint64
	// ewma holds per-strategy observed latencies in nanoseconds (zero =
	// never observed). Racing updates may drop an observation; the EWMA
	// only steers heuristics, so lossy updates are fine.
	ewma       [numStrategies]atomic.Uint64
	migrations atomic.Uint64
	cache      CacheCounters

	// Migration bookkeeping, guarded by mu (Recommend runs under the
	// facade's publication lock, but Stats readers race it).
	mu          sync.Mutex
	lastReads   uint64
	lastMuts    uint64
	sinceMigr   int
	recommended Kind
	hasRec      bool
}

// New returns an empty planner. It starts outside the migration cooldown:
// the cooldown exists to damp oscillation between migrations, not to delay
// the first one.
func New() *Planner { return &Planner{sinceMigr: cooldownWindows} }

// CacheCounters returns the decision-cache counter block snapshots share;
// pass it to NewDecisionCache so hits survive snapshot turnover.
func (p *Planner) CacheCounters() *CacheCounters { return &p.cache }

// Next advances the routed-query sequence and reports whether this query
// should be wall-clock timed.
func (p *Planner) Next() (seq uint64, timed bool) {
	seq = p.seq.Add(1)
	return seq, seq%sampleEvery == 0
}

// Choose picks the execution strategy for one reachability query given the
// primary engine kind and the first-step seed fan-outs of the forward and
// reversed patterns. The audience-cache strategy is not chosen here — the
// caller probes the cache first and only consults Choose on a miss.
func (p *Planner) Choose(kind Kind, fwd, rev int) Strategy {
	flat := StratFlatForward
	if rev < fwd {
		flat = StratFlatReverse
	}
	if !kind.Heavy() {
		// The online family IS the flat search; only the endpoint matters.
		return flat
	}
	prim, fl := p.ewma[StratPrimary].Load(), p.ewma[flat].Load()
	// Explore any arm that has never been timed, then the losing arm on a
	// fixed cadence, otherwise exploit the argmin.
	switch {
	case prim == 0:
		return StratPrimary
	case fl == 0:
		return flat
	case p.seq.Load()%exploreEvery == 0 && p.seq.Load() > 0:
		if prim <= fl {
			return flat
		}
		return StratPrimary
	case fl < prim:
		return flat
	default:
		return StratPrimary
	}
}

// Route counts one query answered by s.
func (p *Planner) Route(s Strategy) { p.routes[s].Add(1) }

// Observe folds one timed execution of s into its latency EWMA.
func (p *Planner) Observe(s Strategy, d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	old := p.ewma[s].Load()
	if old == 0 {
		p.ewma[s].Store(ns)
		return
	}
	p.ewma[s].Store(old - old>>ewmaShift + ns>>ewmaShift)
}

// EWMA returns the observed latency estimate for s in nanoseconds (zero
// when the strategy has never been timed).
func (p *Planner) EWMA(s Strategy) uint64 { return p.ewma[s].Load() }

// Recommend reassesses the engine choice against the workload observed
// since the last assessment window closed: reads and muts are the network's
// cumulative read and mutation counters. It reports the kind the planner
// would run and whether that is a change from cur. Call it under the
// publication lock.
func (p *Planner) Recommend(cur Kind, reads, muts uint64) (Kind, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dr, dm := reads-p.lastReads, muts-p.lastMuts
	if dr+dm < recommendWindow {
		if !p.hasRec {
			return cur, false
		}
		return p.recommended, p.recommended != cur
	}
	p.lastReads, p.lastMuts = reads, muts
	p.sinceMigr++
	rec := cur
	mutFrac := float64(dm) / float64(dr+dm)
	flatLat := p.ewma[StratFlatForward].Load()
	if r := p.ewma[StratFlatReverse].Load(); r > flatLat {
		flatLat = r
	}
	switch {
	case cur.Heavy() && mutFrac >= migrateToOnlineChurn:
		// Every mutation batch risks a full precomputation rebuild; the
		// online engines advance for free.
		rec = Online
	case !cur.Heavy() && mutFrac <= migrateToIndexChurn && flatLat >= migrateToIndexLatency:
		// Quiescent and traversal-bound: an index build amortizes.
		rec = Index
	}
	p.recommended, p.hasRec = rec, true
	if rec == cur || p.sinceMigr < cooldownWindows {
		return rec, false
	}
	return rec, true
}

// Recommended returns the planner's current engine recommendation, false
// before the first full assessment window.
func (p *Planner) Recommended() (Kind, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recommended, p.hasRec
}

// Migrated records that the facade applied a migration, starting the
// cooldown and discarding the primary-strategy latency estimate (it
// described the previous engine).
func (p *Planner) Migrated(to Kind) {
	p.mu.Lock()
	p.sinceMigr = 0
	p.recommended, p.hasRec = to, true
	p.mu.Unlock()
	p.migrations.Add(1)
	p.ewma[StratPrimary].Store(0)
}

// Counters is a point-in-time snapshot of the planner's route and cache
// tallies, in the shape Stats surfaces.
type Counters struct {
	RouteAudience    uint64
	RouteFlatForward uint64
	RouteFlatReverse uint64
	RoutePrimary     uint64
	Migrations       uint64
	CacheHits        uint64
	CacheMisses      uint64
	CacheEvictions   uint64
}

// Counters collects the planner's tallies.
func (p *Planner) Counters() Counters {
	return Counters{
		RouteAudience:    p.routes[StratAudience].Load(),
		RouteFlatForward: p.routes[StratFlatForward].Load(),
		RouteFlatReverse: p.routes[StratFlatReverse].Load(),
		RoutePrimary:     p.routes[StratPrimary].Load(),
		Migrations:       p.migrations.Load(),
		CacheHits:        p.cache.hits.Load(),
		CacheMisses:      p.cache.misses.Load(),
		CacheEvictions:   p.cache.evictions.Load(),
	}
}
