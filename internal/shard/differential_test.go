package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"reachac"
	"reachac/internal/shard"
)

// The differential suite: for every engine kind and shard count N ∈ {1,2,4},
// a router over N embedded shards must answer exactly like one unsharded
// Network fed the same trace — same check effects, same audience sets, same
// unknown-user failures — while edges straddle the partition cut and
// mutations churn the incrementally-maintained audience cache.

// diffCatalog mixes depth-1 (delegated), deep (scattered), reverse,
// predicate and unbounded conditions, so every routing path is exercised.
var diffCatalog = []string{
	`friend*[1]`,
	`friend+[1,2]`,
	`friend+[1,2]/colleague+[1]`,
	`friend-[1]`,
	`parent+[1]/friend+[1,2]`,
	`friend+[1,2]{dept="eng"}`,
	`friend+[2,*]`,
}

var diffLabels = []string{"friend", "colleague", "parent"}

// diffEdge is one candidate relationship the trace toggles.
type diffEdge struct {
	from, to, label string
	present         bool
}

type diffHarness struct {
	t      *testing.T
	ctx    context.Context
	oracle *shard.Embedded // single unsharded network behind the Backend facade
	router *shard.Router
	users  []string
	edges  []diffEdge
	// resources[i] is shared with rules[i] on both sides (rule IDs differ
	// across sides — effects, not rule names, are the comparable surface).
	resources []string
	owners    []string
}

func newDiffHarness(t *testing.T, kind reachac.EngineKind, shards int, rng *rand.Rand) *diffHarness {
	t.Helper()
	ctx := context.Background()
	oracle := shard.NewEmbedded(reachac.New(reachac.WithEngine(kind)))
	t.Cleanup(func() { oracle.Close() })

	backends := make([]shard.Backend, shards)
	for i := range backends {
		backends[i] = shard.NewEmbedded(reachac.New(reachac.WithEngine(kind)))
	}
	router, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(func() { router.Close() })

	h := &diffHarness{t: t, ctx: ctx, oracle: oracle, router: router}

	for i := 0; i < 120; i++ {
		name := fmt.Sprintf("u%03d", i)
		var attrs map[string]any
		if i%4 == 0 {
			dept := "eng"
			if i%8 == 0 {
				dept = "ops"
			}
			attrs = map[string]any{"dept": dept, "level": i % 5}
		}
		h.users = append(h.users, name)
		if _, err := oracle.AddUser(ctx, name, attrs); err != nil {
			t.Fatalf("oracle AddUser(%s): %v", name, err)
		}
		if _, err := router.AddUser(ctx, name, attrs); err != nil {
			t.Fatalf("router AddUser(%s): %v", name, err)
		}
	}

	// Candidate edges: unique (from, to, label) triples, no self loops. About
	// half start present; with consistent hashing a healthy share straddles
	// the partition cut.
	seen := make(map[string]struct{})
	for len(h.edges) < 700 {
		from := h.users[rng.Intn(len(h.users))]
		to := h.users[rng.Intn(len(h.users))]
		label := diffLabels[rng.Intn(len(diffLabels))]
		if from == to {
			continue
		}
		key := from + "|" + to + "|" + label
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		h.edges = append(h.edges, diffEdge{from: from, to: to, label: label})
	}
	for i := range h.edges {
		if rng.Intn(2) == 0 {
			h.relate(i)
		}
	}

	for i, path := range diffCatalog {
		res := fmt.Sprintf("res-%d", i)
		owner := h.users[(i*17)%len(h.users)]
		h.share(res, owner, []string{path})
		h.resources = append(h.resources, res)
		h.owners = append(h.owners, owner)
	}

	// Guard against a vacuous pass: with more than one shard the users MUST
	// spread across several owners, or nothing here exercises the partition
	// cut. (A ring regression once parked every sequential name on shard 0,
	// and this suite silently stopped testing cross-shard traversal.)
	if shards > 1 {
		owned := make(map[int]struct{})
		for _, u := range h.users {
			owned[router.Owner(u)] = struct{}{}
		}
		if len(owned) < 2 {
			t.Fatalf("all %d users landed on one of %d shards — the trace would not cross the partition cut", len(h.users), shards)
		}
	}
	return h
}

func (h *diffHarness) relate(i int) {
	e := &h.edges[i]
	if err := h.oracle.Relate(h.ctx, e.from, e.to, e.label, false); err != nil {
		h.t.Fatalf("oracle Relate(%s-%s-%s): %v", e.from, e.label, e.to, err)
	}
	if err := h.router.Relate(h.ctx, e.from, e.to, e.label, false); err != nil {
		h.t.Fatalf("router Relate(%s-%s-%s): %v", e.from, e.label, e.to, err)
	}
	e.present = true
}

func (h *diffHarness) unrelate(i int) {
	e := &h.edges[i]
	if err := h.oracle.Unrelate(h.ctx, e.from, e.to, e.label); err != nil {
		h.t.Fatalf("oracle Unrelate(%s-%s-%s): %v", e.from, e.label, e.to, err)
	}
	if err := h.router.Unrelate(h.ctx, e.from, e.to, e.label); err != nil {
		h.t.Fatalf("router Unrelate(%s-%s-%s): %v", e.from, e.label, e.to, err)
	}
	e.present = false
}

func (h *diffHarness) share(res, owner string, paths []string) {
	if _, err := h.oracle.Share(h.ctx, res, owner, paths); err != nil {
		h.t.Fatalf("oracle Share(%s): %v", res, err)
	}
	if _, err := h.router.Share(h.ctx, res, owner, paths); err != nil {
		h.t.Fatalf("router Share(%s): %v", res, err)
	}
}

// budgetAsymmetry reports the one tolerated error divergence: the unsharded
// oracle's engine hit an evaluation budget (e.g. the paper-join intermediate
// tuple cap) while the router answered. The router's scatter-gather BFS is
// engine-independent by design, so it legitimately succeeds where a
// per-engine evaluation strategy gives up.
func budgetAsymmetry(werr, gerr error) bool {
	return werr != nil && gerr == nil && !errors.Is(werr, reachac.ErrUnknownUser)
}

func (h *diffHarness) compareCheck(res, req string) {
	h.t.Helper()
	want, werr := h.oracle.Check(h.ctx, res, req)
	got, gerr := h.router.Check(h.ctx, res, req)
	if budgetAsymmetry(werr, gerr) {
		return
	}
	if (werr == nil) != (gerr == nil) {
		h.t.Fatalf("check(%s,%s): oracle err=%v router err=%v", res, req, werr, gerr)
	}
	if werr != nil {
		if errors.Is(werr, reachac.ErrUnknownUser) != errors.Is(gerr, reachac.ErrUnknownUser) {
			h.t.Fatalf("check(%s,%s): error class diverged: oracle %v, router %v", res, req, werr, gerr)
		}
		return
	}
	if want.Effect != got.Effect {
		h.t.Fatalf("check(%s,%s): oracle=%s router=%s (oracle reason %q, router reason %q)",
			res, req, want.Effect, got.Effect, want.Reason, got.Reason)
	}
}

func (h *diffHarness) compareAudience(res string) {
	h.t.Helper()
	want, werr := h.oracle.Audience(h.ctx, res)
	got, partial, gerr := h.router.Audience(h.ctx, res)
	if budgetAsymmetry(werr, gerr) {
		return
	}
	if (werr == nil) != (gerr == nil) {
		h.t.Fatalf("audience(%s): oracle err=%v router err=%v", res, werr, gerr)
	}
	if werr != nil {
		return
	}
	if len(partial) > 0 {
		h.t.Fatalf("audience(%s): unexpected partial result from healthy shards: %v", res, partial)
	}
	sort.Strings(want)
	sort.Strings(got)
	if len(want) != len(got) {
		h.t.Fatalf("audience(%s): oracle %d members %v, router %d members %v", res, len(want), want, len(got), got)
	}
	for i := range want {
		if want[i] != got[i] {
			h.t.Fatalf("audience(%s): member %d: oracle %q router %q", res, i, want[i], got[i])
		}
	}
}

func (h *diffHarness) compareReach(owner, req, expr string) {
	h.t.Helper()
	v, err := h.oracle.Network().View()
	if err != nil {
		h.t.Fatalf("oracle view: %v", err)
	}
	oid, ok1 := v.UserID(owner)
	rid, ok2 := v.UserID(req)
	if !ok1 || !ok2 {
		v.Close()
		h.t.Fatalf("reach(%s,%s): oracle does not know the endpoints", owner, req)
	}
	want, werr := v.CheckPath(oid, rid, expr)
	v.Close()
	got, gerr := h.router.Reach(h.ctx, owner, req, expr)
	if budgetAsymmetry(werr, gerr) {
		return
	}
	if (werr == nil) != (gerr == nil) {
		h.t.Fatalf("reach(%s,%s,%s): oracle err=%v router err=%v", owner, req, expr, werr, gerr)
	}
	if werr == nil && want != got {
		h.t.Fatalf("reach(%s,%s,%s): oracle=%v router=%v", owner, req, expr, want, got)
	}
}

func (h *diffHarness) requester(rng *rand.Rand) string {
	if rng.Intn(20) == 0 {
		return fmt.Sprintf("ghost-%d", rng.Intn(3)) // never created anywhere
	}
	return h.users[rng.Intn(len(h.users))]
}

func TestDifferentialShardedVsSingleNode(t *testing.T) {
	kinds := []reachac.EngineKind{
		reachac.Online, reachac.OnlineDFS, reachac.OnlineAdaptive,
		reachac.Closure, reachac.Index, reachac.IndexPaperJoin,
	}
	counts := []int{1, 2, 4}
	steps := 350
	if testing.Short() || raceEnabled {
		kinds = kinds[:2]
		counts = []int{1, 4}
		steps = 150
	}
	for _, kind := range kinds {
		for _, n := range counts {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(42 + 1000*int(kind) + n)))
				h := newDiffHarness(t, kind, n, rng)

				for step := 0; step < steps; step++ {
					switch op := rng.Intn(10); {
					case op < 5: // check
						res := h.resources[rng.Intn(len(h.resources))]
						h.compareCheck(res, h.requester(rng))
					case op < 8: // toggle an edge, then spot-check a resource
						i := rng.Intn(len(h.edges))
						if h.edges[i].present {
							h.unrelate(i)
						} else {
							h.relate(i)
						}
						ri := rng.Intn(len(h.resources))
						h.compareCheck(h.resources[ri], h.requester(rng))
					case op < 9: // full audience comparison
						h.compareAudience(h.resources[rng.Intn(len(h.resources))])
					default: // raw reachability point query
						ri := rng.Intn(len(h.resources))
						req := h.users[rng.Intn(len(h.users))]
						h.compareReach(h.owners[ri], req, diffCatalog[ri])
					}
				}

				// Final exhaustive pass: every audience, and every resource
				// against a fixed requester panel.
				for ri, res := range h.resources {
					h.compareAudience(res)
					for u := 0; u < len(h.users); u += 7 {
						h.compareCheck(res, h.users[u])
					}
					h.compareCheck(res, h.owners[ri]) // owner fast-allow parity
				}
			})
		}
	}
}
