//go:build !race

package shard_test

// raceEnabled reports the race detector is compiled in (see the race-tagged
// twin for why the differential matrix shrinks under it).
const raceEnabled = false
