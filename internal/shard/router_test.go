package shard_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"reachac"
	"reachac/internal/httpapi"
	"reachac/internal/shard"
)

// flakyBackend wraps an embedded shard and, when down, refuses every call
// with a transport-style error — the shape of a crashed or partitioned
// acserverd the router must classify as ErrShardUnavailable. Because it is
// not a *shard.Embedded the router also takes its remote (non-local) paths:
// scatter semaphore, per-shard deadlines, goroutine fan-out.
type flakyBackend struct {
	inner *shard.Embedded
	down  atomic.Bool
}

var errDown = errors.New("dial tcp: connection refused")

func (f *flakyBackend) AddUser(ctx context.Context, name string, attrs map[string]any) (uint32, error) {
	if f.down.Load() {
		return 0, errDown
	}
	return f.inner.AddUser(ctx, name, attrs)
}

func (f *flakyBackend) UserID(ctx context.Context, name string) (uint32, error) {
	if f.down.Load() {
		return 0, errDown
	}
	return f.inner.UserID(ctx, name)
}

func (f *flakyBackend) Relate(ctx context.Context, from, to, relType string, mutual bool) error {
	if f.down.Load() {
		return errDown
	}
	return f.inner.Relate(ctx, from, to, relType, mutual)
}

func (f *flakyBackend) Unrelate(ctx context.Context, from, to, relType string) error {
	if f.down.Load() {
		return errDown
	}
	return f.inner.Unrelate(ctx, from, to, relType)
}

func (f *flakyBackend) Share(ctx context.Context, resource, owner string, paths []string) (string, error) {
	if f.down.Load() {
		return "", errDown
	}
	return f.inner.Share(ctx, resource, owner, paths)
}

func (f *flakyBackend) Revoke(ctx context.Context, resource, rule string) (bool, error) {
	if f.down.Load() {
		return false, errDown
	}
	return f.inner.Revoke(ctx, resource, rule)
}

func (f *flakyBackend) Check(ctx context.Context, resource, requester string) (httpapi.Decision, error) {
	if f.down.Load() {
		return httpapi.Decision{}, errDown
	}
	return f.inner.Check(ctx, resource, requester)
}

func (f *flakyBackend) CheckBatch(ctx context.Context, resource string, requesters []string) ([]httpapi.Decision, error) {
	if f.down.Load() {
		return nil, errDown
	}
	return f.inner.CheckBatch(ctx, resource, requesters)
}

func (f *flakyBackend) Audience(ctx context.Context, resource string) ([]string, error) {
	if f.down.Load() {
		return nil, errDown
	}
	return f.inner.Audience(ctx, resource)
}

func (f *flakyBackend) Expand(ctx context.Context, req reachac.ShardExpandRequest) (reachac.ShardExpandResponse, error) {
	if f.down.Load() {
		return reachac.ShardExpandResponse{}, errDown
	}
	return f.inner.Expand(ctx, req)
}

func (f *flakyBackend) Policies(ctx context.Context) ([]reachac.ResourcePolicy, error) {
	if f.down.Load() {
		return nil, errDown
	}
	return f.inner.Policies(ctx)
}

func (f *flakyBackend) Stats(ctx context.Context) (httpapi.StatsResponse, error) {
	if f.down.Load() {
		return httpapi.StatsResponse{}, errDown
	}
	return f.inner.Stats(ctx)
}

func (f *flakyBackend) Close() error { return f.inner.Close() }

// newFlakyRouter builds a router over n flaky shards pre-populated with
// users u00..u19 and nothing else.
func newFlakyRouter(t *testing.T, n int, cfg shard.Config) (*shard.Router, []*flakyBackend, []string) {
	t.Helper()
	ctx := context.Background()
	flaky := make([]*flakyBackend, n)
	backends := make([]shard.Backend, n)
	for i := range backends {
		flaky[i] = &flakyBackend{inner: shard.NewEmbedded(reachac.New())}
		backends[i] = flaky[i]
	}
	r, err := shard.New(ctx, backends, cfg)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	var users []string
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("u%02d", i)
		users = append(users, name)
		if _, err := r.AddUser(ctx, name, nil); err != nil {
			t.Fatalf("AddUser(%s): %v", name, err)
		}
	}
	return r, flaky, users
}

// chain relates users[0]→users[1]→… with label.
func chain(t *testing.T, r *shard.Router, label string, users ...string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i+1 < len(users); i++ {
		if err := r.Relate(ctx, users[i], users[i+1], label, false); err != nil {
			t.Fatalf("Relate(%s→%s): %v", users[i], users[i+1], err)
		}
	}
}

func TestFailClosedCheckAndPartialAudience(t *testing.T) {
	ctx := context.Background()
	r, flaky, users := newFlakyRouter(t, 2, shard.Config{AudienceCacheEntries: -1})
	chain(t, r, "friend", users[0], users[1], users[2], users[3])
	if _, err := r.Share(ctx, "doc", users[0], []string{"friend+[1,3]"}); err != nil {
		t.Fatalf("Share: %v", err)
	}

	// Healthy baseline: the deep path scatters and reaches the whole chain.
	d, err := r.Check(ctx, "doc", users[3])
	if err != nil || d.Effect != "allow" {
		t.Fatalf("healthy check: effect=%q err=%v, want allow", d.Effect, err)
	}
	names, partial, err := r.Audience(ctx, "doc")
	if err != nil || len(partial) > 0 {
		t.Fatalf("healthy audience: partial=%v err=%v", partial, err)
	}
	if want := []string{users[1], users[2], users[3]}; fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("healthy audience = %v, want %v", names, want)
	}

	// Kill the shard owning the resource owner: the very first scatter round
	// needs it, so checks must fail CLOSED and audiences degrade to partial.
	down := r.Owner(users[0])
	flaky[down].down.Store(true)

	if _, err := r.Check(ctx, "doc", users[3]); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("check with shard %d down: err=%v, want ErrShardUnavailable", down, err)
	}
	names, partial, err = r.Audience(ctx, "doc")
	if err != nil {
		t.Fatalf("audience with shard down must degrade, not fail: %v", err)
	}
	if len(partial) != 1 || partial[0] != down {
		t.Fatalf("partial = %v, want [%d]", partial, down)
	}
	if len(names) != 0 {
		t.Fatalf("audience rooted on a dead shard = %v, want empty under-approximation", names)
	}

	if h := r.Health(ctx); h.Status != "degraded" {
		t.Fatalf("health with a dead shard = %q, want degraded", h.Status)
	}
	rs := r.RouterStats()
	if rs.FailedClosed == 0 || rs.Partial == 0 {
		t.Fatalf("counters: failed_closed=%d partial=%d, want both > 0", rs.FailedClosed, rs.Partial)
	}

	// Recovery: the shard comes back and the same queries heal.
	flaky[down].down.Store(false)
	if d, err := r.Check(ctx, "doc", users[3]); err != nil || d.Effect != "allow" {
		t.Fatalf("recovered check: effect=%q err=%v", d.Effect, err)
	}
}

func TestReachFailsClosedOnIncompleteNegative(t *testing.T) {
	ctx := context.Background()
	r, flaky, users := newFlakyRouter(t, 2, shard.Config{})
	chain(t, r, "friend", users[0], users[1], users[2])

	ok, err := r.Reach(ctx, users[0], users[2], "friend+[1,2]")
	if err != nil || !ok {
		t.Fatalf("healthy reach: ok=%v err=%v", ok, err)
	}

	flaky[r.Owner(users[0])].down.Store(true)
	if _, err := r.Reach(ctx, users[0], users[2], "friend+[1,2]"); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("reach with owner shard down: err=%v, want ErrShardUnavailable (incomplete negative)", err)
	}
}

func TestAddUserHealsPartialWrite(t *testing.T) {
	ctx := context.Background()
	backends := []shard.Backend{
		shard.NewEmbedded(reachac.New()),
		shard.NewEmbedded(reachac.New()),
	}
	r, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A prior crashed AddUser left "alice" on her owner shard only; the
	// router must treat re-adding as healing, not a duplicate.
	owner := r.Owner("alice")
	if _, err := backends[owner].AddUser(ctx, "alice", nil); err != nil {
		t.Fatalf("seeding partial write: %v", err)
	}
	if _, err := r.AddUser(ctx, "alice", nil); err != nil {
		t.Fatalf("healing AddUser: %v", err)
	}
	// Now present everywhere: a second add is a true duplicate.
	if _, err := r.AddUser(ctx, "alice", nil); !errors.Is(err, reachac.ErrDuplicateUser) {
		t.Fatalf("AddUser after heal: err=%v, want ErrDuplicateUser", err)
	}
	if _, err := r.UserID(ctx, "alice"); err != nil {
		t.Fatalf("UserID after heal: %v", err)
	}
}

// boundaryPair finds two users the ring places on different shards.
func boundaryPair(r *shard.Router, users []string) (string, string, bool) {
	for _, a := range users {
		for _, b := range users {
			if a != b && r.Owner(a) != r.Owner(b) {
				return a, b, true
			}
		}
	}
	return "", "", false
}

func TestRelateHealsAndRejectsDuplicates(t *testing.T) {
	ctx := context.Background()
	backends := []shard.Backend{
		shard.NewEmbedded(reachac.New()),
		shard.NewEmbedded(reachac.New()),
	}
	r, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var users []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("m%d", i)
		users = append(users, name)
		if _, err := r.AddUser(ctx, name, nil); err != nil {
			t.Fatal(err)
		}
	}
	from, to, ok := boundaryPair(r, users)
	if !ok {
		t.Fatal("no boundary pair among 8 users on 2 shards")
	}

	// Seed half the boundary write directly on from's shard, as a crash
	// between the two legs would: the router's Relate must complete it.
	if err := backends[r.Owner(from)].Relate(ctx, from, to, "friend", false); err != nil {
		t.Fatalf("seeding half-written edge: %v", err)
	}
	if err := r.Relate(ctx, from, to, "friend", false); err != nil {
		t.Fatalf("healing Relate: %v", err)
	}
	if err := r.Relate(ctx, from, to, "friend", false); !errors.Is(err, reachac.ErrDuplicateRelationship) {
		t.Fatalf("Relate after heal: err=%v, want ErrDuplicateRelationship", err)
	}
	if err := r.Unrelate(ctx, from, to, "friend"); err != nil {
		t.Fatalf("Unrelate: %v", err)
	}
	if err := r.Unrelate(ctx, from, to, "friend"); !errors.Is(err, reachac.ErrUnknownRelationship) {
		t.Fatalf("second Unrelate: err=%v, want ErrUnknownRelationship", err)
	}
}

func TestRelateRollsBackPartialFailure(t *testing.T) {
	ctx := context.Background()
	backends := []shard.Backend{
		shard.NewEmbedded(reachac.New()),
		shard.NewEmbedded(reachac.New()),
	}
	r, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var users []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("m%d", i)
		users = append(users, name)
		if _, err := r.AddUser(ctx, name, nil); err != nil {
			t.Fatal(err)
		}
	}
	// "ghost" exists ONLY on the shard that does not own it, so the edge
	// write succeeds there and fails hard (unknown user) on ghost's owner:
	// the router must roll the applied side back and surface the error.
	var from string
	for _, u := range users {
		if r.Owner(u) != r.Owner("ghost") {
			from = u
			break
		}
	}
	if from == "" {
		t.Fatal("all users share ghost's shard")
	}
	if _, err := backends[r.Owner(from)].AddUser(ctx, "ghost", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Relate(ctx, from, "ghost", "friend", false); !errors.Is(err, reachac.ErrUnknownUser) {
		t.Fatalf("Relate to half-known user: err=%v, want ErrUnknownUser", err)
	}
	// The rollback removed the applied leg: re-applying it directly succeeds.
	if err := backends[r.Owner(from)].Relate(ctx, from, "ghost", "friend", false); err != nil {
		t.Fatalf("edge was not rolled back on from's shard: %v", err)
	}
}

func TestShareConflictAndRevoke(t *testing.T) {
	ctx := context.Background()
	r, _, users := newFlakyRouter(t, 2, shard.Config{})
	rule, err := r.Share(ctx, "doc", users[0], []string{"friend+[1,2]"})
	if err != nil {
		t.Fatalf("Share: %v", err)
	}
	// The same resource under a different owner may live on a different
	// shard, which alone cannot see the conflict — the router must.
	if _, err := r.Share(ctx, "doc", users[1], []string{"friend+[1,2]"}); !errors.Is(err, reachac.ErrResourceOwned) {
		t.Fatalf("conflicting Share: err=%v, want ErrResourceOwned", err)
	}

	chain(t, r, "friend", users[0], users[1])
	if d, err := r.Check(ctx, "doc", users[1]); err != nil || d.Effect != "allow" {
		t.Fatalf("check before revoke: effect=%q err=%v", d.Effect, err)
	}
	removed, err := r.Revoke(ctx, "doc", rule)
	if err != nil || !removed {
		t.Fatalf("Revoke: removed=%v err=%v", removed, err)
	}
	if d, err := r.Check(ctx, "doc", users[1]); err != nil || d.Effect != "deny" {
		t.Fatalf("check after revoke: effect=%q err=%v, want deny", d.Effect, err)
	}
	if removed, err := r.Revoke(ctx, "doc", rule); err != nil || removed {
		t.Fatalf("second Revoke: removed=%v err=%v, want false", removed, err)
	}
	if removed, err := r.Revoke(ctx, "nosuch", "r1"); err != nil || removed {
		t.Fatalf("Revoke of unregistered resource: removed=%v err=%v, want false, nil", removed, err)
	}
}

func TestScatterChecksLandInRouterAudit(t *testing.T) {
	ctx := context.Background()
	r, _, users := newFlakyRouter(t, 2, shard.Config{AuditLimit: 4})
	chain(t, r, "friend", users[0], users[1], users[2])
	if _, err := r.Share(ctx, "doc", users[0], []string{"friend+[1,2]"}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := r.Check(ctx, "doc", users[i]); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	trail := r.Audit(0)
	if len(trail) != 4 {
		t.Fatalf("Audit(0) kept %d decisions, want the ring-buffer cap 4", len(trail))
	}
	// Oldest-first: the retained window is checks 3..6.
	for i, d := range trail {
		if want := users[i+3]; d.Requester != want {
			t.Fatalf("trail[%d].Requester = %q, want %q (oldest-first window)", i, d.Requester, want)
		}
	}
	if last := r.Audit(2); len(last) != 2 || last[1].Requester != users[6] {
		t.Fatalf("Audit(2) = %v, want the last two decisions", last)
	}
}

func TestUnknownRequesterOnScatterPath(t *testing.T) {
	ctx := context.Background()
	r, _, users := newFlakyRouter(t, 2, shard.Config{})
	if _, err := r.Share(ctx, "doc", users[0], []string{"friend+[1,2]"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Check(ctx, "doc", "nobody"); !errors.Is(err, reachac.ErrUnknownUser) {
		t.Fatalf("check by unknown requester: err=%v, want ErrUnknownUser", err)
	}
	if _, err := r.CheckBatch(ctx, "doc", []string{users[1], "nobody"}); !errors.Is(err, reachac.ErrUnknownUser) {
		t.Fatalf("batch with unknown requester: err=%v, want ErrUnknownUser", err)
	}
	if _, _, err := r.ReachAudience(ctx, "nobody", "friend+[1,2]"); !errors.Is(err, reachac.ErrUnknownUser) {
		t.Fatalf("reach-audience from unknown owner: err=%v, want ErrUnknownUser", err)
	}
}

func TestMutualEdgesMaintainCachedAudiences(t *testing.T) {
	ctx := context.Background()
	r, _, users := newFlakyRouter(t, 2, shard.Config{})
	a, b, c := users[0], users[1], users[2]
	if _, err := r.Share(ctx, "doc", a, []string{"friend+[1,2]"}); err != nil {
		t.Fatal(err)
	}
	audience := func() []string {
		t.Helper()
		names, partial, err := r.Audience(ctx, "doc")
		if err != nil || len(partial) > 0 {
			t.Fatalf("audience: partial=%v err=%v", partial, err)
		}
		sort.Strings(names)
		return names
	}
	if got := audience(); len(got) != 0 {
		t.Fatalf("initial audience = %v, want empty", got)
	}
	// Mutual edge a<->b, then b->c: both deltas must EXTEND the cached empty
	// audience rather than leave it stale.
	if err := r.Relate(ctx, a, b, "friend", true); err != nil {
		t.Fatal(err)
	}
	if got := audience(); fmt.Sprint(got) != fmt.Sprint([]string{b}) {
		t.Fatalf("audience after mutual relate = %v, want [%s]", got, b)
	}
	if err := r.Relate(ctx, b, c, "friend", false); err != nil {
		t.Fatal(err)
	}
	if got := audience(); fmt.Sprint(got) != fmt.Sprint([]string{b, c}) {
		t.Fatalf("audience after extension = %v, want [%s %s]", got, b, c)
	}
	// Removing a->b severs the whole chain even though b->a survives.
	if err := r.Unrelate(ctx, a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	if got := audience(); len(got) != 0 {
		t.Fatalf("audience after severing = %v, want empty", got)
	}
	rs := r.RouterStats()
	if rs.AudienceCacheExtends == 0 || rs.AudienceCacheInvalidate == 0 || rs.AudienceCacheHits == 0 {
		t.Fatalf("maintenance counters: extends=%d invalidations=%d hits=%d, want all > 0",
			rs.AudienceCacheExtends, rs.AudienceCacheInvalidate, rs.AudienceCacheHits)
	}
}

func TestStatsAggregation(t *testing.T) {
	ctx := context.Background()
	r, _, users := newFlakyRouter(t, 2, shard.Config{})
	chain(t, r, "friend", users[0], users[1])
	if _, err := r.Share(ctx, "doc", users[0], []string{"friend*[1]"}); err != nil {
		t.Fatal(err)
	}
	// friend*[1] is depth-1: the whole check delegates to the owner's shard.
	if d, err := r.Check(ctx, "doc", users[1]); err != nil || d.Effect != "allow" {
		t.Fatalf("depth-1 check: effect=%q err=%v", d.Effect, err)
	}
	st := r.Stats(ctx)
	if st.Router == nil {
		t.Fatal("Stats dropped the router counters")
	}
	if st.Router.FastPath == 0 {
		t.Fatal("depth-1 check did not take the fast path")
	}
	if st.Users != 20 {
		t.Fatalf("aggregated users = %d, want 20 (replicated everywhere, counted once)", st.Users)
	}
	if st.Resources != 1 {
		t.Fatalf("aggregated resources = %d, want 1", st.Resources)
	}
	if len(st.ShardStats) != 2 || !st.ShardStats[0].Healthy || !st.ShardStats[1].Healthy {
		t.Fatalf("shard stats = %+v, want two healthy shards", st.ShardStats)
	}
	// A local edge lands once, on its co-located owner pair; boundary edges
	// land twice. Either way the counters must have seen the write.
	if st.Router.BoundaryEdges+st.Router.LocalEdges == 0 {
		t.Fatal("edge placement counters never moved")
	}
}
