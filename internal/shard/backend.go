// Package shard is the horizontal-scaling layer: a partition-aware router
// that consistent-hashes users and resource owners across N shard backends,
// each a full reachac stack with its own durable WAL directory. Backends are
// either embedded Networks (in-process, for benchmarking and tests) or real
// acserverd processes reached through the typed client package.
//
// Placement invariants the router maintains:
//
//   - Users (with their attributes) are replicated to EVERY shard, so any
//     shard can resolve names and evaluate node predicates.
//   - A relationship is written to the shard owning each endpoint — one
//     write when co-located, two when the edge straddles the partition cut
//     (boundary-node replication). An owned node's adjacency is therefore
//     COMPLETE on its owner shard, which is what lets the distributed
//     search make multi-hop progress locally and hand over exactly at
//     ownership boundaries.
//   - A resource's policy lives on the shard owning its owner's name; the
//     router keeps a name-keyed routing cache of every policy (rebuilt from
//     the shards at startup) to route checks and catch cross-shard
//     ownership conflicts.
//
// Queries either delegate whole to one shard (single-shard fast path: one
// backend total, or a policy whose every condition is a single depth-1 step,
// answerable from the owner's complete local adjacency) or scatter-gather:
// the router drives a distributed product-BFS round by round across the
// owning shards (reachac.ShardExpand), merging audiences and deduplicating
// states globally. Checks fail CLOSED when a needed shard is unreachable;
// audiences degrade to a partial answer flagged with the X-Shard-Partial
// header.
package shard

import (
	"context"
	"fmt"

	"reachac"
	"reachac/client"
	"reachac/internal/httpapi"
)

// Backend is one shard as the router drives it. All identifiers are names:
// numeric IDs are shard-local and never compared across backends. Embedded
// and remote implementations return the same reachac sentinel errors
// (directly, or via the client's code mapping), so the router classifies
// failures uniformly.
type Backend interface {
	AddUser(ctx context.Context, name string, attrs map[string]any) (uint32, error)
	UserID(ctx context.Context, name string) (uint32, error)
	Relate(ctx context.Context, from, to, relType string, mutual bool) error
	Unrelate(ctx context.Context, from, to, relType string) error
	Share(ctx context.Context, resource, owner string, paths []string) (string, error)
	Revoke(ctx context.Context, resource, rule string) (bool, error)

	Check(ctx context.Context, resource, requester string) (httpapi.Decision, error)
	CheckBatch(ctx context.Context, resource string, requesters []string) ([]httpapi.Decision, error)
	Audience(ctx context.Context, resource string) ([]string, error)

	Expand(ctx context.Context, req reachac.ShardExpandRequest) (reachac.ShardExpandResponse, error)
	Policies(ctx context.Context) ([]reachac.ResourcePolicy, error)
	Stats(ctx context.Context) (httpapi.StatsResponse, error)
	Close() error
}

// --- embedded backend ---

// Embedded wraps an in-process Network as a shard backend. The router owns
// the network's lifecycle: Close closes it.
type Embedded struct {
	net *reachac.Network
}

// NewEmbedded wraps n as a shard backend.
func NewEmbedded(n *reachac.Network) *Embedded { return &Embedded{net: n} }

// Network exposes the wrapped network (tests, stats).
func (b *Embedded) Network() *reachac.Network { return b.net }

func attrsFromMap(m map[string]any) ([]reachac.Attr, error) {
	attrs := make([]reachac.Attr, 0, len(m))
	for k, val := range m {
		switch t := val.(type) {
		case string:
			attrs = append(attrs, reachac.StringAttr(k, t))
		case bool:
			attrs = append(attrs, reachac.BoolAttr(k, t))
		case float64:
			attrs = append(attrs, reachac.NumberAttr(k, t))
		case int:
			attrs = append(attrs, reachac.NumberAttr(k, float64(t)))
		default:
			return nil, fmt.Errorf("attribute %q: unsupported type %T (want string, number or bool)", k, val)
		}
	}
	return attrs, nil
}

func (b *Embedded) AddUser(_ context.Context, name string, attrs map[string]any) (uint32, error) {
	as, err := attrsFromMap(attrs)
	if err != nil {
		return 0, err
	}
	id, err := b.net.AddUser(name, as...)
	return uint32(id), err
}

func (b *Embedded) UserID(_ context.Context, name string) (uint32, error) {
	id, ok := b.net.UserID(name)
	if !ok {
		return 0, fmt.Errorf("user %q: %w", name, reachac.ErrUnknownUser)
	}
	return uint32(id), nil
}

// resolve2 resolves two member names in one view.
func (b *Embedded) resolve2(from, to string) (reachac.UserID, reachac.UserID, error) {
	v, err := b.net.View()
	if err != nil {
		return 0, 0, err
	}
	defer v.Close()
	f, ok := v.UserID(from)
	if !ok {
		return 0, 0, fmt.Errorf("user %q: %w", from, reachac.ErrUnknownUser)
	}
	t, ok := v.UserID(to)
	if !ok {
		return 0, 0, fmt.Errorf("user %q: %w", to, reachac.ErrUnknownUser)
	}
	return f, t, nil
}

func (b *Embedded) Relate(_ context.Context, from, to, relType string, mutual bool) error {
	f, t, err := b.resolve2(from, to)
	if err != nil {
		return err
	}
	if mutual {
		return b.net.RelateMutual(f, t, relType)
	}
	return b.net.Relate(f, t, relType)
}

func (b *Embedded) Unrelate(_ context.Context, from, to, relType string) error {
	f, t, err := b.resolve2(from, to)
	if err != nil {
		return err
	}
	return b.net.Unrelate(f, t, relType)
}

func (b *Embedded) Share(_ context.Context, resource, owner string, paths []string) (string, error) {
	oid, ok := b.net.UserID(owner)
	if !ok {
		return "", fmt.Errorf("user %q: %w", owner, reachac.ErrUnknownUser)
	}
	return b.net.Share(resource, oid, paths...)
}

func (b *Embedded) Revoke(_ context.Context, resource, rule string) (bool, error) {
	return b.net.Revoke(resource, rule), nil
}

func wireDecision(v *reachac.View, d reachac.Decision) httpapi.Decision {
	req, _ := v.UserName(d.Requester)
	if req == "" {
		req = fmt.Sprintf("%d", d.Requester)
	}
	return httpapi.Decision{
		Resource:  string(d.Resource),
		Requester: req,
		Effect:    d.Effect.String(),
		Rule:      d.RuleID,
		Reason:    d.Reason,
	}
}

func (b *Embedded) Check(_ context.Context, resource, requester string) (httpapi.Decision, error) {
	v, err := b.net.View()
	if err != nil {
		return httpapi.Decision{}, err
	}
	defer v.Close()
	id, ok := v.UserID(requester)
	if !ok {
		return httpapi.Decision{}, fmt.Errorf("user %q: %w", requester, reachac.ErrUnknownUser)
	}
	d, err := v.CanAccess(resource, id)
	if err != nil {
		return httpapi.Decision{}, err
	}
	return wireDecision(v, d), nil
}

func (b *Embedded) CheckBatch(_ context.Context, resource string, requesters []string) ([]httpapi.Decision, error) {
	v, err := b.net.View()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	ids := make([]reachac.UserID, len(requesters))
	for i, name := range requesters {
		id, ok := v.UserID(name)
		if !ok {
			return nil, fmt.Errorf("user %q: %w", name, reachac.ErrUnknownUser)
		}
		ids[i] = id
	}
	ds, err := v.CanAccessAll(resource, ids)
	if err != nil {
		return nil, err
	}
	out := make([]httpapi.Decision, len(ds))
	for i, d := range ds {
		out[i] = wireDecision(v, d)
	}
	return out, nil
}

func (b *Embedded) Audience(_ context.Context, resource string) ([]string, error) {
	v, err := b.net.View()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	ids, err := v.Audience(resource)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		if name, ok := v.UserName(id); ok {
			names = append(names, name)
		}
	}
	return names, nil
}

func (b *Embedded) Expand(_ context.Context, req reachac.ShardExpandRequest) (reachac.ShardExpandResponse, error) {
	v, err := b.net.View()
	if err != nil {
		return reachac.ShardExpandResponse{}, err
	}
	defer v.Close()
	return v.ShardExpand(req)
}

func (b *Embedded) Policies(_ context.Context) ([]reachac.ResourcePolicy, error) {
	v, err := b.net.View()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	return v.PolicyDump(), nil
}

func (b *Embedded) Stats(_ context.Context) (httpapi.StatsResponse, error) {
	return httpapi.StatsResponse{Stats: b.net.Stats()}, nil
}

func (b *Embedded) Close() error { return b.net.Close() }

// --- remote backend ---

// Remote drives a real acserverd process through the typed client.
type Remote struct {
	c *client.Client
}

// NewRemote wraps a client as a shard backend.
func NewRemote(c *client.Client) *Remote { return &Remote{c: c} }

func (b *Remote) AddUser(ctx context.Context, name string, attrs map[string]any) (uint32, error) {
	id, err := b.c.AddUser(ctx, name, attrs)
	return uint32(id), err
}

func (b *Remote) UserID(ctx context.Context, name string) (uint32, error) {
	id, err := b.c.UserID(ctx, name)
	return uint32(id), err
}

func (b *Remote) Relate(ctx context.Context, from, to, relType string, mutual bool) error {
	if mutual {
		return b.c.RelateMutual(ctx, from, to, relType)
	}
	return b.c.Relate(ctx, from, to, relType)
}

func (b *Remote) Unrelate(ctx context.Context, from, to, relType string) error {
	return b.c.Unrelate(ctx, from, to, relType)
}

func (b *Remote) Share(ctx context.Context, resource, owner string, paths []string) (string, error) {
	return b.c.Share(ctx, resource, owner, paths...)
}

func (b *Remote) Revoke(ctx context.Context, resource, rule string) (bool, error) {
	return b.c.Revoke(ctx, resource, rule)
}

func (b *Remote) Check(ctx context.Context, resource, requester string) (httpapi.Decision, error) {
	return b.c.Check(ctx, resource, requester)
}

func (b *Remote) CheckBatch(ctx context.Context, resource string, requesters []string) ([]httpapi.Decision, error) {
	return b.c.CheckBatch(ctx, resource, requesters)
}

func (b *Remote) Audience(ctx context.Context, resource string) ([]string, error) {
	return b.c.Audience(ctx, resource)
}

func (b *Remote) Expand(ctx context.Context, req reachac.ShardExpandRequest) (reachac.ShardExpandResponse, error) {
	return b.c.ShardExpand(ctx, req)
}

func (b *Remote) Policies(ctx context.Context) ([]reachac.ResourcePolicy, error) {
	return b.c.ShardPolicies(ctx)
}

func (b *Remote) Stats(ctx context.Context) (httpapi.StatsResponse, error) {
	return b.c.Stats(ctx)
}

func (b *Remote) Close() error { return nil }
