//go:build race

package shard_test

// raceEnabled reports the race detector is compiled in. The differential
// suite shrinks its engine×shard matrix under the detector: the full matrix
// runs ~5 minutes uninstrumented and would blow the package test timeout at
// race-detector speed, and the concurrency surface it exercises (scatter
// fan-out, cache maintenance, boundary writes) is identical in every cell.
const raceEnabled = true
