package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"reachac"
	"reachac/client"
	"reachac/internal/httpapi"
)

// classify wraps transport-level failures as ErrShardUnavailable while
// letting real API answers (sentinel-mapped errors, overload shedding)
// through untouched: a shard that ANSWERED "unknown user" is healthy; a
// shard that did not answer at all must fail the query closed.
func classify(err error) error {
	if err == nil {
		return nil
	}
	for _, s := range []error{
		reachac.ErrUnknownUser, reachac.ErrUnknownResource, reachac.ErrUnknownRelationship,
		reachac.ErrDuplicateUser, reachac.ErrDuplicateRelationship, reachac.ErrSelfRelationship,
		reachac.ErrResourceOwned, reachac.ErrReadOnly,
	} {
		if errors.Is(err, s) {
			return err
		}
	}
	var apiErr *client.Error
	if errors.As(err, &apiErr) || errors.Is(err, client.ErrOverloaded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrShardUnavailable, err)
}

// sweepResult is the outcome of one distributed reachability search.
type sweepResult struct {
	accepted map[string]struct{}
	// visited is the complete retired-state set of the search — what the
	// audience cache keeps to maintain entries incrementally.
	visited map[reachac.ShardState]struct{}
	found   bool
	// failed lists shard indexes that did not answer a round: their subtrees
	// are missing, so accepted is an under-approximation.
	failed []int
}

// sweep drives the distributed product-BFS for one (owner, path) from the
// owner's shard outward. pathExpr must be canonical (callers parse). retain
// asks the shards for their complete retired-state sets (see sweepFrom).
func (r *Router) sweep(ctx context.Context, owner, pathExpr, requester string, retain bool) (sweepResult, error) {
	start := reachac.ShardState{Name: owner, Step: 0, D: 0}
	visited := map[reachac.ShardState]struct{}{start: {}}
	return r.sweepFrom(ctx, pathExpr, requester, []reachac.ShardState{start}, visited, retain)
}

// sweepFrom runs the distributed search from explicit seed states over a
// caller-supplied visited set (which it grows in place): each round
// dispatches the frontier slices to their owning shards, merges accepted
// names, and re-dispatches the boundary exits the visited set has not
// retired. Seeding a non-trivial frontier with a previous sweep's visited
// set RESUMES that sweep — how the audience cache extends entries under edge
// adds. A non-empty requester turns it into a point query with cross-shard
// early exit. Shard failures are recorded in failed, never silently dropped.
// retain additionally merges every state the shards retired (not just the
// boundary exits) into visited, making it COMPLETE — required when the
// result seeds the audience cache, whose incremental maintenance reasons
// from state absence.
func (r *Router) sweepFrom(ctx context.Context, pathExpr, requester string, seeds []reachac.ShardState, visited map[reachac.ShardState]struct{}, retain bool) (sweepResult, error) {
	res := sweepResult{accepted: make(map[string]struct{}), visited: visited}
	r.scatter.Add(1)
	cancel := context.CancelFunc(func() {})
	if !r.local {
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	frontier := make(map[int][]reachac.ShardState, 1)
	for _, st := range seeds {
		visited[st] = struct{}{}
		idx := r.ring.Owner(st.Name)
		frontier[idx] = append(frontier[idx], st)
	}
	failed := make(map[int]struct{})

	type reply struct {
		idx  int
		resp reachac.ShardExpandResponse
		err  error
	}
	for len(frontier) > 0 && !res.found {
		r.expandRounds.Add(1)
		replies := make([]reply, 0, len(frontier))
		if r.local {
			// In-process backends: dispatch the round sequentially — no
			// goroutines, deadlines or cancellation plumbing to pay for.
			for idx, states := range frontier {
				if _, down := failed[idx]; down {
					continue
				}
				r.expandCalls.Add(1)
				resp, err := r.backends[idx].Expand(ctx, reachac.ShardExpandRequest{
					Path:      pathExpr,
					Shards:    len(r.backends),
					VNodes:    r.cfg.VNodes,
					Self:      idx,
					States:    states,
					Requester: requester,
					Retired:   retain,
				})
				replies = append(replies, reply{idx: idx, resp: resp, err: err})
				if err == nil && resp.Found {
					break // point query answered
				}
			}
		} else {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for idx, states := range frontier {
				if _, down := failed[idx]; down {
					continue // don't re-dial a shard that already failed this sweep
				}
				wg.Add(1)
				r.expandCalls.Add(1)
				go func(idx int, states []reachac.ShardState) {
					defer wg.Done()
					var resp reachac.ShardExpandResponse
					err := r.call(ctx, idx, func(ctx context.Context, b Backend) error {
						var e error
						resp, e = b.Expand(ctx, reachac.ShardExpandRequest{
							Path:      pathExpr,
							Shards:    len(r.backends),
							VNodes:    r.cfg.VNodes,
							Self:      idx,
							States:    states,
							Requester: requester,
							Retired:   retain,
						})
						return e
					})
					mu.Lock()
					replies = append(replies, reply{idx: idx, resp: resp, err: err})
					mu.Unlock()
					if err == nil && resp.Found {
						cancel() // point query answered: stop sibling dispatches
					}
				}(idx, states)
			}
			wg.Wait()
		}

		for _, rep := range replies {
			if rep.err == nil && rep.resp.Found {
				res.found = true
			}
		}
		next := make(map[int][]reachac.ShardState)
		for _, rep := range replies {
			if rep.err != nil {
				if !res.found {
					// When a sibling found the requester it cancelled this
					// call — that is an answer, not a shard failure.
					failed[rep.idx] = struct{}{}
				}
				continue
			}
			for _, name := range rep.resp.Accepted {
				res.accepted[name] = struct{}{}
			}
			for _, st := range rep.resp.Exits {
				if _, dup := visited[st]; dup {
					continue
				}
				visited[st] = struct{}{}
				owner := r.ring.Owner(st.Name)
				next[owner] = append(next[owner], st)
			}
		}
		// Merge the complete retired sets only AFTER the exits formed the next
		// frontier: a shard's exits are a subset of its retired states, so
		// merging first would mark them visited and stall the sweep.
		for _, rep := range replies {
			if rep.err != nil {
				continue
			}
			for _, st := range rep.resp.Retired {
				visited[st] = struct{}{}
			}
		}
		frontier = next
	}

	for idx := range failed {
		res.failed = append(res.failed, idx)
	}
	sort.Ints(res.failed)
	return res, nil
}

// condAudience returns the member-name set one condition reaches from
// owner, through the router's incrementally-maintained cache: a cached
// entry is kept correct by audienceDelta as edges change, so a hit needs no
// validation at all. Partial results (failed non-empty) are NEVER cached,
// and neither is a sweep that raced a mutation of one of its labels (the
// epoch check below) — such a sweep may have missed the concurrent delta
// AND the delta's maintenance scan, so dropping it is the only safe move.
func (r *Router) condAudience(ctx context.Context, owner string, cond parsedCond) (map[string]struct{}, []int, error) {
	key := owner + "\x00" + cond.expr
	caching := r.cfg.AudienceCacheEntries > 0
	var epochs map[string]uint64
	if caching {
		r.amu.Lock()
		if e := r.audCache[key]; e != nil {
			m := e.members
			r.amu.Unlock()
			r.audHits.Add(1)
			return m, nil, nil
		}
		epochs = make(map[string]uint64, len(cond.labels))
		for _, l := range cond.labels {
			epochs[l] = r.labelEpoch[l]
		}
		r.amu.Unlock()
		r.audMisses.Add(1)
	}
	res, err := r.sweep(ctx, owner, cond.expr, "", caching)
	if err != nil {
		return nil, nil, err
	}
	if len(res.failed) > 0 {
		return res.accepted, res.failed, nil
	}
	if caching {
		r.amu.Lock()
		stale := false
		for l, ep := range epochs {
			if r.labelEpoch[l] != ep {
				stale = true
				break
			}
		}
		if !stale {
			if len(r.audCache) >= r.cfg.AudienceCacheEntries {
				for k := range r.audCache { // evict an arbitrary entry
					delete(r.audCache, k)
					break
				}
			}
			r.audCache[key] = &audEntry{
				owner:   owner,
				expr:    cond.expr,
				path:    cond.path,
				labels:  cond.labels,
				members: res.accepted,
				visited: res.visited,
			}
		}
		r.amu.Unlock()
	}
	return res.accepted, nil, nil
}

// delegate reports whether (and where) a query on this policy can be
// answered whole by one shard: always with a single backend, and for
// depth-1-only policies, whose every condition is decidable from the
// resource owner's complete local adjacency.
func (r *Router) delegate(pol *resourcePolicy) (int, bool) {
	if len(r.backends) == 1 {
		return 0, true
	}
	if pol != nil && pol.depth1 {
		return r.ring.Owner(pol.owner), true
	}
	return 0, false
}

// Check decides one access request. Co-locatable queries delegate to the
// owning shard (its native engine, decision cache and audit trail); the
// rest scatter: each rule condition becomes a distributed audience the
// requester is tested against, with results cached under per-label epochs.
// A shard failure on the scatter path fails the check CLOSED.
func (r *Router) Check(ctx context.Context, resource, requester string) (httpapi.Decision, error) {
	pol := r.policyFor(resource)
	if idx, ok := r.delegate(pol); ok {
		r.fastPath.Add(1)
		var d httpapi.Decision
		err := r.call(ctx, idx, func(ctx context.Context, b Backend) error {
			var e error
			d, e = b.Check(ctx, resource, requester)
			return e
		})
		if err = classify(err); errors.Is(err, ErrShardUnavailable) {
			r.failedClosed.Add(1)
		}
		return d, err
	}
	r.scatter.Add(1)
	if missing, err := r.resolveUsers(ctx, []string{requester}); err != nil {
		return httpapi.Decision{}, err
	} else if len(missing) > 0 {
		return httpapi.Decision{}, fmt.Errorf("user %q: %w", requester, reachac.ErrUnknownUser)
	}
	d, err := r.decide(ctx, pol, resource, requester)
	if err != nil {
		return httpapi.Decision{}, err
	}
	r.record(d)
	return d, nil
}

// decide evaluates the policy for one requester using distributed condition
// audiences; the caller has already resolved the requester's existence.
// Reasons mirror core.Engine.Decide so sharded and single-node deployments
// explain themselves identically.
func (r *Router) decide(ctx context.Context, pol *resourcePolicy, resource, requester string) (httpapi.Decision, error) {
	d := httpapi.Decision{Resource: resource, Requester: requester, Effect: "deny"}
	if pol == nil {
		d.Reason = "unknown resource"
		return d, nil
	}
	if requester == pol.owner {
		d.Effect = "allow"
		d.Rule = "owner"
		d.Reason = "requester owns the resource"
		return d, nil
	}
	for _, rule := range pol.rules {
		valid := true
		for _, cond := range rule.conds {
			members, failedShards, err := r.condAudience(ctx, pol.owner, cond)
			if err != nil {
				return httpapi.Decision{}, err
			}
			if len(failedShards) > 0 {
				r.failedClosed.Add(1)
				return httpapi.Decision{}, fmt.Errorf("%w: shards %v unreachable evaluating rule %q", ErrShardUnavailable, failedShards, rule.id)
			}
			if _, ok := members[requester]; !ok {
				valid = false
				break
			}
		}
		if valid {
			d.Effect = "allow"
			d.Rule = rule.id
			d.Reason = fmt.Sprintf("all conditions of rule %q satisfied", rule.id)
			return d, nil
		}
	}
	d.Reason = "no access rule satisfied"
	return d, nil
}

// CheckBatch decides one resource for many requesters. Any unknown
// requester fails the whole batch (matching the single-node server); any
// unreachable shard fails it closed.
func (r *Router) CheckBatch(ctx context.Context, resource string, requesters []string) ([]httpapi.Decision, error) {
	pol := r.policyFor(resource)
	if idx, ok := r.delegate(pol); ok {
		r.fastPath.Add(1)
		var ds []httpapi.Decision
		err := r.call(ctx, idx, func(ctx context.Context, b Backend) error {
			var e error
			ds, e = b.CheckBatch(ctx, resource, requesters)
			return e
		})
		if err = classify(err); errors.Is(err, ErrShardUnavailable) {
			r.failedClosed.Add(1)
		}
		return ds, err
	}
	r.scatter.Add(1)
	if missing, err := r.resolveUsers(ctx, requesters); err != nil {
		return nil, err
	} else if len(missing) > 0 {
		return nil, fmt.Errorf("user %q: %w", missing[0], reachac.ErrUnknownUser)
	}
	out := make([]httpapi.Decision, len(requesters))
	for i, req := range requesters {
		d, err := r.decide(ctx, pol, resource, req)
		if err != nil {
			return nil, err
		}
		r.record(d)
		out[i] = d
	}
	return out, nil
}

// Audience enumerates the members the resource's rules admit:
// ∪_rules ∩_conditions of distributed condition audiences, excluding the
// owner, sorted by name. Unreachable shards degrade the answer to a partial
// (under-approximate) set, reported via the returned shard indexes — the
// caller surfaces them (X-Shard-Partial) rather than failing reads outright.
func (r *Router) Audience(ctx context.Context, resource string) ([]string, []int, error) {
	pol := r.policyFor(resource)
	if pol == nil {
		return nil, nil, fmt.Errorf("audience of %q: %w", resource, reachac.ErrUnknownResource)
	}
	if idx, ok := r.delegate(pol); ok {
		r.fastPath.Add(1)
		var names []string
		err := r.call(ctx, idx, func(ctx context.Context, b Backend) error {
			var e error
			names, e = b.Audience(ctx, resource)
			return e
		})
		return names, nil, classify(err)
	}
	r.scatter.Add(1)
	union := make(map[string]struct{})
	failed := make(map[int]struct{})
	for _, rule := range pol.rules {
		var inter map[string]struct{}
		short := false
		for ci, cond := range rule.conds {
			members, failedShards, err := r.condAudience(ctx, pol.owner, cond)
			if err != nil {
				return nil, nil, err
			}
			for _, idx := range failedShards {
				failed[idx] = struct{}{}
			}
			if ci == 0 {
				inter = members
			} else {
				nx := make(map[string]struct{})
				for m := range inter {
					if _, ok := members[m]; ok {
						nx[m] = struct{}{}
					}
				}
				inter = nx
			}
			if len(inter) == 0 {
				short = true
				break
			}
		}
		if !short {
			for m := range inter {
				union[m] = struct{}{}
			}
		}
	}
	delete(union, pol.owner)
	names := make([]string, 0, len(union))
	for m := range union {
		names = append(names, m)
	}
	sort.Strings(names)
	partial := make([]int, 0, len(failed))
	for idx := range failed {
		partial = append(partial, idx)
	}
	sort.Ints(partial)
	if len(partial) > 0 {
		r.partial.Add(1)
	}
	return names, partial, nil
}

// Reach answers a raw point reachability query (does a path matching expr
// lead from owner to requester?) with cross-shard early exit. A positive
// answer stands even if some shard failed; an incomplete negative fails
// closed.
func (r *Router) Reach(ctx context.Context, owner, requester, expr string) (bool, error) {
	canonical, err := reachac.ParsePath(expr)
	if err != nil {
		return false, err
	}
	if missing, err := r.resolveUsers(ctx, []string{owner, requester}); err != nil {
		return false, err
	} else if len(missing) > 0 {
		return false, fmt.Errorf("user %q: %w", missing[0], reachac.ErrUnknownUser)
	}
	res, err := r.sweep(ctx, owner, canonical, requester, false)
	if err != nil {
		return false, err
	}
	if res.found {
		return true, nil
	}
	if len(res.failed) > 0 {
		r.failedClosed.Add(1)
		return false, fmt.Errorf("%w: shards %v unreachable", ErrShardUnavailable, res.failed)
	}
	return false, nil
}

// ReachAudience enumerates every member expr reaches from owner, excluding
// the owner, sorted by name; unreachable shards degrade it to a flagged
// partial answer like Audience.
func (r *Router) ReachAudience(ctx context.Context, owner, expr string) ([]string, []int, error) {
	canonical, err := reachac.ParsePath(expr)
	if err != nil {
		return nil, nil, err
	}
	if missing, err := r.resolveUsers(ctx, []string{owner}); err != nil {
		return nil, nil, err
	} else if len(missing) > 0 {
		return nil, nil, fmt.Errorf("user %q: %w", owner, reachac.ErrUnknownUser)
	}
	res, err := r.sweep(ctx, owner, canonical, "", false)
	if err != nil {
		return nil, nil, err
	}
	delete(res.accepted, owner)
	names := make([]string, 0, len(res.accepted))
	for m := range res.accepted {
		names = append(names, m)
	}
	sort.Strings(names)
	if len(res.failed) > 0 {
		r.partial.Add(1)
	}
	return names, res.failed, nil
}
