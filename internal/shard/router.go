package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reachac"
	"reachac/internal/httpapi"
	"reachac/internal/pathexpr"
	"reachac/internal/ring"
)

// ErrShardUnavailable marks a decision the router refused because a shard it
// needed did not answer. Checks FAIL CLOSED on it: granting access because
// the shard holding the denying evidence was down would be an outage turning
// into a breach. The HTTP layer maps it to 503 + CodeShardUnavailable.
var ErrShardUnavailable = errors.New("shard unavailable")

// ErrUnsupported marks an operation the router cannot offer (SetPolicies:
// the serialization embeds shard-local IDs).
var ErrUnsupported = errors.New("operation not supported by the shard router")

// Config tunes the router; the zero value selects the defaults.
type Config struct {
	// VNodes is the virtual-node count per shard (default ring.DefaultVNodes).
	// Every router and acbench run against the same shard set must agree.
	VNodes int
	// Concurrency bounds in-flight backend calls per scatter (default
	// 2×shards, min 4).
	Concurrency int
	// ShardTimeout is the per-shard deadline on scatter calls (default 2s).
	ShardTimeout time.Duration
	// AudienceCacheEntries caps the condition-audience cache (default 4096;
	// negative disables caching).
	AudienceCacheEntries int
	// AuditLimit bounds the router's own decision trail (default 1024).
	// Delegated (fast-path) checks audit on the shard that decided them.
	AuditLimit int
}

func (c Config) withDefaults(shards int) Config {
	if c.VNodes <= 0 {
		c.VNodes = ring.DefaultVNodes
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2 * shards
		if c.Concurrency < 4 {
			c.Concurrency = 4
		}
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.AudienceCacheEntries == 0 {
		c.AudienceCacheEntries = 4096
	}
	if c.AuditLimit <= 0 {
		c.AuditLimit = 1024
	}
	return c
}

// parsedCond is one rule condition in router form.
type parsedCond struct {
	expr   string // canonical — the audience-cache key component
	path   *pathexpr.Path
	labels []string
}

type routedRule struct {
	id    string
	conds []parsedCond
}

// resourcePolicy is the router's view of one resource: enough to route
// (owner name → owning shard), to detect cross-shard ownership conflicts,
// and to evaluate scatter checks without re-fetching rules per query.
type resourcePolicy struct {
	owner string
	rules []routedRule
	// depth1 reports every condition of every rule is a single [1,1] step:
	// the owner shard's complete local adjacency answers such policies
	// exactly, so the whole query delegates (single-shard fast path).
	depth1 bool
}

// Router scatters the acserverd API across shard backends. Safe for
// concurrent use. Create with New, release with Close.
type Router struct {
	backends []Backend
	ring     *ring.Ring
	cfg      Config
	sem      chan struct{}

	// pmu guards the policy routing cache (resource name → policy).
	pmu      sync.RWMutex
	policies map[string]*resourcePolicy

	// kmu guards the known-user set: names the router has created or
	// resolved. Users are never deleted, so membership is stable; misses
	// fall back to a shard resolve.
	kmu   sync.RWMutex
	known map[string]struct{}

	// amu guards the condition-audience cache and the per-label epochs.
	// Entries are maintained INCREMENTALLY under edge deltas (see
	// maintain.go); the epochs only discard sweeps that raced a mutation at
	// insert time. mmu serializes the maintenance itself, so two concurrent
	// mutations never extend the same entry's visited set at once.
	amu        sync.Mutex
	labelEpoch map[string]uint64
	audCache   map[string]*audEntry
	mmu        sync.Mutex

	// local is true when every backend is embedded: calls then skip the
	// scatter semaphore, per-shard deadlines and goroutine fan-out — an
	// in-process function call needs none of that machinery.
	local bool

	// tmu guards the router-local audit trail of scatter-decided checks —
	// a ring buffer of the last AuditLimit decisions (tpos is the next
	// write slot once the buffer is full).
	tmu   sync.Mutex
	trail []httpapi.Decision
	tpos  int

	fastPath       atomic.Uint64
	scatter        atomic.Uint64
	expandCalls    atomic.Uint64
	expandRounds   atomic.Uint64
	boundaryEdges  atomic.Uint64
	localEdges     atomic.Uint64
	audHits        atomic.Uint64
	audMisses      atomic.Uint64
	audExtends     atomic.Uint64
	audInvalidates atomic.Uint64
	partial        atomic.Uint64
	failedClosed   atomic.Uint64
}

// audEntry is one cached condition audience. members is swapped wholesale
// under amu (copy-on-write: readers keep using the map they were handed);
// visited is the complete state set of the sweep that built the entry,
// mutated only by the maintenance path under mmu.
type audEntry struct {
	owner   string
	expr    string
	path    *pathexpr.Path
	labels  []string
	members map[string]struct{}
	visited map[reachac.ShardState]struct{}
}

func (e *audEntry) usesLabel(label string) bool {
	for _, l := range e.labels {
		if l == label {
			return true
		}
	}
	return false
}

// New builds a router over backends, rebuilding the policy routing cache
// from each shard's name-keyed dump (so a router restarted over populated
// shards routes correctly from the first request).
func New(ctx context.Context, backends []Backend, cfg Config) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("shard: need at least one backend")
	}
	cfg = cfg.withDefaults(len(backends))
	rg, err := ring.New(len(backends), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		backends:   backends,
		ring:       rg,
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.Concurrency),
		policies:   make(map[string]*resourcePolicy),
		known:      make(map[string]struct{}),
		labelEpoch: make(map[string]uint64),
		audCache:   make(map[string]*audEntry),
	}
	r.local = true
	for _, b := range backends {
		if _, ok := b.(*Embedded); !ok {
			r.local = false
			break
		}
	}
	for i, b := range backends {
		cctx, cancel := context.WithTimeout(ctx, cfg.ShardTimeout)
		pols, err := b.Policies(cctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("shard: loading policies from shard %d: %w", i, err)
		}
		for _, p := range pols {
			rp := newPolicy(p.Owner)
			for _, rule := range p.Rules {
				if err := rp.addRule(rule.ID, rule.Paths); err != nil {
					return nil, fmt.Errorf("shard: policy for %q from shard %d: %w", p.Resource, i, err)
				}
			}
			if prev, ok := r.policies[p.Resource]; ok && prev.owner != p.Owner {
				return nil, fmt.Errorf("shard: resource %q owned by %q on one shard and %q on another", p.Resource, prev.owner, p.Owner)
			}
			r.policies[p.Resource] = rp
		}
	}
	return r, nil
}

// newPolicy builds a resourcePolicy for owner with no rules yet (the empty
// rule set is trivially depth-1: it delegates, and the shard denies).
func newPolicy(owner string) *resourcePolicy {
	return &resourcePolicy{owner: owner, depth1: true}
}

// addRule parses and appends one rule, updating the depth-1 classification.
func (rp *resourcePolicy) addRule(id string, paths []string) error {
	rule := routedRule{id: id}
	for _, raw := range paths {
		p, err := pathexpr.Parse(raw)
		if err != nil {
			return err
		}
		cond := parsedCond{expr: p.String(), path: p}
		seen := make(map[string]struct{}, len(p.Steps))
		for _, st := range p.Steps {
			if _, dup := seen[st.Label]; !dup {
				seen[st.Label] = struct{}{}
				cond.labels = append(cond.labels, st.Label)
			}
			if st.Unbounded || st.MinDepth != 1 || st.MaxDepth != 1 || len(p.Steps) != 1 {
				rp.depth1 = false
			}
		}
		rule.conds = append(rule.conds, cond)
	}
	rp.rules = append(rp.rules, rule)
	return nil
}

// clone returns a copy safe to mutate while readers hold the old one.
func (rp *resourcePolicy) clone() *resourcePolicy {
	cp := &resourcePolicy{owner: rp.owner, depth1: rp.depth1}
	cp.rules = append(cp.rules, rp.rules...)
	return cp
}

// Shards returns the backend count.
func (r *Router) Shards() int { return len(r.backends) }

// Owner returns the shard index owning name — exposed for tests and the CI
// smoke script's placement assertions (via acshardd logs).
func (r *Router) Owner(name string) int { return r.ring.Owner(name) }

// Close releases every backend, returning the first error.
func (r *Router) Close() error {
	var first error
	for _, b := range r.backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *Router) policyFor(resource string) *resourcePolicy {
	r.pmu.RLock()
	defer r.pmu.RUnlock()
	return r.policies[resource]
}

// call runs fn against backend i under the scatter semaphore and the
// per-shard deadline; all-embedded routers dispatch directly.
func (r *Router) call(ctx context.Context, i int, fn func(ctx context.Context, b Backend) error) error {
	if r.local {
		return fn(ctx, r.backends[i])
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-r.sem }()
	cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	return fn(cctx, r.backends[i])
}

// fanOut runs fn on every listed shard concurrently and returns the
// per-shard errors, index-aligned with idxs.
func (r *Router) fanOut(ctx context.Context, idxs []int, fn func(ctx context.Context, i int, b Backend) error) []error {
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for k, i := range idxs {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			errs[k] = r.call(ctx, i, func(ctx context.Context, b Backend) error { return fn(ctx, i, b) })
		}(k, i)
	}
	wg.Wait()
	return errs
}

func allShards(n int) []int {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}

// --- mutations ---

// AddUser replicates the member (with attributes) to EVERY shard, so any
// shard can resolve names and evaluate predicates. The returned ID is the
// OWNER shard's (IDs are shard-local). A name already present everywhere is
// a duplicate; present somewhere is a healed partial write.
func (r *Router) AddUser(ctx context.Context, name string, attrs map[string]any) (uint32, error) {
	ownerShard := r.ring.Owner(name)
	ids := make([]uint32, len(r.backends))
	errs := r.fanOut(ctx, allShards(len(r.backends)), func(ctx context.Context, i int, b Backend) error {
		id, err := b.AddUser(ctx, name, attrs)
		ids[i] = id
		return err
	})
	dups, succ := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			succ++
		case errors.Is(err, reachac.ErrDuplicateUser):
			dups++
		default:
			return 0, err
		}
	}
	if succ == 0 && dups == len(r.backends) {
		return 0, fmt.Errorf("user %q: %w", name, reachac.ErrDuplicateUser)
	}
	r.kmu.Lock()
	r.known[name] = struct{}{}
	r.kmu.Unlock()
	if errs[ownerShard] == nil {
		return ids[ownerShard], nil
	}
	// The owner shard already had the user (healed write): fetch its ID.
	var id uint32
	err := r.call(ctx, ownerShard, func(ctx context.Context, b Backend) error {
		var e error
		id, e = b.UserID(ctx, name)
		return e
	})
	return id, err
}

// UserID resolves a name on its owner shard.
func (r *Router) UserID(ctx context.Context, name string) (uint32, error) {
	var id uint32
	err := r.call(ctx, r.ring.Owner(name), func(ctx context.Context, b Backend) error {
		var e error
		id, e = b.UserID(ctx, name)
		return e
	})
	if err == nil {
		r.kmu.Lock()
		r.known[name] = struct{}{}
		r.kmu.Unlock()
	}
	return id, err
}

// Relate writes the relationship to the shard owning each endpoint —
// boundary-node replication when they differ, so both owners keep complete
// adjacency for their node. Mutual adds both directions atomically per
// shard. A duplicate on one shard alongside success on the other heals a
// prior partial write; a real failure rolls the success back (best effort).
func (r *Router) Relate(ctx context.Context, from, to, relType string, mutual bool) error {
	targets := r.edgeTargets(from, to)
	errs := r.fanOut(ctx, targets, func(ctx context.Context, i int, b Backend) error {
		return b.Relate(ctx, from, to, relType, mutual)
	})
	dups, succ := 0, 0
	var hard error
	for _, err := range errs {
		switch {
		case err == nil:
			succ++
		case errors.Is(err, reachac.ErrDuplicateRelationship):
			dups++
			if hard == nil {
				hard = err
			}
		default:
			hard = err
		}
	}
	if succ > 0 && dups == len(targets)-succ {
		// Full or healing success: every non-success was a duplicate.
		r.audienceDelta(ctx, from, to, relType, mutual, true)
		return nil
	}
	if succ == 0 && dups == len(targets) {
		return hard // duplicate everywhere: a true duplicate
	}
	if succ > 0 {
		// Partial write with a real failure: undo the applied side so the
		// shards stay consistent. Best effort — a crash between the two
		// writes leaves a half-written edge that the next Relate heals.
		for k, i := range targets {
			if errs[k] != nil {
				continue
			}
			_ = r.call(ctx, i, func(ctx context.Context, b Backend) error {
				err := b.Unrelate(ctx, from, to, relType)
				if mutual {
					if e := b.Unrelate(ctx, to, from, relType); err == nil {
						err = e
					}
				}
				return err
			})
		}
	}
	return hard
}

// Unrelate removes the relationship from both endpoint owners. Unknown on
// one shard alongside success on the other heals a prior partial write.
func (r *Router) Unrelate(ctx context.Context, from, to, relType string) error {
	targets := r.edgeTargets(from, to)
	errs := r.fanOut(ctx, targets, func(ctx context.Context, i int, b Backend) error {
		return b.Unrelate(ctx, from, to, relType)
	})
	unknown, succ := 0, 0
	var hard error
	for _, err := range errs {
		switch {
		case err == nil:
			succ++
		case errors.Is(err, reachac.ErrUnknownRelationship):
			unknown++
			if hard == nil {
				hard = err
			}
		default:
			hard = err
		}
	}
	if succ > 0 && unknown == len(targets)-succ {
		r.audienceDelta(ctx, from, to, relType, false, false)
		return nil
	}
	return hard
}

// edgeTargets returns the distinct owner shards of an edge's endpoints and
// counts the placement (local vs boundary).
func (r *Router) edgeTargets(from, to string) []int {
	a, b := r.ring.Owner(from), r.ring.Owner(to)
	if a == b {
		r.localEdges.Add(1)
		return []int{a}
	}
	r.boundaryEdges.Add(1)
	return []int{a, b}
}

// Share routes the rule to the shard owning the resource owner's name,
// guarding cross-shard ownership conflicts with the router's policy cache
// (each shard alone only sees its own registrations).
func (r *Router) Share(ctx context.Context, resource, owner string, paths []string) (string, error) {
	r.pmu.Lock()
	if prev, ok := r.policies[resource]; ok && prev.owner != owner {
		r.pmu.Unlock()
		return "", fmt.Errorf("resource %q: %w", resource, reachac.ErrResourceOwned)
	}
	r.pmu.Unlock()
	var rule string
	err := r.call(ctx, r.ring.Owner(owner), func(ctx context.Context, b Backend) error {
		var e error
		rule, e = b.Share(ctx, resource, owner, paths)
		return e
	})
	if err != nil {
		return "", err
	}
	r.pmu.Lock()
	defer r.pmu.Unlock()
	rp := r.policies[resource]
	if rp == nil {
		rp = newPolicy(owner)
	} else {
		rp = rp.clone()
	}
	if err := rp.addRule(rule, paths); err != nil {
		return rule, err
	}
	r.policies[resource] = rp
	return rule, nil
}

// Revoke routes to the policy's owner shard; an unregistered resource (or
// unknown rule) reports removed=false, matching the facade.
func (r *Router) Revoke(ctx context.Context, resource, rule string) (bool, error) {
	pol := r.policyFor(resource)
	if pol == nil {
		return false, nil
	}
	var removed bool
	err := r.call(ctx, r.ring.Owner(pol.owner), func(ctx context.Context, b Backend) error {
		var e error
		removed, e = b.Revoke(ctx, resource, rule)
		return e
	})
	if err != nil || !removed {
		return removed, err
	}
	r.pmu.Lock()
	defer r.pmu.Unlock()
	if rp := r.policies[resource]; rp != nil {
		cp := rp.clone()
		cp.rules = cp.rules[:0:0]
		cp.depth1 = true
		for _, ru := range rp.rules {
			if ru.id == rule {
				continue
			}
			cp.rules = append(cp.rules, ru)
			for _, c := range ru.conds {
				if len(c.path.Steps) != 1 || c.path.Steps[0].Unbounded ||
					c.path.Steps[0].MinDepth != 1 || c.path.Steps[0].MaxDepth != 1 {
					cp.depth1 = false
				}
			}
		}
		r.policies[resource] = cp
	}
	return removed, nil
}

// --- stats, audit, health ---

func (r *Router) record(d httpapi.Decision) {
	r.tmu.Lock()
	if len(r.trail) < r.cfg.AuditLimit {
		r.trail = append(r.trail, d)
	} else {
		r.trail[r.tpos] = d
		r.tpos = (r.tpos + 1) % r.cfg.AuditLimit
	}
	r.tmu.Unlock()
}

// Audit returns the router's own decision trail (scatter-decided checks;
// delegated checks audit on the shard that decided them), oldest first,
// bounded to the last n when n > 0.
func (r *Router) Audit(n int) []httpapi.Decision {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	out := make([]httpapi.Decision, 0, len(r.trail))
	out = append(out, r.trail[r.tpos:]...)
	out = append(out, r.trail[:r.tpos]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// RouterStats snapshots the routing counters.
func (r *Router) RouterStats() httpapi.RouterStats {
	return httpapi.RouterStats{
		Shards:                  len(r.backends),
		VNodes:                  r.cfg.VNodes,
		FastPath:                r.fastPath.Load(),
		Scatter:                 r.scatter.Load(),
		ExpandCalls:             r.expandCalls.Load(),
		ExpandRounds:            r.expandRounds.Load(),
		BoundaryEdges:           r.boundaryEdges.Load(),
		LocalEdges:              r.localEdges.Load(),
		AudienceCacheHits:       r.audHits.Load(),
		AudienceCacheMisses:     r.audMisses.Load(),
		AudienceCacheExtends:    r.audExtends.Load(),
		AudienceCacheInvalidate: r.audInvalidates.Load(),
		Partial:                 r.partial.Load(),
		FailedClosed:            r.failedClosed.Load(),
	}
}

// Stats aggregates engine counters across shards (sums of per-shard work;
// Users from shard 0, where every user is replicated; Resources from the
// policy cache) plus per-shard summaries and the routing counters.
func (r *Router) Stats(ctx context.Context) httpapi.StatsResponse {
	per := make([]httpapi.StatsResponse, len(r.backends))
	errs := r.fanOut(ctx, allShards(len(r.backends)), func(ctx context.Context, i int, b Backend) error {
		st, err := b.Stats(ctx)
		per[i] = st
		return err
	})
	var agg reachac.Stats
	shardStats := make([]httpapi.ShardStats, len(r.backends))
	for i, st := range per {
		shardStats[i] = httpapi.ShardStats{
			Index:         i,
			Engine:        st.Engine,
			Users:         st.Users,
			Relationships: st.Relationships,
			Healthy:       errs[i] == nil,
		}
		agg.Checks += st.Checks
		agg.BatchChecks += st.BatchChecks
		agg.Audiences += st.Audiences
		agg.Mutations += st.Mutations
		agg.Batches += st.Batches
		agg.Republications += st.Republications
		agg.DecisionCacheHits += st.DecisionCacheHits
		agg.DecisionCacheMisses += st.DecisionCacheMisses
		agg.DecisionCacheEvictions += st.DecisionCacheEvictions
		agg.Checkpoints += st.Checkpoints
		agg.CheckpointsSkipped += st.CheckpointsSkipped
		agg.WALAppends += st.WALAppends
		agg.WALFsyncs += st.WALFsyncs
		agg.Relationships += st.Relationships
	}
	if errs[0] == nil {
		agg.Users = per[0].Users
		agg.Engine = per[0].Engine
		agg.Durable = per[0].Durable
	}
	r.pmu.RLock()
	agg.Resources = len(r.policies)
	r.pmu.RUnlock()
	agg.AuditRetained = len(r.Audit(0))
	rs := r.RouterStats()
	return httpapi.StatsResponse{Stats: agg, Router: &rs, ShardStats: shardStats}
}

// Health reports router liveness: ok while every shard answers, degraded
// otherwise (reads may be partial, checks touching lost shards fail closed).
func (r *Router) Health(ctx context.Context) httpapi.HealthResponse {
	st := r.Stats(ctx)
	resp := httpapi.HealthResponse{
		Status:        "ok",
		Role:          "router",
		Engine:        st.Engine,
		Durable:       st.Durable,
		Users:         st.Users,
		Relationships: st.Relationships,
	}
	for _, s := range st.ShardStats {
		if !s.Healthy {
			resp.Status = "degraded"
		}
	}
	return resp
}

// resolveUsers reports which of names exist, consulting the known-user set
// first and falling back to one shard resolve for the rest (any shard can
// answer: users are replicated everywhere).
func (r *Router) resolveUsers(ctx context.Context, names []string) (missing []string, err error) {
	var unknown []string
	r.kmu.RLock()
	for _, name := range names {
		if _, ok := r.known[name]; !ok {
			unknown = append(unknown, name)
		}
	}
	r.kmu.RUnlock()
	if len(unknown) == 0 {
		return nil, nil
	}
	sort.Strings(unknown)
	unknown = dedupSorted(unknown)
	var resp reachac.ShardExpandResponse
	cerr := r.call(ctx, r.ring.Owner(unknown[0]), func(ctx context.Context, b Backend) error {
		var e error
		resp, e = b.Expand(ctx, reachac.ShardExpandRequest{
			Shards: len(r.backends), VNodes: r.cfg.VNodes, Self: r.ring.Owner(unknown[0]),
			Resolve: unknown,
		})
		return e
	})
	if cerr != nil {
		r.failedClosed.Add(1)
		return nil, fmt.Errorf("%w: resolving users: %v", ErrShardUnavailable, cerr)
	}
	miss := make(map[string]struct{}, len(resp.Missing))
	for _, m := range resp.Missing {
		miss[m] = struct{}{}
	}
	r.kmu.Lock()
	for _, name := range unknown {
		if _, bad := miss[name]; !bad {
			r.known[name] = struct{}{}
		}
	}
	r.kmu.Unlock()
	return resp.Missing, nil
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
