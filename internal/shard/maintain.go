package shard

import (
	"context"

	"reachac"
	"reachac/internal/pathexpr"
)

// Incremental condition-audience maintenance.
//
// Every cached audience keeps the COMPLETE visited-state set of the sweep
// that built it: (name, step, d) states the distributed search retired. That
// set is what makes edge deltas cheap to reason about:
//
//   - An added edge whose traversal source was never visited at a step
//     matching its label cannot extend any partial path the sweep found —
//     the entry is untouched.
//   - An added edge whose source WAS visited extends the entry in place:
//     for predicate-free steps the router computes the post-edge states
//     itself (often just a new member, no shard traffic at all) and resumes
//     the sweep only for states it has not yet retired; predicate steps
//     re-expand the source state on its shard, which owns the attributes.
//   - A removed edge invalidates an entry only when its source was visited
//     at a consumable state — i.e. the sweep may actually have traversed it.
//     Entries the search never came near survive removals of their label.
//
// This replaces wholesale per-label epoch invalidation on the hot path; the
// label epochs remain solely to discard sweeps that raced a mutation at
// insert time (see condAudience).

// maxScanDepth bounds the per-step depth enumeration of the delta scan. A
// bounded step deeper than this is cheaper to invalidate than to scan.
const maxScanDepth = 16

func stepDKey(st *pathexpr.Step, d int) int {
	if st.Unbounded && d > st.MinDepth {
		return st.MinDepth
	}
	return d
}

func stepMayClose(st *pathexpr.Step, d int) bool { return d >= st.MinDepth }

func stepMayContinue(st *pathexpr.Step, d int) bool { return st.Unbounded || d < st.MaxDepth }

type deltaVerdict int

const (
	deltaNone deltaVerdict = iota
	deltaInvalidate
	deltaExtend
)

// deltaPlan is what one edge delta means for one cached entry: nothing, a
// drop, or an extension (new members decided router-side plus sweep seeds).
type deltaPlan struct {
	verdict deltaVerdict
	seeds   []reachac.ShardState
	members []string
}

func (p *deltaPlan) addSeed(st reachac.ShardState) {
	for _, s := range p.seeds {
		if s == st {
			return
		}
	}
	p.seeds = append(p.seeds, st)
}

func (p *deltaPlan) addMember(name string) {
	for _, m := range p.members {
		if m == name {
			return
		}
	}
	p.members = append(p.members, name)
}

// entryDelta classifies what the (un)relation of label between from and to
// means for e. Pure: reads e.visited and e.members, mutates nothing.
func entryDelta(e *audEntry, from, to, label string, mutual, added bool) deltaPlan {
	var plan deltaPlan
	edges := [2][2]string{{from, to}, {to, from}}
	nEdges := 1
	if mutual {
		nEdges = 2
	}
	steps := e.path.Steps
	last := len(steps) - 1
	for k := range steps {
		st := &steps[k]
		if st.Label != label {
			continue
		}
		if !st.Unbounded && st.MaxDepth > maxScanDepth {
			return deltaPlan{verdict: deltaInvalidate}
		}
		// Canonical depths a visited state can consume one more edge from:
		// bounded steps store d in [0,max-1], unbounded collapse to [0,min].
		maxDV := st.MaxDepth - 1
		if st.Unbounded {
			maxDV = st.MinDepth
		}
		for ei := 0; ei < nEdges; ei++ {
			var travs [2][2]string // {source, destination} per authorized orientation
			nt := 0
			if st.Dir == pathexpr.Out || st.Dir == pathexpr.Both {
				travs[nt] = edges[ei]
				nt++
			}
			if st.Dir == pathexpr.In || st.Dir == pathexpr.Both {
				travs[nt] = [2]string{edges[ei][1], edges[ei][0]}
				nt++
			}
			for ti := 0; ti < nt; ti++ {
				src, dst := travs[ti][0], travs[ti][1]
				for dv := 0; dv <= maxDV; dv++ {
					if _, ok := e.visited[reachac.ShardState{Name: src, Step: k, D: dv}]; !ok {
						continue
					}
					if !added {
						// The sweep may have traversed the removed edge: the
						// entry can no longer be trusted.
						return deltaPlan{verdict: deltaInvalidate}
					}
					plan.verdict = deltaExtend
					if len(st.Preds) > 0 {
						// Node predicates are evaluated on the shards, which
						// hold the attributes: re-expand the source state.
						plan.addSeed(reachac.ShardState{Name: src, Step: k, D: dv})
						continue
					}
					d := dv + 1
					if stepMayClose(st, d) {
						if k == last {
							if _, dup := e.members[dst]; !dup {
								plan.addMember(dst)
							}
						} else {
							ns := reachac.ShardState{Name: dst, Step: k + 1, D: 0}
							if _, dup := e.visited[ns]; !dup {
								plan.addSeed(ns)
							}
						}
					}
					if stepMayContinue(st, d) {
						ns := reachac.ShardState{Name: dst, Step: k, D: stepDKey(st, d)}
						if _, dup := e.visited[ns]; !dup {
							plan.addSeed(ns)
						}
					}
				}
			}
		}
	}
	return plan
}

// audienceDelta folds one applied edge delta into the audience cache: bump
// the label epoch (insert-time tear detection), drop entries the delta may
// have shrunk, extend entries it grew. Serialized by mmu so concurrent
// mutations never race on an entry's visited set.
func (r *Router) audienceDelta(ctx context.Context, from, to, label string, mutual, added bool) {
	if r.cfg.AudienceCacheEntries <= 0 {
		return
	}
	r.mmu.Lock()
	defer r.mmu.Unlock()
	type job struct {
		key  string
		e    *audEntry
		plan deltaPlan
	}
	var jobs []job
	r.amu.Lock()
	r.labelEpoch[label]++
	for key, e := range r.audCache {
		if !e.usesLabel(label) {
			continue
		}
		plan := entryDelta(e, from, to, label, mutual, added)
		switch plan.verdict {
		case deltaInvalidate:
			delete(r.audCache, key)
			r.audInvalidates.Add(1)
		case deltaExtend:
			jobs = append(jobs, job{key: key, e: e, plan: plan})
		}
	}
	r.amu.Unlock()
	for _, j := range jobs {
		r.extendEntry(ctx, j.key, j.e, j.plan)
	}
}

// extendEntry applies an extension plan: resume the entry's sweep from the
// unretired seeds (the entry's own visited set prunes re-exploration), then
// swap in a grown members map copy-on-write — readers hold the old map.
func (r *Router) extendEntry(ctx context.Context, key string, e *audEntry, plan deltaPlan) {
	var grown map[string]struct{}
	if len(plan.seeds) > 0 {
		res, err := r.sweepFrom(ctx, e.expr, "", plan.seeds, e.visited, true)
		if err != nil || len(res.failed) > 0 {
			// Can't complete the extension: the entry is no longer whole.
			r.amu.Lock()
			if r.audCache[key] == e {
				delete(r.audCache, key)
				r.audInvalidates.Add(1)
			}
			r.amu.Unlock()
			return
		}
		grown = res.accepted
	}
	r.audExtends.Add(1)
	if len(grown) == 0 && len(plan.members) == 0 {
		return // only the visited set grew
	}
	r.amu.Lock()
	if r.audCache[key] == e {
		nm := make(map[string]struct{}, len(e.members)+len(grown)+len(plan.members))
		for m := range e.members {
			nm[m] = struct{}{}
		}
		for m := range grown {
			nm[m] = struct{}{}
		}
		for _, m := range plan.members {
			nm[m] = struct{}{}
		}
		e.members = nm
	}
	r.amu.Unlock()
}
