package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"reachac"
	"reachac/internal/httpapi"
	"reachac/internal/shard"
)

// newTestServer mounts a router over n flaky shards behind the HTTP handler.
func newTestServer(t *testing.T, n int) (*httptest.Server, *shard.Router, []*flakyBackend) {
	t.Helper()
	flaky := make([]*flakyBackend, n)
	backends := make([]shard.Backend, n)
	for i := range backends {
		flaky[i] = &flakyBackend{inner: shard.NewEmbedded(reachac.New())}
		backends[i] = flaky[i]
	}
	r, err := shard.New(context.Background(), backends, shard.Config{})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	srv := httptest.NewServer(shard.NewHandler(r))
	t.Cleanup(func() { srv.Close(); r.Close() })
	return srv, r, flaky
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d", resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, want)
	}
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s response: %v", resp.Request.URL.Path, err)
	}
	return v
}

func TestHandlerEndToEnd(t *testing.T) {
	srv, _, _ := newTestServer(t, 2)
	base := srv.URL

	for i := 0; i < 6; i++ {
		resp := postJSON(t, base+httpapi.PathUsers, httpapi.AddUserRequest{Name: fmt.Sprintf("w%d", i)})
		wantStatus(t, resp, http.StatusCreated)
		resp.Body.Close()
	}
	// Missing name and duplicate creation are client errors, not 500s.
	resp := postJSON(t, base+httpapi.PathUsers, httpapi.AddUserRequest{})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
	resp = postJSON(t, base+httpapi.PathUsers, httpapi.AddUserRequest{Name: "w0"})
	wantStatus(t, resp, http.StatusConflict)
	if body := decodeJSON[httpapi.ErrorBody](t, resp); body.Code != httpapi.CodeDuplicateUser {
		t.Fatalf("duplicate user code = %q", body.Code)
	}

	get, err := http.Get(base + httpapi.PathUsers + "/w3")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, get, http.StatusOK)
	if u := decodeJSON[httpapi.UserResponse](t, get); u.Name != "w3" {
		t.Fatalf("GET user = %+v", u)
	}
	get, err = http.Get(base + httpapi.PathUsers + "/nobody")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, get, http.StatusNotFound)
	get.Body.Close()

	for _, e := range [][2]string{{"w0", "w1"}, {"w1", "w2"}, {"w2", "w3"}} {
		resp = postJSON(t, base+httpapi.PathRelationships, httpapi.RelateRequest{From: e[0], To: e[1], Type: "friend"})
		wantStatus(t, resp, http.StatusNoContent)
		resp.Body.Close()
	}
	resp = postJSON(t, base+httpapi.PathRelationships, httpapi.RelateRequest{From: "w0", To: "w1", Type: "friend"})
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()
	resp = postJSON(t, base+httpapi.PathRelationships, httpapi.RelateRequest{From: "w0"})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	resp = postJSON(t, base+httpapi.PathShare, httpapi.ShareRequest{Resource: "doc", Owner: "w0", Paths: []string{"friend+[1,3]"}})
	wantStatus(t, resp, http.StatusCreated)
	share := decodeJSON[httpapi.ShareResponse](t, resp)
	resp = postJSON(t, base+httpapi.PathShare, httpapi.ShareRequest{Resource: "doc2", Owner: "w0", Paths: []string{"not a path["}})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	check := func(requester string) httpapi.Decision {
		t.Helper()
		resp, err := http.Get(base + httpapi.PathCheck + "?resource=doc&requester=" + requester)
		if err != nil {
			t.Fatal(err)
		}
		wantStatus(t, resp, http.StatusOK)
		return decodeJSON[httpapi.Decision](t, resp)
	}
	if d := check("w3"); d.Effect != "allow" {
		t.Fatalf("check(w3) = %+v, want allow through the 3-hop chain", d)
	}
	if d := check("w5"); d.Effect != "deny" {
		t.Fatalf("check(w5) = %+v, want deny", d)
	}
	resp, err = http.Get(base + httpapi.PathCheck + "?resource=doc&requester=nobody")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusNotFound)
	resp.Body.Close()

	resp = postJSON(t, base+httpapi.PathCheckBatch, httpapi.CheckBatchRequest{Resource: "doc", Requesters: []string{"w1", "w5"}})
	wantStatus(t, resp, http.StatusOK)
	batch := decodeJSON[httpapi.CheckBatchResponse](t, resp)
	if len(batch.Decisions) != 2 || batch.Decisions[0].Effect != "allow" || batch.Decisions[1].Effect != "deny" {
		t.Fatalf("batch = %+v", batch.Decisions)
	}

	resp, err = http.Get(base + httpapi.PathAudience + "?resource=doc")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if h := resp.Header.Get(httpapi.HeaderShardPartial); h != "" {
		t.Fatalf("healthy audience carries X-Shard-Partial=%q", h)
	}
	aud := decodeJSON[httpapi.UsersResponse](t, resp)
	if len(aud.Users) != 3 {
		t.Fatalf("audience = %v, want the 3 chain members", aud.Users)
	}

	resp, err = http.Get(base + httpapi.PathReach + "?owner=w0&requester=w2&path=" + "friend%2B%5B1%2C2%5D")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if rr := decodeJSON[httpapi.ReachResponse](t, resp); !rr.Reachable {
		t.Fatalf("reach(w0→w2) = %+v, want reachable", rr)
	}
	resp, err = http.Get(base + httpapi.PathReachAudience + "?owner=w0&path=" + "friend%2B%5B1%2C2%5D")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if ra := decodeJSON[httpapi.UsersResponse](t, resp); len(ra.Users) != 2 {
		t.Fatalf("reach-audience = %v, want [w1 w2]", ra.Users)
	}

	resp = postJSON(t, base+httpapi.PathRevoke, httpapi.RevokeRequest{Resource: "doc", Rule: share.Rule})
	wantStatus(t, resp, http.StatusOK)
	if rv := decodeJSON[httpapi.RevokeResponse](t, resp); !rv.Removed {
		t.Fatalf("revoke = %+v, want removed", rv)
	}

	resp, err = http.Get(base + httpapi.PathAudit + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()
	resp, err = http.Get(base + httpapi.PathAudit + "?n=-1")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	resp, err = http.Get(base + httpapi.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if h := decodeJSON[httpapi.HealthResponse](t, resp); h.Status != "ok" || h.Role != "router" {
		t.Fatalf("health = %+v", h)
	}
	resp, err = http.Get(base + httpapi.PathStats)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if st := decodeJSON[httpapi.StatsResponse](t, resp); st.Router == nil || st.Router.Shards != 2 {
		t.Fatalf("stats lacks router section: %+v", st.Router)
	}
}

func TestHandlerShardOutage(t *testing.T) {
	srv, r, flaky := newTestServer(t, 2)
	base := srv.URL
	ctx := context.Background()

	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("w%d", i)
		if _, err := r.AddUser(ctx, users[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	chain(t, r, "friend", users[0], users[1], users[2], users[3])
	if _, err := r.Share(ctx, "doc", users[0], []string{"friend+[1,3]"}); err != nil {
		t.Fatal(err)
	}

	down := r.Owner(users[0])
	flaky[down].down.Store(true)

	// Checks through the dead shard fail closed: 503 + shard-unavailable.
	resp, err := http.Get(base + httpapi.PathCheck + "?resource=doc&requester=" + users[3])
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusServiceUnavailable)
	if body := decodeJSON[httpapi.ErrorBody](t, resp); body.Code != httpapi.CodeShardUnavailable {
		t.Fatalf("failed-closed check code = %q, want %q", body.Code, httpapi.CodeShardUnavailable)
	}

	// Audiences degrade: 200 with the failed shard named in X-Shard-Partial.
	resp, err = http.Get(base + httpapi.PathAudience + "?resource=doc")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if h := resp.Header.Get(httpapi.HeaderShardPartial); h != strconv.Itoa(down) {
		t.Fatalf("X-Shard-Partial = %q, want %q", h, strconv.Itoa(down))
	}
	resp.Body.Close()

	resp, err = http.Get(base + httpapi.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	if h := decodeJSON[httpapi.HealthResponse](t, resp); h.Status != "degraded" {
		t.Fatalf("health during outage = %q, want degraded", h.Status)
	}
}

// TestHandlerUnrelateAndDelegatedBatch covers the DELETE relationship route
// and the depth-1 delegation path for batch checks and audiences, where the
// router hands the whole query to the single owning backend.
func TestHandlerUnrelateAndDelegatedBatch(t *testing.T) {
	srv, r, _ := newTestServer(t, 2)
	ctx := context.Background()
	if shard.NewHandler(r).Router() != r {
		t.Fatal("Handler.Router did not return the wrapped router")
	}
	for _, u := range []string{"p0", "p1", "p2"} {
		if _, err := r.AddUser(ctx, u, nil); err != nil {
			t.Fatalf("AddUser(%s): %v", u, err)
		}
	}
	if err := r.Relate(ctx, "p0", "p1", "friend", false); err != nil {
		t.Fatal(err)
	}
	if err := r.Relate(ctx, "p0", "p2", "friend", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Share(ctx, "memo", "p0", []string{"friend*[1]"}); err != nil {
		t.Fatal(err)
	}

	// Depth-1 policy: the router delegates the batch and the audience to the
	// owner's backend in one call instead of scattering.
	resp := postJSON(t, srv.URL+"/v1/check-batch", map[string]any{
		"resource": "memo", "requesters": []string{"p1", "p2"},
	})
	wantStatus(t, resp, http.StatusOK)
	batch := decodeJSON[httpapi.CheckBatchResponse](t, resp)
	if len(batch.Decisions) != 2 || batch.Decisions[0].Effect != "allow" || batch.Decisions[1].Effect != "allow" {
		t.Fatalf("delegated batch = %+v", batch.Decisions)
	}
	audResp, err := http.Get(srv.URL + "/v1/audience?resource=memo")
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, audResp, http.StatusOK)
	aud := decodeJSON[httpapi.UsersResponse](t, audResp)
	if len(aud.Users) != 2 {
		t.Fatalf("delegated audience = %v, want p1 and p2", aud.Users)
	}

	// DELETE the edge over the wire; the audience must shrink, and deleting
	// it again reports the unknown relationship.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/relationships",
		strings.NewReader(`{"from":"p0","to":"p1","type":"friend"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusNoContent)
	aud2, _, err := r.Audience(ctx, "memo")
	if err != nil || len(aud2) != 1 || aud2[0] != "p2" {
		t.Fatalf("audience after unrelate = %v, %v; want [p2]", aud2, err)
	}
	req, err = http.NewRequest(http.MethodDelete, srv.URL+"/v1/relationships",
		strings.NewReader(`{"from":"p0","to":"p1","type":"friend"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusNotFound)
}
