package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"reachac"
	"reachac/client"
	"reachac/internal/httpapi"
)

// Handler exposes a Router over the same HTTP/JSON API acserverd speaks, so
// the typed client package (and anything written against it) works against
// a sharded deployment unchanged. Partial audiences carry the
// X-Shard-Partial header; failed-closed checks answer 503 with the
// shard-unavailable code.
type Handler struct {
	r   *Router
	mux *http.ServeMux
}

// NewHandler mounts router on a fresh mux.
func NewHandler(r *Router) *Handler {
	h := &Handler{r: r, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET "+httpapi.PathHealth, h.handleHealth)
	h.mux.HandleFunc("GET "+httpapi.PathStats, h.handleStats)
	h.mux.HandleFunc("POST "+httpapi.PathUsers, h.handleAddUser)
	h.mux.HandleFunc("GET "+httpapi.PathUsers+"/{name}", h.handleGetUser)
	h.mux.HandleFunc("POST "+httpapi.PathRelationships, h.handleRelate)
	h.mux.HandleFunc("DELETE "+httpapi.PathRelationships, h.handleUnrelate)
	h.mux.HandleFunc("POST "+httpapi.PathShare, h.handleShare)
	h.mux.HandleFunc("POST "+httpapi.PathRevoke, h.handleRevoke)
	h.mux.HandleFunc("GET "+httpapi.PathCheck, h.handleCheck)
	h.mux.HandleFunc("POST "+httpapi.PathCheckBatch, h.handleCheckBatch)
	h.mux.HandleFunc("GET "+httpapi.PathAudience, h.handleAudience)
	h.mux.HandleFunc("GET "+httpapi.PathReach, h.handleReach)
	h.mux.HandleFunc("GET "+httpapi.PathReachAudience, h.handleReachAudience)
	h.mux.HandleFunc("GET "+httpapi.PathAudit, h.handleAudit)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// Router returns the wrapped router (stats, shutdown).
func (h *Handler) Router() *Router { return h.r }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, httpapi.ErrorBody{Error: err.Error(), Code: httpapi.CodeBadRequest})
}

// httpError maps router/backend errors onto the wire codes. A remote
// backend's *client.Error passes its code through verbatim, so the router
// is transparent to API errors a shard already classified.
func (h *Handler) httpError(w http.ResponseWriter, err error) {
	var apiErr *client.Error
	if errors.As(err, &apiErr) && apiErr.Code != "" {
		writeJSON(w, apiErr.Status, httpapi.ErrorBody{Error: apiErr.Message, Code: apiErr.Code})
		return
	}
	status, code := http.StatusInternalServerError, httpapi.CodeInternal
	switch {
	case errors.Is(err, ErrShardUnavailable):
		status, code = http.StatusServiceUnavailable, httpapi.CodeShardUnavailable
	case errors.Is(err, reachac.ErrUnknownUser):
		status, code = http.StatusNotFound, httpapi.CodeUnknownUser
	case errors.Is(err, reachac.ErrUnknownResource):
		status, code = http.StatusNotFound, httpapi.CodeUnknownResource
	case errors.Is(err, reachac.ErrUnknownRelationship):
		status, code = http.StatusNotFound, httpapi.CodeUnknownRelationship
	case errors.Is(err, reachac.ErrDuplicateUser):
		status, code = http.StatusConflict, httpapi.CodeDuplicateUser
	case errors.Is(err, reachac.ErrDuplicateRelationship):
		status, code = http.StatusConflict, httpapi.CodeDuplicateRelationship
	case errors.Is(err, reachac.ErrSelfRelationship):
		status, code = http.StatusBadRequest, httpapi.CodeSelfRelationship
	case errors.Is(err, reachac.ErrResourceOwned):
		status, code = http.StatusConflict, httpapi.CodeResourceOwned
	case errors.Is(err, reachac.ErrReadOnly):
		status, code = http.StatusServiceUnavailable, httpapi.CodeReadOnly
	case errors.Is(err, reachac.ErrClosed):
		status, code = http.StatusServiceUnavailable, httpapi.CodeClosed
	case errors.Is(err, ErrUnsupported):
		status, code = http.StatusBadRequest, httpapi.CodeBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status, code = http.StatusServiceUnavailable, httpapi.CodeOverloaded
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, httpapi.ErrorBody{Error: err.Error(), Code: code})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		badRequest(w, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

func setPartial(w http.ResponseWriter, partial []int) {
	if len(partial) == 0 {
		return
	}
	parts := make([]string, len(partial))
	for i, idx := range partial {
		parts[i] = strconv.Itoa(idx)
	}
	w.Header().Set(httpapi.HeaderShardPartial, strings.Join(parts, ","))
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.r.Health(r.Context()))
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.r.Stats(r.Context()))
}

func (h *Handler) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req httpapi.AddUserRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		badRequest(w, errors.New("name is required"))
		return
	}
	id, err := h.r.AddUser(r.Context(), req.Name, req.Attrs)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, httpapi.UserResponse{ID: id, Name: req.Name})
}

func (h *Handler) handleGetUser(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, err := h.r.UserID(r.Context(), name)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.UserResponse{ID: id, Name: name})
}

func (h *Handler) handleRelate(w http.ResponseWriter, r *http.Request) {
	var req httpapi.RelateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.From == "" || req.To == "" || req.Type == "" {
		badRequest(w, errors.New("from, to and type are required"))
		return
	}
	if err := h.r.Relate(r.Context(), req.From, req.To, req.Type, req.Mutual); err != nil {
		h.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) handleUnrelate(w http.ResponseWriter, r *http.Request) {
	var req httpapi.UnrelateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := h.r.Unrelate(r.Context(), req.From, req.To, req.Type); err != nil {
		h.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) handleShare(w http.ResponseWriter, r *http.Request) {
	var req httpapi.ShareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Resource == "" || req.Owner == "" || len(req.Paths) == 0 {
		badRequest(w, errors.New("resource, owner and at least one path are required"))
		return
	}
	for _, p := range req.Paths {
		if _, err := reachac.ParsePath(p); err != nil {
			badRequest(w, err)
			return
		}
	}
	rule, err := h.r.Share(r.Context(), req.Resource, req.Owner, req.Paths)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, httpapi.ShareResponse{Rule: rule})
}

func (h *Handler) handleRevoke(w http.ResponseWriter, r *http.Request) {
	var req httpapi.RevokeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	removed, err := h.r.Revoke(r.Context(), req.Resource, req.Rule)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.RevokeResponse{Removed: removed})
}

func (h *Handler) handleCheck(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	resource, requester := q.Get("resource"), q.Get("requester")
	if resource == "" || requester == "" {
		badRequest(w, errors.New("resource and requester are required"))
		return
	}
	d, err := h.r.Check(r.Context(), resource, requester)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (h *Handler) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	var req httpapi.CheckBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Resource == "" {
		badRequest(w, errors.New("resource is required"))
		return
	}
	ds, err := h.r.CheckBatch(r.Context(), req.Resource, req.Requesters)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.CheckBatchResponse{Decisions: ds})
}

func (h *Handler) handleAudience(w http.ResponseWriter, r *http.Request) {
	resource := r.URL.Query().Get("resource")
	if resource == "" {
		badRequest(w, errors.New("resource is required"))
		return
	}
	names, partial, err := h.r.Audience(r.Context(), resource)
	if err != nil {
		h.httpError(w, err)
		return
	}
	setPartial(w, partial)
	writeJSON(w, http.StatusOK, httpapi.UsersResponse{Users: names})
}

func (h *Handler) handleReach(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner, requester, path := q.Get("owner"), q.Get("requester"), q.Get("path")
	if owner == "" || requester == "" || path == "" {
		badRequest(w, errors.New("owner, requester and path are required"))
		return
	}
	canonical, err := reachac.ParsePath(path)
	if err != nil {
		badRequest(w, err)
		return
	}
	reached, err := h.r.Reach(r.Context(), owner, requester, path)
	if err != nil {
		h.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.ReachResponse{Reachable: reached, Path: canonical})
}

func (h *Handler) handleReachAudience(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner, path := q.Get("owner"), q.Get("path")
	if owner == "" || path == "" {
		badRequest(w, errors.New("owner and path are required"))
		return
	}
	names, partial, err := h.r.ReachAudience(r.Context(), owner, path)
	if err != nil {
		h.httpError(w, err)
		return
	}
	setPartial(w, partial)
	writeJSON(w, http.StatusOK, httpapi.UsersResponse{Users: names})
}

func (h *Handler) handleAudit(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		var err error
		if n, err = strconv.Atoi(raw); err != nil || n < 0 {
			badRequest(w, errors.New("n must be a non-negative integer"))
			return
		}
	}
	writeJSON(w, http.StatusOK, httpapi.AuditResponse{Decisions: h.r.Audit(n)})
}
