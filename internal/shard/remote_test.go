package shard_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/server"
	"reachac/internal/shard"
)

// newRemoteRouter stands up n real acserverd serving stacks (durable
// Network + internal/server handler over httptest) and routes across them
// with shard.Remote backends — the same wire path acshardd -backends takes,
// minus the TCP listener daemonry.
func newRemoteRouter(t *testing.T, n int) ([]shard.Backend, *shard.Router) {
	t.Helper()
	ctx := context.Background()
	backends := make([]shard.Backend, n)
	for i := 0; i < n; i++ {
		net, err := reachac.Open(t.TempDir())
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		srv := server.New(net, server.Config{})
		ts := httptest.NewServer(srv)
		c, err := client.New(ts.URL)
		if err != nil {
			t.Fatalf("client shard %d: %v", i, err)
		}
		backends[i] = shard.NewRemote(c)
		t.Cleanup(func() {
			ts.Close()
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
			net.Close()
		})
	}
	router, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(func() { router.Close() })
	return backends, router
}

// TestRemoteBackendsEndToEnd drives the full API surface through Remote
// backends: replication, boundary edges, depth-1 delegation, scatter-gather
// checks/audiences, point reachability, revocation and stats aggregation all
// cross the real HTTP wire.
func TestRemoteBackendsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins 2 HTTP serving stacks")
	}
	ctx := context.Background()
	_, r := newRemoteRouter(t, 2)

	users := []string{"alice", "bob", "carol", "dave", "erin"}
	for i, u := range users {
		attrs := map[string]any{"level": i}
		if i%2 == 0 {
			attrs["dept"] = "eng"
		}
		if _, err := r.AddUser(ctx, u, attrs); err != nil {
			t.Fatalf("AddUser(%s): %v", u, err)
		}
	}
	if _, err := r.AddUser(ctx, "alice", nil); !errors.Is(err, reachac.ErrDuplicateUser) {
		t.Fatalf("duplicate AddUser: %v", err)
	}
	if _, err := r.UserID(ctx, "carol"); err != nil {
		t.Fatalf("UserID(carol): %v", err)
	}
	if _, err := r.UserID(ctx, "nobody"); !errors.Is(err, reachac.ErrUnknownUser) {
		t.Fatalf("UserID(nobody): %v", err)
	}

	// A 4-hop chain: with 2 shards and these names the cut is straddled
	// (alice/bob/dave on one shard, carol on the other).
	chain := [][2]string{{"alice", "bob"}, {"bob", "carol"}, {"carol", "dave"}, {"dave", "erin"}}
	for _, e := range chain {
		if err := r.Relate(ctx, e[0], e[1], "friend", false); err != nil {
			t.Fatalf("Relate(%s->%s): %v", e[0], e[1], err)
		}
	}
	if err := r.Relate(ctx, "alice", "bob", "friend", false); !errors.Is(err, reachac.ErrDuplicateRelationship) {
		t.Fatalf("duplicate Relate: %v", err)
	}

	// Deep policy: scatter-gather. Depth-1 policy: single-shard delegation.
	if _, err := r.Share(ctx, "photo", "alice", []string{"friend+[1,3]"}); err != nil {
		t.Fatalf("Share(photo): %v", err)
	}
	if _, err := r.Share(ctx, "note", "alice", []string{"friend*[1]"}); err != nil {
		t.Fatalf("Share(note): %v", err)
	}

	dec, err := r.Check(ctx, "photo", "dave")
	if err != nil || dec.Effect != "allow" {
		t.Fatalf("Check(photo,dave) = %+v, %v; want allow", dec, err)
	}
	dec, err = r.Check(ctx, "photo", "erin")
	if err != nil || dec.Effect != "deny" {
		t.Fatalf("Check(photo,erin) = %+v, %v; want deny (4 hops > 3)", dec, err)
	}
	dec, err = r.Check(ctx, "note", "bob")
	if err != nil || dec.Effect != "allow" {
		t.Fatalf("Check(note,bob) = %+v, %v; want allow via delegation", dec, err)
	}
	if _, err := r.Check(ctx, "photo", "nobody"); !errors.Is(err, reachac.ErrUnknownUser) {
		t.Fatalf("Check(photo,nobody): %v", err)
	}

	decs, err := r.CheckBatch(ctx, "photo", []string{"bob", "carol", "erin"})
	if err != nil {
		t.Fatalf("CheckBatch: %v", err)
	}
	wantEffects := []string{"allow", "allow", "deny"}
	for i, d := range decs {
		if d.Effect != wantEffects[i] {
			t.Fatalf("CheckBatch[%d] = %s, want %s", i, d.Effect, wantEffects[i])
		}
	}

	// Depth-1 "note" delegates whole batch checks and audiences to the
	// owner's shard over the wire (Remote.CheckBatch / Remote.Audience).
	ndecs, err := r.CheckBatch(ctx, "note", []string{"bob", "carol"})
	if err != nil || ndecs[0].Effect != "allow" || ndecs[1].Effect != "deny" {
		t.Fatalf("delegated CheckBatch(note) = %+v, %v", ndecs, err)
	}
	naud, npartial, err := r.Audience(ctx, "note")
	if err != nil || len(npartial) > 0 || len(naud) != 1 || naud[0] != "bob" {
		t.Fatalf("delegated Audience(note) = %v partial=%v err=%v; want [bob]", naud, npartial, err)
	}

	aud, partial, err := r.Audience(ctx, "photo")
	if err != nil || len(partial) > 0 {
		t.Fatalf("Audience(photo): %v partial=%v", err, partial)
	}
	sort.Strings(aud)
	if len(aud) != 3 || aud[0] != "bob" || aud[1] != "carol" || aud[2] != "dave" {
		t.Fatalf("Audience(photo) = %v, want [bob carol dave]", aud)
	}

	ok, err := r.Reach(ctx, "alice", "carol", "friend+[1,2]")
	if err != nil || !ok {
		t.Fatalf("Reach(alice,carol) = %v, %v; want true", ok, err)
	}
	ok, err = r.Reach(ctx, "alice", "erin", "friend+[1,2]")
	if err != nil || ok {
		t.Fatalf("Reach(alice,erin) = %v, %v; want false", ok, err)
	}
	raud, partial, err := r.ReachAudience(ctx, "alice", "friend+[1,2]")
	if err != nil || len(partial) > 0 {
		t.Fatalf("ReachAudience: %v partial=%v", err, partial)
	}
	sort.Strings(raud)
	if len(raud) != 2 || raud[0] != "bob" || raud[1] != "carol" {
		t.Fatalf("ReachAudience = %v, want [bob carol]", raud)
	}

	// Revoke the deep rule and confirm the decision flips over the wire.
	shareID, err := r.Share(ctx, "photo2", "alice", []string{"friend+[1,3]"})
	if err != nil {
		t.Fatalf("Share(photo2): %v", err)
	}
	if dec, err := r.Check(ctx, "photo2", "dave"); err != nil || dec.Effect != "allow" {
		t.Fatalf("Check(photo2,dave) pre-revoke = %+v, %v", dec, err)
	}
	removed, err := r.Revoke(ctx, "photo2", shareID)
	if err != nil || !removed {
		t.Fatalf("Revoke(photo2) = %v, %v", removed, err)
	}
	if dec, err := r.Check(ctx, "photo2", "dave"); err != nil || dec.Effect != "deny" {
		t.Fatalf("Check(photo2,dave) post-revoke = %+v, %v", dec, err)
	}

	// Unrelate a boundary edge: both owner shards must drop their copy, and
	// the maintained audience must shrink.
	if err := r.Unrelate(ctx, "bob", "carol", "friend"); err != nil {
		t.Fatalf("Unrelate(bob->carol): %v", err)
	}
	aud, partial, err = r.Audience(ctx, "photo")
	if err != nil || len(partial) > 0 {
		t.Fatalf("Audience(photo) after cut: %v partial=%v", err, partial)
	}
	if len(aud) != 1 || aud[0] != "bob" {
		t.Fatalf("Audience(photo) after cut = %v, want [bob]", aud)
	}

	stats := r.Stats(ctx)
	if stats.Users != len(users) {
		t.Fatalf("Stats.Users = %d, want %d", stats.Users, len(users))
	}
	if len(stats.ShardStats) != 2 || !stats.ShardStats[0].Healthy || !stats.ShardStats[1].Healthy {
		t.Fatalf("ShardStats = %+v, want two healthy shards", stats.ShardStats)
	}
	health := r.Health(ctx)
	if health.Status != "ok" {
		t.Fatalf("Health = %+v, want ok", health)
	}
}

// TestRemoteRouterRestartRebuildsRoutingState: a fresh router attached to
// already-populated remote shards must rebuild its policy and user caches
// from the shards (ShardPolicies + stats) and answer immediately.
func TestRemoteRouterRestartRebuildsRoutingState(t *testing.T) {
	if testing.Short() {
		t.Skip("spins 2 HTTP serving stacks")
	}
	ctx := context.Background()

	backends, first := newRemoteRouter(t, 2)
	for _, u := range []string{"alice", "bob", "carol"} {
		if _, err := first.AddUser(ctx, u, nil); err != nil {
			t.Fatalf("AddUser(%s): %v", u, err)
		}
	}
	if err := first.Relate(ctx, "alice", "bob", "friend", false); err != nil {
		t.Fatalf("Relate: %v", err)
	}
	if err := first.Relate(ctx, "bob", "carol", "friend", false); err != nil {
		t.Fatalf("Relate: %v", err)
	}
	if _, err := first.Share(ctx, "doc", "alice", []string{"friend+[1,2]"}); err != nil {
		t.Fatalf("Share: %v", err)
	}

	second, err := shard.New(ctx, backends, shard.Config{})
	if err != nil {
		t.Fatalf("second router: %v", err)
	}
	defer second.Close()
	dec, err := second.Check(ctx, "doc", "carol")
	if err != nil || dec.Effect != "allow" {
		t.Fatalf("restarted router Check(doc,carol) = %+v, %v; want allow", dec, err)
	}
	aud, partial, err := second.Audience(ctx, "doc")
	if err != nil || len(partial) > 0 {
		t.Fatalf("restarted router Audience: %v partial=%v", err, partial)
	}
	sort.Strings(aud)
	if len(aud) != 2 || aud[0] != "bob" || aud[1] != "carol" {
		t.Fatalf("restarted router Audience = %v, want [bob carol]", aud)
	}
}
