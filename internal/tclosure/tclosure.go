// Package tclosure implements the second baseline named in §1 of the paper:
// precomputing reachability so queries answer in O(1)-ish time, at the cost
// the paper quotes — O(|V|·|E|) construction and O(|V|²) storage — which is
// what makes it "unacceptable for large graphs".
//
// A plain transitive closure cannot answer ordered label-constraint
// queries, so the engine stores one bitset adjacency matrix per
// (relationship type, direction) and one per-label closure, and evaluates a
// query by frontier composition: starting from the owner's singleton bitset,
// each step multiplies the frontier by the step's adjacency matrix d times
// for every admissible depth d (the per-label closure short-circuits
// unbounded tails). Attribute predicates intersect the frontier with a
// precomputed per-query predicate bitset.
package tclosure

import (
	"fmt"
	"math/bits"
	"sync"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// bitset is a fixed-width row of bits over the node ID space.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) unset(i int)    { b[i>>6] &^= 1 << (i & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }
func (b bitset) orWith(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) andWith(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}
func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// matrix is a row-per-node bitset adjacency/closure matrix.
type matrix struct {
	n    int
	rows []bitset
}

func newMatrix(n int) *matrix {
	m := &matrix{n: n, rows: make([]bitset, n)}
	for i := range m.rows {
		m.rows[i] = newBitset(n)
	}
	return m
}

// apply returns frontier × m: the set of nodes reachable from the frontier
// by one application of m.
func (m *matrix) apply(frontier bitset) bitset {
	out := newBitset(m.n)
	for w := 0; w < len(frontier); w++ {
		word := frontier[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			out.orWith(m.rows[i])
		}
	}
	return out
}

// close computes the reflexive-free transitive closure of m in place
// (repeated squaring is not needed; a per-row BFS over the boolean rows is
// O(V·E/64) and simpler).
func (m *matrix) close() *matrix {
	c := newMatrix(m.n)
	for i := 0; i < m.n; i++ {
		// BFS over bitset rows starting from row i.
		frontier := m.rows[i].clone()
		reach := frontier.clone()
		for !frontier.empty() {
			next := m.apply(frontier)
			// next \ reach
			for w := range next {
				next[w] &^= reach[w]
			}
			reach.orWith(next)
			frontier = next
		}
		c.rows[i] = reach
	}
	return c
}

type labelDir struct {
	label graph.Label
	fwd   bool
}

// Engine answers reachability constraints from precomputed per-label
// adjacency and closure matrices. Queries are safe for concurrent use (the
// lazily built closure caches are internally locked); the underlying graph
// must not be mutated while queries run.
type Engine struct {
	g *graph.Graph
	n int
	// adj holds one adjacency matrix per (label, direction). It is
	// immutable after New.
	adj map[labelDir]*matrix
	// mu guards the lazily built closure caches below, so that concurrent
	// queries may share one engine. Closure construction is idempotent;
	// the lock is held across a build only to avoid duplicated work.
	mu sync.RWMutex
	// closure holds the transitive closure of each adjacency matrix,
	// built lazily on first unbounded use and cached.
	closure map[labelDir]*matrix
	// bothClosure caches closures of the '*' (union) matrices per label.
	bothClosure map[graph.Label]*matrix
}

// New precomputes the per-label adjacency matrices for g. Closures for
// unbounded steps are built lazily per (label, direction).
func New(g *graph.Graph) *Engine {
	n := g.NumNodes()
	e := &Engine{g: g, n: n, adj: make(map[labelDir]*matrix), closure: make(map[labelDir]*matrix)}
	g.Edges(func(ed graph.Edge) bool {
		fk := labelDir{ed.Label, true}
		if e.adj[fk] == nil {
			e.adj[fk] = newMatrix(n)
		}
		e.adj[fk].rows[ed.From].set(int(ed.To))
		bk := labelDir{ed.Label, false}
		if e.adj[bk] == nil {
			e.adj[bk] = newMatrix(n)
		}
		e.adj[bk].rows[ed.To].set(int(ed.From))
		return true
	})
	return e
}

// Bytes estimates the resident size of the precomputed matrices (the E6
// space metric).
func (e *Engine) Bytes() int {
	per := ((e.n + 63) / 64) * 8 * e.n
	e.mu.RLock()
	defer e.mu.RUnlock()
	return (len(e.adj) + len(e.closure)) * per
}

// ApplyDelta implements core.IncrementalEvaluator: edge additions and
// removals flip single bits in the per-(label, direction) adjacency
// matrices and invalidate only the affected label's cached closures —
// replacing the wholesale engine rebuild a mutation used to force. Node
// additions are free (a node with no incident edges is unreachable; see the
// Reachable guard), and compactions change only edge IDs, which the
// matrices never store. The batch is declined — forcing a full rebuild —
// when an edge touches a node beyond the matrices' width, since growing
// every row of every matrix would cost as much as rebuilding.
func (e *Engine) ApplyDelta(g *graph.Graph, deltas []graph.Delta) bool {
	if e.g != g {
		return false
	}
	// Pre-scan so a decline never leaves the matrices half-advanced.
	for _, d := range deltas {
		switch d.Op {
		case graph.OpAddNode, graph.OpCompact:
		case graph.OpAddEdge, graph.OpRemoveEdge:
			if int(d.From) >= e.n || int(d.To) >= e.n {
				return false
			}
		default:
			return false
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, d := range deltas {
		if d.Op != graph.OpAddEdge && d.Op != graph.OpRemoveEdge {
			continue
		}
		l, ok := g.LookupLabel(d.Label)
		if !ok {
			return false // clone and log diverged; rebuild
		}
		fk, bk := labelDir{l, true}, labelDir{l, false}
		if d.Op == graph.OpAddEdge {
			if e.adj[fk] == nil {
				e.adj[fk] = newMatrix(e.n)
			}
			if e.adj[bk] == nil {
				e.adj[bk] = newMatrix(e.n)
			}
			e.adj[fk].rows[d.From].set(int(d.To))
			e.adj[bk].rows[d.To].set(int(d.From))
		} else {
			if e.adj[fk] != nil {
				e.adj[fk].rows[d.From].unset(int(d.To))
			}
			if e.adj[bk] != nil {
				e.adj[bk].rows[d.To].unset(int(d.From))
			}
		}
		// Per-label invalidation: only this label's closures are rebuilt
		// (lazily, on next unbounded use); every other label's cache
		// survives the mutation.
		delete(e.closure, fk)
		delete(e.closure, bk)
		delete(e.bothClosure, l)
	}
	return true
}

// MaterializeClosures forces construction of every per-label closure, so
// that build cost can be measured up front (E6).
func (e *Engine) MaterializeClosures() {
	for k := range e.adj {
		e.closureFor(k)
	}
}

func (e *Engine) closureFor(k labelDir) *matrix {
	e.mu.RLock()
	c, ok := e.closure[k]
	e.mu.RUnlock()
	if ok {
		return c
	}
	a, ok := e.adj[k]
	if !ok {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.closure[k]; ok {
		return c
	}
	c = a.close()
	e.closure[k] = c
	return c
}

// stepMatrix returns the effective adjacency matrix of a step: for '*'
// direction the union of both orientations. nil when the label is absent.
func (e *Engine) stepMatrix(label graph.Label, dir pathexpr.Direction) *matrix {
	switch dir {
	case pathexpr.Out:
		return e.adj[labelDir{label, true}]
	case pathexpr.In:
		return e.adj[labelDir{label, false}]
	default:
		f := e.adj[labelDir{label, true}]
		b := e.adj[labelDir{label, false}]
		if f == nil {
			return b
		}
		if b == nil {
			return f
		}
		u := newMatrix(e.n)
		for i := 0; i < e.n; i++ {
			u.rows[i] = f.rows[i].clone()
			u.rows[i].orWith(b.rows[i])
		}
		return u
	}
}

// stepClosure returns the closure used by an unbounded step. For '*' steps
// the closure of the union matrix is required (the closure of a union is
// not the union of the closures), cached per label in bothClosure.
func (e *Engine) stepClosure(label graph.Label, dir pathexpr.Direction) *matrix {
	switch dir {
	case pathexpr.Out:
		return e.closureFor(labelDir{label, true})
	case pathexpr.In:
		return e.closureFor(labelDir{label, false})
	default:
		// Closure of the union is NOT the union of closures; compute from
		// the union matrix and cache in the both map.
		e.mu.RLock()
		c, ok := e.bothClosure[label]
		e.mu.RUnlock()
		if ok {
			return c
		}
		m := e.stepMatrix(label, pathexpr.Both)
		if m == nil {
			return nil
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if c, ok := e.bothClosure[label]; ok {
			return c
		}
		if e.bothClosure == nil {
			e.bothClosure = make(map[graph.Label]*matrix)
		}
		c = m.close()
		e.bothClosure[label] = c
		return c
	}
}

// Reachable reports whether requester is reachable from owner through a
// path matching p.
func (e *Engine) Reachable(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		return false, fmt.Errorf("tclosure: invalid node (owner=%d requester=%d)", owner, requester)
	}
	if err := p.Validate(); err != nil {
		return false, err
	}
	if int(owner) >= e.n || int(requester) >= e.n {
		// Nodes added after the matrices were sized are edge-free (an
		// incident edge would have forced a rebuild, see ApplyDelta), and
		// every path pattern consumes at least one edge.
		return false, nil
	}
	frontier := newBitset(e.n)
	frontier.set(int(owner))
	for _, s := range p.Steps {
		label, ok := e.g.LookupLabel(s.Label)
		if !ok {
			return false, nil
		}
		m := e.stepMatrix(label, s.Dir)
		if m == nil {
			return false, nil
		}
		// Walk to the minimum depth first.
		cur := frontier
		for d := 0; d < s.MinDepth; d++ {
			cur = m.apply(cur)
			if cur.empty() {
				return false, nil
			}
		}
		// Accumulate all admissible depths.
		acc := cur.clone()
		if s.Unbounded {
			c := e.stepClosure(label, s.Dir)
			acc.orWith(c.apply(cur))
		} else {
			for d := s.MinDepth; d < s.MaxDepth; d++ {
				cur = m.apply(cur)
				if cur.empty() {
					break
				}
				acc.orWith(cur)
			}
		}
		// Apply the step's attribute predicates to the step-end nodes.
		if len(s.Preds) > 0 {
			acc.andWith(e.predBitset(s.Preds))
		}
		if acc.empty() {
			return false, nil
		}
		frontier = acc
	}
	return frontier.get(int(requester)), nil
}

// predBitset computes the set of nodes satisfying all predicates.
func (e *Engine) predBitset(preds []pathexpr.Pred) bitset {
	b := newBitset(e.n)
	for i := 0; i < e.n; i++ {
		ok := true
		attrs := e.g.Node(graph.NodeID(i)).Attrs
		for _, pr := range preds {
			if !pr.Eval(attrs) {
				ok = false
				break
			}
		}
		if ok {
			b.set(i)
		}
	}
	return b
}
