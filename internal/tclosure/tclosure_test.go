package tclosure

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

func node(t *testing.T, g *graph.Graph, name string) graph.NodeID {
	t.Helper()
	id, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("node %q missing", name)
	}
	return id
}

func TestQ1OnPaperGraph(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice := node(t, g, paperfix.Alice)
	for _, name := range paperfix.Names[1:] {
		want := false
		for _, w := range paperfix.Q1Grantees {
			if w == name {
				want = true
			}
		}
		got, err := e.Reachable(alice, node(t, g, name), paperfix.Q1())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Q1 grant for %s = %v, want %v", name, got, want)
		}
	}
}

func TestAgreementWithOracle(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	oracle := search.New(g)
	queries := []string{
		"friend+[1,2]/colleague+[1]",
		"friend+[1]/parent+[1]/friend+[1]",
		"friend-[1]",
		"friend*[1,3]",
		"friend+[3]",
		"friend+[1,*]",
		"friend*[2,*]",
		"parent-[1]/colleague-[1]",
		"colleague+[1]/friend+[1,2]",
	}
	for _, q := range queries {
		p := pathexpr.MustParse(q)
		for _, o := range paperfix.Names {
			for _, r := range paperfix.Names {
				oid, rid := node(t, g, o), node(t, g, r)
				want, err := oracle.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("(%s,%s,%s) closure=%v oracle=%v", o, r, q, got, want)
				}
			}
		}
	}
}

func TestAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	labels := []string{"friend", "colleague", "parent"}
	queries := []string{
		"friend+[1,3]",
		"friend+[1]/colleague+[1]",
		"friend-[2]",
		"friend*[1,2]/parent*[1]",
		"colleague+[1,*]",
		"friend+[2,*]/parent+[1]",
		"friend+[1,2]{age>=18}",
	}
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(14)
		g := graph.New()
		for i := 0; i < n; i++ {
			var attrs graph.Attrs
			if rng.Intn(2) == 0 {
				attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(50))}
			}
			g.MustAddNode(nameOf(i), attrs)
		}
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
			}
		}
		e := New(g)
		oracle := search.New(g)
		for _, q := range queries {
			p := pathexpr.MustParse(q)
			for o := 0; o < n; o++ {
				for r := 0; r < n; r++ {
					oid, rid := graph.NodeID(o), graph.NodeID(r)
					want, err := oracle.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d: (%d,%d,%s) closure=%v oracle=%v", trial, o, r, q, got, want)
					}
				}
			}
		}
	}
}

func nameOf(i int) string {
	return "u" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestUnknownLabelDenies(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	ok, err := e.Reachable(0, 1, pathexpr.MustParse("enemy+[1]"))
	if err != nil || ok {
		t.Fatalf("unknown label: %v %v", ok, err)
	}
	// Known label, absent direction matrix cannot happen (both built), but
	// '*' on a label with only one direction built still works.
}

func TestInvalidInputs(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	if _, err := e.Reachable(99, 0, paperfix.Q1()); err == nil {
		t.Fatal("invalid owner accepted")
	}
	if _, err := e.Reachable(0, 1, &pathexpr.Path{}); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestMaterializeClosuresAndBytes(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	before := e.Bytes()
	if before <= 0 {
		t.Fatal("Bytes not positive after adjacency build")
	}
	e.MaterializeClosures()
	after := e.Bytes()
	if after <= before {
		t.Fatalf("closure materialization did not grow size: %d -> %d", before, after)
	}
}

func TestUnboundedViaClosure(t *testing.T) {
	// Long chain: friend+[1,*] must reach the end; closure path exercised.
	g := graph.New()
	const n = 80
	var ids []graph.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, g.MustAddNode(nameOf(i), nil))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(ids[i], ids[i+1], "friend")
	}
	e := New(g)
	ok, err := e.Reachable(ids[0], ids[n-1], pathexpr.MustParse("friend+[1,*]"))
	if err != nil || !ok {
		t.Fatalf("unbounded chain: %v %v", ok, err)
	}
	ok, err = e.Reachable(ids[0], ids[n-1], pathexpr.MustParse("friend+[80,*]"))
	if err != nil || ok {
		t.Fatalf("min depth beyond chain matched: %v %v", ok, err)
	}
	// Incoming unbounded from the far end.
	ok, err = e.Reachable(ids[n-1], ids[0], pathexpr.MustParse("friend-[1,*]"))
	if err != nil || !ok {
		t.Fatalf("unbounded incoming chain: %v %v", ok, err)
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.get(0) || !b.get(64) || !b.get(129) || b.get(1) {
		t.Fatal("set/get broken")
	}
	if b.count() != 3 {
		t.Fatalf("count = %d", b.count())
	}
	c := b.clone()
	c.set(5)
	if b.get(5) {
		t.Fatal("clone aliases")
	}
	o := newBitset(130)
	o.set(1)
	b.orWith(o)
	if !b.get(1) {
		t.Fatal("orWith broken")
	}
	b.andWith(o)
	if b.get(0) || !b.get(1) || b.count() != 1 {
		t.Fatal("andWith broken")
	}
	if b.empty() {
		t.Fatal("empty false positive")
	}
	if !newBitset(10).empty() {
		t.Fatal("empty false negative")
	}
}
