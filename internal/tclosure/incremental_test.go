package tclosure

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

// applySince fetches and applies the deltas recorded since base, failing
// the test if the window was trimmed or the engine declines.
func applySince(t *testing.T, e *Engine, g *graph.Graph, base uint64) {
	t.Helper()
	deltas, ok := g.ChangesSince(base)
	if !ok {
		t.Fatal("delta window trimmed")
	}
	if !e.ApplyDelta(g, deltas) {
		t.Fatalf("ApplyDelta declined batch of %d", len(deltas))
	}
}

// TestApplyDeltaAgreement randomly mutates a graph the engine was built
// over, advances the engine through the delta log, and checks every
// decision against the online oracle and a freshly built engine.
func TestApplyDeltaAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	labels := []string{"friend", "colleague", "parent"}
	queries := []string{
		"friend+[1,3]",
		"friend+[1]/colleague+[1]",
		"friend-[2]",
		"friend*[1,2]/parent*[1]",
		"colleague+[1,*]",
		"friend+[1,2]{age>=18}",
	}
	const n = 14
	g := graph.New()
	for i := 0; i < n; i++ {
		var attrs graph.Attrs
		if rng.Intn(2) == 0 {
			attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(50))}
		}
		g.MustAddNode(nameOf(i), attrs)
	}
	var edges []graph.EdgeID
	for i := 0; i < n*2; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if id, err := g.AddEdge(u, v, labels[rng.Intn(len(labels))]); err == nil {
			edges = append(edges, id)
		}
	}
	e := New(g)
	oracle := search.New(g)
	for round := 0; round < 15; round++ {
		base := g.Version()
		// Warm some closures so invalidation is exercised, not just
		// construction.
		if _, err := e.Reachable(0, 1, pathexpr.MustParse("friend+[1,*]")); err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 3; m++ {
			if rng.Intn(3) > 0 || len(edges) == 0 {
				u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
				if u == v {
					continue
				}
				if id, err := g.AddEdge(u, v, labels[rng.Intn(len(labels))]); err == nil {
					edges = append(edges, id)
				}
			} else {
				i := rng.Intn(len(edges))
				if g.EdgeAlive(edges[i]) {
					if err := g.RemoveEdge(edges[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		applySince(t, e, g, base)
		fresh := New(g)
		for _, q := range queries {
			p := pathexpr.MustParse(q)
			for o := 0; o < n; o++ {
				for r := 0; r < n; r++ {
					oid, rid := graph.NodeID(o), graph.NodeID(r)
					want, err := oracle.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("round %d (%d,%d,%s): incremental=%v oracle=%v", round, o, r, q, got, want)
					}
					if fgot, _ := fresh.Reachable(oid, rid, p); fgot != got {
						t.Fatalf("round %d (%d,%d,%s): incremental=%v fresh=%v", round, o, r, q, got, fgot)
					}
				}
			}
		}
	}
}

// TestApplyDeltaNewNodesAndLabels covers acceptance of node-only batches
// (new members are unreachable until an edge arrives) and of edges with a
// label the engine has never seen, plus the decline on edges touching nodes
// beyond the matrices' width.
func TestApplyDeltaNewNodesAndLabels(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	g.MustAddEdge(a, b, "friend")
	e := New(g)

	// Node-only batch: accepted, new node unreachable.
	base := g.Version()
	c := g.MustAddNode("c", nil)
	applySince(t, e, g, base)
	if ok, err := e.Reachable(a, c, pathexpr.MustParse("friend+[1,2]")); err != nil || ok {
		t.Fatalf("isolated new node reachable = (%v, %v)", ok, err)
	}
	if ok, err := e.Reachable(c, a, pathexpr.MustParse("friend+[1]")); err != nil || ok {
		t.Fatalf("isolated new node reaches = (%v, %v)", ok, err)
	}

	// Edge with a brand-new label between old nodes: accepted.
	base = g.Version()
	g.MustAddEdge(b, a, "mentor")
	applySince(t, e, g, base)
	if ok, err := e.Reachable(b, a, pathexpr.MustParse("mentor+[1]")); err != nil || !ok {
		t.Fatalf("new-label edge = (%v, %v), want (true, nil)", ok, err)
	}

	// Edge incident to the new node: declined (matrices are too narrow).
	base = g.Version()
	g.MustAddEdge(a, c, "friend")
	deltas, ok := g.ChangesSince(base)
	if !ok {
		t.Fatal("window trimmed")
	}
	if e.ApplyDelta(g, deltas) {
		t.Fatal("edge beyond matrix width must decline")
	}
}

// TestApplyDeltaWrongGraph pins that an engine refuses deltas for a graph
// it was not built over.
func TestApplyDeltaWrongGraph(t *testing.T) {
	g := graph.New()
	g.MustAddNode("a", nil)
	e := New(g)
	other := g.Clone()
	base := other.Version()
	other.MustAddNode("b", nil)
	deltas, _ := other.ChangesSince(base)
	if e.ApplyDelta(other, deltas) {
		t.Fatal("foreign graph must decline")
	}
}
