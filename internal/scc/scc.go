// Package scc computes strongly connected components with Tarjan's algorithm
// [Tarjan 1972], as used by the paper (§3.2) to condense the line graph into
// a DAG before interval labeling. The condensation preserves reachability:
// any two vertices in the same SCC are mutually reachable, so collapsing
// each SCC to one representative loses no reachability information.
package scc

import "reachac/internal/digraph"

// Result holds the component decomposition of a digraph.
type Result struct {
	// Comp maps each vertex to its component index in [0, NumComp).
	// Components are numbered in reverse topological order of discovery by
	// Tarjan's algorithm and then renumbered so that the condensation edges
	// go from lower to higher indices (a topological numbering).
	Comp []int
	// NumComp is the number of strongly connected components.
	NumComp int
	// Members lists the vertices of each component in ascending order.
	Members [][]int
	// Rep is the representative vertex of each component: the
	// lowest-numbered member (deterministic stand-in for the paper's
	// "randomly selected node from that SCC").
	Rep []int
}

// Tarjan computes the strongly connected components of d using an iterative
// (stack-based) Tarjan to avoid recursion depth limits on large graphs.
func Tarjan(d *digraph.D) *Result {
	n := d.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		stack   []int // Tarjan's SCC stack
		nextIdx int
		numComp int
	)

	// Explicit DFS frames: vertex and the position within its successor list.
	type frame struct {
		v  int
		ei int
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = nextIdx
		low[root] = nextIdx
		nextIdx++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			succ := d.Succ(f.v)
			if f.ei < len(succ) {
				w := int(succ[f.ei])
				f.ei++
				if index[w] == unvisited {
					index[w] = nextIdx
					low[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All successors done: close the frame.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := &dfs[len(dfs)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is the root of an SCC: pop it.
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
		}
	}

	// Tarjan emits components in reverse topological order; flip the
	// numbering so condensation edges run low -> high.
	for v := range comp {
		comp[v] = numComp - 1 - comp[v]
	}

	members := make([][]int, numComp)
	for v := 0; v < n; v++ {
		members[comp[v]] = append(members[comp[v]], v)
	}
	rep := make([]int, numComp)
	for c, m := range members {
		rep[c] = m[0] // members are appended in ascending vertex order
	}
	return &Result{Comp: comp, NumComp: numComp, Members: members, Rep: rep}
}

// Condense builds the condensation DAG of d under the decomposition r:
// one vertex per component, with deduplicated edges between distinct
// components. Component numbering is topological (see Result.Comp), so the
// output always passes TopoOrder.
func Condense(d *digraph.D, r *Result) *digraph.D {
	dag := digraph.New(r.NumComp)
	seen := make(map[int64]bool)
	for u := 0; u < d.N(); u++ {
		cu := r.Comp[u]
		for _, v := range d.Succ(u) {
			cv := r.Comp[v]
			if cu == cv {
				continue
			}
			key := int64(cu)<<32 | int64(cv)
			if seen[key] {
				continue
			}
			seen[key] = true
			dag.AddEdge(cu, cv)
		}
	}
	return dag
}
