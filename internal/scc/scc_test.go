package scc

import (
	"math/rand"
	"testing"

	"reachac/internal/digraph"
)

func TestSingleVertex(t *testing.T) {
	r := Tarjan(digraph.New(1))
	if r.NumComp != 1 || r.Comp[0] != 0 || r.Rep[0] != 0 {
		t.Fatalf("single vertex: %+v", r)
	}
}

func TestDisconnected(t *testing.T) {
	r := Tarjan(digraph.New(4))
	if r.NumComp != 4 {
		t.Fatalf("NumComp = %d, want 4", r.NumComp)
	}
}

func TestSimpleCycle(t *testing.T) {
	d := digraph.New(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	r := Tarjan(d)
	if r.NumComp != 1 {
		t.Fatalf("cycle: NumComp = %d, want 1", r.NumComp)
	}
	if len(r.Members[0]) != 3 || r.Rep[0] != 0 {
		t.Fatalf("cycle members = %v rep = %d", r.Members[0], r.Rep[0])
	}
}

func TestTwoSCCsChain(t *testing.T) {
	// {0,1} -> {2,3}
	d := digraph.New(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 2)
	r := Tarjan(d)
	if r.NumComp != 2 {
		t.Fatalf("NumComp = %d, want 2", r.NumComp)
	}
	if r.Comp[0] != r.Comp[1] || r.Comp[2] != r.Comp[3] || r.Comp[0] == r.Comp[2] {
		t.Fatalf("Comp = %v", r.Comp)
	}
	// Topological numbering: source component must get the lower index.
	if r.Comp[0] >= r.Comp[2] {
		t.Fatalf("component numbering not topological: %v", r.Comp)
	}
}

func TestCondenseIsDAGAndTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		d := digraph.New(n)
		m := rng.Intn(n * 3)
		for i := 0; i < m; i++ {
			d.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		r := Tarjan(d)
		dag := Condense(d, r)
		if _, err := dag.TopoOrder(); err != nil {
			t.Fatalf("trial %d: condensation has a cycle: %v", trial, err)
		}
		// Component numbering must itself be topological.
		for u := 0; u < dag.N(); u++ {
			for _, v := range dag.Succ(u) {
				if u >= int(v) {
					t.Fatalf("trial %d: condensation edge (%d,%d) not increasing", trial, u, v)
				}
			}
		}
	}
}

func TestCondensationPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		d := digraph.New(n)
		for i := 0; i < n*2; i++ {
			d.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		r := Tarjan(d)
		dag := Condense(d, r)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := d.Reachable(u, v)
				got := dag.Reachable(r.Comp[u], r.Comp[v])
				if got != want {
					t.Fatalf("trial %d: reachability (%d,%d): graph %v dag %v",
						trial, u, v, want, got)
				}
			}
		}
	}
}

func TestSameSCCMutuallyReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		d := digraph.New(n)
		for i := 0; i < n*2; i++ {
			d.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		r := Tarjan(d)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := r.Comp[u] == r.Comp[v]
				mutual := d.Reachable(u, v) && d.Reachable(v, u)
				if same != mutual {
					t.Fatalf("trial %d: SCC membership (%d,%d)=%v but mutual=%v",
						trial, u, v, same, mutual)
				}
			}
		}
	}
}

func TestMembersSortedAndRepIsMin(t *testing.T) {
	d := digraph.New(5)
	d.AddEdge(4, 2)
	d.AddEdge(2, 4)
	d.AddEdge(2, 3)
	r := Tarjan(d)
	for c, members := range r.Members {
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				t.Fatalf("component %d members unsorted: %v", c, members)
			}
		}
		if r.Rep[c] != members[0] {
			t.Fatalf("component %d rep %d != min member %d", c, r.Rep[c], members[0])
		}
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	// 200k-vertex path exercises the iterative DFS.
	n := 200_000
	d := digraph.New(n)
	for i := 0; i < n-1; i++ {
		d.AddEdge(i, i+1)
	}
	r := Tarjan(d)
	if r.NumComp != n {
		t.Fatalf("NumComp = %d, want %d", r.NumComp, n)
	}
}
