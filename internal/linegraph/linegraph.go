// Package linegraph builds the directed line graph L(G) of the social graph
// (Definition 4): each vertex of L(G) represents one traversal of an edge of
// G, and x -> y in L(G) iff the head of x's traversal is the tail of y's.
//
// Two departures from the paper's presentation, both documented in
// DESIGN.md:
//
//   - Orientation doubling. The paper's figures only compose edges head-to-
//     tail (outgoing steps). Access conditions may also use incoming ('-')
//     and undirected ('*') steps, so each social edge e = (u,v) may yield
//     two line nodes: e+ (traverse u->v) and e- (traverse v->u). Forward-only
//     construction (the figures' view) is available via Opts.
//
//   - Virtual roots. The paper's reachability table (Figure 5) includes a
//     synthetic "Null A" line node so that the owner Alice is representable
//     as a line vertex; Opts.VirtualRoots reproduces that convention.
package linegraph

import (
	"fmt"
	"sort"

	"reachac/internal/digraph"
	"reachac/internal/graph"
)

// Node is one vertex of L(G): a traversal of a social edge, from Tail to
// Head. Virtual-root nodes have Edge == graph.InvalidEdge and Tail ==
// graph.InvalidNode.
type Node struct {
	Edge    graph.EdgeID
	Forward bool
	Label   graph.Label
	Tail    graph.NodeID
	Head    graph.NodeID
	Virtual bool
}

// Opts configures construction.
type Opts struct {
	// IncludeReverse adds the e- (backward traversal) line node for every
	// edge, enabling '-' and '*' steps. The paper's figures use forward
	// only.
	IncludeReverse bool
	// VirtualRoots adds one synthetic line node per listed member, with an
	// edge to every line node whose tail is that member (the paper's
	// "Null A" convention).
	VirtualRoots []graph.NodeID
}

// L is the line graph with its lookup tables.
type L struct {
	G     *graph.Graph
	Nodes []Node
	// D is the adjacency among line nodes: i -> j iff Nodes[i].Head ==
	// Nodes[j].Tail (virtual roots point at their member's outgoing
	// traversals).
	D *digraph.D
	// byTail groups line-node indices by traversal tail.
	byTail map[graph.NodeID][]int32
	// byLabelDir groups line-node indices by (label, forward): the source
	// of the per-label base tables of §3.3.
	byLabelDir map[labelDir][]int32
	// fwdOf / revOf map a social edge to its line node(s); -1 when absent.
	fwdOf []int32
	revOf []int32
	// rootOf maps a member to its virtual-root line node; -1 when absent.
	rootOf map[graph.NodeID]int32
}

type labelDir struct {
	label   graph.Label
	forward bool
}

// Build constructs L(G).
func Build(g *graph.Graph, opts Opts) *L {
	l := &L{
		G:          g,
		byTail:     make(map[graph.NodeID][]int32),
		byLabelDir: make(map[labelDir][]int32),
		rootOf:     make(map[graph.NodeID]int32),
	}
	// One pass to size fwdOf/revOf: edge IDs are dense including tombstones.
	maxEdge := 0
	g.Edges(func(e graph.Edge) bool {
		if int(e.ID) >= maxEdge {
			maxEdge = int(e.ID) + 1
		}
		return true
	})
	l.fwdOf = make([]int32, maxEdge)
	l.revOf = make([]int32, maxEdge)
	for i := range l.fwdOf {
		l.fwdOf[i] = -1
		l.revOf[i] = -1
	}

	add := func(n Node) int32 {
		id := int32(len(l.Nodes))
		l.Nodes = append(l.Nodes, n)
		if !n.Virtual {
			l.byTail[n.Tail] = append(l.byTail[n.Tail], id)
			l.byLabelDir[labelDir{n.Label, n.Forward}] = append(l.byLabelDir[labelDir{n.Label, n.Forward}], id)
		}
		return id
	}

	for _, r := range opts.VirtualRoots {
		l.rootOf[r] = add(Node{Edge: graph.InvalidEdge, Forward: true, Tail: graph.InvalidNode, Head: r, Virtual: true})
	}
	g.Edges(func(e graph.Edge) bool {
		l.fwdOf[e.ID] = add(Node{Edge: e.ID, Forward: true, Label: e.Label, Tail: e.From, Head: e.To})
		if opts.IncludeReverse {
			l.revOf[e.ID] = add(Node{Edge: e.ID, Forward: false, Label: e.Label, Tail: e.To, Head: e.From})
		}
		return true
	})

	d := digraph.New(len(l.Nodes))
	for i := range l.Nodes {
		for _, j := range l.byTail[l.Nodes[i].Head] {
			d.AddEdge(i, int(j))
		}
	}
	l.D = d
	return l
}

// NumNodes returns |V(L(G))|.
func (l *L) NumNodes() int { return len(l.Nodes) }

// NumEdges returns |E(L(G))|.
func (l *L) NumEdges() int { return l.D.M() }

// ByLabelDir returns the line-node indices with the given label and
// orientation — one per-label "base table" of §3.3. The slice must not be
// modified.
func (l *L) ByLabelDir(label graph.Label, forward bool) []int32 {
	return l.byLabelDir[labelDir{label, forward}]
}

// ByTail returns the line nodes whose traversal starts at member n.
func (l *L) ByTail(n graph.NodeID) []int32 { return l.byTail[n] }

// Forward returns the line node traversing edge e forward, or -1 (also -1
// for edges added to G after the line graph was built).
func (l *L) Forward(e graph.EdgeID) int32 {
	if int(e) >= len(l.fwdOf) {
		return -1
	}
	return l.fwdOf[e]
}

// AddForwardNode appends the forward line node of a social edge added to G
// after Build and wires its adjacency from the caller-collected endpoints:
// preds are the existing line nodes whose head is e.From, succs those
// whose tail is e.To (callers already walk both adjacency lists to decide
// whether the insertion is safe, so the sets are passed in rather than
// re-derived). Line nodes of edges registered later in the same delta
// batch are absent from both sets; they wire both sides when their own
// turn comes. Only forward line nodes are grown — the incremental path is
// used by index configurations built without IncludeReverse.
func (l *L) AddForwardNode(e graph.Edge, preds, succs []int32) int32 {
	id := int32(len(l.Nodes))
	n := Node{Edge: e.ID, Forward: true, Label: e.Label, Tail: e.From, Head: e.To}
	l.Nodes = append(l.Nodes, n)
	l.byTail[n.Tail] = append(l.byTail[n.Tail], id)
	l.byLabelDir[labelDir{n.Label, true}] = append(l.byLabelDir[labelDir{n.Label, true}], id)
	for int(e.ID) >= len(l.fwdOf) {
		l.fwdOf = append(l.fwdOf, -1)
		l.revOf = append(l.revOf, -1)
	}
	l.fwdOf[e.ID] = id
	l.D.Grow(1)
	if r, ok := l.rootOf[n.Tail]; ok {
		l.D.AddEdge(int(r), int(id))
	}
	for _, p := range preds {
		l.D.AddEdge(int(p), int(id))
	}
	for _, s := range succs {
		l.D.AddEdge(int(id), int(s))
	}
	return id
}

// Backward returns the line node traversing edge e backward, or -1 (also -1
// when the graph was built without IncludeReverse).
func (l *L) Backward(e graph.EdgeID) int32 {
	if int(e) >= len(l.revOf) {
		return -1
	}
	return l.revOf[e]
}

// Root returns the virtual-root line node of member n, or -1.
func (l *L) Root(n graph.NodeID) int32 {
	if id, ok := l.rootOf[n]; ok {
		return id
	}
	return -1
}

// NodeString names a line node the way the paper's figures do
// ("Friend A-C"); backward traversals get a trailing apostrophe and virtual
// roots render as "Null X".
func (l *L) NodeString(i int) string {
	n := l.Nodes[i]
	if n.Virtual {
		return "Null " + l.G.Node(n.Head).Name
	}
	s := fmt.Sprintf("%s %s-%s", l.G.LabelName(n.Label), l.G.Node(n.Tail).Name, l.G.Node(n.Head).Name)
	if !n.Forward {
		s += "'"
	}
	return s
}

// SortedNodeStrings returns all line-node names sorted, for deterministic
// figure output.
func (l *L) SortedNodeStrings() []string {
	out := make([]string, len(l.Nodes))
	for i := range l.Nodes {
		out[i] = l.NodeString(i)
	}
	sort.Strings(out)
	return out
}
