package linegraph

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
)

func TestFigure3LineGraphForwardOnly(t *testing.T) {
	g := paperfix.Graph()
	l := Build(g, Opts{})
	// Figure 3 has one line node per edge of Figure 1: 12 (the figure-5
	// table adds a 13th virtual Null-A node, tested separately).
	if l.NumNodes() != 12 {
		t.Fatalf("line nodes = %d, want 12", l.NumNodes())
	}
	// Spot-check paper adjacencies: FriendA-C -> FriendC-D (head C = tail C),
	// FriendC-D -> ColleagueD-F, ColleagueD-F -> FriendF-G.
	idx := func(name string) int {
		for i := range l.Nodes {
			if l.NodeString(i) == name {
				return i
			}
		}
		t.Fatalf("line node %q missing", name)
		return -1
	}
	adj := func(a, b string) bool {
		ia, ib := idx(a), idx(b)
		for _, s := range l.D.Succ(ia) {
			if int(s) == ib {
				return true
			}
		}
		return false
	}
	wantAdj := [][2]string{
		{"friend Alice-Colin", "friend Colin-David"},
		{"friend Alice-Colin", "parent Colin-Fred"},
		{"friend Colin-David", "colleague David-Fred"},
		{"colleague David-Fred", "friend Fred-George"},
		{"friend Alice-Bill", "friend Bill-Elena"},
		{"friend Bill-Elena", "friend Elena-Bill"},
		{"friend Elena-Bill", "friend Bill-Elena"},
		{"parent Colin-Fred", "friend Fred-George"},
	}
	for _, w := range wantAdj {
		if !adj(w[0], w[1]) {
			t.Errorf("missing line edge %s -> %s", w[0], w[1])
		}
	}
	wantAbsent := [][2]string{
		{"friend Colin-David", "friend Alice-Colin"}, // reverse of a real adjacency
		{"friend Alice-Colin", "colleague David-Fred"},
		{"friend Fred-George", "parent David-George"},
	}
	for _, w := range wantAbsent {
		if adj(w[0], w[1]) {
			t.Errorf("phantom line edge %s -> %s", w[0], w[1])
		}
	}
}

func TestLineAdjacencyInvariant(t *testing.T) {
	// x -> y in L(G) iff Head(x) == Tail(y), on random graphs, both modes.
	rng := rand.New(rand.NewSource(17))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 15; trial++ {
		g := graph.New()
		n := 2 + rng.Intn(15)
		for i := 0; i < n; i++ {
			g.MustAddNode(nodeName(i), nil)
		}
		for i := 0; i < n*2; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
			}
		}
		for _, rev := range []bool{false, true} {
			l := Build(g, Opts{IncludeReverse: rev})
			// Build the adjacency set actually present.
			present := make(map[[2]int]bool)
			for u := 0; u < l.D.N(); u++ {
				for _, v := range l.D.Succ(u) {
					present[[2]int{u, int(v)}] = true
				}
			}
			for i := range l.Nodes {
				for j := range l.Nodes {
					if l.Nodes[j].Virtual {
						continue
					}
					want := l.Nodes[i].Head == l.Nodes[j].Tail
					if present[[2]int{i, j}] != want {
						t.Fatalf("trial %d rev=%v: adjacency (%s -> %s) = %v, want %v",
							trial, rev, l.NodeString(i), l.NodeString(j), present[[2]int{i, j}], want)
					}
				}
			}
		}
	}
}

func nodeName(i int) string {
	return "u" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestVirtualRootNullA(t *testing.T) {
	g := paperfix.Graph()
	alice, _ := g.NodeByName(paperfix.Alice)
	l := Build(g, Opts{VirtualRoots: []graph.NodeID{alice}})
	if l.NumNodes() != 13 {
		t.Fatalf("line nodes with Null A = %d, want 13", l.NumNodes())
	}
	root := l.Root(alice)
	if root < 0 {
		t.Fatal("Root(Alice) missing")
	}
	if got := l.NodeString(int(root)); got != "Null Alice" {
		t.Fatalf("root name = %q", got)
	}
	// Null A must point at exactly Alice's outgoing traversals: friend A-C,
	// colleague A-D, friend A-B.
	succ := l.D.Succ(int(root))
	if len(succ) != 3 {
		t.Fatalf("Null A out-degree = %d, want 3", len(succ))
	}
	for _, s := range succ {
		if l.Nodes[s].Tail != alice {
			t.Fatalf("Null A points at %s", l.NodeString(int(s)))
		}
	}
	if l.Root(graph.NodeID(1)) != -1 {
		t.Fatal("Root of non-root member not -1")
	}
}

func TestIncludeReverseDoubles(t *testing.T) {
	g := paperfix.Graph()
	l := Build(g, Opts{IncludeReverse: true})
	if l.NumNodes() != 24 {
		t.Fatalf("doubled line nodes = %d, want 24", l.NumNodes())
	}
	g.Edges(func(e graph.Edge) bool {
		f, b := l.Forward(e.ID), l.Backward(e.ID)
		if f < 0 || b < 0 {
			t.Fatalf("edge %v missing orientation nodes", e)
		}
		if l.Nodes[f].Tail != e.From || l.Nodes[f].Head != e.To {
			t.Fatalf("forward node wrong: %+v", l.Nodes[f])
		}
		if l.Nodes[b].Tail != e.To || l.Nodes[b].Head != e.From {
			t.Fatalf("backward node wrong: %+v", l.Nodes[b])
		}
		return true
	})
}

func TestByLabelDir(t *testing.T) {
	g := paperfix.Graph()
	l := Build(g, Opts{IncludeReverse: true})
	friend, _ := g.LookupLabel(paperfix.Friend)
	colleague, _ := g.LookupLabel(paperfix.Colleague)
	parent, _ := g.LookupLabel(paperfix.Parent)
	if n := len(l.ByLabelDir(friend, true)); n != 8 {
		t.Fatalf("friend base table size = %d, want 8", n)
	}
	if n := len(l.ByLabelDir(friend, false)); n != 8 {
		t.Fatalf("friend reverse base table size = %d, want 8", n)
	}
	if n := len(l.ByLabelDir(colleague, true)); n != 2 {
		t.Fatalf("colleague base table size = %d, want 2", n)
	}
	if n := len(l.ByLabelDir(parent, true)); n != 2 {
		t.Fatalf("parent base table size = %d, want 2", n)
	}
}

func TestByTail(t *testing.T) {
	g := paperfix.Graph()
	l := Build(g, Opts{})
	alice, _ := g.NodeByName(paperfix.Alice)
	george, _ := g.NodeByName(paperfix.George)
	if n := len(l.ByTail(alice)); n != 3 {
		t.Fatalf("ByTail(Alice) = %d, want 3", n)
	}
	if n := len(l.ByTail(george)); n != 0 {
		t.Fatalf("ByTail(George) = %d, want 0", n)
	}
}

func TestSortedNodeStrings(t *testing.T) {
	g := paperfix.Graph()
	l := Build(g, Opts{})
	names := l.SortedNodeStrings()
	if len(names) != 12 {
		t.Fatalf("names = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("unsorted at %d: %v", i, names)
		}
	}
}

func TestExpandQueryQ1(t *testing.T) {
	// Figure 4: Q1 expands into two line queries.
	qs, err := ExpandQuery(paperfix.Q1(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("expansions = %d, want 2", len(qs))
	}
	if got := qs[0].String(); got != "friend+.colleague+" {
		t.Fatalf("first line query = %q", got)
	}
	if got := qs[1].String(); got != "friend+.friend+.colleague+" {
		t.Fatalf("second line query = %q", got)
	}
	// EndOfStep marks: first query both true; second query: false,true,true.
	if !qs[0].Steps[0].EndOfStep || !qs[0].Steps[1].EndOfStep {
		t.Fatal("EndOfStep marks wrong on first expansion")
	}
	if qs[1].Steps[0].EndOfStep || !qs[1].Steps[1].EndOfStep || !qs[1].Steps[2].EndOfStep {
		t.Fatal("EndOfStep marks wrong on second expansion")
	}
	if qs[1].Steps[0].OrigStep != 0 || qs[1].Steps[2].OrigStep != 1 {
		t.Fatal("OrigStep marks wrong")
	}
}

func TestExpandQueryCartesian(t *testing.T) {
	qs, err := ExpandQuery(pathexpr.MustParse("a+[1,2]/b+[1,3]"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 6 {
		t.Fatalf("expansions = %d, want 6", len(qs))
	}
	// All expansions distinct.
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.String()] {
			t.Fatalf("duplicate expansion %q", q.String())
		}
		seen[q.String()] = true
	}
	// Lengths range 2..5.
	if len(qs[0].Steps) != 2 || len(qs[len(qs)-1].Steps) != 5 {
		t.Fatalf("expansion lengths wrong: first %d last %d", len(qs[0].Steps), len(qs[len(qs)-1].Steps))
	}
}

func TestExpandQueryUnbounded(t *testing.T) {
	qs, err := ExpandQuery(pathexpr.MustParse("friend+[2,*]"), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 { // depths 2, 3, 4
		t.Fatalf("unbounded expansions = %d, want 3", len(qs))
	}
}

func TestExpandQueryTooLarge(t *testing.T) {
	if _, err := ExpandQuery(pathexpr.MustParse("a+[1,100]/b+[1,100]"), 0, 100); err == nil {
		t.Fatal("oversized expansion accepted")
	}
}

func TestExpandQueryInvalidPath(t *testing.T) {
	if _, err := ExpandQuery(&pathexpr.Path{}, 0, 0); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestExpandQueryHorizonBelowMin(t *testing.T) {
	// Horizon smaller than the min depth still expands from the min.
	qs, err := ExpandQuery(pathexpr.MustParse("friend+[5,*]"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || len(qs[0].Steps) != 5 {
		t.Fatalf("expansions = %v", qs)
	}
}
