package linegraph

import (
	"fmt"
	"strings"

	"reachac/internal/pathexpr"
)

// LineStep is one element of a line query: a single-edge traversal with a
// concrete label and orientation. EndOfStep marks the positions where an
// original path step completes, which is where that step's attribute
// predicates apply (to the head of the traversal).
type LineStep struct {
	Label     string
	Dir       pathexpr.Direction
	OrigStep  int
	EndOfStep bool
}

// LineQuery is an expansion of an OLCR query into a fixed-length sequence of
// single-edge steps, as in Figure 4: the query friend+[1,2]/colleague+[1]
// yields two line queries, friend·colleague and friend·friend·colleague.
type LineQuery struct {
	Steps []LineStep
	Src   *pathexpr.Path
}

// String renders the expansion compactly, e.g. "friend+.friend+.colleague+".
func (q *LineQuery) String() string {
	parts := make([]string, len(q.Steps))
	for i, s := range q.Steps {
		parts[i] = s.Label + s.Dir.String()
	}
	return strings.Join(parts, ".")
}

// DefaultMaxUnbounded caps the expansion of an unbounded step ([lo,*]) when
// transforming to line queries. Online search handles unbounded depths
// exactly; the join-index evaluation needs a materialized length, so this is
// the index engine's horizon (configurable per call).
const DefaultMaxUnbounded = 6

// DefaultMaxExpansions bounds the number of line queries one OLCR query may
// expand into (the product of the depth-interval widths).
const DefaultMaxExpansions = 4096

// ExpandQuery transforms an OLCR query into its line queries. Each step with
// depth interval [lo,hi] contributes every repetition count in lo..hi;
// unbounded steps use lo..maxUnbounded. The total number of expansions is
// capped by maxExpansions; exceeding it is an error (such queries should use
// the online engine).
func ExpandQuery(p *pathexpr.Path, maxUnbounded, maxExpansions int) ([]LineQuery, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxUnbounded < 1 {
		maxUnbounded = DefaultMaxUnbounded
	}
	if maxExpansions < 1 {
		maxExpansions = DefaultMaxExpansions
	}
	// Depth choices per step.
	type choice struct{ lo, hi int }
	choices := make([]choice, len(p.Steps))
	total := 1
	for i, s := range p.Steps {
		hi := s.MaxDepth
		if s.Unbounded {
			hi = s.MinDepth
			if maxUnbounded > hi {
				hi = maxUnbounded
			}
		}
		if hi < s.MinDepth {
			return nil, fmt.Errorf("linegraph: step %d horizon %d below min depth %d", i+1, hi, s.MinDepth)
		}
		choices[i] = choice{s.MinDepth, hi}
		width := hi - s.MinDepth + 1
		if total > maxExpansions/width {
			return nil, fmt.Errorf("linegraph: query expands into more than %d line queries", maxExpansions)
		}
		total *= width
	}

	depths := make([]int, len(p.Steps))
	for i := range depths {
		depths[i] = choices[i].lo
	}
	var out []LineQuery
	for {
		lq := LineQuery{Src: p}
		for si, s := range p.Steps {
			for d := 0; d < depths[si]; d++ {
				lq.Steps = append(lq.Steps, LineStep{
					Label:     s.Label,
					Dir:       s.Dir,
					OrigStep:  si,
					EndOfStep: d == depths[si]-1,
				})
			}
		}
		out = append(out, lq)
		// Odometer increment.
		i := len(depths) - 1
		for i >= 0 {
			depths[i]++
			if depths[i] <= choices[i].hi {
				break
			}
			depths[i] = choices[i].lo
			i--
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}
