package core

import (
	"bytes"
	"strings"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

func TestPolicyRoundTrip(t *testing.T) {
	g, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	david := ids[paperfix.David]
	if err := store.Register("alice/album", alice); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{ID: "fof", Resource: "alice/album", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("friend+[1,2]")}}}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{ID: "both", Resource: "alice/album", Owner: alice,
		Conditions: []Condition{
			{Path: pathexpr.MustParse("friend+[1,3]")},
			{Path: pathexpr.MustParse(`colleague+[1]{age>=18}`)},
		}}); err != nil {
		t.Fatal(err)
	}
	if err := store.Register("david/jokes", david); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{ID: "considers", Resource: "david/jokes", Owner: david,
		Conditions: []Condition{{Path: pathexpr.MustParse("friend-[1]")}}}); err != nil {
		t.Fatal(err)
	}
	// An empty resource (registered, no rules) must round-trip too.
	if err := store.Register("alice/empty", alice); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := store.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}

	// Same resources, owners and rules.
	if len(got.Resources()) != 3 {
		t.Fatalf("resources = %v", got.Resources())
	}
	for _, res := range store.Resources() {
		wo, _ := store.Owner(res)
		go_, ok := got.Owner(res)
		if !ok || go_ != wo {
			t.Fatalf("owner of %q lost", res)
		}
		wr := store.RulesFor(res)
		gr := got.RulesFor(res)
		if len(wr) != len(gr) {
			t.Fatalf("%q rules: %d vs %d", res, len(wr), len(gr))
		}
		for i := range wr {
			if wr[i].ID != gr[i].ID || len(wr[i].Conditions) != len(gr[i].Conditions) {
				t.Fatalf("%q rule %d mismatch", res, i)
			}
			for j := range wr[i].Conditions {
				if wr[i].Conditions[j].Path.String() != gr[i].Conditions[j].Path.String() {
					t.Fatalf("%q rule %d condition %d mismatch", res, i, j)
				}
			}
		}
	}

	// Decisions identical through both stores.
	eng1 := NewEngine(store, search.New(g), -1)
	eng2 := NewEngine(got, search.New(g), -1)
	for _, res := range store.Resources() {
		for _, name := range paperfix.Names {
			d1, err := eng1.Decide(res, ids[name])
			if err != nil {
				t.Fatal(err)
			}
			d2, err := eng2.Decide(res, ids[name])
			if err != nil {
				t.Fatal(err)
			}
			if d1.Effect != d2.Effect {
				t.Fatalf("decision drift on (%s,%s)", res, name)
			}
		}
	}
}

func TestReadStoreRejectsGarbage(t *testing.T) {
	g, _, _, _ := fixture(t)
	cases := []string{
		"",
		"junk",
		`{"magic":"nope","resources":0}` + "\n",
		`{"magic":"reachac-policy-v1","resources":1}` + "\n", // truncated
		`{"magic":"reachac-policy-v1","resources":1}` + "\n" +
			`{"resource":"r","owner":999}` + "\n", // owner not in graph
		`{"magic":"reachac-policy-v1","resources":1}` + "\n" +
			`{"resource":"r","owner":0,"rules":[{"id":"x","conditions":["///"]}]}` + "\n", // bad path
		`{"magic":"reachac-policy-v1","resources":1}` + "\n" +
			`{"resource":"r","owner":0,"rules":[{"id":"x","conditions":[]}]}` + "\n", // no conditions
	}
	for i, c := range cases {
		if _, err := ReadStore(strings.NewReader(c), g); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAudience(t *testing.T) {
	g, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{Resource: "r", Owner: alice,
		Conditions: []Condition{{Path: paperfix.QFriendParentFriend()}}}); err != nil {
		t.Fatal(err)
	}
	audience, err := store.Audience("r", g, search.New(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(audience) != 1 || g.Node(audience[0]).Name != paperfix.George {
		names := make([]string, len(audience))
		for i, id := range audience {
			names[i] = g.Node(id).Name
		}
		t.Fatalf("audience = %v, want [George]", names)
	}
	if _, err := store.Audience("ghost", g, search.New(g)); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

// slowEval hides the AudienceSet fast path so both Audience code paths are
// exercised and compared.
type slowEval struct{ e *search.Engine }

func (s slowEval) Reachable(o, r graph.NodeID, p *pathexpr.Path) (bool, error) {
	return s.e.Reachable(o, r, p)
}

func TestAudienceFastMatchesSlow(t *testing.T) {
	g, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("multi", alice); err != nil {
		t.Fatal(err)
	}
	// Two alternative rules, one of them conjunctive.
	if err := store.AddRule(&Rule{ID: "a", Resource: "multi", Owner: alice,
		Conditions: []Condition{
			{Path: pathexpr.MustParse("friend+[1,3]")},
			{Path: pathexpr.MustParse("friend+[1]/parent+[1]/friend+[1]")},
		}}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{ID: "b", Resource: "multi", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("colleague+[1]")}}}); err != nil {
		t.Fatal(err)
	}
	eng := search.New(g)
	fast, err := store.Audience("multi", g, eng)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := store.Audience("multi", g, slowEval{eng})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("fast %v vs slow %v", fast, slow)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("fast %v vs slow %v", fast, slow)
		}
	}
	// Expected audience: George (rule a) ∪ David (rule b).
	if len(fast) != 2 {
		t.Fatalf("audience = %v", fast)
	}
}
