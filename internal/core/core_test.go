package core

import (
	"sync"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

func fixture(t *testing.T) (*graph.Graph, *Store, *Engine, map[string]graph.NodeID) {
	t.Helper()
	g := paperfix.Graph()
	store := NewStore()
	eng := NewEngine(store, search.New(g), 0)
	ids := make(map[string]graph.NodeID)
	for _, n := range paperfix.Names {
		id, _ := g.NodeByName(n)
		ids[n] = id
	}
	return g, store, eng, ids
}

func TestOwnerAlwaysAllowed(t *testing.T) {
	_, store, eng, ids := fixture(t)
	if err := store.Register("photo1", ids[paperfix.Alice]); err != nil {
		t.Fatal(err)
	}
	d, err := eng.Decide("photo1", ids[paperfix.Alice])
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow || d.RuleID != "owner" {
		t.Fatalf("owner decision = %+v", d)
	}
}

func TestDenyByDefault(t *testing.T) {
	_, store, eng, ids := fixture(t)
	if err := store.Register("photo1", ids[paperfix.Alice]); err != nil {
		t.Fatal(err)
	}
	// No rules: everyone but the owner is denied.
	d, err := eng.Decide("photo1", ids[paperfix.Bill])
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Deny {
		t.Fatalf("no-rule decision = %+v", d)
	}
	// Unknown resource: denied with reason.
	d, err = eng.Decide("ghost", ids[paperfix.Alice])
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Deny || d.Reason != "unknown resource" {
		t.Fatalf("unknown resource decision = %+v", d)
	}
}

func TestSingleRuleGrant(t *testing.T) {
	_, store, eng, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("notes", alice); err != nil {
		t.Fatal(err)
	}
	err := store.AddRule(&Rule{
		Resource:   "notes",
		Owner:      alice,
		Conditions: []Condition{{Path: paperfix.QFriendParentFriend()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// George matches Alice->Colin->Fred->George.
	d, err := eng.Decide("notes", ids[paperfix.George])
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow || d.RuleID == "" {
		t.Fatalf("George decision = %+v", d)
	}
	// Bill does not match.
	d, err = eng.Decide("notes", ids[paperfix.Bill])
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Deny {
		t.Fatalf("Bill decision = %+v", d)
	}
}

func TestConjunctionOfConditions(t *testing.T) {
	_, store, eng, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("album", alice); err != nil {
		t.Fatal(err)
	}
	// Audience: reachable both via friend[1,3] AND via friend/parent/friend.
	err := store.AddRule(&Rule{
		ID:       "both",
		Resource: "album",
		Owner:    alice,
		Conditions: []Condition{
			{Path: pathexpr.MustParse("friend+[1,3]")},
			{Path: paperfix.QFriendParentFriend()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// George satisfies both (friend chain of length 3 + the f/p/f path).
	d, _ := eng.Decide("album", ids[paperfix.George])
	if d.Effect != Allow {
		t.Fatalf("George conjunctive decision = %+v", d)
	}
	// Colin satisfies friend+[1,3] but not friend/parent/friend.
	d, _ = eng.Decide("album", ids[paperfix.Colin])
	if d.Effect != Deny {
		t.Fatalf("Colin conjunctive decision = %+v", d)
	}
}

func TestMultipleRulesAreAlternatives(t *testing.T) {
	_, store, eng, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("post", alice); err != nil {
		t.Fatal(err)
	}
	mustAdd := func(r *Rule) {
		t.Helper()
		if err := store.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Rule{ID: "direct-friends", Resource: "post", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("friend+[1]")}}})
	mustAdd(&Rule{ID: "colleagues", Resource: "post", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("colleague+[1]")}}})
	// Bill is a direct friend; David is a colleague; both get in, each via
	// their own rule.
	d, _ := eng.Decide("post", ids[paperfix.Bill])
	if d.Effect != Allow || d.RuleID != "direct-friends" {
		t.Fatalf("Bill = %+v", d)
	}
	d, _ = eng.Decide("post", ids[paperfix.David])
	if d.Effect != Allow || d.RuleID != "colleagues" {
		t.Fatalf("David = %+v", d)
	}
	// Fred matches neither.
	d, _ = eng.Decide("post", ids[paperfix.Fred])
	if d.Effect != Deny {
		t.Fatalf("Fred = %+v", d)
	}
}

func TestPolicyMonotonicity(t *testing.T) {
	// Adding a rule never revokes access; removing one never grants it.
	_, store, eng, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{ID: "a", Resource: "r", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("friend+[1]")}}}); err != nil {
		t.Fatal(err)
	}
	allowedBefore := map[string]bool{}
	for _, n := range paperfix.Names {
		d, _ := eng.Decide("r", ids[n])
		allowedBefore[n] = d.Effect == Allow
	}
	if err := store.AddRule(&Rule{ID: "b", Resource: "r", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("colleague+[1]")}}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range paperfix.Names {
		d, _ := eng.Decide("r", ids[n])
		if allowedBefore[n] && d.Effect != Allow {
			t.Fatalf("adding a rule revoked %s", n)
		}
	}
	// Remove rule b again: nobody who was denied before may now be allowed.
	if !store.RemoveRule("r", "b") {
		t.Fatal("RemoveRule failed")
	}
	for _, n := range paperfix.Names {
		d, _ := eng.Decide("r", ids[n])
		if !allowedBefore[n] && d.Effect == Allow {
			t.Fatalf("removing a rule granted %s", n)
		}
	}
}

func TestStoreValidation(t *testing.T) {
	_, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	bill := ids[paperfix.Bill]
	p := pathexpr.MustParse("friend+[1]")

	// Rule on unregistered resource.
	err := store.AddRule(&Rule{Resource: "nope", Owner: alice,
		Conditions: []Condition{{Path: p}}})
	if err == nil {
		t.Fatal("rule on unregistered resource accepted")
	}
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
	// Wrong owner.
	err = store.AddRule(&Rule{Resource: "r", Owner: bill,
		Conditions: []Condition{{Path: p}}})
	if err == nil {
		t.Fatal("rule by non-owner accepted")
	}
	// Structurally invalid rules.
	bad := []*Rule{
		{Resource: "", Owner: alice, Conditions: []Condition{{Path: p}}},
		{Resource: "r", Owner: alice},
		{Resource: "r", Owner: alice, Conditions: []Condition{{Path: nil}}},
		{Resource: "r", Owner: alice, Conditions: []Condition{{Path: &pathexpr.Path{}}}},
	}
	for i, r := range bad {
		if err := store.AddRule(r); err == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
	// Duplicate rule IDs.
	if err := store.AddRule(&Rule{ID: "x", Resource: "r", Owner: alice,
		Conditions: []Condition{{Path: p}}}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{ID: "x", Resource: "r", Owner: alice,
		Conditions: []Condition{{Path: p}}}); err == nil {
		t.Fatal("duplicate rule id accepted")
	}
	// Re-register with a different owner.
	if err := store.Register("r", bill); err == nil {
		t.Fatal("re-register with different owner accepted")
	}
	// Same owner re-register is fine.
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
}

func TestAutoRuleIDs(t *testing.T) {
	_, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
	p := pathexpr.MustParse("friend+[1]")
	r1 := &Rule{Resource: "r", Owner: alice, Conditions: []Condition{{Path: p}}}
	r2 := &Rule{Resource: "r", Owner: alice, Conditions: []Condition{{Path: p.Clone()}}}
	if err := store.AddRule(r1); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(r2); err != nil {
		t.Fatal(err)
	}
	if r1.ID == "" || r2.ID == "" || r1.ID == r2.ID {
		t.Fatalf("auto IDs: %q %q", r1.ID, r2.ID)
	}
}

func TestResourcesSorted(t *testing.T) {
	_, store, _, ids := fixture(t)
	for _, r := range []ResourceID{"zeta", "alpha", "mid"} {
		if err := store.Register(r, ids[paperfix.Alice]); err != nil {
			t.Fatal(err)
		}
	}
	got := store.Resources()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("Resources = %v", got)
	}
}

func TestAuditTrail(t *testing.T) {
	_, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(store, search.New(paperfix.Graph()), 3)
	for i := 0; i < 5; i++ {
		if _, err := eng.Decide("r", alice); err != nil {
			t.Fatal(err)
		}
	}
	audit := eng.Audit()
	if len(audit) != 3 {
		t.Fatalf("audit kept %d entries, want 3", len(audit))
	}
	// Disabled auditing.
	eng2 := NewEngine(store, search.New(paperfix.Graph()), -1)
	if _, err := eng2.Decide("r", alice); err != nil {
		t.Fatal(err)
	}
	if len(eng2.Audit()) != 0 {
		t.Fatal("disabled audit recorded entries")
	}
}

func TestConcurrentDecides(t *testing.T) {
	g, store, _, ids := fixture(t)
	alice := ids[paperfix.Alice]
	if err := store.Register("r", alice); err != nil {
		t.Fatal(err)
	}
	if err := store.AddRule(&Rule{Resource: "r", Owner: alice,
		Conditions: []Condition{{Path: pathexpr.MustParse("friend+[1,2]")}}}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(store, search.New(g), 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, n := range paperfix.Names {
					if _, err := eng.Decide("r", ids[n]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestEffectString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("Effect strings")
	}
}
