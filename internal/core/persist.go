package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// Policies are persisted as line-delimited JSON: one header, then one record
// per resource carrying its owner and rules (conditions as path-expression
// strings, which Parse round-trips exactly).

const policyMagic = "reachac-policy-v1"

type policyHeader struct {
	Magic     string `json:"magic"`
	Resources int    `json:"resources"`
}

type policyRule struct {
	ID         string   `json:"id"`
	Conditions []string `json:"conditions"`
}

type policyResource struct {
	Resource string       `json:"resource"`
	Owner    uint32       `json:"owner"`
	Rules    []policyRule `json:"rules,omitempty"`
}

// Write serializes the store to w.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(policyHeader{Magic: policyMagic, Resources: len(s.owners)}); err != nil {
		return err
	}
	// Deterministic order via sorted resource IDs.
	resources := make([]ResourceID, 0, len(s.owners))
	for r := range s.owners {
		resources = append(resources, r)
	}
	sortResources(resources)
	for _, res := range resources {
		rec := policyResource{Resource: string(res), Owner: uint32(s.owners[res])}
		for _, rule := range s.rules[res] {
			pr := policyRule{ID: rule.ID}
			for _, c := range rule.Conditions {
				pr.Conditions = append(pr.Conditions, c.Path.String())
			}
			rec.Rules = append(rec.Rules, pr)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sortResources(rs []ResourceID) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j-1] > rs[j]; j-- {
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// ReadStore deserializes a store written by Write. Owners are validated
// against g.
func ReadStore(r io.Reader, g *graph.Graph) (*Store, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr policyHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: reading policy header: %w", err)
	}
	if hdr.Magic != policyMagic {
		return nil, fmt.Errorf("core: bad policy magic %q", hdr.Magic)
	}
	s := NewStore()
	for i := 0; i < hdr.Resources; i++ {
		var rec policyResource
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("core: reading policy resource %d: %w", i, err)
		}
		owner := graph.NodeID(rec.Owner)
		if !g.ValidNode(owner) {
			return nil, fmt.Errorf("core: resource %q owner %d not in graph", rec.Resource, rec.Owner)
		}
		if err := s.Register(ResourceID(rec.Resource), owner); err != nil {
			return nil, err
		}
		for _, pr := range rec.Rules {
			rule := &Rule{ID: pr.ID, Resource: ResourceID(rec.Resource), Owner: owner}
			for _, cs := range pr.Conditions {
				p, err := pathexpr.Parse(cs)
				if err != nil {
					return nil, fmt.Errorf("core: rule %q condition %q: %w", pr.ID, cs, err)
				}
				rule.Conditions = append(rule.Conditions, Condition{Path: p})
			}
			if err := s.AddRule(rule); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// AudienceSetEvaluator is implemented by evaluators that can materialize
// the full audience of one condition in a single traversal (see
// search.Engine.AudienceSet); Store.Audience uses it when available instead
// of issuing one reachability query per member.
type AudienceSetEvaluator interface {
	AudienceSet(owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error)
}

// Audience enumerates every member of g that eval grants access to res
// under this store's rules, excluding the owner (who always has access).
// Results are in node-ID order.
func (s *Store) Audience(res ResourceID, g *graph.Graph, eval Evaluator) ([]graph.NodeID, error) {
	owner, ok := s.Owner(res)
	if !ok {
		return nil, fmt.Errorf("core: resource %q not registered", res)
	}
	rules := s.RulesFor(res)
	if fast, ok := eval.(AudienceSetEvaluator); ok {
		return audienceFast(owner, rules, fast)
	}
	var out []graph.NodeID
	var firstErr error
	g.Nodes(func(n graph.Node) bool {
		if n.ID == owner {
			return true
		}
		for _, rule := range rules {
			valid := true
			for _, cond := range rule.Conditions {
				ok, err := eval.Reachable(rule.Owner, n.ID, cond.Path)
				if err != nil {
					firstErr = err
					return false
				}
				if !ok {
					valid = false
					break
				}
			}
			if valid {
				out = append(out, n.ID)
				return true
			}
		}
		return true
	})
	return out, firstErr
}

// audienceFast computes ∪_rules ∩_conditions AudienceSet(condition),
// excluding the owner, in node-ID order — one traversal per condition
// instead of one query per member.
func audienceFast(owner graph.NodeID, rules []*Rule, eval AudienceSetEvaluator) ([]graph.NodeID, error) {
	union := make(map[graph.NodeID]bool)
	for _, rule := range rules {
		var inter map[graph.NodeID]bool
		for _, cond := range rule.Conditions {
			set, err := eval.AudienceSet(rule.Owner, cond.Path)
			if err != nil {
				return nil, err
			}
			cur := make(map[graph.NodeID]bool, len(set))
			for _, id := range set {
				cur[id] = true
			}
			if inter == nil {
				inter = cur
				continue
			}
			for id := range inter {
				if !cur[id] {
					delete(inter, id)
				}
			}
			if len(inter) == 0 {
				break
			}
		}
		for id := range inter {
			if id != owner {
				union[id] = true
			}
		}
	}
	out := make([]graph.NodeID, 0, len(union))
	for id := range union {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
