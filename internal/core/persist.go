package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// Policies are persisted as line-delimited JSON: one header, then one record
// per resource carrying its owner and rules (conditions as path-expression
// strings, which Parse round-trips exactly).

const policyMagic = "reachac-policy-v1"

type policyHeader struct {
	Magic     string `json:"magic"`
	Resources int    `json:"resources"`
}

type policyRule struct {
	ID         string   `json:"id"`
	Conditions []string `json:"conditions"`
}

type policyResource struct {
	Resource string       `json:"resource"`
	Owner    uint32       `json:"owner"`
	Rules    []policyRule `json:"rules,omitempty"`
}

// Write serializes the store to w.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(policyHeader{Magic: policyMagic, Resources: len(s.owners)}); err != nil {
		return err
	}
	// Deterministic order via sorted resource IDs.
	resources := make([]ResourceID, 0, len(s.owners))
	for r := range s.owners {
		resources = append(resources, r)
	}
	sortResources(resources)
	for _, res := range resources {
		rec := policyResource{Resource: string(res), Owner: uint32(s.owners[res])}
		for _, rule := range s.rules[res] {
			pr := policyRule{ID: rule.ID}
			for _, c := range rule.Conditions {
				pr.Conditions = append(pr.Conditions, c.Path.String())
			}
			rec.Rules = append(rec.Rules, pr)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sortResources(rs []ResourceID) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j-1] > rs[j]; j-- {
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// ReadStore deserializes a store written by Write. Owners are validated
// against g.
func ReadStore(r io.Reader, g *graph.Graph) (*Store, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr policyHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: reading policy header: %w", err)
	}
	if hdr.Magic != policyMagic {
		return nil, fmt.Errorf("core: bad policy magic %q", hdr.Magic)
	}
	s := NewStore()
	for i := 0; i < hdr.Resources; i++ {
		var rec policyResource
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("core: reading policy resource %d: %w", i, err)
		}
		owner := graph.NodeID(rec.Owner)
		if !g.ValidNode(owner) {
			return nil, fmt.Errorf("core: resource %q owner %d not in graph", rec.Resource, rec.Owner)
		}
		if err := s.Register(ResourceID(rec.Resource), owner); err != nil {
			return nil, err
		}
		for _, pr := range rec.Rules {
			rule := &Rule{ID: pr.ID, Resource: ResourceID(rec.Resource), Owner: owner}
			for _, cs := range pr.Conditions {
				p, err := pathexpr.Parse(cs)
				if err != nil {
					return nil, fmt.Errorf("core: rule %q condition %q: %w", pr.ID, cs, err)
				}
				rule.Conditions = append(rule.Conditions, Condition{Path: p})
			}
			if err := s.AddRule(rule); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// AudienceSetEvaluator is implemented by evaluators that can materialize
// the full audience of one condition in a single traversal (see
// search.Engine.AudienceSet); Store.Audience uses it when available instead
// of issuing one reachability query per member.
type AudienceSetEvaluator interface {
	AudienceSet(owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error)
}

// Audience enumerates every member of g that eval grants access to res
// under this store's rules, excluding the owner (who always has access).
// Results are in node-ID order.
func (s *Store) Audience(res ResourceID, g *graph.Graph, eval Evaluator) ([]graph.NodeID, error) {
	owner, ok := s.Owner(res)
	if !ok {
		return nil, fmt.Errorf("core: resource %q not registered", res)
	}
	rules := s.RulesFor(res)
	if fast, ok := eval.(AudienceSetEvaluator); ok {
		return s.AudienceWith(res, audienceSourceFunc(fast.AudienceSet))
	}
	var out []graph.NodeID
	var firstErr error
	g.Nodes(func(n graph.Node) bool {
		if n.ID == owner {
			return true
		}
		for _, rule := range rules {
			valid := true
			for _, cond := range rule.Conditions {
				ok, err := eval.Reachable(rule.Owner, n.ID, cond.Path)
				if err != nil {
					firstErr = err
					return false
				}
				if !ok {
					valid = false
					break
				}
			}
			if valid {
				out = append(out, n.ID)
				return true
			}
		}
		return true
	})
	return out, firstErr
}

// AudienceSource provides per-(owner, path) audience sets in ascending
// node-ID order. Implementations may return cached slices: Store treats
// them as immutable and never modifies them. search.AudienceCache is the
// canonical implementation; search.Engine.AudienceSet also qualifies via
// audienceSourceFunc.
type AudienceSource interface {
	Audience(owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error)
}

// audienceSourceFunc adapts a plain audience function to AudienceSource.
type audienceSourceFunc func(graph.NodeID, *pathexpr.Path) ([]graph.NodeID, error)

func (f audienceSourceFunc) Audience(o graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error) {
	return f(o, p)
}

// AudienceWith assembles the audience of res from per-condition sets:
// ∪_rules ∩_conditions src.Audience(rule.Owner, condition), excluding the
// owner, in ascending node-ID order. Set algebra runs on sorted merges —
// one source call per condition, no per-member queries and no hashing — and
// the result is always freshly allocated, so src may serve shared cached
// slices.
func (s *Store) AudienceWith(res ResourceID, src AudienceSource) ([]graph.NodeID, error) {
	owner, ok := s.Owner(res)
	if !ok {
		return nil, fmt.Errorf("core: resource %q not registered", res)
	}
	out := []graph.NodeID{}
	for _, rule := range s.RulesFor(res) {
		var inter []graph.NodeID
		for ci, cond := range rule.Conditions {
			set, err := src.Audience(rule.Owner, cond.Path)
			if err != nil {
				return nil, err
			}
			if ci == 0 {
				inter = set
			} else {
				inter = intersectSorted(inter, set)
			}
			if len(inter) == 0 {
				break
			}
		}
		out = unionSortedExcluding(out, inter, owner)
	}
	return out, nil
}

// intersectSorted returns the intersection of two ascending slices as a new
// slice, leaving both inputs untouched.
func intersectSorted(a, b []graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionSortedExcluding merges two ascending slices into a fresh slice,
// dropping excl (which may appear only in b), leaving both inputs untouched.
func unionSortedExcluding(a, b []graph.NodeID, excl graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			if b[j] != excl {
				out = append(out, b[j])
			}
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	for ; j < len(b); j++ {
		if b[j] != excl {
			out = append(out, b[j])
		}
	}
	return out
}
