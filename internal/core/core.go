// Package core implements the paper's access control model (§2): user
// privacy preferences are stored as access rules (Definition 2), each a set
// of access conditions (Definition 3) whose path expressions must all be
// satisfied by a requester. Each time a user requests a resource, the
// system intercepts the request and, on the basis of the rules, grants or
// denies access.
//
// Semantics implemented here:
//
//   - Deny by default: a resource with no registered rules, or an unknown
//     resource, is accessible only to its owner.
//   - The owner always has access to their own resource.
//   - A rule grants access iff ALL of its access conditions are validated
//     ("In order to be valid, an access rule should have all its access
//     conditions validated", §2).
//   - Multiple rules on one resource are alternative audiences: access is
//     granted iff at least one rule is valid.
//
// Validating a condition reduces to an ordered label-constraint
// reachability query between owner and requester, delegated to an Evaluator
// (online search, transitive closure, or the cluster-based join index).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// ResourceID identifies a shared resource (photo, note, profile field, …).
type ResourceID string

// Condition is one access condition (o, p) of Definition 3; the owner o is
// carried by the enclosing rule.
type Condition struct {
	// Path is the reachability constraint the requester must satisfy
	// relative to the owner.
	Path *pathexpr.Path
}

// Rule is an access rule (rid, ACS) of Definition 2, issued by the resource
// owner. All conditions must hold for the rule to grant access.
type Rule struct {
	// ID names the rule within its resource, for auditing.
	ID string
	// Resource is the rid of Definition 2.
	Resource ResourceID
	// Owner is the node the conditions' paths start from.
	Owner graph.NodeID
	// Conditions all must be satisfied (conjunction).
	Conditions []Condition
}

// Validate checks structural sanity of the rule.
func (r *Rule) Validate() error {
	if r.Resource == "" {
		return fmt.Errorf("core: rule %q has empty resource", r.ID)
	}
	if len(r.Conditions) == 0 {
		return fmt.Errorf("core: rule %q has no conditions", r.ID)
	}
	for i, c := range r.Conditions {
		if c.Path == nil {
			return fmt.Errorf("core: rule %q condition %d has nil path", r.ID, i)
		}
		if err := c.Path.Validate(); err != nil {
			return fmt.Errorf("core: rule %q condition %d: %w", r.ID, i, err)
		}
	}
	return nil
}

// Evaluator answers ordered label-constraint reachability queries. The
// engines in internal/search, internal/tclosure and internal/joinindex all
// implement it.
type Evaluator interface {
	Reachable(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error)
}

// IncrementalEvaluator is implemented by evaluators that can advance in
// place after the graph they were built over — a snapshot's private clone —
// has been fast-forwarded by a batch of recorded deltas (graph.Delta).
//
// ApplyDelta is called with the already-advanced clone and the delta batch
// that advanced it, and reports whether the evaluator absorbed the batch.
// Returning false declines the batch: the caller must rebuild the evaluator
// from scratch over g, so correctness holds by construction — an evaluator
// may decline any delta it cannot (or would rather not) handle
// incrementally, and a partially-advanced evaluator that declined must
// simply never be queried again. ApplyDelta is never invoked concurrently
// with queries; the caller guarantees the evaluator is quiescent.
type IncrementalEvaluator interface {
	Evaluator
	ApplyDelta(g *graph.Graph, deltas []graph.Delta) bool
}

// Store holds resource ownership and the access rules protecting each
// resource. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	owners map[ResourceID]graph.NodeID
	rules  map[ResourceID][]*Rule
	nextID int
	// gen counts policy mutations (registrations, rule additions and
	// removals). Snapshot-isolated readers record it to detect staleness;
	// it is atomic so the check needs no lock.
	gen atomic.Uint64
}

// Generation returns the policy mutation counter: it changes whenever a
// resource is registered or a rule is added or removed. Like
// graph.Graph.Version it is safe to read concurrently with mutations.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Clone returns an independent copy of the store — a frozen policy view for
// snapshot-isolated evaluation. Rule values are shared (they are immutable
// once added); the per-resource rule slices and ownership map are copied, so
// later mutations of s are invisible to the clone and vice versa.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &Store{
		owners: make(map[ResourceID]graph.NodeID, len(s.owners)),
		rules:  make(map[ResourceID][]*Rule, len(s.rules)),
		nextID: s.nextID,
	}
	for r, o := range s.owners {
		c.owners[r] = o
	}
	for r, rs := range s.rules {
		c.rules[r] = append([]*Rule(nil), rs...)
	}
	return c
}

// NewStore returns an empty policy store.
func NewStore() *Store {
	return &Store{
		owners: make(map[ResourceID]graph.NodeID),
		rules:  make(map[ResourceID][]*Rule),
	}
}

// Register declares a resource and its owner. Re-registering with a
// different owner is an error.
func (s *Store) Register(res ResourceID, owner graph.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.owners[res]; ok && cur != owner {
		return fmt.Errorf("core: resource %q already owned by node %d", res, cur)
	}
	if _, ok := s.owners[res]; !ok {
		s.owners[res] = owner
		s.gen.Add(1)
	}
	return nil
}

// Unregister removes a resource registration, provided no rules are
// attached, and reports whether it did. It exists so a rolled-back batch
// can undo the registration its Share created (the rule itself having been
// removed first).
func (s *Store) Unregister(res ResourceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.owners[res]; !ok || len(s.rules[res]) > 0 {
		return false
	}
	delete(s.owners, res)
	delete(s.rules, res)
	s.gen.Add(1)
	return true
}

// Owner returns the owner of a registered resource.
func (s *Store) Owner(res ResourceID) (graph.NodeID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.owners[res]
	return o, ok
}

// AddRule attaches a rule to its resource. The resource must be registered
// and owned by the rule's owner. An empty rule ID is assigned automatically.
func (s *Store) AddRule(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.owners[r.Resource]
	if !ok {
		return fmt.Errorf("core: resource %q not registered", r.Resource)
	}
	if owner != r.Owner {
		return fmt.Errorf("core: rule owner %d is not resource owner %d", r.Owner, owner)
	}
	if r.ID == "" {
		s.nextID++
		r.ID = fmt.Sprintf("rule-%d", s.nextID)
	} else if n, ok := ruleSeq(r.ID); ok && n > s.nextID {
		// An explicit auto-style ID (rule-N) — as restored by ReadStore or
		// WAL replay — must advance the counter, or the next auto-assigned
		// ID would collide with it.
		s.nextID = n
	}
	for _, existing := range s.rules[r.Resource] {
		if existing.ID == r.ID {
			return fmt.Errorf("core: duplicate rule id %q on resource %q", r.ID, r.Resource)
		}
	}
	s.rules[r.Resource] = append(s.rules[r.Resource], r)
	s.gen.Add(1)
	return nil
}

// ruleSeq parses an auto-assigned rule ID of the form "rule-N".
func ruleSeq(id string) (int, bool) {
	const prefix = "rule-"
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0, false
	}
	n := 0
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int(c - '0')
		if n > (1<<31-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// RemoveRule detaches a rule by id; it reports whether the rule existed.
func (s *Store) RemoveRule(res ResourceID, ruleID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rules := s.rules[res]
	for i, r := range rules {
		if r.ID == ruleID {
			// Copy instead of splicing in place. Not strictly required —
			// Clone and RulesFor hand out their own slice copies — but it
			// keeps old backing arrays immutable so no future reader can
			// come to depend on that splice being private.
			next := make([]*Rule, 0, len(rules)-1)
			next = append(next, rules[:i]...)
			next = append(next, rules[i+1:]...)
			s.rules[res] = next
			s.gen.Add(1)
			return true
		}
	}
	return false
}

// RulesFor returns a copy of the rules protecting a resource.
func (s *Store) RulesFor(res ResourceID) []*Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Rule(nil), s.rules[res]...)
}

// Resources returns all registered resource IDs, sorted.
func (s *Store) Resources() []ResourceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ResourceID, 0, len(s.owners))
	for r := range s.owners {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Effect is the outcome of an access decision.
type Effect uint8

// Decision effects.
const (
	Deny Effect = iota
	Allow
)

// String renders the effect as "allow" or "deny".
func (e Effect) String() string {
	if e == Allow {
		return "allow"
	}
	return "deny"
}

// Decision records the outcome of one access request.
type Decision struct {
	Resource  ResourceID
	Requester graph.NodeID
	Effect    Effect
	// RuleID is the granting rule, "owner" for owner access, "" on deny.
	RuleID string
	// Reason is a human-readable explanation.
	Reason string
}

// AuditLog is a bounded, concurrency-safe decision trail. It is shared by
// pointer so that a trail survives engine rebuilds (e.g. snapshot
// republication after a graph mutation).
type AuditLog struct {
	mu    sync.Mutex
	trail []Decision
	limit int
}

// NewAuditLog returns an audit log retaining at most limit decisions
// (0 keeps the default of 1024 entries; negative disables auditing).
func NewAuditLog(limit int) *AuditLog {
	if limit == 0 {
		limit = 1024
	}
	return &AuditLog{limit: limit}
}

// Record appends one decision, evicting the oldest beyond the limit.
func (l *AuditLog) Record(d Decision) {
	if l.limit < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trail = append(l.trail, d)
	if len(l.trail) > l.limit {
		l.trail = l.trail[len(l.trail)-l.limit:]
	}
}

// Decisions returns a copy of the retained trail, oldest first.
func (l *AuditLog) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Decision(nil), l.trail...)
}

// Len returns the retained trail length without copying it.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.trail)
}

// Engine intercepts access requests and decides them against a Store using
// an Evaluator, keeping a bounded audit trail. Decide is safe for concurrent
// use provided the Store and Evaluator are (a frozen Store clone and a
// read-only evaluator in the snapshot-isolated configuration).
type Engine struct {
	store *Store
	eval  Evaluator
	log   *AuditLog
}

// NewEngine returns a decision engine. auditLimit bounds the retained audit
// trail (0 keeps the default of 1024 entries; negative disables auditing).
func NewEngine(store *Store, eval Evaluator, auditLimit int) *Engine {
	return NewEngineWithLog(store, eval, NewAuditLog(auditLimit))
}

// NewEngineWithLog returns a decision engine recording to an existing audit
// log, so that several engine incarnations share one trail.
func NewEngineWithLog(store *Store, eval Evaluator, log *AuditLog) *Engine {
	return &Engine{store: store, eval: eval, log: log}
}

// Decide answers one access request: may requester access res?
func (e *Engine) Decide(res ResourceID, requester graph.NodeID) (Decision, error) {
	d := Decision{Resource: res, Requester: requester}
	owner, ok := e.store.Owner(res)
	if !ok {
		d.Reason = "unknown resource"
		e.record(d)
		return d, nil
	}
	if owner == requester {
		d.Effect = Allow
		d.RuleID = "owner"
		d.Reason = "requester owns the resource"
		e.record(d)
		return d, nil
	}
	for _, rule := range e.store.RulesFor(res) {
		valid := true
		for _, cond := range rule.Conditions {
			ok, err := e.eval.Reachable(rule.Owner, requester, cond.Path)
			if err != nil {
				return Decision{}, fmt.Errorf("core: evaluating rule %q: %w", rule.ID, err)
			}
			if !ok {
				valid = false
				break
			}
		}
		if valid {
			d.Effect = Allow
			d.RuleID = rule.ID
			d.Reason = fmt.Sprintf("all conditions of rule %q satisfied", rule.ID)
			e.record(d)
			return d, nil
		}
	}
	d.Reason = "no access rule satisfied"
	e.record(d)
	return d, nil
}

func (e *Engine) record(d Decision) { e.log.Record(d) }

// Audit returns a copy of the retained decision trail, oldest first.
func (e *Engine) Audit() []Decision { return e.log.Decisions() }

// Log returns the engine's audit log.
func (e *Engine) Log() *AuditLog { return e.log }
