package ring

import (
	"fmt"
	"testing"
)

func TestNewRejectsZeroShards(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("New(0, 8) succeeded, want error")
	}
	if _, err := New(-3, 8); err == nil {
		t.Fatal("New(-3, 8) succeeded, want error")
	}
}

func TestDefaultVNodes(t *testing.T) {
	r, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want DefaultVNodes (%d)", r.VNodes(), DefaultVNodes)
	}
	if r.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", r.Shards())
	}
}

// Two rings built from the same parameters must place every name
// identically — the router and the stateless shards depend on exactly this
// agreement instead of a shipped membership table.
func TestOwnerDeterministic(t *testing.T) {
	a, err := New(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("user-%04d", i)
		oa, ob := a.Owner(name), b.Owner(name)
		if oa != ob {
			t.Fatalf("Owner(%q): %d vs %d from identical rings", name, oa, ob)
		}
		if oa < 0 || oa >= 5 {
			t.Fatalf("Owner(%q) = %d, outside [0,5)", name, oa)
		}
	}
}

func TestSingleShardOwnsEverything(t *testing.T) {
	r, err := New(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(fmt.Sprintf("n%d", i)); got != 0 {
			t.Fatalf("Owner = %d with one shard, want 0", got)
		}
	}
}

// With the default vnode count the placement should be within a reasonable
// band of uniform — the property the vnode count was chosen for.
func TestOwnershipRoughlyBalanced(t *testing.T) {
	const shards, names = 4, 8000
	r, err := New(shards, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < names; i++ {
		counts[r.Owner(fmt.Sprintf("member-%05d", i))]++
	}
	for s, c := range counts {
		frac := float64(c) / names
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("shard %d owns %.1f%% of names (counts %v) — placement badly skewed", s, 100*frac, counts)
		}
	}
}

// Growing the ring by one shard must move only names, never shuffle the
// ownership of the ones both rings place on a surviving shard differently
// than consistent hashing allows: a name either keeps its owner or moves to
// the NEW shard.
func TestGrowthMovesNamesOnlyToNewShard(t *testing.T) {
	old, err := New(4, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New(5, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 4000; i++ {
		name := fmt.Sprintf("acct-%05d", i)
		a, b := old.Owner(name), grown.Owner(name)
		if a == b {
			continue
		}
		moved++
		if b != 4 {
			t.Fatalf("Owner(%q) moved %d→%d when adding shard 4 — consistent hashing must only move names to the new shard", name, a, b)
		}
	}
	if moved == 0 {
		t.Fatal("no names moved to the new shard — growth did nothing")
	}
	if frac := float64(moved) / 4000; frac > 0.40 {
		t.Fatalf("%.1f%% of names moved when adding one shard to four — far more than the ~1/5 consistent hashing promises", 100*frac)
	}
}
