// Package ring implements the consistent-hash ring the shard router and the
// shard backends share: user and resource-owner NAMES (the only identifiers
// stable across shards — numeric node IDs are assigned per shard) hash onto
// a circle of virtual nodes, and the first virtual node at or after a name's
// hash owns it.
//
// The ring is deterministic: the same (shards, vnodes) parameters produce the
// same placement in every process, so a stateless shard can classify which
// frontier nodes it owns from the parameters alone, without the router
// shipping a membership table.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard: enough to spread
// ownership within a few percent of uniform, cheap enough to rebuild per
// request on a shard (shards cache rings by parameters anyway).
const DefaultVNodes = 64

// Ring places names on shards by consistent hashing.
type Ring struct {
	shards int
	vnodes int
	points []point // sorted by hash
}

type point struct {
	hash  uint64
	shard int
}

// New builds a ring over shards backends with vnodes virtual nodes each
// (vnodes <= 0 selects DefaultVNodes).
func New(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("ring: need at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]point, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashString("shard-" + strconv.Itoa(s) + "-vnode-" + strconv.Itoa(v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tiebreak for (vanishingly unlikely) hash collisions,
		// so every process sorts identically.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the backend count.
func (r *Ring) Shards() int { return r.shards }

// VNodes returns the per-shard virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the shard owning name: the shard of the first virtual node
// clockwise from the name's hash.
func (r *Ring) Owner(name string) int {
	if r.shards == 1 {
		return 0
	}
	h := hashString(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashString is 64-bit FNV-1a finished with a splitmix64 avalanche: stable
// across processes and platforms, which the router/shard ownership agreement
// depends on. FNV alone disperses the structured vnode keys ("shard-S-vnode-V")
// poorly — without the finalizer a 4-shard ring left one shard owning nearly
// half the circle and another 6%.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
