package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	g.SetAttr(b, "vip", Bool(true))
	if _, err := g.AddWeightedEdge(b, a, "parent", 0.8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	assertGraphsEqual(t, g, got)
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: got (%d,%d) want (%d,%d)",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	want.Nodes(func(n Node) bool {
		id, ok := got.NodeByName(n.Name)
		if !ok {
			t.Fatalf("node %q lost", n.Name)
		}
		gn := got.Node(id)
		if len(gn.Attrs) != len(n.Attrs) {
			t.Fatalf("node %q attrs: got %v want %v", n.Name, gn.Attrs, n.Attrs)
		}
		for k, v := range n.Attrs {
			gv, ok := gn.Attrs.Get(k)
			if !ok || !gv.Equal(v) {
				t.Fatalf("node %q attr %q: got %v want %v", n.Name, k, gv, v)
			}
		}
		return true
	})
	want.Edges(func(e Edge) bool {
		fromName := want.Node(e.From).Name
		toName := want.Node(e.To).Name
		gf, _ := got.NodeByName(fromName)
		gt, _ := got.NodeByName(toName)
		if !got.HasEdge(gf, gt, want.LabelName(e.Label)) {
			t.Fatalf("edge %s lost", want.EdgeString(e))
		}
		return true
	})
}

func TestRoundTripDropsTombstones(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	if err := g.RemoveEdge(g.FindEdge(a, b, mustLabel(t, g, "friend"))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 2 {
		t.Fatalf("round trip kept tombstone: %d edges", got.NumEdges())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"magic":"wrong","nodes":0,"edges":0}` + "\n",
		`{"magic":"reachac-graph-v1","nodes":1,"edges":0}` + "\n",                                                   // truncated: node missing
		`{"magic":"reachac-graph-v1","nodes":0,"edges":1}` + "\n",                                                   // truncated: edge missing
		`{"magic":"reachac-graph-v1","nodes":0,"edges":1}` + "\n" + `{"f":5,"t":6,"l":"x"}` + "\n",                  // bad endpoints
		`{"magic":"reachac-graph-v1","nodes":1,"edges":0}` + "\n" + `{"name":"a","attrs":{"x":{"k":"zzz"}}}` + "\n", // bad kind
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"friend", "colleague", "parent", "follows"}
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			var attrs Attrs
			if rng.Intn(2) == 0 {
				attrs = Attrs{"age": Int(18 + rng.Intn(60)), "city": String("c" + string(rune('a'+rng.Intn(5))))}
			}
			g.MustAddNode(nodeName(i), attrs)
		}
		for tries := 0; tries < n*3; tries++ {
			from := NodeID(rng.Intn(n))
			to := NodeID(rng.Intn(n))
			if from == to {
				continue
			}
			_, _ = g.AddEdge(from, to, labels[rng.Intn(len(labels))]) // duplicates allowed to fail
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("trial %d Write: %v", trial, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d Read: %v", trial, err)
		}
		assertGraphsEqual(t, g, got)
	}
}

func nodeName(i int) string {
	return "u" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
