package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The on-disk format is line-delimited JSON: one header record, then one
// record per node, then one record per live edge. It is stable, diffable,
// and streams without loading the whole file.

type ioHeader struct {
	Magic string `json:"magic"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

type ioValue struct {
	Kind string  `json:"k"`
	Str  string  `json:"s,omitempty"`
	Num  float64 `json:"n,omitempty"`
	Bool bool    `json:"b,omitempty"`
}

type ioNode struct {
	Name  string             `json:"name"`
	Attrs map[string]ioValue `json:"attrs,omitempty"`
}

type ioEdge struct {
	From   uint32  `json:"f"`
	To     uint32  `json:"t"`
	Label  string  `json:"l"`
	Weight float64 `json:"w,omitempty"`
}

const ioMagic = "reachac-graph-v1"

func encodeValue(v Value) ioValue {
	switch v.Kind() {
	case KindNumber:
		return ioValue{Kind: "n", Num: v.Num()}
	case KindBool:
		return ioValue{Kind: "b", Bool: v.B()}
	default:
		return ioValue{Kind: "s", Str: v.Str()}
	}
}

func decodeValue(v ioValue) (Value, error) {
	switch v.Kind {
	case "s":
		return String(v.Str), nil
	case "n":
		return Number(v.Num), nil
	case "b":
		return Bool(v.Bool), nil
	default:
		return Value{}, fmt.Errorf("graph: unknown value kind %q", v.Kind)
	}
}

// MarshalJSON encodes the value in the same tagged form the graph file
// format uses, so types like Delta (whose Attrs carry Values) can be
// serialized with encoding/json — the WAL's record payloads rely on this.
func (v Value) MarshalJSON() ([]byte, error) {
	return json.Marshal(encodeValue(v))
}

// UnmarshalJSON decodes a value written by MarshalJSON.
func (v *Value) UnmarshalJSON(b []byte) error {
	var iv ioValue
	if err := json.Unmarshal(b, &iv); err != nil {
		return err
	}
	dv, err := decodeValue(iv)
	if err != nil {
		return err
	}
	*v = dv
	return nil
}

// Write serializes g to w. Tombstoned edges are dropped.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(ioHeader{Magic: ioMagic, Nodes: g.NumNodes(), Edges: g.NumEdges()}); err != nil {
		return err
	}
	for _, n := range g.nodes {
		rec := ioNode{Name: n.Name}
		if len(n.Attrs) > 0 {
			rec.Attrs = make(map[string]ioValue, len(n.Attrs))
			for k, v := range n.Attrs {
				rec.Attrs[k] = encodeValue(v)
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	var err error
	g.Edges(func(e Edge) bool {
		err = enc.Encode(ioEdge{From: uint32(e.From), To: uint32(e.To), Label: g.LabelName(e.Label), Weight: e.Weight})
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr ioHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if hdr.Magic != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr.Magic)
	}
	g := New()
	for i := 0; i < hdr.Nodes; i++ {
		var rec ioNode
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		var attrs Attrs
		if len(rec.Attrs) > 0 {
			attrs = make(Attrs, len(rec.Attrs))
			for k, v := range rec.Attrs {
				val, err := decodeValue(v)
				if err != nil {
					return nil, err
				}
				attrs[k] = val
			}
		}
		if _, err := g.AddNode(rec.Name, attrs); err != nil {
			return nil, err
		}
	}
	for i := 0; i < hdr.Edges; i++ {
		var rec ioEdge
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if _, err := g.AddWeightedEdge(NodeID(rec.From), NodeID(rec.To), rec.Label, rec.Weight); err != nil {
			return nil, err
		}
	}
	return g, nil
}
