package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The on-disk format is line-delimited JSON: one header record, then one
// record per node, then one record per live edge. It is stable, diffable,
// and streams without loading the whole file.

type ioHeader struct {
	Magic string `json:"magic"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

type ioValue struct {
	Kind string  `json:"k"`
	Str  string  `json:"s,omitempty"`
	Num  float64 `json:"n,omitempty"`
	Bool bool    `json:"b,omitempty"`
}

type ioNode struct {
	Name  string             `json:"name"`
	Attrs map[string]ioValue `json:"attrs,omitempty"`
}

type ioEdge struct {
	From   uint32  `json:"f"`
	To     uint32  `json:"t"`
	Label  string  `json:"l"`
	Weight float64 `json:"w,omitempty"`
}

const ioMagic = "reachac-graph-v1"

func encodeValue(v Value) ioValue {
	switch v.Kind() {
	case KindNumber:
		return ioValue{Kind: "n", Num: v.Num()}
	case KindBool:
		return ioValue{Kind: "b", Bool: v.B()}
	default:
		return ioValue{Kind: "s", Str: v.Str()}
	}
}

func decodeValue(v ioValue) (Value, error) {
	switch v.Kind {
	case "s":
		return String(v.Str), nil
	case "n":
		return Number(v.Num), nil
	case "b":
		return Bool(v.Bool), nil
	default:
		return Value{}, fmt.Errorf("graph: unknown value kind %q", v.Kind)
	}
}

// MarshalJSON encodes the value in the same tagged form the graph file
// format uses, so types like Delta (whose Attrs carry Values) can be
// serialized with encoding/json — the WAL's record payloads rely on this.
func (v Value) MarshalJSON() ([]byte, error) {
	return json.Marshal(encodeValue(v))
}

// UnmarshalJSON decodes a value written by MarshalJSON.
func (v *Value) UnmarshalJSON(b []byte) error {
	var iv ioValue
	if err := json.Unmarshal(b, &iv); err != nil {
		return err
	}
	dv, err := decodeValue(iv)
	if err != nil {
		return err
	}
	*v = dv
	return nil
}

// StreamWriter emits the graph file format record by record, so callers
// that produce nodes and edges incrementally (cmd/gengraph streaming a
// Topology) never hold a whole graph in memory. The format's header
// carries exact counts, so they must be known up front; Close validates
// that exactly that many records were written and that the underlying
// writer accepted every byte — a StreamWriter that Closes without error
// has produced a complete, loadable file.
type StreamWriter struct {
	bw         *bufio.Writer
	enc        *json.Encoder
	wantNodes  int
	wantEdges  int
	nodes      int
	edges      int
	firstError error
}

// NewStreamWriter starts a graph file on w declaring the given node and
// edge counts in the header.
func NewStreamWriter(w io.Writer, nodes, edges int) *StreamWriter {
	bw := bufio.NewWriter(w)
	sw := &StreamWriter{bw: bw, enc: json.NewEncoder(bw), wantNodes: nodes, wantEdges: edges}
	sw.firstError = sw.enc.Encode(ioHeader{Magic: ioMagic, Nodes: nodes, Edges: edges})
	return sw
}

func (sw *StreamWriter) fail(err error) error {
	if sw.firstError == nil {
		sw.firstError = err
	}
	return sw.firstError
}

// Node writes the next node record. All nodes must be written, in node-ID
// order, before the first edge.
func (sw *StreamWriter) Node(name string, attrs Attrs) error {
	if sw.firstError != nil {
		return sw.firstError
	}
	if sw.edges > 0 {
		return sw.fail(fmt.Errorf("graph: node %q written after edges", name))
	}
	if sw.nodes >= sw.wantNodes {
		return sw.fail(fmt.Errorf("graph: more than the declared %d nodes", sw.wantNodes))
	}
	rec := ioNode{Name: name}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]ioValue, len(attrs))
		for k, v := range attrs {
			rec.Attrs[k] = encodeValue(v)
		}
	}
	if err := sw.enc.Encode(rec); err != nil {
		return sw.fail(err)
	}
	sw.nodes++
	return nil
}

// Edge writes the next edge record.
func (sw *StreamWriter) Edge(from, to NodeID, label string, weight float64) error {
	if sw.firstError != nil {
		return sw.firstError
	}
	if sw.nodes != sw.wantNodes {
		return sw.fail(fmt.Errorf("graph: edge written after %d of %d nodes", sw.nodes, sw.wantNodes))
	}
	if sw.edges >= sw.wantEdges {
		return sw.fail(fmt.Errorf("graph: more than the declared %d edges", sw.wantEdges))
	}
	if err := sw.enc.Encode(ioEdge{From: uint32(from), To: uint32(to), Label: label, Weight: weight}); err != nil {
		return sw.fail(err)
	}
	sw.edges++
	return nil
}

// Close flushes buffered output and fails if the stream is incomplete —
// fewer records than the header declared, or any earlier write error.
func (sw *StreamWriter) Close() error {
	if sw.firstError != nil {
		return sw.firstError
	}
	if sw.nodes != sw.wantNodes || sw.edges != sw.wantEdges {
		return sw.fail(fmt.Errorf("graph: incomplete stream: %d/%d nodes, %d/%d edges",
			sw.nodes, sw.wantNodes, sw.edges, sw.wantEdges))
	}
	return sw.fail(sw.bw.Flush())
}

// Write serializes g to w. Tombstoned edges are dropped.
func (g *Graph) Write(w io.Writer) error {
	sw := NewStreamWriter(w, g.NumNodes(), g.NumEdges())
	for _, n := range g.nodes {
		if err := sw.Node(n.Name, n.Attrs); err != nil {
			return err
		}
	}
	ok := true
	g.Edges(func(e Edge) bool {
		ok = sw.Edge(e.From, e.To, g.LabelName(e.Label), e.Weight) == nil
		return ok
	})
	return sw.Close()
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr ioHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if hdr.Magic != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr.Magic)
	}
	g := New()
	for i := 0; i < hdr.Nodes; i++ {
		var rec ioNode
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		var attrs Attrs
		if len(rec.Attrs) > 0 {
			attrs = make(Attrs, len(rec.Attrs))
			for k, v := range rec.Attrs {
				val, err := decodeValue(v)
				if err != nil {
					return nil, err
				}
				attrs[k] = val
			}
		}
		if _, err := g.AddNode(rec.Name, attrs); err != nil {
			return nil, err
		}
	}
	for i := 0; i < hdr.Edges; i++ {
		var rec ioEdge
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if _, err := g.AddWeightedEdge(NodeID(rec.From), NodeID(rec.To), rec.Label, rec.Weight); err != nil {
			return nil, err
		}
	}
	return g, nil
}
