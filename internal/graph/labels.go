package graph

import "fmt"

// Label identifies an interned relationship type (an element of the finite
// alphabet Σ in Definition 1). Labels are dense small integers so that
// per-label tables can be indexed by slice.
type Label uint16

// NoLabel is returned by lookups that fail.
const NoLabel Label = ^Label(0)

// labelTable interns relationship-type names.
type labelTable struct {
	names []string
	ids   map[string]Label
}

func newLabelTable() *labelTable {
	return &labelTable{ids: make(map[string]Label)}
}

func (t *labelTable) intern(name string) Label {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := Label(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

func (t *labelTable) lookup(name string) (Label, bool) {
	id, ok := t.ids[name]
	return id, ok
}

func (t *labelTable) name(id Label) string {
	if int(id) >= len(t.names) {
		return fmt.Sprintf("label#%d", id)
	}
	return t.names[id]
}

func (t *labelTable) len() int { return len(t.names) }

func (t *labelTable) clone() *labelTable {
	c := newLabelTable()
	c.names = append([]string(nil), t.names...)
	for k, v := range t.ids {
		c.ids[k] = v
	}
	return c
}
