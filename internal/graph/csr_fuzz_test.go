package graph

import (
	"fmt"
	"testing"
)

// FuzzCSRAdjacency drives a random add/remove/compact sequence from the fuzz
// input and asserts after every mutation batch that the CSR view agrees with
// the legacy OutEdges/InEdges iteration: identical per-(node,label) runs in
// identical order, identical degrees.
func FuzzCSRAdjacency(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Add([]byte{255, 254, 253, 3, 3, 3, 9, 9, 9, 0, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		g := New()
		labels := []string{"friend", "colleague", "parent", "follows"}
		var liveEdges []EdgeID
		nodeCount := 0
		for i := 0; i+2 < len(data); i += 3 {
			op, x, y := data[i], data[i+1], data[i+2]
			switch op % 8 {
			case 0, 1: // add node (bounded)
				if nodeCount < 48 {
					g.MustAddNode(fmt.Sprintf("n%d", nodeCount), nil)
					nodeCount++
				}
			case 6: // remove a live edge
				if len(liveEdges) > 0 {
					j := int(x) % len(liveEdges)
					id := liveEdges[j]
					if g.EdgeAlive(id) {
						if err := g.RemoveEdge(id); err != nil {
							t.Fatalf("RemoveEdge(%d): %v", id, err)
						}
					}
					liveEdges = append(liveEdges[:j], liveEdges[j+1:]...)
				}
			case 7: // compact tombstones (renumbers every EdgeID)
				g.CompactTombstones()
				liveEdges = liveEdges[:0]
				g.Edges(func(e Edge) bool {
					liveEdges = append(liveEdges, e.ID)
					return true
				})
			default: // add edge
				if nodeCount < 2 {
					continue
				}
				from := NodeID(int(x) % nodeCount)
				to := NodeID(int(y) % nodeCount)
				if from == to {
					continue
				}
				if id, err := g.AddEdge(from, to, labels[int(op)%len(labels)]); err == nil {
					liveEdges = append(liveEdges, id)
				}
			}
			checkCSRAgainstLegacy(t, g)
		}
	})
}
