package graph

import (
	"strings"
	"testing"
)

func buildTriangle(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.MustAddNode("a", Attrs{"age": Int(24)})
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", Attrs{"job": String("teacher")})
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(b, c, "friend")
	g.MustAddEdge(a, c, "colleague")
	return g, a, b, c
}

func TestAddNode(t *testing.T) {
	g := New()
	a, err := g.AddNode("alice", nil)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if a != 0 {
		t.Fatalf("first node ID = %d, want 0", a)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	if got := g.Node(a).Name; got != "alice" {
		t.Fatalf("Node(a).Name = %q", got)
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	a := g.MustAddNode("alice", nil)
	id, err := g.AddNode("alice", nil)
	if err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
	if id != a {
		t.Fatalf("duplicate AddNode returned %d, want existing %d", id, a)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes after duplicate = %d, want 1", g.NumNodes())
	}
}

func TestNodeByName(t *testing.T) {
	g, a, _, _ := buildTriangle(t)
	id, ok := g.NodeByName("a")
	if !ok || id != a {
		t.Fatalf("NodeByName(a) = %d,%v", id, ok)
	}
	if _, ok := g.NodeByName("zed"); ok {
		t.Fatal("NodeByName(zed) found a ghost")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(a, b, "friend") {
		t.Fatal("missing a-friend->b")
	}
	if g.HasEdge(b, a, "friend") {
		t.Fatal("phantom reverse edge")
	}
	if g.HasEdge(a, b, "parent") {
		t.Fatal("phantom label")
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", nil)
	if _, err := g.AddEdge(a, a, "friend"); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	if _, err := g.AddEdge(a, b, "friend"); err == nil {
		t.Fatal("duplicate (from,to,label) accepted")
	}
	// A different label between the same endpoints is fine.
	if _, err := g.AddEdge(a, b, "parent"); err != nil {
		t.Fatalf("parallel edge with new label rejected: %v", err)
	}
}

func TestAddEdgeRejectsBadEndpoints(t *testing.T) {
	g := New()
	g.MustAddNode("a", nil)
	if _, err := g.AddEdge(0, 99, "friend"); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	eid := g.FindEdge(a, b, mustLabel(t, g, "friend"))
	if eid == InvalidEdge {
		t.Fatal("FindEdge failed")
	}
	if err := g.RemoveEdge(eid); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges after removal = %d, want 2", g.NumEdges())
	}
	if g.HasEdge(a, b, "friend") {
		t.Fatal("removed edge still visible")
	}
	if err := g.RemoveEdge(eid); err == nil {
		t.Fatal("double removal accepted")
	}
	// Re-adding the relationship after removal must work.
	if _, err := g.AddEdge(a, b, "friend"); err != nil {
		t.Fatalf("re-add after removal: %v", err)
	}
}

func mustLabel(t *testing.T, g *Graph, name string) Label {
	t.Helper()
	l, ok := g.LookupLabel(name)
	if !ok {
		t.Fatalf("label %q not interned", name)
	}
	return l
}

func TestIterationSkipsTombstones(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	eid := g.FindEdge(b, c, mustLabel(t, g, "friend"))
	if err := g.RemoveEdge(eid); err != nil {
		t.Fatal(err)
	}
	count := 0
	g.Edges(func(e Edge) bool { count++; return true })
	if count != 2 {
		t.Fatalf("Edges visited %d, want 2", count)
	}
	g.OutEdges(b, func(e Edge) bool {
		t.Fatalf("OutEdges(b) yielded tombstoned edge %v", e)
		return true
	})
	if d := g.InDegree(c); d != 1 {
		t.Fatalf("InDegree(c) = %d, want 1 (colleague from a)", d)
	}
	_ = a
}

func TestIterationEarlyStop(t *testing.T) {
	g, a, _, _ := buildTriangle(t)
	n := 0
	g.OutEdges(a, func(Edge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
	n = 0
	g.Nodes(func(Node) bool { n++; return false })
	if n != 1 {
		t.Fatalf("node early stop visited %d, want 1", n)
	}
	n = 0
	g.Edges(func(Edge) bool { n++; return false })
	if n != 1 {
		t.Fatalf("edge early stop visited %d, want 1", n)
	}
}

func TestDegrees(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	if d := g.OutDegree(a); d != 2 {
		t.Fatalf("OutDegree(a) = %d, want 2", d)
	}
	if d := g.InDegree(c); d != 2 {
		t.Fatalf("InDegree(c) = %d, want 2", d)
	}
	if d := g.InDegree(b); d != 1 {
		t.Fatalf("InDegree(b) = %d, want 1", d)
	}
}

func TestLabelInterning(t *testing.T) {
	g := New()
	f1 := g.Label("friend")
	f2 := g.Label("friend")
	c := g.Label("colleague")
	if f1 != f2 {
		t.Fatalf("interning not idempotent: %d vs %d", f1, f2)
	}
	if f1 == c {
		t.Fatal("distinct labels collide")
	}
	if g.LabelName(f1) != "friend" {
		t.Fatalf("LabelName = %q", g.LabelName(f1))
	}
	if g.NumLabels() != 2 {
		t.Fatalf("NumLabels = %d, want 2", g.NumLabels())
	}
	labels := g.Labels()
	if len(labels) != 2 || labels[0] != "friend" || labels[1] != "colleague" {
		t.Fatalf("Labels() = %v", labels)
	}
}

func TestAttrs(t *testing.T) {
	g, a, _, c := buildTriangle(t)
	v, ok := g.Attr(a, "age")
	if !ok || v.Num() != 24 {
		t.Fatalf("Attr(a, age) = %v,%v", v, ok)
	}
	if _, ok := g.Attr(a, "job"); ok {
		t.Fatal("Attr found missing key")
	}
	g.SetAttr(c, "age", Int(40))
	v, ok = g.Attr(c, "age")
	if !ok || v.Num() != 40 {
		t.Fatalf("SetAttr/Attr round trip = %v,%v", v, ok)
	}
	// SetAttr on a node created without attrs must allocate.
	g.SetAttr(1, "x", Bool(true))
	if v, ok := g.Attr(1, "x"); !ok || !v.B() {
		t.Fatal("SetAttr on nil Attrs failed")
	}
}

func TestEdgeString(t *testing.T) {
	g, a, b, _ := buildTriangle(t)
	e := g.Edge(g.FindEdge(a, b, mustLabel(t, g, "friend")))
	if got := g.EdgeString(e); got != "friend a-b" {
		t.Fatalf("EdgeString = %q", got)
	}
}

func TestClone(t *testing.T) {
	g, a, b, c := buildTriangle(t)
	eid := g.FindEdge(a, b, mustLabel(t, g, "friend"))
	if err := g.RemoveEdge(eid); err != nil {
		t.Fatal(err)
	}
	cl := g.Clone()
	if cl.NumNodes() != 3 || cl.NumEdges() != 2 {
		t.Fatalf("clone has %d nodes %d edges", cl.NumNodes(), cl.NumEdges())
	}
	// Mutating the clone must not touch the original.
	cl.MustAddEdge(b, a, "friend")
	if g.HasEdge(b, a, "friend") {
		t.Fatal("clone mutation leaked into original")
	}
	// Attributes are deep-copied.
	cl.SetAttr(a, "age", Int(99))
	if v, _ := g.Attr(a, "age"); v.Num() != 24 {
		t.Fatal("clone attr mutation leaked")
	}
	if !cl.HasEdge(b, c, "friend") {
		t.Fatal("clone lost an edge")
	}
}

func TestStats(t *testing.T) {
	g, _, _, _ := buildTriangle(t)
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 3 || s.Labels != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("Stats degrees = %+v", s)
	}
}

func TestSortedNodeNames(t *testing.T) {
	g := New()
	g.MustAddNode("zoe", nil)
	g.MustAddNode("amy", nil)
	names := g.SortedNodeNames()
	if strings.Join(names, ",") != "amy,zoe" {
		t.Fatalf("SortedNodeNames = %v", names)
	}
}
