package graph

import "fmt"

// DeltaOp is the kind of one recorded structural mutation.
type DeltaOp uint8

// Delta operations. Attribute updates (SetAttr) do not bump the version
// counter and are deliberately not logged, matching snapshot semantics.
const (
	// OpAddNode records an AddNode call.
	OpAddNode DeltaOp = iota
	// OpAddEdge records an AddEdge/AddWeightedEdge call.
	OpAddEdge
	// OpRemoveEdge records a RemoveEdge call. The edge is identified by
	// (From, To, Label) rather than EdgeID, because clones renumber edges.
	OpRemoveEdge
	// OpCompact records a CompactTombstones call. It renumbers edge IDs but
	// changes no live relationship, so replaying it on a clone is at most a
	// compaction of the clone's own tombstones.
	OpCompact
)

func (op DeltaOp) String() string {
	switch op {
	case OpAddNode:
		return "add-node"
	case OpAddEdge:
		return "add-edge"
	case OpRemoveEdge:
		return "remove-edge"
	case OpCompact:
		return "compact"
	default:
		return fmt.Sprintf("DeltaOp(%d)", uint8(op))
	}
}

// Delta is one recorded structural mutation. Deltas are expressed in terms
// stable across clones: node IDs (never reused), label names and endpoint
// pairs — never EdgeIDs, which clones renumber. The JSON tags define the
// WAL's structural record payload; every field's zero value round-trips, so
// omitempty is lossless.
type Delta struct {
	Op DeltaOp `json:"op"`
	// Name and Attrs describe an OpAddNode. Attrs is shared with the live
	// node; Apply clones it, mirroring Graph.Clone.
	Name  string `json:"name,omitempty"`
	Attrs Attrs  `json:"attrs,omitempty"`
	// From, To, Label and Weight describe an edge for OpAddEdge and
	// OpRemoveEdge (Weight is OpAddEdge-only).
	From   NodeID  `json:"from,omitempty"`
	To     NodeID  `json:"to,omitempty"`
	Label  string  `json:"label,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// DefaultDeltaLogLimit is the default bound on the retained delta window.
// The log may transiently hold up to twice this many entries (trimming is
// amortized), so ChangesSince can serve any version within at least the last
// DefaultDeltaLogLimit mutations.
const DefaultDeltaLogLimit = 4096

// SetDeltaLogLimit bounds the retained delta window to at least limit
// mutations (0 keeps the current limit; negative disables logging entirely,
// forcing every snapshot advance down the full-clone path). Shrinking the
// window drops the oldest entries immediately.
func (g *Graph) SetDeltaLogLimit(limit int) {
	if limit == 0 {
		return
	}
	g.deltaLimit = limit
	if limit < 0 {
		g.deltas = nil
		g.deltaBase = g.version.Load()
		return
	}
	g.trimDeltas()
}

// record appends one delta after its mutation bumped the version counter,
// preserving the invariant len(deltas) == Version() - deltaBase.
func (g *Graph) record(d Delta) {
	if g.deltaLimit < 0 {
		g.deltaBase = g.version.Load()
		return
	}
	g.deltas = append(g.deltas, d)
	g.trimDeltas()
}

// trimDeltas drops the oldest entries once the log exceeds twice its limit,
// keeping trims amortized O(1) per mutation while always retaining at least
// deltaLimit entries.
func (g *Graph) trimDeltas() {
	limit := g.deltaLimit
	if limit <= 0 {
		limit = DefaultDeltaLogLimit
	}
	if len(g.deltas) <= 2*limit {
		return
	}
	drop := len(g.deltas) - limit
	g.deltaBase += uint64(drop)
	g.deltas = append(g.deltas[:0], g.deltas[drop:]...)
}

// ChangesSince returns the deltas that advance the graph from the given
// version to its current version, oldest first. ok is false when the window
// no longer reaches back that far (or version is from the future), in which
// case the caller must fall back to a full Clone. The returned slice is a
// copy. Like all mutating/bulk accessors it requires external
// synchronization with mutators; only Version itself is lock-free.
func (g *Graph) ChangesSince(version uint64) (deltas []Delta, ok bool) {
	cur := g.version.Load()
	if version == cur {
		return nil, true
	}
	if version > cur || version < g.deltaBase {
		return nil, false
	}
	return append([]Delta(nil), g.deltas[version-g.deltaBase:]...), true
}

// Apply replays one recorded delta onto g — typically a private clone being
// fast-forwarded to a newer version instead of being re-cloned from scratch.
// Deltas must be applied in the order ChangesSince returned them; an error
// means the clone has diverged from the log and must be discarded.
func (g *Graph) Apply(d Delta) error {
	switch d.Op {
	case OpAddNode:
		_, err := g.AddNode(d.Name, d.Attrs.Clone())
		return err
	case OpAddEdge:
		_, err := g.AddWeightedEdge(d.From, d.To, d.Label, d.Weight)
		return err
	case OpRemoveEdge:
		l, ok := g.labels.lookup(d.Label)
		if !ok {
			return fmt.Errorf("graph: apply remove-edge: unknown label %q", d.Label)
		}
		e := g.FindEdge(d.From, d.To, l)
		if e == InvalidEdge {
			return fmt.Errorf("graph: apply remove-edge: no %s edge %d -> %d", d.Label, d.From, d.To)
		}
		return g.RemoveEdge(e)
	case OpCompact:
		g.CompactTombstones()
		return nil
	default:
		return fmt.Errorf("graph: unknown delta op %d", uint8(d.Op))
	}
}

// NumTombstones returns the number of removed (tombstoned) edges still
// occupying slots in the edge store.
func (g *Graph) NumTombstones() int { return len(g.edges) - g.live }

// CompactTombstones rebuilds the edge store without tombstoned edges,
// renumbering the surviving edges densely. It invalidates every externally
// held EdgeID (Node IDs are untouched), bumps the version and logs an
// OpCompact delta, so snapshot clones advanced through the log compact
// their own tombstones at the same point in history. It returns the number
// of tombstones dropped; a tombstone-free graph is left untouched.
func (g *Graph) CompactTombstones() int {
	dead := g.NumTombstones()
	if dead == 0 {
		return 0
	}
	edges := make([]Edge, 0, g.live)
	for i := range g.out {
		g.out[i] = g.out[i][:0]
	}
	for i := range g.in {
		g.in[i] = g.in[i][:0]
	}
	for _, e := range g.edges {
		if e.deleted {
			continue
		}
		e.ID = EdgeID(len(edges))
		edges = append(edges, e)
		g.out[e.From] = append(g.out[e.From], e.ID)
		g.in[e.To] = append(g.in[e.To], e.ID)
	}
	g.edges = edges
	g.version.Add(1)
	g.record(Delta{Op: OpCompact})
	return dead
}
