// Package graph implements the social network graph of Definition 1 in the
// paper: a directed, edge-labeled graph G = (V, E, λ, δ) where λ carries
// per-node attribute tuples and δ assigns each edge a relationship type from
// a finite alphabet Σ.
//
// The representation favors read-heavy access-control workloads: nodes and
// edges are stored in dense slices indexed by NodeID/EdgeID, with per-node
// in/out adjacency lists. Edges may be removed (tombstoned); node IDs are
// never reused.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// NodeID identifies a social network member. IDs are dense, starting at 0.
type NodeID uint32

// EdgeID identifies a relationship edge. IDs are dense, starting at 0.
type EdgeID uint32

// InvalidNode is returned by lookups that fail.
const InvalidNode = NodeID(^uint32(0))

// InvalidEdge is returned by lookups that fail.
const InvalidEdge = EdgeID(^uint32(0))

// Node is a social network member: a name (unique handle) and an attribute
// tuple λ(v).
type Node struct {
	ID    NodeID
	Name  string
	Attrs Attrs
}

// Edge is a directed relationship (x, y) with type δ(e) and an optional
// weight (the paper's figures annotate some edges with trust weights such as
// "Babysitting;0.8"; the weight is carried but not interpreted by the model).
type Edge struct {
	ID     EdgeID
	From   NodeID
	To     NodeID
	Label  Label
	Weight float64
	// deleted marks a tombstoned edge; iteration skips it.
	deleted bool
}

// Graph is the social network graph. The zero value is not usable; call New.
type Graph struct {
	nodes  []Node
	edges  []Edge
	out    [][]EdgeID
	in     [][]EdgeID
	byName map[string]NodeID
	labels *labelTable
	live   int // number of non-deleted edges
	// version counts structural mutations (node/edge additions, edge
	// removals); precomputed evaluators record it to detect staleness. It
	// is atomic so that snapshot validity checks may read it without
	// holding the mutator's lock; all other fields still require external
	// synchronization between mutators and readers.
	version atomic.Uint64
	// deltas is the bounded mutation log backing ChangesSince: deltas[i]
	// is the mutation that advanced the version from deltaBase+i to
	// deltaBase+i+1. Clones advanced through the log skip the O(V+E)
	// re-clone a mutation would otherwise force on the next snapshot.
	deltas    []Delta
	deltaBase uint64
	// deltaLimit bounds the retained window (0 means
	// DefaultDeltaLogLimit; negative disables logging).
	deltaLimit int
	// csrState caches the compressed-sparse-row adjacency view serving the
	// read hot path; see csr.go.
	csrState
}

// New returns an empty social network graph.
func New() *Graph {
	return &Graph{
		byName: make(map[string]NodeID),
		labels: newLabelTable(),
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of live (non-removed) edges.
func (g *Graph) NumEdges() int { return g.live }

// NumLabels returns |Σ|, the number of distinct relationship types seen.
func (g *Graph) NumLabels() int { return g.labels.len() }

// Version returns the structural mutation counter: it changes whenever a
// node is added or an edge is added or removed. Indexes built over the
// graph record it to detect staleness. Version is safe to call concurrently
// with mutations (it is the one lock-free read the graph supports).
func (g *Graph) Version() uint64 { return g.version.Load() }

// AddNode adds a member with the given unique name and attributes and
// returns its ID. Adding a duplicate name returns the existing node's ID and
// an error.
func (g *Graph) AddNode(name string, attrs Attrs) (NodeID, error) {
	if id, ok := g.byName[name]; ok {
		return id, fmt.Errorf("graph: node %q already exists", name)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Attrs: attrs})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byName[name] = id
	g.version.Add(1)
	g.record(Delta{Op: OpAddNode, Name: name, Attrs: attrs})
	return id, nil
}

// MustAddNode is AddNode for fixtures and tests; it panics on duplicates.
func (g *Graph) MustAddNode(name string, attrs Attrs) NodeID {
	id, err := g.AddNode(name, attrs)
	if err != nil {
		panic(err)
	}
	return id
}

// NodeByName resolves a member handle to its ID.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Node returns the node record for id. It panics if id is out of range.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// SetAttr sets (or overwrites) one attribute of a node.
func (g *Graph) SetAttr(id NodeID, key string, v Value) {
	n := &g.nodes[id]
	if n.Attrs == nil {
		n.Attrs = make(Attrs)
	}
	n.Attrs[key] = v
}

// Attr returns one attribute of a node.
func (g *Graph) Attr(id NodeID, key string) (Value, bool) {
	return g.nodes[id].Attrs.Get(key)
}

// ValidNode reports whether id names an existing node.
func (g *Graph) ValidNode(id NodeID) bool { return int(id) < len(g.nodes) }

// Label interns a relationship-type name, creating it if needed.
func (g *Graph) Label(name string) Label { return g.labels.intern(name) }

// LookupLabel resolves a relationship-type name without creating it.
func (g *Graph) LookupLabel(name string) (Label, bool) { return g.labels.lookup(name) }

// LabelName returns the name of an interned label.
func (g *Graph) LabelName(l Label) string { return g.labels.name(l) }

// Labels returns all relationship-type names in interning order.
func (g *Graph) Labels() []string {
	return append([]string(nil), g.labels.names...)
}

// AddEdge adds a directed relationship from -> to with the given type name
// and returns its edge ID. Self-loops are rejected (a member cannot relate to
// themself in the model); parallel edges with different labels are allowed,
// and a duplicate (from, to, label) triple is rejected.
func (g *Graph) AddEdge(from, to NodeID, label string) (EdgeID, error) {
	return g.AddWeightedEdge(from, to, label, 0)
}

// AddWeightedEdge is AddEdge carrying an uninterpreted weight annotation.
func (g *Graph) AddWeightedEdge(from, to NodeID, label string, weight float64) (EdgeID, error) {
	if !g.ValidNode(from) || !g.ValidNode(to) {
		return InvalidEdge, fmt.Errorf("graph: edge endpoints out of range (%d, %d)", from, to)
	}
	if from == to {
		return InvalidEdge, fmt.Errorf("graph: self-loop on node %d rejected", from)
	}
	l := g.labels.intern(label)
	if g.FindEdge(from, to, l) != InvalidEdge {
		return InvalidEdge, fmt.Errorf("graph: duplicate edge %s -%s-> %s",
			g.nodes[from].Name, label, g.nodes[to].Name)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Label: l, Weight: weight})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.live++
	g.version.Add(1)
	g.record(Delta{Op: OpAddEdge, From: from, To: to, Label: label, Weight: weight})
	return id, nil
}

// MustAddEdge is AddEdge for fixtures and tests; it panics on error.
func (g *Graph) MustAddEdge(from, to NodeID, label string) EdgeID {
	id, err := g.AddEdge(from, to, label)
	if err != nil {
		panic(err)
	}
	return id
}

// RemoveEdge tombstones an edge. Removing an already-removed or invalid edge
// is an error. Node IDs and surviving edge IDs are stable across removals.
func (g *Graph) RemoveEdge(id EdgeID) error {
	if int(id) >= len(g.edges) || g.edges[id].deleted {
		return fmt.Errorf("graph: no live edge %d", id)
	}
	e := g.edges[id]
	g.edges[id].deleted = true
	g.live--
	g.version.Add(1)
	g.record(Delta{Op: OpRemoveEdge, From: e.From, To: e.To, Label: g.labels.name(e.Label)})
	return nil
}

// EdgeAlive reports whether id names a live edge.
func (g *Graph) EdgeAlive(id EdgeID) bool {
	return int(id) < len(g.edges) && !g.edges[id].deleted
}

// Edge returns the edge record for id (which may be tombstoned; check
// EdgeAlive). It panics if id is out of range.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// FindEdge returns the live edge (from, to, label) or InvalidEdge.
func (g *Graph) FindEdge(from, to NodeID, label Label) EdgeID {
	if !g.ValidNode(from) {
		return InvalidEdge
	}
	for _, eid := range g.out[from] {
		e := &g.edges[eid]
		if !e.deleted && e.To == to && e.Label == label {
			return eid
		}
	}
	return InvalidEdge
}

// HasEdge reports whether a live (from, to, label-name) edge exists.
func (g *Graph) HasEdge(from, to NodeID, label string) bool {
	l, ok := g.labels.lookup(label)
	if !ok {
		return false
	}
	return g.FindEdge(from, to, l) != InvalidEdge
}

// OutEdges calls fn for every live outgoing edge of n, in insertion order.
// fn returning false stops the iteration.
func (g *Graph) OutEdges(n NodeID, fn func(Edge) bool) {
	for _, eid := range g.out[n] {
		e := g.edges[eid]
		if e.deleted {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// Neighbors calls fn once per live outgoing edge of n with the target
// node, in insertion order (a target reachable over several labels is
// visited once per label). fn returning false stops the iteration. It is
// the adjacency view workload.Source asks of a graph-shaped value.
func (g *Graph) Neighbors(n NodeID, fn func(NodeID) bool) {
	g.OutEdges(n, func(e Edge) bool { return fn(e.To) })
}

// InEdges calls fn for every live incoming edge of n, in insertion order.
func (g *Graph) InEdges(n NodeID, fn func(Edge) bool) {
	for _, eid := range g.in[n] {
		e := g.edges[eid]
		if e.deleted {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// OutDegree returns the number of live outgoing edges of n: an O(1) offset
// subtraction when the cached CSR is fresh, an O(degree) edge-list scan
// otherwise (no build is forced, so mutation-heavy callers never thrash).
func (g *Graph) OutDegree(n NodeID) int {
	if c := g.FreshCSR(); c != nil {
		return c.OutDegree(n)
	}
	d := 0
	g.OutEdges(n, func(Edge) bool { d++; return true })
	return d
}

// InDegree returns the number of live incoming edges of n; see OutDegree.
func (g *Graph) InDegree(n NodeID) int {
	if c := g.FreshCSR(); c != nil {
		return c.InDegree(n)
	}
	d := 0
	g.InEdges(n, func(Edge) bool { d++; return true })
	return d
}

// Edges calls fn for every live edge in ID order.
func (g *Graph) Edges(fn func(Edge) bool) {
	for i := range g.edges {
		if g.edges[i].deleted {
			continue
		}
		if !fn(g.edges[i]) {
			return
		}
	}
}

// Nodes calls fn for every node in ID order.
func (g *Graph) Nodes(fn func(Node) bool) {
	for i := range g.nodes {
		if !fn(g.nodes[i]) {
			return
		}
	}
}

// EdgeString renders an edge as "Label From->To", matching the paper's
// line-graph node naming (e.g. "Friend A-C").
func (g *Graph) EdgeString(e Edge) string {
	return fmt.Sprintf("%s %s-%s", g.LabelName(e.Label), g.nodes[e.From].Name, g.nodes[e.To].Name)
}

// Clone returns a deep copy of g (tombstoned edges are dropped; surviving
// edges are renumbered densely).
func (g *Graph) Clone() *Graph {
	c := New()
	c.labels = g.labels.clone()
	c.nodes = make([]Node, len(g.nodes))
	c.out = make([][]EdgeID, len(g.nodes))
	c.in = make([][]EdgeID, len(g.nodes))
	for i, n := range g.nodes {
		c.nodes[i] = Node{ID: n.ID, Name: n.Name, Attrs: n.Attrs.Clone()}
		c.byName[n.Name] = n.ID
	}
	g.Edges(func(e Edge) bool {
		id := EdgeID(len(c.edges))
		c.edges = append(c.edges, Edge{ID: id, From: e.From, To: e.To, Label: e.Label, Weight: e.Weight})
		c.out[e.From] = append(c.out[e.From], id)
		c.in[e.To] = append(c.in[e.To], id)
		c.live++
		return true
	})
	return c
}

// SortedNodeNames returns all member names sorted, for deterministic output.
func (g *Graph) SortedNodeNames() []string {
	names := make([]string, 0, len(g.nodes))
	for _, n := range g.nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}

// Stats summarizes the graph for reporting.
type Stats struct {
	Nodes, Edges, Labels int
	MaxOutDegree         int
	MaxInDegree          int
}

// Stats computes summary statistics. It builds (and caches) the CSR view
// once, so the degree sweep is O(V) offset reads instead of O(V+E) scans.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), Labels: g.NumLabels()}
	if c := g.CSR(); c != nil {
		for i := range g.nodes {
			if d := c.OutDegree(NodeID(i)); d > s.MaxOutDegree {
				s.MaxOutDegree = d
			}
			if d := c.InDegree(NodeID(i)); d > s.MaxInDegree {
				s.MaxInDegree = d
			}
		}
		return s
	}
	for i := range g.nodes {
		if d := g.OutDegree(NodeID(i)); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(NodeID(i)); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	return s
}
