package graph

import (
	"sync/atomic"
)

// CSR is a compressed-sparse-row view of the graph's live adjacency,
// label-partitioned: for every (node, label) pair the out- and in-neighbors
// form one contiguous run of a dense []uint32 slab. It is the read-hot-path
// memory layout — a BFS constrained to one relationship type touches exactly
// the run it needs (no per-edge label filtering, no pointer chasing through
// edge records), and per-node degrees are O(1) offset subtractions.
//
// A CSR is immutable once built and is valid for exactly one graph version;
// it deliberately carries neighbor node IDs only (no edge IDs or weights),
// which is all the reachability hot path needs. Witness reconstruction and
// other edge-identity consumers keep using the edge-list iteration.
type CSR struct {
	version uint64
	nodes   int
	labels  int
	// outOff/inOff have nodes*labels+1 entries: the run for (n, l) is
	// nbr[off[n*labels+l] : off[n*labels+l+1]], and the runs of one node are
	// adjacent, so a node's total degree is off[(n+1)*labels] - off[n*labels].
	outOff []uint32
	inOff  []uint32
	// outNbr/inNbr hold neighbor node IDs in edge-insertion order within
	// each run (matching OutEdges/InEdges order filtered to one label).
	outNbr []uint32
	inNbr  []uint32
}

// maxCSRCells bounds nodes*labels so that offset tables stay addressable
// and a degenerate graph (millions of nodes × thousands of labels) cannot
// demand a multi-gigabyte offset table. Beyond it BuildCSR returns nil and
// callers fall back to edge-list iteration.
const maxCSRCells = 1 << 30

// Version returns the graph version the CSR was built at.
func (c *CSR) Version() uint64 { return c.version }

// NumNodes returns the node count the CSR was built over.
func (c *CSR) NumNodes() int { return c.nodes }

// OutNeighbors returns the out-neighbor run of (n, l). The slice aliases the
// CSR slab and must not be modified.
func (c *CSR) OutNeighbors(n NodeID, l Label) []uint32 {
	i := int(n)*c.labels + int(l)
	return c.outNbr[c.outOff[i]:c.outOff[i+1]]
}

// InNeighbors returns the in-neighbor run of (n, l); see OutNeighbors.
func (c *CSR) InNeighbors(n NodeID, l Label) []uint32 {
	i := int(n)*c.labels + int(l)
	return c.inNbr[c.inOff[i]:c.inOff[i+1]]
}

// OutDegree returns the number of live outgoing edges of n in O(1).
func (c *CSR) OutDegree(n NodeID) int {
	return int(c.outOff[(int(n)+1)*c.labels] - c.outOff[int(n)*c.labels])
}

// InDegree returns the number of live incoming edges of n in O(1).
func (c *CSR) InDegree(n NodeID) int {
	return int(c.inOff[(int(n)+1)*c.labels] - c.inOff[int(n)*c.labels])
}

// BuildCSR constructs a fresh CSR over the graph's live edges and caches it
// as the graph's current CSR. It returns nil when the graph has no labels
// yet (no edges can exist either) or when nodes*labels exceeds maxCSRCells.
// Like every bulk accessor it requires external synchronization with
// mutators; concurrent readers may race to build — both produce identical
// views and the cache keeps one.
func (g *Graph) BuildCSR() *CSR {
	v, l := len(g.nodes), g.labels.len()
	if l == 0 || v == 0 || v*l > maxCSRCells {
		return nil
	}
	c := &CSR{
		version: g.version.Load(),
		nodes:   v,
		labels:  l,
		outOff:  make([]uint32, v*l+1),
		inOff:   make([]uint32, v*l+1),
		outNbr:  make([]uint32, g.live),
		inNbr:   make([]uint32, g.live),
	}
	// Count pass: run lengths into off[i+1], then prefix-sum to offsets.
	for i := range g.edges {
		e := &g.edges[i]
		if e.deleted {
			continue
		}
		c.outOff[int(e.From)*l+int(e.Label)+1]++
		c.inOff[int(e.To)*l+int(e.Label)+1]++
	}
	for i := 1; i < len(c.outOff); i++ {
		c.outOff[i] += c.outOff[i-1]
		c.inOff[i] += c.inOff[i-1]
	}
	// Fill pass in edge-ID order, preserving insertion order within runs.
	// next cursors reuse the off tables shifted by one (off[i] is the next
	// write position of run i during the fill), restoring them as we go.
	outNext := make([]uint32, v*l)
	inNext := make([]uint32, v*l)
	copy(outNext, c.outOff[:v*l])
	copy(inNext, c.inOff[:v*l])
	for i := range g.edges {
		e := &g.edges[i]
		if e.deleted {
			continue
		}
		oi := int(e.From)*l + int(e.Label)
		c.outNbr[outNext[oi]] = uint32(e.To)
		outNext[oi]++
		ii := int(e.To)*l + int(e.Label)
		c.inNbr[inNext[ii]] = uint32(e.From)
		inNext[ii]++
	}
	g.csr.Store(c)
	g.csrDebt.Store(0)
	return c
}

// CSR returns the cached CSR for the graph's current version, building one
// if the cache is stale or empty. It returns nil for label-free graphs and
// pathological node×label products (see BuildCSR).
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil && c.version == g.version.Load() {
		return c
	}
	return g.BuildCSR()
}

// FreshCSR returns the cached CSR if it matches the graph's current version
// and nil otherwise — it never pays a build. Hot paths use it together with
// AddCSRDebt so that rebuild cost is amortized against traversal work
// actually spent on the stale version.
func (g *Graph) FreshCSR() *CSR {
	if c := g.csr.Load(); c != nil && c.version == g.version.Load() {
		return c
	}
	return nil
}

// AddCSRDebt records traversal work (edges scanned) performed without a
// fresh CSR and rebuilds the CSR once the accumulated debt since the last
// build exceeds the build cost (O(V+E)). Mutation-heavy phases therefore
// never thrash rebuilding per version, while read-heavy phases converge to
// the CSR after about one graph's worth of slow-path scanning.
func (g *Graph) AddCSRDebt(work int) {
	if work <= 0 {
		return
	}
	if g.csrDebt.Add(int64(work)) > int64(len(g.nodes)+g.live) {
		g.BuildCSR()
	}
}

// csrState is embedded in Graph: the cached CSR and the slow-path work
// accumulated since it went stale. Both are atomics so that lock-free
// snapshot readers may consult and (race-benignly) rebuild the cache.
type csrState struct {
	csr     atomic.Pointer[CSR]
	csrDebt atomic.Int64
}
