package graph

import (
	"math/rand"
	"testing"
)

// legacyOutNeighbors collects n's live out-neighbors with label l via the
// edge-list iteration the CSR replaces, in insertion order.
func legacyOutNeighbors(g *Graph, n NodeID, l Label) []uint32 {
	var out []uint32
	g.OutEdges(n, func(e Edge) bool {
		if e.Label == l {
			out = append(out, uint32(e.To))
		}
		return true
	})
	return out
}

func legacyInNeighbors(g *Graph, n NodeID, l Label) []uint32 {
	var out []uint32
	g.InEdges(n, func(e Edge) bool {
		if e.Label == l {
			out = append(out, uint32(e.From))
		}
		return true
	})
	return out
}

// checkCSRAgainstLegacy asserts the CSR view matches the edge-list view for
// every (node, label) pair: same runs in the same order, same degrees.
func checkCSRAgainstLegacy(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if g.NumLabels() == 0 || g.NumNodes() == 0 {
		if c != nil {
			t.Fatalf("CSR() = non-nil for empty graph")
		}
		return
	}
	if c == nil {
		t.Fatalf("CSR() = nil for %d nodes, %d labels", g.NumNodes(), g.NumLabels())
	}
	if c.Version() != g.Version() {
		t.Fatalf("CSR version %d, graph version %d", c.Version(), g.Version())
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := NodeID(n)
		outDeg, inDeg := 0, 0
		for l := 0; l < g.NumLabels(); l++ {
			lbl := Label(l)
			got, want := c.OutNeighbors(id, lbl), legacyOutNeighbors(g, id, lbl)
			if len(got) != len(want) {
				t.Fatalf("node %d label %d: out run %v, want %v", n, l, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d label %d: out run %v, want %v", n, l, got, want)
				}
			}
			outDeg += len(got)
			got, want = c.InNeighbors(id, lbl), legacyInNeighbors(g, id, lbl)
			if len(got) != len(want) {
				t.Fatalf("node %d label %d: in run %v, want %v", n, l, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d label %d: in run %v, want %v", n, l, got, want)
				}
			}
			inDeg += len(got)
		}
		if d := c.OutDegree(id); d != outDeg {
			t.Fatalf("node %d: CSR OutDegree %d, want %d", n, d, outDeg)
		}
		if d := c.InDegree(id); d != inDeg {
			t.Fatalf("node %d: CSR InDegree %d, want %d", n, d, inDeg)
		}
	}
}

func TestCSRMatchesEdgeLists(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", nil)
	d := g.MustAddNode("d", nil)
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(a, c, "friend")
	g.MustAddEdge(a, b, "colleague")
	g.MustAddEdge(b, c, "friend")
	g.MustAddEdge(c, a, "parent")
	g.MustAddEdge(d, a, "friend")
	checkCSRAgainstLegacy(t, g)

	// Removal tombstones an edge; the next CSR must skip it.
	id := g.FindEdge(a, c, g.Label("friend"))
	if err := g.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	checkCSRAgainstLegacy(t, g)

	// Compaction renumbers edges but not adjacency.
	g.CompactTombstones()
	checkCSRAgainstLegacy(t, g)
}

func TestCSREmptyAndLabelFree(t *testing.T) {
	g := New()
	if g.CSR() != nil {
		t.Fatal("CSR() over empty graph should be nil")
	}
	g.MustAddNode("a", nil)
	if g.CSR() != nil {
		t.Fatal("CSR() over label-free graph should be nil")
	}
	if d := g.OutDegree(0); d != 0 {
		t.Fatalf("OutDegree = %d, want 0", d)
	}
}

func TestCSRCachingAndStaleness(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	g.MustAddEdge(a, b, "friend")
	c1 := g.CSR()
	if c2 := g.CSR(); c2 != c1 {
		t.Fatal("second CSR() call should return the cached view")
	}
	if got := g.FreshCSR(); got != c1 {
		t.Fatal("FreshCSR should return the cached view while fresh")
	}
	g.MustAddEdge(b, a, "friend")
	if got := g.FreshCSR(); got != nil {
		t.Fatal("FreshCSR should be nil after a mutation")
	}
	// Debt below the build budget must not rebuild; crossing it must.
	g.AddCSRDebt(1)
	if g.FreshCSR() != nil {
		t.Fatal("small debt should not trigger a rebuild")
	}
	g.AddCSRDebt(g.NumNodes() + g.NumEdges() + 1)
	c3 := g.FreshCSR()
	if c3 == nil || c3.Version() != g.Version() {
		t.Fatal("accumulated debt should have rebuilt the CSR")
	}
	checkCSRAgainstLegacy(t, g)
}

func TestDegreesO1ViaCSR(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewSource(7))
	const nodes = 40
	for i := 0; i < nodes; i++ {
		g.MustAddNode(string(rune('A'+i%26))+string(rune('0'+i/26)), nil)
	}
	labels := []string{"friend", "colleague", "parent"}
	for i := 0; i < 300; i++ {
		from := NodeID(rng.Intn(nodes))
		to := NodeID(rng.Intn(nodes))
		if from == to {
			continue
		}
		_, _ = g.AddEdge(from, to, labels[rng.Intn(len(labels))])
	}
	// Degrees without a fresh CSR (scan) and with one (offsets) must agree.
	type deg struct{ out, in int }
	want := make([]deg, nodes)
	for i := range want {
		want[i] = deg{g.OutDegree(NodeID(i)), g.InDegree(NodeID(i))}
	}
	if g.CSR() == nil {
		t.Fatal("CSR build failed")
	}
	for i := range want {
		if got := (deg{g.OutDegree(NodeID(i)), g.InDegree(NodeID(i))}); got != want[i] {
			t.Fatalf("node %d: CSR degrees %v, want %v", i, got, want[i])
		}
	}
	st := g.Stats()
	maxOut, maxIn := 0, 0
	for _, d := range want {
		if d.out > maxOut {
			maxOut = d.out
		}
		if d.in > maxIn {
			maxIn = d.in
		}
	}
	if st.MaxOutDegree != maxOut || st.MaxInDegree != maxIn {
		t.Fatalf("Stats degrees (%d,%d), want (%d,%d)", st.MaxOutDegree, st.MaxInDegree, maxOut, maxIn)
	}
}

// TestCSRVersionAndNodes covers the CSR's identity accessors.
func TestCSRVersionAndNodes(t *testing.T) {
	g := New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	g.MustAddEdge(a, b, "friend")
	c := g.CSR()
	if c == nil {
		t.Fatal("CSR build failed")
	}
	if c.Version() != g.Version() {
		t.Fatalf("CSR version %d, graph version %d", c.Version(), g.Version())
	}
	if c.NumNodes() != 2 {
		t.Fatalf("CSR NumNodes %d, want 2", c.NumNodes())
	}
}
