package graph

import (
	"fmt"
	"sort"
	"strconv"
)

// Kind enumerates the dynamic types an attribute value may take.
type Kind uint8

// Attribute value kinds.
const (
	KindString Kind = iota
	KindNumber
	KindBool
)

// String names the value kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding a single attribute value. The zero Value is
// the empty string.
type Value struct {
	kind Kind
	str  string
	num  float64
	b    bool
}

// String returns a Value of kind KindString.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Number returns a Value of kind KindNumber.
func Number(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns a numeric Value from an int.
func Int(i int) Value { return Number(float64(i)) }

// Bool returns a Value of kind KindBool.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload (valid when Kind()==KindString).
func (v Value) Str() string { return v.str }

// Num returns the numeric payload (valid when Kind()==KindNumber).
func (v Value) Num() float64 { return v.num }

// B returns the boolean payload (valid when Kind()==KindBool).
func (v Value) B() bool { return v.b }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == o.str
	case KindNumber:
		return v.num == o.num
	default:
		return v.b == o.b
	}
}

// Compare orders two values of the same kind: -1, 0, +1. It returns an error
// when the kinds differ or the kind is not ordered (bool supports only
// equality, which Compare reports as 0 / non-zero).
func (v Value) Compare(o Value) (int, error) {
	if v.kind != o.kind {
		return 0, fmt.Errorf("graph: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.str < o.str:
			return -1, nil
		case v.str > o.str:
			return 1, nil
		}
		return 0, nil
	case KindNumber:
		switch {
		case v.num < o.num:
			return -1, nil
		case v.num > o.num:
			return 1, nil
		}
		return 0, nil
	default:
		if v.b == o.b {
			return 0, nil
		}
		if !v.b {
			return -1, nil
		}
		return 1, nil
	}
}

// String renders the value for display and serialization.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindNumber:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	default:
		return strconv.FormatBool(v.b)
	}
}

// Attrs is the attribute tuple λ(v) attached to a node: a set of named
// values such as (gender=female, age=24). A nil Attrs behaves as empty.
type Attrs map[string]Value

// Get returns the value for key and whether it is present.
func (a Attrs) Get(key string) (Value, bool) {
	v, ok := a[key]
	return v, ok
}

// Clone returns an independent copy of a.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Keys returns the attribute names in sorted order, for deterministic
// rendering.
func (a Attrs) Keys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the tuple in the paper's style: (k1=v1, k2=v2).
func (a Attrs) String() string {
	s := "("
	for i, k := range a.Keys() {
		if i > 0 {
			s += ", "
		}
		s += k + "=" + a[k].String()
	}
	return s + ")"
}
