package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// edgeKey is the clone-stable identity of a live edge.
type edgeKey struct {
	from, to string
	label    string
}

func liveEdges(t *testing.T, g *Graph) map[edgeKey]float64 {
	t.Helper()
	out := make(map[edgeKey]float64)
	g.Edges(func(e Edge) bool {
		k := edgeKey{g.Node(e.From).Name, g.Node(e.To).Name, g.LabelName(e.Label)}
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate live edge %+v", k)
		}
		out[k] = e.Weight
		return true
	})
	return out
}

// assertSameGraph compares two graphs by clone-stable identity: node names
// with attributes, and the live edge set.
func assertSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("nodes = %d, want %d", got.NumNodes(), want.NumNodes())
	}
	want.Nodes(func(n Node) bool {
		id, ok := got.NodeByName(n.Name)
		if !ok {
			t.Fatalf("node %q missing", n.Name)
		}
		gn := got.Node(id)
		for _, k := range n.Attrs.Keys() {
			wv, _ := n.Attrs.Get(k)
			gv, ok := gn.Attrs.Get(k)
			if !ok || !gv.Equal(wv) {
				t.Fatalf("node %q attr %q = %v, want %v", n.Name, k, gv, wv)
			}
		}
		return true
	})
	ge, we := liveEdges(t, got), liveEdges(t, want)
	if len(ge) != len(we) {
		t.Fatalf("edges = %d, want %d", len(ge), len(we))
	}
	for k, w := range we {
		gw, ok := ge[k]
		if !ok {
			t.Fatalf("edge %+v missing", k)
		}
		if gw != w {
			t.Fatalf("edge %+v weight = %v, want %v", k, gw, w)
		}
	}
}

// TestDeltaAdvanceEquivalence replays a randomized mutation trace and checks
// that a clone advanced through the delta log matches a fresh clone.
func TestDeltaAdvanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	labels := []string{"friend", "colleague", "parent"}
	for i := 0; i < 20; i++ {
		g.MustAddNode(fmt.Sprintf("n%02d", i), Attrs{"age": Int(20 + i)})
	}
	mutate := func() {
		switch rng.Intn(5) {
		case 0:
			name := fmt.Sprintf("n%02d", g.NumNodes())
			g.MustAddNode(name, Attrs{"city": String("paris")})
		case 1, 2:
			from := NodeID(rng.Intn(g.NumNodes()))
			to := NodeID(rng.Intn(g.NumNodes()))
			if from != to {
				_, _ = g.AddWeightedEdge(from, to, labels[rng.Intn(len(labels))], float64(rng.Intn(10)))
			}
		case 3:
			// Remove a random live edge, if any.
			var victim EdgeID = InvalidEdge
			n := 0
			g.Edges(func(e Edge) bool {
				n++
				if rng.Intn(n) == 0 {
					victim = e.ID
				}
				return true
			})
			if victim != InvalidEdge {
				if err := g.RemoveEdge(victim); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			g.CompactTombstones()
		}
	}
	for i := 0; i < 50; i++ {
		mutate()
	}
	clone := g.Clone()
	base := g.Version()
	for i := 0; i < 200; i++ {
		mutate()
	}
	deltas, ok := g.ChangesSince(base)
	if !ok {
		t.Fatalf("ChangesSince(%d) window lost after %d mutations", base, 200)
	}
	for i, d := range deltas {
		if err := clone.Apply(d); err != nil {
			t.Fatalf("apply delta %d (%s): %v", i, d.Op, err)
		}
	}
	assertSameGraph(t, clone, g.Clone())
}

func TestChangesSinceWindow(t *testing.T) {
	g := New()
	g.SetDeltaLogLimit(8)
	for i := 0; i < 40; i++ {
		g.MustAddNode(fmt.Sprintf("w%02d", i), nil)
	}
	if _, ok := g.ChangesSince(0); ok {
		t.Fatal("window should have trimmed version 0")
	}
	if _, ok := g.ChangesSince(g.Version() + 1); ok {
		t.Fatal("future version must not be servable")
	}
	deltas, ok := g.ChangesSince(g.Version() - 4)
	if !ok || len(deltas) != 4 {
		t.Fatalf("recent window = (%d, %v), want (4, true)", len(deltas), ok)
	}
	if deltas, ok = g.ChangesSince(g.Version()); !ok || len(deltas) != 0 {
		t.Fatalf("current version = (%d, %v), want (0, true)", len(deltas), ok)
	}
}

func TestSetDeltaLogLimitDisable(t *testing.T) {
	g := New()
	g.SetDeltaLogLimit(-1)
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	base := g.Version()
	g.MustAddEdge(a, b, "friend")
	if _, ok := g.ChangesSince(base); ok {
		t.Fatal("disabled log must not serve past versions")
	}
	if _, ok := g.ChangesSince(g.Version()); !ok {
		t.Fatal("current version is always servable")
	}
}

func TestCompactTombstones(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.MustAddNode(fmt.Sprintf("c%02d", i), nil)
	}
	var ids []EdgeID
	for i := 0; i < 9; i++ {
		ids = append(ids, g.MustAddEdge(NodeID(i), NodeID(i+1), "friend"))
	}
	clone := g.Clone()
	base := g.Version()
	for i := 0; i < 6; i++ {
		if err := g.RemoveEdge(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.NumTombstones(); got != 6 {
		t.Fatalf("tombstones = %d, want 6", got)
	}
	v := g.Version()
	if dropped := g.CompactTombstones(); dropped != 6 {
		t.Fatalf("compacted %d, want 6", dropped)
	}
	if g.NumTombstones() != 0 || g.NumEdges() != 3 {
		t.Fatalf("after compact: %d tombstones, %d edges", g.NumTombstones(), g.NumEdges())
	}
	if g.Version() != v+1 {
		t.Fatalf("compact must bump version: %d -> %d", v, g.Version())
	}
	if g.CompactTombstones() != 0 {
		t.Fatal("second compact must be a no-op")
	}
	// Edge IDs are dense again and adjacency is consistent.
	seen := 0
	g.Edges(func(e Edge) bool {
		if int(e.ID) != seen {
			t.Fatalf("edge ID %d at position %d", e.ID, seen)
		}
		if g.FindEdge(e.From, e.To, e.Label) != e.ID {
			t.Fatalf("adjacency lost edge %d", e.ID)
		}
		seen++
		return true
	})
	// A clone advanced through the log (removals + compact) matches.
	deltas, ok := g.ChangesSince(base)
	if !ok {
		t.Fatal("window lost")
	}
	for _, d := range deltas {
		if err := clone.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	assertSameGraph(t, clone, g)
}
