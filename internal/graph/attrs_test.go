package graph

import "testing"

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{String("hi"), KindString, "hi"},
		{Number(2.5), KindNumber, "2.5"},
		{Int(7), KindNumber, "7"},
		{Bool(true), KindBool, "true"},
		{Value{}, KindString, ""},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v Kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v String = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindString.String() != "string" || KindNumber.String() != "number" || KindBool.String() != "bool" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatalf("unknown kind = %q", Kind(42).String())
	}
}

func TestValueEqual(t *testing.T) {
	if !String("x").Equal(String("x")) {
		t.Fatal("equal strings not Equal")
	}
	if String("x").Equal(String("y")) {
		t.Fatal("distinct strings Equal")
	}
	if String("1").Equal(Number(1)) {
		t.Fatal("cross-kind Equal")
	}
	if !Int(3).Equal(Number(3)) {
		t.Fatal("Int/Number not Equal")
	}
	if !Bool(false).Equal(Bool(false)) {
		t.Fatal("bools not Equal")
	}
	if Bool(false).Equal(Bool(true)) {
		t.Fatal("distinct bools Equal")
	}
}

func TestValueCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != -1 {
			t.Fatalf("Compare(%v,%v) = %d,%v want -1", a, b, c, err)
		}
		c, err = b.Compare(a)
		if err != nil || c != 1 {
			t.Fatalf("Compare(%v,%v) = %d,%v want 1", b, a, c, err)
		}
	}
	lt(Int(1), Int(2))
	lt(String("a"), String("b"))
	lt(Bool(false), Bool(true))
	if c, err := Int(5).Compare(Int(5)); err != nil || c != 0 {
		t.Fatalf("equal compare = %d,%v", c, err)
	}
	if c, err := Bool(true).Compare(Bool(true)); err != nil || c != 0 {
		t.Fatalf("equal bool compare = %d,%v", c, err)
	}
	if _, err := Int(1).Compare(String("1")); err == nil {
		t.Fatal("cross-kind Compare accepted")
	}
}

func TestAttrsCloneAndKeys(t *testing.T) {
	var nilAttrs Attrs
	if nilAttrs.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
	if _, ok := nilAttrs.Get("x"); ok {
		t.Fatal("nil Attrs Get found something")
	}
	a := Attrs{"b": Int(1), "a": String("s")}
	c := a.Clone()
	c["b"] = Int(2)
	if a["b"].Num() != 1 {
		t.Fatal("Clone aliases the map")
	}
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestAttrsString(t *testing.T) {
	a := Attrs{"gender": String("female"), "age": Int(24)}
	if got := a.String(); got != "(age=24, gender=female)" {
		t.Fatalf("Attrs.String = %q", got)
	}
	if got := (Attrs{}).String(); got != "()" {
		t.Fatalf("empty Attrs.String = %q", got)
	}
}
