package osn

import (
	"testing"

	"reachac/internal/core"
	"reachac/internal/generate"
	"reachac/internal/graph"
	"reachac/internal/search"
	"reachac/internal/workload"
)

func TestPopulateAndRun(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 400, Seed: 1})
	n := New(g, search.New(g))
	created, err := n.Populate(workload.DefaultCatalog(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if created != 200 {
		t.Fatalf("created = %d, want 200", created)
	}
	reqs := workload.Requests(g, 300, len(workload.DefaultCatalog()), 5)
	res, err := n.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decided+res.Skipped != 300 {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Decided == 0 {
		t.Fatal("nothing decided")
	}
	if res.Allowed+res.Denied != res.Decided {
		t.Fatalf("allow/deny mismatch: %+v", res)
	}
	// On hit-biased workloads with friend-ish policies, some requests must
	// be allowed and some denied.
	if res.Allowed == 0 {
		t.Fatal("no request allowed — workload or policies broken")
	}
	if res.Denied == 0 {
		t.Fatal("no request denied — deny-by-default broken")
	}
}

func TestPopulateEveryone(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 50, Seed: 2})
	n := New(g, search.New(g))
	created, err := n.Populate(workload.DefaultCatalog(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if created != 50 {
		t.Fatalf("created = %d", created)
	}
	// Every member's resource is registered and owner-accessible.
	for i := 0; i < 50; i++ {
		owner := graph.NodeID(i)
		d, err := n.Engine.Decide(ResourceName(owner, 0), owner)
		if err != nil {
			t.Fatal(err)
		}
		if d.Effect != core.Allow {
			t.Fatalf("owner %d denied own resource", i)
		}
	}
}

func TestPopulateRejectsDuplicateRun(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 20, Seed: 3})
	n := New(g, search.New(g))
	if _, err := n.Populate(workload.DefaultCatalog(), 1, 1); err != nil {
		t.Fatal(err)
	}
	// Re-populating the same resources collides on duplicate rule IDs.
	if _, err := n.Populate(workload.DefaultCatalog(), 1, 1); err == nil {
		t.Fatal("duplicate Populate accepted")
	}
}

func TestRunSkipsOwnerlessMembers(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 40, Seed: 4})
	n := New(g, search.New(g))
	// Only every 4th member owns a resource.
	if _, err := n.Populate(workload.DefaultCatalog(), 4, 2); err != nil {
		t.Fatal(err)
	}
	reqs := workload.Requests(g, 100, len(workload.DefaultCatalog()), 5)
	res, err := n.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Fatal("expected skipped requests against non-owners")
	}
	if res.Decided+res.Skipped != 100 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestResourceName(t *testing.T) {
	if ResourceName(7, 2) != "res-7-2" {
		t.Fatalf("ResourceName = %q", ResourceName(7, 2))
	}
}
