// Package osn is the online-social-network simulation layer used by the
// examples and the E4 enforcement-throughput experiment: members own
// resources protected by access rules drawn from a policy catalog, and a
// request stream is decided by a core.Engine. It is the "system intercepts
// the request" loop of the paper's problem statement, in miniature.
package osn

import (
	"fmt"
	"math/rand"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/workload"
)

// Network bundles a social graph with a policy store and decision engine.
type Network struct {
	G      *graph.Graph
	Store  *core.Store
	Engine *core.Engine
}

// New wires a network around an evaluator.
func New(g *graph.Graph, eval core.Evaluator) *Network {
	store := core.NewStore()
	return &Network{G: g, Store: store, Engine: core.NewEngine(store, eval, -1)}
}

// ResourceName formats the canonical resource id of a member's k-th
// resource.
func ResourceName(owner graph.NodeID, k int) core.ResourceID {
	return core.ResourceID(fmt.Sprintf("res-%d-%d", owner, k))
}

// Populate gives every ownerFrac-th member one resource protected by a rule
// whose path is drawn round-robin from the catalog. It returns the number
// of resources created.
func (n *Network) Populate(catalog []workload.QuerySpec, ownerFrac int, seed int64) (int, error) {
	if ownerFrac < 1 {
		ownerFrac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	created := 0
	for i := 0; i < n.G.NumNodes(); i += ownerFrac {
		owner := graph.NodeID(i)
		res := ResourceName(owner, 0)
		if err := n.Store.Register(res, owner); err != nil {
			return created, err
		}
		spec := catalog[rng.Intn(len(catalog))]
		rule := &core.Rule{
			ID:         spec.Name,
			Resource:   res,
			Owner:      owner,
			Conditions: []core.Condition{{Path: spec.Path}},
		}
		if err := n.Store.AddRule(rule); err != nil {
			return created, err
		}
		created++
	}
	return created, nil
}

// RunResult summarizes a simulated request stream.
type RunResult struct {
	Decided int
	Allowed int
	Denied  int
	Skipped int // requests against members who own no resource
}

// Run decides every request in the stream against the owner's resource.
func (n *Network) Run(requests []workload.Request) (RunResult, error) {
	var res RunResult
	for _, rq := range requests {
		id := ResourceName(rq.Owner, 0)
		if _, ok := n.Store.Owner(id); !ok {
			res.Skipped++
			continue
		}
		d, err := n.Engine.Decide(id, rq.Requester)
		if err != nil {
			return res, err
		}
		res.Decided++
		if d.Effect == core.Allow {
			res.Allowed++
		} else {
			res.Denied++
		}
	}
	return res, nil
}
