package pathexpr

// Reverse returns the pattern that matches the same concrete paths walked
// from the requester's side back to the owner, plus the predicates that the
// caller must check directly on the requester.
//
// For p = s1/s2/.../sk over boundary nodes b0 (owner) .. bk (requester):
//   - step order is reversed and each orientation is flipped ('+' ↔ '-');
//   - step si's predicates apply at node b_i; walking backwards, b_i is
//     where reversed step (k-i) ENDS, so si's predicates reattach to the
//     reversed step ending there — i.e. reversed step j carries the
//     predicates of original step k-1-j.  The original last step's
//     predicates apply to b_k, the requester itself (the reversed walk's
//     START), and are returned separately as srcPreds;
//   - the reversed walk must end at the owner, which carries no predicates
//     in the model (Definition 3 constrains only reached users).
//
// For any graph:  owner ⊨p⊨> requester  ⇔
//
//	srcPreds hold on requester  ∧  requester ⊨rev⊨> owner.
func Reverse(p *Path) (rev *Path, srcPreds []Pred) {
	k := len(p.Steps)
	rev = &Path{Steps: make([]Step, k)}
	for j := 0; j < k; j++ {
		src := p.Steps[k-1-j]
		st := Step{
			Label:     src.Label,
			Dir:       flip(src.Dir),
			MinDepth:  src.MinDepth,
			MaxDepth:  src.MaxDepth,
			Unbounded: src.Unbounded,
		}
		// Predicates of the original step whose end node this reversed step
		// lands on.
		if j < k-1 {
			st.Preds = append([]Pred(nil), p.Steps[k-2-j].Preds...)
		}
		rev.Steps[j] = st
	}
	return rev, append([]Pred(nil), p.Steps[k-1].Preds...)
}

func flip(d Direction) Direction {
	switch d {
	case Out:
		return In
	case In:
		return Out
	default:
		return Both
	}
}
