package pathexpr

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSlash    // /
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokLBracket // [
	tokRBracket // ]
	tokLBrace   // {
	tokRBrace   // }
	tokComma    // ,
	tokOp       // = != < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSlash:
		return "'/'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	default:
		return "operator"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// SyntaxError reports a parse failure with its byte position.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

// Error renders the syntax error with its offset and input.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pathexpr: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch c {
	case '/':
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case '!':
		if strings.HasPrefix(l.input[l.pos:], "!=") {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, l.errorf(start, "unexpected '!'")
	case '<', '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{tokOp, op, start}, nil
	case '"', '\'':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.input) {
			ch := l.input[l.pos]
			if ch == quote {
				l.pos++
				return token{tokString, b.String(), start}, nil
			}
			if ch == '\\' && l.pos+1 < len(l.input) {
				l.pos++
				ch = l.input[l.pos]
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errorf(start, "unterminated string")
	}
	if c >= '0' && c <= '9' || c == '.' {
		for l.pos < len(l.input) {
			ch := l.input[l.pos]
			if ch >= '0' && ch <= '9' || ch == '.' {
				l.pos++
				continue
			}
			break
		}
		return token{tokNumber, l.input[start:l.pos], start}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.input[l.pos:])
	if isIdentStart(r) {
		for l.pos < len(l.input) {
			r, sz := utf8.DecodeRuneInString(l.input[l.pos:])
			if !isIdentCont(r) {
				break
			}
			l.pos += sz
		}
		return token{tokIdent, l.input[start:l.pos], start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", r)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
