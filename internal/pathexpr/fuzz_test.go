package pathexpr

import "testing"

// FuzzParse checks that the parser never panics and that every accepted
// input round-trips through String exactly once canonicalized.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"friend",
		"friend+[1,2]/colleague+[1]",
		`friend+[1]{age>=18, city="paris"}`,
		"parent-[2,*]",
		"a*[3]/b-[1,4]{x!=true}",
		"friend+[1,2",
		"{}",
		"///",
		"friend{‽=1}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejects: %v", input, err)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, input, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonicalization not idempotent: %q -> %q -> %q", input, canon, p2.String())
		}
	})
}
