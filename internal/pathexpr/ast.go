// Package pathexpr implements the reachability-constraint language of the
// access control model (Definition 3). An access condition's path
//
//	p = s1/s2/.../sn
//
// is a sequence of ordered steps; each step si = (r, dir, I, C) carries a
// relationship label r, an edge orientation dir, a set of authorized depth
// levels I (a contiguous interval here, possibly unbounded), and a set of
// conditions C on the attributes of the user reached at the end of the step.
//
// Concrete syntax (Figure 2 style):
//
//	friend+[1,2]/colleague+[1]{age>=18, city="paris"}
//
//	step   = label dir? depth? preds?
//	dir    = '+' (outgoing) | '-' (incoming) | '*' (either, the default)
//	depth  = '[' lo ']' | '[' lo ',' hi ']' | '[' lo ',' '*' ']'   (default [1,1])
//	preds  = '{' pred (',' pred)* '}'
//	pred   = attr op value;  op in = != < <= > >=
//	value  = number | "string" | 'string' | true | false | bareword
package pathexpr

import (
	"fmt"
	"strings"

	"reachac/internal/graph"
)

// Direction is a step's authorized edge orientation (the paper's dir with
// values +, -, and the default * meaning both).
type Direction uint8

// Step orientations.
const (
	Out  Direction = iota // '+': relationship must be outgoing (owner side -> requester side)
	In                    // '-': relationship must be incoming
	Both                  // '*': either orientation is authorized (paper's default)
)

// String returns the direction's surface syntax ('+', '-' or '*').
func (d Direction) String() string {
	switch d {
	case Out:
		return "+"
	case In:
		return "-"
	default:
		return "*"
	}
}

// Op is a comparison operator in an attribute predicate.
type Op uint8

// Predicate operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the comparison operator's surface syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// Pred is one condition cᵢ on user properties: attr op value.
type Pred struct {
	Attr  string
	Op    Op
	Value graph.Value
}

// Eval applies the predicate to a node's attribute tuple. A missing
// attribute or a cross-kind comparison evaluates to false (never an error:
// policies must be total).
func (p Pred) Eval(attrs graph.Attrs) bool {
	v, ok := attrs.Get(p.Attr)
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return v.Equal(p.Value)
	case OpNe:
		// Same-kind disequality; cross-kind != is true by Equal semantics
		// but we require comparable kinds for a meaningful predicate.
		return v.Kind() == p.Value.Kind() && !v.Equal(p.Value)
	}
	c, err := v.Compare(p.Value)
	if err != nil {
		return false
	}
	switch p.Op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// String renders the predicate in concrete syntax. String values are quoted
// with the lexer's own escape rules (backslash escapes the next byte, any
// byte content allowed), so that String/Parse round-trips exactly.
func (p Pred) String() string {
	v := p.Value.String()
	if p.Value.Kind() == graph.KindString {
		v = quoteValue(v)
	}
	return p.Attr + p.Op.String() + v
}

func quoteValue(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
	return b.String()
}

// Step is one ordered step (r, dir, I, C) of a path.
type Step struct {
	Label     string
	Dir       Direction
	MinDepth  int  // lowest authorized depth (>= 1)
	MaxDepth  int  // highest authorized depth; ignored when Unbounded
	Unbounded bool // true for [lo,*]
	Preds     []Pred
}

// String renders the step in concrete syntax. The depth suffix is always
// printed so that round-trips are exact.
func (s Step) String() string {
	var b strings.Builder
	b.WriteString(s.Label)
	b.WriteString(s.Dir.String())
	if s.Unbounded {
		fmt.Fprintf(&b, "[%d,*]", s.MinDepth)
	} else if s.MinDepth == s.MaxDepth {
		fmt.Fprintf(&b, "[%d]", s.MinDepth)
	} else {
		fmt.Fprintf(&b, "[%d,%d]", s.MinDepth, s.MaxDepth)
	}
	if len(s.Preds) > 0 {
		b.WriteByte('{')
		for i, p := range s.Preds {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteByte('}')
	}
	return b.String()
}

// Path is a parsed reachability constraint: the ordered sequence of steps
// that must link the resource owner to the requester.
type Path struct {
	Steps []Step
}

// String renders the path in concrete syntax; Parse(p.String()) == p.
func (p *Path) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "/")
}

// Validate checks structural sanity: at least one step, positive depths,
// lo <= hi, non-empty labels and attribute names.
func (p *Path) Validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("pathexpr: empty path")
	}
	for i, s := range p.Steps {
		if s.Label == "" {
			return fmt.Errorf("pathexpr: step %d has empty label", i+1)
		}
		if s.MinDepth < 1 {
			return fmt.Errorf("pathexpr: step %d min depth %d < 1", i+1, s.MinDepth)
		}
		if !s.Unbounded && s.MaxDepth < s.MinDepth {
			return fmt.Errorf("pathexpr: step %d depth interval [%d,%d] empty", i+1, s.MinDepth, s.MaxDepth)
		}
		for _, pr := range s.Preds {
			if pr.Attr == "" {
				return fmt.Errorf("pathexpr: step %d has predicate with empty attribute", i+1)
			}
		}
	}
	return nil
}

// MinLen returns the minimum number of edges a matching path uses.
func (p *Path) MinLen() int {
	n := 0
	for _, s := range p.Steps {
		n += s.MinDepth
	}
	return n
}

// MaxLen returns the maximum number of edges a matching path may use, with
// unbounded steps capped at cap edges each.
func (p *Path) MaxLen(cap int) int {
	n := 0
	for _, s := range p.Steps {
		if s.Unbounded {
			n += cap
		} else {
			n += s.MaxDepth
		}
	}
	return n
}

// HasPreds reports whether any step carries attribute predicates.
func (p *Path) HasPreds() bool {
	for _, s := range p.Steps {
		if len(s.Preds) > 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (p *Path) Clone() *Path {
	steps := make([]Step, len(p.Steps))
	copy(steps, p.Steps)
	for i := range steps {
		steps[i].Preds = append([]Pred(nil), p.Steps[i].Preds...)
	}
	return &Path{Steps: steps}
}
