package pathexpr

import (
	"strings"
	"testing"

	"reachac/internal/graph"
)

func TestParseSingleStepDefaults(t *testing.T) {
	p, err := Parse("friend")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	s := p.Steps[0]
	if s.Label != "friend" || s.Dir != Both || s.MinDepth != 1 || s.MaxDepth != 1 || s.Unbounded {
		t.Fatalf("defaults wrong: %+v", s)
	}
}

func TestParsePaperQueryQ1(t *testing.T) {
	// Figure 2: Alice/friend+[1,2]/colleague+[1].
	p, err := Parse("friend+[1,2]/colleague+[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	f := p.Steps[0]
	if f.Label != "friend" || f.Dir != Out || f.MinDepth != 1 || f.MaxDepth != 2 {
		t.Fatalf("friend step = %+v", f)
	}
	c := p.Steps[1]
	if c.Label != "colleague" || c.Dir != Out || c.MinDepth != 1 || c.MaxDepth != 1 {
		t.Fatalf("colleague step = %+v", c)
	}
}

func TestParseDirections(t *testing.T) {
	cases := map[string]Direction{
		"friend+": Out,
		"friend-": In,
		"friend*": Both,
		"friend":  Both,
	}
	for in, want := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if p.Steps[0].Dir != want {
			t.Errorf("%q: dir = %v, want %v", in, p.Steps[0].Dir, want)
		}
	}
}

func TestParseUnboundedDepth(t *testing.T) {
	p, err := Parse("friend+[2,*]")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Steps[0]
	if !s.Unbounded || s.MinDepth != 2 {
		t.Fatalf("unbounded step = %+v", s)
	}
}

func TestParsePredicates(t *testing.T) {
	p, err := Parse(`friend+[1]{age>=18, city="paris", vip=true, score<0.5, name!=bob}`)
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Steps[0].Preds
	if len(preds) != 5 {
		t.Fatalf("preds = %d", len(preds))
	}
	if preds[0].Attr != "age" || preds[0].Op != OpGe || preds[0].Value.Num() != 18 {
		t.Fatalf("pred[0] = %+v", preds[0])
	}
	if preds[1].Value.Str() != "paris" {
		t.Fatalf("pred[1] = %+v", preds[1])
	}
	if preds[2].Value.Kind() != graph.KindBool || !preds[2].Value.B() {
		t.Fatalf("pred[2] = %+v", preds[2])
	}
	if preds[3].Op != OpLt || preds[3].Value.Num() != 0.5 {
		t.Fatalf("pred[3] = %+v", preds[3])
	}
	if preds[4].Op != OpNe || preds[4].Value.Str() != "bob" {
		t.Fatalf("pred[4] = %+v", preds[4])
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	p, err := Parse("  friend + [ 1 , 2 ] / colleague - [ 3 ] { age > 21 }  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 || p.Steps[1].Dir != In || p.Steps[1].MinDepth != 3 {
		t.Fatalf("parsed = %+v", p)
	}
}

func TestParseSingleQuoteStringsAndEscapes(t *testing.T) {
	p, err := Parse(`friend{name='O\'Brien'}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Steps[0].Preds[0].Value.Str(); got != "O'Brien" {
		t.Fatalf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"/friend",
		"friend/",
		"friend//colleague",
		"friend+[0]",     // depth < 1
		"friend+[3,2]",   // empty interval
		"friend+[1,2",    // unclosed bracket
		"friend{age>18",  // unclosed brace
		"friend{>18}",    // missing attribute
		"friend{age 18}", // missing operator
		"friend{age>}",   // missing value
		"friend$",        // bad character
		"friend+[a,b]",   // non-integer depth
		"friend friend",  // trailing input
		"friend{name=\"unterminated",
		"friend{age!18}", // lone '!'
		"123",            // label must be identifier
		"friend+[1.5]",   // non-integer depth
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", in)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("friend+[1,2")
	if err == nil {
		t.Fatal("no error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Input != "friend+[1,2" || !strings.Contains(se.Error(), "offset") {
		t.Fatalf("error = %v", se)
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"friend+[1,2]/colleague+[1]",
		"friend*[1]",
		"parent-[2,*]",
		`friend+[1]{age>=18, city="paris"}`,
		"friend+[1]/parent+[1]/friend+[1]",
		"follows+[3,7]",
	}
	for _, in := range cases {
		p1 := MustParse(in)
		s := p1.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s, in, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Errorf("round trip %q -> %q -> %q", in, s, s2)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("///")
}

func TestValidateDirect(t *testing.T) {
	bad := []*Path{
		{},
		{Steps: []Step{{Label: "", MinDepth: 1, MaxDepth: 1}}},
		{Steps: []Step{{Label: "f", MinDepth: 0, MaxDepth: 1}}},
		{Steps: []Step{{Label: "f", MinDepth: 2, MaxDepth: 1}}},
		{Steps: []Step{{Label: "f", MinDepth: 1, MaxDepth: 1, Preds: []Pred{{Attr: ""}}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestMinMaxLen(t *testing.T) {
	p := MustParse("friend+[1,2]/colleague+[3]/parent+[2,*]")
	if got := p.MinLen(); got != 6 {
		t.Fatalf("MinLen = %d, want 6", got)
	}
	if got := p.MaxLen(10); got != 15 {
		t.Fatalf("MaxLen(10) = %d, want 15", got)
	}
}

func TestHasPreds(t *testing.T) {
	if MustParse("friend/colleague").HasPreds() {
		t.Fatal("HasPreds false positive")
	}
	if !MustParse("friend/colleague{age>1}").HasPreds() {
		t.Fatal("HasPreds false negative")
	}
}

func TestClone(t *testing.T) {
	p := MustParse(`friend+[1]{age>=18}`)
	c := p.Clone()
	c.Steps[0].Preds[0].Attr = "mutated"
	c.Steps[0].Label = "other"
	if p.Steps[0].Preds[0].Attr != "age" || p.Steps[0].Label != "friend" {
		t.Fatal("Clone aliases the original")
	}
}

func TestPredEval(t *testing.T) {
	attrs := graph.Attrs{
		"age":  graph.Int(24),
		"city": graph.String("paris"),
		"vip":  graph.Bool(true),
	}
	cases := []struct {
		pred string
		want bool
	}{
		{"age>=18", true},
		{"age>24", false},
		{"age<25", true},
		{"age<=24", true},
		{"age=24", true},
		{"age!=24", false},
		{"age!=25", true},
		{`city="paris"`, true},
		{`city!="rome"`, true},
		{`city<"q"`, true},
		{"vip=true", true},
		{"vip=false", false},
		{"missing=1", false}, // absent attribute
		{`age="24"`, false},  // kind mismatch on equality
		{"city>3", false},    // kind mismatch on compare
		{`age!="x"`, false},  // cross-kind disequality is not satisfied
		{"vip!=false", true}, // bool disequality
	}
	for _, c := range cases {
		p := MustParse("friend{" + c.pred + "}")
		if got := p.Steps[0].Preds[0].Eval(attrs); got != c.want {
			t.Errorf("Eval(%s) = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestDirectionAndOpStrings(t *testing.T) {
	if Out.String() != "+" || In.String() != "-" || Both.String() != "*" {
		t.Fatal("Direction strings")
	}
	ops := map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), want)
		}
	}
}
