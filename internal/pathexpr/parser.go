package pathexpr

import (
	"strconv"

	"reachac/internal/graph"
)

// Parse parses the concrete path syntax into a validated Path.
func Parse(input string) (*Path, error) {
	p := &parser{lex: lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if err := path.Validate(); err != nil {
		return nil, err
	}
	return path, nil
}

// MustParse is Parse for fixtures and tests; it panics on error.
func MustParse(input string) *Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.lex.errorf(p.tok.pos, "expected %s, found %s", kind, p.tok.kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	for {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		if p.tok.kind != tokSlash {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errorf(p.tok.pos, "trailing input: found %s", p.tok.kind)
	}
	return path, nil
}

func (p *parser) parseStep() (Step, error) {
	label, err := p.expect(tokIdent)
	if err != nil {
		return Step{}, err
	}
	step := Step{Label: label.text, Dir: Both, MinDepth: 1, MaxDepth: 1}

	switch p.tok.kind {
	case tokPlus:
		step.Dir = Out
		if err := p.advance(); err != nil {
			return Step{}, err
		}
	case tokMinus:
		step.Dir = In
		if err := p.advance(); err != nil {
			return Step{}, err
		}
	case tokStar:
		step.Dir = Both
		if err := p.advance(); err != nil {
			return Step{}, err
		}
	}

	if p.tok.kind == tokLBracket {
		if err := p.parseDepth(&step); err != nil {
			return Step{}, err
		}
	}
	if p.tok.kind == tokLBrace {
		if err := p.parsePreds(&step); err != nil {
			return Step{}, err
		}
	}
	return step, nil
}

func (p *parser) parseDepth(step *Step) error {
	if err := p.advance(); err != nil { // consume '['
		return err
	}
	lo, err := p.parseInt()
	if err != nil {
		return err
	}
	step.MinDepth, step.MaxDepth = lo, lo
	if p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokStar {
			step.Unbounded = true
			step.MaxDepth = 0
			if err := p.advance(); err != nil {
				return err
			}
		} else {
			hi, err := p.parseInt()
			if err != nil {
				return err
			}
			step.MaxDepth = hi
		}
	}
	_, err = p.expect(tokRBracket)
	return err
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.lex.errorf(t.pos, "bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parsePreds(step *Step) error {
	if err := p.advance(); err != nil { // consume '{'
		return err
	}
	for {
		pred, err := p.parsePred()
		if err != nil {
			return err
		}
		step.Preds = append(step.Preds, pred)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err := p.expect(tokRBrace)
	return err
}

func (p *parser) parsePred() (Pred, error) {
	attr, err := p.expect(tokIdent)
	if err != nil {
		return Pred{}, err
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return Pred{}, err
	}
	var op Op
	switch opTok.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	}
	val, err := p.parseValue()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Attr: attr.text, Op: op, Value: val}, nil
}

func (p *parser) parseValue() (graph.Value, error) {
	switch p.tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return graph.Value{}, p.lex.errorf(p.tok.pos, "bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return graph.Value{}, err
		}
		return graph.Number(f), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return graph.Value{}, err
		}
		return graph.String(s), nil
	case tokIdent:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return graph.Value{}, err
		}
		switch s {
		case "true":
			return graph.Bool(true), nil
		case "false":
			return graph.Bool(false), nil
		}
		return graph.String(s), nil
	default:
		return graph.Value{}, p.lex.errorf(p.tok.pos, "expected value, found %s", p.tok.kind)
	}
}
