// Package httpapi defines the wire types and error codes of the acserverd
// HTTP/JSON API, shared by the server (internal/server) and the typed Go
// client (client). Users and resources travel by name — the stable,
// human-facing identifiers — with numeric IDs included where cheap.
package httpapi

import "reachac"

// API paths, versioned under /v1.
const (
	PathHealth        = "/v1/health"
	PathStats         = "/v1/stats"
	PathUsers         = "/v1/users"
	PathRelationships = "/v1/relationships"
	PathShare         = "/v1/share"
	PathRevoke        = "/v1/revoke"
	PathCheck         = "/v1/check"
	PathCheckBatch    = "/v1/check-batch"
	PathAudience      = "/v1/audience"
	PathReach         = "/v1/reach"
	PathReachAudience = "/v1/reach-audience"
	PathPolicies      = "/v1/policies"
	PathAudit         = "/v1/audit"
	// PathShardExpand and PathShardPolicies are the shard-internal endpoints
	// the router (internal/shard, cmd/acshardd) drives: one round of the
	// distributed reachability search, and the name-keyed policy dump the
	// router rebuilds its routing cache from. Harmless (read-only) but
	// useless to ordinary clients.
	PathShardExpand   = "/v1/shard/expand"
	PathShardPolicies = "/v1/shard/policies"
)

// Error codes carried by ErrorBody.Code; the client maps them back to the
// facade's sentinel errors so errors.Is works across the wire.
const (
	CodeBadRequest            = "bad-request"
	CodeUnknownUser           = "unknown-user"
	CodeDuplicateUser         = "duplicate-user"
	CodeUnknownResource       = "unknown-resource"
	CodeUnknownRelationship   = "unknown-relationship"
	CodeDuplicateRelationship = "duplicate-relationship"
	CodeSelfRelationship      = "self-relationship"
	CodeResourceOwned         = "resource-owned"
	CodeReadOnly              = "read-only"
	CodeClosed                = "closed"
	CodeOverloaded            = "overloaded"
	CodeInternal              = "internal"
	// CodeShardUnavailable marks a scatter-gather decision the router failed
	// CLOSED because a shard it needed did not answer: the caller cannot
	// distinguish deny-by-policy from deny-by-outage without it.
	CodeShardUnavailable = "shard-unavailable"
)

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// AddUserRequest creates a member. Attrs values may be strings, numbers or
// booleans (the attribute kinds the graph supports).
type AddUserRequest struct {
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// UserResponse describes one member.
type UserResponse struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
}

// RelateRequest adds (POST) a relationship; Mutual adds both directions
// atomically.
type RelateRequest struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Type   string `json:"type"`
	Mutual bool   `json:"mutual,omitempty"`
}

// UnrelateRequest removes (DELETE body) a relationship.
type UnrelateRequest struct {
	From string `json:"from"`
	To   string `json:"to"`
	Type string `json:"type"`
}

// ShareRequest attaches one access rule to a resource, registering it to
// owner on first use. Paths are the rule's conditions (all must hold).
type ShareRequest struct {
	Resource string   `json:"resource"`
	Owner    string   `json:"owner"`
	Paths    []string `json:"paths"`
}

// ShareResponse returns the assigned rule ID.
type ShareResponse struct {
	Rule string `json:"rule"`
}

// RevokeRequest detaches one rule from a resource.
type RevokeRequest struct {
	Resource string `json:"resource"`
	Rule     string `json:"rule"`
}

// RevokeResponse reports whether the rule existed.
type RevokeResponse struct {
	Removed bool `json:"removed"`
}

// Decision is the wire form of one access decision, with the requester
// resolved to a name when possible.
type Decision struct {
	Resource  string `json:"resource"`
	Requester string `json:"requester"`
	Effect    string `json:"effect"`
	Rule      string `json:"rule,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// CheckBatchRequest decides one resource for many requesters in one
// consistent snapshot (Network.CanAccessAll).
type CheckBatchRequest struct {
	Resource   string   `json:"resource"`
	Requesters []string `json:"requesters"`
}

// CheckBatchResponse is index-aligned with the request's requesters.
type CheckBatchResponse struct {
	Decisions []Decision `json:"decisions"`
}

// UsersResponse lists member names (audience results).
type UsersResponse struct {
	Users []string `json:"users"`
}

// ReachResponse answers a raw reachability query, echoing the canonical
// form of the path expression.
type ReachResponse struct {
	Reachable bool   `json:"reachable"`
	Path      string `json:"path"`
}

// AuditResponse is the retained decision tail, oldest first.
type AuditResponse struct {
	Decisions []Decision `json:"decisions"`
}

// Recovery mirrors reachac.RecoveryInfo.
type Recovery struct {
	Groups        int    `json:"groups"`
	TornTail      bool   `json:"torn_tail"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
}

// Replica summarizes a follower's replication state for health checks.
type Replica struct {
	Epoch      uint64 `json:"epoch"`
	Connected  bool   `json:"connected"`
	Halted     bool   `json:"halted"`
	AppliedSeq uint64 `json:"applied_seq"`
	AppliedOff int64  `json:"applied_off"`
	// LagBytes and StalenessMS are the staleness bound: byte distance to the
	// leader's durable position, and wall-clock milliseconds since the last
	// successful leader exchange.
	LagBytes    int64 `json:"lag_bytes"`
	StalenessMS int64 `json:"staleness_ms"`
}

// HealthResponse reports liveness, role and what recovery reconstructed.
type HealthResponse struct {
	Status string `json:"status"`
	// Role is "leader" (durable, followable), "follower" (read replica) or
	// "standalone" (non-durable).
	Role          string    `json:"role"`
	Engine        string    `json:"engine"`
	Durable       bool      `json:"durable"`
	Users         int       `json:"users"`
	Relationships int       `json:"relationships"`
	Recovery      *Recovery `json:"recovery,omitempty"`
	Replica       *Replica  `json:"replica,omitempty"`
}

// HeaderStaleness is set on every response a follower serves: the wall-clock
// milliseconds since its last successful leader exchange, a freshness hint in
// the spirit of Retry-After. Absent on leaders.
const HeaderStaleness = "X-Replica-Staleness-Ms"

// HeaderShardPartial is set by the shard router on audience responses that
// are missing one or more shards' contributions: a comma-separated list of
// the unreachable shard indexes. Audiences degrade to a partial (under-
// approximate) answer instead of failing, but the caller must be able to
// tell. Checks never carry it — they fail closed instead.
const HeaderShardPartial = "X-Shard-Partial"

// ShardState, ShardExpandRequest and ShardExpandResponse are the wire form
// of one distributed-search round; the facade types already carry JSON tags,
// so the API reuses them directly.
type (
	ShardState          = reachac.ShardState
	ShardExpandRequest  = reachac.ShardExpandRequest
	ShardExpandResponse = reachac.ShardExpandResponse
)

// ShardPoliciesResponse is the name-keyed policy dump of one shard.
type ShardPoliciesResponse struct {
	Policies []reachac.ResourcePolicy `json:"policies"`
}

// RouterStats counts shard-router events (internal/shard).
type RouterStats struct {
	// Shards and VNodes echo the ring parameters.
	Shards int `json:"shards"`
	VNodes int `json:"vnodes"`
	// FastPath counts checks delegated whole to the resource owner's shard;
	// Scatter counts queries the router answered by distributed search.
	FastPath uint64 `json:"fast_path"`
	Scatter  uint64 `json:"scatter"`
	// ExpandCalls counts shard expand RPCs issued; ExpandRounds counts
	// scatter rounds (ExpandCalls/ExpandRounds is the fan-out factor).
	ExpandCalls  uint64 `json:"expand_calls"`
	ExpandRounds uint64 `json:"expand_rounds"`
	// BoundaryEdges counts cross-shard relationships (written to both
	// owners); LocalEdges counts co-located ones.
	BoundaryEdges uint64 `json:"boundary_edges"`
	LocalEdges    uint64 `json:"local_edges"`
	// AudienceCacheHits / AudienceCacheMisses track the router's
	// condition-audience cache; AudienceCacheExtends counts entries grown
	// in place by an edge add, AudienceCacheInvalidate entries dropped
	// because a delta may have shrunk them (incremental maintenance).
	AudienceCacheHits       uint64 `json:"audience_cache_hits"`
	AudienceCacheMisses     uint64 `json:"audience_cache_misses"`
	AudienceCacheExtends    uint64 `json:"audience_cache_extends"`
	AudienceCacheInvalidate uint64 `json:"audience_cache_invalidations"`
	// Partial counts audience responses served incomplete; FailedClosed
	// counts checks refused because a shard was unreachable.
	Partial      uint64 `json:"partial"`
	FailedClosed uint64 `json:"failed_closed"`
}

// ShardStats summarizes one backend as seen from the router.
type ShardStats struct {
	Index         int    `json:"index"`
	Engine        string `json:"engine"`
	Users         int    `json:"users"`
	Relationships int    `json:"relationships"`
	Healthy       bool   `json:"healthy"`
}

// ServerStats counts serving-layer events on top of the engine counters.
type ServerStats struct {
	// CommitGroups counts coalesced commit groups the server flushed;
	// CoalescedMutations counts the mutation requests they carried.
	// CoalescedMutations/CommitGroups is the achieved write-coalescing
	// factor.
	CommitGroups       uint64 `json:"commit_groups"`
	CoalescedMutations uint64 `json:"coalesced_mutations"`
	// QueueRejected counts mutations refused because the queue was full or
	// the request deadline expired while queued; CheckRejected counts reads
	// refused by the concurrency limiter.
	QueueRejected uint64 `json:"queue_rejected"`
	CheckRejected uint64 `json:"check_rejected"`
	// QueueDepth is the instantaneous mutation queue length.
	QueueDepth int `json:"queue_depth"`
}

// StatsResponse combines the engine's counters with the server's. A shard
// router additionally reports its routing counters and per-shard summaries
// (the embedded Stats then aggregate across shards).
type StatsResponse struct {
	reachac.Stats
	Server     ServerStats  `json:"server"`
	Router     *RouterStats `json:"router,omitempty"`
	ShardStats []ShardStats `json:"shard_stats,omitempty"`
}
