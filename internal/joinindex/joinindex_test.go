package joinindex

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/linegraph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

func buildPaper(t *testing.T, opts Options) *Index {
	t.Helper()
	idx, err := Build(paperfix.Graph(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func node(t *testing.T, g *graph.Graph, name string) graph.NodeID {
	t.Helper()
	id, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("node %q missing", name)
	}
	return id
}

func TestBuildPaperIndex(t *testing.T) {
	idx := buildPaper(t, Options{GreedyCover: true})
	s := idx.Stats()
	if s.LineNodes != 12 { // one forward line node per Figure-1 edge
		t.Fatalf("line nodes = %d, want 12", s.LineNodes)
	}
	if s.SCCs <= 0 || s.SCCs > 12 {
		t.Fatalf("SCCs = %d", s.SCCs)
	}
	if s.Centers == 0 || s.CoverSize == 0 || s.IntervalCount == 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.BaseTables != 3 { // one per relationship type
		t.Fatalf("base tables = %d, want 3", s.BaseTables)
	}
	if idx.Tree().Len() != len(idx.Clusters()) {
		t.Fatalf("B+tree has %d centers, clusters %d", idx.Tree().Len(), len(idx.Clusters()))
	}
	if s.IndexBytes() <= 0 {
		t.Fatal("IndexBytes not positive")
	}
}

func TestBaseTableSizes(t *testing.T) {
	idx := buildPaper(t, Options{})
	if n := idx.BaseTable(paperfix.Friend).Len(); n != 8 {
		t.Fatalf("T_friend = %d rows, want 8", n)
	}
	if n := idx.BaseTable(paperfix.Colleague).Len(); n != 2 {
		t.Fatalf("T_colleague = %d rows, want 2", n)
	}
	if n := idx.BaseTable(paperfix.Parent).Len(); n != 2 {
		t.Fatalf("T_parent = %d rows, want 2", n)
	}
	if idx.BaseTable("enemy") != nil {
		t.Fatal("phantom base table")
	}
}

// TestWTableCoversAllJoinAnswers verifies the Figure-6 invariant: every pair
// produced by a full reachability join between two base tables is witnessed
// by a center listed in the W-table entry for that label pair.
func TestWTableCoversAllJoinAnswers(t *testing.T) {
	idx := buildPaper(t, Options{GreedyCover: true})
	labels := []string{paperfix.Friend, paperfix.Colleague, paperfix.Parent}
	for _, a := range labels {
		for _, b := range labels {
			ta := idx.BaseTable(a)
			tb := idx.BaseTable(b)
			centers := idx.WEntry(a, b)
			inW := make(map[int32]bool)
			for _, w := range centers {
				inW[w] = true
			}
			for _, x := range ta.Rows {
				for _, y := range tb.Rows {
					// Does x reach y at all?
					if !idx.lineReach(x.ID, y.ID) {
						continue
					}
					// Then some W-table center must witness it.
					witnessed := false
					for _, w := range x.Out {
						if inW[w] {
							for _, v := range idx.Clusters()[w].V {
								if v == y.ID {
									witnessed = true
									break
								}
							}
						}
						if witnessed {
							break
						}
					}
					if !witnessed {
						t.Fatalf("pair (%s, %s) reachable but not witnessed via W(%s,%s)",
							idx.Line().NodeString(int(x.ID)), idx.Line().NodeString(int(y.ID)), a, b)
					}
				}
			}
		}
	}
}

// TestPaperJoinFriendColleague reproduces the §3.3 worked join: the answer
// of T_friend ⋈ T_colleague restricted to pairs that also survive adjacency
// includes ⟨friend A-C, … ⟩ chains leading to colleague D-F; the plain
// reachability join must contain the pair ⟨friend A-C, colleague D-F⟩.
func TestPaperJoinFriendColleague(t *testing.T) {
	idx := buildPaper(t, Options{GreedyCover: true, Strategy: EvalPaperJoin})
	g := idx.g
	l := idx.Line()
	lq := &linegraph.LineQuery{
		Steps: []linegraph.LineStep{
			{Label: paperfix.Friend, Dir: pathexpr.Out, OrigStep: 0, EndOfStep: true},
			{Label: paperfix.Colleague, Dir: pathexpr.Out, OrigStep: 1, EndOfStep: true},
		},
		Src: pathexpr.MustParse("friend+[1]/colleague+[1]"),
	}
	ts, err := idx.PaperJoinTuples(lq)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tup := range ts.Tuples {
		if l.NodeString(int(tup[0])) == "friend Alice-Colin" && l.NodeString(int(tup[1])) == "colleague David-Fred" {
			found = true
		}
	}
	if !found {
		t.Fatal("pair ⟨friendA-C, colleagueD-F⟩ missing from reachability join")
	}
	// After post-processing with Alice as owner and Fred as requester the
	// surviving tuple must be an adjacent path: friend Colin? No —
	// friendA-C is not adjacent to colleagueD-F (C ≠ D), so that pair dies,
	// but ⟨friend Colin-David, colleague David-Fred⟩ with owner Colin
	// survives. For owner Alice, the length-2 pattern has no match.
	alice := node(t, g, paperfix.Alice)
	fred := node(t, g, paperfix.Fred)
	if got := idx.PostProcess(alice, fred, lq, ts); len(got) != 0 {
		t.Fatalf("Alice->Fred friend/colleague post-process kept %v", got)
	}
	colin := node(t, g, paperfix.Colin)
	kept := idx.PostProcess(colin, fred, lq, ts)
	if len(kept) != 1 {
		t.Fatalf("Colin->Fred post-process kept %d tuples", len(kept))
	}
	if l.NodeString(int(kept[0][0])) != "friend Colin-David" || l.NodeString(int(kept[0][1])) != "colleague David-Fred" {
		t.Fatalf("surviving tuple = [%s, %s]", l.NodeString(int(kept[0][0])), l.NodeString(int(kept[0][1])))
	}
}

// TestPaperPathFriendParentFriend reproduces the §3.3–3.4 worked example:
// (T_friend ⋈ T_parent) ⋈ T_friend contains the tuple ⟨friend A-C,
// parent C-F, friend F-G⟩, which survives post-processing for owner Alice
// and requester George (the path Alice -> Colin -> Fred -> George).
func TestPaperPathFriendParentFriend(t *testing.T) {
	idx := buildPaper(t, Options{GreedyCover: true, Strategy: EvalPaperJoin})
	g := idx.g
	l := idx.Line()
	lqs, err := linegraph.ExpandQuery(paperfix.QFriendParentFriend(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lqs) != 1 {
		t.Fatalf("expansions = %d", len(lqs))
	}
	ts, err := idx.PaperJoinTuples(&lqs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The paper's final table includes (friendAC, parentCF, friendFG).
	want := [3]string{"friend Alice-Colin", "parent Colin-Fred", "friend Fred-George"}
	found := false
	for _, tup := range ts.Tuples {
		got := [3]string{l.NodeString(int(tup[0])), l.NodeString(int(tup[1])), l.NodeString(int(tup[2]))}
		if got == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("paper tuple %v missing from join result (%d tuples)", want, ts.Len())
	}
	alice := node(t, g, paperfix.Alice)
	george := node(t, g, paperfix.George)
	kept := idx.PostProcess(alice, george, &lqs[0], ts)
	if len(kept) != 1 {
		t.Fatalf("post-process kept %d tuples, want 1", len(kept))
	}
	got := [3]string{
		l.NodeString(int(kept[0][0])),
		l.NodeString(int(kept[0][1])),
		l.NodeString(int(kept[0][2])),
	}
	if got != want {
		t.Fatalf("surviving tuple = %v, want %v", got, want)
	}
	// And the boolean decision grants George access.
	ok, err := idx.Reachable(alice, george, paperfix.QFriendParentFriend())
	if err != nil || !ok {
		t.Fatalf("Reachable = %v, %v", ok, err)
	}
}

func TestQ1AllStrategies(t *testing.T) {
	g := paperfix.Graph()
	for _, strat := range []Strategy{EvalAnchored, EvalPaperJoin} {
		idx, err := Build(g, Options{Strategy: strat, GreedyCover: true})
		if err != nil {
			t.Fatal(err)
		}
		alice := node(t, g, paperfix.Alice)
		for _, name := range paperfix.Names[1:] {
			want := false
			for _, w := range paperfix.Q1Grantees {
				if w == name {
					want = true
				}
			}
			got, err := idx.Reachable(alice, node(t, g, name), paperfix.Q1())
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("strategy %d: Q1 grant for %s = %v, want %v", strat, name, got, want)
			}
		}
	}
}

func agreementQueries() []string {
	return []string{
		"friend+[1,2]/colleague+[1]",
		"friend+[1]/parent+[1]/friend+[1]",
		"friend-[1]",
		"friend*[1,2]",
		"friend+[3]",
		"friend+[1,4]",
		"colleague-[1]/friend-[1]",
		"parent+[1]/friend-[1]",
		"friend+[2]/parent+[1]",
		"friend+[1,*]",
	}
}

func TestEngineAgreementOnPaperGraph(t *testing.T) {
	g := paperfix.Graph()
	oracle := search.New(g)
	for _, strat := range []Strategy{EvalAnchored, EvalPaperJoin} {
		for _, disableW := range []bool{false, true} {
			for _, disableLA := range []bool{false, true} {
				idx, err := Build(g, Options{
					Strategy:         strat,
					GreedyCover:      true,
					DisableWTable:    disableW,
					DisableLookahead: disableLA,
					MaxUnbounded:     5,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range agreementQueries() {
					p := pathexpr.MustParse(q)
					// The index's unbounded horizon must match the oracle's
					// semantics; skip unbounded queries whose matches could
					// exceed the horizon (none here: graph diameter < 5).
					for _, o := range paperfix.Names {
						for _, r := range paperfix.Names {
							oid, rid := node(t, g, o), node(t, g, r)
							want, err := oracle.Reachable(oid, rid, p)
							if err != nil {
								t.Fatal(err)
							}
							got, err := idx.Reachable(oid, rid, p)
							if err != nil {
								t.Fatal(err)
							}
							if got != want {
								t.Fatalf("strat=%d W=%v LA=%v: (%s,%s,%s) index=%v oracle=%v",
									strat, !disableW, !disableLA, o, r, q, got, want)
							}
						}
					}
				}
			}
		}
	}
}

func randomSocialGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New()
	labels := []string{"friend", "colleague", "parent"}
	for i := 0; i < n; i++ {
		var attrs graph.Attrs
		if rng.Intn(2) == 0 {
			attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(60))}
		}
		g.MustAddNode(nameOf(i), attrs)
	}
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
		}
	}
	return g
}

func nameOf(i int) string {
	return "u" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestEngineAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	queries := []string{
		"friend+[1,2]",
		"friend+[1]/colleague+[1]",
		"friend-[1,2]/parent+[1]",
		"friend*[1,2]",
		"colleague+[1]/friend*[1,2]",
		"friend+[1,2]{age>=18}",
		"parent+[2]",
	}
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(12)
		g := randomSocialGraph(rng, n, n*3)
		oracle := search.New(g)
		for _, strat := range []Strategy{EvalAnchored, EvalPaperJoin} {
			idx, err := Build(g, Options{Strategy: strat, GreedyCover: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				p := pathexpr.MustParse(q)
				for o := 0; o < n; o++ {
					for r := 0; r < n; r++ {
						oid, rid := graph.NodeID(o), graph.NodeID(r)
						want, err := oracle.Reachable(oid, rid, p)
						if err != nil {
							t.Fatal(err)
						}
						got, err := idx.Reachable(oid, rid, p)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("trial %d strat %d: (%d,%d,%s) index=%v oracle=%v",
								trial, strat, o, r, q, got, want)
						}
					}
				}
			}
		}
	}
}

func TestPrunedCoverAgreement(t *testing.T) {
	// Same agreement check with the scalable pruned cover instead of greedy.
	rng := rand.New(rand.NewSource(321))
	g := randomSocialGraph(rng, 15, 45)
	oracle := search.New(g)
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range agreementQueries() {
		p := pathexpr.MustParse(q)
		for o := 0; o < 15; o++ {
			for r := 0; r < 15; r++ {
				oid, rid := graph.NodeID(o), graph.NodeID(r)
				want, _ := oracle.Reachable(oid, rid, p)
				got, err := idx.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("(%d,%d,%s) index=%v oracle=%v", o, r, q, got, want)
				}
			}
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	idx := buildPaper(t, Options{})
	if _, err := idx.Reachable(999, 0, paperfix.Q1()); err == nil {
		t.Fatal("invalid owner accepted")
	}
	if _, err := idx.Reachable(0, 1, &pathexpr.Path{}); err == nil {
		t.Fatal("invalid path accepted")
	}
	// The anchored strategy handles wide depth intervals without expansion.
	if _, err := idx.Reachable(0, 1, pathexpr.MustParse("friend+[1,100]/colleague+[1,100]")); err != nil {
		t.Fatalf("anchored strategy rejected wide intervals: %v", err)
	}
	// The paper-join strategy expands and must refuse oversized products.
	pj := buildPaper(t, Options{Strategy: EvalPaperJoin})
	if _, err := pj.Reachable(0, 1, pathexpr.MustParse("friend+[1,100]/colleague+[1,100]")); err == nil {
		t.Fatal("oversized expansion accepted")
	}
}

func TestUnknownLabelDenies(t *testing.T) {
	idx := buildPaper(t, Options{})
	ok, err := idx.Reachable(0, 1, pathexpr.MustParse("enemy+[1]"))
	if err != nil || ok {
		t.Fatalf("unknown label: ok=%v err=%v", ok, err)
	}
}

func TestMaxTuplesCap(t *testing.T) {
	// A dense single-label graph with paper join and a tiny cap must error.
	rng := rand.New(rand.NewSource(5))
	g := randomSocialGraph(rng, 12, 60)
	idx, err := Build(g, Options{Strategy: EvalPaperJoin, MaxTuples: 2, DisableWTable: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = idx.Reachable(0, 1, pathexpr.MustParse("friend+[1]/friend+[1]"))
	if err == nil {
		t.Fatal("tuple cap not enforced")
	}
}

func TestWEntryPaperShape(t *testing.T) {
	// On the fixture, W(friend,colleague) must be non-empty (the join has
	// answers) and every listed center must actually connect the tables.
	idx := buildPaper(t, Options{GreedyCover: true})
	centers := idx.WEntry(paperfix.Friend, paperfix.Colleague)
	if len(centers) == 0 {
		t.Fatal("W(friend,colleague) empty")
	}
	for _, w := range centers {
		cl := idx.Clusters()[w]
		hasFriendU, hasColleagueV := false, false
		for _, u := range cl.U {
			if idx.g.LabelName(idx.Line().Nodes[u].Label) == paperfix.Friend {
				hasFriendU = true
			}
		}
		for _, v := range cl.V {
			if idx.g.LabelName(idx.Line().Nodes[v].Label) == paperfix.Colleague {
				hasColleagueV = true
			}
		}
		if !hasFriendU || !hasColleagueV {
			t.Fatalf("center %d listed in W(friend,colleague) but clusters lack the labels", w)
		}
	}
	if idx.WEntry("enemy", paperfix.Friend) != nil {
		t.Fatal("W entry for unknown label")
	}
}

func TestStaleIndexRefused(t *testing.T) {
	g := paperfix.Graph()
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := g.NodeByName(paperfix.Alice)
	bill, _ := g.NodeByName(paperfix.Bill)
	if _, err := idx.Reachable(alice, bill, paperfix.Q1()); err != nil {
		t.Fatalf("fresh index: %v", err)
	}
	// Mutate the graph: the index must refuse to answer.
	g.MustAddEdge(bill, alice, "colleague")
	if _, err := idx.Reachable(alice, bill, paperfix.Q1()); err != ErrStale {
		t.Fatalf("stale index answered (err=%v)", err)
	}
	// A rebuild accepts again.
	idx2, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx2.Reachable(alice, bill, paperfix.Q1()); err != nil {
		t.Fatalf("rebuilt index: %v", err)
	}
	// Removal also invalidates.
	l, _ := g.LookupLabel("colleague")
	if err := g.RemoveEdge(g.FindEdge(bill, alice, l)); err != nil {
		t.Fatal(err)
	}
	if _, err := idx2.Reachable(alice, bill, paperfix.Q1()); err != ErrStale {
		t.Fatalf("index stale after removal answered (err=%v)", err)
	}
}
