package joinindex

import (
	"fmt"

	"reachac/internal/graph"
	"reachac/internal/linegraph"
	"reachac/internal/pathexpr"
	"reachac/internal/reldb"
)

// Reachable reports whether requester is reachable from owner through a
// path matching p, evaluated over the index.
func (idx *Index) Reachable(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if !idx.g.ValidNode(owner) || !idx.g.ValidNode(requester) {
		return false, fmt.Errorf("joinindex: invalid node (owner=%d requester=%d)", owner, requester)
	}
	if idx.g.Version() != idx.builtAt {
		return false, ErrStale
	}
	if idx.opts.Strategy == EvalPaperJoin {
		lqs, err := linegraph.ExpandQuery(p, idx.opts.MaxUnbounded, idx.opts.MaxExpansions)
		if err != nil {
			return false, err
		}
		for i := range lqs {
			lq := &lqs[i]
			var ok bool
			if allOutgoing(lq) {
				ok, err = idx.evalPaperJoin(owner, requester, lq)
			} else {
				ok, err = idx.evalAnchored(owner, requester, p)
			}
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return idx.evalAnchored(owner, requester, p)
}

// allOutgoing reports whether every step of the line query is a '+' step —
// the query class the paper's join machinery composes (head-to-tail).
func allOutgoing(lq *linegraph.LineQuery) bool {
	for _, s := range lq.Steps {
		if s.Dir != pathexpr.Out {
			return false
		}
	}
	return true
}

// traversal is one oriented use of a social edge during anchored evaluation.
type traversal struct {
	edge    graph.Edge
	forward bool
}

func (t traversal) head() graph.NodeID {
	if t.forward {
		return t.edge.To
	}
	return t.edge.From
}

// admits reports whether traversal tr may match line step pos of lq:
// label, orientation, and — when the step closes an original path step —
// that step's attribute predicates at the traversal head.
func (idx *Index) admits(lq *linegraph.LineQuery, pos int, tr traversal) bool {
	s := lq.Steps[pos]
	l, found := idx.g.LookupLabel(s.Label)
	if !found || tr.edge.Label != l {
		return false
	}
	switch s.Dir {
	case pathexpr.Out:
		if !tr.forward {
			return false
		}
	case pathexpr.In:
		if tr.forward {
			return false
		}
	}
	if s.EndOfStep {
		for _, pr := range lq.Src.Steps[s.OrigStep].Preds {
			if !pr.Eval(idx.g.Node(tr.head()).Attrs) {
				return false
			}
		}
	}
	return true
}

// evalAnchored runs the index-guided product search over the original
// query's step machine (one walk covers every depth expansion, and
// unbounded steps are handled exactly): start from the owner's incident
// traversals admitted by the first step, walk both edge orientations of G
// through the automaton states, and — whenever the remaining pattern is all
// outgoing — prune any branch whose forward line node cannot reach one of
// the requester's admitted final line nodes according to the precomputed
// reachability labels.
func (idx *Index) evalAnchored(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	k := len(p.Steps)
	// Resolve labels; an absent label can never match.
	labels := make([]graph.Label, k)
	for i, st := range p.Steps {
		l, ok := idx.g.LookupLabel(st.Label)
		if !ok {
			return false, nil
		}
		labels[i] = l
	}
	// sfx[i] reports whether steps i..k-1 are all outgoing; on such
	// suffixes every remaining traversal is forward, so line-graph
	// reachability from the current traversal to a final traversal is a
	// necessary condition for a match.
	sfx := make([]bool, k+1)
	sfx[k] = true
	for i := k - 1; i >= 0; i-- {
		sfx[i] = sfx[i+1] && p.Steps[i].Dir == pathexpr.Out
	}

	stepPredsHold := func(i int, n graph.NodeID) bool {
		for _, pr := range p.Steps[i].Preds {
			if !pr.Eval(idx.g.Node(n).Attrs) {
				return false
			}
		}
		return true
	}
	// The last step's predicates always apply to the requester; a failure
	// denies outright.
	if !stepPredsHold(k-1, requester) {
		return false, nil
	}

	// Final candidates: traversals of the last step's label ending at the
	// requester, in an admitted orientation.
	last := p.Steps[k-1]
	var finalLine []int32 // forward line nodes, for look-ahead
	nFinals := 0
	if last.Dir == pathexpr.Out || last.Dir == pathexpr.Both {
		idx.g.InEdges(requester, func(e graph.Edge) bool {
			if e.Label == labels[k-1] {
				nFinals++
				if ln := idx.l.Forward(e.ID); ln >= 0 {
					finalLine = append(finalLine, ln)
				}
			}
			return true
		})
	}
	if last.Dir == pathexpr.In || last.Dir == pathexpr.Both {
		idx.g.OutEdges(requester, func(e graph.Edge) bool {
			if e.Label == labels[k-1] {
				nFinals++
			}
			return true
		})
	}
	if nFinals == 0 {
		return false, nil
	}

	lookahead := func(tr traversal, step int) bool {
		if idx.opts.DisableLookahead || !sfx[step] || !tr.forward {
			return true
		}
		x := idx.l.Forward(tr.edge.ID)
		if x < 0 {
			return true
		}
		for _, f := range finalLine {
			if idx.lineReach(x, f) {
				return true
			}
		}
		return false
	}

	// Automaton state: having consumed the d-th edge of step i, now at
	// member node. Future transitions depend only on (node, i, d), so
	// states deduplicate on the landing node — the traversal identity
	// matters only for the look-ahead test. For unbounded steps depths at
	// or above MinDepth collapse (the state's future capabilities no longer
	// depend on d).
	type state struct {
		node graph.NodeID
		step int
		d    int
	}
	dKey := func(i, d int) int {
		if p.Steps[i].Unbounded && d > p.Steps[i].MinDepth {
			return p.Steps[i].MinDepth
		}
		return d
	}
	mayClose := func(i, d int) bool { return d >= p.Steps[i].MinDepth }
	mayContinue := func(i, d int) bool {
		return p.Steps[i].Unbounded || d < p.Steps[i].MaxDepth
	}

	seen := make(map[[3]uint32]bool)
	var queue []state

	// push consumes one edge (tr) as the d-th edge of step i; it reports
	// whether this completes a full match.
	push := func(tr traversal, i, d int) bool {
		st := p.Steps[i]
		if tr.edge.Label != labels[i] {
			return false
		}
		if st.Dir == pathexpr.Out && !tr.forward || st.Dir == pathexpr.In && tr.forward {
			return false
		}
		h := tr.head()
		if i == k-1 && mayClose(i, d) && h == requester {
			// Last-step predicates were pre-checked on the requester.
			return true
		}
		key := [3]uint32{uint32(h), uint32(i), uint32(dKey(i, d))}
		if seen[key] {
			return false
		}
		seen[key] = true
		if !lookahead(tr, i) {
			return false
		}
		queue = append(queue, state{h, i, dKey(i, d)})
		return false
	}

	// expandFrom consumes one step-i edge out of member h (as depth d),
	// iterating only the orientations the step admits; it reports whether a
	// full match was completed.
	expandFrom := func(h graph.NodeID, i, d int) bool {
		st := &p.Steps[i]
		done := false
		if st.Dir != pathexpr.In {
			idx.g.OutEdges(h, func(e graph.Edge) bool {
				if e.Label != labels[i] {
					return true
				}
				done = push(traversal{e, true}, i, d)
				return !done
			})
			if done {
				return true
			}
		}
		if st.Dir != pathexpr.Out {
			idx.g.InEdges(h, func(e graph.Edge) bool {
				if e.Label != labels[i] {
					return true
				}
				done = push(traversal{e, false}, i, d)
				return !done
			})
		}
		return done
	}

	// Seed with the owner's incident traversals as the first edge of step 0.
	if expandFrom(owner, 0, 1) {
		return true, nil
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Option 1: close step cur.step here and start the next one.
		if cur.step+1 < k && mayClose(cur.step, cur.d) && stepPredsHold(cur.step, cur.node) {
			if expandFrom(cur.node, cur.step+1, 1) {
				return true, nil
			}
		}
		// Option 2: continue the current step.
		if mayContinue(cur.step, cur.d) {
			if expandFrom(cur.node, cur.step, cur.d+1) {
				return true, nil
			}
		}
	}
	return false, nil
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// PaperJoinTuples evaluates an all-outgoing line query with the literal
// §3.3 strategy: a chain of reachability joins over the base tables,
// W-table-pruned unless disabled. The returned tuple set has NOT yet been
// post-processed.
func (idx *Index) PaperJoinTuples(lq *linegraph.LineQuery) (*reldb.TupleSet, error) {
	if !allOutgoing(lq) {
		return nil, fmt.Errorf("joinindex: paper join supports outgoing steps only, got %s", lq)
	}
	k := len(lq.Steps)
	tables := make([]*reldb.Table, k)
	for i := 0; i < k; i++ {
		tables[i] = idx.BaseTable(lq.Steps[i].Label)
		if tables[i] == nil || tables[i].Len() == 0 {
			return &reldb.TupleSet{}, nil
		}
	}
	ts := reldb.FromTable(tables[0])
	for i := 1; i < k; i++ {
		var next *reldb.TupleSet
		var ok bool
		if idx.opts.DisableWTable {
			next, ok = ts.Extend(tables[i], idx.opts.MaxTuples)
		} else {
			next, ok = idx.extendViaWTable(ts, lq, i)
		}
		if !ok {
			return nil, fmt.Errorf("joinindex: intermediate result exceeds %d tuples", idx.opts.MaxTuples)
		}
		ts = next
		if ts.Len() == 0 {
			break
		}
	}
	return ts, nil
}

// extendViaWTable extends a tuple set to position pos using the W-table: a
// tuple with last element x gains successor y iff some center w in
// W(label(pos-1), label(pos)) has x ∈ U_w and y ∈ V_w.
func (idx *Index) extendViaWTable(ts *reldb.TupleSet, lq *linegraph.LineQuery, pos int) (*reldb.TupleSet, bool) {
	la, okA := idx.g.LookupLabel(lq.Steps[pos-1].Label)
	lb, okB := idx.g.LookupLabel(lq.Steps[pos].Label)
	if !okA || !okB {
		return &reldb.TupleSet{}, true
	}
	centers := idx.wtable[wKey{la, lb}]
	if len(centers) == 0 {
		return &reldb.TupleSet{}, true
	}
	centerSet := make(map[int32]bool, len(centers))
	for _, w := range centers {
		centerSet[w] = true
	}
	// Per relevant center, V_w restricted to the target label.
	vOf := make(map[int32][]int32, len(centers))
	for _, w := range centers {
		for _, y := range idx.clusters[w].V {
			if idx.l.Nodes[y].Label == lb {
				vOf[w] = append(vOf[w], y)
			}
		}
	}

	out := &reldb.TupleSet{}
	seen := make(map[int32]bool)
	for i, tup := range ts.Tuples {
		x := ts.LastRow(i)
		clear(seen)
		for _, w := range x.Out {
			if !centerSet[w] {
				continue
			}
			for _, y := range vOf[w] {
				if seen[y] {
					continue
				}
				seen[y] = true
				if idx.opts.MaxTuples > 0 && out.Len() >= idx.opts.MaxTuples {
					return nil, false
				}
				nt := make([]int32, len(tup)+1)
				copy(nt, tup)
				nt[len(tup)] = y
				out.Append(nt, idx.rowOf[y])
			}
		}
	}
	return out, true
}

// PostProcess applies §3.4 to a joined tuple set: keep only tuples whose
// elements are pairwise adjacent (a single path, not disjoint paths), whose
// first traversal starts at the owner, whose last traversal ends at the
// requester, and whose end-of-step heads satisfy the step predicates.
// It returns the surviving tuples.
func (idx *Index) PostProcess(owner, requester graph.NodeID, lq *linegraph.LineQuery, ts *reldb.TupleSet) [][]int32 {
	var out [][]int32
	for _, tup := range ts.Tuples {
		if idx.tupleSurvives(owner, requester, lq, tup) {
			out = append(out, tup)
		}
	}
	return out
}

func (idx *Index) tupleSurvives(owner, requester graph.NodeID, lq *linegraph.LineQuery, tup []int32) bool {
	if len(tup) != len(lq.Steps) {
		return false
	}
	if idx.l.Nodes[tup[0]].Tail != owner {
		return false
	}
	if idx.l.Nodes[tup[len(tup)-1]].Head != requester {
		return false
	}
	for i := 0; i+1 < len(tup); i++ {
		if idx.l.Nodes[tup[i]].Head != idx.l.Nodes[tup[i+1]].Tail {
			return false
		}
	}
	for i := range lq.Steps {
		n := idx.l.Nodes[tup[i]]
		if !idx.admits(lq, i, traversal{edge: idx.g.Edge(n.Edge), forward: true}) {
			return false
		}
	}
	return true
}

// evalPaperJoin is the boolean wrapper over PaperJoinTuples + PostProcess.
func (idx *Index) evalPaperJoin(owner, requester graph.NodeID, lq *linegraph.LineQuery) (bool, error) {
	ts, err := idx.PaperJoinTuples(lq)
	if err != nil {
		return false, err
	}
	return len(idx.PostProcess(owner, requester, lq, ts)) > 0, nil
}
