// Package joinindex implements the paper's §3 evaluation pipeline end to
// end — the cluster-based join index for ordered label-constraint
// reachability (OLCR) queries:
//
//  1. build the line graph L(G) of the social graph (Definition 4, package
//     linegraph);
//  2. condense L(G) into a DAG via Tarjan SCC (package scc);
//  3. interval-label the DAG following Agrawal et al. (package interval) —
//     the Figure 5 "reachability table";
//  4. compute a 2-hop cover of the DAG (package twohop) — greedy
//     max-cardinality on small graphs, pruned landmark labeling at scale;
//  5. store one base table T_label(id, Lin, Lout) per relationship type in
//     the relational layer (package reldb), build the W-table mapping label
//     pairs to the centers relevant for their reachability join (Figure 6),
//     and a B+tree over the centers' U/V clusters (Figure 7, package btree).
//
// Like the paper's construction, the line graph composes traversals
// head-to-tail, i.e. it models *outgoing* ('+') steps. Steps with incoming
// ('-') or undirected ('*') orientation are supported by the anchored
// evaluator, which walks both edge orientations of G directly; the
// reachability labels then prune only the all-outgoing suffixes of a query.
//
// Query evaluation transforms an OLCR query into line queries (Figure 4),
// evaluates them over the index, and post-processes candidate tuples for
// adjacency, endpoints and attribute predicates (§3.4). Two strategies:
//
//   - EvalPaperJoin: the literal §3.3 strategy — a chain of reachability
//     joins over the base tables (pruned through the W-table), then the
//     §3.4 post-processing that keeps only tuples forming a single adjacent
//     path from owner to requester. Faithful but subject to intermediate-
//     result blowup; used for figure regeneration and as an ablation arm.
//     Queries with non-'+' steps fall back to the anchored evaluator.
//
//   - EvalAnchored (default): the same index structures driving a guided
//     expansion anchored at the owner's incident edges, using the 2-hop /
//     interval labels as a reachability look-ahead that prunes branches
//     which cannot reach any of the requester's incident edges. Sound and
//     complete for the full query class, without the cartesian blowup.
package joinindex

import (
	"fmt"
	"time"

	"reachac/internal/btree"
	"reachac/internal/digraph"
	"reachac/internal/graph"
	"reachac/internal/interval"
	"reachac/internal/linegraph"
	"reachac/internal/reldb"
	"reachac/internal/scc"
	"reachac/internal/twohop"
)

// Strategy selects the query evaluation algorithm.
type Strategy uint8

// Evaluation strategies.
const (
	EvalAnchored  Strategy = iota // index-guided expansion with 2-hop look-ahead (default)
	EvalPaperJoin                 // literal §3.3 reachability-join chain + §3.4 post-processing
)

// Options configures index construction and evaluation.
type Options struct {
	// Strategy selects the evaluation algorithm (default EvalAnchored).
	Strategy Strategy
	// GreedyCover forces the exact greedy max-cardinality 2-hop cover
	// (small graphs only, see twohop.GreedyLimit); otherwise pruned
	// landmark labeling is used.
	GreedyCover bool
	// DisableWTable turns off W-table pruning in EvalPaperJoin (ablation).
	DisableWTable bool
	// DisableLookahead turns off the reachability look-ahead in
	// EvalAnchored (ablation: degenerates to plain guided BFS).
	DisableLookahead bool
	// MaxUnbounded is the line-query horizon for [lo,*] steps (default
	// linegraph.DefaultMaxUnbounded).
	MaxUnbounded int
	// MaxExpansions caps the number of line queries per OLCR query.
	MaxExpansions int
	// MaxTuples caps intermediate reachability-join results in
	// EvalPaperJoin (default 1<<20); exceeding it fails the query.
	MaxTuples int
	// BTreeOrder is the order of the cluster B+tree (default
	// btree.DefaultOrder).
	BTreeOrder int
	// IntervalBudget caps each condensation vertex's interval set (default
	// 8; see interval.LabelBounded). Exact Agrawal sets can grow
	// quadratically on wide DAGs; the bounded sets over-approximate
	// reachability, which keeps the look-ahead sound.
	IntervalBudget int
}

// BuildStats records construction cost, for the E1/E6 experiments.
type BuildStats struct {
	// LookaheadGated reports that look-ahead pruning was disabled
	// automatically because the line graph condensed into giant SCCs.
	LookaheadGated bool
	LineNodes      int
	LineEdges      int
	SCCs           int
	IntervalCount  int
	CoverSize      int
	Centers        int
	BaseTables     int
	WTableEntries  int
	LineGraphTime  time.Duration
	SCCTime        time.Duration
	IntervalTime   time.Duration
	CoverTime      time.Duration
	TableTime      time.Duration
	TotalTime      time.Duration
}

// IndexBytes estimates resident index size in bytes: 4 bytes per 2-hop label
// entry twice (cover + base-table mirror), 16 per interval, 8 per cluster
// membership entry.
func (s BuildStats) IndexBytes() int {
	return s.CoverSize*4*2 + s.IntervalCount*16 + s.CoverSize*8
}

// Cluster is one center's pair of clusters (U_w, V_w) from Definition 6:
// U_w holds the line nodes that reach the center, V_w those the center
// reaches (both include the center's own component members).
type Cluster struct {
	Rank   int32
	Center int32 // representative line node of the center's SCC
	U, V   []int32
}

// Index is the cluster-based join index over one social graph. Build once,
// query many times; the index is read-only after construction and safe for
// concurrent readers.
type Index struct {
	g     *graph.Graph
	l     *linegraph.L
	parts *scc.Result
	lab   *interval.Labeling
	cover *twohop.Cover
	// dag is the condensation of the line graph and dagRev its reverse;
	// retained (since they drive the 2-hop cover's labels) so that
	// ApplyDelta can grow them and resume the cover's pruned BFS for
	// incremental edge insertion instead of rebuilding the pipeline.
	dag, dagRev *digraph.D
	// incremental is set once ApplyDelta has grown the structures beyond
	// the interval labeling's universe; lineReach then decides with the
	// exact (incrementally maintained) 2-hop cover alone.
	incremental bool
	// tables holds one base table per relationship type.
	tables map[graph.Label]*reldb.Table
	// wtable maps an ordered label pair to the ranks of the centers
	// relevant for their reachability join (Figure 6).
	wtable map[wKey][]int32
	// clusters, indexed by center rank (Figure 7 payload).
	clusters []Cluster
	// tree is the B+tree over the clusters, keyed by center name.
	tree *btree.Tree
	// rowOf caches each line node's base-table row.
	rowOf []reldb.Row
	opts  Options
	stats BuildStats
	// builtAt is the graph version the index was built from; queries
	// against a mutated graph are refused (stale pruning structures could
	// wrongly deny paths that use edges added after the build).
	builtAt uint64
}

type wKey struct {
	a, b graph.Label
}

// Build constructs the index for g.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	if opts.MaxUnbounded <= 0 {
		opts.MaxUnbounded = linegraph.DefaultMaxUnbounded
	}
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = linegraph.DefaultMaxExpansions
	}
	if opts.MaxTuples <= 0 {
		opts.MaxTuples = 1 << 20
	}
	idx := &Index{
		g:      g,
		tables: make(map[graph.Label]*reldb.Table),
		wtable: make(map[wKey][]int32),
		opts:   opts,
	}
	t0 := time.Now()

	// 1. Forward line graph (Definition 4).
	idx.l = linegraph.Build(g, linegraph.Opts{})
	idx.stats.LineNodes = idx.l.NumNodes()
	idx.stats.LineEdges = idx.l.NumEdges()
	idx.stats.LineGraphTime = time.Since(t0)

	// 2. SCC condensation.
	t1 := time.Now()
	idx.parts = scc.Tarjan(idx.l.D)
	dag := scc.Condense(idx.l.D, idx.parts)
	idx.dag = dag
	idx.dagRev = dag.Reverse()
	idx.stats.SCCs = idx.parts.NumComp
	idx.stats.SCCTime = time.Since(t1)
	// Reciprocity-heavy social graphs collapse the line graph into a few
	// giant SCCs; plain-reachability look-ahead then prunes almost nothing
	// and is pure overhead, so it is gated off when the condensation
	// retains less than a quarter of the line nodes.
	if !opts.DisableLookahead && idx.l.NumNodes() > 0 &&
		idx.parts.NumComp*4 < idx.l.NumNodes() {
		idx.opts.DisableLookahead = true
		idx.stats.LookaheadGated = true
	}

	// 3. Interval labeling (Figure 5), bounded per vertex.
	t2 := time.Now()
	if opts.IntervalBudget <= 0 {
		opts.IntervalBudget = 8
		idx.opts.IntervalBudget = 8
	}
	lab, err := interval.LabelBounded(dag, opts.IntervalBudget)
	if err != nil {
		return nil, fmt.Errorf("joinindex: interval labeling: %w", err)
	}
	idx.lab = lab
	idx.stats.IntervalCount = lab.Size()
	idx.stats.IntervalTime = time.Since(t2)

	// 4. 2-hop cover.
	t3 := time.Now()
	if opts.GreedyCover {
		idx.cover, err = twohop.Greedy(dag)
		if err != nil {
			return nil, fmt.Errorf("joinindex: greedy cover: %w", err)
		}
	} else {
		idx.cover = twohop.Pruned(dag)
	}
	idx.stats.CoverSize = idx.cover.Size()
	idx.stats.Centers = idx.cover.NumCenters()
	idx.stats.CoverTime = time.Since(t3)

	// 5. Base tables, clusters, W-table, B+tree.
	t4 := time.Now()
	idx.buildTables()
	idx.buildClusters()
	idx.buildWTable()
	idx.buildTree()
	idx.stats.TableTime = time.Since(t4)
	idx.stats.BaseTables = len(idx.tables)
	idx.stats.WTableEntries = len(idx.wtable)
	idx.stats.TotalTime = time.Since(t0)
	idx.builtAt = g.Version()
	return idx, nil
}

// ErrStale is returned by Reachable when the underlying graph was mutated
// after the index was built; rebuild with Build.
var ErrStale = errStale{}

type errStale struct{}

func (errStale) Error() string {
	return "joinindex: graph mutated since index build; rebuild required"
}

// comp returns the condensed-DAG vertex of a line node.
func (idx *Index) comp(lineNode int32) int { return idx.parts.Comp[lineNode] }

// lineReach reports x ⇝ y between forward line nodes, in two stages: the
// bounded interval labeling answers "definitely not" cheaply (it
// over-approximates, so false is conclusive); when it says "maybe" and the
// interval sets were truncated, the exact 2-hop labels decide.
func (idx *Index) lineReach(x, y int32) bool {
	cx, cy := idx.comp(x), idx.comp(y)
	if idx.incremental {
		// Incremental growth added condensation vertices the interval
		// labeling has never seen (and may have created reachability the
		// stale intervals would wrongly rule out); the 2-hop cover is
		// maintained exactly by ApplyDelta, so it decides alone.
		return idx.cover.Reachable(cx, cy)
	}
	if !idx.lab.Reachable(cx, cy) {
		return false
	}
	if !idx.lab.Approx {
		return true
	}
	return idx.cover.Reachable(cx, cy)
}

// buildTables materializes one T_label(id, Lin, Lout) base table per
// relationship type, rows in line-node order.
func (idx *Index) buildTables() {
	idx.rowOf = make([]reldb.Row, idx.l.NumNodes())
	byLabel := make(map[graph.Label][]reldb.Row)
	for i := range idx.l.Nodes {
		n := idx.l.Nodes[i]
		if n.Virtual {
			continue
		}
		c := idx.comp(int32(i))
		row := reldb.Row{ID: int32(i), In: idx.cover.InLabel(c), Out: idx.cover.OutLabel(c)}
		idx.rowOf[i] = row
		byLabel[n.Label] = append(byLabel[n.Label], row)
	}
	for l, rows := range byLabel {
		idx.tables[l] = reldb.NewTable(idx.g.LabelName(l), rows)
	}
}

// buildClusters derives each center's (U_w, V_w) from the base-table labels:
// U_w = line nodes whose Lout contains w, V_w = line nodes whose Lin
// contains w.
func (idx *Index) buildClusters() {
	idx.clusters = make([]Cluster, idx.cover.NumCenters())
	for r := range idx.clusters {
		rank := int32(r)
		idx.clusters[r] = Cluster{
			Rank:   rank,
			Center: int32(idx.parts.Rep[idx.cover.CenterVertex(rank)]),
		}
	}
	for i := range idx.l.Nodes {
		if idx.l.Nodes[i].Virtual {
			continue
		}
		row := idx.rowOf[i]
		for _, r := range row.Out {
			idx.clusters[r].U = append(idx.clusters[r].U, int32(i))
		}
		for _, r := range row.In {
			idx.clusters[r].V = append(idx.clusters[r].V, int32(i))
		}
	}
}

// buildWTable fills the two-entry W-table: for every ordered label pair
// (a, b), the centers w with a label-a line node in U_w and a label-b line
// node in V_w — exactly the centers through which a reachability join
// T_a ⋈ T_b can produce answers (Figure 6).
func (idx *Index) buildWTable() {
	for r := range idx.clusters {
		uLabels := make(map[graph.Label]bool)
		for _, u := range idx.clusters[r].U {
			uLabels[idx.l.Nodes[u].Label] = true
		}
		vLabels := make(map[graph.Label]bool)
		for _, v := range idx.clusters[r].V {
			vLabels[idx.l.Nodes[v].Label] = true
		}
		for a := range uLabels {
			for b := range vLabels {
				k := wKey{a, b}
				idx.wtable[k] = append(idx.wtable[k], int32(r))
			}
		}
	}
}

// buildTree stores the clusters in a B+tree keyed by center name (Figure 7).
func (idx *Index) buildTree() {
	order := idx.opts.BTreeOrder
	if order == 0 {
		order = btree.DefaultOrder
	}
	idx.tree = btree.New(order)
	for r := range idx.clusters {
		key := fmt.Sprintf("%s#%04d", idx.l.NodeString(int(idx.clusters[r].Center)), r)
		idx.tree.Put(key, &idx.clusters[r])
	}
}

// Stats returns construction statistics.
func (idx *Index) Stats() BuildStats { return idx.stats }

// Line exposes the underlying forward line graph (read-only), used by the
// figure regeneration tool.
func (idx *Index) Line() *linegraph.L { return idx.l }

// Partition exposes the SCC decomposition of the line graph.
func (idx *Index) Partition() *scc.Result { return idx.parts }

// Intervals exposes the interval labeling of the condensed line DAG.
func (idx *Index) Intervals() *interval.Labeling { return idx.lab }

// Cover exposes the 2-hop cover.
func (idx *Index) Cover() *twohop.Cover { return idx.cover }

// Clusters returns the centers with their U/V clusters, by rank.
func (idx *Index) Clusters() []Cluster { return idx.clusters }

// Tree returns the cluster B+tree.
func (idx *Index) Tree() *btree.Tree { return idx.tree }

// BaseTable returns the base table for a relationship type, or nil.
func (idx *Index) BaseTable(label string) *reldb.Table {
	l, ok := idx.g.LookupLabel(label)
	if !ok {
		return nil
	}
	return idx.tables[l]
}

// WEntry returns the W-table center ranks for an ordered label pair.
func (idx *Index) WEntry(labelA, labelB string) []int32 {
	la, ok := idx.g.LookupLabel(labelA)
	if !ok {
		return nil
	}
	lb, ok := idx.g.LookupLabel(labelB)
	if !ok {
		return nil
	}
	return idx.wtable[wKey{la, lb}]
}
