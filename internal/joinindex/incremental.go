package joinindex

import (
	"reachac/internal/graph"
)

// maxInsertFanPairs caps the predecessor-comp × successor-comp cycle check
// one incremental edge insertion performs; beyond it (hub endpoints) a full
// rebuild is cheaper than the quadratic reachability probing.
const maxInsertFanPairs = 4096

// ApplyDelta implements core.IncrementalEvaluator for the anchored
// evaluation strategy, finally wiring the paper-faithful incremental 2-hop
// cover insertion (twohop.Cover.Insert, the resume-BFS scheme of
// insert.go) into the index pipeline for edge additions.
//
// Accepted incrementally:
//
//   - node additions — an isolated member produces no line node and cannot
//     satisfy any path, so nothing changes;
//   - edge additions whose new line node does not close a cycle in the line
//     graph: the line graph, SCC partition, condensation DAG and 2-hop
//     cover are all extended in place, each new DAG edge integrated with
//     Cover.Insert.
//
// Everything else declines (returns false), forcing the caller to rebuild —
// correctness by construction: edge removals would shrink 2-hop labels,
// compactions renumber the edge IDs the line graph indexes, cycle-closing
// insertions merge SCCs, and the literal paper-join strategy reads the base
// tables / W-table / clusters, which incremental growth does not maintain.
// When the anchored strategy runs with look-ahead disabled (as Build gates
// it on reciprocity-heavy graphs) evaluation reads only the social graph,
// so every delta batch is absorbed trivially.
//
// After the first incremental batch the stale interval labeling is bypassed
// (see lineReach) and the exact cover prunes alone.
func (idx *Index) ApplyDelta(g *graph.Graph, deltas []graph.Delta) bool {
	if idx.g != g {
		return false
	}
	if idx.opts.Strategy == EvalPaperJoin {
		return false
	}
	if idx.opts.DisableLookahead {
		// Anchored evaluation without look-ahead walks g directly and
		// consults none of the index structures.
		idx.builtAt = g.Version()
		return true
	}
	// Pre-scan: any unsupported op declines before structures are touched.
	for _, d := range deltas {
		if d.Op != graph.OpAddNode && d.Op != graph.OpAddEdge {
			return false
		}
	}
	for _, d := range deltas {
		if d.Op == graph.OpAddEdge && !idx.insertEdge(d) {
			// Partially-advanced structures are fine: the caller discards
			// the index and rebuilds on decline.
			return false
		}
	}
	idx.builtAt = g.Version()
	return true
}

// insertEdge integrates one added social edge into the line graph,
// partition, DAG and 2-hop cover, or reports false to force a rebuild.
func (idx *Index) insertEdge(d graph.Delta) bool {
	label, ok := idx.g.LookupLabel(d.Label)
	if !ok {
		return false
	}
	eid := idx.g.FindEdge(d.From, d.To, label)
	if eid == graph.InvalidEdge || idx.l.Forward(eid) >= 0 {
		return false // log and graph diverged
	}
	// Line nodes adjacent to the new one (and their condensation
	// vertices): predecessors come from edges into d.From, successors from
	// edges out of d.To. Edges from later in the same batch have no line
	// node yet (Forward returns -1) and wire both sides when their own
	// turn comes.
	var predLine, succLine []int32
	var predComps, succComps []int
	idx.g.InEdges(d.From, func(p graph.Edge) bool {
		if ln := idx.l.Forward(p.ID); ln >= 0 {
			predLine = append(predLine, ln)
			predComps = appendComp(predComps, idx.comp(ln))
		}
		return true
	})
	idx.g.OutEdges(d.To, func(s graph.Edge) bool {
		if ln := idx.l.Forward(s.ID); ln >= 0 {
			succLine = append(succLine, ln)
			succComps = appendComp(succComps, idx.comp(ln))
		}
		return true
	})
	if len(predComps)*len(succComps) > maxInsertFanPairs {
		return false
	}
	// The new line node closes a cycle iff some successor already reaches
	// some predecessor (including succ == pred); that would merge SCCs,
	// which in-place growth cannot represent.
	for _, s := range succComps {
		for _, p := range predComps {
			if s == p || idx.cover.Reachable(s, p) {
				return false
			}
		}
	}
	// Commit: grow every layer by one vertex...
	ln := idx.l.AddForwardNode(idx.g.Edge(eid), predLine, succLine)
	c := idx.cover.AddVertex()
	idx.parts.Comp = append(idx.parts.Comp, c)
	idx.parts.Members = append(idx.parts.Members, []int{int(ln)})
	idx.parts.Rep = append(idx.parts.Rep, int(ln))
	idx.parts.NumComp++
	idx.dag.Grow(1)
	idx.dagRev.Grow(1)
	// ...then integrate each new DAG edge with the resumed pruned BFS,
	// keeping the cover exact after every single insertion.
	for _, p := range predComps {
		idx.dag.AddEdge(p, c)
		idx.dagRev.AddEdge(c, p)
		idx.cover.Insert(idx.dag, idx.dagRev, p, c)
	}
	for _, s := range succComps {
		idx.dag.AddEdge(c, s)
		idx.dagRev.AddEdge(s, c)
		idx.cover.Insert(idx.dag, idx.dagRev, c, s)
	}
	idx.incremental = true
	return true
}

// appendComp adds c to the slice unless already present (fan-outs are small
// enough that a linear scan beats a map).
func appendComp(comps []int, c int) []int {
	for _, have := range comps {
		if have == c {
			return comps
		}
	}
	return append(comps, c)
}
