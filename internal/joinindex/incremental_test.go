package joinindex

import (
	"fmt"
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

// acyclicGraph builds a random graph whose edges all run from higher to
// lower node ids (the follow/hierarchy family), so its line graph is
// acyclic and incremental insertion never hits the SCC-merge fallback.
func acyclicGraph(t *testing.T, rng *rand.Rand, n, m int) *graph.Graph {
	t.Helper()
	labels := []string{"friend", "colleague", "parent"}
	g := graph.New()
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("v%03d", i), nil)
	}
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		if _, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), labels[rng.Intn(len(labels))]); err == nil {
			added++
		}
	}
	return g
}

// TestApplyDeltaAgreement grows an acyclic graph under a built index and
// checks every post-advance decision against the online oracle and a
// freshly rebuilt index.
func TestApplyDeltaAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := acyclicGraph(t, rng, 24, 60)
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.opts.DisableLookahead {
		t.Fatal("acyclic line graph must keep look-ahead on for this test")
	}
	oracle := search.New(g)
	queries := []string{
		"friend+[1,3]",
		"friend+[1]/colleague+[1]",
		"friend-[2]",
		"colleague+[1,*]",
		"friend*[1,2]/parent*[1]",
	}
	labels := []string{"friend", "colleague", "parent"}
	for round := 0; round < 10; round++ {
		base := g.Version()
		for m := 0; m < 4; m++ {
			u, v := rng.Intn(g.NumNodes()), rng.Intn(g.NumNodes())
			if u == v {
				continue
			}
			if u < v {
				u, v = v, u
			}
			_, _ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), labels[rng.Intn(len(labels))])
		}
		if rng.Intn(3) == 0 {
			// A node-only delta must also be absorbed.
			g.MustAddNode(fmt.Sprintf("x%03d", g.NumNodes()), nil)
		}
		deltas, ok := g.ChangesSince(base)
		if !ok {
			t.Fatal("delta window trimmed")
		}
		if !idx.ApplyDelta(g, deltas) {
			t.Fatalf("round %d: ApplyDelta declined acyclic insertions", round)
		}
		fresh, err := Build(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			p := pathexpr.MustParse(q)
			for o := 0; o < g.NumNodes(); o++ {
				for r := 0; r < g.NumNodes(); r++ {
					oid, rid := graph.NodeID(o), graph.NodeID(r)
					want, err := oracle.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					got, err := idx.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("round %d (%d,%d,%s): incremental=%v oracle=%v", round, o, r, q, got, want)
					}
					if fgot, _ := fresh.Reachable(oid, rid, p); fgot != got {
						t.Fatalf("round %d (%d,%d,%s): incremental=%v fresh=%v", round, o, r, q, got, fgot)
					}
				}
			}
		}
	}
}

// TestApplyDeltaDeclines pins the fallback conditions: cycle-closing
// insertions, removals, the paper-join strategy, and foreign graphs.
func TestApplyDeltaDeclines(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", nil)
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(b, c, "friend")
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A reciprocal edge closes a 2-cycle in the line graph: declined.
	base := g.Version()
	g.MustAddEdge(b, a, "friend")
	deltas, _ := g.ChangesSince(base)
	if idx.ApplyDelta(g, deltas) {
		t.Fatal("cycle-closing insertion must decline")
	}

	// Removals decline (2-hop labels cannot shrink incrementally).
	idx, err = Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base = g.Version()
	if err := g.RemoveEdge(g.FindEdge(b, a, g.Label("friend"))); err != nil {
		t.Fatal(err)
	}
	deltas, _ = g.ChangesSince(base)
	if idx.ApplyDelta(g, deltas) {
		t.Fatal("edge removal must decline")
	}

	// The literal paper-join strategy reads tables incremental growth does
	// not maintain: always declined.
	pj, err := Build(g, Options{Strategy: EvalPaperJoin})
	if err != nil {
		t.Fatal(err)
	}
	base = g.Version()
	g.MustAddEdge(c, a, "colleague")
	deltas, _ = g.ChangesSince(base)
	if pj.ApplyDelta(g, deltas) {
		t.Fatal("paper-join strategy must decline")
	}

	// Foreign graph: declined.
	other := g.Clone()
	obase := other.Version()
	other.MustAddNode("z", nil)
	odeltas, _ := other.ChangesSince(obase)
	idx2, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx2.ApplyDelta(other, odeltas) {
		t.Fatal("foreign graph must decline")
	}
}

// TestApplyDeltaLookaheadDisabled pins that an anchored index built with
// look-ahead off absorbs any batch (it reads only the social graph),
// including removals, and stays exact.
func TestApplyDeltaLookaheadDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := acyclicGraph(t, rng, 16, 40)
	idx, err := Build(g, Options{DisableLookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	base := g.Version()
	g.MustAddEdge(graph.NodeID(3), graph.NodeID(9), "friend")
	if err := g.RemoveEdge(graph.EdgeID(0)); err != nil {
		t.Fatal(err)
	}
	deltas, _ := g.ChangesSince(base)
	if !idx.ApplyDelta(g, deltas) {
		t.Fatal("lookahead-off anchored index must absorb any batch")
	}
	oracle := search.New(g)
	p := pathexpr.MustParse("friend+[1,3]")
	for o := 0; o < g.NumNodes(); o++ {
		for r := 0; r < g.NumNodes(); r++ {
			want, err := oracle.Reachable(graph.NodeID(o), graph.NodeID(r), p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := idx.Reachable(graph.NodeID(o), graph.NodeID(r), p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("(%d,%d): got %v oracle %v", o, r, got, want)
			}
		}
	}
}
