package search

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
)

func TestReachableReverseAgreesWithForward(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	labels := []string{"friend", "colleague", "parent"}
	exprs := []string{
		"friend+[1,2]/colleague+[1]",
		"friend-[2]",
		"friend*[1,2]/parent+[1]",
		"colleague+[1,*]",
		"friend+[1]{age>=18}/parent-[1]",
		"parent+[1]/friend+[1,3]{age<40}",
		"friend+[1]/colleague+[1]{age>=18}",
	}
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(12)
		g := graph.New()
		for i := 0; i < n; i++ {
			var attrs graph.Attrs
			if rng.Intn(2) == 0 {
				attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(50))}
			}
			g.MustAddNode(nameOf(i), attrs)
		}
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
			}
		}
		e := New(g)
		for _, expr := range exprs {
			p := pathexpr.MustParse(expr)
			for o := 0; o < n; o++ {
				for r := 0; r < n; r++ {
					oid, rid := graph.NodeID(o), graph.NodeID(r)
					want, err := e.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.ReachableReverse(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d: ReachableReverse disagrees on (%s, %d, %d): got %v want %v",
							trial, expr, o, r, got, want)
					}
				}
			}
		}
	}
}

func TestReachableReverseInvalidNodeErrorMatchesForward(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	_, fwdErr := e.Reachable(999, 0, paperfix.Q1())
	_, revErr := e.ReachableReverse(999, 0, paperfix.Q1())
	if fwdErr == nil || revErr == nil || fwdErr.Error() != revErr.Error() {
		t.Fatalf("error wording differs: fwd=%v rev=%v", fwdErr, revErr)
	}
}

func TestRouteCostsSeedCountsWithoutCSR(t *testing.T) {
	// Seed counts must agree between the CSR fast path and the edge-scan
	// fallback on a stale CSR.
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", nil)
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(a, c, "friend")
	g.MustAddEdge(b, a, "friend")
	e := New(g)
	p := pathexpr.MustParse("friend+[1]")
	fwdScan, revScan, err := e.RouteCosts(a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	g.CSR() // build
	fwdCSR, revCSR, err := e.RouteCosts(a, b, p)
	if err != nil {
		t.Fatal(err)
	}
	if fwdScan != 2 || revScan != 1 {
		t.Fatalf("scan counts = (%d, %d), want (2, 1)", fwdScan, revScan)
	}
	if fwdCSR != fwdScan || revCSR != revScan {
		t.Fatalf("CSR counts (%d, %d) != scan counts (%d, %d)", fwdCSR, revCSR, fwdScan, revScan)
	}
	// A label absent from the graph admits no seeds on either side.
	fwd, rev, err := e.RouteCosts(a, b, pathexpr.MustParse("ghost+[1]"))
	if err != nil || fwd != 0 || rev != 0 {
		t.Fatalf("ghost label: (%d, %d, %v), want (0, 0, nil)", fwd, rev, err)
	}
}

func TestAudienceCachePeek(t *testing.T) {
	g := paperfix.Graph()
	ac := NewAudienceCache(g)
	p := paperfix.Q1()
	owner := node(t, g, paperfix.Names[0])

	// Miss before anything is materialized; Peek never computes.
	if _, ok := ac.Peek(owner, owner, p); ok {
		t.Fatal("Peek hit on an empty cache")
	}
	aud, err := ac.Audience(owner, p)
	if err != nil {
		t.Fatal(err)
	}
	members := map[graph.NodeID]bool{}
	for _, m := range aud {
		members[m] = true
	}
	// After materialization every requester answers from the bitset and
	// agrees with the audience slice (and hence with Reachable).
	for _, name := range paperfix.Names {
		r := node(t, g, name)
		got, ok := ac.Peek(owner, r, p)
		if !ok {
			t.Fatalf("Peek miss for materialized (owner, path) at %s", name)
		}
		if got != members[r] {
			t.Fatalf("Peek(%s) = %v, audience membership %v", name, got, members[r])
		}
	}
	// A different owner or path is a miss, not a wrong answer.
	if _, ok := ac.Peek(owner+1, owner, p); ok && owner+1 != owner {
		if _, err := ac.Audience(owner+1, p); err == nil {
			// owner+1 may be valid; the point is Peek must not fabricate hits
			// for paths never materialized.
			t.Log("peek hit for other owner after its own materialization only")
		}
	}
	if _, ok := ac.Peek(owner, owner, pathexpr.MustParse("colleague+[1]")); ok {
		t.Fatal("Peek hit for a never-materialized path")
	}
	// Invalid nodes are a miss.
	if _, ok := ac.Peek(9999, owner, p); ok {
		t.Fatal("Peek hit for invalid owner")
	}
	if _, ok := ac.Peek(owner, 9999, p); ok {
		t.Fatal("Peek hit for invalid requester")
	}
}

func TestAudienceCachePeekAfterAdvance(t *testing.T) {
	// A dirty (incrementally extended, not re-materialized) entry must still
	// serve correct membership bits through Peek.
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", nil)
	g.MustAddEdge(a, b, "friend")
	ac := NewAudienceCache(g)
	p := pathexpr.MustParse("friend+[1,2]")
	if _, err := ac.Audience(a, p); err != nil {
		t.Fatal(err)
	}
	if got, ok := ac.Peek(a, c, p); !ok || got {
		t.Fatalf("before edge: Peek(c) = (%v, %v), want (false, true)", got, ok)
	}
	v := g.Version()
	g.MustAddEdge(b, c, "friend")
	deltas, ok := g.ChangesSince(v)
	if !ok {
		t.Fatal("delta window lost")
	}
	ac.Advance(deltas)
	if got, ok := ac.Peek(a, c, p); !ok || !got {
		t.Fatalf("after edge: Peek(c) = (%v, %v), want (true, true)", got, ok)
	}
}
