package search

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
)

func TestAudienceSetPaperQueries(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice := node(t, g, paperfix.Alice)
	david := node(t, g, paperfix.David)

	set, err := e.AudienceSet(alice, paperfix.Q1())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || g.Node(set[0]).Name != paperfix.Fred {
		t.Fatalf("Q1 audience = %v", names(g, set))
	}

	set, err = e.AudienceSet(alice, paperfix.QFriendParentFriend())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || g.Node(set[0]).Name != paperfix.George {
		t.Fatalf("f/p/f audience = %v", names(g, set))
	}

	set, err = e.AudienceSet(david, paperfix.QDavidConsidersFriend())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("considers-friend audience = %v", names(g, set))
	}
}

func names(g *graph.Graph, ids []graph.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	return out
}

// TestAudienceSetMatchesPerPairLoop is the correctness property: the
// one-pass audience equals the set of members for which Reachable grants.
func TestAudienceSetMatchesPerPairLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	labels := []string{"friend", "colleague", "parent"}
	exprs := []string{
		"friend+[1,2]",
		"friend+[1]/colleague+[1]",
		"friend-[1,2]",
		"friend*[1,2]/parent+[1]",
		"colleague+[1,*]",
		"friend+[1,2]{age>=18}",
	}
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(14)
		g := graph.New()
		for i := 0; i < n; i++ {
			var attrs graph.Attrs
			if rng.Intn(2) == 0 {
				attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(50))}
			}
			g.MustAddNode(nameOf(i), attrs)
		}
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
			}
		}
		e := New(g)
		for _, expr := range exprs {
			p := pathexpr.MustParse(expr)
			for o := 0; o < n; o++ {
				owner := graph.NodeID(o)
				set, err := e.AudienceSet(owner, p)
				if err != nil {
					t.Fatal(err)
				}
				inSet := map[graph.NodeID]bool{}
				for _, id := range set {
					inSet[id] = true
				}
				for r := 0; r < n; r++ {
					rid := graph.NodeID(r)
					want, err := e.Reachable(owner, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					if inSet[rid] != want {
						t.Fatalf("trial %d %s owner %d: member %d set=%v loop=%v",
							trial, expr, o, r, inSet[rid], want)
					}
				}
			}
		}
	}
}

func TestAudienceSetInvalid(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	if _, err := e.AudienceSet(999, paperfix.Q1()); err == nil {
		t.Fatal("invalid owner accepted")
	}
	if _, err := e.AudienceSet(0, &pathexpr.Path{}); err == nil {
		t.Fatal("invalid path accepted")
	}
	set, err := e.AudienceSet(0, pathexpr.MustParse("enemy+[1]"))
	if err != nil || set != nil {
		t.Fatalf("unknown label: %v %v", set, err)
	}
}
