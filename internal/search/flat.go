package search

import (
	"sync"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// This file is the allocation-free fast path behind Reachable and
// AudienceSet. The product search space (node, step, depth-key) is mapped to
// a dense integer range — node*states + stepBase[step] + d — so the visited
// set is a flat bitset instead of a map, the frontier is a reusable slice of
// packed uint64 states, and both live in a sync.Pool scratch that queries
// borrow. Adjacency comes from the graph's label-partitioned CSR slabs when
// fresh (see graph.CSR); otherwise the edge-list iteration is used and its
// cost is fed back as CSR debt so read-heavy phases converge to the CSR.

// compiled is a path compiled against a graph plus the dense state layout
// derived from it. Engines cache compiled plans per *pathexpr.Path, so the
// per-query compile cost (and its allocations) is paid once per rule.
type compiled struct {
	steps    []compiledStep
	stepBase []int32
	// states is the per-node state count S: state (node, step, d) maps to
	// bit node*S + stepBase[step] + d.
	states int32
	// labelsLen is the graph's label count at compile time; a grown label
	// table invalidates the plan (a previously-absent label may now exist).
	labelsLen int
	// anyMissing is true when some step's label does not occur in the graph,
	// so no path can match.
	anyMissing bool
	// str is the canonical path text, cached for audience-cache keys.
	str string
	// rev and revPreds cache pathexpr.Reverse(p) so reverse-endpoint
	// execution (route.go) pays the reversal allocation once per plan, not
	// per query. rev is a stable pointer, so its own compiled form is
	// plan-cached like any rule path.
	rev      *pathexpr.Path
	revPreds []pathexpr.Pred
}

// maxFlatStates bounds node*states products (in bits) served by the flat
// path; beyond it the map-based search takes over. 2^31 bits = 256 MiB of
// visited bitset, far above any realistic policy.
const maxFlatStates = int64(1) << 31

// newCompiled compiles p against g and lays out the dense state space.
func newCompiled(g *graph.Graph, p *pathexpr.Path) (*compiled, error) {
	steps, err := compile(g, p)
	if err != nil {
		return nil, err
	}
	rev, revPreds := pathexpr.Reverse(p)
	c := &compiled{
		steps:     steps,
		stepBase:  make([]int32, len(steps)),
		labelsLen: g.NumLabels(),
		str:       p.String(),
		rev:       rev,
		revPreds:  revPreds,
	}
	var s int32
	for i := range steps {
		c.stepBase[i] = s
		dCap := steps[i].max
		if steps[i].unbounded {
			dCap = steps[i].min
		}
		s += int32(dCap) + 1
		if !steps[i].labelOK {
			c.anyMissing = true
		}
	}
	c.states = s
	return c, nil
}

// maxPlanCacheEntries bounds the per-engine plan cache. Rule paths are
// stable pointers, so real policies stay far below it; ad-hoc parsed paths
// (CheckPath) beyond the cap are compiled per query instead of cached.
const maxPlanCacheEntries = 1024

// plan returns the cached compiled form of p, compiling (and caching) it on
// first use or after the graph's label table has grown.
func (e *Engine) plan(p *pathexpr.Path) (*compiled, error) {
	if v, ok := e.plans.Load(p); ok {
		c := v.(*compiled)
		if c.labelsLen == e.g.NumLabels() {
			return c, nil
		}
	}
	c, err := newCompiled(e.g, p)
	if err != nil {
		return nil, err
	}
	if _, ok := e.plans.Load(p); ok || e.planCount.Load() < maxPlanCacheEntries {
		e.plans.Store(p, c)
		if !ok {
			e.planCount.Add(1)
		}
	}
	return c, nil
}

// scratch is the pooled per-query working set of a flat search.
type scratch struct {
	visited  []uint64
	member   []uint64
	frontier []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// bitset returns b grown to words entries with the first words zeroed.
func bitset(b []uint64, words int) []uint64 {
	if cap(b) < words {
		return make([]uint64, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}

// packState packs (node, step, d) into one frontier word.
func packState(node graph.NodeID, step, d int32) uint64 {
	return uint64(node)<<32 | uint64(uint16(step))<<16 | uint64(uint16(d))
}

// flatOK reports whether the flat path can serve a query over V nodes.
func (c *compiled) flatOK(v int) bool {
	return len(c.steps) < 1<<16 && int64(v)*int64(c.states) <= maxFlatStates
}

// runFlat runs the product BFS from the already-marked states in frontier
// until exhaustion (or until target is reached when collect is false).
// visited and member are caller-owned bitsets indexed by the compiled state
// layout (member by node ID); frontier's backing array is reused and the
// possibly-grown slice is returned. The work result counts edge scans, for
// CSR-debt accounting. runFlat performs no allocations beyond frontier
// growth.
func (e *Engine) runFlat(c *compiled, visited, member []uint64, frontier []uint64,
	target graph.NodeID, collect bool) (found bool, frontierOut []uint64, work int) {
	g := e.g
	csr := g.FreshCSR()
	S := c.states
	last := int32(len(c.steps) - 1)
	for head := 0; head < len(frontier); head++ {
		packed := frontier[head]
		node := graph.NodeID(packed >> 32)
		step := int32(uint16(packed >> 16))
		d := int32(uint16(packed))
		st := &c.steps[step]
		d1 := int(d) + 1
		mayClose := st.mayClose(d1)
		mayCont := st.mayContinue(d1)
		dk := int32(st.dKey(d1))
		// expand handles one traversed neighbor; closures here do not
		// escape (they are only passed down the iteration), so they stay
		// off the heap.
		expand := func(next graph.NodeID) bool {
			if mayClose && st.predsHold(g, next) {
				if step == last {
					if collect {
						member[next>>6] |= 1 << (next & 63)
					} else if next == target {
						found = true
						return true
					}
				} else {
					bit := uint64(next)*uint64(S) + uint64(c.stepBase[step+1])
					if visited[bit>>6]&(1<<(bit&63)) == 0 {
						visited[bit>>6] |= 1 << (bit & 63)
						frontier = append(frontier, packState(next, step+1, 0))
					}
				}
			}
			if mayCont {
				bit := uint64(next)*uint64(S) + uint64(c.stepBase[step]) + uint64(dk)
				if visited[bit>>6]&(1<<(bit&63)) == 0 {
					visited[bit>>6] |= 1 << (bit & 63)
					frontier = append(frontier, packState(next, step, dk))
				}
			}
			return false
		}
		if st.dir == pathexpr.Out || st.dir == pathexpr.Both {
			if csr != nil {
				run := csr.OutNeighbors(node, st.label)
				work += len(run)
				for _, nb := range run {
					if expand(graph.NodeID(nb)) {
						return true, frontier, work
					}
				}
			} else {
				stop := false
				g.OutEdges(node, func(edge graph.Edge) bool {
					work++
					if edge.Label == st.label && expand(edge.To) {
						stop = true
						return false
					}
					return true
				})
				if stop {
					return true, frontier, work
				}
			}
		}
		if st.dir == pathexpr.In || st.dir == pathexpr.Both {
			if csr != nil {
				run := csr.InNeighbors(node, st.label)
				work += len(run)
				for _, nb := range run {
					if expand(graph.NodeID(nb)) {
						return true, frontier, work
					}
				}
			} else {
				stop := false
				g.InEdges(node, func(edge graph.Edge) bool {
					work++
					if edge.Label == st.label && expand(edge.From) {
						stop = true
						return false
					}
					return true
				})
				if stop {
					return true, frontier, work
				}
			}
		}
	}
	return false, frontier, work
}

// seedFlat marks and enqueues the BFS start state (owner, step 0, d 0).
func seedFlat(c *compiled, visited []uint64, frontier []uint64, owner graph.NodeID) []uint64 {
	bit := uint64(owner) * uint64(c.states)
	visited[bit>>6] |= 1 << (bit & 63)
	return append(frontier, packState(owner, 0, 0))
}

// flatWords returns the visited-bitset size in words for V nodes.
func (c *compiled) flatWords(v int) int {
	return (v*int(c.states) + 63) / 64
}
