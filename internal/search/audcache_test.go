package search

import (
	"fmt"
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// audCacheFixture builds a graph and a clone pair: mutations go to the
// primary, and the clone is advanced via recorded deltas the way snapshot
// republication does.
func audCacheFixture(t *testing.T, n int) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.MustAddNode(fmt.Sprintf("m%03d", i), nil)
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(ids[i], ids[(i+1)%n], "friend")
		if i%2 == 0 {
			g.MustAddEdge(ids[i], ids[(i+5)%n], "colleague")
		}
	}
	return g, ids
}

func mustPath(t *testing.T, s string) *pathexpr.Path {
	t.Helper()
	p, err := pathexpr.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAudienceCacheMatchesEngine checks the cached result equals a direct
// AudienceSet, on both the cold and the warm path.
func TestAudienceCacheMatchesEngine(t *testing.T) {
	g, ids := audCacheFixture(t, 40)
	ac := NewAudienceCache(g)
	e := New(g)
	paths := []*pathexpr.Path{
		mustPath(t, "friend+[1,3]"),
		mustPath(t, "friend+[1,2]/colleague+[1]"),
		mustPath(t, "colleague-[1]/friend*[2]"),
	}
	for round := 0; round < 2; round++ {
		for _, p := range paths {
			for _, owner := range []graph.NodeID{ids[0], ids[7], ids[39]} {
				want, err := e.AudienceSet(owner, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ac.Audience(owner, p)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDs(got, want) {
					t.Fatalf("round %d owner %d path %s: cache %v, engine %v",
						round, owner, p, got, want)
				}
			}
		}
	}
	if ac.Len() != len(paths)*3 {
		t.Fatalf("cache holds %d entries, want %d", ac.Len(), len(paths)*3)
	}
}

// TestAudienceCacheAdvance drives a random delta stream through a clone's
// cache and asserts every advanced audience equals a from-scratch recompute
// on the advanced graph — the incremental-maintenance correctness contract.
func TestAudienceCacheAdvance(t *testing.T) {
	primary, ids := audCacheFixture(t, 32)
	clone := primary.Clone()
	ac := NewAudienceCache(clone)
	rng := rand.New(rand.NewSource(41))
	paths := []*pathexpr.Path{
		mustPath(t, "friend+[1,3]"),
		mustPath(t, "friend+[1,2]/colleague+[1]"),
		mustPath(t, "colleague-[1]/friend*[2]"),
		mustPath(t, "follows+[1,2]"), // label absent until mid-stream
	}
	owners := []graph.NodeID{ids[0], ids[9], ids[17]}
	version := primary.Version()

	warm := func() {
		for _, p := range paths {
			for _, o := range owners {
				if _, err := ac.Audience(o, p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	warm()

	labels := []string{"friend", "colleague", "follows"}
	for step := 0; step < 120; step++ {
		// Mutate the primary.
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			from := ids[rng.Intn(len(ids))]
			to := ids[rng.Intn(len(ids))]
			_, _ = primary.AddEdge(from, to, labels[rng.Intn(len(labels))])
		case 6, 7:
			if e := randomLiveEdge(primary, rng); e != graph.InvalidEdge {
				if err := primary.RemoveEdge(e); err != nil {
					t.Fatal(err)
				}
			}
		case 8:
			id := primary.MustAddNode(fmt.Sprintf("new%04d", step), nil)
			primary.MustAddEdge(ids[rng.Intn(len(ids))], id, "friend")
			ids = append(ids, id)
		case 9:
			primary.CompactTombstones()
		}
		// Advance the clone exactly like snapshot republication: apply the
		// recorded deltas to the graph, then Advance the cache.
		deltas, ok := primary.ChangesSince(version)
		if !ok {
			t.Fatal("delta log trimmed inside the default window")
		}
		version = primary.Version()
		for _, d := range deltas {
			if err := clone.Apply(d); err != nil {
				t.Fatal(err)
			}
		}
		ac.Advance(deltas)
		// Every cached audience must equal a from-scratch recompute.
		fresh := New(clone)
		for _, p := range paths {
			for _, o := range owners {
				want, err := fresh.AudienceSet(o, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ac.Audience(o, p)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDs(got, want) {
					t.Fatalf("step %d owner %d path %s: incremental %v, recompute %v",
						step, o, p, got, want)
				}
			}
		}
	}
}

// randomLiveEdge picks a uniformly random live edge, or InvalidEdge when the
// graph has none.
func randomLiveEdge(g *graph.Graph, rng *rand.Rand) graph.EdgeID {
	var live []graph.EdgeID
	g.Edges(func(e graph.Edge) bool {
		live = append(live, e.ID)
		return true
	})
	if len(live) == 0 {
		return graph.InvalidEdge
	}
	return live[rng.Intn(len(live))]
}

// TestAudienceCacheResultImmutable documents the aliasing contract: repeated
// warm hits return the same backing slice, so callers must copy before
// mutating.
func TestAudienceCacheResultImmutable(t *testing.T) {
	g, ids := audCacheFixture(t, 16)
	ac := NewAudienceCache(g)
	p := mustPath(t, "friend+[1,2]")
	a, err := ac.Audience(ids[0], p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ac.Audience(ids[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("fixture audience is empty")
	}
	if &a[0] != &b[0] {
		t.Fatal("warm hits should share the cached backing array")
	}
}

// TestAudienceSetMapMatchesFlat exercises the map-based fallback BFS (used
// when a state space exceeds the flat layout's bounds) directly and checks
// it agrees with the flat collect path on every owner.
func TestAudienceSetMapMatchesFlat(t *testing.T) {
	g, ids := audCacheFixture(t, 24)
	e := New(g)
	for _, expr := range []string{
		"friend+[1,3]",
		"friend+[1,2]/colleague+[1]",
		"colleague-[1]/friend*[2]",
	} {
		p := mustPath(t, expr)
		steps, err := compile(g, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, owner := range ids[:6] {
			want, err := e.AudienceSet(owner, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.audienceSetMap(steps, owner)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got, want) {
				t.Fatalf("owner %d path %s: map %v, flat %v", owner, expr, got, want)
			}
		}
	}
}

// TestAudienceCacheGraph covers the accessor used by snapshot wiring.
func TestAudienceCacheGraph(t *testing.T) {
	g, _ := audCacheFixture(t, 4)
	if NewAudienceCache(g).Graph() != g {
		t.Fatal("Graph() must return the constructor's graph")
	}
}
