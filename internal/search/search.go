// Package search implements the online evaluation baseline from §1 of the
// paper: a breadth-first (or depth-first) traversal of the social graph
// constrained by the access condition's path, i.e. a product search over
// G × the step machine of the path expression. It needs no precomputation
// and takes O(|V| + |E|) per query, which is the cost the index pipeline of
// §3 is designed to beat on large graphs.
//
// It also serves as the reference oracle: all index-based engines are tested
// to agree with it.
package search

import (
	"fmt"
	"sync"
	"sync/atomic"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// maxDepthLimit bounds per-step depths so that search states pack into a
// 64-bit key. Real policies use single-digit depths.
const maxDepthLimit = 1 << 15

// compiledStep is a path step with its label resolved against a graph.
type compiledStep struct {
	label     graph.Label
	labelOK   bool // false when the label does not occur in the graph at all
	dir       pathexpr.Direction
	min, max  int
	unbounded bool
	preds     []pathexpr.Pred
}

func (s *compiledStep) predsHold(g *graph.Graph, n graph.NodeID) bool {
	for _, p := range s.preds {
		if !p.Eval(g.Node(n).Attrs) {
			return false
		}
	}
	return true
}

// dKey canonicalizes the "edges consumed within this step" counter: for an
// unbounded step, any depth at or above min behaves identically (the step
// may close, and may always continue), so depths collapse to min. This keeps
// the state space finite.
func (s *compiledStep) dKey(d int) int {
	if s.unbounded && d > s.min {
		return s.min
	}
	return d
}

// mayContinue reports whether, after consuming d edges in this step, another
// same-label edge may be consumed.
func (s *compiledStep) mayContinue(d int) bool {
	return s.unbounded || d < s.max
}

// mayClose reports whether the step is complete after d edges.
func (s *compiledStep) mayClose(d int) bool { return d >= s.min }

func compile(g *graph.Graph, p *pathexpr.Path) ([]compiledStep, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	steps := make([]compiledStep, len(p.Steps))
	for i, st := range p.Steps {
		if st.MaxDepth >= maxDepthLimit || st.MinDepth >= maxDepthLimit {
			return nil, fmt.Errorf("search: step %d depth exceeds limit %d", i+1, maxDepthLimit)
		}
		label, ok := g.LookupLabel(st.Label)
		steps[i] = compiledStep{
			label:     label,
			labelOK:   ok,
			dir:       st.Dir,
			min:       st.MinDepth,
			max:       st.MaxDepth,
			unbounded: st.Unbounded,
			preds:     st.Preds,
		}
	}
	return steps, nil
}

// state packs (node, stepIndex, depthKey) into one comparable key.
type state struct {
	node graph.NodeID
	step uint16
	d    uint16
}

// Hop is one traversed edge of a witness path, with the orientation used
// (Forward means the edge was traversed from its From to its To endpoint)
// and the pattern step it satisfied.
type Hop struct {
	Edge    graph.Edge
	Forward bool
	Step    int
}

// Engine evaluates reachability constraints by online graph traversal.
// Decision queries (Reachable, AudienceSet) run on the flat bitset search of
// flat.go — allocation-free after warmup — while Witness keeps the map-based
// traversal it needs for path reconstruction. An Engine is safe for
// concurrent queries over a quiescent graph.
type Engine struct {
	g *graph.Graph
	// DFS selects depth-first instead of breadth-first exploration. Both
	// return identical decisions; DFS may find longer witnesses.
	DFS bool
	// plans caches compiled paths per *pathexpr.Path (see flat.go); paths
	// must not be mutated after first use, which rule storage guarantees.
	plans     sync.Map
	planCount atomic.Int64
}

// New returns an online-search evaluator over g.
func New(g *graph.Graph) *Engine { return &Engine{g: g} }

// NewDFS returns a depth-first variant (same semantics).
func NewDFS(g *graph.Graph) *Engine { return &Engine{g: g, DFS: true} }

// ApplyDelta implements core.IncrementalEvaluator. Online engines hold no
// precomputed state — every query traverses the live graph — so once the
// underlying clone has been advanced there is nothing left to do.
func (e *Engine) ApplyDelta(g *graph.Graph, _ []graph.Delta) bool { return e.g == g }

// Reachable reports whether requester is reachable from owner through a path
// matching p (Definition 3: the requester must have a direct or indirect
// relationship with the owner that matches the specified path). It runs the
// flat bitset search — zero heap allocations once the plan cache and the
// pooled scratch are warm — and falls back to the map-based Witness search
// only for state spaces too large for the flat layout.
func (e *Engine) Reachable(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		return false, fmt.Errorf("search: invalid node (owner=%d requester=%d)", owner, requester)
	}
	c, err := e.plan(p)
	if err != nil {
		return false, err
	}
	if c.anyMissing {
		// A label absent from the graph can never be matched.
		return false, nil
	}
	v := e.g.NumNodes()
	if !c.flatOK(v) {
		_, ok, werr := e.Witness(owner, requester, p)
		return ok, werr
	}
	sc := scratchPool.Get().(*scratch)
	sc.visited = bitset(sc.visited, c.flatWords(v))
	frontier := seedFlat(c, sc.visited, sc.frontier[:0], owner)
	found, frontier, work := e.runFlat(c, sc.visited, nil, frontier, requester, false)
	sc.frontier = frontier
	scratchPool.Put(sc)
	if e.g.FreshCSR() == nil {
		e.g.AddCSRDebt(work)
	}
	return found, nil
}

// Witness is Reachable returning also a matching path (sequence of hops
// from owner to requester) when one exists.
func (e *Engine) Witness(owner, requester graph.NodeID, p *pathexpr.Path) ([]Hop, bool, error) {
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		return nil, false, fmt.Errorf("search: invalid node (owner=%d requester=%d)", owner, requester)
	}
	steps, err := compile(e.g, p)
	if err != nil {
		return nil, false, err
	}
	for i := range steps {
		if !steps[i].labelOK {
			// A label absent from the graph can never be matched.
			return nil, false, nil
		}
	}

	start := state{node: owner, step: 0, d: 0}
	type visit struct {
		prev state
		hop  Hop
		has  bool
	}
	seen := map[state]visit{start: {}}
	frontier := []state{start}

	reconstruct := func(final state) []Hop {
		var rev []Hop
		cur := final
		for {
			v := seen[cur]
			if !v.has {
				break
			}
			rev = append(rev, v.hop)
			cur = v.prev
		}
		// Reverse in place.
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	// A zero-length pattern cannot exist (MinDepth >= 1), so owner==requester
	// is only granted if a genuine cycle back to the owner matches; the loop
	// below handles that naturally.

	pop := func() state {
		var s state
		if e.DFS {
			s = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			s = frontier[0]
			frontier = frontier[1:]
		}
		return s
	}

	for len(frontier) > 0 {
		cur := pop()
		st := &steps[cur.step]

		// expand consumes one edge of the current step from cur.node.
		expand := func(edge graph.Edge, next graph.NodeID, forward bool) bool {
			d := int(cur.d) + 1
			hop := Hop{Edge: edge, Forward: forward, Step: int(cur.step)}
			// Option 1: close the step here (preds checked at step end).
			if st.mayClose(d) && st.predsHold(e.g, next) {
				if int(cur.step) == len(steps)-1 {
					if next == requester {
						// Done: record the final pseudo-state for reconstruction.
						final := state{node: next, step: cur.step + 1, d: 0}
						if _, dup := seen[final]; !dup {
							seen[final] = visit{prev: cur, hop: hop, has: true}
						}
						return true
					}
				} else {
					ns := state{node: next, step: cur.step + 1, d: 0}
					if _, dup := seen[ns]; !dup {
						seen[ns] = visit{prev: cur, hop: hop, has: true}
						frontier = append(frontier, ns)
					}
				}
			}
			// Option 2: continue the step.
			if st.mayContinue(d) {
				ns := state{node: next, step: cur.step, d: uint16(st.dKey(d))}
				if _, dup := seen[ns]; !dup {
					seen[ns] = visit{prev: cur, hop: hop, has: true}
					frontier = append(frontier, ns)
				}
			}
			return false
		}

		found := false
		if st.dir == pathexpr.Out || st.dir == pathexpr.Both {
			e.g.OutEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label != st.label {
					return true
				}
				if expand(edge, edge.To, true) {
					found = true
					return false
				}
				return true
			})
		}
		if !found && (st.dir == pathexpr.In || st.dir == pathexpr.Both) {
			e.g.InEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label != st.label {
					return true
				}
				if expand(edge, edge.From, false) {
					found = true
					return false
				}
				return true
			})
		}
		if found {
			final := state{node: requester, step: uint16(len(steps)), d: 0}
			return reconstruct(final), true, nil
		}
	}
	return nil, false, nil
}

// VerifyWitness checks that hops is a valid match of p from owner to
// requester in g: correct labels, orientations, step depth intervals,
// predicate satisfaction, and endpoint continuity. It is used by tests and
// by the post-processing soundness checks.
func VerifyWitness(g *graph.Graph, owner, requester graph.NodeID, p *pathexpr.Path, hops []Hop) error {
	steps, err := compile(g, p)
	if err != nil {
		return err
	}
	cur := owner
	hi := 0
	for si := range steps {
		st := &steps[si]
		d := 0
		for hi < len(hops) && hops[hi].Step == si {
			h := hops[hi]
			if !g.EdgeAlive(h.Edge.ID) {
				return fmt.Errorf("hop %d: edge %d not alive", hi, h.Edge.ID)
			}
			edge := g.Edge(h.Edge.ID)
			if edge.Label != st.label {
				return fmt.Errorf("hop %d: label %s, want %s", hi, g.LabelName(edge.Label), g.LabelName(st.label))
			}
			var from, to graph.NodeID
			if h.Forward {
				from, to = edge.From, edge.To
				if st.dir == pathexpr.In {
					return fmt.Errorf("hop %d: forward traversal on incoming-only step", hi)
				}
			} else {
				from, to = edge.To, edge.From
				if st.dir == pathexpr.Out {
					return fmt.Errorf("hop %d: backward traversal on outgoing-only step", hi)
				}
			}
			if from != cur {
				return fmt.Errorf("hop %d: starts at %d, want %d", hi, from, cur)
			}
			cur = to
			d++
			hi++
		}
		if d < st.min || (!st.unbounded && d > st.max) {
			return fmt.Errorf("step %d: depth %d outside [%d,%d]", si, d, st.min, st.max)
		}
		if !st.predsHold(g, cur) {
			return fmt.Errorf("step %d: predicates fail at node %d", si, cur)
		}
	}
	if hi != len(hops) {
		return fmt.Errorf("%d trailing hops", len(hops)-hi)
	}
	if cur != requester {
		return fmt.Errorf("witness ends at %d, want requester %d", cur, requester)
	}
	return nil
}
