package search

import (
	"fmt"
	"sort"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// AudienceSet computes in one product traversal the set of all members
// reachable from owner through a path matching p — the full audience of an
// access condition. It costs the same as a single Reachable call (the
// product BFS explores the same state space), against |V| calls for the
// naive per-member loop. The owner is included only if a genuine cycle
// matches. Results are in ascending node-ID order.
func (e *Engine) AudienceSet(owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error) {
	if !e.g.ValidNode(owner) {
		return nil, fmt.Errorf("search: invalid owner %d", owner)
	}
	steps, err := compile(e.g, p)
	if err != nil {
		return nil, err
	}
	for i := range steps {
		if !steps[i].labelOK {
			return nil, nil
		}
	}

	start := state{node: owner, step: 0, d: 0}
	seen := map[state]bool{start: true}
	frontier := []state{start}
	audience := make(map[graph.NodeID]bool)

	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		st := &steps[cur.step]

		expand := func(next graph.NodeID) {
			d := int(cur.d) + 1
			// Close the step here when allowed.
			if st.mayClose(d) && st.predsHold(e.g, next) {
				if int(cur.step) == len(steps)-1 {
					audience[next] = true
				} else {
					ns := state{node: next, step: cur.step + 1, d: 0}
					if !seen[ns] {
						seen[ns] = true
						frontier = append(frontier, ns)
					}
				}
			}
			// Continue the step.
			if st.mayContinue(d) {
				ns := state{node: next, step: cur.step, d: uint16(st.dKey(d))}
				if !seen[ns] {
					seen[ns] = true
					frontier = append(frontier, ns)
				}
			}
		}

		if st.dir == pathexpr.Out || st.dir == pathexpr.Both {
			e.g.OutEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label == st.label {
					expand(edge.To)
				}
				return true
			})
		}
		if st.dir == pathexpr.In || st.dir == pathexpr.Both {
			e.g.InEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label == st.label {
					expand(edge.From)
				}
				return true
			})
		}
	}

	out := make([]graph.NodeID, 0, len(audience))
	for id := range audience {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
