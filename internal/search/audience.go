package search

import (
	"fmt"
	"math/bits"
	"sort"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// AudienceSet computes in one product traversal the set of all members
// reachable from owner through a path matching p — the full audience of an
// access condition. It costs the same as a single Reachable call (the
// product BFS explores the same state space), against |V| calls for the
// naive per-member loop. The owner is included only if a genuine cycle
// matches. Results are in ascending node-ID order.
func (e *Engine) AudienceSet(owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error) {
	return e.AppendAudience(nil, owner, p)
}

// AppendAudience is AudienceSet appending into dst (which may be nil) and
// returning the extended slice, so a caller reusing a sufficiently large
// buffer pays zero heap allocations on a warmed engine. Results are in
// ascending node-ID order starting at dst's existing length.
func (e *Engine) AppendAudience(dst []graph.NodeID, owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error) {
	if !e.g.ValidNode(owner) {
		return dst, fmt.Errorf("search: invalid owner %d", owner)
	}
	c, err := e.plan(p)
	if err != nil {
		return dst, err
	}
	if c.anyMissing {
		return dst, nil
	}
	v := e.g.NumNodes()
	if !c.flatOK(v) {
		set, err := e.audienceSetMap(c.steps, owner)
		if err != nil {
			return dst, err
		}
		return append(dst, set...), nil
	}
	sc := scratchPool.Get().(*scratch)
	sc.visited = bitset(sc.visited, c.flatWords(v))
	sc.member = bitset(sc.member, (v+63)/64)
	frontier := seedFlat(c, sc.visited, sc.frontier[:0], owner)
	_, frontier, work := e.runFlat(c, sc.visited, sc.member, frontier, graph.InvalidNode, true)
	sc.frontier = frontier
	dst = appendBits(dst, sc.member)
	scratchPool.Put(sc)
	if e.g.FreshCSR() == nil {
		e.g.AddCSRDebt(work)
	}
	return dst, nil
}

// appendBits appends the set bit positions of member to dst in ascending
// order.
func appendBits(dst []graph.NodeID, member []uint64) []graph.NodeID {
	for wi, w := range member {
		for w != 0 {
			dst = append(dst, graph.NodeID(wi*64+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// audienceSetMap is the pre-flat map-based product BFS, kept as the
// fallback for state spaces beyond the flat layout's bounds.
func (e *Engine) audienceSetMap(steps []compiledStep, owner graph.NodeID) ([]graph.NodeID, error) {
	start := state{node: owner, step: 0, d: 0}
	seen := map[state]bool{start: true}
	frontier := []state{start}
	audience := make(map[graph.NodeID]bool)

	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		st := &steps[cur.step]

		expand := func(next graph.NodeID) {
			d := int(cur.d) + 1
			// Close the step here when allowed.
			if st.mayClose(d) && st.predsHold(e.g, next) {
				if int(cur.step) == len(steps)-1 {
					audience[next] = true
				} else {
					ns := state{node: next, step: cur.step + 1, d: 0}
					if !seen[ns] {
						seen[ns] = true
						frontier = append(frontier, ns)
					}
				}
			}
			// Continue the step.
			if st.mayContinue(d) {
				ns := state{node: next, step: cur.step, d: uint16(st.dKey(d))}
				if !seen[ns] {
					seen[ns] = true
					frontier = append(frontier, ns)
				}
			}
		}

		if st.dir == pathexpr.Out || st.dir == pathexpr.Both {
			e.g.OutEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label == st.label {
					expand(edge.To)
				}
				return true
			})
		}
		if st.dir == pathexpr.In || st.dir == pathexpr.Both {
			e.g.InEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label == st.label {
					expand(edge.From)
				}
				return true
			})
		}
	}

	out := make([]graph.NodeID, 0, len(audience))
	for id := range audience {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
