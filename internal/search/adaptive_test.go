package search

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
)

func TestReversePaperQuery(t *testing.T) {
	// Q1 = friend+[1,2]/colleague+[1]; reversed: colleague-[1]/friend-[1,2].
	rev, src := pathexpr.Reverse(paperfix.Q1())
	if got := rev.String(); got != "colleague-[1]/friend-[1,2]" {
		t.Fatalf("reversed Q1 = %q", got)
	}
	if len(src) != 0 {
		t.Fatalf("srcPreds = %v, want none", src)
	}
}

func TestReversePredicateReattachment(t *testing.T) {
	p := pathexpr.MustParse(`friend+[1]{age>=18}/colleague+[2]{age<30}/parent-[1]{age=5}`)
	rev, src := pathexpr.Reverse(p)
	// Reversed order: parent+[1], colleague-[2], friend-[1].
	if rev.Steps[0].Label != "parent" || rev.Steps[0].Dir != pathexpr.Out {
		t.Fatalf("rev[0] = %+v", rev.Steps[0])
	}
	// rev step 0 ends where original colleague step ended: carries age<30.
	if len(rev.Steps[0].Preds) != 1 || rev.Steps[0].Preds[0].Op != pathexpr.OpLt {
		t.Fatalf("rev[0] preds = %v", rev.Steps[0].Preds)
	}
	// rev step 1 ends where friend step ended: carries age>=18.
	if len(rev.Steps[1].Preds) != 1 || rev.Steps[1].Preds[0].Op != pathexpr.OpGe {
		t.Fatalf("rev[1] preds = %v", rev.Steps[1].Preds)
	}
	// rev step 2 ends at the owner: no predicates.
	if len(rev.Steps[2].Preds) != 0 {
		t.Fatalf("rev[2] preds = %v", rev.Steps[2].Preds)
	}
	// The original last step's predicate (age=5) applies to the requester.
	if len(src) != 1 || src[0].Op != pathexpr.OpEq {
		t.Fatalf("srcPreds = %v", src)
	}
	// Reverse does not alias the original's predicate slices.
	rev.Steps[0].Preds[0].Attr = "mutated"
	if p.Steps[1].Preds[0].Attr != "age" {
		t.Fatal("Reverse aliases original predicates")
	}
}

func TestReverseEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	labels := []string{"friend", "colleague", "parent"}
	exprs := []string{
		"friend+[1,2]/colleague+[1]",
		"friend-[2]",
		"friend*[1,2]/parent+[1]",
		"colleague+[1,*]",
		"friend+[1]{age>=18}/parent-[1]",
		"parent+[1]/friend+[1,3]{age<40}",
	}
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(12)
		g := graph.New()
		for i := 0; i < n; i++ {
			var attrs graph.Attrs
			if rng.Intn(2) == 0 {
				attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(50))}
			}
			g.MustAddNode(nameOf(i), attrs)
		}
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
			}
		}
		e := New(g)
		for _, expr := range exprs {
			p := pathexpr.MustParse(expr)
			rev, src := pathexpr.Reverse(p)
			for o := 0; o < n; o++ {
				for r := 0; r < n; r++ {
					oid, rid := graph.NodeID(o), graph.NodeID(r)
					want, err := e.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					srcOK := true
					for _, pr := range src {
						if !pr.Eval(g.Node(rid).Attrs) {
							srcOK = false
						}
					}
					got, err := e.Reachable(rid, oid, rev)
					if err != nil {
						t.Fatal(err)
					}
					if (got && srcOK) != want {
						t.Fatalf("trial %d: reverse of %s disagrees on (%d,%d): fwd=%v rev=%v srcOK=%v",
							trial, expr, o, r, want, got, srcOK)
					}
				}
			}
		}
	}
}

func TestAdaptiveAgreesWithForward(t *testing.T) {
	g := paperfix.Graph()
	fwd := New(g)
	ad := NewAdaptive(g)
	queries := []string{
		"friend+[1,2]/colleague+[1]",
		"friend+[1]/parent+[1]/friend+[1]",
		"friend-[1]",
		"friend*[1,3]",
		"friend+[1,*]",
		"friend+[1]{age>=18}",
	}
	for _, q := range queries {
		p := pathexpr.MustParse(q)
		for _, o := range paperfix.Names {
			for _, r := range paperfix.Names {
				oid := node(t, g, o)
				rid := node(t, g, r)
				want, err := fwd.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ad.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("adaptive disagrees on (%s,%s,%s): %v want %v", o, r, q, got, want)
				}
			}
		}
	}
}

func TestAdaptivePicksSmallSide(t *testing.T) {
	// A celebrity with 500 followers; the requester follows exactly one
	// account. Seed counts must favor the requester side.
	g := graph.New()
	celeb := g.MustAddNode("celeb", nil)
	req := g.MustAddNode("req", nil)
	for i := 0; i < 500; i++ {
		f := g.MustAddNode(nameOf(i+2), nil)
		g.MustAddEdge(celeb, f, "follows")
	}
	g.MustAddEdge(celeb, req, "follows")
	e := New(g)
	p := pathexpr.MustParse("follows+[1]")
	fwd, rev, err := e.RouteCosts(celeb, req, p)
	if err != nil {
		t.Fatal(err)
	}
	if fwd != 501 {
		t.Fatalf("owner seeds = %d", fwd)
	}
	if rev != 1 {
		t.Fatalf("requester seeds = %d", rev)
	}
	ok, err := e.ReachableAdaptive(celeb, req, p)
	if err != nil || !ok {
		t.Fatalf("adaptive = %v, %v", ok, err)
	}
}

func TestAdaptiveInvalidInputs(t *testing.T) {
	g := paperfix.Graph()
	ad := NewAdaptive(g)
	if _, err := ad.Reachable(999, 0, paperfix.Q1()); err == nil {
		t.Fatal("invalid owner accepted")
	}
	if _, err := ad.Reachable(0, 1, &pathexpr.Path{}); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func nameOf(i int) string {
	return "n" + string(rune('0'+i/100)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}
