//go:build !race

// Allocation-regression assertions for the flat search hot path. They are
// excluded under the race detector, whose instrumentation perturbs
// allocation behavior; the non-race CI test run enforces them.
package search

import (
	"fmt"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// allocFixture builds a mid-size graph, a parsed path, and a warmed engine:
// the CSR is built and the plan cache and pooled scratch are populated by a
// few throwaway queries.
func allocFixture(t testing.TB) (*Engine, *graph.Graph, *pathexpr.Path, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New()
	const n = 200
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.MustAddNode(fmt.Sprintf("u%03d", i), nil)
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(ids[i], ids[(i+1)%n], "friend")
		g.MustAddEdge(ids[i], ids[(i+7)%n], "colleague")
		if i%3 == 0 {
			g.MustAddEdge(ids[i], ids[(i+13)%n], "friend")
		}
	}
	p, err := pathexpr.Parse("friend+[1,3]/colleague+[1]")
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	if g.CSR() == nil {
		t.Fatal("CSR build failed")
	}
	for i := 0; i < 8; i++ { // warm plan cache and scratch pool
		if _, err := e.Reachable(ids[0], ids[i+20], p); err != nil {
			t.Fatal(err)
		}
		if _, err := e.AudienceSet(ids[0], p); err != nil {
			t.Fatal(err)
		}
	}
	return e, g, p, ids[0], ids[21]
}

// TestReachableZeroAlloc locks in the tentpole guarantee: a warmed engine
// answers Reachable with zero heap allocations per query.
func TestReachableZeroAlloc(t *testing.T) {
	e, _, p, owner, req := allocFixture(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Reachable(owner, req, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reachable allocates %.2f objects/op on a warmed engine, want 0", allocs)
	}
}

// TestAppendAudienceZeroAlloc locks in the audience half: with a reusable
// destination buffer, a warmed engine materializes the full audience with
// zero heap allocations per query.
func TestAppendAudienceZeroAlloc(t *testing.T) {
	e, _, p, owner, _ := allocFixture(t)
	buf, err := e.AppendAudience(nil, owner, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("fixture audience is empty; the assertion would be vacuous")
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = e.AppendAudience(buf[:0], owner, p)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendAudience allocates %.2f objects/op on a warmed engine, want 0", allocs)
	}
}

// TestReachableZeroAllocLegacyPath asserts the fallback edge-list iteration
// (no fresh CSR) stays allocation-free too: the closure-based expansion must
// not escape to the heap.
func TestReachableZeroAllocLegacyPath(t *testing.T) {
	e, g, p, owner, req := allocFixture(t)
	// Invalidate the CSR without touching reachability-relevant structure;
	// keep debt below the rebuild budget so the legacy path stays active.
	g.MustAddNode("straggler", nil)
	if g.FreshCSR() != nil {
		t.Fatal("CSR unexpectedly fresh after mutation")
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Reachable(owner, req, p); err != nil {
			t.Fatal(err)
		}
	}
	if g.FreshCSR() != nil {
		t.Skip("CSR debt rebuilt the index; legacy path not exercisable here")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Reachable(owner, req, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("legacy-path Reachable allocates %.2f objects/op, want 0", allocs)
	}
}
