package search

import (
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// ReachableAdaptive is Reachable with endpoint selection: the product
// search starts from whichever endpoint admits fewer seed traversals. For
// policies like "celebrity's followers' friends", the owner side may fan
// out to millions while the requester side stays in the tens; evaluating
// the reversed pattern (pathexpr.Reverse) from the requester bounds the
// frontier by the smaller cone. Decisions are identical to Reachable.
func (e *Engine) ReachableAdaptive(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		// Delegate for uniform error wording.
		return e.Reachable(owner, requester, p)
	}
	fwdSeeds := e.seedCount(owner, p.Steps[0])
	rev, srcPreds := pathexpr.Reverse(p)
	bwdSeeds := e.seedCount(requester, rev.Steps[0])
	if bwdSeeds < fwdSeeds {
		for _, pr := range srcPreds {
			if !pr.Eval(e.g.Node(requester).Attrs) {
				return false, nil
			}
		}
		return e.Reachable(requester, owner, rev)
	}
	return e.Reachable(owner, requester, p)
}

// seedCount counts the traversals of node n admitted as a first edge of
// step s (label and orientation only; predicates do not affect fan-out).
// With a fresh CSR the counts are O(1) run-length reads.
func (e *Engine) seedCount(n graph.NodeID, s pathexpr.Step) int {
	label, ok := e.g.LookupLabel(s.Label)
	if !ok {
		return 0
	}
	if c := e.g.FreshCSR(); c != nil {
		count := 0
		if s.Dir == pathexpr.Out || s.Dir == pathexpr.Both {
			count += len(c.OutNeighbors(n, label))
		}
		if s.Dir == pathexpr.In || s.Dir == pathexpr.Both {
			count += len(c.InNeighbors(n, label))
		}
		return count
	}
	count := 0
	if s.Dir == pathexpr.Out || s.Dir == pathexpr.Both {
		e.g.OutEdges(n, func(edge graph.Edge) bool {
			if edge.Label == label {
				count++
			}
			return true
		})
	}
	if s.Dir == pathexpr.In || s.Dir == pathexpr.Both {
		e.g.InEdges(n, func(edge graph.Edge) bool {
			if edge.Label == label {
				count++
			}
			return true
		})
	}
	return count
}

// Adaptive wraps an Engine so that its Reachable method uses adaptive
// endpoint selection, satisfying core.Evaluator.
type Adaptive struct {
	*Engine
}

// NewAdaptive returns an adaptive online evaluator over g.
func NewAdaptive(g *graph.Graph) Adaptive { return Adaptive{New(g)} }

// Reachable implements core.Evaluator via ReachableAdaptive.
func (a Adaptive) Reachable(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	return a.ReachableAdaptive(owner, requester, p)
}
