package search

import (
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// ReachableAdaptive is Reachable with endpoint selection: the product
// search starts from whichever endpoint admits fewer seed traversals. For
// policies like "celebrity's followers' friends", the owner side may fan
// out to millions while the requester side stays in the tens; evaluating
// the reversed pattern (pathexpr.Reverse) from the requester bounds the
// frontier by the smaller cone. Decisions are identical to Reachable.
//
// It is a thin shim over the planner cost hooks in route.go: RouteCosts
// supplies the per-endpoint seed counts and ReachableReverse executes the
// (plan-cached) reversed pattern.
func (e *Engine) ReachableAdaptive(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		// Delegate for uniform error wording.
		return e.Reachable(owner, requester, p)
	}
	fwd, rev, err := e.RouteCosts(owner, requester, p)
	if err != nil {
		return false, err
	}
	if rev < fwd {
		return e.ReachableReverse(owner, requester, p)
	}
	return e.Reachable(owner, requester, p)
}

// Adaptive wraps an Engine so that its Reachable method uses adaptive
// endpoint selection, satisfying core.Evaluator.
type Adaptive struct {
	*Engine
}

// NewAdaptive returns an adaptive online evaluator over g.
func NewAdaptive(g *graph.Graph) Adaptive { return Adaptive{New(g)} }

// Reachable implements core.Evaluator via ReachableAdaptive.
func (a Adaptive) Reachable(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	return a.ReachableAdaptive(owner, requester, p)
}
