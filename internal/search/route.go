package search

import (
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// This file exposes the engine's query-cost hooks to the planner: first-step
// seed fan-outs for both endpoints of a pattern (RouteCosts) and execution
// of the reversed pattern from the requester (ReachableReverse). The old
// adaptive engine's endpoint selection (adaptive.go) is now a thin shim over
// these two.

// RouteCosts estimates, for one reachability query, the seed fan-out of
// starting the product search at each endpoint: fwd counts owner's
// traversals admitted by the pattern's first step, rev counts requester's
// traversals admitted by the reversed pattern's first step (the last step
// with its orientation flipped). With a fresh CSR both are O(1) run-length
// reads. Both endpoints must be valid nodes.
func (e *Engine) RouteCosts(owner, requester graph.NodeID, p *pathexpr.Path) (fwd, rev int, err error) {
	c, err := e.plan(p)
	if err != nil {
		return 0, 0, err
	}
	first := &c.steps[0]
	fwd = e.seedCount(owner, first.label, first.labelOK, first.dir)
	last := &c.steps[len(c.steps)-1]
	rev = e.seedCount(requester, last.label, last.labelOK, flipDir(last.dir))
	return fwd, rev, nil
}

// ReachableReverse answers Reachable(owner, requester, p) by running the
// reversed pattern from the requester: owner ⊨p⊨> requester iff the
// reversal's source predicates hold on the requester and requester
// ⊨reverse(p)⊨> owner (see pathexpr.Reverse). It is profitable when the
// requester's cone is smaller than the owner's; decisions are identical to
// Reachable either way.
func (e *Engine) ReachableReverse(owner, requester graph.NodeID, p *pathexpr.Path) (bool, error) {
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		// Delegate for uniform error wording.
		return e.Reachable(owner, requester, p)
	}
	c, err := e.plan(p)
	if err != nil {
		return false, err
	}
	for _, pr := range c.revPreds {
		if !pr.Eval(e.g.Node(requester).Attrs) {
			return false, nil
		}
	}
	return e.Reachable(requester, owner, c.rev)
}

// seedCount counts the traversals of node n admitted as a first edge with
// the resolved label and orientation (predicates do not affect fan-out).
// With a fresh CSR the counts are O(1) run-length reads; otherwise the edge
// scan's cost matches one BFS step the caller was about to pay anyway.
func (e *Engine) seedCount(n graph.NodeID, label graph.Label, labelOK bool, dir pathexpr.Direction) int {
	if !labelOK {
		return 0
	}
	if c := e.g.FreshCSR(); c != nil {
		count := 0
		if dir == pathexpr.Out || dir == pathexpr.Both {
			count += len(c.OutNeighbors(n, label))
		}
		if dir == pathexpr.In || dir == pathexpr.Both {
			count += len(c.InNeighbors(n, label))
		}
		return count
	}
	count := 0
	if dir == pathexpr.Out || dir == pathexpr.Both {
		e.g.OutEdges(n, func(edge graph.Edge) bool {
			if edge.Label == label {
				count++
			}
			return true
		})
	}
	if dir == pathexpr.In || dir == pathexpr.Both {
		e.g.InEdges(n, func(edge graph.Edge) bool {
			if edge.Label == label {
				count++
			}
			return true
		})
	}
	return count
}

// flipDir reverses a traversal orientation.
func flipDir(d pathexpr.Direction) pathexpr.Direction {
	switch d {
	case pathexpr.Out:
		return pathexpr.In
	case pathexpr.In:
		return pathexpr.Out
	default:
		return pathexpr.Both
	}
}
