package search

import (
	"fmt"
	"sync"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// AudienceCache memoizes per-(owner, path) audience sets over one graph and
// keeps them fresh incrementally: when the graph is fast-forwarded by a
// recorded delta batch (the snapshot republication path), Advance extends
// the cached product-BFS states through the added edges instead of
// recomputing from scratch. Additions are monotone — a new edge can only
// add matching paths — so the old visited set plus an expansion seeded at
// the new edge is exactly the new fixpoint. Non-monotone deltas (edge
// removals, label growth affecting a previously-absent label) drop only the
// entries they can touch; those recompute lazily on next use.
//
// The cache is the engine behind the facade's Audience/PathAudience: it
// answers repeat audience queries in microseconds regardless of the engine
// kind selected for reachability checks, which all agree with the product
// BFS by the differential test suite.
//
// Audience returns slices owned by the cache; callers must treat them as
// immutable. Get-style reads lock briefly; Advance requires the caller to
// guarantee quiescence (the publisher's contract for a retired snapshot).
type AudienceCache struct {
	e  *Engine
	mu sync.RWMutex
	// entries is keyed by owner and canonical path text.
	entries map[audKey]*audEntry
	// frontier is the reusable expansion queue for Advance.
	frontier []uint64
}

type audKey struct {
	owner graph.NodeID
	path  string
}

// audEntry is one cached audience: the compiled path it was computed under,
// the full product-BFS visited bitset (the incremental state), the audience
// membership bitset, and its materialized sorted form.
type audEntry struct {
	c       *compiled
	visited []uint64
	member  []uint64
	out     []graph.NodeID
	dirty   bool
}

// maxAudienceCacheEntries bounds the cache; beyond it audiences are computed
// per call without caching. Entries are per (owner, path) — i.e. per shared
// rule condition — so real policy sets stay far below the cap.
const maxAudienceCacheEntries = 4096

// NewAudienceCache returns an empty cache over g. The graph may be advanced
// in place later via Advance; it must otherwise stay quiescent during use,
// which snapshot clones guarantee.
func NewAudienceCache(g *graph.Graph) *AudienceCache {
	return &AudienceCache{e: New(g), entries: make(map[audKey]*audEntry)}
}

// Graph returns the graph the cache reads.
func (ac *AudienceCache) Graph() *graph.Graph { return ac.e.g }

// Engine returns the online search engine the cache runs on. The planner's
// routed evaluator uses it to execute flat searches against the same graph
// clone (and the same warmed plan cache) the audience cache reads.
func (ac *AudienceCache) Engine() *Engine { return ac.e }

// Len returns the number of cached audience entries.
func (ac *AudienceCache) Len() int {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	return len(ac.entries)
}

// Peek answers Reachable(owner, requester, p) from an already-materialized
// audience entry: a map probe plus one bitset test, allocation-free. It
// never computes on a miss — ok=false means the caller must evaluate some
// other way. A dirty entry is still served (only the sorted materialization
// is stale, the membership bitset is the current fixpoint).
func (ac *AudienceCache) Peek(owner, requester graph.NodeID, p *pathexpr.Path) (member, ok bool) {
	g := ac.e.g
	if !g.ValidNode(owner) || !g.ValidNode(requester) {
		return false, false
	}
	c, err := ac.e.plan(p)
	if err != nil {
		return false, false
	}
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	ent, exists := ac.entries[audKey{owner, c.str}]
	if !exists || (ent.c.anyMissing && ent.c.labelsLen != g.NumLabels()) {
		return false, false
	}
	w := int(requester >> 6)
	if w >= len(ent.member) {
		return false, false
	}
	return ent.member[w]&(1<<(requester&63)) != 0, true
}

// Audience returns the set of members reachable from owner through a path
// matching p, in ascending node-ID order (the owner appears only on a
// genuine cycle). The result is served from the cache when possible and is
// owned by it: callers must not modify the returned slice.
// Audience implements core.AudienceSource.
func (ac *AudienceCache) Audience(owner graph.NodeID, p *pathexpr.Path) ([]graph.NodeID, error) {
	g := ac.e.g
	if !g.ValidNode(owner) {
		return nil, fmt.Errorf("search: invalid owner %d", owner)
	}
	c, err := ac.e.plan(p)
	if err != nil {
		return nil, err
	}
	v := g.NumNodes()
	if !c.flatOK(v) {
		// Pathological state space: compute without caching.
		return ac.e.AudienceSet(owner, p)
	}
	key := audKey{owner, c.str}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	old, exists := ac.entries[key]
	if exists && !(old.c.anyMissing && old.c.labelsLen != g.NumLabels()) {
		if old.dirty {
			old.out = appendBits(old.out[:0], old.member)
			old.dirty = false
		}
		return old.out, nil
	}
	ent := ac.compute(c, owner)
	if exists || len(ac.entries) < maxAudienceCacheEntries {
		ac.entries[key] = ent
	}
	return ent.out, nil
}

// compute runs the full product BFS for (owner, c) into a fresh entry.
// Callers hold ac.mu.
func (ac *AudienceCache) compute(c *compiled, owner graph.NodeID) *audEntry {
	v := ac.e.g.NumNodes()
	ent := &audEntry{
		c:       c,
		visited: make([]uint64, c.flatWords(v)),
		member:  make([]uint64, (v+63)/64),
	}
	if !c.anyMissing {
		frontier := seedFlat(c, ent.visited, ac.frontier[:0], owner)
		_, frontier, _ = ac.e.runFlat(c, ent.visited, ent.member, frontier, graph.InvalidNode, true)
		ac.frontier = frontier
		ent.out = appendBits(nil, ent.member)
	}
	return ent
}

// Advance brings every cached entry up to date after the cache's graph has
// been fast-forwarded (in place) by deltas. Edge additions extend entries
// incrementally; removals drop the entries whose path uses the removed
// label (others cannot be affected); node additions grow the bitsets;
// compactions change nothing the cache can see. The caller must guarantee
// no concurrent readers, which the snapshot-advance protocol does.
func (ac *AudienceCache) Advance(deltas []graph.Delta) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if len(ac.entries) == 0 {
		return
	}
	g := ac.e.g
	// Drop entries a removal could touch, and entries compiled while one of
	// their labels was still absent if the label table has since grown.
	nl := g.NumLabels()
	for _, d := range deltas {
		if d.Op != graph.OpRemoveEdge {
			continue
		}
		l, ok := g.LookupLabel(d.Label)
		if !ok {
			continue
		}
		for key, ent := range ac.entries {
			if ent.usesLabel(l) {
				delete(ac.entries, key)
			}
		}
	}
	v := g.NumNodes()
	for key, ent := range ac.entries {
		if ent.c.anyMissing && ent.c.labelsLen != nl {
			delete(ac.entries, key)
			continue
		}
		if !ent.c.flatOK(v) {
			delete(ac.entries, key)
			continue
		}
		ent.visited = grow(ent.visited, ent.c.flatWords(v))
		ent.member = grow(ent.member, (v+63)/64)
	}
	// Extend surviving entries through each added edge.
	for _, d := range deltas {
		if d.Op != graph.OpAddEdge {
			continue
		}
		l, ok := g.LookupLabel(d.Label)
		if !ok {
			continue
		}
		for _, ent := range ac.entries {
			ac.extend(ent, d.From, d.To, l)
		}
	}
}

// usesLabel reports whether the entry's path constrains on l.
func (ent *audEntry) usesLabel(l graph.Label) bool {
	for i := range ent.c.steps {
		if ent.c.steps[i].labelOK && ent.c.steps[i].label == l {
			return true
		}
	}
	return false
}

// grow extends a bitset to words entries, preserving existing bits.
func grow(b []uint64, words int) []uint64 {
	for len(b) < words {
		b = append(b, 0)
	}
	return b
}

// extend incorporates one added edge (from -l-> to) into an entry: every
// previously reached product state that could traverse the edge seeds a BFS
// expansion over the (already advanced) graph. Because the old visited set
// is a fixpoint of the old graph, any newly matching path must cross a new
// edge first at a previously reached state, so these seeds are complete.
// Callers hold ac.mu.
func (ac *AudienceCache) extend(ent *audEntry, from, to graph.NodeID, l graph.Label) {
	c := ent.c
	frontier := ac.frontier[:0]
	for si := range c.steps {
		st := &c.steps[si]
		if !st.labelOK || st.label != l {
			continue
		}
		if st.dir == pathexpr.Out || st.dir == pathexpr.Both {
			frontier = ac.seedEdge(ent, frontier, int32(si), from, to)
		}
		if st.dir == pathexpr.In || st.dir == pathexpr.Both {
			frontier = ac.seedEdge(ent, frontier, int32(si), to, from)
		}
	}
	if len(frontier) > 0 {
		ent.dirty = true
		_, frontier, _ = ac.e.runFlat(c, ent.visited, ent.member, frontier, graph.InvalidNode, true)
	}
	ac.frontier = frontier
}

// seedEdge simulates traversing the new edge from every reached state
// (u, si, d), marking the resulting states/members and enqueueing them.
func (ac *AudienceCache) seedEdge(ent *audEntry, frontier []uint64, si int32, u, next graph.NodeID) []uint64 {
	c := ent.c
	st := &c.steps[si]
	S := uint64(c.states)
	last := int32(len(c.steps) - 1)
	dCap := st.max
	if st.unbounded {
		dCap = st.min
	}
	base := uint64(u)*S + uint64(c.stepBase[si])
	for d := 0; d <= dCap; d++ {
		bit := base + uint64(d)
		if ent.visited[bit>>6]&(1<<(bit&63)) == 0 {
			continue
		}
		d1 := d + 1
		if st.mayClose(d1) && st.predsHold(ac.e.g, next) {
			if si == last {
				if ent.member[next>>6]&(1<<(next&63)) == 0 {
					ent.member[next>>6] |= 1 << (next & 63)
					ent.dirty = true
				}
			} else {
				nbit := uint64(next)*S + uint64(c.stepBase[si+1])
				if ent.visited[nbit>>6]&(1<<(nbit&63)) == 0 {
					ent.visited[nbit>>6] |= 1 << (nbit & 63)
					frontier = append(frontier, packState(next, si+1, 0))
				}
			}
		}
		if st.mayContinue(d1) {
			dk := int32(st.dKey(d1))
			nbit := uint64(next)*S + uint64(c.stepBase[si]) + uint64(dk)
			if ent.visited[nbit>>6]&(1<<(nbit&63)) == 0 {
				ent.visited[nbit>>6] |= 1 << (nbit & 63)
				frontier = append(frontier, packState(next, si, dk))
			}
		}
	}
	return frontier
}
