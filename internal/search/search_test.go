package search

import (
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
)

func node(t *testing.T, g *graph.Graph, name string) graph.NodeID {
	t.Helper()
	id, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("node %q missing", name)
	}
	return id
}

func reach(t *testing.T, e *Engine, g *graph.Graph, owner, requester, expr string) bool {
	t.Helper()
	ok, err := e.Reachable(node(t, g, owner), node(t, g, requester), pathexpr.MustParse(expr))
	if err != nil {
		t.Fatalf("Reachable(%s,%s,%s): %v", owner, requester, expr, err)
	}
	return ok
}

func TestQ1OnPaperGraph(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice := node(t, g, paperfix.Alice)
	granted := map[string]bool{}
	for _, name := range paperfix.Names {
		if name == paperfix.Alice {
			continue
		}
		ok, err := e.Reachable(alice, node(t, g, name), paperfix.Q1())
		if err != nil {
			t.Fatal(err)
		}
		granted[name] = ok
	}
	for _, name := range paperfix.Names {
		if name == paperfix.Alice {
			continue
		}
		want := false
		for _, w := range paperfix.Q1Grantees {
			if w == name {
				want = true
			}
		}
		if granted[name] != want {
			t.Errorf("Q1 grant for %s = %v, want %v", name, granted[name], want)
		}
	}
}

func TestPaperFriendParentFriend(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	// §3.4: Alice shares with the friends of her friends' parents; George is
	// granted via Alice -> Colin -> Fred -> George.
	if !reach(t, e, g, paperfix.Alice, paperfix.George, "friend+[1]/parent+[1]/friend+[1]") {
		t.Fatal("George denied")
	}
	// No one else qualifies.
	for _, name := range []string{paperfix.Bill, paperfix.Colin, paperfix.David, paperfix.Elena, paperfix.Fred} {
		if reach(t, e, g, paperfix.Alice, name, "friend+[1]/parent+[1]/friend+[1]") {
			t.Errorf("%s wrongly granted", name)
		}
	}
}

func TestWitnessMatchesPaperPath(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice := node(t, g, paperfix.Alice)
	george := node(t, g, paperfix.George)
	p := paperfix.QFriendParentFriend()
	hops, ok, err := e.Witness(alice, george, p)
	if err != nil || !ok {
		t.Fatalf("Witness: %v ok=%v", err, ok)
	}
	if len(hops) != 3 {
		t.Fatalf("witness length %d, want 3", len(hops))
	}
	if err := VerifyWitness(g, alice, george, p, hops); err != nil {
		t.Fatalf("VerifyWitness: %v", err)
	}
	// The unique matching path is Alice -> Colin -> Fred -> George.
	names := []string{paperfix.Colin, paperfix.Fred, paperfix.George}
	for i, h := range hops {
		if got := g.Node(h.Edge.To).Name; got != names[i] {
			t.Errorf("hop %d lands on %s, want %s", i, got, names[i])
		}
		if !h.Forward {
			t.Errorf("hop %d not forward", i)
		}
	}
}

func TestIncomingDirection(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	// §2: David shares with those who consider him a friend: Elena, Colin.
	for _, name := range paperfix.Names {
		if name == paperfix.David {
			continue
		}
		want := name == paperfix.Elena || name == paperfix.Colin
		if got := reach(t, e, g, paperfix.David, name, "friend-[1]"); got != want {
			t.Errorf("friend-[1] from David to %s = %v, want %v", name, got, want)
		}
	}
}

func TestBothDirection(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	// friend*[1] from David reaches both who he befriends (nobody via
	// friend) and who befriends him (Colin, Elena).
	if !reach(t, e, g, paperfix.David, paperfix.Colin, "friend*[1]") {
		t.Fatal("Colin not reached with *")
	}
	if reach(t, e, g, paperfix.David, paperfix.Colin, "friend+[1]") {
		t.Fatal("Colin reached with + (edge is Colin->David)")
	}
}

func TestFriendDepth3Chain(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	// §2: from Alice to George there is a friend path of length 3
	// (Alice-Bill-Elena-George).
	if !reach(t, e, g, paperfix.Alice, paperfix.George, "friend+[3]") {
		t.Fatal("depth-3 friend chain not found")
	}
	// But not of length exactly 1.
	if reach(t, e, g, paperfix.Alice, paperfix.George, "friend+[1]") {
		t.Fatal("phantom length-1 chain")
	}
	// [1,3] also matches.
	if !reach(t, e, g, paperfix.Alice, paperfix.George, "friend+[1,3]") {
		t.Fatal("[1,3] did not match")
	}
}

func TestUnboundedDepth(t *testing.T) {
	g := graph.New()
	n := make([]graph.NodeID, 6)
	for i := range n {
		n[i] = g.MustAddNode(string(rune('a'+i)), nil)
	}
	for i := 0; i+1 < len(n); i++ {
		g.MustAddEdge(n[i], n[i+1], "friend")
	}
	e := New(g)
	if !reach(t, e, g, "a", "f", "friend+[1,*]") {
		t.Fatal("unbounded missed 5-chain")
	}
	if !reach(t, e, g, "a", "f", "friend+[5,*]") {
		t.Fatal("unbounded min=5 missed 5-chain")
	}
	if reach(t, e, g, "a", "f", "friend+[6,*]") {
		t.Fatal("unbounded min=6 matched 5-chain")
	}
}

func TestUnboundedWithCycle(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", nil)
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(b, a, "friend")
	g.MustAddEdge(b, c, "colleague")
	e := New(g)
	// The cycle must not hang; min depth 4 can be met by looping.
	if !reach(t, e, g, "a", "c", "friend+[4,*]/colleague+[1]") {
		t.Fatal("cycle-assisted unbounded match failed")
	}
}

func TestSelfRequesterViaCycle(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(b, a, "friend")
	e := New(g)
	// owner == requester matched through a genuine 2-cycle.
	if !reach(t, e, g, "a", "a", "friend+[2]") {
		t.Fatal("owner-to-self cycle not matched")
	}
	if reach(t, e, g, "a", "a", "friend+[1]") {
		t.Fatal("owner-to-self granted without a matching path")
	}
}

func TestAttributePredicates(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", graph.Attrs{"age": graph.Int(15)})
	c := g.MustAddNode("c", graph.Attrs{"age": graph.Int(30)})
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(a, c, "friend")
	e := New(g)
	if reach(t, e, g, "a", "b", "friend+[1]{age>=18}") {
		t.Fatal("minor granted")
	}
	if !reach(t, e, g, "a", "c", "friend+[1]{age>=18}") {
		t.Fatal("adult denied")
	}
}

func TestPredicatesApplyAtStepEndOnly(t *testing.T) {
	// a -> b(age 15) -> c(age 30): friend+[2]{age>=18} must match a..c even
	// though the intermediate b fails the predicate.
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", graph.Attrs{"age": graph.Int(15)})
	c := g.MustAddNode("c", graph.Attrs{"age": graph.Int(30)})
	g.MustAddEdge(a, b, "friend")
	g.MustAddEdge(b, c, "friend")
	e := New(g)
	if !reach(t, e, g, "a", "c", "friend+[2]{age>=18}") {
		t.Fatal("intermediate node predicate wrongly enforced")
	}
	// But with depth [1,2], closing at b is rejected while c still matches.
	if !reach(t, e, g, "a", "c", "friend+[1,2]{age>=18}") {
		t.Fatal("depth [1,2] match failed")
	}
	if reach(t, e, g, "a", "b", "friend+[1,2]{age>=18}") {
		t.Fatal("b granted despite failing predicate")
	}
}

func TestMissingLabelIsDenyNotError(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	if reach(t, e, g, paperfix.Alice, paperfix.Bill, "enemy+[1]") {
		t.Fatal("unknown label matched")
	}
}

func TestInvalidNodesError(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	if _, err := e.Reachable(999, 0, paperfix.Q1()); err == nil {
		t.Fatal("invalid owner accepted")
	}
}

func TestInvalidPathError(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	bad := &pathexpr.Path{} // empty
	if _, err := e.Reachable(0, 1, bad); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestDFSAgreesWithBFS(t *testing.T) {
	g := paperfix.Graph()
	bfs, dfs := New(g), NewDFS(g)
	queries := []string{
		"friend+[1,2]/colleague+[1]",
		"friend+[1]/parent+[1]/friend+[1]",
		"friend-[1]",
		"friend*[1,3]",
		"friend+[1,*]",
		"colleague+[1]/friend+[1,2]",
		"parent-[1]/colleague-[1]",
	}
	for _, q := range queries {
		p := pathexpr.MustParse(q)
		for _, o := range paperfix.Names {
			for _, r := range paperfix.Names {
				oid, rid := node(t, g, o), node(t, g, r)
				b, err := bfs.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				d, err := dfs.Reachable(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				if b != d {
					t.Fatalf("BFS/DFS disagree on (%s,%s,%s): %v vs %v", o, r, q, b, d)
				}
			}
		}
	}
}

func TestWitnessAlwaysVerifies(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	queries := []string{
		"friend+[1,2]/colleague+[1]",
		"friend+[1]/parent+[1]/friend+[1]",
		"friend-[1]",
		"friend*[1,3]",
		"friend+[3]",
		"friend+[1,*]",
	}
	found := 0
	for _, q := range queries {
		p := pathexpr.MustParse(q)
		for _, o := range paperfix.Names {
			for _, r := range paperfix.Names {
				oid, rid := node(t, g, o), node(t, g, r)
				hops, ok, err := e.Witness(oid, rid, p)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				found++
				if err := VerifyWitness(g, oid, rid, p, hops); err != nil {
					t.Fatalf("witness for (%s,%s,%s) invalid: %v", o, r, q, err)
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no witnesses found at all")
	}
}

func TestVerifyWitnessRejectsBad(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice := node(t, g, paperfix.Alice)
	george := node(t, g, paperfix.George)
	p := paperfix.QFriendParentFriend()
	hops, ok, _ := e.Witness(alice, george, p)
	if !ok {
		t.Fatal("no witness")
	}
	// Wrong requester.
	if err := VerifyWitness(g, alice, node(t, g, paperfix.Bill), p, hops); err == nil {
		t.Fatal("wrong requester accepted")
	}
	// Wrong owner.
	if err := VerifyWitness(g, node(t, g, paperfix.Bill), george, p, hops); err == nil {
		t.Fatal("wrong owner accepted")
	}
	// Truncated witness.
	if err := VerifyWitness(g, alice, george, p, hops[:2]); err == nil {
		t.Fatal("truncated witness accepted")
	}
	// Wrong pattern.
	if err := VerifyWitness(g, alice, george, pathexpr.MustParse("friend+[3]"), hops); err == nil {
		t.Fatal("mismatched pattern accepted")
	}
}
