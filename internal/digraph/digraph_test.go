package digraph

import (
	"math/rand"
	"testing"
)

func TestBasics(t *testing.T) {
	d := New(3)
	if d.N() != 3 || d.M() != 0 {
		t.Fatalf("empty: N=%d M=%d", d.N(), d.M())
	}
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	if d.M() != 2 {
		t.Fatalf("M = %d, want 2", d.M())
	}
	if got := d.Succ(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Succ(0) = %v", got)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range edge")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestReverse(t *testing.T) {
	d := New(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(0, 3)
	r := d.Reverse()
	if r.M() != 3 {
		t.Fatalf("reverse M = %d", r.M())
	}
	if got := r.Succ(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("reverse Succ(1) = %v", got)
	}
	if got := r.Succ(3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("reverse Succ(3) = %v", got)
	}
}

func TestTopoOrderChain(t *testing.T) {
	d := New(4)
	d.AddEdge(3, 2)
	d.AddEdge(2, 1)
	d.AddEdge(1, 0)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("TopoOrder = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	d := New(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestTopoOrderIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		d := New(n)
		// Random DAG: only edges u -> v with u < v.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					d.AddEdge(u, v)
				}
			}
		}
		order, err := d.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range d.Succ(u) {
				if pos[u] >= pos[int(v)] {
					t.Fatalf("trial %d: edge (%d,%d) violates order", trial, u, v)
				}
			}
		}
	}
}

func TestReachable(t *testing.T) {
	d := New(5)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(3, 4)
	if !d.Reachable(0, 2) {
		t.Fatal("0 !-> 2")
	}
	if !d.Reachable(0, 0) {
		t.Fatal("0 !-> 0 (self)")
	}
	if d.Reachable(0, 4) {
		t.Fatal("0 -> 4 across components")
	}
	if d.Reachable(2, 0) {
		t.Fatal("reverse reachability")
	}
}

func TestReachableSet(t *testing.T) {
	d := New(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	set := d.ReachableSet(0)
	want := []bool{true, true, true, false}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("ReachableSet = %v, want %v", set, want)
		}
	}
}

func TestReachableMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(25)
		d := New(n)
		for i := 0; i < n*2; i++ {
			d.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for src := 0; src < n; src++ {
			set := d.ReachableSet(src)
			for dst := 0; dst < n; dst++ {
				if d.Reachable(src, dst) != set[dst] {
					t.Fatalf("trial %d: Reachable(%d,%d) disagrees with set", trial, src, dst)
				}
			}
		}
	}
}
