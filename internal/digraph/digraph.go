// Package digraph provides a minimal unlabeled directed graph used as the
// working representation for the indexing pipeline (line graphs, SCC
// condensations, interval-labeled DAGs). Vertices are dense ints [0, N).
package digraph

import "fmt"

// D is a directed graph over vertices 0..N-1 with adjacency lists.
type D struct {
	n   int
	adj [][]int32
}

// New returns a digraph with n vertices and no edges.
func New(n int) *D {
	return &D{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (d *D) N() int { return d.n }

// Grow appends k isolated vertices and returns the id of the first one.
// Used by incremental index maintenance to extend a line graph or
// condensation DAG in place.
func (d *D) Grow(k int) int {
	first := d.n
	d.n += k
	d.adj = append(d.adj, make([][]int32, k)...)
	return first
}

// M returns the number of edges.
func (d *D) M() int {
	m := 0
	for _, a := range d.adj {
		m += len(a)
	}
	return m
}

// AddEdge inserts u -> v. It panics on out-of-range vertices; duplicate edges
// are the caller's responsibility.
func (d *D) AddEdge(u, v int) {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Sprintf("digraph: edge (%d,%d) out of range [0,%d)", u, v, d.n))
	}
	d.adj[u] = append(d.adj[u], int32(v))
}

// Succ returns the successor list of u. The returned slice must not be
// modified.
func (d *D) Succ(u int) []int32 { return d.adj[u] }

// Reverse returns a new digraph with all edges flipped.
func (d *D) Reverse() *D {
	r := New(d.n)
	for u, succ := range d.adj {
		for _, v := range succ {
			r.AddEdge(int(v), u)
		}
	}
	return r
}

// TopoOrder returns a topological order of the vertices, or an error if the
// graph has a cycle. The order is deterministic (Kahn's algorithm with the
// lowest-numbered ready vertex first).
func (d *D) TopoOrder() ([]int, error) {
	indeg := make([]int, d.n)
	for _, succ := range d.adj {
		for _, v := range succ {
			indeg[v]++
		}
	}
	// A binary-heap-free deterministic Kahn: scan buckets by vertex id.
	ready := make([]int, 0, d.n)
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, d.n)
	for len(ready) > 0 {
		// Pop the smallest ready vertex for determinism.
		minI := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[minI] {
				minI = i
			}
		}
		v := ready[minI]
		ready[minI] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, w := range d.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, int(w))
			}
		}
	}
	if len(order) != d.n {
		return nil, fmt.Errorf("digraph: cycle detected (%d of %d vertices ordered)", len(order), d.n)
	}
	return order, nil
}

// Reachable reports whether target is reachable from src by BFS. It is the
// reference oracle the index structures are tested against.
func (d *D) Reachable(src, target int) bool {
	if src == target {
		return true
	}
	seen := make([]bool, d.n)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.adj[u] {
			if int(v) == target {
				return true
			}
			if !seen[v] {
				seen[v] = true
				queue = append(queue, int(v))
			}
		}
	}
	return false
}

// ReachableSet returns the set of vertices reachable from src (including
// src) as a boolean slice.
func (d *D) ReachableSet(src int) []bool {
	seen := make([]bool, d.n)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, int(v))
			}
		}
	}
	return seen
}
