// Package reldb is the minimal in-memory relational layer of §3.3: the
// paper stores the 2-hop labeling in a relational database as one
// three-column base table per relationship type,
//
//	T_label(id, Lin(id), Lout(id)),
//
// and evaluates each step of a reachability query as a *reachability join*
// T_a ⋈_{a↪b} T_b: the pair ⟨x, y⟩ joins iff Lout(x) ∩ Lin(y) ≠ ∅.
// The paper used an external DBMS purely as a table store and join executor;
// this package implements those two roles directly (see DESIGN.md,
// substitutions).
package reldb

import "sort"

// Row is one tuple of a base table: a line-graph node id with its 2-hop
// labels (center ranks, ascending).
type Row struct {
	ID  int32
	In  []int32
	Out []int32
}

// Table is a named base table.
type Table struct {
	Name string
	Rows []Row
}

// NewTable returns a table with the given name and rows.
func NewTable(name string, rows []Row) *Table {
	return &Table{Name: name, Rows: rows}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Filter returns a new table with the rows satisfying keep.
func (t *Table) Filter(keep func(Row) bool) *Table {
	out := &Table{Name: t.Name}
	for _, r := range t.Rows {
		if keep(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Lookup returns the row with the given id, scanning; ok reports presence.
func (t *Table) Lookup(id int32) (Row, bool) {
	for _, r := range t.Rows {
		if r.ID == id {
			return r, true
		}
	}
	return Row{}, false
}

// Intersects reports whether two ascending label slices share an element —
// the reachability condition Lout(x) ∩ Lin(y) ≠ ∅ of Definition 5.
func Intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Pair is one result pair of a reachability join.
type Pair struct {
	L, R int32
}

// ReachJoin computes T_left ⋈ T_right under the reachability condition:
// every ⟨x, y⟩ with Lout(x) ∩ Lin(y) ≠ ∅. Pairs are emitted in
// (left-row-order, right-row-order), deterministic.
func ReachJoin(left, right *Table) []Pair {
	var out []Pair
	for _, x := range left.Rows {
		if len(x.Out) == 0 {
			continue
		}
		for _, y := range right.Rows {
			if Intersects(x.Out, y.In) {
				out = append(out, Pair{x.ID, y.ID})
			}
		}
	}
	return out
}

// TupleSet is an intermediate result of a chain of reachability joins: each
// tuple is a sequence of row ids, one per joined table (⟨x1, …, xk⟩ in the
// paper's notation). last holds the full row of each tuple's final element so
// the next join can test its Lout.
type TupleSet struct {
	Tuples [][]int32
	last   []Row
}

// FromTable seeds a tuple set with every row of t as a 1-tuple.
func FromTable(t *Table) *TupleSet {
	ts := &TupleSet{}
	for _, r := range t.Rows {
		ts.Tuples = append(ts.Tuples, []int32{r.ID})
		ts.last = append(ts.last, r)
	}
	return ts
}

// Len returns the number of tuples.
func (ts *TupleSet) Len() int { return len(ts.Tuples) }

// LastRow returns the full row of tuple i's final element.
func (ts *TupleSet) LastRow(i int) Row { return ts.last[i] }

// Append adds a tuple whose final element has the given row.
func (ts *TupleSet) Append(tuple []int32, lastRow Row) {
	ts.Tuples = append(ts.Tuples, tuple)
	ts.last = append(ts.last, lastRow)
}

// Extend joins the tuple set with the next table under the reachability
// condition, producing tuples one element longer. maxTuples > 0 bounds the
// result size; exceeding it returns ok=false (the caller should fall back to
// another strategy).
func (ts *TupleSet) Extend(next *Table, maxTuples int) (*TupleSet, bool) {
	out := &TupleSet{}
	for i, tup := range ts.Tuples {
		x := ts.last[i]
		if len(x.Out) == 0 {
			continue
		}
		for _, y := range next.Rows {
			if !Intersects(x.Out, y.In) {
				continue
			}
			if maxTuples > 0 && len(out.Tuples) >= maxTuples {
				return nil, false
			}
			nt := make([]int32, len(tup)+1)
			copy(nt, tup)
			nt[len(tup)] = y.ID
			out.Tuples = append(out.Tuples, nt)
			out.last = append(out.last, y)
		}
	}
	return out, true
}

// SortTuples orders tuples lexicographically, for deterministic output.
func (ts *TupleSet) SortTuples() {
	idx := make([]int, len(ts.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := ts.Tuples[idx[a]], ts.Tuples[idx[b]]
		for k := 0; k < len(ta) && k < len(tb); k++ {
			if ta[k] != tb[k] {
				return ta[k] < tb[k]
			}
		}
		return len(ta) < len(tb)
	})
	tuples := make([][]int32, len(idx))
	last := make([]Row, len(idx))
	for i, j := range idx {
		tuples[i] = ts.Tuples[j]
		last[i] = ts.last[j]
	}
	ts.Tuples, ts.last = tuples, last
}
