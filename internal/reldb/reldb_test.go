package reldb

import "testing"

func row(id int32, in, out []int32) Row { return Row{ID: id, In: in, Out: out} }

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b []int32
		want bool
	}{
		{nil, nil, false},
		{[]int32{1}, nil, false},
		{[]int32{1, 3, 5}, []int32{2, 4, 6}, false},
		{[]int32{1, 3, 5}, []int32{5}, true},
		{[]int32{7}, []int32{1, 7, 9}, true},
		{[]int32{1, 2, 3}, []int32{3, 4}, true},
	}
	for i, c := range cases {
		if got := Intersects(c.a, c.b); got != c.want {
			t.Errorf("case %d: Intersects(%v,%v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestFilterAndLookup(t *testing.T) {
	tbl := NewTable("friend", []Row{
		row(1, nil, []int32{1}),
		row(2, []int32{1}, nil),
		row(3, []int32{1}, []int32{2}),
	})
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	f := tbl.Filter(func(r Row) bool { return len(r.Out) > 0 })
	if f.Len() != 2 || f.Rows[0].ID != 1 || f.Rows[1].ID != 3 {
		t.Fatalf("Filter = %+v", f.Rows)
	}
	r, ok := tbl.Lookup(2)
	if !ok || r.ID != 2 {
		t.Fatalf("Lookup(2) = %+v,%v", r, ok)
	}
	if _, ok := tbl.Lookup(99); ok {
		t.Fatal("Lookup(99) found ghost")
	}
}

func TestReachJoinPaperExample(t *testing.T) {
	// §3.3: ⟨friendA-C, colleagueD-F⟩ joins because Lout(friendA-C) ∩
	// Lin(colleagueD-F) ≠ ∅ (they share a center). Model centers as ranks:
	// center 0 = colleagueD-F's own cluster, center 1 = friendC-D.
	friend := NewTable("friend", []Row{
		row(10, nil, []int32{0, 1}),     // friendA-C: Lout = {colleagueD-F, friendC-D}
		row(11, []int32{1}, []int32{}),  // friendC-D-ish row with no out
		row(12, []int32{9}, []int32{5}), // unrelated
	})
	colleague := NewTable("colleague", []Row{
		row(20, []int32{0, 1, 2}, nil), // colleagueD-F: Lin ∋ shared centers
		row(21, []int32{7}, nil),       // unrelated
	})
	pairs := ReachJoin(friend, colleague)
	if len(pairs) != 1 || pairs[0] != (Pair{10, 20}) {
		t.Fatalf("ReachJoin = %+v", pairs)
	}
}

func TestReachJoinEmptyOut(t *testing.T) {
	a := NewTable("a", []Row{row(1, nil, nil)})
	b := NewTable("b", []Row{row(2, []int32{1}, nil)})
	if pairs := ReachJoin(a, b); len(pairs) != 0 {
		t.Fatalf("empty-out joined: %+v", pairs)
	}
}

func TestTupleSetChain(t *testing.T) {
	// Three-step chain mimicking (T_friend ⋈ T_parent) ⋈ T_friend of §3.3.
	t1 := NewTable("friend", []Row{
		row(1, nil, []int32{5}),
		row(2, nil, []int32{6}),
	})
	t2 := NewTable("parent", []Row{
		row(3, []int32{5}, []int32{7}),
		row(4, []int32{6}, nil),
	})
	t3 := NewTable("friend", []Row{
		row(5, []int32{7}, nil),
	})
	ts := FromTable(t1)
	if ts.Len() != 2 {
		t.Fatalf("seed len = %d", ts.Len())
	}
	ts2, ok := ts.Extend(t2, 0)
	if !ok || ts2.Len() != 2 {
		t.Fatalf("extend1 = %d,%v", ts2.Len(), ok)
	}
	ts3, ok := ts2.Extend(t3, 0)
	if !ok || ts3.Len() != 1 {
		t.Fatalf("extend2 = %d,%v", ts3.Len(), ok)
	}
	want := []int32{1, 3, 5}
	for i, v := range want {
		if ts3.Tuples[0][i] != v {
			t.Fatalf("tuple = %v, want %v", ts3.Tuples[0], want)
		}
	}
}

func TestTupleSetExtendCap(t *testing.T) {
	rows := make([]Row, 40)
	for i := range rows {
		rows[i] = row(int32(i), []int32{1}, []int32{1})
	}
	t1 := NewTable("a", rows)
	ts := FromTable(t1)
	if _, ok := ts.Extend(t1, 100); ok {
		t.Fatal("cap not enforced (40*40 > 100)")
	}
	if out, ok := ts.Extend(t1, 0); !ok || out.Len() != 1600 {
		t.Fatalf("uncapped extend = %d,%v", out.Len(), ok)
	}
}

func TestSortTuples(t *testing.T) {
	ts := &TupleSet{
		Tuples: [][]int32{{3, 1}, {1, 2}, {1, 1}},
		last:   []Row{row(1, nil, nil), row(2, nil, nil), row(1, nil, nil)},
	}
	ts.SortTuples()
	want := [][]int32{{1, 1}, {1, 2}, {3, 1}}
	for i := range want {
		for j := range want[i] {
			if ts.Tuples[i][j] != want[i][j] {
				t.Fatalf("sorted = %v", ts.Tuples)
			}
		}
	}
	// last stays aligned: tuple {1,2} has last row id 2.
	if ts.last[1].ID != 2 {
		t.Fatalf("last misaligned: %+v", ts.last)
	}
}
