package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reachac/internal/digraph"
	"reachac/internal/graph"
	"reachac/internal/linegraph"
	"reachac/internal/paperfix"
	"reachac/internal/scc"
)

func randomDAG(rng *rand.Rand, n int, density int) *digraph.D {
	d := digraph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(density) == 0 {
				d.AddEdge(u, v)
			}
		}
	}
	return d
}

func checkAgainstBFS(t *testing.T, d *digraph.D, l *Labeling) {
	t.Helper()
	for u := 0; u < d.N(); u++ {
		set := d.ReachableSet(u)
		for v := 0; v < d.N(); v++ {
			if got := l.Reachable(u, v); got != set[v] {
				t.Fatalf("Reachable(%d,%d) = %v, BFS says %v", u, v, got, set[v])
			}
		}
	}
}

func TestChain(t *testing.T) {
	d := digraph.New(5)
	for i := 0; i < 4; i++ {
		d.AddEdge(i, i+1)
	}
	l, err := Label(d)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBFS(t, d, l)
	// A chain needs exactly one interval per node.
	if l.Size() != 5 {
		t.Fatalf("chain labeling size = %d, want 5", l.Size())
	}
}

func TestDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
	d := digraph.New(4)
	d.AddEdge(0, 1)
	d.AddEdge(0, 2)
	d.AddEdge(1, 3)
	d.AddEdge(2, 3)
	l, err := Label(d)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBFS(t, d, l)
}

func TestForest(t *testing.T) {
	// Two disjoint trees.
	d := digraph.New(6)
	d.AddEdge(0, 1)
	d.AddEdge(0, 2)
	d.AddEdge(3, 4)
	d.AddEdge(3, 5)
	l, err := Label(d)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBFS(t, d, l)
}

func TestEmptyAndSingle(t *testing.T) {
	l, err := Label(digraph.New(0))
	if err != nil || l.Size() != 0 {
		t.Fatalf("empty: %v %d", err, l.Size())
	}
	l, err = Label(digraph.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Reachable(0, 0) {
		t.Fatal("self not reachable")
	}
}

func TestCycleRejected(t *testing.T) {
	d := digraph.New(2)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	if _, err := Label(d); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestPostorderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randomDAG(rng, 30, 3)
	l, err := Label(d)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, d.N()+1)
	for _, p := range l.Post {
		if p < 1 || p > d.N() || seen[p] {
			t.Fatalf("postorder %v not a permutation of 1..%d", l.Post, d.N())
		}
		seen[p] = true
	}
}

func TestIntervalSetsSortedAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := randomDAG(rng, 40, 4)
	l, err := Label(d)
	if err != nil {
		t.Fatal(err)
	}
	for v, set := range l.Sets {
		for i, iv := range set {
			if iv.Lo > iv.Hi {
				t.Fatalf("vertex %d interval %v inverted", v, iv)
			}
			// Non-adjacent (fully compacted) and sorted.
			if i > 0 && set[i-1].Hi+1 >= iv.Lo {
				t.Fatalf("vertex %d set not compacted: %v", v, set)
			}
		}
	}
}

func TestRandomDAGsMatchBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(35)
		d := randomDAG(rng, n, 1+rng.Intn(5))
		l, err := Label(d)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstBFS(t, d, l)
	}
}

func TestQuickRandomDAGs(t *testing.T) {
	// Property: for arbitrary seed and size, the labeling agrees with BFS.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(sz)%25
		d := randomDAG(rng, n, 2)
		l, err := Label(d)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			set := d.ReachableSet(u)
			for v := 0; v < n; v++ {
				if l.Reachable(u, v) != set[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelBoundedOverApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		d := randomDAG(rng, n, 1+rng.Intn(3))
		for _, budget := range []int{1, 2, 3, 8} {
			l, err := LabelBounded(d, budget)
			if err != nil {
				t.Fatal(err)
			}
			for v, set := range l.Sets {
				if len(set) > budget {
					t.Fatalf("vertex %d has %d intervals, budget %d", v, len(set), budget)
				}
			}
			// Over-approximation: never a false negative.
			for u := 0; u < n; u++ {
				reach := d.ReachableSet(u)
				for v := 0; v < n; v++ {
					if reach[v] && !l.Reachable(u, v) {
						t.Fatalf("budget %d: false negative (%d,%d)", budget, u, v)
					}
				}
			}
		}
	}
}

func TestLabelBoundedExactWhenUnderBudget(t *testing.T) {
	d := digraph.New(5)
	for i := 0; i < 4; i++ {
		d.AddEdge(i, i+1)
	}
	l, err := LabelBounded(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.Approx {
		t.Fatal("chain labeling marked approximate")
	}
	checkAgainstBFS(t, d, l)
}

func TestLabelBoundedMarksApprox(t *testing.T) {
	// A wide fan-in/out DAG that forces more than one interval per vertex:
	// v0 -> {odd leaves} skipping evens gives fragmented postorders.
	d := digraph.New(12)
	for i := 1; i < 12; i += 2 {
		d.AddEdge(0, i)
	}
	l, err := LabelBounded(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Sets[0]) != 1 {
		t.Fatalf("budget 1 not enforced: %v", l.Sets[0])
	}
	// With budget 1 the root's interval covers everything it reaches (and
	// possibly more) — over-approximation only.
	for v := 1; v < 12; v += 2 {
		if !l.Reachable(0, v) {
			t.Fatalf("false negative to %d", v)
		}
	}
}

func TestPaperLineDAGBothDirections(t *testing.T) {
	// Figure 5 computes the labeling on the condensed line graph G1 and on
	// its reverse G2. Verify both labelings are semantically correct.
	g := paperfix.Graph()
	alice, _ := g.NodeByName(paperfix.Alice)
	l := linegraph.Build(g, linegraph.Opts{VirtualRoots: []graph.NodeID{alice}})
	r := scc.Tarjan(l.D)
	dag := scc.Condense(l.D, r)
	g1, err := Label(dag)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBFS(t, dag, g1)
	g2, err := Label(dag.Reverse())
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBFS(t, dag.Reverse(), g2)
	// G2 is the inverse relation of G1.
	for u := 0; u < dag.N(); u++ {
		for v := 0; v < dag.N(); v++ {
			if g1.Reachable(u, v) != g2.Reachable(v, u) {
				t.Fatalf("G1/G2 asymmetry at (%d,%d)", u, v)
			}
		}
	}
	// The paper's fixture has 13 line nodes and no cycles among distinct
	// components other than Bill<->Elena friendship loops.
	if dag.N() > l.D.N() {
		t.Fatal("condensation grew")
	}
}
