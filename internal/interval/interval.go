// Package interval implements the DAG reachability labeling of Agrawal,
// Borgida and Jagadish (SIGMOD 1989), which the paper uses in §3.2: an
// optimum tree cover is extracted from the DAG, each node receives its
// postorder number, and each node carries a set of intervals such that
//
//	u ⇝ v   iff   post(v) ∈ intervals(u).
//
// The tree interval of a node is [lowest postorder in its subtree, its own
// postorder]; intervals of non-tree descendants are propagated in reverse
// topological order and compacted. The paper's Figure 5 ("reachability
// table") is exactly this labeling computed on both the line DAG (G1) and
// its reverse (G2).
//
// Tie-breaking note: the paper does not fix the traversal order or the tree
// cover choice (and describes the parent choice loosely). We deterministically
// pick, for each node, the incoming tree edge from the predecessor occurring
// latest in topological order (a standard heuristic that deepens the cover
// and shrinks interval sets), with the lowest vertex id breaking ties. The
// correctness invariant — containment ⇔ reachability — is independent of
// these choices and is what the tests verify.
package interval

import (
	"fmt"
	"sort"

	"reachac/internal/digraph"
)

// Interval is an inclusive postorder range.
type Interval struct {
	Lo, Hi int
}

// Contains reports whether p lies in the interval.
func (iv Interval) Contains(p int) bool { return iv.Lo <= p && p <= iv.Hi }

// String renders the interval as "[lo,hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Labeling is the computed interval labeling of a DAG.
type Labeling struct {
	// Post is the 1-based postorder number of each vertex within the tree
	// cover forest.
	Post []int
	// Sets holds each vertex's compacted, sorted interval set.
	Sets [][]Interval
	// Parent is the tree-cover parent of each vertex (-1 for roots).
	Parent []int
	// Approx reports that at least one interval set was truncated to a
	// budget, making Reachable an over-approximation (never a false
	// negative): Reachable==false still guarantees unreachability.
	Approx bool
}

// Label computes the exact labeling. It fails if d is not a DAG. On wide
// DAGs the exact interval sets can grow quadratically; use LabelBounded for
// a memory-bounded over-approximation.
func Label(d *digraph.D) (*Labeling, error) {
	return LabelBounded(d, 0)
}

// LabelBounded is Label with a per-vertex interval budget: whenever a
// vertex's compacted set exceeds budget intervals, the gaps between
// consecutive intervals are collapsed smallest-first until the set fits.
// Collapsing a gap only ADDS postorder values to the set, so the resulting
// Reachable is an over-approximation of true reachability — exactly what a
// pruning filter needs (false "maybe reachable" answers cost time, never
// correctness). budget <= 0 means unbounded (exact).
func LabelBounded(d *digraph.D, budget int) (*Labeling, error) {
	n := d.N()
	topo, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	topoPos := make([]int, n)
	for i, v := range topo {
		topoPos[v] = i
	}

	// Tree cover: choose each node's parent among its predecessors.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	rev := d.Reverse()
	for v := 0; v < n; v++ {
		best := -1
		for _, p := range rev.Succ(v) {
			pp := int(p)
			if best == -1 {
				best = pp
				continue
			}
			// Prefer the predecessor latest in topo order; break ties by
			// lowest id.
			if topoPos[pp] > topoPos[best] || (topoPos[pp] == topoPos[best] && pp < best) {
				best = pp
			}
		}
		parent[v] = best
	}

	children := make([][]int, n)
	var roots []int
	for v := 0; v < n; v++ {
		if parent[v] == -1 {
			roots = append(roots, v)
		} else {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	for v := range children {
		sort.Ints(children[v])
	}
	sort.Ints(roots)

	// Iterative postorder numbering; lo[v] is the smallest postorder in v's
	// subtree.
	post := make([]int, n)
	lo := make([]int, n)
	counter := 0
	type frame struct {
		v  int
		ci int
	}
	var stack []frame
	for _, r := range roots {
		stack = append(stack[:0], frame{v: r})
		lo[r] = counter + 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ci < len(children[f.v]) {
				c := children[f.v][f.ci]
				f.ci++
				lo[c] = counter + 1
				stack = append(stack, frame{v: c})
				continue
			}
			counter++
			post[f.v] = counter
			stack = stack[:len(stack)-1]
		}
	}

	// Interval propagation in reverse topological order.
	sets := make([][]Interval, n)
	approx := false
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		set := []Interval{{lo[v], post[v]}}
		for _, u := range d.Succ(v) {
			set = append(set, sets[u]...)
		}
		set = compact(set)
		if budget > 0 && len(set) > budget {
			set = bound(set, budget)
			approx = true
		}
		sets[v] = set
	}
	return &Labeling{Post: post, Sets: sets, Parent: parent, Approx: approx}, nil
}

// bound collapses the smallest gaps of a sorted, compacted interval set
// until at most budget intervals remain. The budget-1 largest gaps (ties:
// earlier position wins) are kept as separators.
func bound(set []Interval, budget int) []Interval {
	if budget < 1 {
		budget = 1
	}
	type gap struct {
		pos, size int
	}
	gaps := make([]gap, 0, len(set)-1)
	for i := 1; i < len(set); i++ {
		gaps = append(gaps, gap{pos: i, size: set[i].Lo - set[i-1].Hi})
	}
	sort.Slice(gaps, func(a, b int) bool {
		if gaps[a].size != gaps[b].size {
			return gaps[a].size > gaps[b].size
		}
		return gaps[a].pos < gaps[b].pos
	})
	keep := make(map[int]bool, budget-1)
	for i := 0; i < budget-1 && i < len(gaps); i++ {
		keep[gaps[i].pos] = true
	}
	out := set[:1]
	for i := 1; i < len(set); i++ {
		if keep[i] {
			out = append(out, set[i])
			continue
		}
		out[len(out)-1].Hi = set[i].Hi
	}
	return out
}

// compact sorts and merges overlapping or adjacent intervals.
func compact(set []Interval) []Interval {
	if len(set) <= 1 {
		return set
	}
	sort.Slice(set, func(i, j int) bool {
		if set[i].Lo != set[j].Lo {
			return set[i].Lo < set[j].Lo
		}
		return set[i].Hi > set[j].Hi
	})
	out := set[:1]
	for _, iv := range set[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Reachable reports u ⇝ v by testing post(v) against u's interval set in
// O(log |set|).
func (l *Labeling) Reachable(u, v int) bool {
	p := l.Post[v]
	set := l.Sets[u]
	i := sort.Search(len(set), func(i int) bool { return set[i].Hi >= p })
	return i < len(set) && set[i].Contains(p)
}

// Size returns the total number of intervals stored, the labeling's space
// metric.
func (l *Labeling) Size() int {
	n := 0
	for _, s := range l.Sets {
		n += len(s)
	}
	return n
}
