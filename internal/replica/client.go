package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"reachac/internal/wal"
)

// Client errors a follower dispatches on. Transport failures pass through
// unwrapped and are retried; these sentinels carry protocol meaning.
var (
	// ErrEpochConflict: the leader answers under a different epoch than the
	// cursor carries. The follower re-reads the manifest and either adopts a
	// higher epoch or hard-stops on a regression.
	ErrEpochConflict = errors.New("replica: leader epoch conflict")
	// ErrAhead: the follower's cursor is past the leader's durable
	// position — divergence (a rolled-back leader), never retried.
	ErrAhead = errors.New("replica: follower cursor is ahead of the leader")
	// ErrGone: the cursor's segment was compacted away; the follower must
	// re-bootstrap from the leader's checkpoint.
	ErrGone = errors.New("replica: segment compacted away on the leader")
	// ErrMisdelivery: a response's echoed cursor does not match the request
	// (a duplicated, reordered or misrouted delivery); retried.
	ErrMisdelivery = errors.New("replica: delivery does not match the requested cursor")
)

// TailChunk is one verified-framing-pending delivery from the tail endpoint.
type TailChunk struct {
	Epoch uint64
	// Seq and Off echo the request cursor; Data holds the frame bytes from
	// that position (nil after an empty long-poll).
	Seq  uint64
	Off  int64
	Data []byte
	// Sealed reports that Data reaches the end of a sealed segment: the
	// next cursor is (Seq+1, 0).
	Sealed bool
	// LeaderSeq and LeaderOff are the leader's durable position, the lag
	// reference the follower surfaces.
	LeaderSeq uint64
	LeaderOff int64
}

// Client fetches replication data from one leader.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the leader at addr ("host:port" or a full
// http URL).
func NewClient(addr string, hc *http.Client) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(addr, "/"), http: hc}
}

// Base returns the normalized leader URL.
func (c *Client) Base() string { return c.base }

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.http.Do(req)
}

// Manifest fetches the leader's replication manifest.
func (c *Client) Manifest(ctx context.Context) (Manifest, error) {
	var m Manifest
	resp, err := c.get(ctx, PathManifest)
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("replica: manifest: leader answered %s", resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return m, fmt.Errorf("replica: manifest: %w", err)
	}
	return m, nil
}

// Checkpoint downloads the raw checkpoint file covering segment seq.
func (c *Client) Checkpoint(ctx context.Context, seq uint64) ([]byte, error) {
	resp, err := c.get(ctx, fmt.Sprintf("%s?checkpoint=%d", PathSegments, seq))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrGone
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: checkpoint %d: leader answered %s", seq, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Tail performs one long-poll at the given cursor. It returns a chunk whose
// echoed cursor it has already checked against the request — ErrMisdelivery
// otherwise — or a protocol sentinel. The chunk's Data is raw frame bytes
// the caller must still verify (CRC + chain) before trusting.
func (c *Client) Tail(ctx context.Context, epoch, seq uint64, off int64, wait time.Duration) (TailChunk, error) {
	var ch TailChunk
	resp, err := c.get(ctx, fmt.Sprintf("%s?epoch=%d&seq=%d&off=%d&wait=%d",
		PathTail, epoch, seq, off, wait.Milliseconds()))
	if err != nil {
		return ch, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
	case http.StatusConflict:
		if resp.Header.Get(hdrConflict) == "ahead" {
			return ch, ErrAhead
		}
		return ch, ErrEpochConflict
	case http.StatusNotFound:
		return ch, ErrGone
	default:
		return ch, fmt.Errorf("replica: tail: leader answered %s", resp.Status)
	}
	if ch.Epoch, err = headerUint(resp, hdrEpoch); err != nil {
		return ch, err
	}
	if ch.Seq, err = headerUint(resp, hdrSeq); err != nil {
		return ch, err
	}
	o, err := headerUint(resp, hdrOff)
	if err != nil {
		return ch, err
	}
	ch.Off = int64(o)
	ch.Sealed = resp.Header.Get(hdrSealed) == "1"
	if ch.LeaderSeq, err = headerUint(resp, hdrDurableSeq); err != nil {
		return ch, err
	}
	lo, err := headerUint(resp, hdrDurableOff)
	if err != nil {
		return ch, err
	}
	ch.LeaderOff = int64(lo)
	if ch.Epoch != epoch || ch.Seq != seq || ch.Off != off {
		return ch, fmt.Errorf("%w: asked (epoch %d, seq %d, off %d), delivery labeled (epoch %d, seq %d, off %d)",
			ErrMisdelivery, epoch, seq, off, ch.Epoch, ch.Seq, ch.Off)
	}
	if resp.StatusCode == http.StatusOK {
		// A chunk is ~maxChunk, except when a single record group is bigger
		// (the source always ships at least one whole frame).
		if ch.Data, err = io.ReadAll(io.LimitReader(resp.Body, wal.MaxRecordSize+maxChunk)); err != nil {
			return ch, err
		}
	}
	return ch, nil
}

func headerUint(resp *http.Response, name string) (uint64, error) {
	v, err := strconv.ParseUint(resp.Header.Get(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: response missing or malformed %s header: %w", name, err)
	}
	return v, nil
}
