package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"reachac/internal/wal"
)

// Config configures a follower.
type Config struct {
	// Dir is the follower's own log directory: a byte-identical mirror of
	// the leader's segment prefix, locked and recovered exactly like a
	// leader directory (which is what makes promotion an ordinary restart).
	Dir string
	// Leader is the leader's address ("host:port" or http URL).
	Leader string
	// HTTP overrides the transport (tests inject fault proxies).
	HTTP *http.Client
	// Wait is the tail long-poll duration (default 2s); RetryMin/RetryMax
	// bound the exponential backoff after transient failures (default
	// 50ms/2s).
	Wait     time.Duration
	RetryMin time.Duration
	RetryMax time.Duration
}

// Status is a follower's point-in-time replication state, the staleness
// bound the serving layer surfaces.
type Status struct {
	// Leader is the normalized leader URL; Epoch the leadership epoch the
	// follower is applying.
	Leader string `json:"leader"`
	Epoch  uint64 `json:"epoch"`
	// Connected reports the last leader exchange succeeded. Err holds the
	// current failure (transient while Connected flaps, permanent once
	// Halted).
	Connected bool   `json:"connected"`
	Err       string `json:"err,omitempty"`
	// Halted reports replication stopped for a reason retrying cannot fix
	// (epoch regression, divergence, tamper); reads keep serving.
	Halted bool `json:"halted"`
	// AppliedSeq/AppliedOff is the cursor: every leader byte before it has
	// been verified, persisted and applied. Groups counts applied record
	// groups since open.
	AppliedSeq uint64 `json:"applied_seq"`
	AppliedOff int64  `json:"applied_off"`
	Groups     uint64 `json:"groups"`
	// LeaderSeq/LeaderOff is the leader's durable position at last contact:
	// the applied-offset lag is the cursor distance to it.
	LeaderSeq uint64 `json:"leader_seq"`
	LeaderOff int64  `json:"leader_off"`
	// LastContact is the last successful leader exchange, LastApplied the
	// last applied group; their distance to now is the wall-clock staleness
	// bound.
	LastContact time.Time `json:"last_contact"`
	LastApplied time.Time `json:"last_applied,omitempty"`
}

// LagBytes reports the applied-to-leader byte lag: exact within one segment,
// and a lower bound (the leader's live-segment fill) when the follower is
// segments behind.
func (st Status) LagBytes() int64 {
	if st.LeaderSeq == st.AppliedSeq {
		return max(st.LeaderOff-st.AppliedOff, 0)
	}
	if st.LeaderSeq > st.AppliedSeq {
		return st.LeaderOff
	}
	return 0
}

// Follower mirrors a leader's WAL into its own directory and applies each
// verified record group through a callback. Reads are the caller's business
// (the facade serves its usual snapshots); the follower only moves bytes and
// state forward — and never poisons reads: every failure mode ends in stale
// serving with the staleness surfaced, not an error-latched network.
type Follower struct {
	cfg    Config
	client *Client
	lock   *os.File

	mu    sync.Mutex
	st    Status
	chain wal.Chain
	f     *os.File // current local segment, open for append

	apply  func([]wal.Op) error
	cancel context.CancelFunc
	done   chan struct{}
	closed bool
}

// Open locks and recovers the follower's directory, bootstraps from the
// leader's checkpoint when the local state is missing or compacted past, and
// returns the follower plus the recovered state the caller builds its
// serving network from. Replication does not start until Start.
func Open(cfg Config) (*Follower, wal.Recovered, error) {
	if cfg.Wait <= 0 {
		cfg.Wait = 2 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	var rec wal.Recovered
	lock, err := wal.LockDir(cfg.Dir)
	if err != nil {
		return nil, rec, err
	}
	fail := func(err error) (*Follower, wal.Recovered, error) {
		lock.Close()
		return nil, rec, err
	}
	client := NewClient(cfg.Leader, cfg.HTTP)
	ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
	defer stop()
	man, err := client.Manifest(ctx)
	if err != nil {
		return fail(fmt.Errorf("replica: leader unreachable at open: %w", err))
	}
	// Persist the observed epoch before applying anything under it, and
	// refuse a leader older than one this directory already followed.
	known, err := ReadEpoch(cfg.Dir)
	if err != nil {
		return fail(err)
	}
	if man.Epoch < known {
		return fail(fmt.Errorf("replica: leader epoch %d regressed behind observed epoch %d", man.Epoch, known))
	}
	if err := WriteEpoch(cfg.Dir, man.Epoch); err != nil {
		return fail(err)
	}
	rec, err = wal.Recover(cfg.Dir)
	if err != nil {
		return fail(err)
	}
	if rec.TailSeq <= man.CheckpointSeq {
		// The segment the local state needs next was compacted away on the
		// leader: restart the mirror from the leader's checkpoint.
		if rec, err = bootstrap(cfg.Dir, client, man.CheckpointSeq); err != nil {
			return fail(err)
		}
	}
	if rec.TailSeq > man.DurableSeq || (rec.TailSeq == man.DurableSeq && rec.TailSize > man.DurableOff) {
		return fail(fmt.Errorf("replica: local state (segment %d, offset %d) is ahead of the leader's durable position (%d, %d) — diverged history",
			rec.TailSeq, rec.TailSize, man.DurableSeq, man.DurableOff))
	}
	f, err := os.OpenFile(wal.SegmentFile(cfg.Dir, rec.TailSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(err)
	}
	if err := syncDir(cfg.Dir); err != nil {
		f.Close()
		return fail(err)
	}
	fo := &Follower{
		cfg:    cfg,
		client: client,
		lock:   lock,
		chain:  rec.Chain,
		f:      f,
		st: Status{
			Leader:      client.Base(),
			Epoch:       man.Epoch,
			Connected:   true,
			AppliedSeq:  rec.TailSeq,
			AppliedOff:  rec.TailSize,
			LeaderSeq:   man.DurableSeq,
			LeaderOff:   man.DurableOff,
			LastContact: time.Now(),
		},
	}
	return fo, rec, nil
}

// bootstrap wipes the local mirror and restarts it from the leader's
// checkpoint covering ckptSeq, returning the recovered state.
func bootstrap(dir string, client *Client, ckptSeq uint64) (wal.Recovered, error) {
	var rec wal.Recovered
	ctx, stop := context.WithTimeout(context.Background(), 60*time.Second)
	defer stop()
	data, err := client.Checkpoint(ctx, ckptSeq)
	if err != nil {
		return rec, fmt.Errorf("replica: bootstrap checkpoint %d: %w", ckptSeq, err)
	}
	segs, ckpts, err := wal.ListDir(dir)
	if err != nil {
		return rec, err
	}
	for _, seq := range segs {
		if err := os.Remove(wal.SegmentFile(dir, seq)); err != nil {
			return rec, err
		}
	}
	for _, seq := range ckpts {
		if err := os.Remove(wal.CheckpointFile(dir, seq)); err != nil {
			return rec, err
		}
	}
	tmp := wal.CheckpointFile(dir, ckptSeq) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return rec, err
	}
	if err := os.Rename(tmp, wal.CheckpointFile(dir, ckptSeq)); err != nil {
		os.Remove(tmp)
		return rec, err
	}
	// Recovery demands the segment after the checkpoint exist; the mirror of
	// its bytes arrives through the tail, starting at offset 0.
	next, err := os.OpenFile(wal.SegmentFile(dir, ckptSeq+1), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return rec, err
	}
	if err := next.Close(); err != nil {
		return rec, err
	}
	if err := syncDir(dir); err != nil {
		return rec, err
	}
	rec, err = wal.Recover(dir)
	if err != nil {
		return rec, fmt.Errorf("replica: recovering bootstrapped checkpoint: %w", err)
	}
	return rec, nil
}

// Start launches the tail loop; apply is called with each verified record
// group, in order, exactly once per group across the follower's lifetime
// (restarts replay from the local mirror instead).
func (f *Follower) Start(apply func([]wal.Op) error) {
	f.apply = apply
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
}

// Status returns the current replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Close stops the tail loop, closes the local segment and releases the
// directory lock. Idempotent.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	if f.cancel != nil {
		f.cancel()
		<-f.done
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	if f.f != nil {
		err = f.f.Close()
		f.f = nil
	}
	if cerr := f.lock.Close(); err == nil {
		err = cerr
	}
	return err
}

// run is the tail loop: poll, verify, persist, apply, advance — forever,
// with backoff on transient failures and a hard stop (stale serving, status
// surfaced) on non-retryable ones.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := f.cfg.RetryMin
	for ctx.Err() == nil {
		f.mu.Lock()
		epoch, seq, off := f.st.Epoch, f.st.AppliedSeq, f.st.AppliedOff
		f.mu.Unlock()
		chunk, err := f.client.Tail(ctx, epoch, seq, off, f.cfg.Wait)
		switch {
		case err == nil:
			backoff = f.cfg.RetryMin
			if !f.ingest(chunk) {
				return
			}
			continue
		case ctx.Err() != nil:
			return
		case errors.Is(err, ErrEpochConflict):
			if !f.adoptEpoch(ctx) {
				return
			}
			continue
		case errors.Is(err, ErrAhead):
			f.halt(fmt.Errorf("leader lost history the follower already applied: %w", err))
			return
		case errors.Is(err, ErrGone):
			f.halt(fmt.Errorf("leader compacted past the follower's cursor (reopen the follower to re-bootstrap): %w", err))
			return
		default:
			// Transient: a dead connection, a misdelivery, a 5xx. Degrade to
			// stale serving, surface the error, retry with backoff.
			f.transient(err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			backoff = min(backoff*2, f.cfg.RetryMax)
		}
	}
}

// ingest verifies, persists and applies one delivery. It returns false when
// replication must stop (halt already recorded).
func (f *Follower) ingest(chunk TailChunk) bool {
	f.mu.Lock()
	chain := f.chain
	file := f.f
	f.mu.Unlock()

	consumed := int64(0)
	var groups [][]wal.Op
	var next wal.Chain
	if len(chunk.Data) > 0 {
		var err error
		groups, consumed, next, err = wal.ScanChained(chunk.Data, chain)
		if err != nil {
			// A CRC-valid record with a broken chain link: tampered or
			// diverged bytes. Nothing at or past it was applied.
			f.halt(fmt.Errorf("shipped bytes failed chain verification at cursor (%d,%d): %w",
				chunk.Seq, chunk.Off+consumed, err))
			return false
		}
		if consumed == 0 {
			// Every frame torn: a mangled delivery. Re-poll; the leader
			// re-serves from the same cursor.
			f.transient(fmt.Errorf("delivery at cursor (%d,%d) held no complete frame (%d bytes)",
				chunk.Seq, chunk.Off, len(chunk.Data)))
			return true
		}
		// Persist before apply: after a crash, local recovery replays
		// exactly what was applied (or more), never less.
		if _, err := file.Write(chunk.Data[:consumed]); err != nil {
			f.halt(fmt.Errorf("persisting shipped bytes: %w", err))
			return false
		}
		if err := file.Sync(); err != nil {
			f.halt(fmt.Errorf("fsyncing shipped bytes: %w", err))
			return false
		}
		for _, g := range groups {
			if err := f.apply(g); err != nil {
				f.halt(fmt.Errorf("applying replicated group: %w", err))
				return false
			}
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	f.st.Connected, f.st.Err = true, ""
	f.st.LastContact = now
	f.st.LeaderSeq, f.st.LeaderOff = chunk.LeaderSeq, chunk.LeaderOff
	if consumed > 0 {
		f.chain = next
		f.st.AppliedOff += consumed
		f.st.Groups += uint64(len(groups))
		f.st.LastApplied = now
	}
	if chunk.Sealed && consumed == int64(len(chunk.Data)) {
		// The mirrored segment is complete: roll to the next one, exactly
		// like the leader's rotation.
		if err := f.rollLocked(); err != nil {
			f.haltLocked(err)
			return false
		}
	}
	return true
}

// rollLocked closes the completed local segment and opens the next. Callers
// hold f.mu.
func (f *Follower) rollLocked() error {
	if err := f.f.Close(); err != nil {
		return err
	}
	f.st.AppliedSeq++
	f.st.AppliedOff = 0
	nf, err := os.OpenFile(wal.SegmentFile(f.cfg.Dir, f.st.AppliedSeq),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	f.f = nf
	return syncDir(f.cfg.Dir)
}

// adoptEpoch re-reads the manifest after an epoch conflict: a higher epoch
// (leader restart or promotion over the same history) is adopted and
// persisted; a lower one is a regression and halts replication. Returns
// false when replication must stop.
func (f *Follower) adoptEpoch(ctx context.Context) bool {
	man, err := f.client.Manifest(ctx)
	if err != nil {
		f.transient(err)
		return true
	}
	f.mu.Lock()
	known := f.st.Epoch
	f.mu.Unlock()
	if man.Epoch < known {
		f.halt(fmt.Errorf("leader epoch regressed from %d to %d", known, man.Epoch))
		return false
	}
	if err := WriteEpoch(f.cfg.Dir, man.Epoch); err != nil {
		f.halt(fmt.Errorf("persisting adopted epoch %d: %w", man.Epoch, err))
		return false
	}
	f.mu.Lock()
	f.st.Epoch = man.Epoch
	f.st.LastContact = time.Now()
	f.mu.Unlock()
	return true
}

// transient records a retryable failure: disconnected, error surfaced,
// reads keep serving the last applied state.
func (f *Follower) transient(err error) {
	f.mu.Lock()
	f.st.Connected = false
	f.st.Err = err.Error()
	f.mu.Unlock()
}

func (f *Follower) halt(err error) {
	f.mu.Lock()
	f.haltLocked(err)
	f.mu.Unlock()
}

// haltLocked records a non-retryable stop. Callers hold f.mu.
func (f *Follower) haltLocked(err error) {
	f.st.Connected = false
	f.st.Halted = true
	f.st.Err = err.Error()
}
