// Package replica implements WAL shipping: a leader serves its write-ahead
// log — sealed segments plus the live, fsynced tail — over three HTTP
// endpoints, and a follower mirrors those bytes into its own directory,
// verifying every delivery's CRC framing and tamper-evidence chain before
// applying it to its serving state.
//
// The protocol is pull-based and cursor-addressed. A follower holds a cursor
// (epoch, segment seq, byte offset) and long-polls
//
//	GET /v1/repl/tail?epoch=E&seq=N&off=O&wait=MS
//
// which answers with the frame-aligned durable bytes of segment N from
// offset O (200, raw body), nothing yet (204 after the wait), or a conflict:
// 409 when the epochs disagree or the follower is ahead of the leader's
// durable position, 404 when segment N was compacted away. Every response
// echoes the request cursor plus the leader's durable position in headers,
// so a duplicated, reordered or misdirected delivery is detected by a plain
// header comparison before any byte is trusted — and a delivery whose
// headers lie is still caught by the chain link of its first record.
//
//	GET /v1/repl/manifest
//
// reports the leader's epoch, newest checkpoint and durable position;
//
//	GET /v1/repl/segments?checkpoint=N   (and ?seq=N for sealed segments)
//
// serves the raw files a follower bootstraps from.
//
// Epochs order leaderships. Every leader Open bumps the epoch file in its
// directory; a follower persists the highest epoch it has observed before
// applying anything from it and hard-rejects a leader whose epoch is lower —
// a stale leader cannot roll a replica back. Promotion is an ordinary leader
// restart on the replicated directory: the bump supersedes the dead leader.
//
// Only durable bytes are served. The leader's shipping frontier is its fsync
// frontier (see wal.DurablePos), so a leader crash never retracts bytes a
// follower applied, and the follower's local files stay byte-identical to
// the leader's prefix. The follower fsyncs shipped bytes before applying
// them, so its own recovery replays exactly what it acknowledged.
package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Replication endpoints, mounted by the serving layer on durable leaders.
const (
	PathManifest = "/v1/repl/manifest"
	PathSegments = "/v1/repl/segments"
	PathTail     = "/v1/repl/tail"
)

// Manifest describes a leader's replication state.
type Manifest struct {
	// Epoch is the leader's current leadership epoch.
	Epoch uint64 `json:"epoch"`
	// CheckpointSeq is the newest checkpoint's covered segment (0 = none);
	// OldestSeq the oldest segment still present. A follower whose cursor
	// fell behind OldestSeq must re-bootstrap from the checkpoint.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	OldestSeq     uint64 `json:"oldest_seq"`
	// DurableSeq and DurableOff are the leader's shipping frontier.
	DurableSeq uint64 `json:"durable_seq"`
	DurableOff int64  `json:"durable_off"`
	// Chain is the leader's current tamper-evidence head (hex).
	Chain string `json:"chain"`
}

// Response headers carrying the cursor echo and the leader position.
const (
	hdrEpoch      = "X-Repl-Epoch"
	hdrSeq        = "X-Repl-Seq"
	hdrOff        = "X-Repl-Off"
	hdrSealed     = "X-Repl-Sealed"
	hdrDurableSeq = "X-Repl-Durable-Seq"
	hdrDurableOff = "X-Repl-Durable-Off"
	hdrConflict   = "X-Repl-Conflict"
)

const epochFile = "epoch"

// ReadEpoch returns the leadership epoch recorded in dir (0 if none yet).
func ReadEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: malformed epoch file in %s: %w", dir, err)
	}
	return e, nil
}

// WriteEpoch durably records epoch in dir (write to temp, fsync, rename,
// fsync dir — the same discipline checkpoints use).
func WriteEpoch(dir string, epoch uint64) error {
	tmp := filepath.Join(dir, epochFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d\n", epoch); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, epochFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// BumpEpoch advances the directory's leadership epoch by one and returns the
// new value. Every leader Open calls it, so a promoted follower (or a plain
// restart) always outranks whatever leader wrote the directory before.
func BumpEpoch(dir string) (uint64, error) {
	e, err := ReadEpoch(dir)
	if err != nil {
		return 0, err
	}
	if err := WriteEpoch(dir, e+1); err != nil {
		return 0, err
	}
	return e + 1, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
