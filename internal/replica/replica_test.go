package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"reachac/internal/graph"
	"reachac/internal/wal"
)

// leader bundles a live wal.Log with its shipping source for tests.
type leader struct {
	dir   string
	log   *wal.Log
	src   *Source
	mux   *http.ServeMux
	srv   *httptest.Server
	seq   int // next test op ordinal
	epoch uint64
}

func newLeader(t *testing.T) *leader {
	t.Helper()
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	epoch, err := BumpEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(dir, epoch, l)
	mux := http.NewServeMux()
	src.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &leader{dir: dir, log: l, src: src, mux: mux, srv: srv, epoch: epoch}
}

// append writes n single-op groups, each adding one uniquely named node.
func (ld *leader) append(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		op := wal.GraphOp(graph.Delta{Op: graph.OpAddNode, Name: fmt.Sprintf("u%04d", ld.seq)})
		ld.seq++
		if err := ld.log.Append([]wal.Op{op}); err != nil {
			t.Fatal(err)
		}
	}
}

// recorder collects applied groups in order.
type recorder struct {
	mu    sync.Mutex
	names []string
}

func (r *recorder) apply(ops []wal.Op) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, op := range ops {
		if op.Delta != nil {
			r.names = append(r.names, op.Delta.Name)
		}
	}
	return nil
}

func (r *recorder) applied() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// startFollower opens and starts a follower against addr with fast retries.
func startFollower(t *testing.T, dir, addr string, hc *http.Client) (*Follower, *recorder) {
	t.Helper()
	f, _, err := Open(Config{
		Dir: dir, Leader: addr, HTTP: hc,
		Wait: 100 * time.Millisecond, RetryMin: 5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	rec := &recorder{}
	f.Start(rec.apply)
	return f, rec
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports the follower's cursor reaching the leader's durable pos.
func caughtUp(f *Follower, ld *leader) bool {
	dseq, doff := ld.log.DurablePos()
	st := f.Status()
	return st.AppliedSeq > dseq || (st.AppliedSeq == dseq && st.AppliedOff >= doff)
}

func TestManifest(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 3)
	c := NewClient(ld.srv.URL, nil)
	man, err := c.Manifest(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	dseq, doff := ld.log.DurablePos()
	if man.Epoch != ld.epoch || man.DurableSeq != dseq || man.DurableOff != doff {
		t.Fatalf("manifest %+v, want epoch %d durable (%d,%d)", man, ld.epoch, dseq, doff)
	}
	if man.CheckpointSeq != 0 || man.Chain == "" {
		t.Fatalf("manifest %+v: want checkpoint 0 and a chain head", man)
	}
}

func TestSegmentsRefusesLiveSegment(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 2)
	resp, err := http.Get(ld.srv.URL + PathSegments + "?seq=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("live segment served with %d, want 409", resp.StatusCode)
	}
}

func TestFollowerMirrorsLeaderByteForByte(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 10)
	f, rec := startFollower(t, t.TempDir(), ld.srv.URL, nil)
	waitFor(t, "initial catch-up", func() bool { return caughtUp(f, ld) })

	ld.append(t, 7)
	waitFor(t, "tail catch-up", func() bool { return caughtUp(f, ld) })

	names := rec.applied()
	if len(names) != 17 {
		t.Fatalf("applied %d groups, want 17", len(names))
	}
	for i, name := range names {
		if want := fmt.Sprintf("u%04d", i); name != want {
			t.Fatalf("group %d applied %q, want %q (order must match the leader)", i, name, want)
		}
	}
	assertMirroredBytes(t, ld.dir, f.cfg.Dir, 1)

	st := f.Status()
	if !st.Connected || st.Halted || st.Err != "" {
		t.Fatalf("healthy follower status %+v", st)
	}
	if st.LagBytes() != 0 {
		t.Fatalf("caught-up follower lags %d bytes", st.LagBytes())
	}
}

// assertMirroredBytes compares segment seq byte-for-byte across directories.
func assertMirroredBytes(t *testing.T, leaderDir, followerDir string, seq uint64) {
	t.Helper()
	want, err := os.ReadFile(wal.SegmentFile(leaderDir, seq))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(wal.SegmentFile(followerDir, seq))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("segment %d: follower holds %d bytes, leader %d; mirrors must be byte-identical",
			seq, len(got), len(want))
	}
}

func TestFollowerRestartResumesFromLocalBytes(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 6)
	fdir := t.TempDir()
	f, rec := startFollower(t, fdir, ld.srv.URL, nil)
	waitFor(t, "first catch-up", func() bool { return caughtUp(f, ld) })
	firstApplied := len(rec.applied())
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ld.append(t, 5)
	f2, rec2 := startFollower(t, fdir, ld.srv.URL, nil)
	waitFor(t, "resume catch-up", func() bool { return caughtUp(f2, ld) })
	// The restart replays local bytes into its own recovery, then tails only
	// the new records: apply sees each group exactly once per process.
	if got := len(rec2.applied()); got != 11-firstApplied {
		t.Fatalf("restarted follower applied %d new groups, want %d", got, 11-firstApplied)
	}
	assertMirroredBytes(t, ld.dir, fdir, 1)
}

func TestFollowerBootstrapsFromCheckpoint(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 5)
	covered, err := ld.log.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(ld.dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.log.WriteCheckpoint(covered, rec.Graph, rec.Store); err != nil {
		t.Fatal(err)
	}
	ld.append(t, 4)

	f, frec := startFollower(t, t.TempDir(), ld.srv.URL, nil)
	waitFor(t, "bootstrap catch-up", func() bool { return caughtUp(f, ld) })
	// Only post-checkpoint groups flow through apply; the checkpointed five
	// arrive via the downloaded snapshot.
	if got := frec.applied(); len(got) != 4 || got[0] != "u0005" {
		t.Fatalf("post-bootstrap applied %v, want exactly u0005..u0008", got)
	}
	st := f.Status()
	if st.AppliedSeq != 2 {
		t.Fatalf("bootstrapped follower at segment %d, want 2", st.AppliedSeq)
	}
	assertMirroredBytes(t, ld.dir, f.cfg.Dir, 2)
}

// --- fault injection ------------------------------------------------------

// chaosProxy sits between follower and leader, recording each upstream
// response and letting a mutator rewrite it before delivery.
type chaosProxy struct {
	inner http.Handler
	mu    sync.Mutex
	// mutate rewrites one recorded response; nil passes through. Called
	// under mu, so mutators may keep state without their own locking.
	mutate func(r *http.Request, rec *httptest.ResponseRecorder) *httptest.ResponseRecorder
}

func (p *chaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	inner := p.inner
	p.mu.Unlock()
	rec := httptest.NewRecorder()
	inner.ServeHTTP(rec, r)
	p.mu.Lock()
	if p.mutate != nil {
		rec = p.mutate(r, rec)
	}
	p.mu.Unlock()
	for k, vs := range rec.Header() {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	w.Write(rec.Body.Bytes())
}

func (p *chaosProxy) setMutate(m func(*http.Request, *httptest.ResponseRecorder) *httptest.ResponseRecorder) {
	p.mu.Lock()
	p.mutate = m
	p.mu.Unlock()
}

func (p *chaosProxy) setInner(h http.Handler) {
	p.mu.Lock()
	p.inner = h
	p.mu.Unlock()
}

func newChaos(t *testing.T, ld *leader) (*chaosProxy, *httptest.Server) {
	t.Helper()
	p := &chaosProxy{inner: ld.mux}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func isTail(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, PathTail) }

// TestFollowerSurvivesTruncatedDeliveries cycles a different truncation
// point through every tail response — including cuts inside frame headers
// and payloads — and asserts the follower converges to the exact leader
// state anyway, applying every group exactly once.
func TestFollowerSurvivesTruncatedDeliveries(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 12)
	p, srv := newChaos(t, ld)
	cut := 0
	p.setMutate(func(r *http.Request, rec *httptest.ResponseRecorder) *httptest.ResponseRecorder {
		if !isTail(r) || rec.Code != http.StatusOK || rec.Body.Len() == 0 {
			return rec
		}
		// Truncate to a different length every delivery: 0, 1, 2, ... bytes.
		// The headers still promise the full chunk, exactly like a torn
		// connection mid-body.
		n := cut % (rec.Body.Len() + 1)
		cut += 7 // stride through byte positions, hitting header and payload cuts
		rec.Body.Truncate(n)
		return rec
	})
	f, rec := startFollower(t, t.TempDir(), srv.URL, nil)
	waitFor(t, "convergence through truncated deliveries", func() bool { return caughtUp(f, ld) })
	if names := rec.applied(); len(names) != 12 {
		t.Fatalf("applied %d groups, want 12 exactly (no loss, no duplication)", len(names))
	}
	assertMirroredBytes(t, ld.dir, f.cfg.Dir, 1)
	if st := f.Status(); st.Halted {
		t.Fatalf("truncation must be retried, not fatal: %+v", st)
	}
}

// TestFollowerRejectsDuplicatedDeliveries replays a stale recorded response
// for every other tail poll: the cursor echo exposes the duplicate, the
// follower retries, and no group applies twice.
func TestFollowerRejectsDuplicatedDeliveries(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 9)
	p, srv := newChaos(t, ld)
	var last *httptest.ResponseRecorder
	flip := false
	p.setMutate(func(r *http.Request, rec *httptest.ResponseRecorder) *httptest.ResponseRecorder {
		if !isTail(r) || rec.Code != http.StatusOK {
			return rec
		}
		prev := last
		last = rec
		flip = !flip
		if flip && prev != nil {
			return prev // duplicated delivery of the previous chunk
		}
		return rec
	})
	f, rec := startFollower(t, t.TempDir(), srv.URL, nil)
	waitFor(t, "convergence through duplicated deliveries", func() bool { return caughtUp(f, ld) })
	names := rec.applied()
	if len(names) != 9 {
		t.Fatalf("applied %d groups, want 9 exactly — a duplicate slipped through", len(names))
	}
	for i, name := range names {
		if want := fmt.Sprintf("u%04d", i); name != want {
			t.Fatalf("group %d applied %q, want %q", i, name, want)
		}
	}
}

// TestFollowerRejectsReorderedDelivery serves bytes from a later offset
// under the requested cursor's headers — a reordering the echo cannot catch.
// The chain link of the first skipped-past record must catch it instead, and
// nothing out of order may apply.
func TestFollowerRejectsReorderedDelivery(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 6)
	offs, err := wal.RecordOffsets(wal.SegmentFile(ld.dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := os.ReadFile(wal.SegmentFile(ld.dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	p, srv := newChaos(t, ld)
	attacked := false
	p.setMutate(func(r *http.Request, rec *httptest.ResponseRecorder) *httptest.ResponseRecorder {
		if !isTail(r) || rec.Code != http.StatusOK || attacked {
			return rec
		}
		attacked = true
		// Honest headers for cursor (1,0), body from record 2 onward: frames
		// delivered out of order.
		rec.Body.Reset()
		rec.Body.Write(seg[offs[1]:])
		return rec
	})
	f, rec := startFollower(t, t.TempDir(), srv.URL, nil)
	waitFor(t, "halt on reordered delivery", func() bool { return f.Status().Halted })
	if names := rec.applied(); len(names) != 0 {
		t.Fatalf("out-of-order delivery applied %v; must apply nothing", names)
	}
	st := f.Status()
	if !strings.Contains(st.Err, "chain") {
		t.Fatalf("halt reason %q, want a chain verification failure", st.Err)
	}
}

// TestFollowerRetriesCorruptDelivery flips one payload byte in the first
// shipped chunk. CRC framing rejects it as torn, the follower retries, the
// healed retry applies — and the corrupt version never did.
func TestFollowerRetriesCorruptDelivery(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 5)
	p, srv := newChaos(t, ld)
	corrupted := false
	p.setMutate(func(r *http.Request, rec *httptest.ResponseRecorder) *httptest.ResponseRecorder {
		if !isTail(r) || rec.Code != http.StatusOK || corrupted || rec.Body.Len() < 16 {
			return rec
		}
		corrupted = true
		b := rec.Body.Bytes()
		b[12] ^= 0xff // inside the first frame's payload
		return rec
	})
	f, rec := startFollower(t, t.TempDir(), srv.URL, nil)
	waitFor(t, "convergence after corrupt delivery", func() bool { return caughtUp(f, ld) })
	if !corrupted {
		t.Fatal("the corruptor never fired")
	}
	if names := rec.applied(); len(names) != 5 || names[0] != "u0000" {
		t.Fatalf("applied %v, want exactly u0000..u0004", names)
	}
	if st := f.Status(); st.Halted {
		t.Fatalf("corruption of an unverified delivery must retry, not halt: %+v", st)
	}
	assertMirroredBytes(t, ld.dir, f.cfg.Dir, 1)
}

// TestFollowerRejectsEpochRegressionAtOpen refuses to follow a leader whose
// epoch is lower than one this directory already followed.
func TestFollowerRejectsEpochRegressionAtOpen(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 3)
	fdir := t.TempDir()
	f, _ := startFollower(t, fdir, ld.srv.URL, nil)
	waitFor(t, "catch-up", func() bool { return caughtUp(f, ld) })
	f.Close()

	// The directory observed epoch 1; a "leader" at epoch 0 must be refused.
	if err := WriteEpoch(fdir, ld.epoch+5); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Config{Dir: fdir, Leader: ld.srv.URL})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("open against a regressed-epoch leader: %v, want epoch regression error", err)
	}
}

// TestFollowerHaltsOnEpochRegressionMidStream swaps in a lower-epoch leader
// while the follower runs (a resurrected pre-failover leader): the tail
// conflicts, the manifest confirms the regression, and the follower freezes
// rather than apply anything from it.
func TestFollowerHaltsOnEpochRegressionMidStream(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 4)
	p, srv := newChaos(t, ld)
	f, rec := startFollower(t, t.TempDir(), srv.URL, nil)
	waitFor(t, "catch-up", func() bool { return caughtUp(f, ld) })
	applied := len(rec.applied())

	// A stale leader at epoch 0 (ours is 1): conflicts every tail, confirms
	// the lower epoch on the manifest.
	stale := http.NewServeMux()
	stale.HandleFunc("GET "+PathManifest, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"epoch":0,"checkpoint_seq":0,"oldest_seq":1,"durable_seq":9,"durable_off":0,"chain":""}`)
	})
	stale.HandleFunc("GET "+PathTail, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(hdrConflict, "epoch")
		w.Header().Set(hdrEpoch, "0")
		http.Error(w, "stale epoch", http.StatusConflict)
	})
	p.setInner(stale)

	waitFor(t, "halt on epoch regression", func() bool { return f.Status().Halted })
	st := f.Status()
	if !strings.Contains(st.Err, "regressed") {
		t.Fatalf("halt reason %q, want an epoch regression", st.Err)
	}
	if got := len(rec.applied()); got != applied {
		t.Fatalf("applied %d groups after the regression, had %d before — nothing may apply", got, applied)
	}
	// The halted follower keeps its cursor: reads serve the last good state.
	if st.AppliedSeq != 1 || st.AppliedOff == 0 {
		t.Fatalf("halted follower lost its cursor: %+v", st)
	}
}

// TestFollowerAdoptsHigherEpoch restarts the leader (epoch bump, same
// history): the follower must adopt the new epoch and keep applying.
func TestFollowerAdoptsHigherEpoch(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 3)
	p, srv := newChaos(t, ld)
	f, rec := startFollower(t, t.TempDir(), srv.URL, nil)
	waitFor(t, "catch-up", func() bool { return caughtUp(f, ld) })

	// "Restart" the leader: bump its epoch and serve under a new Source.
	epoch2, err := BumpEpoch(ld.dir)
	if err != nil {
		t.Fatal(err)
	}
	mux2 := http.NewServeMux()
	NewSource(ld.dir, epoch2, ld.log).Register(mux2)
	p.setInner(mux2)

	ld.append(t, 4)
	waitFor(t, "catch-up under the new epoch", func() bool {
		return f.Status().Epoch == epoch2 && caughtUp(f, ld)
	})
	if names := rec.applied(); len(names) != 7 {
		t.Fatalf("applied %d groups across the epoch bump, want 7", len(names))
	}
	if st := f.Status(); st.Halted {
		t.Fatalf("an epoch advance is not a fault: %+v", st)
	}
}

// TestShippedPrefixAtEveryByteBoundary fetches the full shipped segment once
// and re-verifies it truncated at every byte: the chained scan must accept
// exactly the whole-group prefix and never error — the property that makes
// torn deliveries safely retryable at any cut point.
func TestShippedPrefixAtEveryByteBoundary(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 8)
	c := NewClient(ld.srv.URL, nil)
	chunk, err := c.Tail(t.Context(), ld.epoch, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	offs, err := wal.RecordOffsets(wal.SegmentFile(ld.dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(chunk.Data); cut++ {
		groups, valid, _, err := wal.ScanChained(chunk.Data[:cut], wal.Chain{})
		if err != nil {
			t.Fatalf("cut %d: %v (a truncated delivery must read as torn, never as corrupt)", cut, err)
		}
		wantGroups, wantValid := 0, int64(0)
		for i, end := range offs {
			if int64(cut) >= end {
				wantGroups, wantValid = i+1, end
			}
		}
		if len(groups) != wantGroups || valid != wantValid {
			t.Fatalf("cut %d: scanned %d groups to offset %d, want %d groups to %d",
				cut, len(groups), valid, wantGroups, wantValid)
		}
	}
}

func TestClientDetectsMisdeliveryHeaders(t *testing.T) {
	// A response whose echoed cursor disagrees with the request is rejected
	// before any byte is parsed.
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathTail, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(hdrEpoch, "1")
		w.Header().Set(hdrSeq, "1")
		w.Header().Set(hdrOff, "999") // request will carry off=0
		w.Header().Set(hdrSealed, "0")
		w.Header().Set(hdrDurableSeq, "1")
		w.Header().Set(hdrDurableOff, "1000")
		w.Write([]byte("junk"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := NewClient(srv.URL, nil)
	_, err := c.Tail(t.Context(), 1, 1, 0, 0)
	if !errors.Is(err, ErrMisdelivery) {
		t.Fatalf("mislabeled delivery returned %v, want ErrMisdelivery", err)
	}
}

// TestFollowerRollsAcrossSealedSegments drives the follower through two live
// segment rotations: each sealed delivery rolls its cursor to the next
// segment and the mirror stays byte-identical file for file.
func TestFollowerRollsAcrossSealedSegments(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 3)
	fdir := t.TempDir()
	f, rec := startFollower(t, fdir, ld.srv.URL, nil)
	waitFor(t, "segment 1 catch-up", func() bool { return caughtUp(f, ld) })

	// Seal segment 1 and keep writing; no checkpoint, so the sealed file
	// stays shippable.
	if _, err := ld.log.Rotate(); err != nil {
		t.Fatal(err)
	}
	ld.append(t, 4)
	waitFor(t, "segment 2 catch-up", func() bool { return caughtUp(f, ld) })
	if st := f.Status(); st.AppliedSeq != 2 || st.Halted {
		t.Fatalf("after first roll: %+v", st)
	}

	if _, err := ld.log.Rotate(); err != nil {
		t.Fatal(err)
	}
	ld.append(t, 2)
	waitFor(t, "segment 3 catch-up", func() bool { return caughtUp(f, ld) })
	st := f.Status()
	if st.AppliedSeq != 3 || st.Halted || st.Err != "" {
		t.Fatalf("after second roll: %+v", st)
	}
	if got := rec.applied(); len(got) != 9 {
		t.Fatalf("applied %d groups across three segments, want 9: %v", len(got), got)
	}
	if lag := st.LagBytes(); lag != 0 {
		t.Fatalf("caught-up follower reports %d lag bytes", lag)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		assertMirroredBytes(t, ld.dir, fdir, seq)
	}
}

// TestTailGoneAfterCompaction: once a checkpoint deletes a segment, a cursor
// inside it gets 404/ErrGone from every endpoint — re-bootstrap territory,
// never a silent skip.
func TestTailGoneAfterCompaction(t *testing.T) {
	ld := newLeader(t)
	ld.append(t, 3)
	covered, err := ld.log.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(ld.dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.log.WriteCheckpoint(covered, rec.Graph, rec.Store); err != nil {
		t.Fatal(err)
	}
	ld.append(t, 1)

	c := NewClient(ld.srv.URL, nil)
	ctx := context.Background()
	if _, err := c.Tail(ctx, ld.epoch, 1, 0, 0); !errors.Is(err, ErrGone) {
		t.Fatalf("tail into compacted segment: %v, want ErrGone", err)
	}
	if _, err := c.Checkpoint(ctx, 99); !errors.Is(err, ErrGone) {
		t.Fatalf("missing checkpoint download: %v, want ErrGone", err)
	}
	if got := ld.src.Epoch(); got != ld.epoch {
		t.Fatalf("Source.Epoch %d, want %d", got, ld.epoch)
	}
}

// TestLagBytes pins the lag gauge's three regimes.
func TestLagBytes(t *testing.T) {
	cases := []struct {
		name string
		st   Status
		want int64
	}{
		{"same segment", Status{AppliedSeq: 2, AppliedOff: 100, LeaderSeq: 2, LeaderOff: 340}, 240},
		{"caught up", Status{AppliedSeq: 2, AppliedOff: 340, LeaderSeq: 2, LeaderOff: 340}, 0},
		{"segments behind", Status{AppliedSeq: 1, AppliedOff: 900, LeaderSeq: 3, LeaderOff: 50}, 50},
		{"ahead (clamped)", Status{AppliedSeq: 2, AppliedOff: 400, LeaderSeq: 2, LeaderOff: 340}, 0},
		{"stale leader info", Status{AppliedSeq: 3, AppliedOff: 10, LeaderSeq: 2, LeaderOff: 340}, 0},
	}
	for _, c := range cases {
		if got := c.st.LagBytes(); got != c.want {
			t.Errorf("%s: LagBytes() = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestEpochFile covers the persisted-epoch edge cases: absent reads as zero,
// garbage is an error (not a silent restart at epoch 0), bumps are
// monotonic and durable.
func TestEpochFile(t *testing.T) {
	dir := t.TempDir()
	if e, err := ReadEpoch(dir); err != nil || e != 0 {
		t.Fatalf("absent epoch file: %d, %v", e, err)
	}
	if e, err := BumpEpoch(dir); err != nil || e != 1 {
		t.Fatalf("first bump: %d, %v", e, err)
	}
	if e, err := BumpEpoch(dir); err != nil || e != 2 {
		t.Fatalf("second bump: %d, %v", e, err)
	}
	if err := WriteEpoch(dir, 7); err != nil {
		t.Fatal(err)
	}
	if e, err := ReadEpoch(dir); err != nil || e != 7 {
		t.Fatalf("after WriteEpoch(7): %d, %v", e, err)
	}
	if err := os.WriteFile(filepath.Join(dir, epochFile), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpoch(dir); err == nil {
		t.Fatal("garbage epoch file read back without error")
	}
}
