package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"reachac/internal/wal"
)

// maxChunk bounds one tail response body; a lagging follower catches up in
// several round trips rather than one giant read.
const maxChunk = 1 << 20

// maxWait bounds one long-poll, so an abandoned connection is reclaimed.
const maxWait = 30 * time.Second

// Source serves a leader's log directory to followers. It reads segment
// files by path and the shipping frontier from the live wal.Log; it never
// writes, so it is safe beside the appending facade.
type Source struct {
	dir   string
	epoch uint64
	log   *wal.Log
	// staleObserver, when set, is told about every request that carries a
	// leadership epoch HIGHER than ours — proof that a newer leadership
	// exists and this leader should fence its writes.
	staleObserver func(epoch uint64)
}

// NewSource builds a Source over the leader's log directory, leadership
// epoch and live log.
func NewSource(dir string, epoch uint64, log *wal.Log) *Source {
	return &Source{dir: dir, epoch: epoch, log: log}
}

// Epoch returns the leadership epoch the source serves under.
func (s *Source) Epoch() uint64 { return s.epoch }

// OnStaleEpoch installs the higher-epoch observer. Call before Register;
// the handlers read the field without synchronization.
func (s *Source) OnStaleEpoch(fn func(epoch uint64)) { s.staleObserver = fn }

// Register mounts the replication endpoints on mux.
func (s *Source) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET "+PathManifest, s.handleManifest)
	mux.HandleFunc("GET "+PathSegments, s.handleSegments)
	mux.HandleFunc("GET "+PathTail, s.handleTail)
}

func (s *Source) manifest() Manifest {
	dseq, doff := s.log.DurablePos()
	chain := s.log.Chain()
	ckpt := s.log.CheckpointSeq()
	return Manifest{
		Epoch:         s.epoch,
		CheckpointSeq: ckpt,
		OldestSeq:     ckpt + 1,
		DurableSeq:    dseq,
		DurableOff:    doff,
		Chain:         fmt.Sprintf("%x", chain),
	}
}

func (s *Source) handleManifest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.manifest())
}

// handleSegments serves raw bootstrap files: ?checkpoint=N for the
// checkpoint covering segment N, ?seq=N for a sealed segment.
func (s *Source) handleSegments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var path string
	switch {
	case q.Get("checkpoint") != "":
		seq, err := strconv.ParseUint(q.Get("checkpoint"), 10, 64)
		if err != nil {
			http.Error(w, "bad checkpoint param", http.StatusBadRequest)
			return
		}
		path = wal.CheckpointFile(s.dir, seq)
	case q.Get("seq") != "":
		seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
		if err != nil {
			http.Error(w, "bad seq param", http.StatusBadRequest)
			return
		}
		if dseq, _ := s.log.DurablePos(); seq >= dseq {
			// The live segment is served by the tail endpoint, where the
			// durable boundary is respected.
			http.Error(w, "segment is not sealed", http.StatusConflict)
			return
		}
		path = wal.SegmentFile(s.dir, seq)
	default:
		http.Error(w, "need checkpoint or seq param", http.StatusBadRequest)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "no such file", http.StatusNotFound)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
	io.Copy(w, f)
}

// handleTail answers one long-poll: the durable bytes of the requested
// segment from the requested offset, or 204 when the wait expires with the
// follower already caught up.
func (s *Source) handleTail(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	epoch, err1 := strconv.ParseUint(q.Get("epoch"), 10, 64)
	seq, err2 := strconv.ParseUint(q.Get("seq"), 10, 64)
	off, err3 := strconv.ParseInt(q.Get("off"), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || off < 0 || seq == 0 {
		http.Error(w, "need epoch, seq and off params", http.StatusBadRequest)
		return
	}
	wait := time.Duration(0)
	if ws := q.Get("wait"); ws != "" {
		ms, err := strconv.ParseInt(ws, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad wait param", http.StatusBadRequest)
			return
		}
		wait = min(time.Duration(ms)*time.Millisecond, maxWait)
	}
	if epoch != s.epoch {
		if epoch > s.epoch && s.staleObserver != nil {
			s.staleObserver(epoch)
		}
		s.conflict(w, "epoch", fmt.Sprintf("leader epoch is %d, request carries %d", s.epoch, epoch))
		return
	}

	deadline := time.Now().Add(wait)
	for {
		dseq, doff := s.log.DurablePos()
		switch {
		case seq > dseq || (seq == dseq && off > doff):
			s.conflict(w, "ahead", fmt.Sprintf(
				"request cursor (%d,%d) is past the durable position (%d,%d)", seq, off, dseq, doff))
			return
		case seq < dseq:
			// A sealed, fully durable segment: serve to its end (or a chunk
			// of it), unless checkpointing already deleted it.
			fi, err := os.Stat(wal.SegmentFile(s.dir, seq))
			if err != nil {
				s.gone(w, seq)
				return
			}
			size := fi.Size()
			if off > size {
				s.conflict(w, "ahead", fmt.Sprintf(
					"request offset %d is past sealed segment %d's %d bytes", off, seq, size))
				return
			}
			s.serve(w, seq, off, size, true, dseq, doff)
			return
		case off < doff:
			// The live segment's durable prefix.
			s.serve(w, seq, off, doff, false, dseq, doff)
			return
		}
		// Caught up: wait for the frontier to advance, then re-evaluate.
		remain := time.Until(deadline)
		if remain <= 0 {
			s.writeCursor(w, seq, off, false, dseq, doff)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		watch := s.log.DurableWatch()
		if nseq, noff := s.log.DurablePos(); nseq != dseq || noff != doff {
			continue // advanced between the position read and the watch arm
		}
		t := time.NewTimer(remain)
		select {
		case <-watch:
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
		t.Stop()
	}
}

// serve answers with whole frames of segment seq from off toward limit:
// roughly maxChunk bytes, cut at a frame boundary (never mid-frame, so every
// delivery is independently verifiable), always at least one frame. sealed
// marks limit as the segment's final byte; the response's Sealed header is
// set only when the delivery reaches it.
func (s *Source) serve(w http.ResponseWriter, seq uint64, off, limit int64, sealed bool, dseq uint64, doff int64) {
	f, err := os.Open(wal.SegmentFile(s.dir, seq))
	if err != nil {
		s.gone(w, seq)
		return
	}
	defer f.Close()
	data, err := readFrames(f, off, limit)
	if err != nil {
		http.Error(w, fmt.Sprintf("reading segment %d: %v", seq, err), http.StatusInternalServerError)
		return
	}
	s.writeCursor(w, seq, off, sealed && off+int64(len(data)) == limit, dseq, doff)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// readFrames reads whole frames from off (a frame boundary, as every cursor
// is) up to limit (likewise), stopping at the last frame boundary within
// maxChunk — but always admitting the first frame, however large.
func readFrames(f *os.File, off, limit int64) ([]byte, error) {
	buf := make([]byte, min(limit-off, maxChunk))
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	end := int64(0) // last frame boundary found, relative to off
	for end+8 <= int64(len(buf)) {
		n := int64(binary.LittleEndian.Uint32(buf[end : end+4]))
		next := end + 8 + n
		if next > limit-off {
			return nil, fmt.Errorf("frame at offset %d overruns the durable boundary", off+end)
		}
		if next > int64(len(buf)) {
			if end == 0 {
				// The very first frame is larger than maxChunk: serve it whole.
				buf = make([]byte, next)
				if _, err := f.ReadAt(buf, off); err != nil {
					return nil, err
				}
				return buf, nil
			}
			break // cut before the frame that doesn't fit
		}
		end = next
	}
	return buf[:end], nil
}

func (s *Source) writeCursor(w http.ResponseWriter, seq uint64, off int64, sealed bool, dseq uint64, doff int64) {
	h := w.Header()
	h.Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
	h.Set(hdrSeq, strconv.FormatUint(seq, 10))
	h.Set(hdrOff, strconv.FormatInt(off, 10))
	if sealed {
		h.Set(hdrSealed, "1")
	} else {
		h.Set(hdrSealed, "0")
	}
	h.Set(hdrDurableSeq, strconv.FormatUint(dseq, 10))
	h.Set(hdrDurableOff, strconv.FormatInt(doff, 10))
}

func (s *Source) conflict(w http.ResponseWriter, kind, msg string) {
	w.Header().Set(hdrConflict, kind)
	w.Header().Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
	http.Error(w, msg, http.StatusConflict)
}

func (s *Source) gone(w http.ResponseWriter, seq uint64) {
	w.Header().Set(hdrEpoch, strconv.FormatUint(s.epoch, 10))
	http.Error(w, fmt.Sprintf("segment %d was compacted away", seq), http.StatusNotFound)
}
