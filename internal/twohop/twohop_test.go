package twohop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reachac/internal/digraph"
	"reachac/internal/linegraph"
	"reachac/internal/paperfix"
	"reachac/internal/scc"
)

func randomDigraph(rng *rand.Rand, n, m int) *digraph.D {
	d := digraph.New(n)
	for i := 0; i < m; i++ {
		d.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return d
}

func randomDAG(rng *rand.Rand, n, density int) *digraph.D {
	d := digraph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(density) == 0 {
				d.AddEdge(u, v)
			}
		}
	}
	return d
}

func checkCover(t *testing.T, d *digraph.D, c *Cover) {
	t.Helper()
	for u := 0; u < d.N(); u++ {
		set := d.ReachableSet(u)
		for v := 0; v < d.N(); v++ {
			want := set[v]
			if got := c.Reachable(u, v); got != want {
				t.Fatalf("cover Reachable(%d,%d) = %v, BFS says %v", u, v, got, want)
			}
		}
	}
}

func TestGreedyChain(t *testing.T) {
	d := digraph.New(6)
	for i := 0; i < 5; i++ {
		d.AddEdge(i, i+1)
	}
	c, err := Greedy(d)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, d, c)
}

func TestGreedyDiamondAndForest(t *testing.T) {
	d := digraph.New(7)
	d.AddEdge(0, 1)
	d.AddEdge(0, 2)
	d.AddEdge(1, 3)
	d.AddEdge(2, 3)
	d.AddEdge(4, 5) // separate component
	c, err := Greedy(d)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, d, c)
}

func TestGreedyRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		d := randomDAG(rng, 2+rng.Intn(20), 1+rng.Intn(4))
		c, err := Greedy(d)
		if err != nil {
			t.Fatal(err)
		}
		checkCover(t, d, c)
	}
}

func TestGreedyRejectsLarge(t *testing.T) {
	if _, err := Greedy(digraph.New(GreedyLimit + 1)); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestGreedyOnPaperLineDAG(t *testing.T) {
	g := paperfix.Graph()
	l := linegraph.Build(g, linegraph.Opts{})
	r := scc.Tarjan(l.D)
	dag := scc.Condense(l.D, r)
	c, err := Greedy(dag)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, dag, c)
	// The cover should be compact: no more centers than vertices, and far
	// fewer label entries than the |V|^2 closure.
	if c.NumCenters() > dag.N() {
		t.Fatalf("centers = %d > |V| = %d", c.NumCenters(), dag.N())
	}
	if c.Size() >= dag.N()*dag.N() {
		t.Fatalf("cover size %d not better than closure %d", c.Size(), dag.N()*dag.N())
	}
}

func TestPrunedChainCycleMix(t *testing.T) {
	// 0 <-> 1 cycle feeding a chain.
	d := digraph.New(5)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 4)
	checkCover(t, d, Pruned(d))
}

func TestPrunedRandomDigraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		d := randomDigraph(rng, n, rng.Intn(n*3))
		checkCover(t, d, Pruned(d))
	}
}

func TestPrunedQuick(t *testing.T) {
	f := func(seed int64, sz, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(sz)%30
		d := randomDigraph(rng, n, int(density)%(n*3+1))
		c := Pruned(d)
		for u := 0; u < n; u++ {
			set := d.ReachableSet(u)
			for v := 0; v < n; v++ {
				if c.Reachable(u, v) != set[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrunedLabelsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := randomDigraph(rng, 40, 100)
	c := Pruned(d)
	for v := 0; v < c.N(); v++ {
		for _, lbl := range [][]int32{c.InLabel(v), c.OutLabel(v)} {
			for i := 1; i < len(lbl); i++ {
				if lbl[i-1] >= lbl[i] {
					t.Fatalf("vertex %d labels unsorted: %v", v, lbl)
				}
			}
		}
	}
}

func TestPrunedSelfLabels(t *testing.T) {
	d := digraph.New(3)
	d.AddEdge(0, 1)
	c := Pruned(d)
	if !c.Reachable(2, 2) || !c.Reachable(0, 0) {
		t.Fatal("self reachability broken")
	}
	if c.Reachable(1, 0) {
		t.Fatal("phantom reverse reachability")
	}
}

func TestPrunedSmallerThanClosureOnSocialShape(t *testing.T) {
	// Preferential-attachment-ish DAG: later vertices attach to earlier,
	// popular ones. Pruned labels should be much smaller than n^2.
	rng := rand.New(rand.NewSource(44))
	n := 300
	d := digraph.New(n)
	for v := 1; v < n; v++ {
		for k := 0; k < 3; k++ {
			u := rng.Intn(v)
			d.AddEdge(u, v)
		}
	}
	c := Pruned(d)
	if c.Size() >= n*n/4 {
		t.Fatalf("pruned cover size %d too large (n^2 = %d)", c.Size(), n*n)
	}
	// Sample-check correctness.
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if c.Reachable(u, v) != d.Reachable(u, v) {
			t.Fatalf("sample (%d,%d) disagrees", u, v)
		}
	}
}

func TestCenterVertexMapping(t *testing.T) {
	d := digraph.New(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	c := Pruned(d)
	if c.NumCenters() != 4 {
		t.Fatalf("pruned centers = %d, want n", c.NumCenters())
	}
	seen := map[int]bool{}
	for r := int32(0); int(r) < c.NumCenters(); r++ {
		v := c.CenterVertex(r)
		if v < 0 || v >= 4 || seen[v] {
			t.Fatalf("CenterVertex(%d) = %d invalid", r, v)
		}
		seen[v] = true
	}
}

func TestGreedyAndPrunedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		d := randomDAG(rng, 2+rng.Intn(18), 2)
		gc, err := Greedy(d)
		if err != nil {
			t.Fatal(err)
		}
		pc := Pruned(d)
		for u := 0; u < d.N(); u++ {
			for v := 0; v < d.N(); v++ {
				if gc.Reachable(u, v) != pc.Reachable(u, v) {
					t.Fatalf("trial %d: greedy/pruned disagree at (%d,%d)", trial, u, v)
				}
			}
		}
	}
}
