// Package twohop computes 2-hop reachability covers (Definitions 5 and 6 of
// the paper): every vertex v receives labels Lin(v), Lout(v) ⊆ V such that
//
//	u ⇝ v   iff   Lout(u) ∩ Lin(v) ≠ ∅        (u ≠ v; u ⇝ u trivially)
//
// Two constructions are provided:
//
//   - Greedy: the set-cover-style greedy of Cohen et al. that Cheng et al.'s
//     MaxCardinality algorithm approximates — each round picks the center
//     whose ancestor×descendant rectangle covers the most uncovered
//     reachable pairs. It materializes the transitive closure, so it is
//     reserved for small graphs (the paper's worked example, tests).
//
//   - Pruned: pruned landmark labeling, a scalable 2-hop construction that
//     processes vertices in decreasing-degree order and runs pruned forward
//     and backward BFS from each. It preserves exactly the Definition-6
//     cover property and replaces the inner MaxCardinality machinery the
//     paper treats as a black box (see DESIGN.md, substitutions).
//
// Centers are identified by *rank* (selection/processing order); label
// slices are sorted by rank so queries are sorted-list intersections.
package twohop

import (
	"fmt"
	"sort"

	"reachac/internal/digraph"
)

// Cover is a 2-hop reachability labeling.
type Cover struct {
	n int
	// in[v] and out[v] hold center ranks in ascending order.
	in, out [][]int32
	// rankToVertex maps a center rank to the vertex acting as that center.
	rankToVertex []int32
}

// N returns the number of labeled vertices.
func (c *Cover) N() int { return c.n }

// NumCenters returns how many distinct centers the cover uses.
func (c *Cover) NumCenters() int { return len(c.rankToVertex) }

// CenterVertex returns the vertex serving as the center with the given rank.
func (c *Cover) CenterVertex(rank int32) int { return int(c.rankToVertex[rank]) }

// InLabel returns Lin(v) as center ranks (ascending). Do not modify.
func (c *Cover) InLabel(v int) []int32 { return c.in[v] }

// OutLabel returns Lout(v) as center ranks (ascending). Do not modify.
func (c *Cover) OutLabel(v int) []int32 { return c.out[v] }

// Size is the labeling size Σ_v |Lin(v)| + |Lout(v)|.
func (c *Cover) Size() int {
	s := 0
	for v := 0; v < c.n; v++ {
		s += len(c.in[v]) + len(c.out[v])
	}
	return s
}

// AddVertex grows the cover by one isolated vertex, registering it as a new
// lowest-priority center whose labels initially witness only its self-pair
// (Lin = Lout = {its own rank}), and returns the vertex id. Edges incident
// to the new vertex are then integrated with Insert, whose resumed BFS uses
// the new rank like any other; the Definition 6 cover property is preserved
// at every step.
func (c *Cover) AddVertex() int {
	v := c.n
	c.n++
	r := int32(len(c.rankToVertex))
	c.rankToVertex = append(c.rankToVertex, int32(v))
	c.in = append(c.in, []int32{r})
	c.out = append(c.out, []int32{r})
	return v
}

// Reachable reports u ⇝ v via label intersection.
func (c *Cover) Reachable(u, v int) bool {
	if u == v {
		return true
	}
	a, b := c.out[u], c.in[v]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// intersects reports whether two ascending rank slices share an element.
func intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// GreedyLimit is the largest graph Greedy accepts; beyond it the quartic
// greedy is unreasonable and Pruned should be used.
const GreedyLimit = 256

// Greedy computes a 2-hop cover by greedy rectangle covering over the full
// transitive closure. It fails on graphs larger than GreedyLimit vertices.
func Greedy(d *digraph.D) (*Cover, error) {
	n := d.N()
	if n > GreedyLimit {
		return nil, fmt.Errorf("twohop: graph with %d vertices exceeds greedy limit %d", n, GreedyLimit)
	}
	// reach[u] = descendants of u including u itself; self-pairs (u,u) are
	// covered too so that every vertex is witnessed by some center — the
	// cluster join machinery needs Lout(u) ∩ Lin(v) ≠ ∅ even when u and v
	// collapse to the same condensation vertex.
	reach := make([][]bool, n)
	var uncovered int
	for u := 0; u < n; u++ {
		set := d.ReachableSet(u)
		reach[u] = set
		for v := 0; v < n; v++ {
			if set[v] {
				uncovered++
			}
		}
	}
	coReach := make([][]bool, n)
	rev := d.Reverse()
	for v := 0; v < n; v++ {
		coReach[v] = rev.ReachableSet(v)
	}

	covered := make([][]bool, n)
	for u := 0; u < n; u++ {
		covered[u] = make([]bool, n)
	}

	c := &Cover{n: n, in: make([][]int32, n), out: make([][]int32, n)}
	for uncovered > 0 {
		// Pick the center whose rectangle covers the most uncovered pairs.
		bestW, bestGain := -1, 0
		var bestU, bestV []int32
		for w := 0; w < n; w++ {
			// Candidate cluster members: ancestors/descendants of w plus w
			// itself, restricted to those participating in an uncovered pair
			// through w.
			var us, vs []int32
			for u := 0; u < n; u++ {
				if coReach[w][u] {
					us = append(us, int32(u))
				}
			}
			for v := 0; v < n; v++ {
				if reach[w][v] {
					vs = append(vs, int32(v))
				}
			}
			gain := 0
			for _, u := range us {
				for _, v := range vs {
					if reach[u][v] && !covered[u][v] {
						gain++
					}
				}
			}
			if gain > bestGain {
				bestGain, bestW = gain, w
				bestU, bestV = us, vs
			}
		}
		if bestW < 0 {
			return nil, fmt.Errorf("twohop: greedy stalled with %d uncovered pairs", uncovered)
		}
		// Trim cluster members that contribute no uncovered pair (keeps
		// labels small, mirroring MaxCardinality's cluster selection).
		us := trimU(bestU, bestV, reach, covered)
		vs := trimV(bestU, bestV, reach, covered)
		rank := int32(len(c.rankToVertex))
		c.rankToVertex = append(c.rankToVertex, int32(bestW))
		for _, u := range us {
			c.out[u] = append(c.out[u], rank)
		}
		for _, v := range vs {
			c.in[v] = append(c.in[v], rank)
		}
		for _, u := range us {
			for _, v := range vs {
				if reach[u][v] && !covered[u][v] {
					covered[u][v] = true
					uncovered--
				}
			}
		}
	}
	return c, nil
}

func trimU(us, vs []int32, reach, covered [][]bool) []int32 {
	var out []int32
	for _, u := range us {
		keep := false
		for _, v := range vs {
			if reach[u][v] && !covered[u][v] {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, u)
		}
	}
	return out
}

func trimV(us, vs []int32, reach, covered [][]bool) []int32 {
	var out []int32
	for _, v := range vs {
		keep := false
		for _, u := range us {
			if reach[u][v] && !covered[u][v] {
				keep = true
				break
			}
		}
		if keep {
			out = append(out, v)
		}
	}
	return out
}

// Pruned computes a 2-hop cover by pruned landmark labeling: vertices are
// processed in decreasing total-degree order (ties by id); each round runs a
// pruned forward BFS (labeling Lin of reached vertices) and a pruned
// backward BFS (labeling Lout). Works on arbitrary digraphs, including ones
// with cycles.
func Pruned(d *digraph.D) *Cover {
	n := d.N()
	c := &Cover{n: n, in: make([][]int32, n), out: make([][]int32, n)}
	rev := d.Reverse()

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = len(d.Succ(v)) + len(rev.Succ(v))
	}
	sort.Slice(order, func(i, j int) bool {
		if deg[order[i]] != deg[order[j]] {
			return deg[order[i]] > deg[order[j]]
		}
		return order[i] < order[j]
	})

	visited := make([]int32, n) // round stamp, avoids clearing
	for i := range visited {
		visited[i] = -1
	}

	queue := make([]int32, 0, n)
	for rank32, root := int32(0), 0; int(rank32) < n; rank32++ {
		root = order[rank32]
		c.rankToVertex = append(c.rankToVertex, int32(root))

		// Forward: add rank to Lin of every vertex root reaches (incl. root)
		// unless existing labels already witness root ⇝ u.
		queue = append(queue[:0], int32(root))
		visited[root] = 2 * rank32
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if int(u) != root && intersects(c.out[root], c.in[u]) {
				continue // already covered; prune this branch
			}
			c.in[u] = append(c.in[u], rank32)
			for _, w := range d.Succ(int(u)) {
				if visited[w] != 2*rank32 {
					visited[w] = 2 * rank32
					queue = append(queue, w)
				}
			}
		}
		// Backward: add rank to Lout of every vertex reaching root.
		queue = append(queue[:0], int32(root))
		visited[root] = 2*rank32 + 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if int(u) != root && intersects(c.out[u], c.in[root]) {
				continue
			}
			c.out[u] = append(c.out[u], rank32)
			for _, w := range rev.Succ(int(u)) {
				if visited[w] != 2*rank32+1 {
					visited[w] = 2*rank32 + 1
					queue = append(queue, w)
				}
			}
		}
	}
	return c
}
