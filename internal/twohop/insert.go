package twohop

import "reachac/internal/digraph"

// Insert updates the cover after edge (u, v) was added to the digraph,
// without a full recomputation, following the resume-BFS scheme of dynamic
// 2-hop maintenance: the new edge creates exactly the pairs (a, b) with
// a ⇝ u and v ⇝ b, and every such pair is covered by resuming the pruned
// BFS of (i) each center that reaches u, forward from v, and (ii) each
// center reachable from v, backward from u.
//
// Soundness: a rank r is added to In(t) only when center(r) ⇝ u → v ⇝ t,
// and to Out(t) only when t ⇝ u → v ⇝ center(r). Completeness follows the
// standard argument: for a new pair (a, b), the maximum-rank vertex w on a
// witnessing walk lies on the a-side or the v-side; in either case
// w ∈ In(u) (resp. w ∈ Out(v)) already held, so its resumed BFS labels the
// other endpoint, and pruning cannot fire along the walk without
// contradicting w's maximality (the same contradiction as in the static
// construction).
//
// d must already contain the new edge; rev must be its reverse (callers
// maintaining both views pass them in to avoid re-deriving the reverse on
// every insertion). Edge deletions are not supported incrementally —
// labels would have to shrink — and require a rebuild.
func (c *Cover) Insert(d, rev *digraph.D, u, v int) {
	// Forward: every center that reaches u now also reaches v's cone.
	for _, r := range append([]int32(nil), c.in[u]...) {
		c.resume(d, r, v, true)
	}
	// Backward: every center reachable from v is now reachable from u's
	// ancestors.
	for _, r := range append([]int32(nil), c.out[v]...) {
		c.resume(rev, r, u, false)
	}
}

// resume runs the pruned BFS of center rank r from start over adj, adding r
// to In (forward) or Out (backward) of every newly covered vertex.
func (c *Cover) resume(adj *digraph.D, r int32, start int, forward bool) {
	root := int(c.rankToVertex[r])
	side := c.out
	if forward {
		side = c.in
	}
	covered := func(t int) bool {
		if t == root {
			return true
		}
		if forward {
			return intersects(c.out[root], c.in[t])
		}
		return intersects(c.out[t], c.in[root])
	}
	if covered(start) {
		return
	}
	seen := map[int]bool{start: true}
	queue := []int{start}
	side[start] = insertRank(side[start], r)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, w := range adj.Succ(t) {
			wi := int(w)
			if seen[wi] || covered(wi) {
				continue
			}
			seen[wi] = true
			side[wi] = insertRank(side[wi], r)
			queue = append(queue, wi)
		}
	}
}

// insertRank inserts r into an ascending rank slice, keeping it sorted and
// duplicate-free.
func insertRank(s []int32, r int32) []int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == r {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = r
	return s
}
