package twohop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reachac/internal/digraph"
)

// TestAddVertexInsert grows a pruned cover vertex by vertex — each new
// vertex wired with Insert, the way incremental index maintenance does —
// and checks the Definition 6 property against the BFS oracle after every
// growth step.
func TestAddVertexInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n0, steps = 12, 10
	// Seed DAG: edges run high -> low so growth never closes a cycle.
	d := digraph.New(n0)
	for i := 0; i < n0*2; i++ {
		u, v := rng.Intn(n0), rng.Intn(n0)
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		d.AddEdge(u, v)
	}
	rev := d.Reverse()
	c := Pruned(d)
	verify := func(stage int) {
		t.Helper()
		for u := 0; u < d.N(); u++ {
			set := d.ReachableSet(u)
			for v := 0; v < d.N(); v++ {
				if got := c.Reachable(u, v); got != set[v] {
					t.Fatalf("stage %d: Reachable(%d,%d)=%v oracle=%v", stage, u, v, got, set[v])
				}
			}
		}
	}
	verify(-1)
	for s := 0; s < steps; s++ {
		x := d.Grow(1)
		rev.Grow(1)
		if got := c.AddVertex(); got != x {
			t.Fatalf("AddVertex = %d, want %d", got, x)
		}
		// Wire a few predecessors (old -> x) and successors (x -> old is a
		// cycle risk in general, so only use strictly older targets that x
		// cannot already reach from; with x brand new any direction is
		// acyclic as long as we do not add both for one partner).
		partners := rng.Perm(x)[:1+rng.Intn(3)]
		for _, p := range partners {
			if rng.Intn(2) == 0 {
				d.AddEdge(p, x)
				rev.AddEdge(x, p)
				c.Insert(d, rev, p, x)
			} else {
				d.AddEdge(x, p)
				rev.AddEdge(p, x)
				c.Insert(d, rev, x, p)
			}
		}
		verify(s)
	}
}

// mirror maintains a digraph and its reverse together.
type mirror struct {
	d, rev *digraph.D
}

func newMirror(n int) *mirror {
	return &mirror{d: digraph.New(n), rev: digraph.New(n)}
}

func (m *mirror) add(u, v int) {
	m.d.AddEdge(u, v)
	m.rev.AddEdge(v, u)
}

func TestInsertSingleEdge(t *testing.T) {
	// Two chains; an inserted bridge connects them.
	m := newMirror(6)
	m.add(0, 1)
	m.add(1, 2)
	m.add(3, 4)
	m.add(4, 5)
	c := Pruned(m.d)
	if c.Reachable(0, 5) {
		t.Fatal("phantom cross-chain reachability")
	}
	m.add(2, 3)
	c.Insert(m.d, m.rev, 2, 3)
	checkCover(t, m.d, c)
	if !c.Reachable(0, 5) {
		t.Fatal("bridge not covered after Insert")
	}
}

func TestInsertSequenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(15)
		m := newMirror(n)
		// Seed graph.
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			m.add(u, v)
		}
		c := Pruned(m.d)
		// Incrementally add edges, checking full correctness after each.
		for step := 0; step < n; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			m.add(u, v)
			c.Insert(m.d, m.rev, u, v)
			checkCover(t, m.d, c)
		}
	}
}

func TestInsertQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz)%20
		m := newMirror(n)
		for i := 0; i < n; i++ {
			m.add(rng.Intn(n), rng.Intn(n))
		}
		c := Pruned(m.d)
		for step := 0; step < 8; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			m.add(u, v)
			c.Insert(m.d, m.rev, u, v)
		}
		for u := 0; u < n; u++ {
			set := m.d.ReachableSet(u)
			for v := 0; v < n; v++ {
				if c.Reachable(u, v) != set[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAlreadyCoveredIsNoop(t *testing.T) {
	m := newMirror(3)
	m.add(0, 1)
	m.add(1, 2)
	c := Pruned(m.d)
	before := c.Size()
	// 0 -> 2 adds no new reachability.
	m.add(0, 2)
	c.Insert(m.d, m.rev, 0, 2)
	checkCover(t, m.d, c)
	if c.Size() != before {
		t.Fatalf("covered insert grew labels: %d -> %d", before, c.Size())
	}
}

func TestInsertKeepsLabelsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 25
	m := newMirror(n)
	for i := 0; i < n*2; i++ {
		m.add(rng.Intn(n), rng.Intn(n))
	}
	c := Pruned(m.d)
	for step := 0; step < 15; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		m.add(u, v)
		c.Insert(m.d, m.rev, u, v)
	}
	for v := 0; v < n; v++ {
		for _, lbl := range [][]int32{c.InLabel(v), c.OutLabel(v)} {
			for i := 1; i < len(lbl); i++ {
				if lbl[i-1] >= lbl[i] {
					t.Fatalf("vertex %d labels unsorted after inserts: %v", v, lbl)
				}
			}
		}
	}
}

func TestInsertRank(t *testing.T) {
	s := []int32{1, 3, 5}
	s = insertRank(s, 4)
	s = insertRank(s, 0)
	s = insertRank(s, 7)
	s = insertRank(s, 4) // duplicate
	want := []int32{0, 1, 3, 4, 5, 7}
	if len(s) != len(want) {
		t.Fatalf("insertRank = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertRank = %v", s)
		}
	}
}
