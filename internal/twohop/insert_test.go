package twohop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reachac/internal/digraph"
)

// mirror maintains a digraph and its reverse together.
type mirror struct {
	d, rev *digraph.D
}

func newMirror(n int) *mirror {
	return &mirror{d: digraph.New(n), rev: digraph.New(n)}
}

func (m *mirror) add(u, v int) {
	m.d.AddEdge(u, v)
	m.rev.AddEdge(v, u)
}

func TestInsertSingleEdge(t *testing.T) {
	// Two chains; an inserted bridge connects them.
	m := newMirror(6)
	m.add(0, 1)
	m.add(1, 2)
	m.add(3, 4)
	m.add(4, 5)
	c := Pruned(m.d)
	if c.Reachable(0, 5) {
		t.Fatal("phantom cross-chain reachability")
	}
	m.add(2, 3)
	c.Insert(m.d, m.rev, 2, 3)
	checkCover(t, m.d, c)
	if !c.Reachable(0, 5) {
		t.Fatal("bridge not covered after Insert")
	}
}

func TestInsertSequenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(15)
		m := newMirror(n)
		// Seed graph.
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			m.add(u, v)
		}
		c := Pruned(m.d)
		// Incrementally add edges, checking full correctness after each.
		for step := 0; step < n; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			m.add(u, v)
			c.Insert(m.d, m.rev, u, v)
			checkCover(t, m.d, c)
		}
	}
}

func TestInsertQuick(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz)%20
		m := newMirror(n)
		for i := 0; i < n; i++ {
			m.add(rng.Intn(n), rng.Intn(n))
		}
		c := Pruned(m.d)
		for step := 0; step < 8; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			m.add(u, v)
			c.Insert(m.d, m.rev, u, v)
		}
		for u := 0; u < n; u++ {
			set := m.d.ReachableSet(u)
			for v := 0; v < n; v++ {
				if c.Reachable(u, v) != set[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAlreadyCoveredIsNoop(t *testing.T) {
	m := newMirror(3)
	m.add(0, 1)
	m.add(1, 2)
	c := Pruned(m.d)
	before := c.Size()
	// 0 -> 2 adds no new reachability.
	m.add(0, 2)
	c.Insert(m.d, m.rev, 0, 2)
	checkCover(t, m.d, c)
	if c.Size() != before {
		t.Fatalf("covered insert grew labels: %d -> %d", before, c.Size())
	}
}

func TestInsertKeepsLabelsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 25
	m := newMirror(n)
	for i := 0; i < n*2; i++ {
		m.add(rng.Intn(n), rng.Intn(n))
	}
	c := Pruned(m.d)
	for step := 0; step < 15; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		m.add(u, v)
		c.Insert(m.d, m.rev, u, v)
	}
	for v := 0; v < n; v++ {
		for _, lbl := range [][]int32{c.InLabel(v), c.OutLabel(v)} {
			for i := 1; i < len(lbl); i++ {
				if lbl[i-1] >= lbl[i] {
					t.Fatalf("vertex %d labels unsorted after inserts: %v", v, lbl)
				}
			}
		}
	}
}

func TestInsertRank(t *testing.T) {
	s := []int32{1, 3, 5}
	s = insertRank(s, 4)
	s = insertRank(s, 0)
	s = insertRank(s, 7)
	s = insertRank(s, 4) // duplicate
	want := []int32{0, 1, 3, 4, 5, 7}
	if len(s) != len(want) {
		t.Fatalf("insertRank = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("insertRank = %v", s)
		}
	}
}
