package loadgen

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic clock: Sleep advances it instantly, and
// jobs advance it explicitly to model operation cost.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) { c.advance(d) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestRunClosedLoopDeterministic drives one worker with a fake clock: a
// 5ms operation over a 100ms window after 20ms warmup must record exactly
// 21 operations (completions at 20ms..120ms inclusive), all at exactly
// 5ms.
func TestRunClosedLoopDeterministic(t *testing.T) {
	clock := &fakeClock{}
	const opCost = 5 * time.Millisecond
	res := Run(context.Background(), Config{
		Workers:  1,
		Warmup:   20 * time.Millisecond,
		Duration: 100 * time.Millisecond,
		Clock:    clock,
	}, func(ctx context.Context, worker int) error {
		clock.advance(opCost)
		return nil
	})
	if res.Ops != 21 {
		t.Fatalf("ops = %d, want 21", res.Ops)
	}
	if res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("unexpected errors=%d shed=%d", res.Errors, res.Shed)
	}
	if got := res.Hist.Max(); got < opCost || got > opCost+opCost>>subBits {
		t.Fatalf("max latency %v, want ~%v", got, opCost)
	}
	if res.Hist.Min() != res.Hist.Max() {
		t.Fatalf("constant-cost ops should land in one bucket: min %v max %v", res.Hist.Min(), res.Hist.Max())
	}
	if res.Elapsed != 100*time.Millisecond {
		t.Fatalf("elapsed = %v, want 100ms", res.Elapsed)
	}
	if tput := res.Throughput(); tput < 209 || tput > 211 {
		t.Fatalf("throughput = %v, want ~210", tput)
	}
}

// TestRunOpenLoopPacing paces one worker at 100 ops/s with free
// operations: exactly one op per 10ms slot lands in a 1s window, and the
// recorded latency is the (zero) service time.
func TestRunOpenLoopPacing(t *testing.T) {
	clock := &fakeClock{}
	res := Run(context.Background(), Config{
		Workers:  1,
		Duration: time.Second,
		Rate:     100,
		Clock:    clock,
	}, func(ctx context.Context, worker int) error { return nil })
	if res.Ops != 100 {
		t.Fatalf("ops = %d, want 100", res.Ops)
	}
	if res.Hist.Max() != 0 {
		t.Fatalf("zero-cost paced ops should record zero latency, got max %v", res.Hist.Max())
	}
}

// TestRunOpenLoopCoordinatedOmission checks that a stalled operation
// charges the queueing delay to the operations scheduled behind it:
// latency is measured from the intended arrival, not the actual start.
func TestRunOpenLoopCoordinatedOmission(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	res := Run(context.Background(), Config{
		Workers:  1,
		Duration: 100 * time.Millisecond,
		Rate:     100, // one op per 10ms
		Clock:    clock,
	}, func(ctx context.Context, worker int) error {
		calls++
		if calls == 1 {
			clock.advance(50 * time.Millisecond) // stall the first op
		}
		return nil
	})
	if res.Ops != 10 {
		t.Fatalf("ops = %d, want 10", res.Ops)
	}
	// Ops intended at 10,20,30,40ms all start once the stall clears at
	// 50ms: their recorded latencies must reflect 40,30,20,10ms of queueing.
	if got := res.Hist.Quantile(0.95); got < 50*time.Millisecond || got > 52*time.Millisecond {
		t.Fatalf("p95 = %v, want ~50ms (the stalled op)", got)
	}
	if got := res.Hist.Quantile(0.5); got == 0 {
		t.Fatal("median should show queueing delay behind the stall")
	}
}

func TestPacerCatchUp(t *testing.T) {
	clock := &fakeClock{}
	p := &pacer{interval: 10 * time.Millisecond, next: clock.Now()}
	if got := p.wait(clock); !got.Equal(time.Time{}.Add(0)) {
		t.Fatalf("first intended start = %v", got)
	}
	// Fall 35ms behind: the next three waits must fire immediately with
	// intended times 10,20,30ms, then resume sleeping.
	clock.advance(35 * time.Millisecond)
	for i, want := range []time.Duration{10, 20, 30} {
		before := clock.Now()
		got := p.wait(clock)
		if clock.Now() != before {
			t.Fatalf("wait %d slept while behind schedule", i)
		}
		if got.Sub(time.Time{}) != want*time.Millisecond {
			t.Fatalf("wait %d intended = %v, want %v", i, got.Sub(time.Time{}), want*time.Millisecond)
		}
	}
	got := p.wait(clock)
	if got.Sub(time.Time{}) != 40*time.Millisecond || clock.Now().Sub(time.Time{}) != 40*time.Millisecond {
		t.Fatalf("caught-up wait should sleep to 40ms: intended %v now %v", got.Sub(time.Time{}), clock.Now().Sub(time.Time{}))
	}
}

func TestRunClassification(t *testing.T) {
	clock := &fakeClock{}
	errShed := errors.New("shed")
	errBoom := errors.New("boom")
	i := 0
	res := Run(context.Background(), Config{
		Workers:  1,
		Duration: 90 * time.Millisecond,
		Clock:    clock,
		Classify: func(err error) Outcome {
			switch err {
			case nil:
				return OK
			case errShed:
				return Shed
			default:
				return Error
			}
		},
	}, func(ctx context.Context, worker int) error {
		clock.advance(10 * time.Millisecond)
		i++
		switch i % 3 {
		case 0:
			return errBoom
		case 1:
			return errShed
		default:
			return nil
		}
	})
	if res.Ops != 3 || res.Errors != 3 || res.Shed != 3 {
		t.Fatalf("ops/errors/shed = %d/%d/%d, want 3/3/3", res.Ops, res.Errors, res.Shed)
	}
	if res.Hist.Count() != 3 {
		t.Fatalf("only successful ops should be timed, got %d", res.Hist.Count())
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	clock := &fakeClock{}
	n := 0
	res := Run(ctx, Config{Workers: 1, Duration: time.Hour, Clock: clock},
		func(ctx context.Context, worker int) error {
			clock.advance(time.Millisecond)
			if n++; n == 5 {
				cancel()
			}
			return nil
		})
	if res.Ops != 5 {
		t.Fatalf("ops = %d, want 5 (cancelled)", res.Ops)
	}
	if res.Elapsed != 5*time.Millisecond {
		t.Fatalf("elapsed = %v, want 5ms", res.Elapsed)
	}
}

// TestRunRealClockSmoke exercises the wall-clock default path with
// multiple workers, loosely.
func TestRunRealClockSmoke(t *testing.T) {
	res := Run(context.Background(), Config{
		Workers:  4,
		Warmup:   5 * time.Millisecond,
		Duration: 40 * time.Millisecond,
	}, func(ctx context.Context, worker int) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Hist.Quantile(0.5) < 200*time.Microsecond {
		t.Fatalf("median %v below the operation's sleep", res.Hist.Quantile(0.5))
	}
}
