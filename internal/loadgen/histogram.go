// Package loadgen drives operation generators against a target system —
// the embedded reachac facade or a running acserverd — with a worker pool
// in either closed-loop (each worker issues the next operation as soon as
// the previous completes) or open-loop mode (operations are paced at a
// target arrival rate regardless of completion, the way independent users
// arrive at a service). Latencies are recorded into a log-bucketed
// histogram; warmup operations are excluded; errors and shed requests are
// counted separately so overload shows up as shed rate, not as latency.
package loadgen

import (
	"math/bits"
	"time"
)

// subBits sets the histogram's resolution: every power-of-two range is
// split into 2^subBits linear sub-buckets, bounding the relative
// quantization error of any recorded value by 2^-subBits (~3% at 5 bits) —
// the same scheme HDR histograms use, without the configurable precision.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits + 1) * subBuckets
)

// Histogram records durations (as nanoseconds) into logarithmic buckets
// with linear sub-buckets, supporting quantile queries with bounded
// relative error over the full int64 range in fixed memory. The zero value
// is ready to use. A Histogram is NOT safe for concurrent use: give each
// worker its own and Merge them afterwards.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket. Values below
// subBuckets get exact unit buckets; above, the top subBits bits after the
// leading one select the sub-bucket within the value's power-of-two range.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	msb := bits.Len64(u) - 1
	sub := (u >> uint(msb-subBits)) - subBuckets
	return ((msb - subBits + 1) << subBits) + int(sub)
}

// bucketUpper returns the largest value the bucket holds; quantiles report
// it so they never understate the recorded latency.
func bucketUpper(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	major := idx >> subBits
	msb := major + subBits - 1
	lo := uint64(1)<<uint(msb) + uint64(idx&(subBuckets-1))<<uint(msb-subBits)
	return int64(lo + 1<<uint(msb-subBits) - 1)
}

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the smallest recorded duration (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded duration (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the average recorded duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns the duration at or below which a fraction q of the
// observations fall, reported as the containing bucket's upper bound
// (clamped to the exact recorded maximum). q outside [0,1] is clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}
