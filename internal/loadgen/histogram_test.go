package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramQuantileOracle checks quantiles against a sorted-slice
// oracle: the reported value must be >= the exact order statistic (upper
// bucket bounds never understate) and within the scheme's 2^-subBits
// relative error of it.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, scale := range []int64{100, 50_000, 10_000_000, 3_000_000_000} {
		var h Histogram
		vals := make([]int64, 0, 20_000)
		for i := 0; i < 20_000; i++ {
			// Mix uniform and heavy-tailed draws so many buckets fill.
			v := rng.Int63n(scale)
			if rng.Intn(10) == 0 {
				v *= 1 + rng.Int63n(50)
			}
			vals = append(vals, v)
			h.Record(time.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(len(vals)))
			if rank >= len(vals) {
				rank = len(vals) - 1
			}
			exact := vals[rank]
			got := int64(h.Quantile(q))
			if got < exact {
				t.Fatalf("scale %d q=%v: histogram %d understates oracle %d", scale, q, got, exact)
			}
			// The bucket upper bound is at most one quantization step above
			// any value it holds.
			limit := exact + exact>>subBits + 1
			if got > limit {
				t.Fatalf("scale %d q=%v: histogram %d exceeds oracle %d beyond quantization bound %d",
					scale, q, got, exact, limit)
			}
		}
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket indexes must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 + 999} {
		idx := bucketIndex(v)
		if up := bucketUpper(idx); up < v {
			t.Fatalf("value %d: bucket %d upper bound %d below value", v, idx, up)
		}
		if idx < prev {
			t.Fatalf("value %d: bucket index %d not monotone (prev %d)", v, idx, prev)
		}
		prev = idx
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative value bucket = %d, want 0", got)
	}
	if got := bucketIndex(1<<63 - 1); got >= numBuckets {
		t.Fatalf("max value bucket %d out of range %d", got, numBuckets)
	}
}

func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole Histogram
	parts := make([]Histogram, 4)
	for i := 0; i < 10_000; i++ {
		v := time.Duration(rng.Int63n(1_000_000))
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: %d/%v/%v/%v vs %d/%v/%v/%v",
			merged.Count(), merged.Min(), merged.Max(), merged.Mean(),
			whole.Count(), whole.Min(), whole.Max(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Merge(&Histogram{})
	if h.Count() != 0 {
		t.Fatal("merging empty histograms should stay empty")
	}
}
