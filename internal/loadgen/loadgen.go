package loadgen

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Clock abstracts time so the runner and pacer are testable with a
// deterministic fake; RealClock is the wall clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// pacer schedules open-loop arrivals at a fixed interval. Arrival times
// advance by the interval regardless of how long operations take, and the
// caller measures latency from the INTENDED start, so time an operation
// spends queued behind a slow predecessor is charged to it — the standard
// correction for coordinated omission.
type pacer struct {
	interval time.Duration
	next     time.Time
}

// wait sleeps until the next scheduled arrival (not at all when behind
// schedule) and returns the intended start time.
func (p *pacer) wait(c Clock) time.Time {
	intended := p.next
	p.next = p.next.Add(p.interval)
	if d := intended.Sub(c.Now()); d > 0 {
		c.Sleep(d)
	}
	return intended
}

// Outcome classifies one operation's result for the counters.
type Outcome int

// Operation outcomes.
const (
	// OK is a successful operation; its latency is recorded.
	OK Outcome = iota
	// Error is a failed operation; counted, latency not recorded.
	Error
	// Shed is an operation rejected by admission control (e.g. a 503 from
	// acserverd); counted separately so overload is visible as shed rate.
	Shed
)

// Config tunes one Run.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// Duration is the measured steady-state window (required, > 0).
	Duration time.Duration
	// Warmup runs before the window; its operations are not recorded.
	Warmup time.Duration
	// Rate is the total target arrival rate in operations/second across
	// all workers; 0 selects closed-loop mode (issue as fast as
	// completions allow).
	Rate float64
	// Clock substitutes a fake clock in tests (default RealClock).
	Clock Clock
	// Classify maps an operation error to an Outcome (default: any
	// non-nil error is Error).
	Classify func(error) Outcome
}

// Result aggregates one Run. Latency quantiles come from Hist.
type Result struct {
	// Ops counts successful operations in the measured window; Errors and
	// Shed count failed and load-shed ones.
	Ops, Errors, Shed uint64
	// Elapsed is the actual measured window (slightly over Duration when
	// final operations straggle).
	Elapsed time.Duration
	// Hist holds the successful operations' latencies.
	Hist *Histogram
}

// Throughput returns successful operations per second over the window.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Run drives job from a worker pool per cfg and aggregates the outcome.
// job receives the worker index so callers can keep per-worker state
// (generators, rule stacks) without locking; it must return the
// operation's error (nil for success). Run returns when the measured
// window has elapsed or ctx is cancelled.
func Run(ctx context.Context, cfg Config, job func(ctx context.Context, worker int) error) Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	classify := cfg.Classify
	if classify == nil {
		classify = func(err error) Outcome {
			if err != nil {
				return Error
			}
			return OK
		}
	}

	start := clock.Now()
	measureStart := start.Add(cfg.Warmup)
	end := measureStart.Add(cfg.Duration)

	type workerResult struct {
		hist           Histogram
		ok, errs, shed uint64
	}
	results := make([]*workerResult, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		res := &workerResult{}
		results[i] = res
		var p *pacer
		if cfg.Rate > 0 {
			interval := time.Duration(float64(workers) / cfg.Rate * float64(time.Second))
			if interval <= 0 {
				interval = time.Nanosecond
			}
			// Stagger workers across one interval so aggregate arrivals
			// are evenly spaced, not synchronized bursts.
			p = &pacer{interval: interval, next: start.Add(interval * time.Duration(i) / time.Duration(workers))}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for ctx.Err() == nil {
				var t0 time.Time
				if p != nil {
					if !p.next.Before(end) {
						return
					}
					t0 = p.wait(clock)
				} else {
					t0 = clock.Now()
					if !t0.Before(end) {
						return
					}
				}
				err := job(ctx, i)
				done := clock.Now()
				if done.Before(measureStart) {
					continue // warmup
				}
				switch classify(err) {
				case OK:
					res.hist.Record(done.Sub(t0))
					res.ok++
				case Shed:
					res.shed++
				default:
					res.errs++
				}
			}
		}(i)
	}
	wg.Wait()

	out := Result{Hist: &Histogram{}}
	for _, res := range results {
		out.Ops += res.ok
		out.Errors += res.errs
		out.Shed += res.shed
		out.Hist.Merge(&res.hist)
	}
	// The window is measured, not assumed: straggling final operations
	// extend it, and a ctx cancellation shortens it, so Throughput stays
	// honest either way.
	out.Elapsed = clock.Now().Sub(measureStart)
	if out.Elapsed < 0 {
		out.Elapsed = 0
	}
	return out
}
