package server_test

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/httpapi"
	"reachac/internal/server"
)

// TestFollowerServing runs a leader and a follower as full serving stacks:
// the follower advertises its role and staleness, serves replicated reads,
// and turns every mutation away with the read-only protocol error.
func TestFollowerServing(t *testing.T) {
	leader := newHarness(t, reachac.Online, server.Config{})
	ctx := context.Background()

	if _, err := leader.c.AddUser(ctx, "alice", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.c.AddUser(ctx, "bob", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.c.Share(ctx, "photo", "alice", "friend+[1,2]"); err != nil {
		t.Fatal(err)
	}

	// The follower attaches to the leader's public URL: the replication
	// endpoints ride on the same mux as the serving API.
	follower := newHarness(t, reachac.Online, server.Config{}, reachac.WithFollow(leader.ts.URL))

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := follower.c.UserID(ctx, "bob"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never replicated user bob")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Roles in health.
	lh, err := leader.c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Role != "leader" || lh.Replica != nil {
		t.Fatalf("leader health role %q, replica %+v", lh.Role, lh.Replica)
	}
	fh, err := follower.c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fh.Role != "follower" {
		t.Fatalf("follower health role %q", fh.Role)
	}
	if fh.Replica == nil || fh.Replica.Epoch == 0 {
		t.Fatalf("follower health replica block %+v", fh.Replica)
	}

	// Every follower response carries the staleness bound, and the typed
	// client surfaces it.
	resp, err := http.Get(follower.ts.URL + httpapi.PathStats)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(httpapi.HeaderStaleness) == "" {
		t.Fatal("follower response missing the staleness header")
	}
	if _, ok := follower.c.Staleness(); !ok {
		t.Fatal("client saw a follower answer but reports no staleness bound")
	}
	if _, ok := leader.c.Staleness(); ok {
		t.Fatal("leader answers must not carry a staleness bound")
	}

	// Replicated reads decide like the leader's.
	ld, err := leader.c.Check(ctx, "photo", "bob")
	if err != nil {
		t.Fatal(err)
	}
	fd, err := follower.c.Check(ctx, "photo", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if fd.Effect != ld.Effect {
		t.Fatalf("follower decided %q, leader %q", fd.Effect, ld.Effect)
	}

	// Mutations are rejected with the read-only protocol error.
	if _, err := follower.c.AddUser(ctx, "mallory", nil); !errors.Is(err, reachac.ErrReadOnly) {
		t.Fatalf("AddUser on follower: %v, want ErrReadOnly", err)
	}
	if _, err := follower.c.Share(ctx, "doc", "alice", "friend+[1,1]"); !errors.Is(err, reachac.ErrReadOnly) {
		t.Fatalf("Share on follower: %v, want ErrReadOnly", err)
	}
	var apiErr *client.Error
	if _, err := follower.c.AddUser(ctx, "eve", nil); !errors.As(err, &apiErr) ||
		apiErr.Code != httpapi.CodeReadOnly {
		t.Fatalf("follower mutation error %v does not carry code %q", err, httpapi.CodeReadOnly)
	}

	// Stats surface the replication gauges over the wire.
	fst, err := follower.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !fst.Follower || fst.ReplicaEpoch == 0 {
		t.Fatalf("follower stats over the wire: %+v", fst)
	}
}
