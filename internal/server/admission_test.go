package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"reachac"
	"reachac/internal/httpapi"
)

func TestGate(t *testing.T) {
	g := newGate(1, -1)
	ctx := context.Background()
	if !g.acquire(ctx) {
		t.Fatal("first acquire refused")
	}
	if g.acquire(ctx) {
		t.Fatal("second acquire admitted past the limit")
	}
	g.release()
	if !g.acquire(ctx) {
		t.Fatal("acquire after release refused")
	}
	g.release()
}

func TestGateWaitsWithinWindow(t *testing.T) {
	g := newGate(1, time.Second)
	ctx := context.Background()
	g.acquire(ctx)
	done := make(chan bool, 1)
	go func() { done <- g.acquire(ctx) }()
	time.Sleep(5 * time.Millisecond)
	g.release()
	if !<-done {
		t.Fatal("waiter not admitted when the slot freed")
	}
	g.release()

	// An expired request context rejects promptly even inside the window.
	g.acquire(ctx)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if g.acquire(cctx) {
		t.Fatal("cancelled context admitted")
	}
	g.release()
}

// TestMutationQueueRejectsWhenFull saturates the bounded admission queue
// behind a deliberately slow commit and expects 503 + Retry-After.
func TestMutationQueueRejectsWhenFull(t *testing.T) {
	n := reachac.New()
	s := New(n, Config{MaxQueuedMutations: 1})
	defer s.Shutdown(context.Background())

	// Occupy the committer with a mutation that blocks mid-batch.
	release := make(chan struct{})
	picked := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.co.enqueue(context.Background(), func(tx *reachac.Tx) error {
			close(picked)
			<-release
			return nil
		})
	}()
	<-picked

	// Fill the queue (capacity 1) behind the stalled commit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.co.enqueue(context.Background(), func(tx *reachac.Tx) error { return nil })
	}()
	deadline := time.Now().Add(time.Second)
	for s.co.depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued mutation never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// The next mutation must be shed, not queued.
	req := httptest.NewRequest(http.MethodPost, httpapi.PathUsers,
		strings.NewReader(`{"name":"alice"}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503; body %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var body httpapi.ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Code != httpapi.CodeOverloaded {
		t.Fatalf("error body = %s (%v)", w.Body, err)
	}
	if s.co.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	close(release)
	wg.Wait()

	// Once drained, mutations are admitted again.
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, httpapi.PathUsers,
		strings.NewReader(`{"name":"alice"}`)))
	if w.Code != http.StatusCreated {
		t.Fatalf("HTTP %d after drain, want 201; body %s", w.Code, w.Body)
	}
}

// TestCheckAdmissionSheds rejects reads beyond the concurrency limit with
// 503 + Retry-After.
func TestCheckAdmissionSheds(t *testing.T) {
	n := reachac.New()
	alice := n.MustAddUser("alice")
	n.MustAddUser("bob")
	if _, err := n.Share("photo", alice, "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	s := New(n, Config{MaxConcurrentChecks: 1, AdmitWait: -1})
	defer s.Shutdown(context.Background())

	// Occupy the only slot directly, then expect shedding.
	if !s.gate.acquire(context.Background()) {
		t.Fatal("slot not acquired")
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, httpapi.PathCheck+"?resource=photo&requester=bob", nil))
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("saturated check: HTTP %d, Retry-After %q", w.Code, w.Header().Get("Retry-After"))
	}
	if s.checkRejected.Load() != 1 {
		t.Fatalf("checkRejected = %d", s.checkRejected.Load())
	}
	s.gate.release()
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, httpapi.PathCheck+"?resource=photo&requester=bob", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("check after release: HTTP %d, body %s", w.Code, w.Body)
	}
}

// TestCoalescerPartialFailure proves one writer's failure inside a shared
// commit group neither fails nor rolls back its groupmates.
func TestCoalescerPartialFailure(t *testing.T) {
	n := reachac.New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	s := New(n, Config{CoalesceWait: 5 * time.Millisecond, CoalesceBatch: 8})
	defer s.Shutdown(context.Background())

	// Stall the committer so all three mutations share one group.
	release := make(chan struct{})
	picked := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.co.enqueue(context.Background(), func(tx *reachac.Tx) error {
			close(picked)
			<-release
			return nil
		})
	}()
	<-picked

	errCh := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errCh <- s.co.enqueue(context.Background(), func(tx *reachac.Tx) error {
			return tx.Relate(a, b, "friend")
		})
	}()
	go func() {
		defer wg.Done()
		errCh <- s.co.enqueue(context.Background(), func(tx *reachac.Tx) error {
			return tx.Relate(a, 9999, "friend") // fails: unknown user
		})
	}()
	deadline := time.Now().Add(time.Second)
	for s.co.depth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("mutations never queued behind the stall")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var ok, failed int
	for i := 0; i < 2; i++ {
		if err := <-errCh; err == nil {
			ok++
		} else {
			failed++
		}
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("ok=%d failed=%d, want exactly one of each", ok, failed)
	}
	if !n.Graph().HasEdge(a, b, "friend") {
		t.Fatal("successful groupmate rolled back by its neighbour's failure")
	}
}
