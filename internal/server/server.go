// Package server is the HTTP serving layer over a reachac.Network: an
// access-control service speaking the JSON API of internal/httpapi.
//
// Reads (check, check-batch, audience, reach, audit) are answered straight
// off the published engine snapshot through the facade's View API — no
// per-request locking — behind a concurrency gate that sheds load with
// 503 + Retry-After instead of queueing unboundedly. Mutations (users,
// relationships, share, revoke) are coalesced: concurrent requests are
// folded into shared Batch commit groups so one WAL fsync covers many
// writers, with a bounded, deadline-aware admission queue in front.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"reachac"
	"reachac/internal/httpapi"
)

// Config tunes the serving layer; the zero value selects the defaults.
type Config struct {
	// MaxConcurrentChecks bounds in-flight read requests (default
	// 4×GOMAXPROCS).
	MaxConcurrentChecks int
	// MaxQueuedMutations bounds the mutation admission queue (default 1024);
	// a full queue rejects with 503 + Retry-After.
	MaxQueuedMutations int
	// CoalesceBatch caps how many mutation requests one commit group may
	// carry (default 128).
	CoalesceBatch int
	// CoalesceWait is how long the committer lingers for more mutations
	// after gathering the first (default 0: coalesce only what is already
	// queued, adding no latency).
	CoalesceWait time.Duration
	// AdmitWait is how long a read waits for a check slot before rejection
	// (default 100ms).
	AdmitWait time.Duration
	// RetryAfter is the Retry-After hint attached to 503 responses
	// (default 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentChecks <= 0 {
		c.MaxConcurrentChecks = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueuedMutations <= 0 {
		c.MaxQueuedMutations = 1024
	}
	if c.CoalesceBatch <= 0 {
		c.CoalesceBatch = 128
	}
	if c.AdmitWait == 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server exposes one Network over HTTP. Create with New, mount as an
// http.Handler, and call Shutdown to drain and release the network.
type Server struct {
	net  *reachac.Network
	cfg  Config
	mux  *http.ServeMux
	co   *coalescer
	gate *gate

	checkRejected atomic.Uint64
	closed        chan struct{} // closed by Shutdown after the drain
	shutdownOnce  sync.Once
	shutdownErr   error
}

// New wraps n in a serving layer. The server takes over the network's
// lifecycle: Shutdown drains pending mutations, takes a final checkpoint
// (skipped when the log is already clean) and closes the network.
func New(n *reachac.Network, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		net:    n,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		co:     newCoalescer(n, cfg.MaxQueuedMutations, cfg.CoalesceBatch, cfg.CoalesceWait),
		gate:   newGate(cfg.MaxConcurrentChecks, cfg.AdmitWait),
		closed: make(chan struct{}),
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET "+httpapi.PathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+httpapi.PathStats, s.handleStats)
	s.mux.HandleFunc("POST "+httpapi.PathUsers, s.handleAddUser)
	s.mux.HandleFunc("GET "+httpapi.PathUsers+"/{name}", s.handleGetUser)
	s.mux.HandleFunc("POST "+httpapi.PathRelationships, s.handleRelate)
	s.mux.HandleFunc("DELETE "+httpapi.PathRelationships, s.handleUnrelate)
	s.mux.HandleFunc("POST "+httpapi.PathShare, s.handleShare)
	s.mux.HandleFunc("POST "+httpapi.PathRevoke, s.handleRevoke)
	s.mux.HandleFunc("GET "+httpapi.PathCheck, s.handleCheck)
	s.mux.HandleFunc("POST "+httpapi.PathCheckBatch, s.handleCheckBatch)
	s.mux.HandleFunc("GET "+httpapi.PathAudience, s.handleAudience)
	s.mux.HandleFunc("GET "+httpapi.PathReach, s.handleReach)
	s.mux.HandleFunc("GET "+httpapi.PathReachAudience, s.handleReachAudience)
	s.mux.HandleFunc("GET "+httpapi.PathPolicies, s.handleGetPolicies)
	s.mux.HandleFunc("PUT "+httpapi.PathPolicies, s.handlePutPolicies)
	s.mux.HandleFunc("GET "+httpapi.PathAudit, s.handleAudit)
	s.mux.HandleFunc("POST "+httpapi.PathShardExpand, s.handleShardExpand)
	s.mux.HandleFunc("GET "+httpapi.PathShardPolicies, s.handleShardPolicies)
	if src := s.net.ReplicaSource(); src != nil {
		// A durable leader is followable: mount the WAL-shipping endpoints.
		src.Register(s.mux)
	}
}

// ServeHTTP implements http.Handler. A follower stamps every response with
// its staleness bound, so clients can judge the freshness of what they read.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.net.Follower() {
		rs := s.net.ReplicaStatus()
		w.Header().Set(httpapi.HeaderStaleness,
			strconv.FormatInt(time.Since(rs.LastContact).Milliseconds(), 10))
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown gracefully stops the serving layer: intake closes, every queued
// mutation commits (bounded by ctx), a final checkpoint compacts the log
// unless nothing changed since the last one, and the network closes. The
// HTTP listener must already be stopped (http.Server.Shutdown) so no new
// requests race the drain. Idempotent; later calls return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		err := s.co.shutdown(ctx)
		if s.net.Durable() {
			if cerr := s.net.Checkpoint(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if cerr := s.net.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.shutdownErr = err
		close(s.closed)
	})
	<-s.closed
	return s.shutdownErr
}

// --- response plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError maps a facade or admission error to status + wire code. 503s
// carry a Retry-After hint so well-behaved clients back off.
func (s *Server) httpError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, httpapi.CodeInternal
	switch {
	case errors.Is(err, reachac.ErrUnknownUser):
		status, code = http.StatusNotFound, httpapi.CodeUnknownUser
	case errors.Is(err, reachac.ErrUnknownResource):
		status, code = http.StatusNotFound, httpapi.CodeUnknownResource
	case errors.Is(err, reachac.ErrUnknownRelationship):
		status, code = http.StatusNotFound, httpapi.CodeUnknownRelationship
	case errors.Is(err, reachac.ErrDuplicateUser):
		status, code = http.StatusConflict, httpapi.CodeDuplicateUser
	case errors.Is(err, reachac.ErrDuplicateRelationship):
		status, code = http.StatusConflict, httpapi.CodeDuplicateRelationship
	case errors.Is(err, reachac.ErrSelfRelationship):
		status, code = http.StatusBadRequest, httpapi.CodeSelfRelationship
	case errors.Is(err, reachac.ErrResourceOwned):
		status, code = http.StatusConflict, httpapi.CodeResourceOwned
	case errors.Is(err, reachac.ErrReadOnly):
		status, code = http.StatusServiceUnavailable, httpapi.CodeReadOnly
	case errors.Is(err, reachac.ErrClosed), errors.Is(err, errDraining):
		status, code = http.StatusServiceUnavailable, httpapi.CodeClosed
	case errors.Is(err, errQueueFull), errors.Is(err, errSaturated),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status, code = http.StatusServiceUnavailable, httpapi.CodeOverloaded
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, httpapi.ErrorBody{Error: err.Error(), Code: code})
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, httpapi.ErrorBody{Error: err.Error(), Code: httpapi.CodeBadRequest})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		badRequest(w, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

// view pins a read snapshot or reports the failure.
func (s *Server) view(w http.ResponseWriter) (*reachac.View, bool) {
	v, err := s.net.View()
	if err != nil {
		s.httpError(w, err)
		return nil, false
	}
	return v, true
}

// admit reserves a check slot, answering 503 when the server is saturated.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if !s.gate.acquire(r.Context()) {
		s.checkRejected.Add(1)
		s.httpError(w, errSaturated)
		return false
	}
	return true
}

func wireDecision(v *reachac.View, d reachac.Decision) httpapi.Decision {
	req, _ := v.UserName(d.Requester)
	if req == "" {
		req = strconv.FormatUint(uint64(d.Requester), 10)
	}
	return httpapi.Decision{
		Resource:  string(d.Resource),
		Requester: req,
		Effect:    d.Effect.String(),
		Rule:      d.RuleID,
		Reason:    d.Reason,
	}
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.net.Stats()
	resp := httpapi.HealthResponse{
		Status:        "ok",
		Role:          "standalone",
		Engine:        st.Engine,
		Durable:       st.Durable,
		Users:         st.Users,
		Relationships: st.Relationships,
	}
	if st.Durable {
		resp.Role = "leader"
		rec := s.net.Recovery()
		resp.Recovery = &httpapi.Recovery{Groups: rec.Groups, TornTail: rec.TornTail, CheckpointSeq: rec.CheckpointSeq}
	}
	if s.net.Follower() {
		rs := s.net.ReplicaStatus()
		resp.Role = "follower"
		resp.Replica = &httpapi.Replica{
			Epoch:       rs.Epoch,
			Connected:   rs.Connected,
			Halted:      rs.Halted,
			AppliedSeq:  rs.AppliedSeq,
			AppliedOff:  rs.AppliedOff,
			LagBytes:    rs.LagBytes(),
			StalenessMS: time.Since(rs.LastContact).Milliseconds(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, httpapi.StatsResponse{
		Stats: s.net.Stats(),
		Server: httpapi.ServerStats{
			CommitGroups:       s.co.groups.Load(),
			CoalescedMutations: s.co.applied.Load(),
			QueueRejected:      s.co.rejected.Load(),
			CheckRejected:      s.checkRejected.Load(),
			QueueDepth:         s.co.depth(),
		},
	})
}

func (s *Server) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req httpapi.AddUserRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		badRequest(w, errors.New("name is required"))
		return
	}
	attrs, err := attrsFromWire(req.Attrs)
	if err != nil {
		badRequest(w, err)
		return
	}
	var id reachac.UserID
	err = s.co.enqueue(r.Context(), func(tx *reachac.Tx) error {
		var e error
		id, e = tx.AddUser(req.Name, attrs...)
		return e
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, httpapi.UserResponse{ID: uint32(id), Name: req.Name})
}

func (s *Server) handleGetUser(w http.ResponseWriter, r *http.Request) {
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	name := r.PathValue("name")
	id, ok := v.UserID(name)
	if !ok {
		s.httpError(w, fmt.Errorf("user %q: %w", name, reachac.ErrUnknownUser))
		return
	}
	writeJSON(w, http.StatusOK, httpapi.UserResponse{ID: uint32(id), Name: name})
}

// resolveTxUser looks a named member up inside the transaction, so the ID is
// consistent with everything the commit group applied before this op (a user
// added earlier in the same group resolves correctly).
func resolveTxUser(tx *reachac.Tx, name string) (reachac.UserID, error) {
	id, ok := tx.UserID(name)
	if !ok {
		return 0, fmt.Errorf("user %q: %w", name, reachac.ErrUnknownUser)
	}
	return id, nil
}

func (s *Server) handleRelate(w http.ResponseWriter, r *http.Request) {
	var req httpapi.RelateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.From == "" || req.To == "" || req.Type == "" {
		badRequest(w, errors.New("from, to and type are required"))
		return
	}
	err := s.co.enqueue(r.Context(), func(tx *reachac.Tx) error {
		from, err := resolveTxUser(tx, req.From)
		if err != nil {
			return err
		}
		to, err := resolveTxUser(tx, req.To)
		if err != nil {
			return err
		}
		if err := tx.Relate(from, to, req.Type); err != nil {
			return err
		}
		if req.Mutual {
			return tx.Relate(to, from, req.Type)
		}
		return nil
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUnrelate(w http.ResponseWriter, r *http.Request) {
	var req httpapi.UnrelateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	err := s.co.enqueue(r.Context(), func(tx *reachac.Tx) error {
		from, err := resolveTxUser(tx, req.From)
		if err != nil {
			return err
		}
		to, err := resolveTxUser(tx, req.To)
		if err != nil {
			return err
		}
		return tx.Unrelate(from, to, req.Type)
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleShare(w http.ResponseWriter, r *http.Request) {
	var req httpapi.ShareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Resource == "" || req.Owner == "" || len(req.Paths) == 0 {
		badRequest(w, errors.New("resource, owner and at least one path are required"))
		return
	}
	for _, p := range req.Paths {
		if _, err := reachac.ParsePath(p); err != nil {
			badRequest(w, err)
			return
		}
	}
	var rule string
	err := s.co.enqueue(r.Context(), func(tx *reachac.Tx) error {
		owner, err := resolveTxUser(tx, req.Owner)
		if err != nil {
			return err
		}
		rule, err = tx.Share(req.Resource, owner, req.Paths...)
		return err
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, httpapi.ShareResponse{Rule: rule})
}

func (s *Server) handleRevoke(w http.ResponseWriter, r *http.Request) {
	var req httpapi.RevokeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var removed bool
	err := s.co.enqueue(r.Context(), func(tx *reachac.Tx) error {
		removed = tx.Revoke(req.Resource, req.Rule)
		return nil
	})
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.RevokeResponse{Removed: removed})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	q := r.URL.Query()
	resource, requester := q.Get("resource"), q.Get("requester")
	if resource == "" || requester == "" {
		badRequest(w, errors.New("resource and requester are required"))
		return
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	id, ok := v.UserID(requester)
	if !ok {
		s.httpError(w, fmt.Errorf("user %q: %w", requester, reachac.ErrUnknownUser))
		return
	}
	d, err := v.CanAccess(resource, id)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireDecision(v, d))
}

func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	// Decode before admitting: a slow client trickling its body must not
	// hold a check slot while it does.
	var req httpapi.CheckBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Resource == "" {
		badRequest(w, errors.New("resource is required"))
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	ids := make([]reachac.UserID, len(req.Requesters))
	for i, name := range req.Requesters {
		id, ok := v.UserID(name)
		if !ok {
			s.httpError(w, fmt.Errorf("user %q: %w", name, reachac.ErrUnknownUser))
			return
		}
		ids[i] = id
	}
	ds, err := v.CanAccessAll(req.Resource, ids)
	if err != nil {
		s.httpError(w, err)
		return
	}
	out := make([]httpapi.Decision, len(ds))
	for i, d := range ds {
		out[i] = wireDecision(v, d)
	}
	writeJSON(w, http.StatusOK, httpapi.CheckBatchResponse{Decisions: out})
}

func (s *Server) handleAudience(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	resource := r.URL.Query().Get("resource")
	if resource == "" {
		badRequest(w, errors.New("resource is required"))
		return
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	ids, err := v.Audience(resource)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.UsersResponse{Users: idsToNames(v, ids)})
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	q := r.URL.Query()
	owner, requester, path := q.Get("owner"), q.Get("requester"), q.Get("path")
	if owner == "" || requester == "" || path == "" {
		badRequest(w, errors.New("owner, requester and path are required"))
		return
	}
	canonical, err := reachac.ParsePath(path)
	if err != nil {
		badRequest(w, err)
		return
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	oid, ok := v.UserID(owner)
	if !ok {
		s.httpError(w, fmt.Errorf("user %q: %w", owner, reachac.ErrUnknownUser))
		return
	}
	rid, ok := v.UserID(requester)
	if !ok {
		s.httpError(w, fmt.Errorf("user %q: %w", requester, reachac.ErrUnknownUser))
		return
	}
	reached, err := v.CheckPath(oid, rid, path)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.ReachResponse{Reachable: reached, Path: canonical})
}

func (s *Server) handleReachAudience(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	q := r.URL.Query()
	owner, path := q.Get("owner"), q.Get("path")
	if owner == "" || path == "" {
		badRequest(w, errors.New("owner and path are required"))
		return
	}
	if _, err := reachac.ParsePath(path); err != nil {
		badRequest(w, err)
		return
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	oid, ok := v.UserID(owner)
	if !ok {
		s.httpError(w, fmt.Errorf("user %q: %w", owner, reachac.ErrUnknownUser))
		return
	}
	ids, err := v.PathAudience(oid, path)
	if err != nil {
		s.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, httpapi.UsersResponse{Users: idsToNames(v, ids)})
}

func (s *Server) handleGetPolicies(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.net.SavePolicies(w); err != nil {
		// Headers are gone; the truncated body is the best signal left.
		return
	}
}

func (s *Server) handlePutPolicies(w http.ResponseWriter, r *http.Request) {
	if err := s.net.LoadPolicies(io.LimitReader(r.Body, 64<<20)); err != nil {
		s.httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	// The audit tail copies the whole retained trail; it rides the same
	// admission gate as every other read.
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		var err error
		if n, err = strconv.Atoi(raw); err != nil || n < 0 {
			badRequest(w, errors.New("n must be a non-negative integer"))
			return
		}
	}
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	trail := s.net.Audit()
	if n > 0 && len(trail) > n {
		trail = trail[len(trail)-n:]
	}
	out := make([]httpapi.Decision, len(trail))
	for i, d := range trail {
		out[i] = wireDecision(v, d)
	}
	writeJSON(w, http.StatusOK, httpapi.AuditResponse{Decisions: out})
}

// handleShardExpand advances one round of a distributed reachability search
// over this backend's local subgraph, on behalf of a shard router. It is a
// read like any other: same snapshot isolation, same admission gate.
func (s *Server) handleShardExpand(w http.ResponseWriter, r *http.Request) {
	var req httpapi.ShardExpandRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	resp, err := v.ShardExpand(req)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShardPolicies dumps this backend's policy store keyed by user name
// (the SavePolicies form embeds shard-local IDs, useless cross-process).
func (s *Server) handleShardPolicies(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	defer s.gate.release()
	v, ok := s.view(w)
	if !ok {
		return
	}
	defer v.Close()
	writeJSON(w, http.StatusOK, httpapi.ShardPoliciesResponse{Policies: v.PolicyDump()})
}

func idsToNames(v *reachac.View, ids []reachac.UserID) []string {
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		if name, ok := v.UserName(id); ok {
			names = append(names, name)
		}
	}
	return names
}

func attrsFromWire(m map[string]any) ([]reachac.Attr, error) {
	attrs := make([]reachac.Attr, 0, len(m))
	for k, val := range m {
		switch t := val.(type) {
		case string:
			attrs = append(attrs, reachac.StringAttr(k, t))
		case bool:
			attrs = append(attrs, reachac.BoolAttr(k, t))
		case float64:
			attrs = append(attrs, reachac.NumberAttr(k, t))
		default:
			return nil, fmt.Errorf("attribute %q: unsupported type %T (want string, number or bool)", k, val)
		}
	}
	return attrs, nil
}
