package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reachac"
)

// Admission failures, mapped by the handlers to 503 + Retry-After.
var (
	errQueueFull = errors.New("server: mutation queue is full")
	errSaturated = errors.New("server: too many concurrent checks")
	errDraining  = errors.New("server: shutting down")
)

// mutation is one writer's request riding a coalesced commit group.
type mutation struct {
	ctx context.Context
	fn  func(*reachac.Tx) error
	// done receives exactly one value: the request's own outcome, or the
	// whole group's commit error. Buffered so the committer never blocks on
	// a caller that gave up.
	done chan error
}

// coalescer folds concurrent mutation requests into shared Batch commit
// groups. Writers enqueue and block on their result; a single committer
// goroutine drains the queue and commits everything it gathered as ONE
// reachac.Batch — one atomic WAL record group, one fsync — failing each
// request individually via Tx.Sub. Under write pressure the group grows to
// maxBatch and the fsync cost amortizes across the group; an idle server
// degenerates to one group per mutation with no added latency.
type coalescer struct {
	net      *reachac.Network
	queue    chan *mutation
	maxBatch int
	// wait is how long the committer lingers after the first gathered
	// mutation for more to arrive. Zero means drain-only: coalesce whatever
	// is already queued, never delay a commit.
	wait time.Duration

	// mu guards closed so enqueue never races the queue close.
	mu      sync.RWMutex
	closed  bool
	stopped chan struct{}

	groups   atomic.Uint64 // committed groups that applied ≥ 1 mutation
	applied  atomic.Uint64 // mutations acknowledged across all groups
	rejected atomic.Uint64 // queue-full and deadline-expired rejections
}

func newCoalescer(n *reachac.Network, queueCap, maxBatch int, wait time.Duration) *coalescer {
	c := &coalescer{
		net:      n,
		queue:    make(chan *mutation, queueCap),
		maxBatch: maxBatch,
		wait:     wait,
		stopped:  make(chan struct{}),
	}
	go c.run()
	return c
}

// enqueue submits one mutation and blocks until its group commits (or the
// queue refuses it). A full queue rejects immediately — the caller answers
// 503 with Retry-After rather than holding the connection — and a request
// whose context expires while queued is abandoned: the committer skips
// expired mutations, so an unacknowledged request is at most *uncertainly*
// applied (the usual fate of a timed-out write), never silently acknowledged.
func (c *coalescer) enqueue(ctx context.Context, fn func(*reachac.Tx) error) error {
	m := &mutation{ctx: ctx, fn: fn, done: make(chan error, 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return errDraining
	}
	select {
	case c.queue <- m:
		c.mu.RUnlock()
	default:
		c.mu.RUnlock()
		c.rejected.Add(1)
		return errQueueFull
	}
	select {
	case err := <-m.done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("server: request abandoned before commit: %w", ctx.Err())
	}
}

// run is the committer loop: gather a group, commit it, repeat until the
// queue is closed and drained.
func (c *coalescer) run() {
	defer close(c.stopped)
	for m := range c.queue {
		c.commit(c.gather(m))
	}
}

// gather collects up to maxBatch mutations for one commit group: everything
// already queued, plus — when a coalesce window is configured — whatever
// else arrives within it.
func (c *coalescer) gather(first *mutation) []*mutation {
	batch := []*mutation{first}
	if c.wait <= 0 {
		for len(batch) < c.maxBatch {
			select {
			case m, ok := <-c.queue:
				if !ok {
					return batch
				}
				batch = append(batch, m)
			default:
				return batch
			}
		}
		return batch
	}
	t := time.NewTimer(c.wait)
	defer t.Stop()
	for len(batch) < c.maxBatch {
		select {
		case m, ok := <-c.queue:
			if !ok {
				return batch
			}
			batch = append(batch, m)
		case <-t.C:
			return batch
		}
	}
	return batch
}

// commit applies one gathered group as a single Batch. Each mutation runs as
// a sub-transaction: its own failure rolls back only its effects and is
// reported only to it, while a commit (WAL) failure fails the whole group —
// nothing in it was acknowledged.
func (c *coalescer) commit(batch []*mutation) {
	errs := make([]error, len(batch))
	commitErr := c.net.Batch(func(tx *reachac.Tx) error {
		for i, m := range batch {
			if err := m.ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("server: deadline expired before commit: %w", err)
				c.rejected.Add(1)
				continue
			}
			errs[i] = tx.Sub(m.fn)
		}
		return nil
	})
	applied := 0
	for i, m := range batch {
		if commitErr != nil {
			errs[i] = commitErr
		} else if errs[i] == nil {
			applied++
		}
		m.done <- errs[i]
	}
	if commitErr == nil && applied > 0 {
		c.groups.Add(1)
		c.applied.Add(uint64(applied))
	}
}

// shutdown stops intake, waits for the committer to drain every queued
// mutation (bounded by ctx) and returns. Safe to call more than once.
func (c *coalescer) shutdown(ctx context.Context) error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.queue)
	}
	c.mu.Unlock()
	select {
	case <-c.stopped:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

func (c *coalescer) depth() int { return len(c.queue) }
