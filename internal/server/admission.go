package server

import (
	"context"
	"time"
)

// gate is the read-side admission controller: a counting semaphore bounding
// in-flight checks so a burst cannot pile up unbounded goroutines behind the
// evaluator. Acquisition is deadline-aware — a request waits at most wait
// (and never past its own context) before being rejected for the caller to
// turn into 503 + Retry-After.
type gate struct {
	sem  chan struct{}
	wait time.Duration
}

func newGate(slots int, wait time.Duration) *gate {
	return &gate{sem: make(chan struct{}, slots), wait: wait}
}

// acquire reserves one slot, reporting false when none frees up within the
// admission window or the request's own deadline. A true return must be
// balanced by release.
func (g *gate) acquire(ctx context.Context) bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
	}
	if g.wait <= 0 {
		return false
	}
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-t.C:
		return false
	}
}

func (g *gate) release() { <-g.sem }
