package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/server"
)

// harness is one running serving stack over a durable directory.
type harness struct {
	dir string
	net *reachac.Network
	srv *server.Server
	ts  *httptest.Server
	c   *client.Client
}

func newHarness(t *testing.T, kind reachac.EngineKind, cfg server.Config, opts ...reachac.Option) *harness {
	t.Helper()
	dir := t.TempDir()
	n, err := reachac.Open(dir, append([]reachac.Option{reachac.WithEngine(kind)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(n, cfg)
	ts := httptest.NewServer(srv)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{dir: dir, net: n, srv: srv, ts: ts, c: c}
	t.Cleanup(func() {
		h.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := h.srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return h
}

var allKinds = []reachac.EngineKind{
	reachac.Online, reachac.OnlineDFS, reachac.OnlineAdaptive,
	reachac.Closure, reachac.Index, reachac.IndexPaperJoin,
}

// TestServerEndpointsAllEngines drives every endpoint end to end — through
// the real HTTP stack and the typed client — across all six engine kinds.
func TestServerEndpointsAllEngines(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			h := newHarness(t, kind, server.Config{})
			ctx := context.Background()
			c := h.c

			// Users.
			if _, err := c.AddUser(ctx, "alice", nil); err != nil {
				t.Fatal(err)
			}
			bobID, err := c.AddUser(ctx, "bob", map[string]any{"age": 24, "admin": true, "city": "basel"})
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"carol", "dave"} {
				if _, err := c.AddUser(ctx, name, nil); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := c.AddUser(ctx, "alice", nil); !errors.Is(err, reachac.ErrDuplicateUser) {
				t.Fatalf("duplicate AddUser: %v", err)
			}
			if id, err := c.UserID(ctx, "bob"); err != nil || id != bobID {
				t.Fatalf("UserID(bob) = %d, %v (want %d)", id, err, bobID)
			}
			if _, err := c.UserID(ctx, "zed"); !errors.Is(err, reachac.ErrUnknownUser) {
				t.Fatalf("UserID(zed): %v", err)
			}

			// Relationships.
			if err := c.Relate(ctx, "alice", "bob", "friend"); err != nil {
				t.Fatal(err)
			}
			if err := c.RelateMutual(ctx, "bob", "carol", "friend"); err != nil {
				t.Fatal(err)
			}
			if err := c.Relate(ctx, "alice", "bob", "friend"); !errors.Is(err, reachac.ErrDuplicateRelationship) {
				t.Fatalf("duplicate Relate: %v", err)
			}
			if err := c.Relate(ctx, "alice", "zed", "friend"); !errors.Is(err, reachac.ErrUnknownUser) {
				t.Fatalf("Relate to unknown: %v", err)
			}
			if err := c.Relate(ctx, "alice", "alice", "friend"); !errors.Is(err, reachac.ErrSelfRelationship) {
				t.Fatalf("self Relate: %v", err)
			}
			if err := c.Unrelate(ctx, "alice", "dave", "enemy"); !errors.Is(err, reachac.ErrUnknownRelationship) {
				t.Fatalf("Unrelate missing: %v", err)
			}

			// Share / check / audience.
			rule, err := c.Share(ctx, "photo", "alice", "friend+[1,2]")
			if err != nil || rule == "" {
				t.Fatalf("Share = %q, %v", rule, err)
			}
			if _, err := c.Share(ctx, "photo", "alice", "friend+["); err == nil {
				t.Fatal("Share with a bad path accepted")
			}
			if _, err := c.Share(ctx, "photo", "bob", "friend+[1]"); !errors.Is(err, reachac.ErrResourceOwned) {
				t.Fatalf("Share of another user's resource: %v", err)
			}
			d, err := c.Check(ctx, "photo", "bob")
			if err != nil || d.Effect != "allow" {
				t.Fatalf("Check(photo, bob) = %+v, %v", d, err)
			}
			if d.Requester != "bob" || d.Rule != rule {
				t.Fatalf("decision wire form: %+v", d)
			}
			if d, err = c.Check(ctx, "photo", "dave"); err != nil || d.Effect != "deny" {
				t.Fatalf("Check(photo, dave) = %+v, %v", d, err)
			}
			// Unknown resources deny by default (the model), not 404.
			if d, err = c.Check(ctx, "nothing", "bob"); err != nil || d.Effect != "deny" {
				t.Fatalf("Check(nothing, bob) = %+v, %v", d, err)
			}
			if _, err := c.Check(ctx, "photo", "zed"); !errors.Is(err, reachac.ErrUnknownUser) {
				t.Fatalf("Check by unknown requester: %v", err)
			}

			ds, err := c.CheckBatch(ctx, "photo", []string{"bob", "carol", "dave"})
			if err != nil || len(ds) != 3 {
				t.Fatalf("CheckBatch = %v, %v", ds, err)
			}
			for i, want := range []string{"allow", "allow", "deny"} {
				if ds[i].Effect != want {
					t.Fatalf("CheckBatch[%d] = %+v, want %s", i, ds[i], want)
				}
			}

			aud, err := c.Audience(ctx, "photo")
			if err != nil || len(aud) != 2 || aud[0] != "bob" || aud[1] != "carol" {
				t.Fatalf("Audience = %v, %v", aud, err)
			}
			if _, err := c.Audience(ctx, "nothing"); !errors.Is(err, reachac.ErrUnknownResource) {
				t.Fatalf("Audience of unknown resource: %v", err)
			}

			// Raw reachability.
			if ok, err := c.Reach(ctx, "alice", "carol", "friend+[1,2]"); err != nil || !ok {
				t.Fatalf("Reach(alice, carol) = %v, %v", ok, err)
			}
			if ok, err := c.Reach(ctx, "alice", "dave", "friend+[1,2]"); err != nil || ok {
				t.Fatalf("Reach(alice, dave) = %v, %v", ok, err)
			}
			ra, err := c.ReachAudience(ctx, "alice", "friend+[1,2]")
			if err != nil || len(ra) != 2 {
				t.Fatalf("ReachAudience = %v, %v", ra, err)
			}

			// Revoke.
			if removed, err := c.Revoke(ctx, "photo", rule); err != nil || !removed {
				t.Fatalf("Revoke = %v, %v", removed, err)
			}
			if removed, err := c.Revoke(ctx, "photo", rule); err != nil || removed {
				t.Fatalf("second Revoke = %v, %v", removed, err)
			}
			if d, err = c.Check(ctx, "photo", "bob"); err != nil || d.Effect != "deny" {
				t.Fatalf("Check after revoke = %+v, %v", d, err)
			}

			// Policies round-trip.
			if _, err := c.Share(ctx, "photo", "alice", "friend+[1]"); err != nil {
				t.Fatal(err)
			}
			pol, err := c.Policies(ctx)
			if err != nil || len(pol) == 0 {
				t.Fatalf("Policies = %d bytes, %v", len(pol), err)
			}
			if err := c.SetPolicies(ctx, pol); err != nil {
				t.Fatalf("SetPolicies: %v", err)
			}
			if d, err = c.Check(ctx, "photo", "bob"); err != nil || d.Effect != "allow" {
				t.Fatalf("Check after policy round-trip = %+v, %v", d, err)
			}

			// Audit tail.
			trail, err := c.Audit(ctx, 5)
			if err != nil || len(trail) == 0 || len(trail) > 5 {
				t.Fatalf("Audit = %d decisions, %v", len(trail), err)
			}

			// Health and stats.
			hl, err := c.Health(ctx)
			if err != nil || hl.Status != "ok" || !hl.Durable || hl.Users != 4 {
				t.Fatalf("Health = %+v, %v", hl, err)
			}
			if hl.Engine != kind.String() {
				t.Fatalf("Health.Engine = %q, want %q", hl.Engine, kind)
			}
			st, err := c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Checks == 0 || st.Mutations == 0 || st.Batches == 0 || !st.Durable {
				t.Fatalf("Stats = %+v", st)
			}
			if st.Server.CommitGroups == 0 || st.Server.CoalescedMutations == 0 {
				t.Fatalf("Server stats = %+v", st.Server)
			}
		})
	}
}

// TestServerCoalescesConcurrentWriters is the group-commit acceptance test:
// many concurrent writers must need fewer WAL fsyncs than mutations.
func TestServerCoalescesConcurrentWriters(t *testing.T) {
	h := newHarness(t, reachac.Online, server.Config{
		CoalesceWait:  2 * time.Millisecond,
		CoalesceBatch: 64,
	}, reachac.WithSync(reachac.SyncAlways))
	ctx := context.Background()

	const writers, perWriter = 16, 8
	const mutations = writers * perWriter
	for i := 0; i < 2*mutations; i++ {
		if _, err := h.c.AddUser(ctx, fmt.Sprintf("u%04d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	before := h.net.Stats()

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				k := w*perWriter + j
				from, to := fmt.Sprintf("u%04d", 2*k), fmt.Sprintf("u%04d", 2*k+1)
				if err := h.c.Relate(ctx, from, to, "friend"); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	after := h.net.Stats()
	gotMut := after.Mutations - before.Mutations
	gotFsync := after.WALFsyncs - before.WALFsyncs
	if gotMut != mutations {
		t.Fatalf("mutations counted = %d, want %d", gotMut, mutations)
	}
	if gotFsync >= mutations {
		t.Fatalf("write coalescing ineffective: %d fsyncs for %d mutations", gotFsync, mutations)
	}
	t.Logf("%d mutations in %d fsyncs (%.1fx coalescing)", gotMut, gotFsync, float64(gotMut)/float64(gotFsync))

	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.CommitGroups == 0 || st.Server.CoalescedMutations < mutations {
		t.Fatalf("server coalescing stats = %+v", st.Server)
	}
}

// TestServerGracefulShutdownDrains stops the server mid-traffic and proves
// every acknowledged mutation survives into a clean reopen.
func TestServerGracefulShutdownDrains(t *testing.T) {
	dir := t.TempDir()
	n, err := reachac.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(n, server.Config{CoalesceWait: time.Millisecond})
	ts := httptest.NewServer(srv)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const writers = 8
	for i := 0; i < 2*writers*64; i++ {
		if _, err := c.AddUser(ctx, fmt.Sprintf("u%04d", i), nil); err != nil {
			t.Fatal(err)
		}
	}

	var (
		mu    sync.Mutex
		acked [][2]string
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 64; j++ {
				k := w*64 + j
				from, to := fmt.Sprintf("u%04d", 2*k), fmt.Sprintf("u%04d", 2*k+1)
				if err := c.Relate(ctx, from, to, "friend"); err != nil {
					return // shutdown raced the request: unacknowledged
				}
				mu.Lock()
				acked = append(acked, [2]string{from, to})
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	ts.Close() // stops the listener, waits for in-flight handlers
	wg.Wait()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if len(acked) == 0 {
		t.Fatal("no mutation was acknowledged before shutdown")
	}

	n2, err := reachac.Open(dir)
	if err != nil {
		t.Fatalf("reopen after graceful shutdown: %v", err)
	}
	defer n2.Close()
	if n2.Recovery().TornTail {
		t.Fatal("graceful shutdown left a torn WAL tail")
	}
	for _, pair := range acked {
		ok, err := n2.CheckPath(mustID(t, n2, pair[0]), mustID(t, n2, pair[1]), "friend+[1]")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("acknowledged relationship %s -> %s lost across shutdown", pair[0], pair[1])
		}
	}
	t.Logf("%d acknowledged mutations all recovered", len(acked))
}

func mustID(t *testing.T, n *reachac.Network, name string) reachac.UserID {
	t.Helper()
	id, ok := n.UserID(name)
	if !ok {
		t.Fatalf("user %q missing after recovery", name)
	}
	return id
}

// discardResponse is a zero-retention ResponseWriter so the benchmark
// measures the serving path, not response buffering.
type discardResponse struct {
	h    http.Header
	code int
}

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponse) WriteHeader(code int)        { d.code = code }

// BenchmarkServerCheckParallel measures check throughput through the full
// handler stack off the shared snapshot; it should scale with GOMAXPROCS
// (given more than one core): checks pin the published snapshot with two
// atomic ops and share no locks.
func BenchmarkServerCheckParallel(b *testing.B) {
	n := reachac.New()
	alice := n.MustAddUser("alice")
	prev := alice
	for i := 0; i < 200; i++ {
		u := n.MustAddUser(fmt.Sprintf("u%04d", i))
		if err := n.Relate(prev, u, "friend"); err != nil {
			b.Fatal(err)
		}
		prev = u
	}
	if _, err := n.Share("photo", alice, "friend+[1,3]"); err != nil {
		b.Fatal(err)
	}
	srv := server.New(n, server.Config{MaxConcurrentChecks: 1 << 20})
	defer srv.Shutdown(context.Background())

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, "/v1/check?resource=photo&requester=u0002", nil)
		w := &discardResponse{h: make(http.Header)}
		for pb.Next() {
			w.code = 0
			srv.ServeHTTP(w, req)
			if w.code != http.StatusOK {
				b.Fatalf("HTTP %d", w.code)
			}
		}
	})
}
