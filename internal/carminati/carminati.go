// Package carminati implements the rule-based access control baseline the
// paper positions itself against (§4): Carminati, Ferrari and Perego,
// "Rule-Based Access Control for Social Networks" (OTM 2006). There, the
// target of an authorization is a sub-graph centered on the resource owner:
// a single relationship type, a maximum distance (fixed radius), and a
// minimum trust level propagated along the connecting path.
//
// The paper's contribution generalizes this model — ordered multi-type
// sequences, per-step directions and depth intervals, and attribute
// predicates — so this package serves two purposes: a working comparator
// for the expressiveness discussion (EXPERIMENTS.md E7), and a test oracle
// (a trust-free Carminati rule (t, d) must decide exactly like the path
// expression t+[1,d]).
package carminati

import (
	"fmt"

	"reachac/internal/graph"
)

// Rule is a Carminati-style authorization: requesters within MaxDepth hops
// of the owner over edges of a single relationship Type, connected by a
// path whose propagated trust is at least MinTrust.
type Rule struct {
	// Type is the single relationship type of the sub-graph.
	Type string
	// MaxDepth is the radius of the authorized sub-graph (>= 1).
	MaxDepth int
	// MinTrust is the minimum propagated trust in [0, 1]; trust multiplies
	// along a path, and the best path counts. Zero accepts any path.
	MinTrust float64
}

// Validate checks structural sanity.
func (r Rule) Validate() error {
	if r.Type == "" {
		return fmt.Errorf("carminati: empty relationship type")
	}
	if r.MaxDepth < 1 {
		return fmt.Errorf("carminati: max depth %d < 1", r.MaxDepth)
	}
	if r.MinTrust < 0 || r.MinTrust > 1 {
		return fmt.Errorf("carminati: min trust %v outside [0,1]", r.MinTrust)
	}
	return nil
}

// edgeTrust interprets an edge's weight annotation as a trust level; the
// generator leaves most weights at 0, which reads as fully trusted (1.0) so
// that trust-free graphs behave like the unweighted model.
func edgeTrust(e graph.Edge) float64 {
	if e.Weight == 0 {
		return 1.0
	}
	return e.Weight
}

// Engine evaluates Carminati rules over a social graph.
type Engine struct {
	g *graph.Graph
}

// New returns an evaluator over g.
func New(g *graph.Graph) *Engine { return &Engine{g: g} }

// Decide reports whether requester falls inside the rule's authorized
// sub-graph around owner, and the best propagated trust of a qualifying
// path (0 when denied).
func (e *Engine) Decide(owner, requester graph.NodeID, r Rule) (bool, float64, error) {
	if err := r.Validate(); err != nil {
		return false, 0, err
	}
	if !e.g.ValidNode(owner) || !e.g.ValidNode(requester) {
		return false, 0, fmt.Errorf("carminati: invalid node (owner=%d requester=%d)", owner, requester)
	}
	label, ok := e.g.LookupLabel(r.Type)
	if !ok {
		return false, 0, nil
	}
	// Dijkstra-flavored best-trust search, layered by depth: best[v] is the
	// highest trust of any path to v found within the depth bound so far.
	// Because trust multiplies by factors <= 1, shorter prefixes never hurt,
	// so a per-depth BFS keeping the per-node maximum is exact.
	best := make(map[graph.NodeID]float64, 16)
	best[owner] = 1.0
	frontier := map[graph.NodeID]float64{owner: 1.0}
	granted := false
	bestGrant := 0.0
	for depth := 1; depth <= r.MaxDepth && len(frontier) > 0; depth++ {
		next := make(map[graph.NodeID]float64)
		for v, trust := range frontier {
			e.g.OutEdges(v, func(ed graph.Edge) bool {
				if ed.Label != label {
					return true
				}
				t := trust * edgeTrust(ed)
				if t < r.MinTrust {
					return true // trust only decays; prune
				}
				if ed.To == requester {
					// Grant independently of dominance: the owner's own
					// seed trust must not mask a cycle back to them.
					granted = true
					if t > bestGrant {
						bestGrant = t
					}
				}
				// Dominance: only an improved trust re-expands a node. The
				// owner's seed (1.0) correctly dominates cycles back through
				// the owner — removing such a cycle always leaves a shorter
				// path with at least the same trust.
				if t > best[ed.To] {
					best[ed.To] = t
					next[ed.To] = t
				}
				return true
			})
		}
		frontier = next
	}
	if !granted {
		return false, 0, nil
	}
	return true, bestGrant, nil
}

// Audience enumerates every member the rule authorizes around owner, in
// node-ID order.
func (e *Engine) Audience(owner graph.NodeID, r Rule) ([]graph.NodeID, error) {
	var out []graph.NodeID
	var firstErr error
	e.g.Nodes(func(n graph.Node) bool {
		if n.ID == owner {
			return true
		}
		ok, _, err := e.Decide(owner, n.ID, r)
		if err != nil {
			firstErr = err
			return false
		}
		if ok {
			out = append(out, n.ID)
		}
		return true
	})
	return out, firstErr
}

// AsPathExpr renders the trust-free part of a rule in the paper's path
// language: (t, d) becomes "t+[1,d]". The trust threshold has no
// counterpart in the path language (weights are uninterpreted there), which
// is the one direction in which Carminati's model is not subsumed.
func (r Rule) AsPathExpr() string {
	return fmt.Sprintf("%s+[1,%d]", r.Type, r.MaxDepth)
}
