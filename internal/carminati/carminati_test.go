package carminati

import (
	"math/rand"
	"testing"

	"reachac/internal/graph"
	"reachac/internal/paperfix"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
)

func TestValidate(t *testing.T) {
	bad := []Rule{
		{Type: "", MaxDepth: 1},
		{Type: "friend", MaxDepth: 0},
		{Type: "friend", MaxDepth: 1, MinTrust: -0.1},
		{Type: "friend", MaxDepth: 1, MinTrust: 1.1},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d: %+v accepted", i, r)
		}
	}
	if (Rule{Type: "friend", MaxDepth: 3, MinTrust: 0.5}).Validate() != nil {
		t.Error("valid rule rejected")
	}
}

func TestPaperGraphRadius(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice, _ := g.NodeByName(paperfix.Alice)
	george, _ := g.NodeByName(paperfix.George)
	// friend radius 3 reaches George (Alice-Bill-Elena-George); radius 2
	// does not.
	ok, trust, err := e.Decide(alice, george, Rule{Type: "friend", MaxDepth: 3})
	if err != nil || !ok || trust <= 0 {
		t.Fatalf("radius 3: %v %v %v", ok, trust, err)
	}
	ok, _, err = e.Decide(alice, george, Rule{Type: "friend", MaxDepth: 2})
	if err != nil || ok {
		t.Fatalf("radius 2 wrongly granted: %v %v", ok, err)
	}
}

func TestTrustThreshold(t *testing.T) {
	g := graph.New()
	a := g.MustAddNode("a", nil)
	b := g.MustAddNode("b", nil)
	c := g.MustAddNode("c", nil)
	// a -0.8-> b -0.5-> c : propagated trust to c = 0.4.
	if _, err := g.AddWeightedEdge(a, b, "friend", 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddWeightedEdge(b, c, "friend", 0.5); err != nil {
		t.Fatal(err)
	}
	e := New(g)
	ok, trust, err := e.Decide(a, c, Rule{Type: "friend", MaxDepth: 2, MinTrust: 0.3})
	if err != nil || !ok {
		t.Fatalf("0.3 threshold: %v %v", ok, err)
	}
	if trust < 0.399 || trust > 0.401 {
		t.Fatalf("propagated trust = %v, want 0.4", trust)
	}
	ok, _, err = e.Decide(a, c, Rule{Type: "friend", MaxDepth: 2, MinTrust: 0.5})
	if err != nil || ok {
		t.Fatalf("0.5 threshold wrongly granted: %v %v", ok, err)
	}
	// Direct neighbor passes a high threshold.
	ok, trust, _ = e.Decide(a, b, Rule{Type: "friend", MaxDepth: 2, MinTrust: 0.8})
	if !ok || trust != 0.8 {
		t.Fatalf("direct: %v %v", ok, trust)
	}
}

func TestBestPathWins(t *testing.T) {
	// Two paths to the target: a long trusted one and a short weak one; the
	// engine must report the best propagated trust.
	g := graph.New()
	a := g.MustAddNode("a", nil)
	m := g.MustAddNode("m", nil)
	tgt := g.MustAddNode("t", nil)
	if _, err := g.AddWeightedEdge(a, tgt, "friend", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddWeightedEdge(a, m, "friend", 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddWeightedEdge(m, tgt, "friend", 0.9); err != nil {
		t.Fatal(err)
	}
	e := New(g)
	ok, trust, err := e.Decide(a, tgt, Rule{Type: "friend", MaxDepth: 2, MinTrust: 0.5})
	if err != nil || !ok {
		t.Fatalf("best path: %v %v", ok, err)
	}
	if trust < 0.80 || trust > 0.82 {
		t.Fatalf("best trust = %v, want 0.81", trust)
	}
}

// TestTrustFreeEquivalence checks the §4 subsumption claim: a trust-free
// Carminati rule (t, d) decides exactly like the paper-model path t+[1,d].
func TestTrustFreeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	labels := []string{"friend", "colleague"}
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(12)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.MustAddNode(name(i), nil)
		}
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_, _ = g.AddEdge(u, v, labels[rng.Intn(len(labels))])
			}
		}
		ce := New(g)
		se := search.New(g)
		for _, d := range []int{1, 2, 3} {
			rule := Rule{Type: "friend", MaxDepth: d}
			p := pathexpr.MustParse(rule.AsPathExpr())
			for o := 0; o < n; o++ {
				for r := 0; r < n; r++ {
					oid, rid := graph.NodeID(o), graph.NodeID(r)
					want, err := se.Reachable(oid, rid, p)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := ce.Decide(oid, rid, rule)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d d=%d: (%d,%d) carminati=%v path=%v",
							trial, d, o, r, got, want)
					}
				}
			}
		}
	}
}

func name(i int) string {
	return "c" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestAudience(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	alice, _ := g.NodeByName(paperfix.Alice)
	audience, err := e.Audience(alice, Rule{Type: "friend", MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Alice's direct friends: Colin, Bill.
	if len(audience) != 2 {
		t.Fatalf("audience = %v", audience)
	}
	names := map[string]bool{}
	for _, id := range audience {
		names[g.Node(id).Name] = true
	}
	if !names[paperfix.Colin] || !names[paperfix.Bill] {
		t.Fatalf("audience names = %v", names)
	}
}

func TestUnknownLabelAndInvalidNodes(t *testing.T) {
	g := paperfix.Graph()
	e := New(g)
	ok, _, err := e.Decide(0, 1, Rule{Type: "enemy", MaxDepth: 2})
	if err != nil || ok {
		t.Fatalf("unknown label: %v %v", ok, err)
	}
	if _, _, err := e.Decide(999, 0, Rule{Type: "friend", MaxDepth: 1}); err == nil {
		t.Fatal("invalid node accepted")
	}
	if _, _, err := e.Decide(0, 1, Rule{Type: "friend", MaxDepth: 0}); err == nil {
		t.Fatal("invalid rule accepted")
	}
}

func TestAsPathExpr(t *testing.T) {
	r := Rule{Type: "friend", MaxDepth: 3, MinTrust: 0.5}
	if r.AsPathExpr() != "friend+[1,3]" {
		t.Fatalf("AsPathExpr = %q", r.AsPathExpr())
	}
	if _, err := pathexpr.Parse(r.AsPathExpr()); err != nil {
		t.Fatal(err)
	}
}
