package workload

import (
	"reflect"
	"testing"

	"reachac/internal/generate"
	"reachac/internal/graph"
)

func mixGraph() *graph.Graph {
	return generate.OSN(generate.OSNConfig{Nodes: 400, Seed: 42})
}

// TestGeneratorDeterministic: the same seed and configuration must yield
// the identical operation stream — the property the bench artifact's
// comparability rests on.
func TestGeneratorDeterministic(t *testing.T) {
	g := mixGraph()
	specs := Resources(g, 24, 5)
	for _, mix := range Mixes() {
		t.Run(mix.Name, func(t *testing.T) {
			cfg := GenConfig{Resources: specs, Worker: 1, Workers: 4}
			a := NewGenerator(g, mix, cfg, 99)
			b := NewGenerator(g, mix, cfg, 99)
			for i := 0; i < 5000; i++ {
				oa, ob := a.Next(), b.Next()
				if !reflect.DeepEqual(oa, ob) {
					t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
				}
			}
			c := NewGenerator(g, mix, cfg, 100)
			same := true
			for i := 0; i < 200; i++ {
				if !reflect.DeepEqual(a.Next(), c.Next()) {
					same = false
					break
				}
			}
			if same {
				t.Fatal("different seeds produced the same 200-op stream")
			}
		})
	}
}

// TestGeneratorMixRatios: the generated kind frequencies must track the
// mix weights.
func TestGeneratorMixRatios(t *testing.T) {
	g := mixGraph()
	specs := Resources(g, 24, 5)
	const n = 20000
	for _, tc := range []struct {
		mix    Mix
		kind   OpKind
		lo, hi float64
	}{
		{mustMix(t, "read-heavy"), OpCheck, 0.92, 0.98},
		{mustMix(t, "write-heavy"), OpCheck, 0.45, 0.55},
		{mustMix(t, "check-batch"), OpCheckBatch, 1, 1},
		{mustMix(t, "audience-scan"), OpAudience, 0.70, 0.80},
	} {
		gen := NewGenerator(g, tc.mix, GenConfig{Resources: specs}, 3)
		count := 0
		for i := 0; i < n; i++ {
			if gen.Next().Kind == tc.kind {
				count++
			}
		}
		frac := float64(count) / n
		if frac < tc.lo || frac > tc.hi {
			t.Errorf("%s: %v fraction %.3f outside [%v, %v]", tc.mix.Name, tc.kind, frac, tc.lo, tc.hi)
		}
	}
}

func mustMix(t *testing.T, name string) Mix {
	t.Helper()
	m, ok := MixByName(name)
	if !ok {
		t.Fatalf("missing mix %q", name)
	}
	return m
}

// TestGeneratorMutateToggle: relate/unrelate ops must balance — every
// unrelate removes an edge a preceding relate of the SAME generator
// added, and the live count never exceeds the window.
func TestGeneratorMutateToggle(t *testing.T) {
	g := mixGraph()
	specs := Resources(g, 8, 5)
	gen := NewGenerator(g, mustMix(t, "write-heavy"), GenConfig{Resources: specs, LiveEdges: 16}, 7)
	type pair struct {
		from, to graph.NodeID
		label    string
	}
	live := make(map[pair]bool)
	for i := 0; i < 10000; i++ {
		op := gen.Next()
		switch op.Kind {
		case OpRelate:
			p := pair{op.From, op.To, op.RelType}
			if live[p] {
				t.Fatalf("op %d: relate of already-live edge %+v", i, p)
			}
			if g.HasEdge(op.From, op.To, op.RelType) {
				t.Fatalf("op %d: relate collides with initial graph edge %+v", i, p)
			}
			live[p] = true
			if len(live) > 16 {
				t.Fatalf("op %d: live window exceeded: %d", i, len(live))
			}
		case OpUnrelate:
			p := pair{op.From, op.To, op.RelType}
			if !live[p] {
				t.Fatalf("op %d: unrelate of non-live edge %+v", i, p)
			}
			delete(live, p)
		}
	}
	if len(live) == 0 {
		t.Fatal("no edges were live at the end; toggle never warmed up")
	}
}

// TestGeneratorChurnBalance: every revoke targets a resource with an
// outstanding share from this generator, and outstanding shares respect
// the window.
func TestGeneratorChurnBalance(t *testing.T) {
	g := mixGraph()
	specs := Resources(g, 8, 5)
	gen := NewGenerator(g, mustMix(t, "churn"), GenConfig{Resources: specs, LiveRules: 4}, 7)
	outstanding := make(map[int]int)
	total := 0
	for i := 0; i < 5000; i++ {
		op := gen.Next()
		switch op.Kind {
		case OpShare:
			if op.Owner != specs[op.Resource].Owner {
				t.Fatalf("op %d: share owner %d != spec owner %d", i, op.Owner, specs[op.Resource].Owner)
			}
			if len(op.Paths) == 0 {
				t.Fatalf("op %d: share without paths", i)
			}
			outstanding[op.Resource]++
			total++
		case OpRevoke:
			if outstanding[op.Resource] == 0 {
				t.Fatalf("op %d: revoke on resource %d without outstanding share", i, op.Resource)
			}
			outstanding[op.Resource]--
			total--
		}
		if total > 4 {
			t.Fatalf("op %d: outstanding shares %d exceed window", i, total)
		}
	}
}

// TestGeneratorWorkerPartition: two workers' mutation edges must come
// from disjoint source-node partitions.
func TestGeneratorWorkerPartition(t *testing.T) {
	g := mixGraph()
	specs := Resources(g, 8, 5)
	mix := mustMix(t, "write-heavy")
	seen := make(map[graph.NodeID]int)
	for w := 0; w < 2; w++ {
		gen := NewGenerator(g, mix, GenConfig{Resources: specs, Worker: w, Workers: 2}, int64(100+w))
		for i := 0; i < 2000; i++ {
			op := gen.Next()
			if op.Kind != OpRelate && op.Kind != OpUnrelate {
				continue
			}
			if int(op.From)%2 != w {
				t.Fatalf("worker %d used out-of-partition source %d", w, op.From)
			}
			if prev, ok := seen[op.From]; ok && prev != w {
				t.Fatalf("source %d used by both workers", op.From)
			}
			seen[op.From] = w
		}
	}
}

func TestResourcesDeterministicAndOwned(t *testing.T) {
	g := mixGraph()
	a, b := Resources(g, 16, 9), Resources(g, 16, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Resources is not deterministic for a fixed seed")
	}
	for i, spec := range a {
		if spec.Name == "" || len(spec.Paths) == 0 {
			t.Fatalf("spec %d incomplete: %+v", i, spec)
		}
		if g.OutDegree(spec.Owner) == 0 {
			t.Fatalf("spec %d owner %d has no outgoing edges", i, spec.Owner)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k := OpCheck; k <= OpRevoke; k++ {
		if s := k.String(); s == "" || s[0] == 'O' {
			t.Fatalf("OpKind %d has bad name %q", k, s)
		}
	}
	if OpKind(200).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
