// Package workload generates deterministic query and request workloads for
// the E-series experiments: a catalog of policy shapes drawn from the
// paper's motivating examples, reachability-biased ("hit") owner/requester
// pairs sampled by bounded random walks, and uniform ("miss"-heavy) pairs.
package workload

import (
	"math/rand"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// QuerySpec is a named policy path shape.
type QuerySpec struct {
	Name string
	Path *pathexpr.Path
}

// DefaultCatalog returns the five policy shapes used across E2–E4, modeled
// on the audiences the paper's introduction motivates ("only my family and
// my friends", "my children and their friends", "colleagues of my friends",
// "those who consider me a friend", "friends of friends of friends").
func DefaultCatalog() []QuerySpec {
	return []QuerySpec{
		{"friends", pathexpr.MustParse("friend+[1]")},
		{"friends-of-friends", pathexpr.MustParse("friend+[1,2]")},
		{"colleagues-of-friends", pathexpr.MustParse("friend+[1,2]/colleague+[1]")},
		{"considers-me-friend", pathexpr.MustParse("friend-[1]")},
		{"children-network", pathexpr.MustParse("parent+[1]/friend+[1,2]")},
	}
}

// Pair is one owner/requester access pair.
type Pair struct {
	Owner, Requester graph.NodeID
}

// HitPairs samples n pairs where the requester was reached from the owner
// by a random forward walk of 1..maxRadius edges, so that typical policies
// have a good chance of matching (the E2 "hit" workload).
func HitPairs(src Source, n, maxRadius int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 0, n)
	nodes := src.NumNodes()
	if nodes == 0 {
		return pairs
	}
	for len(pairs) < n {
		owner := graph.NodeID(rng.Intn(nodes))
		cur := owner
		steps := 1 + rng.Intn(maxRadius)
		ok := true
		for s := 0; s < steps; s++ {
			outs := outTargets(src, cur)
			if len(outs) == 0 {
				ok = false
				break
			}
			cur = outs[rng.Intn(len(outs))]
		}
		if !ok || cur == owner {
			continue
		}
		pairs = append(pairs, Pair{owner, cur})
	}
	return pairs
}

// RandomPairs samples n uniform owner/requester pairs; on sparse labeled
// graphs most such pairs fail selective policies (the E3 "miss" workload).
func RandomPairs(src Source, n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 0, n)
	nodes := src.NumNodes()
	for len(pairs) < n {
		o := graph.NodeID(rng.Intn(nodes))
		r := graph.NodeID(rng.Intn(nodes))
		if o == r {
			continue
		}
		pairs = append(pairs, Pair{o, r})
	}
	return pairs
}

// Request is one simulated access request: a requester asks for a resource
// slot of an owner, to be checked against query q of the catalog.
type Request struct {
	Pair
	Query int
}

// Requests builds a request stream with zipf-distributed requester
// popularity (a few heavy accessors, a long tail) over hit-biased pairs.
func Requests(src Source, n int, catalog int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	nodes := src.NumNodes()
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(nodes-1))
	base := HitPairs(src, n, 3, seed+1)
	out := make([]Request, n)
	for i := range out {
		p := base[i%len(base)]
		// Replace the requester with a zipf-popular member half the time to
		// model hot accessors probing many resources.
		if rng.Intn(2) == 0 {
			p.Requester = graph.NodeID(zipf.Uint64())
			if p.Requester == p.Owner {
				p.Requester = graph.NodeID((uint64(p.Requester) + 1) % uint64(nodes))
			}
		}
		out[i] = Request{Pair: p, Query: rng.Intn(catalog)}
	}
	return out
}
