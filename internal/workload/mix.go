package workload

import (
	"fmt"
	"math/rand"

	"reachac/internal/graph"
)

// OpKind enumerates the operation types a scenario mix draws from.
type OpKind uint8

// Operation kinds.
const (
	// OpCheck is one access decision (resource, requester).
	OpCheck OpKind = iota
	// OpCheckBatch decides one resource for many requesters at once.
	OpCheckBatch
	// OpAudience enumerates everyone a resource's rules admit.
	OpAudience
	// OpRelate adds a relationship edge; OpUnrelate removes one the same
	// generator added earlier (the generator keeps the graph size stable
	// by toggling its own pairs).
	OpRelate
	OpUnrelate
	// OpShare attaches a rule to a resource; OpRevoke removes the oldest
	// rule this generator shared (the driver supplies the concrete rule
	// ID it got back from its matching OpShare).
	OpShare
	OpRevoke
)

func (k OpKind) String() string {
	switch k {
	case OpCheck:
		return "check"
	case OpCheckBatch:
		return "check-batch"
	case OpAudience:
		return "audience"
	case OpRelate:
		return "relate"
	case OpUnrelate:
		return "unrelate"
	case OpShare:
		return "share"
	case OpRevoke:
		return "revoke"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated operation. Which fields are meaningful depends on
// Kind; Resource indexes the scenario's ResourceSpec slice.
type Op struct {
	Kind       OpKind
	Resource   int
	Requester  graph.NodeID
	Requesters []graph.NodeID
	Owner      graph.NodeID
	From, To   graph.NodeID
	RelType    string
	Paths      []string
}

// Mix weighs the operation families of a named scenario. The weights are
// relative; zero-weight families never occur. Mutate covers the
// relate/unrelate edge toggle, Churn the share/revoke policy cycle.
type Mix struct {
	Name       string
	Check      float64
	CheckBatch float64
	Audience   float64
	Mutate     float64
	Churn      float64
	// BatchSize sizes OpCheckBatch requester lists (default 16).
	BatchSize int
}

// Mixes returns the mixes of every registered scenario, in registration
// order.
//
// Deprecated: use Scenarios — a scenario carries its catalog and tenant
// partitioning alongside the mix.
func Mixes() []Mix {
	scs := Scenarios()
	out := make([]Mix, len(scs))
	for i, sc := range scs {
		out[i] = sc.Mix
	}
	return out
}

// MixByName resolves a registered scenario's mix.
//
// Deprecated: use Lookup.
func MixByName(name string) (Mix, bool) {
	sc, ok := Lookup(name)
	return sc.Mix, ok
}

// ResourceSpec is one pre-shared resource a scenario runs against: its
// name, owning member, and the policy paths of its initial rule.
type ResourceSpec struct {
	Name  string
	Owner graph.NodeID
	Paths []string
}

// Resources picks n resources owned by members with outgoing edges (so
// their policies can match someone), rotating the policy shapes of
// DefaultCatalog. Deterministic for a given seed.
//
// Deprecated: use Scenario.Resources, which also honors the scenario's
// own catalog and tenant partitioning.
func Resources(src Source, n int, seed int64) []ResourceSpec {
	return Scenario{Catalog: DefaultCatalog()}.Resources(src, n, seed)
}

// GenConfig parameterizes a Generator beyond its mix.
type GenConfig struct {
	// Resources are the scenario's pre-shared resources (required).
	Resources []ResourceSpec
	// HitFraction is the probability a check's requester is drawn from
	// the resource owner's random-walk hit set — likely to satisfy the
	// policy — instead of zipf-skewed over all members (default 0.6).
	HitFraction float64
	// MaxWalk bounds the hit-sampling walk length (default 3).
	MaxWalk int
	// ZipfS and ZipfV shape the requester/resource popularity skew
	// (defaults 1.2 and 1.0; a few hot members and resources, a long
	// tail).
	ZipfS, ZipfV float64
	// Worker and Workers partition the mutation key space: generator w of
	// W only toggles edges whose source node id ≡ w (mod W), so
	// concurrent generators never contend on the same relationship.
	// Defaults 0 of 1.
	Worker, Workers int
	// LiveEdges is the toggle window: the generator adds edges until this
	// many of its own are live, then alternates removal and addition,
	// keeping the graph size stable (default 64).
	LiveEdges int
	// LiveRules is the churn window: outstanding shares before the
	// generator starts revoking its oldest (default 16).
	LiveRules int
	// RelTypes are the labels mutation edges rotate through (default
	// ["friend", "colleague"]).
	RelTypes []string
	// HitSetSize bounds the per-resource hit sample (default 32).
	HitSetSize int
	// Catalog is the policy-shape catalog churn shares rotate through
	// (default DefaultCatalog); scenario-driven drivers pass their
	// scenario's catalog so churned-in rules match the scenario's shape
	// family.
	Catalog []QuerySpec
}

func (c *GenConfig) defaults() {
	if c.HitFraction <= 0 {
		c.HitFraction = 0.6
	}
	if c.MaxWalk <= 0 {
		c.MaxWalk = 3
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1.0
	}
	if c.Workers <= 0 {
		c.Worker, c.Workers = 0, 1
	}
	if c.LiveEdges <= 0 {
		c.LiveEdges = 64
	}
	if c.LiveRules <= 0 {
		c.LiveRules = 16
	}
	if len(c.RelTypes) == 0 {
		c.RelTypes = []string{"friend", "colleague"}
	}
	if c.HitSetSize <= 0 {
		c.HitSetSize = 32
	}
	if len(c.Catalog) == 0 {
		c.Catalog = DefaultCatalog()
	}
}

// edgePair is one candidate mutation edge.
type edgePair struct {
	from, to graph.NodeID
	label    string
}

// Generator emits a deterministic mixed-operation stream for one worker:
// the same seed and configuration produce the same stream. Construction
// reads the graph (precomputing hit sets and a duplicate-free mutation
// pool); Next never touches it, so generators stay safe while the live
// graph mutates under the benchmark. A Generator is not safe for
// concurrent use — give each worker its own.
type Generator struct {
	mix Mix
	cfg GenConfig

	rng       *rand.Rand
	zipfNodes *rand.Zipf
	zipfRes   *rand.Zipf
	nodes     int

	// cum is the cumulative weight table over {Check, CheckBatch,
	// Audience, Mutate, Churn}.
	cum [5]float64

	// hits[r] holds requesters reached by bounded random walks from
	// resource r's owner.
	hits [][]graph.NodeID

	// pool is the worker-partitioned candidate edge pool (absent from the
	// initial graph); live is the FIFO of currently-toggled-on pairs.
	pool    []edgePair
	poolPos int
	live    []edgePair
	liveSet map[edgePair]struct{}

	// sharedRes is the FIFO of resource indexes this generator shared on
	// and has not yet revoked; pathPos rotates catalog paths for shares.
	sharedRes []int
	pathPos   int
	catalog   []QuerySpec
}

// NewGenerator builds a generator over src for one worker of a scenario.
// It must be called before the benchmark starts mutating the underlying
// graph (or, for a View-backed Source, over a pinned snapshot).
func NewGenerator(src Source, mix Mix, cfg GenConfig, seed int64) *Generator {
	cfg.defaults()
	if len(cfg.Resources) == 0 {
		panic("workload: NewGenerator needs at least one ResourceSpec")
	}
	if mix.BatchSize <= 0 {
		mix.BatchSize = 16
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := src.NumNodes()
	gen := &Generator{
		mix:     mix,
		cfg:     cfg,
		rng:     rng,
		nodes:   nodes,
		liveSet: make(map[edgePair]struct{}),
		catalog: cfg.Catalog,
	}
	if nodes > 1 {
		gen.zipfNodes = rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(nodes-1))
	}
	if len(cfg.Resources) > 1 {
		gen.zipfRes = rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(len(cfg.Resources)-1))
	}
	total := 0.0
	for i, w := range []float64{mix.Check, mix.CheckBatch, mix.Audience, mix.Mutate, mix.Churn} {
		total += w
		gen.cum[i] = total
	}
	if total <= 0 {
		gen.cum = [5]float64{1, 1, 1, 1, 1} // degenerate mix: everything is a check
	}
	gen.precomputeHits(src)
	gen.precomputePool(src)
	return gen
}

// precomputeHits samples, per resource, requesters a bounded random walk
// reaches from the owner — the population likely to satisfy reachability
// policies (the same technique as HitPairs, anchored per owner).
func (gen *Generator) precomputeHits(src Source) {
	gen.hits = make([][]graph.NodeID, len(gen.cfg.Resources))
	for r, spec := range gen.cfg.Resources {
		seen := make(map[graph.NodeID]struct{})
		var hs []graph.NodeID
		for attempt := 0; attempt < 4*gen.cfg.HitSetSize && len(hs) < gen.cfg.HitSetSize; attempt++ {
			cur := spec.Owner
			steps := 1 + gen.rng.Intn(gen.cfg.MaxWalk)
			ok := true
			for s := 0; s < steps; s++ {
				outs := outTargets(src, cur)
				if len(outs) == 0 {
					ok = false
					break
				}
				cur = outs[gen.rng.Intn(len(outs))]
			}
			if !ok || cur == spec.Owner {
				continue
			}
			if _, dup := seen[cur]; dup {
				continue
			}
			seen[cur] = struct{}{}
			hs = append(hs, cur)
		}
		gen.hits[r] = hs
	}
}

// precomputePool collects candidate mutation edges from this worker's
// partition that are absent from the initial graph, so toggling them never
// hits a duplicate.
func (gen *Generator) precomputePool(src Source) {
	if gen.nodes < 2 {
		return
	}
	want := 2*gen.cfg.LiveEdges + 8
	seen := make(map[edgePair]struct{})
	for attempt := 0; attempt < 50*want && len(gen.pool) < want; attempt++ {
		from := graph.NodeID(gen.rng.Intn(gen.nodes))
		if int(from)%gen.cfg.Workers != gen.cfg.Worker {
			continue
		}
		to := graph.NodeID(gen.rng.Intn(gen.nodes))
		if to == from {
			continue
		}
		label := gen.cfg.RelTypes[len(gen.pool)%len(gen.cfg.RelTypes)]
		p := edgePair{from, to, label}
		if _, dup := seen[p]; dup || src.HasEdge(from, to, label) {
			continue
		}
		seen[p] = struct{}{}
		gen.pool = append(gen.pool, p)
	}
}

// Next returns the stream's next operation. Returned slices (Requesters,
// Paths) are freshly allocated; the caller may retain them.
func (gen *Generator) Next() Op {
	x := gen.rng.Float64() * gen.cum[4]
	switch {
	case x < gen.cum[0]:
		return gen.nextCheck()
	case x < gen.cum[1]:
		return gen.nextCheckBatch()
	case x < gen.cum[2]:
		return gen.nextAudience()
	case x < gen.cum[3]:
		return gen.nextMutate()
	default:
		return gen.nextChurn()
	}
}

// resource draws a zipf-skewed resource index.
func (gen *Generator) resource() int {
	if gen.zipfRes == nil {
		return 0
	}
	return int(gen.zipfRes.Uint64())
}

// requesterFor draws a requester for resource r: from its hit set with
// probability HitFraction, else zipf-skewed over all members (hot
// accessors probing resources they mostly cannot reach).
func (gen *Generator) requesterFor(r int) graph.NodeID {
	spec := gen.cfg.Resources[r]
	if hs := gen.hits[r]; len(hs) > 0 && gen.rng.Float64() < gen.cfg.HitFraction {
		return hs[gen.rng.Intn(len(hs))]
	}
	req := spec.Owner
	for tries := 0; req == spec.Owner && tries < 8; tries++ {
		if gen.zipfNodes != nil {
			req = graph.NodeID(gen.zipfNodes.Uint64())
		}
	}
	return req
}

func (gen *Generator) nextCheck() Op {
	r := gen.resource()
	return Op{Kind: OpCheck, Resource: r, Requester: gen.requesterFor(r)}
}

func (gen *Generator) nextCheckBatch() Op {
	r := gen.resource()
	reqs := make([]graph.NodeID, gen.mix.BatchSize)
	for i := range reqs {
		reqs[i] = gen.requesterFor(r)
	}
	return Op{Kind: OpCheckBatch, Resource: r, Requesters: reqs}
}

func (gen *Generator) nextAudience() Op {
	return Op{Kind: OpAudience, Resource: gen.resource()}
}

// nextMutate toggles the generator's own edges: add from the
// duplicate-free pool until LiveEdges are live, then alternate removing
// the oldest and adding the next, keeping graph size stable.
func (gen *Generator) nextMutate() Op {
	if len(gen.pool) == 0 {
		return gen.nextCheck() // tiny graph: no safe mutation pairs
	}
	if len(gen.live) >= gen.cfg.LiveEdges || len(gen.live) == len(gen.pool) {
		p := gen.live[0]
		gen.live = gen.live[1:]
		delete(gen.liveSet, p)
		return Op{Kind: OpUnrelate, From: p.from, To: p.to, RelType: p.label}
	}
	// Advance past pairs still live; pool size 2×LiveEdges guarantees a
	// free one within a bounded scan.
	for tries := 0; tries < len(gen.pool); tries++ {
		p := gen.pool[gen.poolPos%len(gen.pool)]
		gen.poolPos++
		if _, isLive := gen.liveSet[p]; isLive {
			continue
		}
		gen.live = append(gen.live, p)
		gen.liveSet[p] = struct{}{}
		return Op{Kind: OpRelate, From: p.from, To: p.to, RelType: p.label}
	}
	return gen.nextCheck()
}

// nextChurn cycles policies: share until LiveRules of this generator's
// shares are outstanding, then alternate revoking the oldest and sharing
// anew.
func (gen *Generator) nextChurn() Op {
	if len(gen.sharedRes) >= gen.cfg.LiveRules {
		r := gen.sharedRes[0]
		gen.sharedRes = gen.sharedRes[1:]
		return Op{Kind: OpRevoke, Resource: r}
	}
	r := gen.resource()
	spec := gen.cfg.Resources[r]
	path := gen.catalog[gen.pathPos%len(gen.catalog)].Path.String()
	gen.pathPos++
	gen.sharedRes = append(gen.sharedRes, r)
	return Op{Kind: OpShare, Resource: r, Owner: spec.Owner, Paths: []string{path}}
}
