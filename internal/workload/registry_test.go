package workload

import (
	"strings"
	"testing"

	"reachac/internal/generate"
)

// TestRegistryBuiltins: the six original mixes plus the four new policy
// scenarios are all registered, resolvable, and produce working
// generators.
func TestRegistryBuiltins(t *testing.T) {
	want := []string{
		"read-heavy", "write-heavy", "check-batch", "audience-scan",
		"churn", "mixed-shape",
		"multi-tenant", "time-bounded", "trust-graded", "delegation",
	}
	names := Names()
	if len(names) < len(want) {
		t.Fatalf("registry has %d scenarios, want at least %d", len(names), len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("registration order[%d] = %q, want %q", i, names[i], w)
		}
		sc, ok := Lookup(w)
		if !ok {
			t.Fatalf("Lookup(%q) missing", w)
		}
		if sc.Description == "" {
			t.Fatalf("%s: no description", w)
		}
		if sc.Mix.Name != w {
			t.Fatalf("%s: mix named %q", w, sc.Mix.Name)
		}
	}
	g := generate.OSN(generate.OSNConfig{Nodes: 300, Seed: 1})
	for _, sc := range Scenarios() {
		specs := sc.Resources(g, 8, 4)
		if len(specs) != 8 {
			t.Fatalf("%s: %d specs", sc.Name, len(specs))
		}
		gen := NewGenerator(g, sc.Mix, sc.GenConfig(GenConfig{Resources: specs}), 7)
		for i := 0; i < 200; i++ {
			op := gen.Next()
			if op.Kind == OpShare && len(op.Paths) == 0 {
				t.Fatalf("%s: share without paths", sc.Name)
			}
		}
	}
}

// TestRegistryRejects: empty names, duplicates and weightless mixes must
// not register.
func TestRegistryRejects(t *testing.T) {
	if err := Register(Scenario{Mix: Mix{Check: 1}}); err == nil {
		t.Fatal("nameless scenario registered")
	}
	if err := Register(Scenario{Name: "read-heavy", Mix: Mix{Check: 1}}); err == nil {
		t.Fatal("duplicate name registered")
	}
	if err := Register(Scenario{Name: "weightless"}); err == nil {
		t.Fatal("weightless mix registered")
	}
	if _, ok := Lookup("weightless"); ok {
		t.Fatal("rejected scenario is resolvable")
	}
}

// TestMultiTenantPartitioning: tenant resources must be namespaced and
// owned inside their tenant's member stratum.
func TestMultiTenantPartitioning(t *testing.T) {
	sc, ok := Lookup("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant missing")
	}
	if sc.Tenants != 8 {
		t.Fatalf("tenants = %d", sc.Tenants)
	}
	g := generate.OSN(generate.OSNConfig{Nodes: 400, Seed: 2})
	specs := sc.Resources(g, 32, 9)
	for i, spec := range specs {
		tenant := i % 8
		if !strings.HasPrefix(spec.Name, "t0") {
			t.Fatalf("spec %d not namespaced: %q", i, spec.Name)
		}
		if int(spec.Owner)%8 != tenant {
			t.Fatalf("spec %d (%s): owner %d outside tenant %d stratum",
				i, spec.Name, spec.Owner, tenant)
		}
	}
}

// TestScenarioCatalogsParse: every scenario's catalog rotates into
// resource paths that are non-empty and per-scenario distinct where a
// custom catalog is declared.
func TestScenarioCatalogsParse(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 200, Seed: 3})
	defaultPaths := map[string]bool{}
	for _, q := range DefaultCatalog() {
		defaultPaths[q.Path.String()] = true
	}
	for _, name := range []string{"time-bounded", "trust-graded", "delegation"} {
		sc, _ := Lookup(name)
		if len(sc.Catalog) == 0 {
			t.Fatalf("%s: expected a custom catalog", name)
		}
		custom := false
		for _, spec := range sc.Resources(g, 6, 1) {
			if len(spec.Paths) == 0 || spec.Paths[0] == "" {
				t.Fatalf("%s: empty policy path", name)
			}
			if !defaultPaths[spec.Paths[0]] {
				custom = true
			}
		}
		if !custom {
			t.Fatalf("%s: catalog indistinguishable from default", name)
		}
	}
}

// TestMixShimsDelegateToRegistry: the deprecated Mixes/MixByName surface
// must reflect the registry.
func TestMixShimsDelegateToRegistry(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != len(Names()) {
		t.Fatalf("Mixes() = %d entries, registry has %d", len(mixes), len(Names()))
	}
	m, ok := MixByName("trust-graded")
	if !ok || m.Check != 0.90 {
		t.Fatalf("MixByName missed a registry scenario: %+v, %v", m, ok)
	}
	if _, ok := MixByName("nope"); ok {
		t.Fatal("MixByName invented a mix")
	}
}
