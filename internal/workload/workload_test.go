package workload

import (
	"testing"

	"reachac/internal/generate"
	"reachac/internal/search"
)

func TestDefaultCatalog(t *testing.T) {
	cat := DefaultCatalog()
	if len(cat) != 5 {
		t.Fatalf("catalog size = %d", len(cat))
	}
	seen := map[string]bool{}
	for _, q := range cat {
		if q.Name == "" || q.Path == nil {
			t.Fatalf("bad entry %+v", q)
		}
		if err := q.Path.Validate(); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if seen[q.Name] {
			t.Fatalf("duplicate name %s", q.Name)
		}
		seen[q.Name] = true
	}
}

func TestHitPairsAreWellFormed(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 500, Seed: 3})
	pairs := HitPairs(g, 200, 3, 9)
	if len(pairs) != 200 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p.Owner == p.Requester {
			t.Fatal("degenerate pair")
		}
		if !g.ValidNode(p.Owner) || !g.ValidNode(p.Requester) {
			t.Fatal("invalid node in pair")
		}
	}
}

func TestHitPairsActuallyHitMoreThanRandom(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 800, Seed: 5})
	eng := search.New(g)
	// "friends within 2 hops" as the probe policy.
	probe := DefaultCatalog()[1].Path
	rate := func(pairs []Pair) float64 {
		hits := 0
		for _, p := range pairs {
			ok, err := eng.Reachable(p.Owner, p.Requester, probe)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				hits++
			}
		}
		return float64(hits) / float64(len(pairs))
	}
	hitRate := rate(HitPairs(g, 150, 2, 1))
	missRate := rate(RandomPairs(g, 150, 1))
	if hitRate <= missRate {
		t.Fatalf("hit workload rate %.2f not above random %.2f", hitRate, missRate)
	}
	if hitRate < 0.2 {
		t.Fatalf("hit rate %.2f suspiciously low", hitRate)
	}
}

func TestRandomPairsDeterministic(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 200, Seed: 1})
	a := RandomPairs(g, 50, 42)
	b := RandomPairs(g, 50, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different pairs")
		}
	}
}

func TestRequests(t *testing.T) {
	g := generate.OSN(generate.OSNConfig{Nodes: 300, Seed: 2})
	reqs := Requests(g, 500, len(DefaultCatalog()), 7)
	if len(reqs) != 500 {
		t.Fatalf("requests = %d", len(reqs))
	}
	queryUsed := map[int]bool{}
	for _, r := range reqs {
		if r.Owner == r.Requester {
			t.Fatal("degenerate request")
		}
		if r.Query < 0 || r.Query >= 5 {
			t.Fatalf("query index %d", r.Query)
		}
		queryUsed[r.Query] = true
	}
	if len(queryUsed) < 3 {
		t.Fatalf("only %d catalog entries used in 500 requests", len(queryUsed))
	}
}
