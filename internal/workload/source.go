package workload

import "reachac/internal/graph"

// Source is the read-only adjacency view workload construction consumes:
// enough to sample random walks, weed out degree-zero owners and build
// duplicate-free mutation pools. *graph.Graph satisfies it as-is, so
// call sites holding a materialized graph pass it directly; streamed
// benchmark cells that never materialize a graph adapt a pinned
// reachac.View instead (cmd/acbench).
type Source interface {
	// NumNodes is the member count; workload node IDs are dense [0, n).
	NumNodes() int
	// OutDegree returns the number of outgoing relationships of n.
	OutDegree(n graph.NodeID) int
	// Neighbors visits the targets of n's outgoing relationships, one
	// call per (target, type) pair; fn returning false stops the walk.
	Neighbors(n graph.NodeID, fn func(graph.NodeID) bool)
	// HasEdge reports whether the typed relationship from→to exists.
	HasEdge(from, to graph.NodeID, relType string) bool
}

// outTargets collects n's neighbor list — the random-walk step both hit
// samplers take.
func outTargets(src Source, n graph.NodeID) []graph.NodeID {
	var outs []graph.NodeID
	src.Neighbors(n, func(to graph.NodeID) bool {
		outs = append(outs, to)
		return true
	})
	return outs
}
