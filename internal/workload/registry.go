package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// Scenario is a named, self-contained benchmark workload: an operation
// mix, the policy-shape catalog its resources and churned rules rotate
// through, and an optional tenant partitioning. Both cmd/acbench and
// cmd/gengraph resolve scenarios from the registry by name, so adding a
// scenario here makes it addressable everywhere.
type Scenario struct {
	// Name addresses the scenario in the registry and in benchmark
	// artifacts.
	Name string
	// Description is the one-line summary -list flags print.
	Description string
	// Mix weighs the scenario's operation families.
	Mix Mix
	// Catalog is the policy-shape rotation for resources and churned
	// rules; nil means DefaultCatalog.
	Catalog []QuerySpec
	// Tenants > 1 partitions the namespace: resource i belongs to tenant
	// i mod Tenants, is named "tNN/resNNNNN", and is owned by a member of
	// that tenant's stratum (ids ≡ tenant mod Tenants — the same
	// round-robin rule the generators use for communities, so tenant
	// boundaries align with community boundaries).
	Tenants int
}

// catalogOrDefault resolves the scenario's effective catalog.
func (sc Scenario) catalogOrDefault() []QuerySpec {
	if len(sc.Catalog) > 0 {
		return sc.Catalog
	}
	return DefaultCatalog()
}

// GenConfig returns the generator configuration the scenario implies on
// top of base: its catalog (so churn shares rules of the scenario's
// shape family). The caller still sets Resources, Worker and Workers.
func (sc Scenario) GenConfig(base GenConfig) GenConfig {
	base.Catalog = sc.catalogOrDefault()
	return base
}

// Resources picks n resources for the scenario over src: owners have
// outgoing edges (so policies can match someone), policy shapes rotate
// through the scenario's catalog, and with Tenants > 1 each resource is
// namespaced into its tenant. Deterministic for a given seed.
func (sc Scenario) Resources(src Source, n int, seed int64) []ResourceSpec {
	rng := rand.New(rand.NewSource(seed))
	catalog := sc.catalogOrDefault()
	nodes := src.NumNodes()
	tenants := sc.Tenants
	if tenants < 1 {
		tenants = 1
	}
	if tenants > nodes {
		tenants = nodes
	}
	specs := make([]ResourceSpec, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("res%05d", i)
		var owner graph.NodeID
		if tenants > 1 {
			t := i % tenants
			name = fmt.Sprintf("t%02d/res%05d", t, i)
			// Tenant t's members are t, t+tenants, t+2*tenants, ...
			stratum := (nodes - t + tenants - 1) / tenants
			owner = graph.NodeID(t + rng.Intn(stratum)*tenants)
			for try := 0; src.OutDegree(owner) == 0 && try < 64; try++ {
				owner = graph.NodeID(t + rng.Intn(stratum)*tenants)
			}
		} else {
			owner = graph.NodeID(rng.Intn(nodes))
			for try := 0; src.OutDegree(owner) == 0 && try < 64; try++ {
				owner = graph.NodeID(rng.Intn(nodes))
			}
		}
		specs = append(specs, ResourceSpec{
			Name:  name,
			Owner: owner,
			Paths: []string{catalog[i%len(catalog)].Path.String()},
		})
	}
	return specs
}

var (
	registryMu    sync.RWMutex
	registry      = make(map[string]Scenario)
	registryOrder []string
)

// Register adds a scenario to the registry. It fails on an empty name, a
// duplicate name, or a mix with no positive weight.
func Register(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("workload: scenario needs a name")
	}
	if sc.Mix.Check+sc.Mix.CheckBatch+sc.Mix.Audience+sc.Mix.Mutate+sc.Mix.Churn <= 0 {
		return fmt.Errorf("workload: scenario %q has no positive mix weight", sc.Name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		return fmt.Errorf("workload: scenario %q already registered", sc.Name)
	}
	if sc.Mix.Name == "" {
		sc.Mix.Name = sc.Name
	}
	registry[sc.Name] = sc
	registryOrder = append(registryOrder, sc.Name)
	return nil
}

// MustRegister is Register for init-time built-ins; it panics on error.
func MustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// Lookup resolves a registered scenario by name.
func Lookup(name string) (Scenario, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// Names lists registered scenario names in registration order (built-ins
// first, in the order below).
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), registryOrder...)
}

// Scenarios lists registered scenarios in registration order.
func Scenarios() []Scenario {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scenario, 0, len(registryOrder))
	for _, name := range registryOrder {
		out = append(out, registry[name])
	}
	return out
}

// SortedNames lists registered scenario names alphabetically, for help
// text.
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

func init() {
	// The six original mixes, now first-class scenarios over the default
	// catalog.
	MustRegister(Scenario{
		Name:        "read-heavy",
		Description: "95/5 check/mutate — a social network's serving traffic",
		Mix:         Mix{Name: "read-heavy", Check: 0.95, Mutate: 0.05},
	})
	MustRegister(Scenario{
		Name:        "write-heavy",
		Description: "50/50 check/mutate — relationship-churn-dominated traffic",
		Mix:         Mix{Name: "write-heavy", Check: 0.50, Mutate: 0.50},
	})
	MustRegister(Scenario{
		Name:        "check-batch",
		Description: "batched many-requester decisions — feed assembly",
		Mix:         Mix{Name: "check-batch", CheckBatch: 1.0, BatchSize: 16},
	})
	MustRegister(Scenario{
		Name:        "audience-scan",
		Description: "audience enumeration with point checks — 'who can see this?'",
		Mix:         Mix{Name: "audience-scan", Audience: 0.75, Check: 0.25},
	})
	MustRegister(Scenario{
		Name:        "churn",
		Description: "50/50 check/share-revoke — policy lifecycle cycling",
		Mix:         Mix{Name: "churn", Check: 0.50, Churn: 0.50},
	})
	// mixed-shape interleaves cheap star-shaped point checks with deep
	// multi-step audience enumerations under relationship churn — the
	// regime where no single static engine wins and per-query routing
	// (audience-cache probes for repeat checks, endpoint selection for
	// the rest) should: planner wins and regressions both land here.
	MustRegister(Scenario{
		Name:        "mixed-shape",
		Description: "point checks + deep audiences under churn — the planner's regime",
		Mix:         Mix{Name: "mixed-shape", Check: 0.55, CheckBatch: 0.10, Audience: 0.20, Mutate: 0.10, Churn: 0.05},
	})

	// multi-tenant partitions resources into 8 namespaces whose owners
	// come from disjoint member strata, modeling a provider hosting many
	// isolated communities on one directory.
	MustRegister(Scenario{
		Name:        "multi-tenant",
		Description: "8 tenant namespaces with stratified owners, read-mostly",
		Mix:         Mix{Name: "multi-tenant", Check: 0.85, Audience: 0.05, Mutate: 0.10},
		Tenants:     8,
	})
	// time-bounded models expiring shares: rules are granted and revoked
	// at a high rate (as the interval engine's validity windows open and
	// close), over depth-window shapes whose lower bounds exercise the
	// [min,max] part of the path language.
	MustRegister(Scenario{
		Name:        "time-bounded",
		Description: "heavy share/revoke cycling with depth-window policies — interval-engine regime",
		Mix:         Mix{Name: "time-bounded", Check: 0.55, Audience: 0.05, Churn: 0.40},
		Catalog: []QuerySpec{
			{"window-friends", pathexpr.MustParse("friend+[1,2]")},
			{"ring-friends", pathexpr.MustParse("friend+[2,3]")},
			{"far-colleagues", pathexpr.MustParse("colleague+[2,4]")},
			{"friend-then-colleagues", pathexpr.MustParse("friend+[1]/colleague+[1,2]")},
		},
	})
	// trust-graded keeps a single relationship type and grades access
	// purely by depth — the carminati engine's (type, depth) rule model,
	// where trust decays with distance.
	MustRegister(Scenario{
		Name:        "trust-graded",
		Description: "single-type depth-graded policies — carminati-engine regime",
		Mix:         Mix{Name: "trust-graded", Check: 0.90, Audience: 0.10},
		Catalog: []QuerySpec{
			{"trust-1", pathexpr.MustParse("friend+[1]")},
			{"trust-2", pathexpr.MustParse("friend+[1,2]")},
			{"trust-3", pathexpr.MustParse("friend+[1,3]")},
			{"trust-4", pathexpr.MustParse("friend+[1,4]")},
			{"colleague-trust", pathexpr.MustParse("colleague+[1,2]")},
		},
	})
	// delegation chains heterogeneous steps — group-nesting shapes where
	// access flows through an intermediary (my colleagues' friends, my
	// parents' networks, people who consider my colleague a friend).
	MustRegister(Scenario{
		Name:        "delegation",
		Description: "group-nesting delegation chains through intermediaries",
		Mix:         Mix{Name: "delegation", Check: 0.70, CheckBatch: 0.10, Audience: 0.10, Mutate: 0.10},
		Catalog: []QuerySpec{
			{"via-colleagues", pathexpr.MustParse("colleague+[1]/friend+[1,2]")},
			{"via-parents", pathexpr.MustParse("parent+[1,2]/friend+[1]")},
			{"nested-groups", pathexpr.MustParse("friend+[1,2]/colleague+[1]/friend+[1]")},
			{"reverse-delegate", pathexpr.MustParse("friend-[1]/colleague+[1]")},
		},
	})
}
