// Package btree implements an in-memory B+tree with string keys. The paper's
// cluster-based join index (§3.3, Figure 7) "is a B+tree, where non-leaf
// nodes are centers. Each non-leaf node wi holds two clusters Uwi and Vwi";
// package joinindex stores its centers in this tree keyed by center name.
// The tree is general purpose: ordered insertion, lookup, deletion, and
// range scans.
package btree

import "sort"

// DefaultOrder is the default maximum number of children per internal node.
const DefaultOrder = 16

// Tree is a B+tree mapping string keys to arbitrary values. The zero value
// is not usable; call New.
type Tree struct {
	root  *node
	order int // max children of an internal node; max keys of a leaf = order-1
	size  int
}

type node struct {
	leaf     bool
	keys     []string
	vals     []any   // leaf only, parallel to keys
	children []*node // internal only, len = len(keys)+1
	next     *node   // leaf chain for range scans
}

// New returns an empty tree with the given order (minimum 3; DefaultOrder if
// order < 3).
func New(order int) *Tree {
	if order < 3 {
		order = DefaultOrder
	}
	return &Tree{root: &node{leaf: true}, order: order}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

func (n *node) search(key string) int {
	return sort.SearchStrings(n.keys, key)
}

// Get returns the value stored under key.
func (t *Tree) Get(key string) (any, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			i++ // equal separator: key lives in the right subtree
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return nil, false
}

// Put inserts or replaces the value under key. It reports whether the key
// was newly inserted.
func (t *Tree) Put(key string, val any) bool {
	midKey, right, inserted := t.insert(t.root, key, val)
	if right != nil {
		t.root = &node{
			keys:     []string{midKey},
			children: []*node{t.root, right},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds key to the subtree at n; on split it returns the separator key
// and the new right sibling.
func (t *Tree) insert(n *node, key string, val any) (string, *node, bool) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return "", nil, false
		}
		n.keys = append(n.keys, "")
		n.vals = append(n.vals, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		if len(n.keys) < t.order {
			return "", nil, true
		}
		// Split leaf: right half moves to a new node.
		mid := len(n.keys) / 2
		right := &node{
			leaf: true,
			keys: append([]string(nil), n.keys[mid:]...),
			vals: append([]any(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right, true
	}

	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	midKey, right, inserted := t.insert(n.children[i], key, val)
	if right != nil {
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = midKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		if len(n.children) > t.order {
			// Split internal node; the middle key moves up.
			mid := len(n.keys) / 2
			upKey := n.keys[mid]
			newRight := &node{
				keys:     append([]string(nil), n.keys[mid+1:]...),
				children: append([]*node(nil), n.children[mid+1:]...),
			}
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
			return upKey, newRight, inserted
		}
	}
	return "", nil, inserted
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key string) bool {
	deleted := t.delete(t.root, key)
	if deleted {
		t.size--
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return deleted
}

func (t *Tree) minKeys() int { return (t.order - 1) / 2 }

func (t *Tree) delete(n *node, key string) bool {
	if n.leaf {
		i := n.search(key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	deleted := t.delete(n.children[i], key)
	if deleted {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance restores the minimum-fill invariant of n.children[i] by
// borrowing from or merging with a sibling.
func (t *Tree) rebalance(n *node, i int) {
	child := n.children[i]
	if len(child.keys) >= t.minKeys() {
		return
	}
	// Try borrowing from the left sibling.
	if i > 0 {
		left := n.children[i-1]
		if len(left.keys) > t.minKeys() {
			if child.leaf {
				k := left.keys[len(left.keys)-1]
				v := left.vals[len(left.vals)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.vals = left.vals[:len(left.vals)-1]
				child.keys = append([]string{k}, child.keys...)
				child.vals = append([]any{v}, child.vals...)
				n.keys[i-1] = child.keys[0]
			} else {
				// Rotate through the separator.
				child.keys = append([]string{n.keys[i-1]}, child.keys...)
				n.keys[i-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if i < len(n.children)-1 {
		right := n.children[i+1]
		if len(right.keys) > t.minKeys() {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				n.keys[i] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[i])
				n.keys[i] = right.keys[0]
				right.keys = right.keys[1:]
				child.children = append(child.children, right.children[0])
				right.children = right.children[1:]
			}
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(n, i-1)
	} else {
		t.merge(n, i)
	}
}

// merge folds n.children[i+1] into n.children[i] and drops separator i.
func (t *Tree) merge(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend calls fn for every key/value pair in ascending key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key string, val any) bool) {
	t.AscendRange("", "", fn)
}

// AscendRange calls fn for keys in [from, to) in ascending order; empty from
// means the smallest key, empty to means no upper bound.
func (t *Tree) AscendRange(from, to string, fn func(key string, val any) bool) {
	n := t.root
	for !n.leaf {
		i := n.search(from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if to != "" && k >= to {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// check validates structural invariants; it is exported to tests via
// export_test.go.
func (t *Tree) check() error {
	return t.root.check(t, true, "", "")
}
