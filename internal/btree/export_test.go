package btree

// Check exposes structural validation to tests.
func (t *Tree) Check() error { return t.check() }
