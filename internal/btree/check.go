package btree

import "fmt"

// check recursively validates node invariants: key ordering, key bounds
// (lo <= keys < hi when bounds are non-empty), fill factors, child counts,
// and uniform leaf depth.
func (n *node) check(t *Tree, isRoot bool, lo, hi string) error {
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return fmt.Errorf("btree: keys out of order: %q >= %q", n.keys[i-1], n.keys[i])
		}
	}
	for _, k := range n.keys {
		if lo != "" && k < lo {
			return fmt.Errorf("btree: key %q below bound %q", k, lo)
		}
		if hi != "" && k >= hi {
			return fmt.Errorf("btree: key %q above bound %q", k, hi)
		}
	}
	if n.leaf {
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("btree: leaf keys/vals mismatch %d/%d", len(n.keys), len(n.vals))
		}
		if !isRoot && len(n.keys) < t.minKeys() {
			return fmt.Errorf("btree: leaf underfull: %d < %d", len(n.keys), t.minKeys())
		}
		if len(n.keys) >= t.order {
			return fmt.Errorf("btree: leaf overfull: %d >= %d", len(n.keys), t.order)
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: child count %d != keys+1 (%d)", len(n.children), len(n.keys)+1)
	}
	if len(n.children) > t.order {
		return fmt.Errorf("btree: internal overfull: %d children > order %d", len(n.children), t.order)
	}
	if !isRoot && len(n.keys) < t.minKeys() {
		return fmt.Errorf("btree: internal underfull: %d < %d", len(n.keys), t.minKeys())
	}
	if isRoot && len(n.children) < 2 {
		return fmt.Errorf("btree: internal root with %d children", len(n.children))
	}
	depth := -1
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		if err := c.check(t, false, clo, chi); err != nil {
			return err
		}
		d := c.depth()
		if depth == -1 {
			depth = d
		} else if d != depth {
			return fmt.Errorf("btree: uneven leaf depth %d vs %d", d, depth)
		}
	}
	return nil
}

func (n *node) depth() int {
	d := 1
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
