package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) string { return fmt.Sprintf("k%06d", i) }

func TestEmptyTree(t *testing.T) {
	tr := New(4)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty found something")
	}
	if tr.Delete("x") {
		t.Fatal("Delete on empty succeeded")
	}
}

func TestPutGetSequential(t *testing.T) {
	tr := New(4)
	const n = 500
	for i := 0; i < n; i++ {
		if !tr.Put(key(i), i) {
			t.Fatalf("Put(%d) not inserted", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v,%v", i, v, ok)
		}
	}
	if tr.Height() < 2 {
		t.Fatal("tree never split")
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := New(4)
	tr.Put("a", 1)
	if tr.Put("a", 2) {
		t.Fatal("overwrite reported as insert")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Get("a")
	if v.(int) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
}

func TestDeleteAll(t *testing.T) {
	for _, order := range []int{3, 4, 5, 16} {
		tr := New(order)
		const n = 300
		perm := rand.New(rand.NewSource(1)).Perm(n)
		for _, i := range perm {
			tr.Put(key(i), i)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("order %d after inserts: %v", order, err)
		}
		perm2 := rand.New(rand.NewSource(2)).Perm(n)
		for step, i := range perm2 {
			if !tr.Delete(key(i)) {
				t.Fatalf("order %d: Delete(%d) missing", order, i)
			}
			if tr.Delete(key(i)) {
				t.Fatalf("order %d: double delete succeeded", order)
			}
			if step%37 == 0 {
				if err := tr.Check(); err != nil {
					t.Fatalf("order %d after %d deletes: %v", order, step+1, err)
				}
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("order %d: Len = %d after deleting all", order, tr.Len())
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAscend(t *testing.T) {
	tr := New(4)
	want := []string{"apple", "banana", "cherry", "date", "elderberry"}
	for i := len(want) - 1; i >= 0; i-- {
		tr.Put(want[i], i)
	}
	var got []string
	tr.Ascend(func(k string, v any) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend order: %v", got)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	count := 0
	tr.Ascend(func(k string, v any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	var got []int
	tr.AscendRange(key(10), key(20), func(k string, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,20) = %v", got)
	}
	// Range with a 'from' key that is absent.
	got = got[:0]
	tr.Delete(key(50))
	tr.AscendRange(key(50), key(53), func(k string, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 2 || got[0] != 51 {
		t.Fatalf("range from absent key = %v", got)
	}
}

func TestRandomOpsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New(5)
	ref := map[string]int{}
	for op := 0; op < 20000; op++ {
		k := key(rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int()
			insertedRef := false
			if _, ok := ref[k]; !ok {
				insertedRef = true
			}
			if got := tr.Put(k, v); got != insertedRef {
				t.Fatalf("op %d: Put inserted=%v, want %v", op, got, insertedRef)
			}
			ref[k] = v
		case 2:
			_, inRef := ref[k]
			if got := tr.Delete(k); got != inRef {
				t.Fatalf("op %d: Delete=%v, want %v", op, got, inRef)
			}
			delete(ref, k)
		}
		if op%971 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got.(int) != v {
			t.Fatalf("Get(%q) = %v,%v want %d", k, got, ok, v)
		}
	}
	// Full scan matches the sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Ascend(func(k string, v any) bool {
		if k != keys[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, k, keys[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d, want %d", i, len(keys))
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, orderSel uint8, n uint16) bool {
		order := 3 + int(orderSel)%14
		rng := rand.New(rand.NewSource(seed))
		tr := New(order)
		count := int(n)%400 + 1
		for i := 0; i < count; i++ {
			tr.Put(key(rng.Intn(count)), i)
		}
		if tr.Check() != nil {
			return false
		}
		for i := 0; i < count/2; i++ {
			tr.Delete(key(rng.Intn(count)))
		}
		return tr.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowOrderClamped(t *testing.T) {
	tr := New(1) // clamps to DefaultOrder
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}
