// Package paperfix builds the paper's running example: the social network
// subgraph of Figure 1 (seven members — Alice, Bill, Colin, David, Elena,
// Fred, George — and twelve typed relationships), together with the queries
// the paper evaluates over it. The edge list is reconstructed from Figure 1
// and cross-checked against the line-graph node inventory the paper gives
// under Figure 5 (Friend A-C, Colleague A-D, Friend A-B, Friend C-D,
// Friend E-B, Friend B-E, Parent C-F, Colleague D-F, Parent D-G,
// Friend E-D, Friend E-G, Friend F-G).
package paperfix

import (
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// Member names in the paper.
const (
	Alice  = "Alice"
	Bill   = "Bill"
	Colin  = "Colin"
	David  = "David"
	Elena  = "Elena"
	Fred   = "Fred"
	George = "George"
)

// Names lists the members in the paper's order (A through G).
var Names = []string{Alice, Bill, Colin, David, Elena, Fred, George}

// Relationship labels used in Figure 1.
const (
	Friend    = "friend"
	Colleague = "colleague"
	Parent    = "parent"
)

// EdgeSpec describes one Figure-1 relationship.
type EdgeSpec struct {
	From, To, Label string
	Weight          float64
}

// Edges lists the twelve relationships of Figure 1 in the order of the
// paper's line-graph node inventory (Figure 5, skipping the virtual Null-A
// node). Two edges carry the trust annotations shown in the figure
// ("Babysitting;0.8" on a friend edge, "biology;0.6" on a colleague edge);
// the weights are kept, the topic strings are not part of the model.
var Edges = []EdgeSpec{
	{Alice, Colin, Friend, 0},
	{Alice, David, Colleague, 0.6},
	{Alice, Bill, Friend, 0},
	{Colin, David, Friend, 0},
	{Elena, Bill, Friend, 0},
	{Bill, Elena, Friend, 0},
	{Colin, Fred, Parent, 0},
	{David, Fred, Colleague, 0},
	{David, George, Parent, 0},
	{Elena, David, Friend, 0},
	{Elena, George, Friend, 0},
	{Fred, George, Friend, 0.8},
}

// Graph returns a fresh copy of the Figure-1 social graph. Node IDs follow
// the order of Names (Alice=0 … George=6); λ(Alice) = (gender=female,
// age=24) as in §2.
func Graph() *graph.Graph {
	g := graph.New()
	// Intern the labels in the paper's alphabet order Σ = {colleague,
	// friend, parent}? The paper lists {Colleague, Friend, Parent}
	// alphabetically; we intern in first-use order of the figure, then the
	// tables sort by name where determinism matters.
	for _, n := range Names {
		var attrs graph.Attrs
		if n == Alice {
			attrs = graph.Attrs{"gender": graph.String("female"), "age": graph.Int(24)}
		}
		g.MustAddNode(n, attrs)
	}
	for _, e := range Edges {
		from, _ := g.NodeByName(e.From)
		to, _ := g.NodeByName(e.To)
		if _, err := g.AddWeightedEdge(from, to, e.Label, e.Weight); err != nil {
			panic(err)
		}
	}
	return g
}

// Q1 is the reachability query of Figure 2: the colleagues of Alice's
// friends within 2 hops — Alice/friend+[1,2]/colleague+[1].
func Q1() *pathexpr.Path { return pathexpr.MustParse("friend+[1,2]/colleague+[1]") }

// Q1Grantees is the set of members Q1 authorizes on the Figure-1 graph:
// Fred, reached as Alice -friend-> Colin -friend-> David -colleague-> Fred.
var Q1Grantees = []string{Fred}

// QFriendParentFriend is the worked query of §3.3–3.4: the path
// /friend/parent/friend (all steps outgoing, depth 1). Its single surviving
// tuple corresponds to Alice -> Colin -> Fred -> George, so George is
// granted access to Alice's resource.
func QFriendParentFriend() *pathexpr.Path {
	return pathexpr.MustParse("friend+[1]/parent+[1]/friend+[1]")
}

// QFriendParentFriendGrantees is the audience of QFriendParentFriend with
// Alice as owner.
var QFriendParentFriendGrantees = []string{George}

// QDavidConsidersFriend is the §2 example: David shares his jokes with
// those who consider him a friend — an incoming friend edge (Elena, Colin).
func QDavidConsidersFriend() *pathexpr.Path { return pathexpr.MustParse("friend-[1]") }

// QDavidConsidersFriendGrantees lists who that query authorizes for David.
var QDavidConsidersFriendGrantees = []string{Colin, Elena}

// FriendDepth3Chain is the §2 depth example: from Alice to George there is a
// friend-typed path Alice-Bill-Elena-George of length 3.
func FriendDepth3Chain() *pathexpr.Path { return pathexpr.MustParse("friend+[3]") }
